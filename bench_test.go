package nezha_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"github.com/nezha-dag/nezha/internal/bench"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/occda"
	"github.com/nezha-dag/nezha/internal/statedb"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// benchOpts shrinks experiments so a -bench=. pass stays tractable; run
// cmd/nezha-bench for the paper-parameter sweeps.
func benchOpts() bench.Options {
	o := bench.DefaultOptions().Quick()
	o.BlockSize = 100
	return o
}

// runExperiment wraps one table/figure regeneration per benchmark
// iteration.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := bench.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation (§VI).

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }

// Ablation benches (DESIGN.md A1–A4).

func BenchmarkAblationReorder(b *testing.B) { runExperiment(b, "ablation-reorder") }
func BenchmarkAblationRank(b *testing.B)    { runExperiment(b, "ablation-rank") }
func BenchmarkAblationCommit(b *testing.B)  { runExperiment(b, "ablation-commit") }
func BenchmarkAblationGraph(b *testing.B)   { runExperiment(b, "ablation-graph") }

// Micro benchmarks of the core algorithm at the paper's epoch sizes.

// benchSims builds one SmallBank epoch of n transactions for the micro
// benchmarks.
func benchSims(b *testing.B, n int, skew float64) []*types.SimResult {
	b.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 1, Accounts: 10_000, Skew: skew, InitialBalance: 10_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	txs := gen.Txs(n)
	for i, tx := range txs {
		tx.ID = types.TxID(i)
	}
	snap, err := gen.Snapshot(txs)
	if err != nil {
		b.Fatal(err)
	}
	sims, err := workload.Simulate(txs, snap)
	if err != nil {
		b.Fatal(err)
	}
	return sims
}

func BenchmarkNezhaSchedule(b *testing.B) {
	for _, cfg := range []struct {
		omega int
		skew  float64
	}{{2, 0}, {12, 0}, {12, 0.6}, {12, 0.8}} {
		b.Run(fmt.Sprintf("omega=%d/skew=%.1f", cfg.omega, cfg.skew), func(b *testing.B) {
			sims := benchSims(b, cfg.omega*200, cfg.skew)
			sched := core.MustNewScheduler(core.DefaultConfig())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sched.Schedule(sims); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(sims)), "txs/epoch")
		})
	}
}

// BenchmarkNezhaScheduleParallelism pits the sequential reference core
// (Parallelism=1) against the sharded/cluster-parallel core on one 4096-tx
// SmallBank epoch — the speedup headline of the parallel scheduling core.
// Both configurations produce byte-identical schedules (asserted by
// TestParallelScheduleMatchesSequential in internal/core).
func BenchmarkNezhaScheduleParallelism(b *testing.B) {
	sims := benchSims(b, 4096, 0.2)
	for _, par := range []int{1, 0} { // 1 = sequential reference, 0 = GOMAXPROCS
		name := "sequential"
		if par != 1 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Parallelism = par
			sched := core.MustNewScheduler(cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sched.Schedule(sims); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(sims)), "txs/epoch")
		})
	}
}

// BenchmarkBuildACG covers both graph builders on the same 4096-tx epoch:
// the sequential reference and the key-sharded parallel builder.
func BenchmarkBuildACG(b *testing.B) {
	sims := benchSims(b, 4096, 0.2)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BuildACG(sims)
		}
	})
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BuildACGSharded(sims, runtime.GOMAXPROCS(0))
		}
	})
}

func BenchmarkAblationWriteMix(b *testing.B) { runExperiment(b, "ablation-writemix") }

func BenchmarkOCCAbortComparison(b *testing.B) { runExperiment(b, "occ-abort") }

// BenchmarkMVCCRead compares the two execution read paths over one hot
// SmallBank working set: "view" resolves through the shared MVCC version
// cache (warm after the first pass — near-zero allocations), "snapshot"
// pays a fresh per-epoch state copy the way the legacy executor does. The
// alloc delta between the sub-benchmarks is the per-epoch copy the MVCC
// refactor removes; the benchstat gate holds both.
func BenchmarkMVCCRead(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 3, Accounts: 2_000, Skew: 0.6, InitialBalance: 10_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	txs := gen.Txs(400)
	snap, err := gen.Snapshot(txs)
	if err != nil {
		b.Fatal(err)
	}
	var keys []types.Key
	for _, tx := range txs {
		keys = append(keys, smallbank.PredictCall(tx.Payload)...)
	}
	seed := make([]types.WriteEntry, 0, len(snap))
	for k, v := range snap {
		seed = append(seed, types.WriteEntry{Key: k, Value: v})
	}
	db := statedb.Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if _, err := db.Commit(seed); err != nil {
		b.Fatal(err)
	}
	b.Run("view", func(b *testing.B) {
		db.View() // warm the store once so iterations measure steady state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := db.View()
			for _, k := range keys {
				if _, err := v.Get(k); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(keys)), "reads/epoch")
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sn := db.Snapshot()
			for _, k := range keys {
				if _, err := sn.Get(k); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(keys)), "reads/epoch")
	})
}

// BenchmarkPrefetch prices the prefetcher stage's two steady-state paths:
// "skip-warm" re-offers already-cached keys (the common case once the
// working set is resident) and "hit-read" resolves prefetched keys
// through a view — the latency execution actually sees on a prefetch hit.
func BenchmarkPrefetch(b *testing.B) {
	db := statedb.Open(kvstore.NewMemory(), mpt.EmptyRoot)
	const n = 4096
	writes := make([]types.WriteEntry, n)
	keys := make([]types.Key, n)
	for i := range writes {
		keys[i] = types.KeyFromUint64(uint64(i))
		writes[i] = types.WriteEntry{Key: keys[i], Value: []byte{byte(i), byte(i >> 8)}}
	}
	if _, err := db.Commit(writes); err != nil {
		b.Fatal(err)
	}
	for _, k := range keys {
		if err := db.Prefetch(k); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("skip-warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := db.Prefetch(keys[i%n]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit-read", func(b *testing.B) {
		v := db.View()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.Get(keys[i%n]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOCCDA prices the dependency-aware hybrid at the paper's epoch
// sizes against the contention levels where plain OCC degrades — the
// rescue pass (PhaseBreakdown.Cycle) is the cost being bought.
func BenchmarkOCCDA(b *testing.B) {
	for _, cfg := range []struct {
		omega int
		skew  float64
	}{{2, 0}, {12, 0.6}, {12, 0.8}} {
		b.Run(fmt.Sprintf("omega=%d/skew=%.1f", cfg.omega, cfg.skew), func(b *testing.B) {
			sims := benchSims(b, cfg.omega*200, cfg.skew)
			sched := occda.NewScheduler()
			b.ReportAllocs()
			b.ResetTimer()
			var aborted int
			for i := 0; i < b.N; i++ {
				out, _, err := sched.Schedule(sims)
				if err != nil {
					b.Fatal(err)
				}
				aborted = out.AbortedCount()
			}
			b.ReportMetric(float64(len(sims)), "txs/epoch")
			b.ReportMetric(float64(aborted), "aborts/epoch")
		})
	}
}

// BenchmarkFailpointDisabled guards internal/fail's core promise from the
// benchstat PR gate: a disarmed failpoint site — and they sit on the WAL
// append, the persist path, and every p2p delivery — costs one atomic
// load, a few nanoseconds and zero allocations. A regression here taxes
// every hot path in the node.
func BenchmarkFailpointDisabled(b *testing.B) {
	fail.Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fail.Hit(fail.BenchDisarmed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalDisabled guards the flight recorder's parallel promise:
// with recording off, an Emit on the commit path costs one atomic load —
// the same budget as a disarmed failpoint — so the instrumentation can
// stay compiled into every stage handoff permanently.
func BenchmarkJournalDisabled(b *testing.B) {
	journal.Disable()
	r := journal.For("bench-disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(journal.NodeEpochCommit, uint64(i))
	}
}

// BenchmarkJournalEmit is the armed path: one atomic sequence
// reservation plus a slot-mutex payload copy, at most one allocation per
// event (the variadic field slice when it escapes).
func BenchmarkJournalEmit(b *testing.B) {
	journal.Enable()
	defer journal.Disable()
	r := journal.For("bench-armed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(journal.NodeEpochCommit, uint64(i),
			journal.F("root", uint64(i)*0x9e3779b9), journal.F("committed", 40))
	}
}

// BenchmarkMempoolAdmit is the ingestion front end's admission hot path:
// one transaction through the shard lookup, nonce-queue insert, and
// metric updates. This is per-transaction cost at the node's front door,
// so it joins the benchstat PR gate.
func BenchmarkMempoolAdmit(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 1, Accounts: 10_000, Skew: 0.6, InitialBalance: 10_000,
		ReadOnlyRatio: -1, PerSenderNonces: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	txs := gen.Txs(b.N)
	p := mempool.New(mempool.Config{ShardCap: -1, SenderCap: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Admit(txs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStressAssemble measures block assembly out of a loaded pool —
// the peek that runs under the miner's lock every block: per-sender
// nonce runs ordered by priority, truncated to the block size.
func BenchmarkStressAssemble(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 2, Accounts: 2_000, Skew: 0.6, InitialBalance: 10_000,
		ReadOnlyRatio: -1, PerSenderNonces: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := mempool.New(mempool.Config{ShardCap: -1, SenderCap: -1, StrictNonce: true})
	for _, tx := range gen.Txs(8_192) {
		if err := p.Admit(tx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Assemble(200); len(got) == 0 {
			b.Fatal("empty assembly from a loaded pool")
		}
	}
}

// BenchmarkStressAdmitBatch is the gossip-delivery shape: a 500-tx batch
// admitted in one call (the signature-verification fan-out is exercised
// by the mempool package's own tests; here signatures are off, matching
// the scheduler-focused benches).
func BenchmarkStressAdmitBatch(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 3, Accounts: 10_000, Skew: 0.6, InitialBalance: 10_000,
		ReadOnlyRatio: -1, PerSenderNonces: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 500
	txs := gen.Txs(b.N*batch + batch)
	p := mempool.New(mempool.Config{ShardCap: -1, SenderCap: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, _ := p.AdmitBatch(txs[i*batch : (i+1)*batch]); n != batch {
			b.Fatalf("admitted %d of %d", n, batch)
		}
	}
}
