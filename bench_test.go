package nezha_test

import (
	"fmt"
	"io"
	"testing"

	"github.com/nezha-dag/nezha/internal/bench"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// benchOpts shrinks experiments so a -bench=. pass stays tractable; run
// cmd/nezha-bench for the paper-parameter sweeps.
func benchOpts() bench.Options {
	o := bench.DefaultOptions().Quick()
	o.BlockSize = 100
	return o
}

// runExperiment wraps one table/figure regeneration per benchmark
// iteration.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := bench.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation (§VI).

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }

// Ablation benches (DESIGN.md A1–A4).

func BenchmarkAblationReorder(b *testing.B) { runExperiment(b, "ablation-reorder") }
func BenchmarkAblationRank(b *testing.B)    { runExperiment(b, "ablation-rank") }
func BenchmarkAblationCommit(b *testing.B)  { runExperiment(b, "ablation-commit") }
func BenchmarkAblationGraph(b *testing.B)   { runExperiment(b, "ablation-graph") }

// Micro benchmarks of the core algorithm at the paper's epoch sizes.

func BenchmarkNezhaSchedule(b *testing.B) {
	for _, cfg := range []struct {
		omega int
		skew  float64
	}{{2, 0}, {12, 0}, {12, 0.6}, {12, 0.8}} {
		b.Run(fmt.Sprintf("omega=%d/skew=%.1f", cfg.omega, cfg.skew), func(b *testing.B) {
			gen, err := workload.NewGenerator(workload.Config{
				Seed: 1, Accounts: 10_000, Skew: cfg.skew, InitialBalance: 10_000,
			})
			if err != nil {
				b.Fatal(err)
			}
			txs := gen.Txs(cfg.omega * 200)
			for i, tx := range txs {
				tx.ID = types.TxID(i)
			}
			snap, err := gen.Snapshot(txs)
			if err != nil {
				b.Fatal(err)
			}
			sims, err := workload.Simulate(txs, snap)
			if err != nil {
				b.Fatal(err)
			}
			sched := core.MustNewScheduler(core.DefaultConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sched.Schedule(sims); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(txs)), "txs/epoch")
		})
	}
}

func BenchmarkAblationWriteMix(b *testing.B) { runExperiment(b, "ablation-writemix") }

func BenchmarkOCCAbortComparison(b *testing.B) { runExperiment(b, "occ-abort") }
