package main

// The journal and diff subcommands are the flight-recorder forensics
// surface: journal pretty-prints a dumped per-node event ring (binary or
// JSONL, sniffed), diff aligns two nodes' journals on their deterministic
// (epoch, kind) coordinates and reports the first causal divergence —
// the same report a failed chaos scenario embeds in its Failure.

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/nezha-dag/nezha/internal/journal"
)

func runJournalCmd(args []string) error {
	fs := flag.NewFlagSet("journal", flag.ContinueOnError)
	var (
		epoch   = fs.Int64("epoch", -1, "only show events for this epoch")
		kind    = fs.String("kind", "", "only show events whose kind contains this substring")
		jsonl   = fs.Bool("json", false, "re-emit as JSONL instead of pretty-printing")
		detOnly = fs.Bool("det", false, "only show deterministic (diff-alignable) events")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nezha-inspect journal [-epoch N] [-kind substr] [-det] [-json] <file.journal>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("journal: at least one journal file is required")
	}
	for _, path := range fs.Args() {
		events, err := journal.ReadFile(path)
		if err != nil {
			return fmt.Errorf("journal: %s: %w", path, err)
		}
		kept := events[:0]
		for _, e := range events {
			if *epoch >= 0 && e.Epoch != uint64(*epoch) {
				continue
			}
			if *kind != "" && !strings.Contains(string(e.Kind), *kind) {
				continue
			}
			if *detOnly && !journal.Deterministic(e.Kind) {
				continue
			}
			kept = append(kept, e)
		}
		if *jsonl {
			if err := journal.WriteJSONL(os.Stdout, kept); err != nil {
				return err
			}
			continue
		}
		node := ""
		if len(events) > 0 {
			node = events[0].Node
		}
		fmt.Printf("%s: node %s, %d events (%d shown)\n", path, node, len(events), len(kept))
		for _, e := range kept {
			fmt.Printf("  %s\n", e.String())
		}
	}
	return nil
}

func runDiffCmd(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	contextN := fs.Int("context", journal.DefaultContext, "surrounding events to show per side")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nezha-inspect diff [-context N] <a.journal> <b.journal>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("diff: exactly two journal files are required")
	}
	a, err := journal.ReadFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("diff: %s: %w", fs.Arg(0), err)
	}
	b, err := journal.ReadFile(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("diff: %s: %w", fs.Arg(1), err)
	}
	d := journal.DiffContext(a, b, *contextN)
	if d == nil {
		fmt.Println("no divergence: every aligned deterministic event matches")
		return nil
	}
	fmt.Print(d.String())
	return fmt.Errorf("diff: journals diverge")
}
