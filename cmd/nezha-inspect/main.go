// Command nezha-inspect generates one SmallBank epoch and dumps what the
// Nezha scheduler does with it: ACG shape, address sorting ranks, commit
// groups, aborts, and a comparison against the CG baseline — a debugging
// lens over the paper's §IV pipeline.
//
// Usage:
//
//	nezha-inspect -txs 200 -skew 0.8 -accounts 10000 -v
//	nezha-inspect metrics -addr localhost:9090 -filter nezha_stage
//	nezha-inspect journal -epoch 7 /tmp/nezha-journal-x/n0.journal
//	nezha-inspect diff /tmp/nezha-journal-x/n0.journal /tmp/nezha-journal-x/n2.journal
//
// The metrics subcommand scrapes a live -metrics-addr endpoint and
// pretty-prints the exposition (see metrics.go); journal and diff read
// flight-recorder dumps and report cross-node divergence (see journal.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		var sub func([]string) error
		switch os.Args[1] {
		case "metrics":
			sub = runMetricsCmd
		case "journal":
			sub = runJournalCmd
		case "diff":
			sub = runDiffCmd
		}
		if sub != nil {
			if err := sub(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "nezha-inspect: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nezha-inspect: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		txCount  = flag.Int("txs", 200, "transactions in the epoch")
		skew     = flag.Float64("skew", 0.6, "Zipfian skew in [0,1]")
		accounts = flag.Uint64("accounts", 10_000, "SmallBank account population")
		seed     = flag.Int64("seed", 1, "workload seed")
		verbose  = flag.Bool("v", false, "print per-group commit layout")
		compare  = flag.Bool("cg", true, "also run the CG baseline")
	)
	flag.Parse()

	gen, err := workload.NewGenerator(workload.Config{
		Seed: *seed, Accounts: *accounts, Skew: *skew, InitialBalance: 10_000,
	})
	if err != nil {
		return err
	}
	txs := gen.Txs(*txCount)
	for i, tx := range txs {
		tx.ID = types.TxID(i)
	}
	snapshot, err := gen.Snapshot(txs)
	if err != nil {
		return err
	}
	sims, err := workload.Simulate(txs, snapshot)
	if err != nil {
		return err
	}

	acg := core.BuildACG(sims)
	fmt.Printf("workload: %d txs, skew %.2f, %d accounts (seed %d)\n", *txCount, *skew, *accounts, *seed)
	fmt.Printf("ACG: %d addresses, %d units, %d dependency edges\n",
		acg.NumAddresses(), acg.NumUnits(), acg.Deps.EdgeCount())

	ranks := core.RankAddresses(acg, core.RankMaxOutDegree)
	fmt.Printf("rank division: %d addresses ranked; first ranked address has out-degree %d\n",
		len(ranks), acg.Deps.OutDegree(ranks[0]))

	sched := core.MustNewScheduler(core.DefaultConfig())
	start := time.Now()
	schedule, pb, err := sched.Schedule(sims)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	groups := schedule.Groups()
	fmt.Printf("\nnezha: committed %d, aborted %d (%.1f%%), %d commit groups, in %v\n",
		schedule.CommittedCount(), schedule.AbortedCount(), 100*schedule.AbortRate(), len(groups), elapsed.Round(time.Microsecond))
	fmt.Printf("  phases: graph %v, rank division %v, sorting %v\n",
		pb.Graph.Round(time.Microsecond), pb.Cycle.Round(time.Microsecond), pb.Sort.Round(time.Microsecond))
	if err := core.VerifySchedule(snapshot, sims, schedule); err != nil {
		return fmt.Errorf("schedule failed verification: %w", err)
	}
	fmt.Println("  serializability: verified")

	if *verbose {
		for i, g := range groups {
			fmt.Printf("  group %3d: %d txs\n", i+1, len(g))
		}
		for _, a := range schedule.Aborted {
			fmt.Printf("  aborted tx %d: %s\n", a.ID, a.Reason)
		}
	}

	if *compare {
		start = time.Now()
		cgSched, cgPb, err := cg.NewScheduler(cg.DefaultConfig()).Schedule(sims)
		elapsed = time.Since(start)
		if err != nil {
			fmt.Printf("\ncg: FAILED after %v: %v\n", elapsed.Round(time.Millisecond), err)
			return nil
		}
		fmt.Printf("\ncg: committed %d, aborted %d (%.1f%%), serial order, in %v\n",
			cgSched.CommittedCount(), cgSched.AbortedCount(), 100*cgSched.AbortRate(), elapsed.Round(time.Microsecond))
		fmt.Printf("  phases: graph %v, cycle removal %v, topo sort %v\n",
			cgPb.Graph.Round(time.Microsecond), cgPb.Cycle.Round(time.Microsecond), cgPb.Sort.Round(time.Microsecond))
	}
	return nil
}
