package main

// The metrics subcommand scrapes a live telemetry endpoint (a nezha-node
// or nezha-bench started with -metrics-addr) and pretty-prints the
// exposition: families grouped with their type and help text, samples
// aligned, histograms condensed to count/sum/mean unless -buckets is set.

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func runMetricsCmd(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "localhost:9090", "host:port (or full URL) of a -metrics-addr endpoint")
		filter  = fs.String("filter", "", "only show families whose name contains this substring")
		buckets = fs.Bool("buckets", false, "show individual histogram buckets")
		timeout = fs.Duration("timeout", 5*time.Second, "scrape timeout")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: nezha-inspect metrics [-addr host:port] [-filter substr] [-buckets]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/metrics") {
		url = strings.TrimSuffix(url, "/") + "/metrics"
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: HTTP %s", url, resp.Status)
	}
	fams, err := parseExposition(resp.Body)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		if *filter != "" && !strings.Contains(name, *filter) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("no matching series")
		return nil
	}
	for _, name := range names {
		printFamily(fams[name], *buckets)
	}
	printMVCCSummary(fams, names)
	return nil
}

// printMVCCSummary derives the version-cache health numbers from the raw
// nezha_mvcc_* families: hit rates are ratios of counters the exposition
// only shows as absolutes, and the mean chain depth folds the depth
// histogram. Printed only when at least one mvcc family survived the
// filter, so `-filter nezha_mvcc` gives the full picture in one screen.
func printMVCCSummary(fams map[string]*expoFamily, shown []string) {
	seen := false
	for _, name := range shown {
		if strings.HasPrefix(name, "nezha_mvcc_") {
			seen = true
			break
		}
	}
	if !seen {
		return
	}
	total := func(name string) (float64, bool) {
		f, ok := fams[name]
		if !ok {
			return 0, false
		}
		sum := 0.0
		for _, s := range f.samples {
			if strings.HasSuffix(s.series, "_bucket") {
				continue // histogram buckets are cumulative, not additive
			}
			sum += s.value
		}
		return sum, true
	}
	ratio := func(num, den float64) string {
		if den == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", 100*num/den)
	}
	// Each derived line prints only when the families it folds are actually
	// in the scrape — a node that never created the MVCC cache (or a
	// -filter that excluded a family) must not yield fabricated zeros.
	printed := false
	header := func() {
		if !printed {
			fmt.Println("mvcc summary")
			printed = true
		}
	}
	hits, okH := total("nezha_mvcc_cache_hits_total")
	misses, okM := total("nezha_mvcc_cache_misses_total")
	if okH || okM {
		header()
		fmt.Printf("  %-28s %s (%s hits, %s misses)\n", "version-cache hit rate",
			ratio(hits, hits+misses), formatNum(hits), formatNum(misses))
	}
	pf, okPf := total("nezha_mvcc_prefetched_keys_total")
	pfHits, okPfH := total("nezha_mvcc_prefetch_hits_total")
	pfSkip, _ := total("nezha_mvcc_prefetch_skipped_total")
	if okPf || okPfH {
		header()
		fmt.Printf("  %-28s %s (%s warmed, %s used, %s skipped warm)\n", "prefetch hit rate",
			ratio(pfHits, pf), formatNum(pf), formatNum(pfHits), formatNum(pfSkip))
	}
	if gc, ok := total("nezha_mvcc_gc_versions_total"); ok {
		header()
		fmt.Printf("  %-28s %s\n", "versions folded by GC", formatNum(gc))
	}
	chains, okC := total("nezha_mvcc_live_chains")
	versions, okV := total("nezha_mvcc_live_versions")
	if okC || okV {
		header()
		fmt.Printf("  %-28s %s chains / %s versions\n", "live state", formatNum(chains), formatNum(versions))
	}
	if f, ok := fams["nezha_mvcc_chain_depth"]; ok {
		var count, sum float64
		for _, s := range f.samples {
			switch {
			case strings.HasSuffix(s.series, "_count"):
				count += s.value
			case strings.HasSuffix(s.series, "_sum"):
				sum += s.value
			}
		}
		if count > 0 {
			header()
			fmt.Printf("  %-28s %.2f versions (over %s GC observations)\n", "mean chain depth", sum/count, formatNum(count))
		}
	}
	if !printed {
		fmt.Println("mvcc summary: no derivable nezha_mvcc_* counters in this scrape")
	}
	fmt.Println()
}

// expoFamily is one parsed metric family.
type expoFamily struct {
	name    string
	kind    string
	help    string
	samples []expoSample
}

// expoSample is one exposition line: a possibly-suffixed series name, its
// label string, and the value.
type expoSample struct {
	series string // full series name, e.g. foo_bucket
	labels string // raw {..} text, "" when unlabelled
	value  float64
}

// parseExposition reads Prometheus text format, grouping samples under
// their family (histogram _bucket/_sum/_count series fold into the base
// name).
func parseExposition(r io.Reader) (map[string]*expoFamily, error) {
	fams := make(map[string]*expoFamily)
	get := func(name string) *expoFamily {
		f, ok := fams[name]
		if !ok {
			f = &expoFamily{name: name, kind: "untyped"}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			get(name).help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			get(name).kind = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		series := line
		labels := ""
		rest := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				continue // malformed
			}
			series, labels = line[:i], line[i:j+1]
			rest = line[:i] + " " + line[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		base := series
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(series, suffix)
			if trimmed != series {
				if f, ok := fams[trimmed]; ok && f.kind == "histogram" {
					base = trimmed
				}
				break
			}
		}
		get(base).samples = append(get(base).samples, expoSample{series: series, labels: labels, value: v})
	}
	return fams, sc.Err()
}

// printFamily renders one family. Histograms aggregate to count, sum,
// and mean per label set; -buckets expands the cumulative buckets too.
func printFamily(f *expoFamily, showBuckets bool) {
	fmt.Printf("%s (%s)", f.name, f.kind)
	if f.help != "" {
		fmt.Printf(" — %s", f.help)
	}
	fmt.Println()
	if f.kind == "histogram" {
		printHistogramFamily(f, showBuckets)
		fmt.Println()
		return
	}
	sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
	for _, s := range f.samples {
		label := s.labels
		if label == "" {
			label = "(no labels)"
		}
		fmt.Printf("  %-60s %s\n", label, formatNum(s.value))
	}
	fmt.Println()
}

func printHistogramFamily(f *expoFamily, showBuckets bool) {
	type agg struct {
		count, sum float64
		buckets    []expoSample
	}
	byLabel := make(map[string]*agg)
	var order []string
	get := func(labels string) *agg {
		a, ok := byLabel[labels]
		if !ok {
			a = &agg{}
			byLabel[labels] = a
			order = append(order, labels)
		}
		return a
	}
	for _, s := range f.samples {
		switch {
		case strings.HasSuffix(s.series, "_count"):
			get(s.labels).count = s.value
		case strings.HasSuffix(s.series, "_sum"):
			get(s.labels).sum = s.value
		case strings.HasSuffix(s.series, "_bucket"):
			base := stripLabel(s.labels, "le")
			get(base).buckets = append(get(base).buckets, s)
		}
	}
	sort.Strings(order)
	for _, labels := range order {
		a := byLabel[labels]
		name := labels
		if name == "" {
			name = "(no labels)"
		}
		mean := 0.0
		if a.count > 0 {
			mean = a.sum / a.count
		}
		fmt.Printf("  %-60s count=%s sum=%s mean=%s\n",
			name, formatNum(a.count), formatNum(a.sum), formatNum(mean))
		if showBuckets {
			for _, b := range a.buckets {
				fmt.Printf("    %-58s %s\n", b.labels, formatNum(b.value))
			}
		}
	}
}

// stripLabel removes one label pair from a raw {..} label string.
func stripLabel(labels, name string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	parts := splitLabels(inner)
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, name+"=") {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
