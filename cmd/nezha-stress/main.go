// Command nezha-stress drives a live in-process cluster at a sustained
// transaction load through the admission-controlled mempool, and reports
// commit throughput and admission-to-commit latency percentiles.
//
// Usage:
//
//	nezha-stress -duration 30s -tps 2000                 # open loop at 2000 TPS
//	nezha-stress -duration 30s                           # closed loop (find natural throughput)
//	nezha-stress -duration 2m -chaos -journal-dir /tmp/j # CI soak: faults armed, forensics dumped
//
// The process exits non-zero if any run oracle fails: cross-node state
// divergence, a stalled commit watermark (no epoch for -stall), no
// commits at all, or fewer epochs than -min-epochs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/stress"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nezha-stress: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadName = flag.String("workload", "smallbank", "workload: smallbank | token")
		accounts     = flag.Uint64("accounts", 10_000, "account population")
		skew         = flag.Float64("skew", 0.6, "workload Zipfian skew")
		sign         = flag.Bool("sign", false, "ed25519-sign transactions and verify at admission (smallbank only)")
		nodes        = flag.Int("nodes", 2, "cluster size (every node mines and verifies)")
		chains       = flag.Int("chains", 4, "parallel chains")
		blockSize    = flag.Int("blocksize", 200, "transactions per block")
		difficulty   = flag.Int("difficulty", 0, "PoW difficulty bits (0 = instant mining)")
		duration     = flag.Duration("duration", 30*time.Second, "run length")
		tps          = flag.Float64("tps", 0, "open-loop target TPS (0 = closed loop)")
		inFlight     = flag.Int("inflight", 0, "closed-loop in-flight bound (0 = 4*blocksize*nodes)")
		schedName    = flag.String("scheduler", "nezha", "nezha | serial")
		seed         = flag.Int64("seed", 1, "workload and fault-injection seed")
		stall        = flag.Duration("stall", 30*time.Second, "fail if no epoch commits for this long")
		minEpochs    = flag.Uint64("min-epochs", 0, "fail if fewer epochs commit")
		chaos        = flag.Bool("chaos", false, "arm mempool failpoints (admission faults, eviction faults on a small shard cap)")
		journalDir   = flag.String("journal-dir", "", "enable the flight recorder and dump all journals here on exit")
		reportPath   = flag.String("report", "", "also write the report to this file")
		addr         = flag.String("metrics-addr", "", "serve /metrics and pprof on this host:port while running")
	)
	flag.Parse()

	if *addr != "" {
		srv, err := metrics.StartServer(*addr, metrics.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", srv.Addr())
	}

	w, err := stress.NewWorkload(*workloadName, stress.Options{
		Seed: *seed, Accounts: *accounts, Skew: *skew, Sign: *sign,
	})
	if err != nil {
		return err
	}

	cfg := stress.Config{
		Workload:         w,
		Nodes:            *nodes,
		Chains:           *chains,
		BlockSize:        *blockSize,
		DifficultyBits:   *difficulty,
		Duration:         *duration,
		TargetTPS:        *tps,
		InFlight:         *inFlight,
		VerifySignatures: *sign,
		Scheduler:        *schedName,
		StallTimeout:     *stall,
		Seed:             *seed,
		JournalDir:       *journalDir,
	}
	if *chaos {
		// The soak faults: probabilistic admission errors, plus eviction
		// faults made reachable by a small shard cap. Both hit the
		// ingestion edge only — the pipeline oracles must hold regardless.
		cfg.Mempool = mempool.Config{ShardCap: 512}
		cfg.Failpoints = map[fail.Name]fail.Spec{
			fail.MempoolAdmit: {Mode: fail.ModeError, Prob: 0.02},
			fail.MempoolEvict: {Mode: fail.ModeError, Prob: 0.5},
		}
	}

	fmt.Printf("stress: %s over %d nodes, %d chains, blocksize %d, %v (chaos=%v)\n",
		*workloadName, *nodes, *chains, *blockSize, *duration, *chaos)

	rep, err := stress.Run(context.Background(), cfg)
	if rep != nil {
		fmt.Println(rep)
		if *reportPath != "" {
			if werr := os.WriteFile(*reportPath, []byte(rep.String()+"\n"), 0o644); werr != nil && err == nil {
				err = werr
			}
		}
	}
	if err != nil {
		return err
	}
	if rep.Epochs < *minEpochs {
		return fmt.Errorf("only %d epochs committed, need %d", rep.Epochs, *minEpochs)
	}
	return nil
}
