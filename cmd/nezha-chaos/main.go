// Command nezha-chaos runs the fault-injection convergence harness
// (internal/chaos) from the command line — the same sweep CI runs, in a
// form that reproduces a CI failure locally in one command.
//
//	nezha-chaos run         -seeds 20      # seed sweep
//	nezha-chaos replay      -seed 7 -v     # one scenario, verbose event log
//	nezha-chaos sweep-crash -v             # crash-and-recover every failpoint site
//
// Exit codes: 0 when every scenario/trial converged, 1 when any failed
// (the failure report precedes the exit), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nezha-dag/nezha/internal/chaos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "sweep-crash":
		err = cmdSweepCrash(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nezha-chaos <command> [flags]

commands:
  run          sweep scenario seeds through the chaos cluster and check convergence
  replay       re-run one scenario by seed with its event log
  sweep-crash  crash-and-restart a node at every registered failpoint site and
               torn-WAL offset, checking recovery against a never-crashed twin

exit codes: 0 all converged, 1 any scenario/trial failed, 2 usage error`)
}

// scenarioFlags registers the per-scenario knobs shared by run and replay.
func scenarioFlags(fs *flag.FlagSet) *chaos.Config {
	cfg := &chaos.Config{}
	fs.IntVar(&cfg.Nodes, "nodes", 0, "cluster size (0 = default 4)")
	fs.IntVar(&cfg.Chains, "chains", 0, "parallel chains (0 = default 3)")
	fs.IntVar(&cfg.Rounds, "rounds", 0, "fault-active rounds (0 = default 36)")
	fs.IntVar(&cfg.Accounts, "accounts", 0, "workload accounts (0 = default 300)")
	fs.StringVar(&cfg.Dir, "dir", "", "scratch dir for node stores (default: temp, removed)")
	fs.BoolVar(&cfg.SnapshotExec, "snapshot-exec", false, "use the legacy snapshot-copy executor instead of the MVCC view default")
	fs.BoolVar(&cfg.Mempool, "mempool", false, "front every miner with the admission-controlled mempool and inject admission faults")
	fs.StringVar(&cfg.JournalDir, "journal-dir", "", "dump per-node flight-recorder journals here (default: only on failure, to a kept temp dir)")
	return cfg
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cfg := scenarioFlags(fs)
	seeds := fs.Int("seeds", 20, "scenarios to run")
	startSeed := fs.Int64("start-seed", 1, "first scenario seed")
	maxFailures := fs.Int("max-failures", 3, "stop the sweep after this many failures")
	verbose := fs.Bool("v", false, "one line per scenario")
	fs.Parse(args)

	sc := chaos.SweepConfig{
		StartSeed:   *startSeed,
		Seeds:       *seeds,
		Scenario:    *cfg,
		MaxFailures: *maxFailures,
	}
	if *verbose {
		sc.Verbose = os.Stdout
	}
	rep, err := chaos.Sweep(sc)
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Printf("reproduce: nezha-chaos replay -seed %d\n", f.Seed)
		}
		return fmt.Errorf("nezha-chaos: %d of %d scenarios failed", len(rep.Failures), rep.Trials)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	cfg := scenarioFlags(fs)
	seed := fs.Int64("seed", -1, "scenario seed to replay (required)")
	verbose := fs.Bool("v", true, "stream the scenario event log")
	fs.Parse(args)

	if *seed < 0 {
		return fmt.Errorf("replay: -seed is required")
	}
	cfg.Seed = *seed
	if *verbose {
		cfg.Verbose = os.Stdout
	}
	res, err := chaos.Run(*cfg)
	if err != nil {
		return err
	}
	fmt.Printf("seed=%d epochs=%d blocks=%d crash-restarts=%d partitions=%d storage-errors=%d stalls=%d mempool-faults=%d\n",
		res.Seed, res.Epochs, res.Blocks, res.CrashRestarts, res.Partitions, res.StorageErrors, res.Stalls, res.MempoolFaults)
	if res.Failure == nil {
		fmt.Println("result: ok")
		if cfg.JournalDir != "" {
			fmt.Printf("journals: %s\n", cfg.JournalDir)
		}
		return nil
	}
	// Structured failure report: the what/where line, the journal dump
	// location, and — set apart, because it is the part worth reading
	// first — the earliest cross-node divergence the flight recorders saw.
	f := res.Failure
	fmt.Printf("result: FAIL\nseed %d round %d: %s\n", f.Seed, f.Round, f.Msg)
	if f.JournalDir != "" {
		fmt.Printf("journals: %s\n", f.JournalDir)
	}
	if f.Divergence != "" {
		fmt.Printf("first divergence:\n%s\n", f.Divergence)
	} else {
		fmt.Println("deterministic journals agree across nodes (wedge or timeout, not a state split)")
	}
	return fmt.Errorf("replay: scenario failed (reproduce: nezha-chaos replay -seed %d)", f.Seed)
}

func cmdSweepCrash(args []string) error {
	fs := flag.NewFlagSet("sweep-crash", flag.ExitOnError)
	cfg := chaos.CrashSweepConfig{}
	fs.IntVar(&cfg.Rounds, "rounds", 0, "mining rounds per trial (0 = default 12)")
	fs.IntVar(&cfg.Chains, "chains", 0, "parallel chains per trial (0 = default 2)")
	fs.IntVar(&cfg.TornOffsets, "torn", 0, "torn-WAL truncation offsets to sweep (0 = default 4)")
	fs.Int64Var(&cfg.Seed, "seed", 0, "workload seed (0 = default 11)")
	fs.StringVar(&cfg.Dir, "dir", "", "scratch dir for trial stores (default: temp, kept on failure)")
	verbose := fs.Bool("v", false, "one line per trial")
	fs.Parse(args)

	if *verbose {
		cfg.Verbose = os.Stdout
	}
	rep, err := chaos.CrashSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	failures := 0
	for _, t := range rep.Trials {
		if t.Err != "" {
			failures++
			fmt.Printf("FAIL %s: %s\n", t.Name, t.Err)
		}
	}
	if failures > 0 {
		if rep.Dir != "" {
			fmt.Printf("trial stores kept for forensics: %s\n", rep.Dir)
		}
		return fmt.Errorf("sweep-crash: %d of %d trials failed", failures, len(rep.Trials))
	}
	return nil
}
