// Command nezha-vet runs the repo-specific invariant analyzers over the
// tree — the static half of the correctness story whose dynamic half is
// the differential harness (nezha-check) and the chaos sweeps
// (nezha-chaos). CI runs it as a required job; run it locally with:
//
//	go run ./cmd/nezha-vet ./...
//	go run ./cmd/nezha-vet -run detmap,failpoint ./internal/core
//	go run ./cmd/nezha-vet -fix ./...   # apply mechanical suggested fixes
//
// The analyzers and the invariants they enforce are documented in
// internal/lint (one doc.go per analyzer); the //nezha:<check>-ok
// annotation grammar is in internal/lint/doc.go and DESIGN.md §11.
package main

import (
	"github.com/nezha-dag/nezha/internal/lint/analysis"
	"github.com/nezha-dag/nezha/internal/lint/detmap"
	"github.com/nezha-dag/nezha/internal/lint/detsource"
	"github.com/nezha-dag/nezha/internal/lint/dettaint"
	"github.com/nezha-dag/nezha/internal/lint/failpoint"
	"github.com/nezha-dag/nezha/internal/lint/journalhygiene"
	"github.com/nezha-dag/nezha/internal/lint/lockorder"
	"github.com/nezha-dag/nezha/internal/lint/locksafe"
	"github.com/nezha-dag/nezha/internal/lint/metricshygiene"
)

func main() {
	analysis.Main(
		detmap.Analyzer,
		detsource.Analyzer,
		dettaint.Analyzer,
		failpoint.Analyzer,
		journalhygiene.Analyzer,
		lockorder.Analyzer,
		locksafe.Analyzer,
		metricshygiene.Analyzer,
	)
}
