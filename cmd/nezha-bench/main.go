// Command nezha-bench regenerates the tables and figures of the paper's
// evaluation (§VI) plus the DESIGN.md ablations.
//
// Usage:
//
//	nezha-bench -exp all                # every experiment, paper parameters
//	nezha-bench -exp fig9 -quick        # one experiment, shrunk for a fast pass
//	nezha-bench -exp fig11 -csv         # CSV instead of a text table
//	nezha-bench -exp stages -parallelism 4   # staged-pipeline profile, 4-way core
//	nezha-bench -list                   # list experiment names
//
// -parallelism sets the scheduler core's fan-out (sharded ACG build and
// cluster-parallel sorting) and the node's background prevalidation pool:
// 0 uses GOMAXPROCS, 1 forces the sequential reference core. Every setting
// produces byte-identical schedules; the knob only trades goroutine
// overhead against multi-core speedup.
//
// Absolute numbers depend on the machine; EXPERIMENTS.md records the shape
// comparisons against the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nezha-dag/nezha/internal/bench"
	"github.com/nezha-dag/nezha/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nezha-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment name or 'all'")
		quick     = flag.Bool("quick", false, "shrink workloads for a fast smoke pass")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list      = flag.Bool("list", false, "list experiments and exit")
		seed      = flag.Int64("seed", 1, "workload seed")
		reps      = flag.Int("reps", 0, "epochs per data point (0 = default)")
		blockSize = flag.Int("blocksize", 0, "transactions per block (0 = default)")
		workers   = flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
		par       = flag.Int("parallelism", 0, "scheduler-core fan-out (0 = GOMAXPROCS, 1 = sequential reference)")
		addr      = flag.String("metrics-addr", "", "serve /metrics, /healthz, and pprof during the run (empty = off)")
	)
	flag.Parse()

	if *addr != "" {
		srv, err := metrics.StartServer(*addr, metrics.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", srv.Addr())
	}

	if *par < 0 {
		return fmt.Errorf("-parallelism must be >= 0 (0 = GOMAXPROCS, 1 = sequential reference), got %d", *par)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-18s %s\n", e.Name, e.Desc)
		}
		return nil
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = opts.Quick()
	}
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Parallelism = *par
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *blockSize > 0 {
		opts.BlockSize = *blockSize
	}

	var experiments []bench.Experiment
	if *exp == "all" {
		experiments = bench.Experiments()
	} else {
		e, err := bench.Lookup(*exp)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	}

	for _, e := range experiments {
		start := time.Now()
		tbl, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if *csv {
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				return err
			}
			continue
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s finished in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
