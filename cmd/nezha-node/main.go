// Command nezha-node runs a simulated multi-node OHIE network end to end,
// shaped like the paper's deployment (§VI-A: miner nodes, one full node
// that synchronizes and measures, one client that proposes transactions):
// a client broadcasts SmallBank transactions over the simulated P2P fabric,
// miners race proof-of-work over parallel chains and gossip blocks, and
// every node — including the non-mining full node — independently runs the
// four-phase pipeline (validate → speculative execution → concurrency
// control → commit), converging on the same state root each epoch.
//
// Usage:
//
//	nezha-node -nodes 4 -chains 4 -epochs 3 -skew 0.6 -scheduler nezha
//	nezha-node -metrics-addr :9090 -trace-out epochs.trace.json
//
// -metrics-addr serves live telemetry (/metrics in Prometheus text
// format, /healthz, /debug/pprof) while the network runs; -trace-out
// writes the full node's per-stage spans as Chrome trace-event JSON.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/p2p"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "nezha-node: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes      = flag.Int("nodes", 4, "number of full nodes (each also mines)")
		chains     = flag.Int("chains", 4, "parallel chains (block concurrency)")
		epochs     = flag.Uint64("epochs", 3, "epochs to process before stopping")
		skew       = flag.Float64("skew", 0.6, "workload Zipfian skew")
		blockSize  = flag.Int("blocksize", 100, "transactions per block")
		txCount    = flag.Int("txs", 4000, "client transactions injected up front")
		difficulty = flag.Int("difficulty", 6, "PoW difficulty bits")
		schedName  = flag.String("scheduler", "nezha", "nezha | cg | serial")
		latency    = flag.Duration("latency", time.Millisecond, "simulated network latency")
		datadir    = flag.String("datadir", "", "directory for durable LSM stores (empty = in-memory)")
		addr       = flag.String("metrics-addr", "", "serve /metrics, /healthz, and pprof on this host:port (empty = off)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of the full node's epochs to this file")
		retain     = flag.Int("retain-stats", 4096, "per-epoch stat records each node retains (0 = unbounded)")
	)
	flag.Parse()

	if *addr != "" {
		srv, err := metrics.StartServer(*addr, metrics.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (healthz, debug/pprof alongside)\n", srv.Addr())
	}

	makeScheduler := func() (types.Scheduler, error) {
		switch *schedName {
		case "nezha":
			return core.MustNewScheduler(core.DefaultConfig()), nil
		case "cg":
			return cg.NewScheduler(cg.DefaultConfig()), nil
		case "serial":
			return nil, nil
		default:
			return nil, fmt.Errorf("unknown scheduler %q", *schedName)
		}
	}

	// Client workload: SmallBank over 10k accounts, with genesis funding.
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 1, Accounts: 10_000, Skew: *skew, InitialBalance: 10_000,
	})
	if err != nil {
		return err
	}
	txs := gen.Txs(*txCount)
	genesis, err := gen.GenesisWrites(txs)
	if err != nil {
		return err
	}

	net := p2p.NewNetwork(p2p.Config{Latency: *latency, Jitter: *latency, QueueLen: 4096})
	defer net.Close()

	type peer struct {
		node  *node.Node
		miner *node.Miner // nil for the full (observer) node
		ep    *p2p.Endpoint
	}
	// *nodes miners plus one non-mining full node, as in the paper's
	// cluster (the full node is the measurement vantage point).
	peers := make([]*peer, *nodes+1)
	for i := range peers {
		sched, err := makeScheduler()
		if err != nil {
			return err
		}
		id := fmt.Sprintf("miner-%d", i)
		if i == *nodes {
			id = "full-node"
		}
		var store kvstore.Store = kvstore.NewMemory()
		persist := false
		if *datadir != "" {
			lsm, err := kvstore.OpenLSM(filepath.Join(*datadir, id), kvstore.DefaultLSMOptions())
			if err != nil {
				return err
			}
			defer lsm.Close()
			store, persist = lsm, true
		}
		n, err := node.New(id, store, node.Config{
			Consensus:        consensus.Params{Chains: *chains, DifficultyBits: *difficulty},
			Scheduler:        sched,
			Contracts:        map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
			GenesisWrites:    genesis,
			ConfirmDepth:     3,
			Persist:          persist,
			RetainEpochStats: *retain,
		})
		if err != nil {
			return err
		}
		ep, err := net.Join(id)
		if err != nil {
			return err
		}
		var m *node.Miner
		if i < *nodes {
			m = node.NewMiner(n, types.AddressFromUint64(uint64(i)), *blockSize)
		}
		peers[i] = &peer{node: n, miner: m, ep: ep}
	}
	fullNode := peers[*nodes]
	var tracer *metrics.Tracer
	if *traceOut != "" {
		// Trace the full node — the paper's measurement vantage point.
		tracer = metrics.NewTracer()
		fullNode.node.SetTracer(tracer)
	}

	// The client proposes transactions over the network; miners pick
	// them up from their inboxes (MsgTxs), exactly the paper's topology.
	client, err := net.Join("client")
	if err != nil {
		return err
	}
	const txBatch = 500
	for start := 0; start < len(txs); start += txBatch {
		end := start + txBatch
		if end > len(txs) {
			end = len(txs)
		}
		client.Broadcast(p2p.Message{Type: p2p.MsgTxs, Txs: txs[start:end]})
	}

	fmt.Printf("network: %d miners + 1 full node + 1 client, %d chains, difficulty %d bits, scheduler %s\n",
		*nodes, *chains, *difficulty, *schedName)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	start := time.Now()
	// Event loop: each round, every node mines one candidate (cancelled
	// quickly so rounds interleave), gossips it, drains its inbox, and
	// processes any completed epochs. The settle delay keeps the round
	// period well above network latency, as a 1 s block interval over a
	// same-region LAN is (§VI-A) — without it, synchronized miners bury
	// unresolved forks faster than gossip can deliver the candidates.
	settle := 4 * *latency
	for peers[0].node.NextEpoch() <= *epochs {
		if ctx.Err() != nil {
			return fmt.Errorf("timed out before epoch %d completed", *epochs)
		}
		time.Sleep(settle)
		for _, p := range peers {
			if p.miner == nil {
				continue
			}
			mineCtx, mineCancel := context.WithTimeout(ctx, 250*time.Millisecond)
			b, err := p.miner.Mine(mineCtx)
			mineCancel()
			if errors.Is(err, consensus.ErrMiningCancelled) {
				continue
			}
			if err != nil {
				return err
			}
			if err := p.node.SubmitBlock(b); err == nil {
				p.ep.Broadcast(p2p.Message{Type: p2p.MsgBlock, Block: b})
			}
		}
		for _, p := range peers {
			for drained := false; !drained; {
				select {
				case msg := <-p.ep.Inbox():
					if txs, err := p.node.HandleMessage(p.ep, msg); err != nil {
						return fmt.Errorf("%s: %w", p.node.ID(), err)
					} else if len(txs) > 0 && p.miner != nil {
						p.miner.AddTxs(txs)
					}
				default:
					drained = true
				}
			}
			results, err := p.node.ProcessReadyEpochs()
			if err != nil {
				return err
			}
			for _, r := range results {
				if p == fullNode {
					fmt.Printf("epoch %d (full node): %d txs, %d committed, %d aborted, root %s (%v)\n",
						r.Epoch, r.Stats.Txs, r.Stats.Committed, r.Stats.Aborted,
						r.StateRoot.Short(), r.Stats.Total().Round(time.Microsecond))
				}
			}
		}
	}

	// Agreement check: every node that reached each epoch must agree.
	fmt.Printf("\nfinal state roots after %v:\n", time.Since(start).Round(time.Millisecond))
	var root types.Hash
	agree := true
	minEpoch := peers[0].node.NextEpoch()
	for _, p := range peers {
		if p.node.NextEpoch() < minEpoch {
			minEpoch = p.node.NextEpoch()
		}
	}
	for i, p := range peers {
		fmt.Printf("  %s: epoch %d, root %s\n", p.node.ID(), p.node.NextEpoch()-1, p.node.StateRoot().Short())
		if i == 0 {
			root = p.node.StateRoot()
		} else if p.node.NextEpoch() == peers[0].node.NextEpoch() && p.node.StateRoot() != root {
			agree = false
		}
	}
	if !agree {
		return fmt.Errorf("nodes at the same epoch DISAGREE on the state root")
	}
	fmt.Println("nodes at the same epoch agree on the state root")
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s (load in https://ui.perfetto.dev or chrome://tracing)\n",
			tracer.Len(), *traceOut)
	}
	return nil
}
