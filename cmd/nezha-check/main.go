// Command nezha-check runs the differential correctness harness
// (internal/check) from the command line — the same battery CI runs on
// every push, in a form that reproduces a CI failure locally in one
// command.
//
//	nezha-check run     -seeds 10 -txs 256 -keys 64        # full sweep
//	nezha-check replay  -seed 7 -profile multi-write-rescue # one failing trial, verbose
//	nezha-check corpus  -dir .                              # regenerate fuzz seed corpora
//
// run exits nonzero on any divergence and prints the exact replay command
// for each failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/check"
	"github.com/nezha-dag/nezha/internal/rlp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "execdiff":
		err = cmdExecDiff(os.Args[2:])
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nezha-check <command> [flags]

commands:
  run       sweep seeds through every adversarial profile and diff-check them
  replay    re-run one (profile, seed) trial verbosely, minimizing any failure
  execdiff  diff the MVCC executor against the snapshot-copy executor over evolving epochs
  corpus    write the fuzz seed corpora under testdata/fuzz/ (run from repo root)`)
}

// parseParallelisms turns "1,2,4,8" into a slice.
func parseParallelisms(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad parallelism list %q", s)
		}
		out = append(out, p)
	}
	return out, nil
}

// cgBudget returns the CLI's baseline budget: tight enough that trials
// whose cycle enumeration explodes (the paper's documented CG failure mode)
// surface quickly as cg-skipped rather than stalling the sweep.
func cgBudget(seconds int) *cg.Config {
	return &cg.Config{MaxCycles: 100_000, SampleCycles: 50_000, TimeBudget: time.Duration(seconds) * time.Second}
}

// runVet shells out to the nezha-vet analyzer suite (tier 0 of the test
// pyramid, see TESTING.md): static invariants first, then the dynamic
// sweep — a registry or determinism violation fails fast without burning
// minutes of differential trials. Module-path patterns keep it working
// from any directory inside the module.
func runVet() error {
	cmd := exec.Command("go", "run",
		"github.com/nezha-dag/nezha/cmd/nezha-vet", "github.com/nezha-dag/nezha/...")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("nezha-vet failed: %w", err)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seeds := fs.Int("seeds", 10, "seeds per profile")
	startSeed := fs.Int64("start-seed", 1, "first seed")
	txs := fs.Int("txs", 256, "transactions per epoch")
	keys := fs.Int("keys", 64, "address-space size")
	profiles := fs.String("profiles", "all", "comma-separated profile names, or 'all'")
	par := fs.String("par", "1,2,4,8", "parallelism levels to diff")
	cgSecs := fs.Int("cg-budget", 5, "CG baseline time budget per trial, seconds (0 skips CG)")
	vet := fs.Bool("vet", false, "run the nezha-vet analyzers over the tree first (tier 0)")
	verbose := fs.Bool("v", false, "one line per trial")
	fs.Parse(args)

	if *vet {
		if err := runVet(); err != nil {
			return err
		}
	}
	pars, err := parseParallelisms(*par)
	if err != nil {
		return err
	}
	var profs []check.Profile
	if *profiles == "all" {
		profs = check.Profiles()
	} else {
		for _, name := range strings.Split(*profiles, ",") {
			p, err := check.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			profs = append(profs, p)
		}
	}
	cfg := check.RunConfig{
		StartSeed:    *startSeed,
		Seeds:        *seeds,
		Txs:          *txs,
		Keys:         *keys,
		Profiles:     profs,
		Parallelisms: pars,
		CG:           cgBudget(*cgSecs),
		SkipCG:       *cgSecs == 0,
	}
	if *verbose {
		cfg.Verbose = os.Stdout
	}
	rep := check.Run(cfg)
	fmt.Print(rep.Summary())
	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Printf("reproduce: nezha-check replay -seed %d -profile %s -txs %d -keys %d\n",
				f.Gen.Seed, f.Profile, f.Gen.Txs, f.Gen.Keys)
		}
		return fmt.Errorf("nezha-check: %d of %d trials diverged", len(rep.Failures), rep.Trials)
	}
	return nil
}

// cmdExecDiff sweeps the executor differential: the same workload run
// through the MVCC version-cache read path and the legacy snapshot-copy
// path must commit identical roots epoch after epoch (see
// internal/check/execdiff.go).
func cmdExecDiff(args []string) error {
	fs := flag.NewFlagSet("execdiff", flag.ExitOnError)
	seeds := fs.Int("seeds", 5, "seeds per profile")
	startSeed := fs.Int64("start-seed", 1, "first seed")
	epochs := fs.Int("epochs", 4, "committed generations per trial")
	txs := fs.Int("txs", 256, "transactions per epoch")
	keys := fs.Int("keys", 64, "address-space size")
	par := fs.String("par", "1,2,4,8", "parallelism levels to diff")
	verbose := fs.Bool("v", false, "one line per trial")
	fs.Parse(args)

	pars, err := parseParallelisms(*par)
	if err != nil {
		return err
	}
	cfg := check.ExecDiffRunConfig{
		StartSeed:    *startSeed,
		Seeds:        *seeds,
		Epochs:       *epochs,
		Txs:          *txs,
		Keys:         *keys,
		Parallelisms: pars,
	}
	if *verbose {
		cfg.Verbose = os.Stdout
	}
	rep := check.RunExecDiffSweep(cfg)
	fmt.Print(rep.Summary())
	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Printf("reproduce: nezha-check execdiff -start-seed %d -seeds 1 -epochs %d -txs %d -keys %d\n",
				f.Gen.Seed, *epochs, f.Gen.Txs, f.Gen.Keys)
		}
		return fmt.Errorf("nezha-check: %d of %d execdiff trials diverged", len(rep.Failures), rep.Trials)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	seed := fs.Int64("seed", -1, "seed to replay (required)")
	profile := fs.String("profile", "mixed", "profile name")
	txs := fs.Int("txs", 256, "transactions per epoch")
	keys := fs.Int("keys", 64, "address-space size")
	par := fs.String("par", "1,2,4,8", "parallelism levels to diff")
	cgSecs := fs.Int("cg-budget", 5, "CG baseline time budget, seconds (0 skips CG)")
	fs.Parse(args)

	if *seed < 0 {
		return fmt.Errorf("replay: -seed is required")
	}
	pars, err := parseParallelisms(*par)
	if err != nil {
		return err
	}
	p, err := check.ProfileByName(*profile)
	if err != nil {
		return err
	}
	gen := p.Gen
	gen.Seed = *seed
	gen.Txs = *txs
	gen.Keys = *keys

	res := check.RunTrial(check.TrialConfig{
		Gen:          gen,
		Parallelisms: pars,
		CG:           cgBudget(*cgSecs),
		SkipCG:       *cgSecs == 0,
	})
	fmt.Printf("profile=%s seed=%d txs=%d keys=%d\n", p.Name, gen.Seed, res.Txs, gen.Keys)
	fmt.Printf("nezha: committed=%d aborted=%d rescued=%d\n", res.Committed, res.Aborted, res.Rescued)
	if res.CGSkipped {
		fmt.Println("cg: skipped (cycle-explosion budget)")
	} else {
		fmt.Printf("cg: committed=%d\n", res.CGCommitted)
	}
	if res.Failure == nil {
		fmt.Println("result: ok")
		return nil
	}
	fmt.Printf("result: FAIL\n%s\n", res.Failure.Error())
	if len(res.Failure.Minimized) > 0 {
		fmt.Println("minimized failing transactions:")
		_, sims := check.Generate(gen)
		for _, id := range res.Failure.Minimized {
			sim := sims[id]
			fmt.Printf("  tx %-4d reads=%d writes=%d", id, len(sim.Reads), len(sim.Writes))
			for _, r := range sim.Reads {
				fmt.Printf(" R:%s", r.Key.Hex()[:8])
			}
			for _, w := range sim.Writes {
				fmt.Printf(" W:%s", w.Key.Hex()[:8])
			}
			fmt.Println()
		}
	}
	return fmt.Errorf("replay: trial diverged")
}

// cmdCorpus regenerates the checked-in fuzz seed corpora. Entries are built
// with the same codec the fuzz targets decode (check.EpochFromBytes /
// check.AppendTx), so every seed is a meaningful epoch, not noise.
func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	dir := fs.String("dir", ".", "repository root")
	fs.Parse(args)

	write := func(pkg, target, name string, inputs ...any) error {
		path := filepath.Join(*dir, "internal", pkg, "testdata", "fuzz", target, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		var b strings.Builder
		b.WriteString("go test fuzz v1\n")
		for _, in := range inputs {
			switch v := in.(type) {
			case []byte:
				fmt.Fprintf(&b, "[]byte(%q)\n", v)
			case uint16:
				fmt.Fprintf(&b, "uint16(%d)\n", v)
			default:
				return fmt.Errorf("corpus: unsupported input type %T", in)
			}
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	// Epoch-shaped seeds for FuzzSchedule and FuzzRankDivision.
	epochs := map[string][]byte{
		"uniform":    epochUniform(),
		"hot-key":    epochHotKey(),
		"cycle-ring": epochCycleRing(),
		"multiwrite": epochMultiWrite(),
		"stateless":  epochStateless(),
		"parallel":   epochParallel(),
	}
	for name, data := range epochs {
		for _, target := range []string{"FuzzSchedule", "FuzzRankDivision"} {
			if err := write("core", target, name, data); err != nil {
				return err
			}
		}
	}

	// Valid RLP encodings seed the decoder deeper than random bytes.
	rlpSeeds := map[string][]byte{
		"empty-string": rlp.Encode(rlp.String(nil)),
		"uint":         rlp.Encode(rlp.Uint(0xDEADBEEF)),
		"nested":       rlp.Encode(rlp.List(rlp.Uint(7), rlp.List(rlp.String([]byte("nezha"))), rlp.String(nil))),
		"long-string":  rlp.Encode(rlp.String(make([]byte, 64))),
		"deep-list":    rlp.Encode(rlp.List(rlp.List(rlp.List(rlp.List(rlp.Uint(1)))))),
	}
	for name, data := range rlpSeeds {
		if err := write("rlp", "FuzzRLP", name, data); err != nil {
			return err
		}
	}

	// Trie programs: overwrites, deletes, and prefix-sharing keys.
	mptSeeds := map[string][]byte{
		"puts":           {0x01, 0, 1, 0x01, 1, 2, 0x01, 2, 3, 0x01, 3, 4},
		"overwrite":      {0x01, 5, 1, 0x01, 5, 2, 0x01, 5, 3},
		"delete-restore": {0x01, 7, 1, 0x81, 7, 0, 0x01, 7, 2, 0x81, 7, 0},
		"dense":          denseTrieProgram(),
	}
	for name, data := range mptSeeds {
		if err := write("mpt", "FuzzProof", name, data); err != nil {
			return err
		}
	}

	// WAL programs plus a truncation offset.
	walSeeds := map[string][]any{
		"puts":      {[]byte{1, 8, 16, 1, 4, 8, 1, 2, 4}, uint16(0)},
		"mixed-ops": {[]byte{1, 3, 2, 2, 1, 0, 1, 8, 16, 2, 0, 0}, uint16(11)},
		"torn-mid":  {[]byte{1, 8, 16, 1, 8, 16, 1, 8, 16}, uint16(40)},
	}
	for name, inputs := range walSeeds {
		if err := write("kvstore", "FuzzWAL", name, inputs...); err != nil {
			return err
		}
	}
	return nil
}

// The epoch builders below speak check.AppendTx's dialect: byte 0 is the
// key-space size selector, then one AppendTx per transaction.

func epochUniform() []byte {
	out := []byte{15} // 16 keys
	for i := 0; i < 24; i++ {
		out = check.AppendTx(out, []byte{byte(i % 16)}, []byte{byte((i + 5) % 16)})
	}
	return out
}

func epochHotKey() []byte {
	out := []byte{7}
	for i := 0; i < 24; i++ {
		if i%2 == 0 {
			out = check.AppendTx(out, []byte{0}, []byte{0})
		} else {
			out = check.AppendTx(out, nil, []byte{0, byte(i % 8)})
		}
	}
	return out
}

func epochCycleRing() []byte {
	out := []byte{11} // 12 keys, rings of 4
	for i := 0; i < 24; i++ {
		r := byte((i % 4) + (i/4)*4%12)
		w := byte(((i+1)%4 + (i/4)*4) % 12)
		out = check.AppendTx(out, []byte{r % 12}, []byte{w})
	}
	return out
}

func epochMultiWrite() []byte {
	out := []byte{7}
	for i := 0; i < 20; i++ {
		out = check.AppendTx(out, nil, []byte{byte(i % 8), byte((i + 3) % 8)})
	}
	// A few readers make the multi-writers' rescue path reachable.
	for i := 0; i < 6; i++ {
		out = check.AppendTx(out, []byte{byte(i % 8)}, nil)
	}
	return out
}

func epochStateless() []byte {
	out := []byte{3}
	for i := 0; i < 10; i++ {
		out = check.AppendTx(out, nil, nil) // stateless
		out = check.AppendTx(out, []byte{byte(i % 4)}, []byte{byte((i + 1) % 4)})
	}
	return out
}

// epochParallel crosses the scheduler's 128-tx sequential-fallback
// threshold so fuzzing actually reaches the sharded builder and the
// cluster-parallel sorter.
func epochParallel() []byte {
	out := []byte{15}
	for i := 0; i < 160; i++ {
		out = check.AppendTx(out, []byte{byte(i % 16)}, []byte{byte((i * 7) % 16)})
	}
	return out
}

func denseTrieProgram() []byte {
	var out []byte
	for i := 0; i < 24; i++ {
		out = append(out, 0x01, byte(i), byte(i*3))
	}
	for i := 0; i < 24; i += 2 {
		out = append(out, 0x81, byte(i), 0)
	}
	return out
}
