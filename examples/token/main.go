// Token: the ERC20-style workload through the full pipeline — a second
// contract domain beyond the paper's SmallBank, with a different conflict
// structure (transfers REVERT on insufficient funds, exercising the
// execution-abort path; mints contend on one global supply cell).
//
//	go run ./examples/token -txs 400 -skew 0.8 -mint 0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/token"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

func main() {
	var (
		txCount = flag.Int("txs", 400, "transactions per epoch")
		skew    = flag.Float64("skew", 0.8, "Zipfian skew")
		mint    = flag.Float64("mint", 0.2, "fraction of mint operations")
	)
	flag.Parse()
	if err := run(*txCount, *skew, *mint); err != nil {
		log.Fatal(err)
	}
}

func run(txCount int, skew, mint float64) error {
	gen, err := workload.NewTokenGenerator(workload.TokenConfig{
		Seed: 5, Accounts: 1_000, Skew: skew, InitialBalance: 60, MintRatio: mint,
	})
	if err != nil {
		return err
	}
	txs := gen.Txs(txCount)
	genesis, err := gen.Genesis(txs)
	if err != nil {
		return err
	}

	n, err := node.New("token-node", kvstore.NewMemory(), node.Config{
		Consensus:     consensus.Params{Chains: 2, DifficultyBits: 0},
		Scheduler:     core.MustNewScheduler(core.DefaultConfig()),
		Contracts:     map[types.Address][]byte{token.ContractAddress: token.Program()},
		GenesisWrites: genesis,
	})
	if err != nil {
		return err
	}

	miner := node.NewMiner(n, types.AddressFromUint64(1), (txCount+1)/2)
	miner.AddTxs(txs)
	start := time.Now()
	for n.NextEpoch() == 1 {
		b, err := miner.Mine(context.Background())
		if err != nil {
			return err
		}
		if err := n.SubmitBlock(b); err != nil {
			continue
		}
		if _, err := n.ProcessReadyEpochs(); err != nil {
			return err
		}
	}

	stats := n.Metrics().Epochs()[0]
	fmt.Printf("token workload: %d txs at skew %.1f (mint ratio %.1f)\n", stats.Txs, skew, mint)
	fmt.Printf("  committed %d, scheduler aborts %d, execution reverts %d\n",
		stats.Committed, stats.Aborted, stats.ExecutionFailed)
	fmt.Printf("  phases: execute %v, control %v, commit %v (wall %v)\n",
		stats.Execute.Round(time.Microsecond), stats.Control.Round(time.Microsecond),
		stats.Commit.Round(time.Microsecond), time.Since(start).Round(time.Millisecond))

	supply, err := n.State().Get(token.SupplyKey())
	if err != nil {
		return err
	}
	fmt.Printf("  total supply after epoch: %d\n", workload.DecodeBalance(supply))
	fmt.Println("note: reverting transfers surface as execution aborts — a failure mode SmallBank's saturating arithmetic never triggers")
	return nil
}
