// DAG network: four full nodes mine OHIE blocks concurrently, gossip them
// over the simulated P2P fabric, and independently process each epoch with
// Nezha — then prove they agree on every state root. This is the paper's
// deployment picture (§VI-A) in miniature.
//
//	go run ./examples/dagnetwork
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/p2p"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

const (
	numNodes   = 4
	numChains  = 4
	targetEpoc = 3
	latency    = time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 11, Accounts: 5_000, Skew: 0.5, InitialBalance: 10_000,
	})
	if err != nil {
		return err
	}
	txs := gen.Txs(6_000)
	genesis, err := gen.GenesisWrites(txs)
	if err != nil {
		return err
	}

	net := p2p.NewNetwork(p2p.Config{Latency: latency, Jitter: latency, QueueLen: 4096})
	defer net.Close()

	type peer struct {
		node  *node.Node
		miner *node.Miner
		ep    *p2p.Endpoint
	}
	peers := make([]*peer, numNodes)
	for i := range peers {
		id := fmt.Sprintf("node-%d", i)
		n, err := node.New(id, kvstore.NewMemory(), node.Config{
			Consensus:     consensus.Params{Chains: numChains, DifficultyBits: 5},
			Scheduler:     core.MustNewScheduler(core.DefaultConfig()),
			Contracts:     map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
			GenesisWrites: genesis,
			ConfirmDepth:  3,
		})
		if err != nil {
			return err
		}
		ep, err := net.Join(id)
		if err != nil {
			return err
		}
		m := node.NewMiner(n, types.AddressFromUint64(uint64(i)), 100)
		m.AddTxs(txs)
		peers[i] = &peer{node: n, miner: m, ep: ep}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fmt.Printf("%d nodes mining %d parallel chains, gossiping over a simulated LAN...\n", numNodes, numChains)

	for peers[0].node.NextEpoch() <= targetEpoc {
		if ctx.Err() != nil {
			return errors.New("timed out before reaching the target epoch")
		}
		time.Sleep(4 * latency) // let gossip settle between rounds
		for _, p := range peers {
			mineCtx, mineCancel := context.WithTimeout(ctx, 200*time.Millisecond)
			b, err := p.miner.Mine(mineCtx)
			mineCancel()
			if err != nil {
				continue
			}
			if p.node.SubmitBlock(b) == nil {
				p.ep.Broadcast(p2p.Message{Type: p2p.MsgBlock, Block: b})
			}
		}
		for _, p := range peers {
			for drained := false; !drained; {
				select {
				case msg := <-p.ep.Inbox():
					err := p.node.SubmitBlock(msg.Block)
					if err != nil && !errors.Is(err, dag.ErrDuplicateBlock) &&
						!errors.Is(err, dag.ErrBelowFinal) && !errors.Is(err, dag.ErrUnknownParent) {
						return err
					}
				default:
					drained = true
				}
			}
			results, err := p.node.ProcessReadyEpochs()
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Printf("  %s processed epoch %d: %4d txs -> root %s\n",
					p.node.ID(), r.Epoch, r.Stats.Txs, r.StateRoot.Short())
			}
		}
	}

	fmt.Println("\nagreement check:")
	byEpoch := map[uint64]map[types.Hash][]string{}
	for _, p := range peers {
		e := p.node.NextEpoch() - 1
		if byEpoch[e] == nil {
			byEpoch[e] = map[types.Hash][]string{}
		}
		byEpoch[e][p.node.StateRoot()] = append(byEpoch[e][p.node.StateRoot()], p.node.ID())
	}
	for e, roots := range byEpoch {
		if len(roots) > 1 {
			return fmt.Errorf("epoch %d: nodes disagree: %v", e, roots)
		}
		for root, ids := range roots {
			fmt.Printf("  epoch %d: %v all at root %s\n", e, ids, root.Short())
		}
	}
	fmt.Println("all nodes at the same epoch agree — deterministic scheduling held across the network")
	return nil
}
