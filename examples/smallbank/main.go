// SmallBank: the paper's benchmark workload through the full single-node
// pipeline — MiniVM contract execution, Nezha scheduling, Merkle Patricia
// Trie commitment — comparing Nezha, the CG baseline, and serial execution
// on the same epochs.
//
//	go run ./examples/smallbank -txs 400 -skew 0.6
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

func main() {
	txCount := flag.Int("txs", 400, "transactions per epoch")
	skew := flag.Float64("skew", 0.6, "Zipfian skew")
	epochs := flag.Int("epochs", 3, "epochs to run")
	flag.Parse()

	schemes := []struct {
		name string
		mk   func() types.Scheduler
	}{
		{"nezha", func() types.Scheduler { return core.MustNewScheduler(core.DefaultConfig()) }},
		{"cg", func() types.Scheduler { return cg.NewScheduler(cg.DefaultConfig()) }},
		{"serial", func() types.Scheduler { return nil }},
	}

	for _, scheme := range schemes {
		if err := run(scheme.name, scheme.mk(), *txCount, *skew, *epochs); err != nil {
			log.Fatalf("%s: %v", scheme.name, err)
		}
	}
}

func run(name string, sched types.Scheduler, txCount int, skew float64, epochs int) error {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 7, Accounts: 10_000, Skew: skew, InitialBalance: 10_000,
	})
	if err != nil {
		return err
	}
	txs := gen.Txs(txCount * epochs)
	genesis, err := gen.GenesisWrites(txs)
	if err != nil {
		return err
	}

	n, err := node.New(name, kvstore.NewMemory(), node.Config{
		Consensus:     consensus.Params{Chains: 2, DifficultyBits: 0},
		Scheduler:     sched,
		Contracts:     map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
		GenesisWrites: genesis,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	miner := node.NewMiner(n, types.AddressFromUint64(1), (txCount+1)/2)
	miner.AddTxs(txs)
	processed := 0
	for processed < epochs {
		b, err := miner.Mine(context.Background())
		if err != nil {
			return err
		}
		if err := n.SubmitBlock(b); err != nil {
			continue // hash landed on a chain that already advanced
		}
		results, err := n.ProcessReadyEpochs()
		if err != nil {
			return err
		}
		processed += len(results)
	}
	elapsed := time.Since(start)

	sum := n.Metrics().Summarize()
	fmt.Printf("%-7s %d epochs x ~%d txs: committed %d, aborted %d (%.1f%%)\n",
		name, sum.Epochs, txCount, sum.Committed, sum.Aborted, 100*sum.AbortRate())
	fmt.Printf("        phases: validate %v, execute %v, control %v, commit %v (wall %v)\n",
		sum.Validate.Round(time.Microsecond), sum.Execute.Round(time.Microsecond),
		sum.Control.Round(time.Microsecond), sum.Commit.Round(time.Microsecond),
		elapsed.Round(time.Millisecond))
	fmt.Printf("        final state root: %s\n\n", n.StateRoot().Short())
	return nil
}
