// Quickstart: schedule a handful of conflicting transactions with Nezha's
// public API and print the commit groups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	nezha "github.com/nezha-dag/nezha"
)

func main() {
	// Three state cells: Alice's balance, Bob's balance, a counter.
	alice := nezha.KeyFromUint64(1)
	bob := nezha.KeyFromUint64(2)
	counter := nezha.KeyFromUint64(3)

	// Speculative execution results — normally produced by running
	// transactions against the epoch snapshot; here hand-built.
	sims := []*nezha.SimResult{
		// tx 0 reads Alice, pays Bob.
		{
			Tx:     &nezha.Transaction{ID: 0},
			Reads:  []nezha.ReadEntry{{Key: alice, Value: []byte{100}}},
			Writes: []nezha.WriteEntry{{Key: bob, Value: []byte{50}}},
		},
		// tx 1 reads Bob (snapshot!), bumps the counter.
		{
			Tx:     &nezha.Transaction{ID: 1},
			Reads:  []nezha.ReadEntry{{Key: bob, Value: []byte{0}}},
			Writes: []nezha.WriteEntry{{Key: counter, Value: []byte{1}}},
		},
		// tx 2 touches neither: fully concurrent.
		{
			Tx:     &nezha.Transaction{ID: 2},
			Writes: []nezha.WriteEntry{{Key: nezha.KeyFromUint64(4), Value: []byte{7}}},
		},
	}

	schedule, phases, err := nezha.NewScheduler().Schedule(sims)
	if err != nil {
		log.Fatal(err)
	}

	snapshot := map[nezha.Key][]byte{alice: {100}, bob: {0}, counter: nil}
	if err := nezha.Verify(snapshot, sims, schedule); err != nil {
		log.Fatalf("schedule not serializable: %v", err)
	}

	fmt.Printf("scheduled %d txs in %v (graph %v, ranks %v, sorting %v)\n",
		len(sims), phases.Total(), phases.Graph, phases.Cycle, phases.Sort)
	for i, group := range schedule.Groups() {
		fmt.Printf("commit group %d: txs %v (commit these concurrently)\n", i+1, group)
	}
	for _, abort := range schedule.Aborted {
		fmt.Printf("aborted: tx %d (%s)\n", abort.ID, abort.Reason)
	}
	// tx 1 read Bob's snapshot value, so it must commit before tx 0's
	// write to Bob lands.
	fmt.Printf("tx1 (reads bob) seq %d < tx0 (writes bob) seq %d: %v\n",
		schedule.Seqs[1], schedule.Seqs[0], schedule.Seqs[1] < schedule.Seqs[0])
}
