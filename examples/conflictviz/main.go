// Conflictviz: walks the paper's own worked example (Table III, Figures 4,
// 6, and 7) through the real implementation and prints every intermediate
// structure — the ACG's per-address read/write sets, the address-dependency
// edges, the sorting ranks, and the final sequence numbers, ending exactly
// where Fig. 7(d) does: T1 aborted, groups {T2}, {T3,T4}, {T5,T6}.
//
//	go run ./examples/conflictviz
package main

import (
	"fmt"
	"log"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
)

func key(n byte) types.Key {
	var k types.Key
	k[0] = n
	return k
}

func sim(id types.TxID, read, write byte) *types.SimResult {
	return &types.SimResult{
		Tx:     &types.Transaction{ID: id},
		Reads:  []types.ReadEntry{{Key: key(read)}},
		Writes: []types.WriteEntry{{Key: key(write), Value: []byte{byte(id)}}},
	}
}

func main() {
	// Table III: the addresses read and written by T1..T6.
	sims := []*types.SimResult{
		sim(1, 2, 1), // T1: R A2, W A1
		sim(2, 3, 2), // T2: R A3, W A2
		sim(3, 4, 2), // T3: R A4, W A2
		sim(4, 4, 3), // T4: R A4, W A3
		sim(5, 4, 4), // T5: R A4, W A4
		sim(6, 1, 3), // T6: R A1, W A3
	}
	fmt.Println("Table III workload: six transactions over addresses A1..A4")
	for _, s := range sims {
		fmt.Printf("  T%d: reads A%d, writes A%d\n", s.Tx.ID, s.Reads[0].Key[0], s.Writes[0].Key[0])
	}

	acg := core.BuildACG(sims)
	fmt.Println("\nACG read/write sets (Fig. 4):")
	for i := range acg.Addrs {
		a := &acg.Addrs[i]
		fmt.Printf("  A%d: reads %v, writes %v\n", a.Key[0], a.Reads, a.Writes)
	}
	fmt.Println("address dependencies (write -> read of the same tx, Fig. 6):")
	for u := 0; u < acg.Deps.N(); u++ {
		for _, v := range acg.Deps.Out(u) {
			fmt.Printf("  A%d --> A%d\n", acg.Addrs[u].Key[0], acg.Addrs[v].Key[0])
		}
	}

	ranks := core.RankAddresses(acg, core.RankMaxOutDegree)
	fmt.Print("\nsorting ranks (Fig. 6 blue labels): ")
	for i, v := range ranks {
		if i > 0 {
			fmt.Print(" > ")
		}
		fmt.Printf("A%d", acg.Addrs[v].Key[0])
	}
	fmt.Println("\n  (the A1->A2->A3->A1 cycle is broken by A2's maximal out-degree)")

	schedule, _, err := core.MustNewScheduler(core.DefaultConfig()).Schedule(sims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhierarchical sorting outcome (Fig. 7):")
	for _, s := range sims {
		if seq, ok := schedule.Seqs[s.Tx.ID]; ok {
			fmt.Printf("  T%d: sequence %d\n", s.Tx.ID, seq)
		} else {
			fmt.Printf("  T%d: ABORTED (unserializable with T6 across A1/A3)\n", s.Tx.ID)
		}
	}
	fmt.Println("commit groups (same sequence commits concurrently):")
	for i, g := range schedule.Groups() {
		fmt.Printf("  group %d: %v\n", i+1, g)
	}
	if err := core.VerifySchedule(nil, sims, schedule); err != nil {
		log.Fatalf("verification: %v", err)
	}
	fmt.Println("serializability verified against the snapshot")
}
