// Package nezha is the public API of this reproduction of "Nezha:
// Exploiting Concurrency for Transaction Processing in DAG-based
// Blockchains" (Xiao et al., ICDCS 2022).
//
// Nezha is a concurrency-control scheme for DAG-based blockchains whose
// epochs execute many transactions speculatively against one state
// snapshot: it detects conflicts through an address-based conflict graph
// (one vertex per state key instead of one edge per transaction pair) and
// orders transactions with a hierarchical sorting algorithm that assigns
// Lamport-style sequence numbers — transactions sharing a number commit
// concurrently, unserializable ones abort.
//
// The minimal flow:
//
//	sched := nezha.NewScheduler()
//	schedule, _, err := sched.Schedule(sims) // sims: speculative R/W sets
//	...
//	for _, group := range schedule.Groups() {
//		// commit each group's transactions concurrently
//	}
//
// Every input transaction either appears in schedule.Seqs (committed, with
// its sequence number) or in schedule.Aborted. Verify checks a schedule
// against full serializability; the conventional conflict-graph baseline
// the paper compares against is available via NewCGScheduler.
//
// The repository's internal packages carry the full system the paper sits
// on — an OHIE parallel-chain ledger with simulated PoW, a gas-metered
// contract VM with read/write logging, a Merkle Patricia Trie state over an
// LSM key-value store, a simulated P2P network, SmallBank workloads, and a
// benchmark harness regenerating every table and figure of the paper's
// evaluation (cmd/nezha-bench).
package nezha

import (
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/occ"
	"github.com/nezha-dag/nezha/internal/types"
)

// Core data-model aliases, so downstream code needs only this package.
type (
	// Key identifies one cell of blockchain state, the unit of conflict.
	Key = types.Key
	// TxID is a transaction's epoch-local identifier.
	TxID = types.TxID
	// Seq is a commit sequence number; equal numbers commit concurrently.
	Seq = types.Seq
	// Transaction is a state-transition request.
	Transaction = types.Transaction
	// ReadEntry is one observed read (key and snapshot value).
	ReadEntry = types.ReadEntry
	// WriteEntry is one intended write.
	WriteEntry = types.WriteEntry
	// SimResult is a transaction's speculative execution outcome — the
	// scheduler's input.
	SimResult = types.SimResult
	// Schedule is a total commit order with intra-group concurrency — the
	// scheduler's output.
	Schedule = types.Schedule
	// Abort records one aborted transaction and why.
	Abort = types.Abort
	// PhaseBreakdown splits scheduling latency into sub-phases.
	PhaseBreakdown = types.PhaseBreakdown
	// Scheduler is the pluggable concurrency-control interface.
	Scheduler = types.Scheduler
)

// Abort reasons.
const (
	// AbortUnserializable marks transactions no serial order can include.
	AbortUnserializable = types.AbortUnserializable
	// AbortCycle marks CG-baseline victims of conflict-cycle removal.
	AbortCycle = types.AbortCycle
	// AbortExecution marks transactions whose speculative run failed.
	AbortExecution = types.AbortExecution
)

// Config re-exports the Nezha scheduler configuration.
type Config = core.Config

// Rank-division heuristics (Algorithm 1's cycle break).
const (
	// RankMaxOutDegree is the paper's heuristic.
	RankMaxOutDegree = core.RankMaxOutDegree
	// RankMinSubscript is the naive ablation.
	RankMinSubscript = core.RankMinSubscript
)

// NewScheduler returns a Nezha scheduler with the paper's configuration
// (reordering enhancement on, max-out-degree rank heuristic).
func NewScheduler() *core.Scheduler {
	return core.MustNewScheduler(core.DefaultConfig())
}

// NewSchedulerWithConfig returns a Nezha scheduler with a custom
// configuration.
func NewSchedulerWithConfig(cfg Config) (*core.Scheduler, error) {
	return core.NewScheduler(cfg)
}

// NewCGScheduler returns the conventional conflict-graph baseline
// (Fabric++/FabricSharp-style: pairwise dependency graph, Johnson cycle
// removal, topological serial order) with a sensible budget; see
// internal/cg for tuning.
func NewCGScheduler() Scheduler {
	return cg.NewScheduler(cg.DefaultConfig())
}

// NewCGSchedulerWithBudget returns the CG baseline with explicit cycle
// storage and wall-clock budgets (0 = unlimited).
func NewCGSchedulerWithBudget(maxStoredCycles int, timeBudget time.Duration) Scheduler {
	return cg.NewScheduler(cg.Config{MaxCycles: maxStoredCycles, TimeBudget: timeBudget})
}

// NewOCCScheduler returns the plain optimistic-concurrency-control baseline
// (Fabric-style first-committer-wins, Table II of the paper): no ordering
// work at all, at the price of aborting every transaction whose reads were
// overwritten by an earlier committed transaction of the same epoch.
func NewOCCScheduler() Scheduler {
	return occ.NewScheduler()
}

// Verify checks a schedule for full serializability against the snapshot
// the transactions were simulated on: per-key ordering invariants plus a
// serial replay in (sequence, id) order that must observe every recorded
// read value. A nil error means the schedule is safe to commit.
func Verify(snapshot map[Key][]byte, sims []*SimResult, schedule *Schedule) error {
	return core.VerifySchedule(snapshot, sims, schedule)
}

// KeyFromUint64 derives a deterministic state key from a numeric id;
// convenient for tests and synthetic workloads.
func KeyFromUint64(n uint64) Key { return types.KeyFromUint64(n) }
