module github.com/nezha-dag/nezha

go 1.22
