// Package mpt implements a Merkle Patricia Trie, the authenticated state
// structure the paper's prototype uses to "efficiently organize the state
// object of each account" (§V). The structure follows Ethereum's MPT —
// hex-nibble paths, leaf/extension/branch nodes, hex-prefix key compaction,
// RLP node encoding — with two documented substitutions (DESIGN.md):
//
//   - SHA-256 replaces Keccak-256 (stdlib-only constraint).
//   - Child nodes are always referenced by hash; Ethereum additionally
//     inlines children whose encoding is shorter than 32 bytes. Roots are
//     therefore not byte-compatible with Ethereum, but every property the
//     system relies on — determinism, history independence, Merkle proofs —
//     is preserved.
//
// Tries are copy-on-write: mutating operations share unchanged subtrees, so
// holding an old root cheaply snapshots the state of a previous epoch,
// which is exactly what deferred execution needs (§III-B).
package mpt

import (
	"fmt"

	"github.com/nezha-dag/nezha/internal/rlp"
	"github.com/nezha-dag/nezha/internal/types"
)

// node is one trie node. Implementations: (*branchNode), (*shortNode),
// hashNode, valueNode, and the nil interface for "empty".
type node interface {
	// cachedHash returns the memoized hash and whether it is valid.
	cachedHash() (types.Hash, bool)
}

// branchNode has 16 children indexed by nibble plus an optional value for
// keys ending at this node.
type branchNode struct {
	children [16]node
	value    []byte
	hash     types.Hash
	hasHash  bool
}

// shortNode compresses a run of nibbles. If val is valueNode the node is a
// leaf; otherwise it is an extension pointing at a branch.
type shortNode struct {
	key     []byte // nibbles
	val     node
	hash    types.Hash
	hasHash bool
}

// hashNode references a persisted node not yet loaded into memory.
type hashNode types.Hash

// valueNode is a stored value.
type valueNode []byte

func (n *branchNode) cachedHash() (types.Hash, bool) { return n.hash, n.hasHash }
func (n *shortNode) cachedHash() (types.Hash, bool)  { return n.hash, n.hasHash }
func (n hashNode) cachedHash() (types.Hash, bool)    { return types.Hash(n), true }
func (n valueNode) cachedHash() (types.Hash, bool)   { return types.Hash{}, false }

// copyBranch returns a mutable copy with the hash cache cleared.
func (n *branchNode) copy() *branchNode {
	c := *n
	c.hasHash = false
	return &c
}

// copyShort returns a mutable copy with the hash cache cleared.
func (n *shortNode) copy() *shortNode {
	c := *n
	c.hasHash = false
	return &c
}

// keyToNibbles expands a byte key into hex nibbles.
func keyToNibbles(key []byte) []byte {
	out := make([]byte, len(key)*2)
	for i, b := range key {
		out[2*i] = b >> 4
		out[2*i+1] = b & 0x0f
	}
	return out
}

// prefixLen returns the length of the common prefix of a and b.
func prefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// hexPrefixEncode packs nibbles into bytes with the Ethereum hex-prefix
// scheme: the first nibble carries the leaf flag (2) and the odd-length
// flag (1).
func hexPrefixEncode(nibbles []byte, leaf bool) []byte {
	var flag byte
	if leaf {
		flag = 2
	}
	odd := len(nibbles) % 2
	out := make([]byte, 1+len(nibbles)/2)
	out[0] = (flag | byte(odd)) << 4
	if odd == 1 {
		out[0] |= nibbles[0]
		nibbles = nibbles[1:]
	}
	for i := 0; i < len(nibbles); i += 2 {
		out[1+i/2] = nibbles[i]<<4 | nibbles[i+1]
	}
	return out
}

// hexPrefixDecode unpacks a hex-prefix encoded key.
func hexPrefixDecode(b []byte) (nibbles []byte, leaf bool, err error) {
	if len(b) == 0 {
		return nil, false, fmt.Errorf("mpt: empty hex-prefix key")
	}
	flag := b[0] >> 4
	if flag > 3 {
		return nil, false, fmt.Errorf("mpt: bad hex-prefix flag %d", flag)
	}
	leaf = flag&2 != 0
	odd := flag&1 != 0
	if odd {
		nibbles = append(nibbles, b[0]&0x0f)
	}
	for _, c := range b[1:] {
		nibbles = append(nibbles, c>>4, c&0x0f)
	}
	return nibbles, leaf, nil
}

// encodeNode RLP-encodes a node, with children referenced by hash. store
// receives the (hash → encoding) pair of every freshly-hashed descendant.
func encodeNode(n node, store func(h types.Hash, enc []byte)) (types.Hash, []byte) {
	switch n := n.(type) {
	case *shortNode:
		var item rlp.Item
		if v, isLeaf := n.val.(valueNode); isLeaf {
			item = rlp.List(rlp.String(hexPrefixEncode(n.key, true)), rlp.String(v))
		} else {
			childHash := hashNodeRef(n.val, store)
			item = rlp.List(rlp.String(hexPrefixEncode(n.key, false)), rlp.String(childHash[:]))
		}
		enc := rlp.Encode(item)
		h := types.HashBytes(enc)
		n.hash, n.hasHash = h, true
		if store != nil {
			store(h, enc)
		}
		return h, enc
	case *branchNode:
		items := make([]rlp.Item, 17)
		for i, child := range n.children {
			if child == nil {
				items[i] = rlp.String(nil)
				continue
			}
			childHash := hashNodeRef(child, store)
			items[i] = rlp.String(childHash[:])
		}
		items[16] = rlp.String(n.value)
		enc := rlp.Encode(rlp.List(items...))
		h := types.HashBytes(enc)
		n.hash, n.hasHash = h, true
		if store != nil {
			store(h, enc)
		}
		return h, enc
	default:
		panic(fmt.Sprintf("mpt: encodeNode on %T", n))
	}
}

// hashNodeRef returns the hash of a child reference, encoding it first when
// its cache is cold.
func hashNodeRef(n node, store func(h types.Hash, enc []byte)) types.Hash {
	if h, ok := n.cachedHash(); ok {
		return h
	}
	h, _ := encodeNode(n, store)
	return h
}

// decodeNode parses a persisted node encoding.
func decodeNode(enc []byte) (node, error) {
	item, err := rlp.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("mpt: decode node: %w", err)
	}
	if item.K != rlp.KindList {
		return nil, fmt.Errorf("mpt: node is not a list")
	}
	switch len(item.List) {
	case 2:
		keyItem, valItem := item.List[0], item.List[1]
		if keyItem.K != rlp.KindString || valItem.K != rlp.KindString {
			return nil, fmt.Errorf("mpt: malformed short node")
		}
		nibbles, leaf, err := hexPrefixDecode(keyItem.Str)
		if err != nil {
			return nil, err
		}
		if leaf {
			return &shortNode{key: nibbles, val: valueNode(append([]byte(nil), valItem.Str...))}, nil
		}
		if len(valItem.Str) != types.HashLen {
			return nil, fmt.Errorf("mpt: extension child is not a hash")
		}
		var h hashNode
		copy(h[:], valItem.Str)
		return &shortNode{key: nibbles, val: h}, nil
	case 17:
		bn := &branchNode{}
		for i := 0; i < 16; i++ {
			c := item.List[i]
			if c.K != rlp.KindString {
				return nil, fmt.Errorf("mpt: branch child %d is a list", i)
			}
			if len(c.Str) == 0 {
				continue
			}
			if len(c.Str) != types.HashLen {
				return nil, fmt.Errorf("mpt: branch child %d is not a hash", i)
			}
			var h hashNode
			copy(h[:], c.Str)
			bn.children[i] = h
		}
		if item.List[16].K != rlp.KindString {
			return nil, fmt.Errorf("mpt: branch value is a list")
		}
		if len(item.List[16].Str) > 0 {
			bn.value = append([]byte(nil), item.List[16].Str...)
		}
		return bn, nil
	default:
		return nil, fmt.Errorf("mpt: node list has %d items", len(item.List))
	}
}
