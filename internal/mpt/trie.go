package mpt

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/types"
)

// ErrMissingNode is returned when a hash reference cannot be resolved from
// the node store — state has been pruned or the store is corrupt.
var ErrMissingNode = errors.New("mpt: missing trie node")

// EmptyRoot is the root hash of an empty trie.
var EmptyRoot = types.ZeroHash

// Trie is a Merkle Patricia Trie over a node store. It is NOT safe for
// concurrent mutation; the statedb layer serializes writers and clones
// tries for snapshot readers.
type Trie struct {
	store kvstore.Store
	root  node
	// dirty accumulates freshly-encoded nodes between Commits.
	dirty map[types.Hash][]byte
}

// New opens the trie rooted at root (EmptyRoot for a fresh trie) over the
// given node store.
func New(root types.Hash, store kvstore.Store) *Trie {
	t := &Trie{store: store, dirty: make(map[types.Hash][]byte)}
	if root != EmptyRoot {
		t.root = hashNode(root)
	}
	return t
}

// resolve loads a node behind a hash reference.
func (t *Trie) resolve(n node) (node, error) {
	h, ok := n.(hashNode)
	if !ok {
		return n, nil
	}
	if enc, dirty := t.dirty[types.Hash(h)]; dirty {
		return decodeNode(enc)
	}
	enc, found, err := t.store.Get(h[:])
	if err != nil {
		return nil, fmt.Errorf("mpt: load node: %w", err)
	}
	if !found {
		return nil, fmt.Errorf("%w: %s", ErrMissingNode, types.Hash(h))
	}
	return decodeNode(enc)
}

// Get returns the value stored at key; found is false when absent.
func (t *Trie) Get(key []byte) (value []byte, found bool, err error) {
	return t.get(t.root, keyToNibbles(key))
}

func (t *Trie) get(n node, path []byte) ([]byte, bool, error) {
	switch n := n.(type) {
	case nil:
		return nil, false, nil
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return nil, false, err
		}
		return t.get(resolved, path)
	case *shortNode:
		if len(path) < len(n.key) || !bytes.Equal(n.key, path[:len(n.key)]) {
			return nil, false, nil
		}
		rest := path[len(n.key):]
		if v, isLeaf := n.val.(valueNode); isLeaf {
			if len(rest) != 0 {
				return nil, false, nil
			}
			return append([]byte(nil), v...), true, nil
		}
		return t.get(n.val, rest)
	case *branchNode:
		if len(path) == 0 {
			if n.value == nil {
				return nil, false, nil
			}
			return append([]byte(nil), n.value...), true, nil
		}
		return t.get(n.children[path[0]], path[1:])
	case valueNode:
		return nil, false, fmt.Errorf("mpt: dangling value node")
	default:
		return nil, false, fmt.Errorf("mpt: unknown node %T", n)
	}
}

// Put inserts or replaces key → value. An empty value deletes the key,
// matching Ethereum semantics.
func (t *Trie) Put(key, value []byte) error {
	if len(value) == 0 {
		return t.Delete(key)
	}
	newRoot, err := t.insert(t.root, keyToNibbles(key), append([]byte(nil), value...))
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

func (t *Trie) insert(n node, path []byte, value []byte) (node, error) {
	switch n := n.(type) {
	case nil:
		// A value with no children below it is always a leaf — even with
		// an empty remaining path. (Representing it as a value-only
		// branch would break history independence: the same content
		// would hash differently depending on insertion order.)
		return &shortNode{key: path, val: valueNode(value)}, nil
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return nil, err
		}
		return t.insert(resolved, path, value)
	case *shortNode:
		match := prefixLen(n.key, path)
		if match == len(n.key) {
			rest := path[match:]
			if v, isLeaf := n.val.(valueNode); isLeaf {
				if len(rest) == 0 {
					c := n.copy()
					c.val = valueNode(value)
					return c, nil
				}
				// Split the leaf: its value moves to a branch value slot.
				branch := &branchNode{value: []byte(v)}
				child, err := t.insert(nil, rest[1:], value)
				if err != nil {
					return nil, err
				}
				branch.children[rest[0]] = child
				if len(n.key) == 0 {
					return branch, nil
				}
				return &shortNode{key: n.key, val: branch}, nil
			}
			child, err := t.insert(n.val, rest, value)
			if err != nil {
				return nil, err
			}
			c := n.copy()
			c.val = child
			return c, nil
		}
		// Paths diverge inside n.key: make a branch at the divergence.
		branch := &branchNode{}
		// Remainder of the existing short node.
		existingRest := n.key[match:]
		if len(existingRest) == 1 && !isLeafNode(n.val) {
			branch.children[existingRest[0]] = n.val
		} else if isLeafNode(n.val) && len(existingRest) == 1 {
			branch.children[existingRest[0]] = &shortNode{key: nil, val: n.val}
		} else {
			branch.children[existingRest[0]] = &shortNode{key: existingRest[1:], val: n.val}
		}
		// New value.
		newRest := path[match:]
		if len(newRest) == 0 {
			branch.value = value
		} else {
			child, err := t.insert(nil, newRest[1:], value)
			if err != nil {
				return nil, err
			}
			branch.children[newRest[0]] = child
		}
		if match == 0 {
			return branch, nil
		}
		return &shortNode{key: path[:match], val: branch}, nil
	case *branchNode:
		c := n.copy()
		if len(path) == 0 {
			c.value = value
			return c, nil
		}
		child, err := t.insert(n.children[path[0]], path[1:], value)
		if err != nil {
			return nil, err
		}
		c.children[path[0]] = child
		return c, nil
	default:
		return nil, fmt.Errorf("mpt: insert into %T", n)
	}
}

func isLeafNode(n node) bool {
	_, ok := n.(valueNode)
	return ok
}

// Delete removes key; deleting an absent key is a no-op.
func (t *Trie) Delete(key []byte) error {
	newRoot, _, err := t.remove(t.root, keyToNibbles(key))
	if err != nil {
		return err
	}
	t.root = newRoot
	return nil
}

// remove returns the replacement node and whether anything changed.
func (t *Trie) remove(n node, path []byte) (node, bool, error) {
	switch n := n.(type) {
	case nil:
		return nil, false, nil
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return nil, false, err
		}
		return t.remove(resolved, path)
	case *shortNode:
		if len(path) < len(n.key) || !bytes.Equal(n.key, path[:len(n.key)]) {
			return n, false, nil
		}
		rest := path[len(n.key):]
		if v, isLeaf := n.val.(valueNode); isLeaf {
			_ = v
			if len(rest) == 0 {
				return nil, true, nil
			}
			return n, false, nil
		}
		child, changed, err := t.remove(n.val, rest)
		if err != nil || !changed {
			return n, changed, err
		}
		return t.collapseShort(n.key, child)
	case *branchNode:
		c := n.copy()
		if len(path) == 0 {
			if n.value == nil {
				return n, false, nil
			}
			c.value = nil
			return t.collapseBranch(c)
		}
		child, changed, err := t.remove(n.children[path[0]], path[1:])
		if err != nil || !changed {
			return n, changed, err
		}
		c.children[path[0]] = child
		return t.collapseBranch(c)
	default:
		return nil, false, fmt.Errorf("mpt: remove from %T", n)
	}
}

// collapseShort re-attaches a (possibly collapsed) child under a prefix.
func (t *Trie) collapseShort(prefix []byte, child node) (node, bool, error) {
	switch child := child.(type) {
	case nil:
		return nil, true, nil
	case *shortNode:
		merged := &shortNode{key: append(append([]byte(nil), prefix...), child.key...), val: child.val}
		return merged, true, nil
	default:
		return &shortNode{key: prefix, val: child}, true, nil
	}
}

// collapseBranch simplifies a branch that may have dropped to one child or
// value-only after a removal.
func (t *Trie) collapseBranch(n *branchNode) (node, bool, error) {
	liveIdx := -1
	liveCount := 0
	for i, c := range n.children {
		if c != nil {
			liveIdx = i
			liveCount++
		}
	}
	switch {
	case liveCount == 0 && n.value == nil:
		return nil, true, nil
	case liveCount == 0:
		// Value-only branch collapses to an empty-key leaf (canonical
		// form; see insert).
		return &shortNode{key: nil, val: valueNode(n.value)}, true, nil
	case liveCount == 1 && n.value == nil:
		// Merge the lone child upward.
		child, err := t.resolve(n.children[liveIdx])
		if err != nil {
			return nil, false, err
		}
		switch child := child.(type) {
		case *shortNode:
			merged := &shortNode{
				key: append([]byte{byte(liveIdx)}, child.key...),
				val: child.val,
			}
			return merged, true, nil
		default:
			return &shortNode{key: []byte{byte(liveIdx)}, val: child}, true, nil
		}
	default:
		return n, true, nil
	}
}

// RootHash computes (and caches) the current root hash, buffering freshly
// encoded nodes for the next Commit. An empty trie has EmptyRoot.
func (t *Trie) RootHash() types.Hash {
	if t.root == nil {
		return EmptyRoot
	}
	return hashNodeRef(t.root, func(h types.Hash, enc []byte) {
		t.dirty[h] = enc
	})
}

// Commit hashes the trie and persists every node reachable from new
// insertions into the store atomically, returning the root hash.
func (t *Trie) Commit() (types.Hash, error) {
	root := t.RootHash()
	if len(t.dirty) == 0 {
		return root, nil
	}
	batch := &kvstore.Batch{}
	// Sorted node order: the store state would be identical either way
	// (nodes are keyed by hash), but map order would make the WAL byte
	// stream differ per process — sorted commits keep replica WALs
	// diffable and torn-log replays reproducible (found by nezha-vet).
	hashes := make([]types.Hash, 0, len(t.dirty))
	for h := range t.dirty {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return bytes.Compare(hashes[i][:], hashes[j][:]) < 0 })
	for _, h := range hashes {
		batch.Put(h[:], t.dirty[h])
	}
	if err := t.store.Apply(batch); err != nil {
		return types.Hash{}, fmt.Errorf("mpt: commit: %w", err)
	}
	t.dirty = make(map[types.Hash][]byte)
	return root, nil
}

// Iterate walks every (key, value) pair in ascending key order. Keys are
// reconstructed from nibble paths; the callback returning false stops the
// walk.
func (t *Trie) Iterate(fn func(key, value []byte) bool) error {
	_, err := t.iterate(t.root, nil, fn)
	return err
}

func (t *Trie) iterate(n node, path []byte, fn func(key, value []byte) bool) (bool, error) {
	switch n := n.(type) {
	case nil:
		return true, nil
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return false, err
		}
		return t.iterate(resolved, path, fn)
	case *shortNode:
		full := append(append([]byte(nil), path...), n.key...)
		if v, isLeaf := n.val.(valueNode); isLeaf {
			return fn(nibblesToKey(full), append([]byte(nil), v...)), nil
		}
		return t.iterate(n.val, full, fn)
	case *branchNode:
		if n.value != nil {
			if !fn(nibblesToKey(path), append([]byte(nil), n.value...)) {
				return false, nil
			}
		}
		for i, c := range n.children {
			if c == nil {
				continue
			}
			cont, err := t.iterate(c, append(append([]byte(nil), path...), byte(i)), fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("mpt: iterate over %T", n)
	}
}

// nibblesToKey packs an even-length nibble path back into bytes.
func nibblesToKey(nibbles []byte) []byte {
	out := make([]byte, len(nibbles)/2)
	for i := range out {
		out[i] = nibbles[2*i]<<4 | nibbles[2*i+1]
	}
	return out
}
