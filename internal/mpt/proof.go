package mpt

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/nezha-dag/nezha/internal/types"
)

// ErrInvalidProof is returned when a Merkle proof fails verification.
var ErrInvalidProof = errors.New("mpt: invalid proof")

// Proof is a Merkle (non-)membership proof: the RLP encodings of the trie
// nodes on the path from the root toward the key. Verification recomputes
// each node's hash, so a proof is self-authenticating against a root.
type Proof struct {
	Nodes [][]byte
}

// Prove collects the proof for key against the current trie contents. The
// same proof object proves membership (value returned by VerifyProof) or
// absence (VerifyProof returns found=false).
func (t *Trie) Prove(key []byte) (*Proof, error) {
	proof := &Proof{}
	err := t.prove(t.root, keyToNibbles(key), proof)
	if err != nil {
		return nil, err
	}
	return proof, nil
}

func (t *Trie) prove(n node, path []byte, proof *Proof) error {
	switch n := n.(type) {
	case nil:
		return nil
	case hashNode:
		resolved, err := t.resolve(n)
		if err != nil {
			return err
		}
		return t.prove(resolved, path, proof)
	case *shortNode:
		_, enc := encodeNode(n.copy(), nil)
		proof.Nodes = append(proof.Nodes, enc)
		if len(path) < len(n.key) || !bytes.Equal(n.key, path[:len(n.key)]) {
			return nil // divergence proves absence
		}
		if _, isLeaf := n.val.(valueNode); isLeaf {
			return nil
		}
		return t.prove(n.val, path[len(n.key):], proof)
	case *branchNode:
		_, enc := encodeNode(n.copy(), nil)
		proof.Nodes = append(proof.Nodes, enc)
		if len(path) == 0 {
			return nil
		}
		if n.children[path[0]] == nil {
			return nil // missing child proves absence
		}
		return t.prove(n.children[path[0]], path[1:], proof)
	default:
		return fmt.Errorf("mpt: prove over %T", n)
	}
}

// VerifyProof checks a proof against a trie root and returns the proven
// value for key (found=false proves the key's absence). The proof is not
// trusted: every node encoding must hash to the reference that its parent
// (or the root) commits to.
func VerifyProof(root types.Hash, key []byte, proof *Proof) (value []byte, found bool, err error) {
	path := keyToNibbles(key)
	want := root
	if root == EmptyRoot {
		if len(proof.Nodes) != 0 {
			return nil, false, fmt.Errorf("%w: nodes against an empty root", ErrInvalidProof)
		}
		return nil, false, nil
	}
	for i, enc := range proof.Nodes {
		if types.HashBytes(enc) != want {
			return nil, false, fmt.Errorf("%w: node %d hash mismatch", ErrInvalidProof, i)
		}
		n, err := decodeNode(enc)
		if err != nil {
			return nil, false, fmt.Errorf("%w: node %d: %v", ErrInvalidProof, i, err)
		}
		last := i == len(proof.Nodes)-1
		switch n := n.(type) {
		case *shortNode:
			if len(path) < len(n.key) || !bytes.Equal(n.key, path[:len(n.key)]) {
				if !last {
					return nil, false, fmt.Errorf("%w: divergence before the final node", ErrInvalidProof)
				}
				return nil, false, nil // proven absent
			}
			path = path[len(n.key):]
			if v, isLeaf := n.val.(valueNode); isLeaf {
				if !last {
					return nil, false, fmt.Errorf("%w: leaf before the final node", ErrInvalidProof)
				}
				if len(path) != 0 {
					return nil, false, nil // leaf for a shorter key: absent
				}
				return append([]byte(nil), v...), true, nil
			}
			child, ok := n.val.(hashNode)
			if !ok {
				return nil, false, fmt.Errorf("%w: extension without hash child", ErrInvalidProof)
			}
			want = types.Hash(child)
			if last {
				return nil, false, fmt.Errorf("%w: proof truncated at extension", ErrInvalidProof)
			}
		case *branchNode:
			if len(path) == 0 {
				if !last {
					return nil, false, fmt.Errorf("%w: branch value before the final node", ErrInvalidProof)
				}
				if n.value == nil {
					return nil, false, nil
				}
				return append([]byte(nil), n.value...), true, nil
			}
			child := n.children[path[0]]
			if child == nil {
				if !last {
					return nil, false, fmt.Errorf("%w: missing child before the final node", ErrInvalidProof)
				}
				return nil, false, nil // proven absent
			}
			h, ok := child.(hashNode)
			if !ok {
				return nil, false, fmt.Errorf("%w: inline child in proof", ErrInvalidProof)
			}
			want = types.Hash(h)
			path = path[1:]
			if last {
				return nil, false, fmt.Errorf("%w: proof truncated at branch", ErrInvalidProof)
			}
		default:
			return nil, false, fmt.Errorf("%w: unexpected node kind", ErrInvalidProof)
		}
	}
	return nil, false, fmt.Errorf("%w: empty proof for non-empty root", ErrInvalidProof)
}
