package mpt

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/nezha-dag/nezha/internal/kvstore"
)

// FuzzProof decodes fuzz input into a put/delete program over a small key
// space, mirrors it in a shadow map, then checks every key in the space:
// trie contents must match the shadow, and Prove/VerifyProof must agree —
// membership proofs must carry the exact value, absence proofs must verify
// as not-found, and a proof for key A must never verify a wrong value.
func FuzzProof(f *testing.F) {
	f.Add([]byte{0x01, 5, 0x42, 0x81, 5, 0x01, 9, 0x17})
	f.Add([]byte{0x01, 0, 1, 0x01, 1, 2, 0x81, 0, 0x01, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048] // bound trie size, not coverage
		}
		const keySpace = 24
		tr := New(EmptyRoot, kvstore.NewMemory())
		shadow := make(map[string][]byte)

		key := func(i byte) []byte {
			// Shared prefixes force extension/branch restructuring.
			return []byte(fmt.Sprintf("acct/%02x", i%keySpace))
		}
		for pos := 0; pos+1 < len(data); pos += 3 {
			op, k := data[pos], key(data[pos+1])
			if op&0x80 != 0 {
				if err := tr.Delete(k); err != nil {
					t.Fatalf("delete %q: %v", k, err)
				}
				delete(shadow, string(k))
				continue
			}
			val := []byte{op, data[pos+1]}
			if pos+2 < len(data) {
				val = append(val, data[pos+2])
			}
			if err := tr.Put(k, val); err != nil {
				t.Fatalf("put %q: %v", k, err)
			}
			shadow[string(k)] = val
		}

		root := tr.RootHash()
		for i := byte(0); i < keySpace; i++ {
			k := key(i)
			want, wantFound := shadow[string(k)]

			got, found, err := tr.Get(k)
			if err != nil {
				t.Fatalf("get %q: %v", k, err)
			}
			if found != wantFound || !bytes.Equal(got, want) {
				t.Fatalf("get %q = %x,%v want %x,%v", k, got, found, want, wantFound)
			}

			proof, err := tr.Prove(k)
			if err != nil {
				t.Fatalf("prove %q: %v", k, err)
			}
			pv, pFound, err := VerifyProof(root, k, proof)
			if err != nil {
				t.Fatalf("verify proof %q: %v", k, err)
			}
			if pFound != wantFound || !bytes.Equal(pv, want) {
				t.Fatalf("proof %q = %x,%v want %x,%v", k, pv, pFound, want, wantFound)
			}
		}

		// Committing and reloading through the store must preserve the
		// root and the contents the proofs were checked against.
		committed, err := tr.Commit()
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		if committed != root {
			t.Fatalf("commit changed the root: %s vs %s", committed, root)
		}
	})
}
