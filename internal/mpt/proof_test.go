package mpt

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestProveAndVerifyMembership(t *testing.T) {
	tr := newTestTrie()
	content := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%02d", i)
		content[k] = fmt.Sprintf("value-%d", i)
		if err := tr.Put([]byte(k), []byte(content[k])); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.RootHash()
	for k, v := range content {
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("prove %q: %v", k, err)
		}
		got, found, err := VerifyProof(root, []byte(k), proof)
		if err != nil || !found || string(got) != v {
			t.Fatalf("verify %q = %q,%v,%v want %q", k, got, found, err, v)
		}
	}
}

func TestProveAbsence(t *testing.T) {
	tr := newTestTrie()
	for i := 0; i < 50; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("present-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.RootHash()
	absent := []string{"absent", "present-99", "present-0", "present-000", ""}
	for _, k := range absent {
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("prove %q: %v", k, err)
		}
		_, found, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("verify absent %q: %v", k, err)
		}
		if found {
			t.Fatalf("absent key %q proven present", k)
		}
	}
}

func TestProofEmptyTrie(t *testing.T) {
	tr := newTestTrie()
	proof, err := tr.Prove([]byte("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := VerifyProof(EmptyRoot, []byte("anything"), proof); err != nil || found {
		t.Fatalf("empty-trie proof: %v, %v", found, err)
	}
}

func TestProofRejectsTampering(t *testing.T) {
	tr := newTestTrie()
	for i := 0; i < 30; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.RootHash()
	proof, err := tr.Prove([]byte("k05"))
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Nodes) == 0 {
		t.Fatal("empty proof")
	}

	// Flip a byte anywhere in any node: verification must fail.
	for i := range proof.Nodes {
		tampered := &Proof{Nodes: make([][]byte, len(proof.Nodes))}
		for j := range proof.Nodes {
			tampered.Nodes[j] = append([]byte(nil), proof.Nodes[j]...)
		}
		tampered.Nodes[i][len(tampered.Nodes[i])/2] ^= 0xff
		if _, _, err := VerifyProof(root, []byte("k05"), tampered); !errors.Is(err, ErrInvalidProof) {
			t.Fatalf("tampered node %d accepted: %v", i, err)
		}
	}
	// Truncated proof fails rather than claiming absence.
	if len(proof.Nodes) > 1 {
		truncated := &Proof{Nodes: proof.Nodes[:len(proof.Nodes)-1]}
		if _, _, err := VerifyProof(root, []byte("k05"), truncated); !errors.Is(err, ErrInvalidProof) {
			t.Fatalf("truncated proof accepted: %v", err)
		}
	}
	// Wrong root fails.
	badRoot := root
	badRoot[0] ^= 1
	if _, _, err := VerifyProof(badRoot, []byte("k05"), proof); !errors.Is(err, ErrInvalidProof) {
		t.Fatalf("wrong root accepted: %v", err)
	}
	// A proof for one key must not verify another key as present.
	if _, found, _ := VerifyProof(root, []byte("k06"), proof); found {
		t.Fatal("proof transplanted across keys")
	}
}

// TestProofRandomized: proofs for random membership and absence queries over
// random tries.
func TestProofRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		tr := newTestTrie()
		content := map[string]string{}
		n := 1 + rng.Intn(80)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("%x", rng.Intn(512))
			v := fmt.Sprintf("v%d", i)
			content[k] = v
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		root := tr.RootHash()
		for probe := 0; probe < 40; probe++ {
			k := fmt.Sprintf("%x", rng.Intn(512))
			proof, err := tr.Prove([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			got, found, err := VerifyProof(root, []byte(k), proof)
			if err != nil {
				t.Fatalf("trial %d key %q: %v", trial, k, err)
			}
			want, wantFound := content[k]
			if found != wantFound || (found && string(got) != want) {
				t.Fatalf("trial %d key %q: proof says (%q,%v), content says (%q,%v)",
					trial, k, got, found, want, wantFound)
			}
		}
	}
}
