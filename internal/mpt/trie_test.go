package mpt

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/types"
)

func newTestTrie() *Trie {
	return New(EmptyRoot, kvstore.NewMemory())
}

func TestEmptyTrie(t *testing.T) {
	tr := newTestTrie()
	if tr.RootHash() != EmptyRoot {
		t.Fatal("empty trie root not EmptyRoot")
	}
	if _, found, err := tr.Get([]byte("absent")); err != nil || found {
		t.Fatalf("get on empty: %v %v", found, err)
	}
	if err := tr.Delete([]byte("absent")); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := newTestTrie()
	if err := tr.Put([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tr.Get([]byte("key"))
	if err != nil || !found || string(v) != "value" {
		t.Fatalf("get = %q,%v,%v", v, found, err)
	}
	if _, found, _ := tr.Get([]byte("ke")); found {
		t.Fatal("prefix key should be absent")
	}
	if _, found, _ := tr.Get([]byte("keyx")); found {
		t.Fatal("extension key should be absent")
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := newTestTrie()
	if err := tr.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	r1 := tr.RootHash()
	if err := tr.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tr.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if tr.RootHash() == r1 {
		t.Fatal("root unchanged after overwrite")
	}
	if err := tr.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if tr.RootHash() != r1 {
		t.Fatal("root not restored after writing original value back")
	}
}

func TestPrefixKeys(t *testing.T) {
	// Keys where one is a prefix of another exercise branch value slots.
	tr := newTestTrie()
	pairs := map[string]string{
		"":      "empty-key",
		"a":     "1",
		"ab":    "2",
		"abc":   "3",
		"abd":   "4",
		"b":     "5",
		"\x00":  "zero",
		"\x00a": "zero-a",
	}
	for k, v := range pairs {
		if err := tr.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	for k, v := range pairs {
		got, found, err := tr.Get([]byte(k))
		if err != nil || !found || string(got) != v {
			t.Fatalf("get %q = %q,%v,%v want %q", k, got, found, err, v)
		}
	}
}

func TestDeleteCollapses(t *testing.T) {
	tr := newTestTrie()
	keys := []string{"aaaa", "aaab", "aabb", "bbbb", "a"}
	for _, k := range keys {
		if err := tr.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete in an order that forces branch collapses at several levels.
	for i, k := range []string{"aaab", "a", "aabb", "bbbb"} {
		if err := tr.Delete([]byte(k)); err != nil {
			t.Fatalf("delete %q: %v", k, err)
		}
		if _, found, _ := tr.Get([]byte(k)); found {
			t.Fatalf("%q survived deletion", k)
		}
		// Remaining keys still readable.
		for _, rest := range keys {
			deleted := false
			for _, d := range []string{"aaab", "a", "aabb", "bbbb"}[:i+1] {
				if rest == d {
					deleted = true
				}
			}
			if deleted {
				continue
			}
			if _, found, err := tr.Get([]byte(rest)); err != nil || !found {
				t.Fatalf("after deleting %q, %q unreadable: %v", k, rest, err)
			}
		}
	}
	// Only "aaaa" remains; deleting it empties the trie.
	if err := tr.Delete([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if tr.RootHash() != EmptyRoot {
		t.Fatal("trie not empty after deleting every key")
	}
}

func TestEmptyValueDeletes(t *testing.T) {
	tr := newTestTrie()
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tr.Get([]byte("k")); found {
		t.Fatal("empty-value put did not delete")
	}
	if tr.RootHash() != EmptyRoot {
		t.Fatal("root not empty")
	}
}

// TestHistoryIndependence is the defining MPT property the state layer
// relies on (DESIGN.md invariant 6): any insertion order (with interleaved
// deletions) of the same final content yields the same root.
func TestHistoryIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		content := make(map[string]string)
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%x", rng.Intn(64))
			content[k] = fmt.Sprintf("v%d", rng.Intn(1000))
		}

		buildRoot := func(seed int64) types.Hash {
			order := make([]string, 0, len(content))
			for k := range content {
				order = append(order, k)
			}
			sort.Strings(order)
			r := rand.New(rand.NewSource(seed))
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			tr := newTestTrie()
			// Insert some junk first, then delete it, to exercise
			// non-monotone histories.
			junk := fmt.Sprintf("junk%d", seed)
			if err := tr.Put([]byte(junk), []byte("x")); err != nil {
				t.Fatal(err)
			}
			for _, k := range order {
				if err := tr.Put([]byte(k), []byte(content[k])); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Delete([]byte(junk)); err != nil {
				t.Fatal(err)
			}
			return tr.RootHash()
		}
		r1, r2, r3 := buildRoot(1), buildRoot(2), buildRoot(3)
		if r1 != r2 || r2 != r3 {
			t.Fatalf("trial %d: roots differ across insertion orders: %s %s %s", trial, r1, r2, r3)
		}
	}
}

// TestRootChangesWithContent: different content must (overwhelmingly)
// produce different roots.
func TestRootChangesWithContent(t *testing.T) {
	tr := newTestTrie()
	roots := make(map[types.Hash]bool)
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key%d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		root := tr.RootHash()
		if roots[root] {
			t.Fatalf("root repeated at insert %d", i)
		}
		roots[root] = true
	}
}

func TestCommitAndReload(t *testing.T) {
	store := kvstore.NewMemory()
	tr := New(EmptyRoot, store)
	content := map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%d", i)
		content[k] = v
		if err := tr.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	root, err := tr.Commit()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh trie over the same store must see everything.
	tr2 := New(root, store)
	for k, v := range content {
		got, found, err := tr2.Get([]byte(k))
		if err != nil || !found || string(got) != v {
			t.Fatalf("reloaded get %q = %q,%v,%v", k, got, found, err)
		}
	}
	// And mutating the reloaded trie must not disturb the committed root.
	if err := tr2.Put([]byte("new"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	tr3 := New(root, store)
	if _, found, _ := tr3.Get([]byte("new")); found {
		t.Fatal("old root sees new write — snapshot isolation broken")
	}
}

func TestMissingNodeError(t *testing.T) {
	// A root pointing at a node the store does not contain must error, not
	// silently read empty.
	bogus := types.HashBytes([]byte("nonexistent"))
	tr := New(bogus, kvstore.NewMemory())
	if _, _, err := tr.Get([]byte("k")); err == nil {
		t.Fatal("missing node not reported")
	}
}

func TestIterate(t *testing.T) {
	tr := newTestTrie()
	content := map[string]string{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", (i*37)%100)
		content[k] = fmt.Sprintf("v%d", i)
		if err := tr.Put([]byte(k), []byte(content[k])); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	seen := map[string]string{}
	err := tr.Iterate(func(k, v []byte) bool {
		keys = append(keys, string(k))
		seen[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("iteration not in key order: %v", keys)
	}
	if len(seen) != len(content) {
		t.Fatalf("iterated %d keys, want %d", len(seen), len(content))
	}
	for k, v := range content {
		if seen[k] != v {
			t.Fatalf("key %s: %q != %q", k, seen[k], v)
		}
	}
	// Early stop.
	count := 0
	if err := tr.Iterate(func(k, v []byte) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestTrieMatchesMapModel runs a random operation stream against the trie
// and a plain map; contents and root-of-content must agree at every step.
func TestTrieMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := newTestTrie()
	model := map[string]string{}
	for op := 0; op < 3000; op++ {
		k := fmt.Sprintf("%x", rng.Intn(128))
		if rng.Intn(4) == 0 {
			delete(model, k)
			if err := tr.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
		} else {
			v := fmt.Sprintf("v%d", op)
			model[k] = v
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		if op%211 == 0 {
			probe := fmt.Sprintf("%x", rng.Intn(128))
			got, found, err := tr.Get([]byte(probe))
			if err != nil {
				t.Fatal(err)
			}
			want, wantFound := model[probe]
			if found != wantFound || (found && string(got) != want) {
				t.Fatalf("op %d: trie(%q,%v) != model(%q,%v)", op, got, found, want, wantFound)
			}
		}
	}
	// Final: rebuild from scratch in sorted order; roots must match
	// (history independence against the mutation history).
	fresh := newTestTrie()
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := fresh.Put([]byte(k), []byte(model[k])); err != nil {
			t.Fatal(err)
		}
	}
	if fresh.RootHash() != tr.RootHash() {
		t.Fatal("root after mutation history != root of fresh build")
	}
}

// TestHexPrefixRoundTripQuick covers the key compaction codec.
func TestHexPrefixRoundTripQuick(t *testing.T) {
	f := func(raw []byte, leaf bool) bool {
		nibbles := make([]byte, len(raw)%33)
		for i := range nibbles {
			nibbles[i] = raw[i] & 0x0f
		}
		enc := hexPrefixEncode(nibbles, leaf)
		back, gotLeaf, err := hexPrefixDecode(enc)
		if err != nil || gotLeaf != leaf {
			return false
		}
		return bytes.Equal(back, nibbles) || (len(back) == 0 && len(nibbles) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	// Leaf.
	leaf := &shortNode{key: []byte{1, 2, 3}, val: valueNode("hello")}
	_, enc := encodeNode(leaf, nil)
	back, err := decodeNode(enc)
	if err != nil {
		t.Fatal(err)
	}
	bs, ok := back.(*shortNode)
	if !ok || !bytes.Equal(bs.key, leaf.key) || string(bs.val.(valueNode)) != "hello" {
		t.Fatalf("leaf round trip: %+v", back)
	}
	// Branch with two children and a value.
	branch := &branchNode{value: []byte("bv")}
	branch.children[3] = leaf
	branch.children[10] = &shortNode{key: []byte{4}, val: valueNode("x")}
	_, enc = encodeNode(branch, nil)
	backB, err := decodeNode(enc)
	if err != nil {
		t.Fatal(err)
	}
	bb, ok := backB.(*branchNode)
	if !ok || string(bb.value) != "bv" || bb.children[3] == nil || bb.children[10] == nil || bb.children[0] != nil {
		t.Fatalf("branch round trip: %+v", backB)
	}
	// Garbage rejects.
	if _, err := decodeNode([]byte{0x01, 0x02}); err == nil {
		t.Fatal("garbage decoded")
	}
}

func BenchmarkTriePut(b *testing.B) {
	tr := newTestTrie()
	var key [32]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
		if err := tr.Put(key[:], []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrieRootHash(b *testing.B) {
	tr := newTestTrie()
	var key [32]byte
	for i := 0; i < 10_000; i++ {
		key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
		if err := tr.Put(key[:], []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[3] = byte(i)
		if err := tr.Put(key[:], []byte("v2")); err != nil {
			b.Fatal(err)
		}
		tr.RootHash()
	}
}
