// Package cg implements the strawman concurrency control of §III-D — the
// conventional conflict-graph (CG) scheme the paper compares Nezha against,
// in the style of Fabric++ [5] and FabricSharp [6]:
//
//  1. Graph construction: one vertex per transaction, one edge per
//     transaction dependency (Definition 1): reader → writer for every
//     read-write conflict, lower id → higher id for every write-write
//     conflict.
//  2. Cycle detection and removal: Tarjan's algorithm localizes the
//     nontrivial strongly connected components, Johnson's algorithm
//     enumerates their elementary circuits, and a greedy victim selection
//     aborts the transaction sitting on the most cycles until none remain.
//  3. Topological sorting: Kahn's algorithm over the surviving vertices
//     yields the serial commit order (one transaction per sequence number —
//     the CG scheme has no commit concurrency, which is one of the
//     inefficiencies the paper charges against it).
//
// The cycle-enumeration step explodes combinatorially under high contention;
// the paper reports the CG baseline dying of memory exhaustion at skew 0.8
// with block concurrency above 4, and exceeding 10 s at skew 0.6 with
// concurrency 12. The reproduction bounds the same blow-up two ways:
// MaxCycles caps how many circuits one round may *store* (beyond it the
// remover falls back to a streaming mode that only counts memberships over a
// sample and aborts one victim per round — bounded memory, unbounded time),
// and TimeBudget caps wall-clock; exceeding it makes Schedule return
// ErrCycleExplosion, which the harness reports the way the paper reports its
// OOM/timeout failures.
package cg

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/nezha-dag/nezha/internal/graph"
	"github.com/nezha-dag/nezha/internal/types"
)

// ErrCycleExplosion is returned when cycle removal exhausts its time
// budget, emulating the paper's CG baseline dying of OOM / multi-second
// stalls under high contention.
var ErrCycleExplosion = errors.New("cg: cycle removal exceeded budget (paper's CG baseline dies of OOM here)")

// Config tunes the CG baseline.
type Config struct {
	// MaxCycles bounds how many elementary circuits one removal round may
	// hold in memory for the greedy set cover; past it the remover
	// switches to the streaming fallback. 0 means unlimited.
	MaxCycles int
	// SampleCycles is the streaming fallback's per-round sample size used
	// to pick a victim; 0 defaults to 100k.
	SampleCycles int
	// TimeBudget caps the whole scheduling call; 0 means unlimited.
	TimeBudget time.Duration
}

// DefaultConfig stores up to 200k circuits for exact greedy cover, samples
// 100k in streaming mode, and gives up after 30 s — the regime where the
// paper's baseline died of memory exhaustion.
func DefaultConfig() Config {
	return Config{MaxCycles: 200_000, SampleCycles: 100_000, TimeBudget: 30 * time.Second}
}

// Scheduler is the CG concurrency-control scheme. It is stateless across
// epochs and safe for concurrent use.
type Scheduler struct {
	cfg Config
}

var _ types.Scheduler = (*Scheduler)(nil)

// NewScheduler returns a CG scheduler.
func NewScheduler(cfg Config) *Scheduler { return &Scheduler{cfg: cfg} }

// Name implements types.Scheduler.
func (c *Scheduler) Name() string { return "cg" }

// Schedule implements types.Scheduler.
func (c *Scheduler) Schedule(sims []*types.SimResult) (*types.Schedule, types.PhaseBreakdown, error) {
	var pb types.PhaseBreakdown

	// Step 1: graph construction.
	start := time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	g, ids := buildConflictGraph(sims)
	pb.Graph = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule

	// Step 2: cycle detection and removal.
	start = time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	var deadline time.Time
	if c.cfg.TimeBudget > 0 {
		deadline = start.Add(c.cfg.TimeBudget)
	}
	abortedVerts, err := removeCycles(g, c.cfg, deadline)
	pb.Cycle = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	if err != nil {
		return nil, pb, err
	}

	// Step 3: topological sorting of the survivors.
	start = time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	sched := types.NewSchedule()
	order, ok := topoWithout(g, abortedVerts)
	if !ok {
		// removeCycles guarantees acyclicity; reaching here is a bug.
		return nil, pb, fmt.Errorf("cg: graph still cyclic after cycle removal")
	}
	seq := types.Seq(1)
	for _, v := range order {
		sched.Commit(ids[v], seq)
		seq++
	}
	//nezha:nondeterminism-ok NormalizeAborts re-sequences the abort set deterministically below
	for v := range abortedVerts {
		sched.Abort(ids[v], types.AbortCycle)
	}
	sched.NormalizeAborts()
	pb.Sort = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule

	return sched, pb, nil
}

// buildConflictGraph constructs the transaction conflict graph
// (Definition 2). Construction is indexed by key — the same optimization the
// paper grants the baseline ("the adopted graph construction algorithm
// reduces the squared time complexity", §VI-B) — but the edge set itself is
// inherently quadratic per hot key: every reader × every writer.
func buildConflictGraph(sims []*types.SimResult) (*graph.Directed, []types.TxID) {
	n := len(sims)
	g := graph.NewDirected(n)
	ids := make([]types.TxID, n)

	type keyAccess struct {
		readers []int
		writers []int
	}
	byKey := make(map[types.Key]*keyAccess)
	access := func(k types.Key) *keyAccess {
		a := byKey[k]
		if a == nil {
			a = &keyAccess{}
			byKey[k] = a
		}
		return a
	}
	for v, sim := range sims {
		ids[v] = sim.Tx.ID
		for _, r := range sim.Reads {
			a := access(r.Key)
			a.readers = append(a.readers, v)
		}
		for _, w := range sim.Writes {
			a := access(w.Key)
			a.writers = append(a.writers, v)
		}
	}

	// Iterate keys in sorted order: the edge set is order-insensitive, but
	// adjacency-list ORDER is not — it steers cycle enumeration and the
	// sampling budget, so map order here would make the baseline's abort
	// set differ across replicas (found by nezha-vet's detmap).
	keys := make([]types.Key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i][:], keys[j][:]) < 0 })
	for _, k := range keys {
		a := byKey[k]
		// Read-write: every reader must precede every writer (all reads
		// observe the epoch snapshot).
		for _, r := range a.readers {
			for _, w := range a.writers {
				if r != w {
					g.AddEdge(r, w)
				}
			}
		}
		// Write-write: deterministic order by vertex position (ascending
		// transaction id).
		for i := 0; i < len(a.writers); i++ {
			for j := i + 1; j < len(a.writers); j++ {
				if a.writers[i] != a.writers[j] {
					g.AddEdge(a.writers[i], a.writers[j])
				}
			}
		}
	}
	return g, ids
}

// removeCycles aborts transactions until the graph restricted to survivors
// is acyclic, returning the aborted vertex set. Victims are selected by
// cycle membership (Fabric++'s strategy). Two regimes:
//
//   - Exact: when one round's elementary circuits fit under cfg.MaxCycles,
//     they are stored and removed by greedy set cover.
//   - Streaming: past the cap, a sample of cfg.SampleCycles circuits is
//     counted (not stored) and the single most-covered vertex is aborted;
//     the round then repeats. Memory stays bounded; time does not — which
//     is exactly the baseline's failure mode, surfaced via the deadline.
//
// Ties break toward the higher vertex id (abort the younger transaction).
func removeCycles(g *graph.Directed, cfg Config, deadline time.Time) (map[int]bool, error) {
	sample := cfg.SampleCycles
	if sample <= 0 {
		sample = 100_000
	}
	aborted := make(map[int]bool)
	for {
		//nezha:nondeterminism-ok the paper grants the CG baseline a wall-clock budget; overruns surface as ErrCycleExplosion, not as a schedule
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: over %v", ErrCycleExplosion, cfg.TimeBudget)
		}
		sub := subgraphWithout(g, aborted)
		comps := sub.NontrivialSCCs()
		if len(comps) == 0 {
			return aborted, nil
		}

		// Exact regime: try to hold every circuit.
		var cycles [][]int
		err := sub.ElementaryCycles(cfg.MaxCycles, func(c []int) {
			cp := make([]int, len(c))
			copy(cp, c)
			cycles = append(cycles, cp)
		})
		if err == nil {
			greedyCover(cycles, aborted)
			continue
		}
		if !errors.Is(err, graph.ErrTooManyCycles) {
			return nil, fmt.Errorf("cg: enumerate cycles: %w", err)
		}

		// Streaming regime: count memberships over a bounded sample and
		// abort the most-covered vertex.
		cycles = nil
		count := make(map[int]int)
		err = sub.ElementaryCycles(sample, func(c []int) {
			for _, v := range c {
				count[v]++
			}
		})
		if err != nil && !errors.Is(err, graph.ErrTooManyCycles) {
			return nil, fmt.Errorf("cg: sample cycles: %w", err)
		}
		victim, best := -1, 0
		//nezha:nondeterminism-ok max with a total (count, id) tie-break is iteration-order-insensitive
		for v, n := range count {
			if n > best || (n == best && v > victim) {
				victim, best = v, n
			}
		}
		if victim < 0 {
			return nil, fmt.Errorf("cg: streaming round found no cycles despite nontrivial SCCs")
		}
		aborted[victim] = true
	}
}

// greedyCover aborts vertices covering the stored cycle set, most-covered
// first, until every cycle is covered.
func greedyCover(cycles [][]int, aborted map[int]bool) {
	for len(cycles) > 0 {
		count := make(map[int]int)
		for _, cyc := range cycles {
			for _, v := range cyc {
				count[v]++
			}
		}
		victim, best := -1, 0
		//nezha:nondeterminism-ok max with a total (count, id) tie-break is iteration-order-insensitive
		for v, c := range count {
			if c > best || (c == best && v > victim) {
				victim, best = v, c
			}
		}
		aborted[victim] = true
		remaining := cycles[:0]
		for _, cyc := range cycles {
			covered := false
			for _, v := range cyc {
				if v == victim {
					covered = true
					break
				}
			}
			if !covered {
				remaining = append(remaining, cyc)
			}
		}
		cycles = remaining
	}
}

// subgraphWithout returns a copy of g with the given vertices isolated
// (their edges removed). Vertex ids are preserved.
func subgraphWithout(g *graph.Directed, skip map[int]bool) *graph.Directed {
	if len(skip) == 0 {
		return g
	}
	sub := graph.NewDirected(g.N())
	for u := 0; u < g.N(); u++ {
		if skip[u] {
			continue
		}
		for _, v := range g.Out(u) {
			if !skip[v] {
				sub.AddEdge(u, v)
			}
		}
	}
	return sub
}

// topoWithout topologically sorts g restricted to vertices outside skip.
func topoWithout(g *graph.Directed, skip map[int]bool) ([]int, bool) {
	sub := subgraphWithout(g, skip)
	order, ok := sub.TopoSort()
	if !ok {
		return nil, false
	}
	out := order[:0]
	for _, v := range order {
		if !skip[v] {
			out = append(out, v)
		}
	}
	return out, true
}
