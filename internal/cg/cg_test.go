package cg

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
)

func key(n byte) types.Key {
	var k types.Key
	k[0] = n
	return k
}

func simRW(id types.TxID, reads, writes []types.Key) *types.SimResult {
	sim := &types.SimResult{Tx: &types.Transaction{ID: id}}
	for _, k := range reads {
		sim.Reads = append(sim.Reads, types.ReadEntry{Key: k})
	}
	for _, k := range writes {
		sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(id)}})
	}
	return sim
}

func TestCGAcyclicWorkloadCommitsAll(t *testing.T) {
	// Disjoint transactions: no conflicts, all commit, strictly serial
	// sequence numbers (the CG baseline has no commit concurrency).
	sims := []*types.SimResult{
		simRW(0, []types.Key{key(1)}, []types.Key{key(2)}),
		simRW(1, []types.Key{key(3)}, []types.Key{key(4)}),
		simRW(2, []types.Key{key(5)}, []types.Key{key(6)}),
	}
	sched, pb, err := NewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AbortedCount() != 0 || sched.CommittedCount() != 3 {
		t.Fatalf("commits=%d aborts=%d", sched.CommittedCount(), sched.AbortedCount())
	}
	if groups := sched.Groups(); len(groups) != 3 {
		t.Fatalf("CG must serialize: got %d groups", len(groups))
	}
	if pb.Total() <= 0 {
		t.Fatal("phase breakdown missing")
	}
}

func TestCGRespectsReadBeforeWrite(t *testing.T) {
	// T0 writes k, T1 reads k: reader must commit first (snapshot reads).
	k := key(1)
	sims := []*types.SimResult{
		simRW(0, nil, []types.Key{k}),
		simRW(1, []types.Key{k}, []types.Key{key(2)}),
	}
	sched, _, err := NewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AbortedCount() != 0 {
		t.Fatalf("aborts = %v", sched.Aborted)
	}
	if sched.Seqs[1] >= sched.Seqs[0] {
		t.Fatalf("reader (seq %d) must precede writer (seq %d)", sched.Seqs[1], sched.Seqs[0])
	}
}

func TestCGAbortsCycle(t *testing.T) {
	// T0 reads a writes b; T1 reads b writes a — the classic rw cycle.
	a, b := key(1), key(2)
	sims := []*types.SimResult{
		simRW(0, []types.Key{a}, []types.Key{b}),
		simRW(1, []types.Key{b}, []types.Key{a}),
	}
	sched, _, err := NewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AbortedCount() != 1 {
		t.Fatalf("aborts = %d, want 1", sched.AbortedCount())
	}
	if sched.Aborted[0].Reason != types.AbortCycle {
		t.Fatalf("reason = %v", sched.Aborted[0].Reason)
	}
	if err := core.VerifySchedule(nil, sims, sched); err != nil {
		t.Fatalf("cycle-broken schedule invalid: %v", err)
	}
}

func TestCGPaperExampleAbortsUnserializable(t *testing.T) {
	// Table III's six transactions contain the unserializable pair
	// (T1, T6); CG must abort at least one transaction and produce a
	// serializable remainder.
	a1, a2, a3, a4 := key(1), key(2), key(3), key(4)
	sims := []*types.SimResult{
		simRW(1, []types.Key{a2}, []types.Key{a1}),
		simRW(2, []types.Key{a3}, []types.Key{a2}),
		simRW(3, []types.Key{a4}, []types.Key{a2}),
		simRW(4, []types.Key{a4}, []types.Key{a3}),
		simRW(5, []types.Key{a4}, []types.Key{a4}),
		simRW(6, []types.Key{a1}, []types.Key{a3}),
	}
	sched, _, err := NewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AbortedCount() == 0 {
		t.Fatal("unserializable workload committed in full")
	}
	if err := core.VerifySchedule(nil, sims, sched); err != nil {
		t.Fatal(err)
	}
}

func TestCGSchedulesSerializableOnRandomWorkloads(t *testing.T) {
	sched := NewScheduler(DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		snapshot := make(map[types.Key][]byte)
		nAddrs := 40 + rng.Intn(60)
		keys := make([]types.Key, nAddrs)
		for i := range keys {
			keys[i] = types.KeyFromUint64(uint64(i))
			snapshot[keys[i]] = []byte{byte(i)}
		}
		var sims []*types.SimResult
		for i := 0; i < 50; i++ {
			sim := &types.SimResult{Tx: &types.Transaction{ID: types.TxID(i)}}
			if rng.Intn(2) == 0 {
				k := keys[rng.Intn(nAddrs)]
				sim.Reads = append(sim.Reads, types.ReadEntry{Key: k, Value: snapshot[k]})
			}
			k := keys[rng.Intn(nAddrs)]
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(i), 1}})
			sims = append(sims, sim)
		}
		out, _, err := sched.Schedule(sims)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.VerifySchedule(snapshot, sims, out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.CommittedCount()+out.AbortedCount() != len(sims) {
			t.Fatalf("trial %d: tx accounting wrong", trial)
		}
	}
}

func TestCGDeterministic(t *testing.T) {
	build := func() []*types.SimResult {
		rng := rand.New(rand.NewSource(3))
		var sims []*types.SimResult
		for i := 0; i < 60; i++ {
			sim := &types.SimResult{Tx: &types.Transaction{ID: types.TxID(i)}}
			sim.Reads = append(sim.Reads, types.ReadEntry{Key: types.KeyFromUint64(uint64(rng.Intn(40)))})
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: types.KeyFromUint64(uint64(rng.Intn(40))), Value: []byte{1}})
			sims = append(sims, sim)
		}
		return sims
	}
	s := NewScheduler(DefaultConfig())
	out1, _, err1 := s.Schedule(build())
	out2, _, err2 := s.Schedule(build())
	if err1 != nil || err2 != nil {
		t.Fatalf("%v / %v", err1, err2)
	}
	if !out1.Equal(out2) {
		t.Fatal("CG schedules diverge on identical input")
	}
}

func TestCGStreamingFallbackAndTimeBudget(t *testing.T) {
	// A dense rw tangle: every tx reads one hot key and writes the next
	// two, producing combinatorially many cycles.
	const n = 12
	var sims []*types.SimResult
	for i := 0; i < n; i++ {
		sims = append(sims, simRW(types.TxID(i),
			[]types.Key{key(byte(i))},
			[]types.Key{key(byte((i + 1) % n)), key(byte((i + 2) % n))}))
	}
	// A tiny storage cap forces the streaming fallback, which must still
	// terminate with a serializable schedule.
	sched, _, err := NewScheduler(Config{MaxCycles: 3, SampleCycles: 50}).Schedule(sims)
	if err != nil {
		t.Fatalf("streaming mode: %v", err)
	}
	if sched.AbortedCount() == 0 {
		t.Fatal("tangle resolved without aborts")
	}
	if err := core.VerifySchedule(nil, sims, sched); err != nil {
		t.Fatal(err)
	}
	// A hopeless time budget must surface the explosion error.
	_, _, err = NewScheduler(Config{MaxCycles: 3, SampleCycles: 50, TimeBudget: time.Nanosecond}).Schedule(sims)
	if !errors.Is(err, ErrCycleExplosion) {
		t.Fatalf("err = %v, want ErrCycleExplosion", err)
	}
	// Unlimited storage succeeds on the same input.
	if _, _, err := NewScheduler(Config{MaxCycles: 0}).Schedule(sims); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
}

func TestCGEmptyEpoch(t *testing.T) {
	out, _, err := NewScheduler(DefaultConfig()).Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.CommittedCount() != 0 {
		t.Fatal("phantom commits")
	}
}
