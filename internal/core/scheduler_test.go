package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nezha-dag/nezha/internal/types"
)

// randomWorkload synthesizes an epoch: a snapshot over nAddrs keys and
// nTxs transactions, each reading and writing small random key sets with
// read values taken from the snapshot (as a correct speculative executor
// would produce).
func randomWorkload(rng *rand.Rand, nTxs, nAddrs int) (map[types.Key][]byte, []*types.SimResult) {
	snapshot := make(map[types.Key][]byte, nAddrs)
	keys := make([]types.Key, nAddrs)
	for i := range keys {
		keys[i] = types.KeyFromUint64(uint64(i))
		snapshot[keys[i]] = []byte{byte(i), byte(i >> 8)}
	}
	sims := make([]*types.SimResult, nTxs)
	for i := range sims {
		sim := &types.SimResult{Tx: &types.Transaction{ID: types.TxID(i)}}
		nr, nw := rng.Intn(3), 1+rng.Intn(2)
		seenR := make(map[types.Key]bool)
		for r := 0; r < nr; r++ {
			k := keys[rng.Intn(nAddrs)]
			if seenR[k] {
				continue
			}
			seenR[k] = true
			sim.Reads = append(sim.Reads, types.ReadEntry{Key: k, Value: snapshot[k]})
		}
		seenW := make(map[types.Key]bool)
		for w := 0; w < nw; w++ {
			k := keys[rng.Intn(nAddrs)]
			if seenW[k] {
				continue
			}
			seenW[k] = true
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(i), 0xff}})
		}
		sims[i] = sim
	}
	return snapshot, sims
}

// TestScheduleSerializableOnRandomWorkloads is the central property test:
// across contention levels, every schedule Nezha produces must pass full
// serializability verification (DESIGN.md invariants 2–4).
func TestScheduleSerializableOnRandomWorkloads(t *testing.T) {
	configs := []Config{
		DefaultConfig(),
		{Reorder: false, Heuristic: RankMaxOutDegree},
		{Reorder: true, Heuristic: RankMinSubscript},
	}
	for _, nAddrs := range []int{2, 5, 20, 200} {
		for ci, cfg := range configs {
			sched := MustNewScheduler(cfg)
			rng := rand.New(rand.NewSource(int64(nAddrs*10 + ci)))
			for trial := 0; trial < 25; trial++ {
				snapshot, sims := randomWorkload(rng, 60, nAddrs)
				out, _, err := sched.Schedule(sims)
				if err != nil {
					t.Fatalf("addrs=%d cfg=%d trial=%d: Schedule: %v", nAddrs, ci, trial, err)
				}
				if err := VerifySchedule(snapshot, sims, out); err != nil {
					t.Fatalf("addrs=%d cfg=%d trial=%d: %v", nAddrs, ci, trial, err)
				}
				if out.CommittedCount()+out.AbortedCount() != len(sims) {
					t.Fatalf("addrs=%d cfg=%d trial=%d: %d committed + %d aborted != %d txs",
						nAddrs, ci, trial, out.CommittedCount(), out.AbortedCount(), len(sims))
				}
			}
		}
	}
}

// TestScheduleDeterministic re-runs scheduling on identical input and on a
// re-generated copy of the input; both must agree exactly (invariant 1 —
// every node must derive the same schedule).
func TestScheduleDeterministic(t *testing.T) {
	sched := MustNewScheduler(DefaultConfig())
	for trial := 0; trial < 10; trial++ {
		rng1 := rand.New(rand.NewSource(int64(trial)))
		rng2 := rand.New(rand.NewSource(int64(trial)))
		_, sims1 := randomWorkload(rng1, 80, 10)
		_, sims2 := randomWorkload(rng2, 80, 10)
		out1, _, err1 := sched.Schedule(sims1)
		out2, _, err2 := sched.Schedule(sims2)
		if err1 != nil || err2 != nil {
			t.Fatalf("Schedule: %v / %v", err1, err2)
		}
		if !out1.Equal(out2) {
			t.Fatalf("trial %d: schedules diverge", trial)
		}
	}
}

// TestReorderingNeverIncreasesAborts verifies the §IV-D claim that the
// enhancement only rescues transactions: on every random workload the
// reordering abort count is <= the plain abort count.
func TestReorderingNeverIncreasesAborts(t *testing.T) {
	plain := MustNewScheduler(Config{Reorder: false, Heuristic: RankMaxOutDegree})
	enhanced := MustNewScheduler(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	rescued := 0
	for trial := 0; trial < 40; trial++ {
		_, sims := randomWorkload(rng, 80, 6) // high contention
		p, _, err := plain.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		e, _, err := enhanced.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		if e.AbortedCount() > p.AbortedCount() {
			t.Fatalf("trial %d: reordering raised aborts %d -> %d", trial, p.AbortedCount(), e.AbortedCount())
		}
		rescued += p.AbortedCount() - e.AbortedCount()
	}
	if rescued == 0 {
		t.Fatal("reordering never rescued a transaction across 40 high-contention trials; enhancement likely inert")
	}
}

// TestEmptyAndTrivialInputs covers the degenerate epochs.
func TestEmptyAndTrivialInputs(t *testing.T) {
	sched := MustNewScheduler(DefaultConfig())

	out, _, err := sched.Schedule(nil)
	if err != nil {
		t.Fatalf("empty: %v", err)
	}
	if out.CommittedCount() != 0 || out.AbortedCount() != 0 {
		t.Fatal("empty epoch produced commits or aborts")
	}

	// A transaction touching no state commits in group 1.
	stateless := &types.SimResult{Tx: &types.Transaction{ID: 0}}
	out, _, err = sched.Schedule([]*types.SimResult{stateless})
	if err != nil {
		t.Fatalf("stateless: %v", err)
	}
	if out.Seqs[0] != 1 {
		t.Fatalf("stateless tx seq = %d, want 1", out.Seqs[0])
	}

	// A single read-write transaction commits alone.
	solo := simRW(0, []types.Key{key(1)}, []types.Key{key(2)})
	out, _, err = sched.Schedule([]*types.SimResult{solo})
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	if out.CommittedCount() != 1 || out.AbortedCount() != 0 {
		t.Fatal("solo tx did not commit cleanly")
	}
}

// TestNonConflictingTxsShareGroups: transactions on disjoint keys must all
// commit, and the schedule must exhibit real concurrency (fewer groups than
// transactions).
func TestNonConflictingTxsShareGroups(t *testing.T) {
	const n = 50
	sims := make([]*types.SimResult, n)
	for i := 0; i < n; i++ {
		sims[i] = simRW(types.TxID(i),
			[]types.Key{types.KeyFromUint64(uint64(2 * i))},
			[]types.Key{types.KeyFromUint64(uint64(2*i + 1))})
	}
	out, _, err := MustNewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if out.AbortedCount() != 0 {
		t.Fatalf("disjoint txs aborted: %+v", out.Aborted)
	}
	if groups := out.Groups(); len(groups) != 1 {
		t.Fatalf("disjoint txs split into %d groups, want 1", len(groups))
	}
}

// TestReadOnlyTxsAllShareOneGroup: pure readers never conflict (rule 3 of
// §IV-C) and must share one sequence number.
func TestReadOnlyTxsAllShareOneGroup(t *testing.T) {
	hot := key(9)
	sims := make([]*types.SimResult, 20)
	for i := range sims {
		sims[i] = simRW(types.TxID(i), []types.Key{hot}, nil)
	}
	out, _, err := MustNewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if out.AbortedCount() != 0 {
		t.Fatal("read-only txs aborted")
	}
	if groups := out.Groups(); len(groups) != 1 || len(groups[0]) != 20 {
		t.Fatalf("read-only txs split into %d groups", len(groups))
	}
}

// TestHotWriteKeySerializes: N writers of one key must all commit with
// strictly increasing, id-ordered sequence numbers.
func TestHotWriteKeySerializes(t *testing.T) {
	hot := key(1)
	const n = 30
	sims := make([]*types.SimResult, n)
	for i := range sims {
		sims[i] = simRW(types.TxID(i), nil, []types.Key{hot})
	}
	out, _, err := MustNewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if out.AbortedCount() != 0 {
		t.Fatalf("blind writers aborted: %+v", out.Aborted)
	}
	var prev types.Seq
	for i := 0; i < n; i++ {
		seq := out.Seqs[types.TxID(i)]
		if seq <= prev {
			t.Fatalf("writer %d seq %d not above predecessor %d", i, seq, prev)
		}
		prev = seq
	}
}

// TestSchedulerRejectsBadConfig exercises config validation.
func TestSchedulerRejectsBadConfig(t *testing.T) {
	if _, err := NewScheduler(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewScheduler did not panic")
		}
	}()
	MustNewScheduler(Config{Heuristic: RankHeuristic(42)})
}

// TestVerifyScheduleCatchesViolations feeds hand-built broken schedules to
// the verifier; each must be rejected with a descriptive error.
func TestVerifyScheduleCatchesViolations(t *testing.T) {
	k1, k2 := key(1), key(2)
	snapshot := map[types.Key][]byte{k1: {1}, k2: {2}}
	reader := &types.SimResult{Tx: &types.Transaction{ID: 0},
		Reads: []types.ReadEntry{{Key: k1, Value: []byte{1}}}}
	writer := &types.SimResult{Tx: &types.Transaction{ID: 1},
		Writes: []types.WriteEntry{{Key: k1, Value: []byte{9}}}}
	writer2 := &types.SimResult{Tx: &types.Transaction{ID: 2},
		Writes: []types.WriteEntry{{Key: k1, Value: []byte{8}}}}
	sims := []*types.SimResult{reader, writer, writer2}

	cases := []struct {
		name  string
		build func() *types.Schedule
	}{
		{"write before read", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(1, 1) // writer precedes reader
			s.Commit(0, 2)
			return s
		}},
		{"write equals read", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(0, 1)
			s.Commit(1, 1)
			return s
		}},
		{"duplicate write seq", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(1, 2)
			s.Commit(2, 2)
			return s
		}},
		{"zero seq", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(0, 0)
			return s
		}},
		{"committed and aborted", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(0, 1)
			s.Aborted = append(s.Aborted, types.Abort{ID: 0, Reason: types.AbortCycle})
			return s
		}},
		{"unknown tx", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(99, 1)
			return s
		}},
	}
	for _, tc := range cases {
		if err := VerifySchedule(snapshot, sims, tc.build()); err == nil {
			t.Errorf("%s: verifier accepted a broken schedule", tc.name)
		}
	}

	good := types.NewSchedule()
	good.Commit(0, 1)
	good.Commit(1, 2)
	good.Commit(2, 3)
	if err := VerifySchedule(snapshot, sims, good); err != nil {
		t.Errorf("verifier rejected a valid schedule: %v", err)
	}
}

// TestCommitStateMatchesSerialReplay: the group-concurrent commit and a
// serial replay must install identical final values.
func TestCommitStateMatchesSerialReplay(t *testing.T) {
	sched := MustNewScheduler(DefaultConfig())
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		snapshot, sims := randomWorkload(rng, 60, 8)
		out, _, err := sched.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		byID := make(map[types.TxID]*types.SimResult)
		for _, s := range sims {
			byID[s.Tx.ID] = s
		}
		serial := make(map[types.Key][]byte)
		for _, id := range out.SerialOrder() {
			for _, w := range byID[id].Writes {
				serial[w.Key] = w.Value
			}
		}
		group := CommitState(sims, out)
		if len(serial) != len(group) {
			t.Fatalf("trial %d: state sizes differ: %d vs %d", trial, len(serial), len(group))
		}
		for k, v := range serial {
			if string(group[k]) != string(v) {
				t.Fatalf("trial %d: key %s: serial %x vs group %x", trial, k, v, group[k])
			}
		}
		_ = snapshot
	}
}

// TestQuickRandomRWSets drives the scheduler through testing/quick with
// fully arbitrary (tiny) read/write sets.
func TestQuickRandomRWSets(t *testing.T) {
	sched := MustNewScheduler(DefaultConfig())
	f := func(spec [][2]uint8) bool {
		if len(spec) > 64 {
			spec = spec[:64]
		}
		snapshot := make(map[types.Key][]byte)
		sims := make([]*types.SimResult, 0, len(spec))
		for i, rw := range spec {
			readKey := types.KeyFromUint64(uint64(rw[0] % 8))
			writeKey := types.KeyFromUint64(uint64(rw[1] % 8))
			snapshot[readKey] = nil
			sim := &types.SimResult{Tx: &types.Transaction{ID: types.TxID(i)}}
			sim.Reads = append(sim.Reads, types.ReadEntry{Key: readKey})
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: writeKey, Value: []byte{byte(i)}})
			sims = append(sims, sim)
		}
		out, _, err := sched.Schedule(sims)
		if err != nil {
			return false
		}
		return VerifySchedule(snapshot, sims, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAbortRateGrowsWithContention sanity-checks the Fig. 11 mechanism:
// shrinking the key space (more contention) should not shrink the abort
// rate dramatically, and zero contention must yield zero aborts.
func TestAbortRateGrowsWithContention(t *testing.T) {
	sched := MustNewScheduler(DefaultConfig())
	rate := func(nAddrs int) float64 {
		rng := rand.New(rand.NewSource(5))
		var aborted, total int
		for trial := 0; trial < 20; trial++ {
			_, sims := randomWorkload(rng, 100, nAddrs)
			out, _, err := sched.Schedule(sims)
			if err != nil {
				t.Fatal(err)
			}
			aborted += out.AbortedCount()
			total += len(sims)
		}
		return float64(aborted) / float64(total)
	}
	low := rate(10_000)
	high := rate(4)
	if low > 0.02 {
		t.Fatalf("near-zero contention abort rate = %.3f", low)
	}
	if high <= low {
		t.Fatalf("contention did not raise abort rate: low=%.3f high=%.3f", low, high)
	}
}

func BenchmarkScheduleUniform(b *testing.B) {
	for _, n := range []int{400, 1600} {
		b.Run(fmt.Sprintf("txs=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			_, sims := randomWorkload(rng, n, 10_000)
			sched := MustNewScheduler(DefaultConfig())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sched.Schedule(sims); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
