package core

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

// key returns a Key whose first byte is n, so keys sort in "subscript"
// order A1 < A2 < ... exactly as the paper labels them.
func key(n byte) types.Key {
	var k types.Key
	k[0] = n
	return k
}

// simRW builds a SimResult for a transaction with the given id, read keys,
// and written keys (values are synthesized deterministically).
func simRW(id types.TxID, reads, writes []types.Key) *types.SimResult {
	sim := &types.SimResult{Tx: &types.Transaction{ID: id}}
	for _, k := range reads {
		sim.Reads = append(sim.Reads, types.ReadEntry{Key: k})
	}
	for _, k := range writes {
		sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(id)}})
	}
	return sim
}

// paperExample builds the six transactions of Table III:
//
//	T1: R A2, W A1     T2: R A3, W A2     T3: R A4, W A2
//	T4: R A4, W A3     T5: R A4, W A4     T6: R A1, W A3
func paperExample() []*types.SimResult {
	a1, a2, a3, a4 := key(1), key(2), key(3), key(4)
	return []*types.SimResult{
		simRW(1, []types.Key{a2}, []types.Key{a1}),
		simRW(2, []types.Key{a3}, []types.Key{a2}),
		simRW(3, []types.Key{a4}, []types.Key{a2}),
		simRW(4, []types.Key{a4}, []types.Key{a3}),
		simRW(5, []types.Key{a4}, []types.Key{a4}),
		simRW(6, []types.Key{a1}, []types.Key{a3}),
	}
}

// TestPaperACGConstruction reproduces Fig. 4: the read/write sets per
// address and the write→read dependency edges, with no edge for T5 (its
// read and write hit the same address).
func TestPaperACGConstruction(t *testing.T) {
	acg := BuildACG(paperExample())
	if acg.NumAddresses() != 4 {
		t.Fatalf("addresses = %d, want 4", acg.NumAddresses())
	}
	// Vertex i corresponds to A(i+1) because keys were crafted in order.
	wantReads := [][]types.TxID{{6}, {1}, {2}, {3, 4, 5}}
	wantWrites := [][]types.TxID{{1}, {2, 3}, {4, 6}, {5}}
	for i := range acg.Addrs {
		if got := acg.Addrs[i].Reads; !equalIDs(got, wantReads[i]) {
			t.Errorf("A%d reads = %v, want %v", i+1, got, wantReads[i])
		}
		if got := acg.Addrs[i].Writes; !equalIDs(got, wantWrites[i]) {
			t.Errorf("A%d writes = %v, want %v", i+1, got, wantWrites[i])
		}
	}
	// Fig. 6 edges: A1→A2 (T1), A2→A3 (T2), A2→A4 (T3), A3→A4 (T4),
	// A3→A1 (T6); five edges total, none for T5.
	wantEdges := [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 3}, {2, 0}}
	if acg.Deps.EdgeCount() != len(wantEdges) {
		t.Fatalf("edge count = %d, want %d", acg.Deps.EdgeCount(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !acg.Deps.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge A%d→A%d", e[0]+1, e[1]+1)
		}
	}
	if acg.NumUnits() != 12 {
		t.Fatalf("units = %d, want 12", acg.NumUnits())
	}
}

// TestPaperRankDivision reproduces Fig. 6's blue labels: the dependency
// cycle A1→A2→A3→A1 forces the heuristic, which picks A2 (max out-degree 2)
// first, then A3, A1, A4 follow.
func TestPaperRankDivision(t *testing.T) {
	acg := BuildACG(paperExample())
	ranks := RankAddresses(acg, RankMaxOutDegree)
	want := []int{1, 2, 0, 3} // A2, A3, A1, A4
	if len(ranks) != len(want) {
		t.Fatalf("ranks = %v, want %v", ranks, want)
	}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v (A2, A3, A1, A4)", ranks, want)
		}
	}
}

// TestPaperHierarchicalSorting reproduces Fig. 7 end to end: T1 aborts as
// unserializable, and the committed sequence numbers are
// T2=s+1, T3=T4=s+2, T5=T6=s+3 (s = 1 here).
func TestPaperHierarchicalSorting(t *testing.T) {
	sims := paperExample()
	sched, pb, err := MustNewScheduler(DefaultConfig()).Schedule(sims)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if pb.Total() <= 0 {
		t.Fatal("phase breakdown not recorded")
	}

	if sched.AbortedCount() != 1 || sched.Aborted[0].ID != 1 {
		t.Fatalf("aborts = %+v, want [T1]", sched.Aborted)
	}
	if sched.Aborted[0].Reason != types.AbortUnserializable {
		t.Fatalf("abort reason = %v", sched.Aborted[0].Reason)
	}

	s := types.Seq(1)
	want := map[types.TxID]types.Seq{2: s + 1, 3: s + 2, 4: s + 2, 5: s + 3, 6: s + 3}
	for id, wantSeq := range want {
		if got := sched.Seqs[id]; got != wantSeq {
			t.Errorf("T%d seq = %d, want %d", id, got, wantSeq)
		}
	}

	// Fig. 7(d): commit groups {T2}, {T3,T4}, {T5,T6}.
	groups := sched.Groups()
	wantGroups := [][]types.TxID{{2}, {3, 4}, {5, 6}}
	if len(groups) != len(wantGroups) {
		t.Fatalf("groups = %v, want %v", groups, wantGroups)
	}
	for i := range wantGroups {
		if !equalIDs(groups[i], wantGroups[i]) {
			t.Fatalf("groups = %v, want %v", groups, wantGroups)
		}
	}

	if err := VerifySchedule(nil, sims, sched); err != nil {
		t.Fatalf("paper example schedule not serializable: %v", err)
	}
}

// TestPaperReorderingFig8 reproduces §IV-D: Tu writes A_j and A_{j+1},
// Tv writes A_j and reads A_{j+1}. Without reordering Tu aborts; with
// reordering Tu is bumped to s+2 and both commit.
func TestPaperReorderingFig8(t *testing.T) {
	aj, aj1 := key(1), key(2)
	sims := []*types.SimResult{
		simRW(1, nil, []types.Key{aj, aj1}),         // Tu
		simRW(2, []types.Key{aj1}, []types.Key{aj}), // Tv
	}

	noReorder := MustNewScheduler(Config{Reorder: false, Heuristic: RankMaxOutDegree})
	sched, _, err := noReorder.Schedule(sims)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if sched.AbortedCount() != 1 || sched.Aborted[0].ID != 1 {
		t.Fatalf("without reordering: aborts = %+v, want [Tu]", sched.Aborted)
	}

	withReorder := MustNewScheduler(DefaultConfig())
	sched, _, err = withReorder.Schedule(sims)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if sched.AbortedCount() != 0 {
		t.Fatalf("with reordering: aborts = %+v, want none", sched.Aborted)
	}
	if sched.Seqs[2] != 2 || sched.Seqs[1] != 3 {
		t.Fatalf("seqs = %v, want Tv=2 Tu=3", sched.Seqs)
	}
	if err := VerifySchedule(nil, sims, sched); err != nil {
		t.Fatalf("reordered schedule not serializable: %v", err)
	}
}

func equalIDs(got, want []types.TxID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
