package core

import "github.com/nezha-dag/nezha/internal/graph"

// RankHeuristic selects how Algorithm 1 breaks out of cycles when no
// zero-in-degree address remains.
type RankHeuristic int

const (
	// RankMaxOutDegree is the paper's heuristic: among the addresses with
	// minimum in-degree, pick the first (lowest subscript) with the
	// maximum out-degree — "for the address with more dependencies, its
	// transaction sorting result will affect the sorting of more
	// addresses" (§IV-C).
	RankMaxOutDegree RankHeuristic = iota + 1
	// RankMinSubscript is the naive ablation (A2 in DESIGN.md): among the
	// addresses with minimum in-degree, pick the lowest subscript,
	// ignoring out-degrees.
	RankMinSubscript
)

// RankAddresses implements Algorithm 1 (sorting rank division): an
// optimized topological sort over the address-dependency graph that keeps
// making progress when cycles exist. It returns the vertex ids of the ACG in
// sorting-rank order (rank 0 first).
//
// The iterative structure replaces the paper's tail recursion. Two paths:
//
//   - Fast path (no cycle blocking): a min-heap of zero-in-degree vertices
//     pops the smallest subscript, exactly Kahn's algorithm — O(V+E) total.
//   - Cycle path: when no vertex has zero in-degree, scan the remaining
//     vertices for the minimum in-degree and apply the configured
//     heuristic. Each scan is O(V), paid only once per cycle-blocked round.
func RankAddresses(acg *ACG, heuristic RankHeuristic) []int {
	g := acg.Deps
	n := g.N()
	if n == 0 {
		return nil
	}

	inDeg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		inDeg[v] = g.InDegree(v)
	}
	// outDeg tracks live out-degree (edges toward non-removed vertices),
	// which the max-out-degree heuristic consults.
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		outDeg[v] = g.OutDegree(v)
	}
	// Reverse adjacency so removing a vertex can decrement the live
	// out-degrees of its predecessors.
	rev := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			rev[v] = append(rev[v], u)
		}
	}

	var zero graph.IntMinHeap
	for v := 0; v < n; v++ {
		if inDeg[v] == 0 {
			zero.Push(v)
		}
	}

	seq := make([]int, 0, n)
	remove := func(u int) {
		removed[u] = true
		seq = append(seq, u)
		for _, v := range g.Out(u) {
			if removed[v] {
				continue
			}
			inDeg[v]--
			if inDeg[v] == 0 {
				zero.Push(v)
			}
		}
		for _, p := range rev[u] {
			if !removed[p] {
				outDeg[p]--
			}
		}
	}

	for len(seq) < n {
		if zero.Len() > 0 {
			u := zero.Pop()
			if removed[u] {
				continue
			}
			remove(u)
			continue
		}
		// Cycles block every remaining vertex: find the minimum live
		// in-degree, then apply the heuristic.
		min := -1
		for v := 0; v < n; v++ {
			if !removed[v] && (min == -1 || inDeg[v] < inDeg[min]) {
				min = v
			}
		}
		selected := min
		if heuristic == RankMaxOutDegree {
			for v := 0; v < n; v++ {
				if removed[v] || inDeg[v] != inDeg[min] {
					continue
				}
				// First vertex with the maximum out-degree: strict
				// inequality keeps the lowest subscript among ties.
				if outDeg[v] > outDeg[selected] {
					selected = v
				}
			}
		}
		remove(selected)
	}
	return seq
}
