package core

import (
	"strings"
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

// TestVerifyScheduleErrorPaths drives every distinct rejection branch of the
// verifier and pins the check that fired via an error-message fragment, so a
// refactor that silently weakens one invariant (or reports the wrong one)
// fails here rather than in a differential sweep.
func TestVerifyScheduleErrorPaths(t *testing.T) {
	k1, k2 := key(1), key(2)
	snapshot := map[types.Key][]byte{k1: {1}, k2: {2}}
	sims := []*types.SimResult{
		{Tx: &types.Transaction{ID: 0},
			Reads: []types.ReadEntry{{Key: k1, Value: []byte{1}}}},
		{Tx: &types.Transaction{ID: 1},
			Writes: []types.WriteEntry{{Key: k1, Value: []byte{9}}}},
		{Tx: &types.Transaction{ID: 2},
			Writes: []types.WriteEntry{{Key: k1, Value: []byte{8}}}},
		// Tx 3 reads k1 as if tx 1 already wrote it: committing 3 before 1
		// passes the per-address seq checks (reads need no write below
		// them) but breaks serial-replay equivalence.
		{Tx: &types.Transaction{ID: 3},
			Reads: []types.ReadEntry{{Key: k1, Value: []byte{9}}}},
	}

	cases := []struct {
		name  string
		want  string // fragment of the expected error
		build func() *types.Schedule
	}{
		{"committed and aborted overlap", "both committed and aborted", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(0, 1)
			s.Aborted = append(s.Aborted, types.Abort{ID: 0, Reason: types.AbortCycle})
			return s
		}},
		{"zero sequence number", "zero sequence number", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(0, 0)
			return s
		}},
		{"no simulation result", "no simulation result", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(99, 1)
			return s
		}},
		{"duplicate write seqs", "both write", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(1, 2)
			s.Commit(2, 2)
			return s
		}},
		{"write at read seq", "does not follow read", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(0, 1)
			s.Commit(1, 1)
			return s
		}},
		{"write below read", "does not follow read", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(1, 1)
			s.Commit(0, 2)
			return s
		}},
		{"serial replay mismatch", "serial replay sees", func() *types.Schedule {
			s := types.NewSchedule()
			s.Commit(3, 1) // observes tx 1's write, scheduled before it
			s.Commit(1, 2)
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := VerifySchedule(snapshot, sims, tc.build())
			if err == nil {
				t.Fatal("verifier accepted a broken schedule")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("wrong check fired: got %q, want a %q error", err, tc.want)
			}
		})
	}
}

// TestVerifyScheduleNilSnapshot: missing keys read as nil, so a schedule
// whose reads recorded nil must verify against a nil snapshot — and one
// whose reads recorded a value must not.
func TestVerifyScheduleNilSnapshot(t *testing.T) {
	k := key(7)
	okSim := []*types.SimResult{{Tx: &types.Transaction{ID: 0},
		Reads: []types.ReadEntry{{Key: k, Value: nil}}}}
	s := types.NewSchedule()
	s.Commit(0, 1)
	if err := VerifySchedule(nil, okSim, s); err != nil {
		t.Fatalf("nil-read against nil snapshot rejected: %v", err)
	}

	badSim := []*types.SimResult{{Tx: &types.Transaction{ID: 0},
		Reads: []types.ReadEntry{{Key: k, Value: []byte{1}}}}}
	err := VerifySchedule(nil, badSim, s)
	if err == nil || !strings.Contains(err.Error(), "serial replay sees") {
		t.Fatalf("phantom read against nil snapshot not caught: %v", err)
	}
}

// TestVerifyScheduleDeterministicError: the verifier promises the FIRST
// violation reported for a given broken schedule is stable across runs (it
// iterates sorted ids and sorted address keys, never Go map order). The
// differential harness depends on this for byte-identical failure replays.
func TestVerifyScheduleDeterministicError(t *testing.T) {
	const keys = 8
	snapshot := make(map[types.Key][]byte)
	var sims []*types.SimResult
	sched := types.NewSchedule()
	// Many writers sharing one seq on many addresses: dozens of candidate
	// violations, map iteration would pick an arbitrary one.
	for i := 0; i < 32; i++ {
		k := key(byte(i % keys))
		sims = append(sims, &types.SimResult{Tx: &types.Transaction{ID: types.TxID(i)},
			Writes: []types.WriteEntry{{Key: k, Value: []byte{byte(i)}}}})
		sched.Commit(types.TxID(i), 1)
	}
	first := VerifySchedule(snapshot, sims, sched)
	if first == nil {
		t.Fatal("expected a violation")
	}
	for i := 0; i < 20; i++ {
		err := VerifySchedule(snapshot, sims, sched)
		if err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d reported a different violation:\n  %v\nvs\n  %v", i, err, first)
		}
	}
}

// TestSchedulerRejectsUnknownFault: the fault-injection port is for the
// differential harness's meta-tests only; arbitrary values must not pass
// config validation.
func TestSchedulerRejectsUnknownFault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectFault = Fault(99)
	if _, err := NewScheduler(cfg); err == nil {
		t.Fatal("NewScheduler accepted an unknown fault")
	}
	cfg.InjectFault = FaultNone
	if _, err := NewScheduler(cfg); err != nil {
		t.Fatalf("NewScheduler rejected FaultNone: %v", err)
	}
}
