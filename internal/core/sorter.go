package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/nezha-dag/nezha/internal/types"
)

// initialSeq is the first sequence number handed out; 0 is reserved as the
// "unassigned" sentinel (§IV-C uses an abstract s; any base works as long as
// every node uses the same one).
const initialSeq types.Seq = 1

// sorter carries the mutable state of hierarchical sorting across the
// addresses of one epoch. All per-transaction state is held in dense slices
// indexed by epoch-local id: the maps the original implementation used
// dominated the scheduler's allocation profile, and dense slots are what
// lets conflict-disjoint clusters run on separate goroutines without locks
// (disjoint indices, no shared map buckets).
type sorter struct {
	acg     *ACG
	reorder bool
	// fault is the deliberately injected scheduler bug (FaultNone in
	// production); see fault.go for why the sorter carries it.
	fault Fault

	// seqOf[id] is the sequence number of transaction id. Invariant: 0
	// means "not yet sorted" while the per-address passes are running;
	// after finish() returns, every non-aborted transaction carries a
	// nonzero number (transactions with units are assigned by
	// sortAddress on their first address, stateless transactions get
	// initialSeq in finish()), so 0 never leaks into a schedule.
	seqOf   []types.Seq
	aborted []bool
	// used[j] records every sequence number carried by a unit on address
	// j ("while writeSeq is assigned", Algorithm 2 line 31): two writes
	// on one address must never share a number.
	used []map[types.Seq]bool
	// maxAssigned[j] is the highest sequence number present on address j,
	// consulted by the reordering enhancement (§IV-D: "find the maximum
	// assigned sequence number on A_j and A_j+1").
	maxAssigned []types.Seq
	// rescued counts transactions the §IV-D reordering re-sequenced
	// instead of aborting — atomic because clusters sort in parallel.
	rescued atomic.Int64
}

func newSorter(acg *ACG, reorder bool, fault Fault) *sorter {
	return &sorter{
		acg:         acg,
		reorder:     reorder,
		fault:       fault,
		seqOf:       make([]types.Seq, len(acg.sims)),
		aborted:     make([]bool, len(acg.sims)),
		used:        make([]map[types.Seq]bool, len(acg.Addrs)),
		maxAssigned: make([]types.Seq, len(acg.Addrs)),
	}
}

// assign gives tx the sequence number seq and propagates it to every
// address the transaction touches, keeping used/maxAssigned accurate. On
// reassignment the old number stays marked used — stale marks only make
// later writes skip a number, which is harmless and keeps this O(u).
func (s *sorter) assign(id types.TxID, seq types.Seq) {
	s.seqOf[id] = seq
	sim := s.acg.sims[id]
	mark := func(k types.Key) {
		j := s.acg.index[k]
		if s.used[j] == nil {
			s.used[j] = make(map[types.Seq]bool)
		}
		s.used[j][seq] = true
		if seq > s.maxAssigned[j] {
			s.maxAssigned[j] = seq
		}
	}
	for _, r := range sim.Reads {
		mark(r.Key)
	}
	for _, w := range sim.Writes {
		mark(w.Key)
	}
}

// abortTx marks the transaction aborted; its units are ignored by every
// address processed afterwards.
func (s *sorter) abortTx(id types.TxID) { s.aborted[id] = true }

// run executes Algorithm 2 on every address in rank order — the sequential
// reference the parallel path must reproduce byte for byte.
func (s *sorter) run(ranks []int) {
	for _, j := range ranks {
		s.sortAddress(j)
	}
}

// runParallel executes Algorithm 2 with cluster-level parallelism: the
// conflict-closure clusters (see cluster.go) touch pairwise-disjoint
// transaction and address state, so workers process whole clusters
// concurrently — each cluster's addresses strictly in rank order — and the
// final sorter state is identical to run's. Clusters are drained
// largest-first purely for load balance; the order cannot affect the
// result.
func (s *sorter) runParallel(clusters [][]int, workers int) {
	bySize := scheduleOrder(clusters)
	if workers > len(bySize) {
		workers = len(bySize)
	}
	if workers <= 1 {
		for _, c := range bySize {
			for _, j := range clusters[c] {
				s.sortAddress(j)
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bySize) {
					return
				}
				for _, j := range clusters[bySize[i]] {
					s.sortAddress(j)
				}
			}
		}()
	}
	wg.Wait()
}

// finish assigns initialSeq to every live transaction the per-address
// passes never saw — the stateless ones, whose empty read and write sets
// put them on no address vertex. They conflict with nothing and commit in
// the first group. After finish, the seqOf invariant holds: every
// non-aborted transaction has a nonzero sequence number.
func (s *sorter) finish() {
	if s.fault == FaultDropStatelessSeq {
		return // injected bug: leak the seq-0 sentinel for stateless txs
	}
	for id, sim := range s.acg.sims {
		if sim == nil || s.aborted[id] || s.seqOf[id] != 0 {
			continue
		}
		s.seqOf[id] = initialSeq
	}
}

// sortAddress is Algorithm 2 (transaction sorting) on one address.
func (s *sorter) sortAddress(j int) {
	addr := &s.acg.Addrs[j]

	// Live units: transactions aborted on earlier addresses no longer
	// constrain anyone.
	reads := make([]types.TxID, 0, len(addr.Reads))
	for _, id := range addr.Reads {
		if !s.aborted[id] {
			reads = append(reads, id)
		}
	}
	writes := make([]types.TxID, 0, len(addr.Writes))
	for _, id := range addr.Writes {
		if !s.aborted[id] {
			writes = append(writes, id)
		}
	}

	// --- Read phase (lines 3–15) ---
	var maxRead types.Seq // 0 = "no read units on this address" (line 25)
	if len(reads) > 0 {
		var sortedReads []types.TxID
		for _, id := range reads {
			if s.seqOf[id] != 0 {
				sortedReads = append(sortedReads, id)
			}
		}
		if len(sortedReads) == 0 {
			// All reads share the initial number: reads never conflict
			// with each other (rule 3 of §IV-C).
			for _, id := range reads {
				s.assign(id, initialSeq)
			}
			maxRead = initialSeq
		} else {
			minSeq, maxSeq := s.seqOf[sortedReads[0]], s.seqOf[sortedReads[0]]
			for _, id := range sortedReads[1:] {
				if q := s.seqOf[id]; q < minSeq {
					minSeq = q
				} else if q > maxSeq {
					maxSeq = q
				}
			}
			maxRead = maxSeq
			for _, id := range reads {
				if s.seqOf[id] == 0 {
					s.assign(id, minSeq)
				}
			}
		}
	}

	// --- Write phase ---
	readsHere := make(map[types.TxID]bool, len(reads))
	for _, id := range reads {
		readsHere[id] = true
	}
	var sortedWrites []types.TxID
	for _, id := range writes {
		if s.seqOf[id] != 0 {
			sortedWrites = append(sortedWrites, id)
		}
	}

	// Lines 17–19: a sorted write unit whose read unit sits on the same
	// address must move above every read (the read-before-write rule).
	// The paper's pseudocode handles one such unit; several transactions
	// can read+write the same address, so each gets the next number up,
	// in ascending id order for determinism. The bump applies only when
	// the write actually sits at or below the read ceiling — re-bumping a
	// transaction that is already safely above every read would silently
	// invalidate the numbers it carries on earlier-ranked addresses.
	bumped := make(map[types.TxID]bool)
	for _, id := range sortedWrites {
		if !readsHere[id] || s.seqOf[id] > maxRead {
			continue
		}
		// The new number must clear this address's read ceiling AND every
		// number already present on the other addresses the transaction
		// writes — otherwise the reassignment silently collides with a
		// write sequenced there earlier (a write-write conflict the
		// safety sweep would have to abort).
		target := maxRead + 1
		for _, w := range s.acg.sims[id].Writes {
			if m := s.maxAssigned[s.acg.index[w.Key]]; m >= target {
				target = m + 1
			}
		}
		s.assign(id, target)
		if target > maxRead {
			maxRead = target
		}
		bumped[id] = true
	}

	// Lines 20–24: any other sorted write below the read ceiling is
	// unserializable — unless the reordering enhancement (§IV-D) can bump
	// it above everything it conflicts with. Only transactions with
	// multiple writes and no reads qualify: their anomaly stems purely
	// from a write-write dependency, which the reorderability theorem
	// [FabricSharp] allows flipping. Bumping a transaction that also
	// reads would drag its read units above writes it observed the
	// snapshot past, converting one abort into several.
	for _, id := range sortedWrites {
		if bumped[id] || s.aborted[id] {
			continue
		}
		if s.seqOf[id] >= maxRead {
			continue
		}
		sim := s.acg.sims[id]
		if s.reorder && len(sim.Writes) >= 2 && len(sim.Reads) == 0 {
			var top types.Seq
			for _, w := range sim.Writes {
				if m := s.maxAssigned[s.acg.index[w.Key]]; m > top {
					top = m
				}
			}
			if s.fault == FaultFlipRescue {
				// Injected bug: the §IV-D comparison flipped — take the
				// smaller of the two ceilings, landing the rescued tx at
				// or below units it conflicts with.
				if maxRead < top {
					top = maxRead
				}
			} else if maxRead > top {
				top = maxRead
			}
			s.assign(id, top+1)
			s.rescued.Add(1)
			continue
		}
		s.abortTx(id)
	}

	// Lines 25–35: hand the remaining (unsorted) writes increasing,
	// previously unused numbers, ascending id order ("determined
	// according to their subscripts", rule 2 of §IV-C).
	writeSeq := initialSeq
	if maxRead > 0 {
		writeSeq = maxRead + 1
	}
	for _, id := range writes {
		if s.seqOf[id] != 0 {
			continue
		}
		for s.used[j] != nil && s.used[j][writeSeq] {
			writeSeq++
		}
		s.assign(id, writeSeq)
	}
}

// safetySweep is a conservative final pass that upgrades the heuristic
// guarantees of Algorithm 2 into strict serializability (DESIGN.md §7):
// on every address, each committed write must carry a strictly larger
// sequence number than every committed read of a *different* transaction,
// and committed writes must carry pairwise-distinct numbers. Cross-address
// reassignments (the line-17 bump and the §IV-D reordering) can violate
// these in rare interleavings.
func (s *sorter) safetySweep() {
	all := make([]int, len(s.acg.Addrs))
	for j := range all {
		all[j] = j
	}
	s.coverAborts(s.collectViolations(all))
}

// safetySweepParallel runs the sweep per conflict-closure cluster on the
// worker pool. Violating pairs only ever join transactions sharing an
// address, so every pair is intra-cluster, and the global greedy cover
// decomposes exactly into the per-cluster covers: a victim chosen in one
// cluster never changes another cluster's counts, so the victim set —
// which is all that reaches the schedule — matches the sequential sweep's.
func (s *sorter) safetySweepParallel(clusters [][]int, workers int) {
	bySize := scheduleOrder(clusters)
	if workers > len(bySize) {
		workers = len(bySize)
	}
	if workers <= 1 {
		for _, c := range bySize {
			s.coverAborts(s.collectViolations(clusters[c]))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bySize) {
					return
				}
				c := clusters[bySize[i]]
				s.coverAborts(s.collectViolations(c))
			}
		}()
	}
	wg.Wait()
}

// violation is one per-address pair of committed transactions whose
// sequence numbers break a strict-serializability invariant.
type violation struct{ a, b types.TxID }

// collectViolations gathers the violating pairs on the given addresses.
func (s *sorter) collectViolations(addrs []int) []violation {
	var pairs []violation
	for _, j := range addrs {
		addr := &s.acg.Addrs[j]
		readers := make([]types.TxID, 0, len(addr.Reads))
		for _, id := range addr.Reads {
			if !s.aborted[id] {
				readers = append(readers, id)
			}
		}
		writers := make([]types.TxID, 0, len(addr.Writes))
		for _, id := range addr.Writes {
			if !s.aborted[id] {
				writers = append(writers, id)
			}
		}
		sortBySeqID(readers, s.seqOf)
		sortBySeqID(writers, s.seqOf)

		// Write-write: equal numbers collide. Every pair within an
		// equal-seq run is violating (pairing only neighbors would let a
		// middle-victim cover leave the outer two still colliding).
		for i := 0; i < len(writers); {
			j := i + 1
			for j < len(writers) && s.seqOf[writers[j]] == s.seqOf[writers[i]] {
				j++
			}
			for a := i; a < j; a++ {
				for b := a + 1; b < j; b++ {
					pairs = append(pairs, violation{writers[a], writers[b]})
				}
			}
			i = j
		}
		// Read-write: a write at or below a different transaction's read
		// must follow it in some serial order — impossible without
		// re-execution, so the pair is violating. readers is sorted by
		// seq: for each write, everything from the first reader with
		// seq >= w.seq onward conflicts.
		for _, w := range writers {
			wq := s.seqOf[w]
			lo, hi := 0, len(readers)
			for lo < hi {
				mid := (lo + hi) / 2
				if s.seqOf[readers[mid]] < wq {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			for _, r := range readers[lo:] {
				if r != w {
					pairs = append(pairs, violation{w, r})
				}
			}
		}
	}
	return pairs
}

// coverAborts aborts a greedy vertex cover of the violating pairs — the
// same flavor of victim selection the CG baseline's cycle removal uses —
// because one reassigned reader frequently conflicts with many writers,
// and aborting the reader alone resolves all of those pairs at once.
// Aborting can only remove constraints, never add them, so the loop
// terminates with a violation-free schedule, deterministically: the victim
// each round is the maximum (count, id) pair, a total order, so the scan
// order over the count map cannot change the choice.
func (s *sorter) coverAborts(pairs []violation) {
	if len(pairs) == 0 {
		return
	}
	count := make(map[types.TxID]int, len(pairs))
	for _, p := range pairs {
		count[p.a]++
		count[p.b]++
	}
	for len(pairs) > 0 {
		victim := types.TxID(0)
		best := 0
		//nezha:nondeterminism-ok max with a total (count, id) tie-break is iteration-order-insensitive
		for id, c := range count {
			if c > best || (c == best && c > 0 && id > victim) {
				victim, best = id, c
			}
		}
		s.abortTx(victim)
		kept := pairs[:0]
		for _, p := range pairs {
			if p.a == victim || p.b == victim {
				count[p.a]--
				count[p.b]--
				continue
			}
			kept = append(kept, p)
		}
		pairs = kept
	}
}

// scheduleOrder returns cluster indices sorted by descending size (ties by
// ascending index): draining big clusters first keeps the worker pool
// balanced when one cluster dominates.
func scheduleOrder(clusters [][]int) []int {
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if len(clusters[ca]) != len(clusters[cb]) {
			return len(clusters[ca]) > len(clusters[cb])
		}
		return ca < cb
	})
	return order
}

// sortBySeqID sorts ids in ascending (sequence, id) order in place.
func sortBySeqID(ids []types.TxID, seqOf []types.Seq) {
	// Insertion sort: the slices here are per-address write lists, which
	// are short except under extreme skew, and the input is already
	// nearly sorted by id.
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0; k-- {
			a, b := ids[k-1], ids[k]
			qa, qb := seqOf[a], seqOf[b]
			if qa < qb || (qa == qb && a < b) {
				break
			}
			ids[k-1], ids[k] = ids[k], ids[k-1]
		}
	}
}
