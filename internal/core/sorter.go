package core

import (
	"github.com/nezha-dag/nezha/internal/types"
)

// initialSeq is the first sequence number handed out; 0 is reserved as the
// "unassigned" sentinel (§IV-C uses an abstract s; any base works as long as
// every node uses the same one).
const initialSeq types.Seq = 1

// sorter carries the mutable state of hierarchical sorting across the
// addresses of one epoch.
type sorter struct {
	acg     *ACG
	reorder bool

	seqOf   map[types.TxID]types.Seq
	aborted map[types.TxID]bool
	// used[j] records every sequence number carried by a unit on address
	// j ("while writeSeq is assigned", Algorithm 2 line 31): two writes
	// on one address must never share a number.
	used []map[types.Seq]bool
	// maxAssigned[j] is the highest sequence number present on address j,
	// consulted by the reordering enhancement (§IV-D: "find the maximum
	// assigned sequence number on A_j and A_j+1").
	maxAssigned []types.Seq
}

func newSorter(acg *ACG, reorder bool) *sorter {
	return &sorter{
		acg:         acg,
		reorder:     reorder,
		seqOf:       make(map[types.TxID]types.Seq, len(acg.sims)),
		aborted:     make(map[types.TxID]bool),
		used:        make([]map[types.Seq]bool, len(acg.Addrs)),
		maxAssigned: make([]types.Seq, len(acg.Addrs)),
	}
}

// assign gives tx the sequence number seq and propagates it to every
// address the transaction touches, keeping used/maxAssigned accurate. On
// reassignment the old number stays marked used — stale marks only make
// later writes skip a number, which is harmless and keeps this O(u).
func (s *sorter) assign(id types.TxID, seq types.Seq) {
	s.seqOf[id] = seq
	sim := s.acg.sims[id]
	mark := func(k types.Key) {
		j := s.acg.index[k]
		if s.used[j] == nil {
			s.used[j] = make(map[types.Seq]bool)
		}
		s.used[j][seq] = true
		if seq > s.maxAssigned[j] {
			s.maxAssigned[j] = seq
		}
	}
	for _, r := range sim.Reads {
		mark(r.Key)
	}
	for _, w := range sim.Writes {
		mark(w.Key)
	}
}

// abortTx marks the transaction aborted; its units are ignored by every
// address processed afterwards.
func (s *sorter) abortTx(id types.TxID) { s.aborted[id] = true }

// run executes Algorithm 2 on every address in rank order.
func (s *sorter) run(ranks []int) {
	for _, j := range ranks {
		s.sortAddress(j)
	}
}

// sortAddress is Algorithm 2 (transaction sorting) on one address.
func (s *sorter) sortAddress(j int) {
	addr := &s.acg.Addrs[j]

	// Live units: transactions aborted on earlier addresses no longer
	// constrain anyone.
	reads := make([]types.TxID, 0, len(addr.Reads))
	for _, id := range addr.Reads {
		if !s.aborted[id] {
			reads = append(reads, id)
		}
	}
	writes := make([]types.TxID, 0, len(addr.Writes))
	for _, id := range addr.Writes {
		if !s.aborted[id] {
			writes = append(writes, id)
		}
	}

	// --- Read phase (lines 3–15) ---
	var maxRead types.Seq // 0 = "no read units on this address" (line 25)
	if len(reads) > 0 {
		var sortedReads []types.TxID
		for _, id := range reads {
			if s.seqOf[id] != 0 {
				sortedReads = append(sortedReads, id)
			}
		}
		if len(sortedReads) == 0 {
			// All reads share the initial number: reads never conflict
			// with each other (rule 3 of §IV-C).
			for _, id := range reads {
				s.assign(id, initialSeq)
			}
			maxRead = initialSeq
		} else {
			minSeq, maxSeq := s.seqOf[sortedReads[0]], s.seqOf[sortedReads[0]]
			for _, id := range sortedReads[1:] {
				if q := s.seqOf[id]; q < minSeq {
					minSeq = q
				} else if q > maxSeq {
					maxSeq = q
				}
			}
			maxRead = maxSeq
			for _, id := range reads {
				if s.seqOf[id] == 0 {
					s.assign(id, minSeq)
				}
			}
		}
	}

	// --- Write phase ---
	readsHere := make(map[types.TxID]bool, len(reads))
	for _, id := range reads {
		readsHere[id] = true
	}
	var sortedWrites []types.TxID
	for _, id := range writes {
		if s.seqOf[id] != 0 {
			sortedWrites = append(sortedWrites, id)
		}
	}

	// Lines 17–19: a sorted write unit whose read unit sits on the same
	// address must move above every read (the read-before-write rule).
	// The paper's pseudocode handles one such unit; several transactions
	// can read+write the same address, so each gets the next number up,
	// in ascending id order for determinism. The bump applies only when
	// the write actually sits at or below the read ceiling — re-bumping a
	// transaction that is already safely above every read would silently
	// invalidate the numbers it carries on earlier-ranked addresses.
	bumped := make(map[types.TxID]bool)
	for _, id := range sortedWrites {
		if !readsHere[id] || s.seqOf[id] > maxRead {
			continue
		}
		// The new number must clear this address's read ceiling AND every
		// number already present on the other addresses the transaction
		// writes — otherwise the reassignment silently collides with a
		// write sequenced there earlier (a write-write conflict the
		// safety sweep would have to abort).
		target := maxRead + 1
		for _, w := range s.acg.sims[id].Writes {
			if m := s.maxAssigned[s.acg.index[w.Key]]; m >= target {
				target = m + 1
			}
		}
		s.assign(id, target)
		if target > maxRead {
			maxRead = target
		}
		bumped[id] = true
	}

	// Lines 20–24: any other sorted write below the read ceiling is
	// unserializable — unless the reordering enhancement (§IV-D) can bump
	// it above everything it conflicts with. Only transactions with
	// multiple writes and no reads qualify: their anomaly stems purely
	// from a write-write dependency, which the reorderability theorem
	// [FabricSharp] allows flipping. Bumping a transaction that also
	// reads would drag its read units above writes it observed the
	// snapshot past, converting one abort into several.
	for _, id := range sortedWrites {
		if bumped[id] || s.aborted[id] {
			continue
		}
		if s.seqOf[id] >= maxRead {
			continue
		}
		sim := s.acg.sims[id]
		if s.reorder && len(sim.Writes) >= 2 && len(sim.Reads) == 0 {
			var top types.Seq
			for _, w := range sim.Writes {
				if m := s.maxAssigned[s.acg.index[w.Key]]; m > top {
					top = m
				}
			}
			if maxRead > top {
				top = maxRead
			}
			s.assign(id, top+1)
			continue
		}
		s.abortTx(id)
	}

	// Lines 25–35: hand the remaining (unsorted) writes increasing,
	// previously unused numbers, ascending id order ("determined
	// according to their subscripts", rule 2 of §IV-C).
	writeSeq := initialSeq
	if maxRead > 0 {
		writeSeq = maxRead + 1
	}
	for _, id := range writes {
		if s.seqOf[id] != 0 {
			continue
		}
		for s.used[j] != nil && s.used[j][writeSeq] {
			writeSeq++
		}
		s.assign(id, writeSeq)
	}
}

// safetySweep is a conservative final pass that upgrades the heuristic
// guarantees of Algorithm 2 into strict serializability (DESIGN.md §7):
// on every address, each committed write must carry a strictly larger
// sequence number than every committed read of a *different* transaction,
// and committed writes must carry pairwise-distinct numbers. Cross-address
// reassignments (the line-17 bump and the §IV-D reordering) can violate
// these in rare interleavings.
//
// Victims are chosen by greedy cover over the violating pairs — the same
// flavor of victim selection the CG baseline's cycle removal uses — because
// one reassigned reader frequently conflicts with many writers, and
// aborting the reader alone resolves all of those pairs at once. Aborting
// can only remove constraints, never add them, so the loop terminates with
// a violation-free schedule, deterministically (fixed pair order, (count,
// id) tie-breaks).
func (s *sorter) safetySweep() {
	type pair struct{ a, b types.TxID }
	var pairs []pair

	for j := range s.acg.Addrs {
		addr := &s.acg.Addrs[j]
		readers := make([]types.TxID, 0, len(addr.Reads))
		for _, id := range addr.Reads {
			if !s.aborted[id] {
				readers = append(readers, id)
			}
		}
		writers := make([]types.TxID, 0, len(addr.Writes))
		for _, id := range addr.Writes {
			if !s.aborted[id] {
				writers = append(writers, id)
			}
		}
		sortBySeqID(readers, s.seqOf)
		sortBySeqID(writers, s.seqOf)

		// Write-write: equal numbers collide. Every pair within an
		// equal-seq run is violating (pairing only neighbors would let a
		// middle-victim cover leave the outer two still colliding).
		for i := 0; i < len(writers); {
			j := i + 1
			for j < len(writers) && s.seqOf[writers[j]] == s.seqOf[writers[i]] {
				j++
			}
			for a := i; a < j; a++ {
				for b := a + 1; b < j; b++ {
					pairs = append(pairs, pair{writers[a], writers[b]})
				}
			}
			i = j
		}
		// Read-write: a write at or below a different transaction's read
		// must follow it in some serial order — impossible without
		// re-execution, so the pair is violating. readers is sorted by
		// seq: for each write, everything from the first reader with
		// seq >= w.seq onward conflicts.
		for _, w := range writers {
			wq := s.seqOf[w]
			lo, hi := 0, len(readers)
			for lo < hi {
				mid := (lo + hi) / 2
				if s.seqOf[readers[mid]] < wq {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			for _, r := range readers[lo:] {
				if r != w {
					pairs = append(pairs, pair{w, r})
				}
			}
		}
	}

	// Greedy vertex cover: abort the transaction on the most violating
	// pairs until none remain. Counts live in a dense slice (epoch-local
	// ids) and update decrementally — rebuilding a map per round
	// dominated the whole scheduler under high skew.
	var maxID types.TxID
	for _, p := range pairs {
		if p.a > maxID {
			maxID = p.a
		}
		if p.b > maxID {
			maxID = p.b
		}
	}
	count := make([]int, maxID+1)
	for _, p := range pairs {
		count[p.a]++
		count[p.b]++
	}
	for len(pairs) > 0 {
		victim := types.TxID(0)
		best := 0
		for id, c := range count {
			if c > best || (c == best && c > 0 && types.TxID(id) > victim) {
				victim, best = types.TxID(id), c
			}
		}
		s.abortTx(victim)
		kept := pairs[:0]
		for _, p := range pairs {
			if p.a == victim || p.b == victim {
				count[p.a]--
				count[p.b]--
				continue
			}
			kept = append(kept, p)
		}
		pairs = kept
	}
}

// sortBySeqID sorts ids in ascending (sequence, id) order in place.
func sortBySeqID(ids []types.TxID, seqOf map[types.TxID]types.Seq) {
	// Insertion sort: the slices here are per-address write lists, which
	// are short except under extreme skew, and the input is already
	// nearly sorted by id.
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0; k-- {
			a, b := ids[k-1], ids[k]
			qa, qb := seqOf[a], seqOf[b]
			if qa < qb || (qa == qb && a < b) {
				break
			}
			ids[k-1], ids[k] = ids[k], ids[k-1]
		}
	}
}
