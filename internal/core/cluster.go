package core

// Conflict-closure clustering: the unit of sort-phase parallelism.
//
// Hierarchical sorting mutates shared state keyed by transaction (seqOf,
// aborted) and by address (used, maxAssigned). Sorting address j reads and
// writes exactly the state of the transactions on j and of every address
// those transactions touch — so two addresses can be sorted concurrently,
// with a result identical to any sequential order, iff no transaction
// footprint connects them, even transitively. Rank membership alone is NOT
// enough: two same-rank addresses with no dependency edge between them can
// still both carry units of one transaction, or feed sequence numbers into
// one shared later-ranked address, and fanning them out would diverge from
// the sequential reference.
//
// conflictClusters therefore computes the finest partition of the address
// vertices such that every transaction's footprint (all addresses it reads
// or writes) lies inside one cluster. ACG dependency edges always connect
// addresses of one transaction, so they are intra-cluster by construction,
// and each cluster's slice of the flat rank order is a valid rank order for
// that cluster in isolation. Clusters touch pairwise-disjoint transaction
// and address state, so running them on separate goroutines — each
// processing its addresses in rank order — reproduces the sequential
// schedule byte for byte.

// conflictClusters groups the flat rank order into conflict-closure
// clusters via union-find. Each cluster lists its addresses in rank order;
// clusters are ordered by the rank position of their first address, and the
// result is independent of goroutine scheduling (it is pure).
func conflictClusters(acg *ACG, ranks []int) [][]int {
	n := len(acg.Addrs)
	if n == 0 {
		return nil
	}
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	for _, sim := range acg.sims {
		if sim == nil {
			continue
		}
		first := int32(-1)
		for _, r := range sim.Reads {
			j := int32(acg.index[r.Key])
			if first < 0 {
				first = j
			} else {
				union(first, j)
			}
		}
		for _, w := range sim.Writes {
			j := int32(acg.index[w.Key])
			if first < 0 {
				first = j
			} else {
				union(first, j)
			}
		}
	}

	clusterOf := make([]int, n) // root vertex -> 1+cluster index
	var clusters [][]int
	for _, j := range ranks {
		root := find(int32(j))
		c := clusterOf[root]
		if c == 0 {
			clusters = append(clusters, nil)
			c = len(clusters)
			clusterOf[root] = c
		}
		clusters[c-1] = append(clusters[c-1], j)
	}
	return clusters
}

// maxClusterLen returns the size of the largest cluster.
func maxClusterLen(clusters [][]int) int {
	max := 0
	for _, c := range clusters {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}
