package core_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/check"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
)

// Fuzz inputs decode into epochs through check.EpochFromBytes — the byte
// dialect documented in internal/check/encode.go, shared with the checked-in
// corpus under testdata/fuzz/ (regenerate with `nezha-check corpus`).

// FuzzSchedule drives arbitrary byte-derived epochs through the scheduler
// and asserts the two load-bearing contracts on every input: parallelism
// never changes the schedule, and every schedule passes the serial-replay
// oracle. Both rank heuristics are exercised.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{3, 0x05, 1, 2, 0x0C, 3, 4})
	f.Add([]byte{15, 0x0F, 0, 0, 1, 1, 0x0F, 1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		snapshot, sims := check.EpochFromBytes(data)
		if len(sims) == 0 {
			return
		}
		for _, heur := range []core.RankHeuristic{core.RankMaxOutDegree, core.RankMinSubscript} {
			var ref *types.Schedule
			for _, par := range []int{1, 4} {
				sch, err := core.NewScheduler(core.Config{Reorder: true, Heuristic: heur, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				out, _, err := sch.Schedule(sims)
				if err != nil {
					t.Fatalf("heur=%d par=%d: %v", heur, par, err)
				}
				if ref == nil {
					ref = out
				} else if !ref.Equal(out) {
					t.Fatalf("heur=%d: schedule differs between parallelism 1 and %d", heur, par)
				}
			}
			if err := core.VerifySchedule(snapshot, sims, ref); err != nil {
				t.Fatalf("heur=%d: oracle: %v", heur, err)
			}
		}
	})
}

// FuzzRankDivision targets Algorithm 1 in isolation: on any byte-derived
// epoch, sorting-rank division must emit a permutation of the address
// vertices, deterministically, and identically for the sequential and
// sharded ACG builders.
func FuzzRankDivision(f *testing.F) {
	f.Add([]byte{7, 0x05, 0, 1, 0x05, 1, 2, 0x05, 2, 0})
	f.Add([]byte{1, 0x0F, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, sims := check.EpochFromBytes(data)
		if len(sims) == 0 {
			return
		}
		acg := core.BuildACG(sims)
		for _, heur := range []core.RankHeuristic{core.RankMaxOutDegree, core.RankMinSubscript} {
			ranks := core.RankAddresses(acg, heur)
			if len(ranks) != acg.NumAddresses() {
				t.Fatalf("heur=%d: %d ranks for %d addresses", heur, len(ranks), acg.NumAddresses())
			}
			seen := make([]bool, len(ranks))
			for _, v := range ranks {
				if v < 0 || v >= len(seen) || seen[v] {
					t.Fatalf("heur=%d: ranks are not a permutation: %v", heur, ranks)
				}
				seen[v] = true
			}
			again := core.RankAddresses(acg, heur)
			for i := range ranks {
				if ranks[i] != again[i] {
					t.Fatalf("heur=%d: rank division is nondeterministic at %d", heur, i)
				}
			}
			sharded := core.RankAddresses(core.BuildACGSharded(sims, 4), heur)
			for i := range ranks {
				if ranks[i] != sharded[i] {
					t.Fatalf("heur=%d: sharded ACG ranks diverge at %d", heur, i)
				}
			}
		}
	})
}
