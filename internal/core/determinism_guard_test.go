package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

// scheduleFingerprint renders a schedule as a deterministic byte string:
// commit groups (sequence number -> ascending tx ids) followed by the
// abort list. Two schedules are equivalent iff their fingerprints are
// byte-identical.
func scheduleFingerprint(s *types.Schedule) string {
	bySeq := map[types.Seq][]types.TxID{}
	for id, seq := range s.Seqs {
		bySeq[seq] = append(bySeq[seq], id)
	}
	seqs := make([]types.Seq, 0, len(bySeq))
	for seq := range bySeq {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := ""
	for _, seq := range seqs {
		ids := bySeq[seq]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out += fmt.Sprintf("seq %d: %v\n", seq, ids)
	}
	out += fmt.Sprintf("aborted: %v\n", s.Aborted)
	return out
}

// TestScheduleGOMAXPROCSInvariance is the guard nezha-vet's detmap and
// detsource analyzers back up dynamically: the machine's core count must
// never leak into a schedule. Each epoch is scheduled under GOMAXPROCS=1
// and GOMAXPROCS=8 and the results must match byte for byte — both the
// commit groups/aborts and the PhaseBreakdown with its wall-clock
// durations zeroed (Graph/Cycle/Sort are timings; everything else in the
// breakdown is part of the deterministic contract).
func TestScheduleGOMAXPROCSInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	run := func(procs int, cfg Config, sims []*types.SimResult) (string, types.PhaseBreakdown) {
		t.Helper()
		runtime.GOMAXPROCS(procs)
		sched, pb, err := MustNewScheduler(cfg).Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		pb.Graph, pb.Cycle, pb.Sort = 0, 0, 0
		return scheduleFingerprint(sched), pb
	}

	for _, skew := range []float64{0, 0.9} {
		for _, n := range []int{64, 1024} {
			sims := smallBankSims(t, int64(n)*31+int64(skew*10), n, skew)

			// Pinned fan-out: the full zeroed breakdown must be identical —
			// shards, sort clusters, cluster sizes, rescues.
			cfg := DefaultConfig()
			cfg.Parallelism = 4
			fp1, pb1 := run(1, cfg, sims)
			fp8, pb8 := run(8, cfg, sims)
			if fp1 != fp8 {
				t.Errorf("skew=%.1f n=%d: schedule differs across GOMAXPROCS\n-- procs=1 --\n%s-- procs=8 --\n%s", skew, n, fp1, fp8)
			}
			if !reflect.DeepEqual(pb1, pb8) {
				t.Errorf("skew=%.1f n=%d: phase breakdown differs across GOMAXPROCS: %+v vs %+v", skew, n, pb1, pb8)
			}

			// Machine-sized fan-out (Parallelism=0 resolves to GOMAXPROCS):
			// the fan-out shape may differ, the schedule never may.
			fpa, _ := run(1, DefaultConfig(), sims)
			fpb, _ := run(8, DefaultConfig(), sims)
			if fpa != fpb {
				t.Errorf("skew=%.1f n=%d: schedule differs between sequential and machine-sized runs\n-- procs=1 --\n%s-- procs=8 --\n%s", skew, n, fpa, fpb)
			}
			if fpa != fp1 {
				t.Errorf("skew=%.1f n=%d: pinned and machine-sized fan-out disagree", skew, n)
			}
		}
	}
}
