package core

// Fault selects one deliberately mis-implemented scheduler rule. It exists
// for exactly one consumer: the differential harness's meta-tests
// (internal/check), which must prove that the serializability oracle
// actually detects real scheduler bugs — a harness that never fires is
// worse than none. Production code paths always leave Config.InjectFault at
// FaultNone; NewScheduler rejects unknown values like any other bad config.
type Fault int

const (
	// FaultNone disables fault injection — the production value.
	FaultNone Fault = iota
	// FaultFlipRescue flips the §IV-D reordering comparison: instead of
	// lifting the rescued transaction strictly above the MAXIMUM of the
	// read ceiling and the numbers already assigned on its write
	// addresses, the sorter computes the new number from the MINIMUM of
	// the two — re-sequencing the transaction at or below units it
	// conflicts with. With the safety sweep disabled this leaks
	// write-write collisions and write-below-read anomalies into the
	// schedule, which VerifySchedule must reject.
	FaultFlipRescue
	// FaultDropStatelessSeq drops the sorter's finish pass, leaving every
	// stateless transaction (empty read and write sets) at the reserved
	// sequence number 0 — the "unassigned" sentinel VerifySchedule's
	// structural check must flag.
	FaultDropStatelessSeq
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultFlipRescue:
		return "flip-rescue"
	case FaultDropStatelessSeq:
		return "drop-stateless-seq"
	default:
		return "unknown"
	}
}
