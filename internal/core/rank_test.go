package core

import (
	"math/rand"
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

// rankedPositions inverts a rank sequence into vertex → position.
func rankedPositions(ranks []int) map[int]int {
	pos := make(map[int]int, len(ranks))
	for i, v := range ranks {
		pos[v] = i
	}
	return pos
}

func TestRankAddressesEmptyAndSingle(t *testing.T) {
	if ranks := RankAddresses(BuildACG(nil), RankMaxOutDegree); len(ranks) != 0 {
		t.Fatalf("empty ACG ranked %v", ranks)
	}
	acg := BuildACG([]*types.SimResult{simRW(1, nil, []types.Key{key(1)})})
	ranks := RankAddresses(acg, RankMaxOutDegree)
	if len(ranks) != 1 || ranks[0] != 0 {
		t.Fatalf("single-address ranks = %v", ranks)
	}
}

func TestRankAddressesAcyclicIsTopological(t *testing.T) {
	// T1: W A1 R A2; T2: W A2 R A3 — chain A1 -> A2 -> A3, no cycles:
	// ranks must be a topological order.
	sims := []*types.SimResult{
		simRW(1, []types.Key{key(2)}, []types.Key{key(1)}),
		simRW(2, []types.Key{key(3)}, []types.Key{key(2)}),
	}
	acg := BuildACG(sims)
	for _, h := range []RankHeuristic{RankMaxOutDegree, RankMinSubscript} {
		ranks := RankAddresses(acg, h)
		pos := rankedPositions(ranks)
		for u := 0; u < acg.Deps.N(); u++ {
			for _, v := range acg.Deps.Out(u) {
				if pos[u] > pos[v] {
					t.Fatalf("heuristic %d: edge %d->%d violates rank order %v", h, u, v, ranks)
				}
			}
		}
	}
}

func TestRankHeuristicsDivergeOnCycles(t *testing.T) {
	// The paper example's cycle A1->A2->A3->A1: max-out-degree picks A2
	// first; min-subscript picks A1 first.
	acg := BuildACG(paperExample())
	maxOut := RankAddresses(acg, RankMaxOutDegree)
	minSub := RankAddresses(acg, RankMinSubscript)
	if maxOut[0] != 1 { // A2
		t.Fatalf("max-out-degree first pick = A%d, want A2", maxOut[0]+1)
	}
	if minSub[0] != 0 { // A1
		t.Fatalf("min-subscript first pick = A%d, want A1", minSub[0]+1)
	}
}

func TestRankAddressesCompleteAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		var sims []*types.SimResult
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			sims = append(sims, simRW(types.TxID(i),
				[]types.Key{key(byte(rng.Intn(12)))},
				[]types.Key{key(byte(rng.Intn(12)))}))
		}
		acg := BuildACG(sims)
		r1 := RankAddresses(acg, RankMaxOutDegree)
		r2 := RankAddresses(acg, RankMaxOutDegree)
		if len(r1) != acg.NumAddresses() {
			t.Fatalf("trial %d: ranked %d of %d addresses", trial, len(r1), acg.NumAddresses())
		}
		seen := make(map[int]bool)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("trial %d: rank division not deterministic", trial)
			}
			if seen[r1[i]] {
				t.Fatalf("trial %d: vertex %d ranked twice", trial, r1[i])
			}
			seen[r1[i]] = true
		}
	}
}
