package core

import (
	"bytes"
	"fmt"

	"github.com/nezha-dag/nezha/internal/types"
)

// VerifySchedule checks that a commit schedule is serializable with respect
// to the epoch snapshot the transactions were simulated against. It is the
// executable form of DESIGN.md §5 invariants 2–4 and is scheme-agnostic: the
// test suites run it against both Nezha and the CG baseline.
//
// Checks performed:
//
//  1. Every committed id has a simulation result and a nonzero sequence
//     number; no id is both committed and aborted.
//  2. Per address: committed writes carry pairwise-distinct numbers, and
//     every committed write's number is strictly greater than the number of
//     every committed read by a different transaction.
//  3. Serial-replay equivalence: replaying committed transactions in
//     (seq, id) order from the snapshot, every read observes exactly the
//     value recorded during simulation — i.e. the concurrent schedule is
//     equivalent to that serial history.
//
// snapshot may be nil, meaning "missing keys read as nil".
func VerifySchedule(snapshot map[types.Key][]byte, sims []*types.SimResult, sched *types.Schedule) error {
	byID := make(map[types.TxID]*types.SimResult, len(sims))
	for _, sim := range sims {
		byID[sim.Tx.ID] = sim
	}

	// Check 1: structural soundness.
	for _, a := range sched.Aborted {
		if sched.IsCommitted(a.ID) {
			return fmt.Errorf("core: tx %d both committed and aborted", a.ID)
		}
	}
	for id, seq := range sched.Seqs {
		if seq == 0 {
			return fmt.Errorf("core: committed tx %d has zero sequence number", id)
		}
		if byID[id] == nil {
			return fmt.Errorf("core: committed tx %d has no simulation result", id)
		}
	}

	// Check 2: per-address invariants.
	type addrState struct {
		writeSeqs map[types.Seq]types.TxID
		reads     []struct {
			id  types.TxID
			seq types.Seq
		}
	}
	addrs := make(map[types.Key]*addrState)
	stateOf := func(k types.Key) *addrState {
		st := addrs[k]
		if st == nil {
			st = &addrState{writeSeqs: make(map[types.Seq]types.TxID)}
			addrs[k] = st
		}
		return st
	}
	for id, seq := range sched.Seqs {
		sim := byID[id]
		for _, r := range sim.Reads {
			st := stateOf(r.Key)
			st.reads = append(st.reads, struct {
				id  types.TxID
				seq types.Seq
			}{id, seq})
		}
		for _, w := range sim.Writes {
			st := stateOf(w.Key)
			if prev, dup := st.writeSeqs[seq]; dup {
				return fmt.Errorf("core: txs %d and %d both write %s at seq %d", prev, id, w.Key, seq)
			}
			st.writeSeqs[seq] = id
		}
	}
	for k, st := range addrs {
		for wseq, wid := range st.writeSeqs {
			for _, r := range st.reads {
				if r.id != wid && wseq <= r.seq {
					return fmt.Errorf("core: write of tx %d (seq %d) does not follow read of tx %d (seq %d) on %s",
						wid, wseq, r.id, r.seq, k)
				}
			}
		}
	}

	// Check 3: serial-replay equivalence.
	state := make(map[types.Key][]byte, len(snapshot))
	for k, v := range snapshot {
		state[k] = v
	}
	for _, id := range sched.SerialOrder() {
		sim := byID[id]
		for _, r := range sim.Reads {
			if !bytes.Equal(state[r.Key], r.Value) {
				return fmt.Errorf("core: tx %d read %s = %x during simulation but serial replay sees %x",
					id, r.Key, r.Value, state[r.Key])
			}
		}
		for _, w := range sim.Writes {
			state[w.Key] = w.Value
		}
	}
	return nil
}

// CommitState applies a schedule's committed writes group by group and
// returns the resulting state overlay (only written keys appear). Within a
// group, writes touch pairwise-distinct keys by invariant 2, so the result
// is independent of intra-group execution order — this is the "commit with a
// certain degree of concurrency" of §IV-C.
func CommitState(sims []*types.SimResult, sched *types.Schedule) map[types.Key][]byte {
	byID := make(map[types.TxID]*types.SimResult, len(sims))
	for _, sim := range sims {
		byID[sim.Tx.ID] = sim
	}
	out := make(map[types.Key][]byte)
	for _, group := range sched.Groups() {
		for _, id := range group {
			for _, w := range byID[id].Writes {
				out[w.Key] = w.Value
			}
		}
	}
	return out
}
