package core

import (
	"bytes"
	"fmt"
	"maps"
	"sort"

	"github.com/nezha-dag/nezha/internal/types"
)

// VerifySchedule checks that a commit schedule is serializable with respect
// to the epoch snapshot the transactions were simulated against. It is the
// executable form of DESIGN.md §5 invariants 2–4 and is scheme-agnostic: the
// test suites run it against both Nezha and the CG baseline.
//
// Checks performed:
//
//  1. Every committed id has a simulation result and a nonzero sequence
//     number; no id is both committed and aborted.
//  2. Per address: committed writes carry pairwise-distinct numbers, and
//     every committed write's number is strictly greater than the number of
//     every committed read by a different transaction.
//  3. Serial-replay equivalence: replaying committed transactions in
//     (seq, id) order from the snapshot, every read observes exactly the
//     value recorded during simulation — i.e. the concurrent schedule is
//     equivalent to that serial history.
//
// snapshot may be nil, meaning "missing keys read as nil".
func VerifySchedule(snapshot map[types.Key][]byte, sims []*types.SimResult, sched *types.Schedule) error {
	byID := make(map[types.TxID]*types.SimResult, len(sims))
	for _, sim := range sims {
		byID[sim.Tx.ID] = sim
	}

	// Every pass below iterates committed transactions in ascending id
	// order (and addresses in key order), never in map order: the first
	// violation reported for a given broken schedule is deterministic, so
	// a failure seed from the differential harness replays to the
	// byte-identical error message.
	committed := make([]types.TxID, 0, len(sched.Seqs))
	for id := range sched.Seqs {
		committed = append(committed, id)
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i] < committed[j] })

	// Check 1: structural soundness.
	for _, a := range sched.Aborted {
		if sched.IsCommitted(a.ID) {
			return fmt.Errorf("core: tx %d both committed and aborted", a.ID)
		}
	}
	for _, id := range committed {
		if sched.Seqs[id] == 0 {
			return fmt.Errorf("core: committed tx %d has zero sequence number", id)
		}
		if byID[id] == nil {
			return fmt.Errorf("core: committed tx %d has no simulation result", id)
		}
	}

	// Check 2: per-address invariants.
	type unit struct {
		id  types.TxID
		seq types.Seq
	}
	type addrState struct {
		writes []unit
		reads  []unit
	}
	addrs := make(map[types.Key]*addrState)
	var addrKeys []types.Key
	stateOf := func(k types.Key) *addrState {
		st := addrs[k]
		if st == nil {
			st = &addrState{}
			addrs[k] = st
			addrKeys = append(addrKeys, k)
		}
		return st
	}
	for _, id := range committed {
		seq := sched.Seqs[id]
		sim := byID[id]
		for _, r := range sim.Reads {
			st := stateOf(r.Key)
			st.reads = append(st.reads, unit{id, seq})
		}
		for _, w := range sim.Writes {
			st := stateOf(w.Key)
			st.writes = append(st.writes, unit{id, seq})
		}
	}
	sort.Slice(addrKeys, func(i, j int) bool { return addrKeys[i].Less(addrKeys[j]) })
	for _, k := range addrKeys {
		st := addrs[k]
		// Units arrive in ascending id order; re-sort writes by (seq, id)
		// so an equal-seq collision is adjacent and reported on the
		// lowest-numbered pair.
		sort.Slice(st.writes, func(i, j int) bool {
			if st.writes[i].seq != st.writes[j].seq {
				return st.writes[i].seq < st.writes[j].seq
			}
			return st.writes[i].id < st.writes[j].id
		})
		for i := 1; i < len(st.writes); i++ {
			if st.writes[i].seq == st.writes[i-1].seq {
				return fmt.Errorf("core: txs %d and %d both write %s at seq %d",
					st.writes[i-1].id, st.writes[i].id, k, st.writes[i].seq)
			}
		}
		for _, w := range st.writes {
			for _, r := range st.reads {
				if r.id != w.id && w.seq <= r.seq {
					return fmt.Errorf("core: write of tx %d (seq %d) does not follow read of tx %d (seq %d) on %s",
						w.id, w.seq, r.id, r.seq, k)
				}
			}
		}
	}

	// Check 3: serial-replay equivalence.
	state := maps.Clone(snapshot)
	if state == nil {
		state = make(map[types.Key][]byte)
	}
	for _, id := range sched.SerialOrder() {
		sim := byID[id]
		for _, r := range sim.Reads {
			if !bytes.Equal(state[r.Key], r.Value) {
				return fmt.Errorf("core: tx %d read %s = %x during simulation but serial replay sees %x",
					id, r.Key, r.Value, state[r.Key])
			}
		}
		for _, w := range sim.Writes {
			state[w.Key] = w.Value
		}
	}
	return nil
}

// CommitState applies a schedule's committed writes group by group and
// returns the resulting state overlay (only written keys appear). Within a
// group, writes touch pairwise-distinct keys by invariant 2, so the result
// is independent of intra-group execution order — this is the "commit with a
// certain degree of concurrency" of §IV-C.
func CommitState(sims []*types.SimResult, sched *types.Schedule) map[types.Key][]byte {
	byID := make(map[types.TxID]*types.SimResult, len(sims))
	for _, sim := range sims {
		byID[sim.Tx.ID] = sim
	}
	out := make(map[types.Key][]byte)
	for _, group := range sched.Groups() {
		for _, id := range group {
			for _, w := range byID[id].Writes {
				out[w.Key] = w.Value
			}
		}
	}
	return out
}
