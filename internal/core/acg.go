// Package core implements Nezha, the paper's primary contribution: an
// address-based conflict graph (ACG, §IV-B) plus a hierarchical sorting
// algorithm (HS, §IV-C) that together turn the speculative read/write sets
// of one epoch's transactions into a total commit order with intra-group
// concurrency, aborting only unserializable transactions.
//
// The pipeline is:
//
//	BuildACG            O(u·N): map every read/write unit onto its address
//	RankAddresses       Algorithm 1: optimized topological sort of address deps
//	assignSequences     Algorithm 2 per address, in rank order (+ reordering, §IV-D)
//	safetySweep         conservative final pass enforcing serializability
//
// All stages are strictly deterministic: addresses are ordered by key bytes
// ("subscript" order in the paper), transactions by epoch-local id.
package core

import (
	"sort"

	"github.com/nezha-dag/nezha/internal/graph"
	"github.com/nezha-dag/nezha/internal/types"
)

// AddressSet is RW_j of the paper: the ordered read and write units mapped
// onto one address. Read units conceptually precede write units ("we put all
// read units in front of write units in advance on each address", §IV-B), so
// the two groups are stored separately; within each group transactions are
// listed by ascending id.
type AddressSet struct {
	Key    types.Key
	Reads  []types.TxID
	Writes []types.TxID
}

// ACG is the address-based conflict graph (Definition 4): one vertex per
// accessed address, holding that address's read/write set, and a directed
// edge A_i → A_j whenever some transaction writes A_i and reads A_j
// (Definition 3: A_i ⇢ A_j, "A_i is dependent on A_j").
type ACG struct {
	// Addrs holds the address vertices sorted by key bytes; the position
	// of an address in this slice is its vertex id in Deps and its
	// "subscript" for every deterministic tie-break.
	Addrs []AddressSet
	// Deps is the address-dependency graph over Addrs indices.
	Deps *graph.Directed

	index map[types.Key]int
	// sims is the dense transaction lookup: sims[id] is the simulation
	// result of epoch-local transaction id (nil for gaps). Epoch-local ids
	// are assigned consecutively from 0 (types.NewEpoch), so a slice beats
	// a map on every hot sorter lookup.
	sims []*types.SimResult
}

// BuildACG constructs the ACG from one epoch's simulation results in
// O(u·N) time (u = average units per transaction): each transaction's units
// are appended to their address sets, and one dependency edge is recorded
// per (written address, read address) pair of the same transaction.
//
// sims must be sorted by ascending transaction id; BuildACG preserves that
// order inside every address set, which is what makes write-unit ordering
// ("determined according to their subscripts") fall out for free.
// Transaction ids must be epoch-local (consecutive from 0, as types.NewEpoch
// assigns them): the graph indexes transactions densely by id.
//
// BuildACG is the sequential reference implementation; BuildACGSharded is
// the key-sharded parallel builder that must produce an identical graph.
func BuildACG(sims []*types.SimResult) *ACG {
	acg := &ACG{
		index: make(map[types.Key]int),
		sims:  make([]*types.SimResult, denseSimLen(sims)),
	}

	// Pass 1: collect every accessed key so vertices can be numbered in
	// key order. A sorted, deduplicated key slice gives each address its
	// deterministic subscript.
	keys := make([]types.Key, 0, len(sims)*2)
	seen := make(map[types.Key]struct{}, len(sims)*2)
	for _, sim := range sims {
		for _, r := range sim.Reads {
			if _, ok := seen[r.Key]; !ok {
				seen[r.Key] = struct{}{}
				keys = append(keys, r.Key)
			}
		}
		for _, w := range sim.Writes {
			if _, ok := seen[w.Key]; !ok {
				seen[w.Key] = struct{}{}
				keys = append(keys, w.Key)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })

	acg.Addrs = make([]AddressSet, len(keys))
	for i, k := range keys {
		acg.Addrs[i] = AddressSet{Key: k}
		acg.index[k] = i
	}
	acg.Deps = graph.NewDirected(len(keys))

	// Pass 2: map units onto address sets and record address dependencies
	// (write address → read address of the same transaction; same-address
	// read+write pairs add no edge, cf. T5 in the paper's Fig. 4).
	for _, sim := range sims {
		id := sim.Tx.ID
		acg.sims[id] = sim
		for _, r := range sim.Reads {
			j := acg.index[r.Key]
			acg.Addrs[j].Reads = append(acg.Addrs[j].Reads, id)
		}
		for _, w := range sim.Writes {
			i := acg.index[w.Key]
			acg.Addrs[i].Writes = append(acg.Addrs[i].Writes, id)
			for _, r := range sim.Reads {
				if r.Key == w.Key {
					continue
				}
				acg.Deps.AddEdge(i, acg.index[r.Key])
			}
		}
	}
	return acg
}

// NumAddresses returns the number of accessed addresses (vertices).
func (a *ACG) NumAddresses() int { return len(a.Addrs) }

// NumUnits returns the total number of read/write units mapped into the
// graph, the size measure behind the paper's O(u·N) construction bound.
func (a *ACG) NumUnits() int {
	total := 0
	for i := range a.Addrs {
		total += len(a.Addrs[i].Reads) + len(a.Addrs[i].Writes)
	}
	return total
}

// AddressIndex returns the vertex id of a key, or -1 when the key was not
// accessed this epoch.
func (a *ACG) AddressIndex(k types.Key) int {
	i, ok := a.index[k]
	if !ok {
		return -1
	}
	return i
}

// Sim returns the simulation result of a transaction id, or nil when the id
// is not part of the epoch.
func (a *ACG) Sim(id types.TxID) *types.SimResult {
	if int(id) >= len(a.sims) {
		return nil
	}
	return a.sims[id]
}

// denseSimLen returns the dense lookup size for one epoch's simulation
// results: max id + 1. sims are sorted by ascending id, so the last entry
// carries the maximum.
func denseSimLen(sims []*types.SimResult) int {
	if len(sims) == 0 {
		return 0
	}
	return int(sims[len(sims)-1].Tx.ID) + 1
}
