package core

import (
	"fmt"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

// Config tunes the Nezha scheduler. The zero value is NOT valid; use
// DefaultConfig (the paper's full design) and override fields as needed.
type Config struct {
	// Reorder enables the enhanced design of §IV-D: unserializable
	// transactions caused by write-write dependencies are re-sequenced
	// above the conflicting units instead of aborted.
	Reorder bool
	// Heuristic selects the cycle-breaking rule of Algorithm 1.
	Heuristic RankHeuristic
	// SkipSafetySweep disables the final strict-serializability pass.
	// Only benchmarks comparing against the paper-literal algorithm set
	// this; the schedules may then (rarely) violate strict per-address
	// invariants.
	SkipSafetySweep bool
}

// DefaultConfig returns the configuration evaluated in the paper:
// reordering on, max-out-degree rank heuristic, safety sweep on.
func DefaultConfig() Config {
	return Config{Reorder: true, Heuristic: RankMaxOutDegree}
}

// Scheduler is the Nezha concurrency-control scheme (§IV). It is stateless
// across epochs and safe for concurrent use by multiple goroutines (each
// Schedule call builds its own working state).
type Scheduler struct {
	cfg Config
}

var _ types.Scheduler = (*Scheduler)(nil)

// NewScheduler returns a Nezha scheduler with the given configuration.
func NewScheduler(cfg Config) (*Scheduler, error) {
	switch cfg.Heuristic {
	case RankMaxOutDegree, RankMinSubscript:
	default:
		return nil, fmt.Errorf("core: unknown rank heuristic %d", cfg.Heuristic)
	}
	return &Scheduler{cfg: cfg}, nil
}

// MustNewScheduler is NewScheduler for static configurations; it panics on
// an invalid config.
func MustNewScheduler(cfg Config) *Scheduler {
	s, err := NewScheduler(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements types.Scheduler.
func (n *Scheduler) Name() string { return "nezha" }

// Schedule implements types.Scheduler: ACG construction, sorting-rank
// division, per-address transaction sorting (plus reordering and the safety
// sweep), then schedule assembly. The returned breakdown maps onto the
// paper's Fig. 10 phases.
func (n *Scheduler) Schedule(sims []*types.SimResult) (*types.Schedule, types.PhaseBreakdown, error) {
	var pb types.PhaseBreakdown

	start := time.Now()
	acg := BuildACG(sims)
	pb.Graph = time.Since(start)

	start = time.Now()
	ranks := RankAddresses(acg, n.cfg.Heuristic)
	pb.Cycle = time.Since(start)

	start = time.Now()
	srt := newSorter(acg, n.cfg.Reorder)
	srt.run(ranks)
	if !n.cfg.SkipSafetySweep {
		srt.safetySweep()
	}

	sched := types.NewSchedule()
	for _, sim := range sims {
		id := sim.Tx.ID
		if srt.aborted[id] {
			sched.Abort(id, types.AbortUnserializable)
			continue
		}
		seq := srt.seqOf[id]
		if seq == 0 {
			// A transaction that touched no state conflicts with
			// nothing; it commits in the first group.
			seq = initialSeq
		}
		sched.Commit(id, seq)
	}
	sched.NormalizeAborts()
	pb.Sort = time.Since(start)

	return sched, pb, nil
}
