package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/types"
)

// Live counters on the default registry: scheduling runs, abort totals by
// reason, and the §IV-D reorder rescues (aborts the enhancement avoided).
var (
	schedRuns = metrics.Default().Counter("nezha_sched_runs_total",
		"Scheduler invocations (one per epoch).", schemeLabel)
	schedTxs = metrics.Default().Counter("nezha_sched_txs_total",
		"Simulation results entering concurrency control.", schemeLabel)
	schedCommits = metrics.Default().Counter("nezha_sched_commits_total",
		"Transactions committed by concurrency control.", schemeLabel)
	schedAborts = metrics.Default().Counter("nezha_sched_aborts_total",
		"Transactions aborted as unserializable (Fig. 11).", schemeLabel)
	schedRescues = metrics.Default().Counter("nezha_sched_reorder_rescues_total",
		"Write-write conflicts re-sequenced by the reordering enhancement instead of aborted.", schemeLabel)
)

var schemeLabel = metrics.Label{Name: "scheme", Value: "nezha"}

// Config tunes the Nezha scheduler. The zero value is NOT valid; use
// DefaultConfig (the paper's full design) and override fields as needed.
type Config struct {
	// Reorder enables the enhanced design of §IV-D: unserializable
	// transactions caused by write-write dependencies are re-sequenced
	// above the conflicting units instead of aborted.
	Reorder bool
	// Heuristic selects the cycle-breaking rule of Algorithm 1.
	Heuristic RankHeuristic
	// SkipSafetySweep disables the final strict-serializability pass.
	// Only benchmarks comparing against the paper-literal algorithm set
	// this; the schedules may then (rarely) violate strict per-address
	// invariants.
	SkipSafetySweep bool
	// Parallelism is the worker fan-out of the sharded ACG builder and
	// the cluster-parallel sorter: 0 means GOMAXPROCS, 1 selects the
	// sequential reference implementations, and negative values are
	// rejected. Every setting produces byte-identical schedules — the
	// knob trades goroutine overhead against multi-core speedup, never
	// determinism (the cross-implementation tests assert exactly that).
	Parallelism int
	// InjectFault deliberately breaks one scheduler rule (see Fault).
	// Only the differential harness's meta-tests set it, to prove the
	// serializability oracle has teeth; leave it at FaultNone everywhere
	// else.
	InjectFault Fault
}

// DefaultConfig returns the configuration evaluated in the paper:
// reordering on, max-out-degree rank heuristic, safety sweep on, and the
// parallel core sized to the machine.
func DefaultConfig() Config {
	return Config{Reorder: true, Heuristic: RankMaxOutDegree}
}

// minParallelTxs is the epoch size below which Schedule always takes the
// sequential path: goroutine fan-out costs more than it saves on tiny
// epochs. Output is unaffected — both paths produce identical schedules.
const minParallelTxs = 128

// Scheduler is the Nezha concurrency-control scheme (§IV). It is stateless
// across epochs and safe for concurrent use by multiple goroutines (each
// Schedule call builds its own working state).
type Scheduler struct {
	cfg Config
}

var _ types.Scheduler = (*Scheduler)(nil)

// NewScheduler returns a Nezha scheduler with the given configuration.
func NewScheduler(cfg Config) (*Scheduler, error) {
	switch cfg.Heuristic {
	case RankMaxOutDegree, RankMinSubscript:
	default:
		return nil, fmt.Errorf("core: unknown rank heuristic %d", cfg.Heuristic)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("core: negative parallelism %d", cfg.Parallelism)
	}
	switch cfg.InjectFault {
	case FaultNone, FaultFlipRescue, FaultDropStatelessSeq:
	default:
		return nil, fmt.Errorf("core: unknown injected fault %d", cfg.InjectFault)
	}
	return &Scheduler{cfg: cfg}, nil
}

// MustNewScheduler is NewScheduler for static configurations; it panics on
// an invalid config.
func MustNewScheduler(cfg Config) *Scheduler {
	s, err := NewScheduler(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements types.Scheduler.
func (n *Scheduler) Name() string { return "nezha" }

// parallelism resolves the configured fan-out for an epoch of the given
// size: 0 expands to GOMAXPROCS, and epochs below minParallelTxs always
// run sequentially.
func (n *Scheduler) parallelism(txs int) int {
	p := n.cfg.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if txs < minParallelTxs {
		return 1
	}
	return p
}

// Schedule implements types.Scheduler: ACG construction, sorting-rank
// division, per-address transaction sorting (plus reordering and the safety
// sweep), then schedule assembly. The returned breakdown maps onto the
// paper's Fig. 10 phases and records the fan-out shape of the parallel
// core (shards, conflict clusters).
//
// With Parallelism != 1 the graph is built by the key-sharded parallel
// builder and sorting fans out across conflict-closure clusters; the
// schedule is byte-identical to the sequential reference either way.
func (n *Scheduler) Schedule(sims []*types.SimResult) (*types.Schedule, types.PhaseBreakdown, error) {
	var pb types.PhaseBreakdown
	par := n.parallelism(len(sims))

	start := time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	var acg *ACG
	if par > 1 {
		acg = BuildACGSharded(sims, par)
	} else {
		acg = BuildACG(sims)
	}
	pb.Shards = par
	pb.Graph = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule

	start = time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	ranks := RankAddresses(acg, n.cfg.Heuristic)
	pb.Cycle = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule

	start = time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	srt := newSorter(acg, n.cfg.Reorder, n.cfg.InjectFault)
	if par > 1 {
		clusters := conflictClusters(acg, ranks)
		pb.SortClusters = len(clusters)
		pb.MaxClusterAddrs = maxClusterLen(clusters)
		srt.runParallel(clusters, par)
		if !n.cfg.SkipSafetySweep {
			srt.safetySweepParallel(clusters, par)
		}
	} else {
		srt.run(ranks)
		if !n.cfg.SkipSafetySweep {
			srt.safetySweep()
		}
	}
	srt.finish()

	sched := types.NewSchedule()
	for _, sim := range sims {
		id := sim.Tx.ID
		if srt.aborted[id] {
			sched.Abort(id, types.AbortUnserializable)
			continue
		}
		sched.Commit(id, srt.seqOf[id])
	}
	sched.NormalizeAborts()
	pb.Sort = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	pb.Rescued = int(srt.rescued.Load())

	schedRuns.Inc()
	schedTxs.Add(float64(len(sims)))
	schedCommits.Add(float64(sched.CommittedCount()))
	schedAborts.Add(float64(sched.AbortedCount()))
	schedRescues.Add(float64(pb.Rescued))

	return sched, pb, nil
}
