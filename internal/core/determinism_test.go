package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// smallBankSims generates one epoch of SmallBank simulation results at the
// given Zipfian skew via the workload fast path.
func smallBankSims(t *testing.T, seed int64, n int, skew float64) []*types.SimResult {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed: seed, Accounts: 2_000, Skew: skew, InitialBalance: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(n)
	for i, tx := range txs {
		tx.ID = types.TxID(i)
	}
	snap, err := gen.Snapshot(txs)
	if err != nil {
		t.Fatal(err)
	}
	sims, err := workload.Simulate(txs, snap)
	if err != nil {
		t.Fatal(err)
	}
	return sims
}

// edgeSet flattens a dependency graph into a comparable form.
func edgeSet(a *ACG) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for u := 0; u < a.Deps.N(); u++ {
		for _, v := range a.Deps.Out(u) {
			out[[2]int{u, v}] = true
		}
	}
	return out
}

// TestShardedACGMatchesSequential asserts the determinism contract of the
// sharded builder: for SmallBank/Zipf epochs across contention levels, the
// sharded ACG is structurally identical to the sequential reference —
// same subscripts, same unit order per address, same edge set — at shard
// counts 1, 2, 4, and 8.
func TestShardedACGMatchesSequential(t *testing.T) {
	for _, skew := range []float64{0, 0.6, 0.9} {
		for _, n := range []int{3, 64, 500, 1024} {
			sims := smallBankSims(t, int64(n)+7, n, skew)
			ref := BuildACG(sims)
			for _, shards := range []int{1, 2, 4, 8} {
				got := BuildACGSharded(sims, shards)
				if !reflect.DeepEqual(ref.Addrs, got.Addrs) {
					t.Fatalf("skew=%.1f n=%d shards=%d: address sets diverge", skew, n, shards)
				}
				if !reflect.DeepEqual(edgeSet(ref), edgeSet(got)) {
					t.Fatalf("skew=%.1f n=%d shards=%d: edge sets diverge", skew, n, shards)
				}
				if !reflect.DeepEqual(ref.sims, got.sims) {
					t.Fatalf("skew=%.1f n=%d shards=%d: dense sim lookups diverge", skew, n, shards)
				}
				if ref.NumUnits() != got.NumUnits() {
					t.Fatalf("skew=%.1f n=%d shards=%d: unit counts diverge", skew, n, shards)
				}
			}
		}
	}
}

// TestParallelScheduleMatchesSequential is the end-to-end determinism test
// the tentpole demands: on randomized SmallBank/Zipf epochs AND on the
// package's fully random workloads, the parallel core (sharded ACG +
// cluster-parallel sorting + parallel safety sweep) must produce schedules
// byte-identical to the sequential reference at parallelism 1, 2, 4, 8.
func TestParallelScheduleMatchesSequential(t *testing.T) {
	baseCfg := []Config{
		DefaultConfig(),
		{Reorder: false, Heuristic: RankMaxOutDegree},
		{Reorder: true, Heuristic: RankMinSubscript},
	}
	for ci, cfg := range baseCfg {
		cfg.Parallelism = 1
		ref := MustNewScheduler(cfg)
		for _, skew := range []float64{0, 0.6, 0.9} {
			sims := smallBankSims(t, int64(ci*31), 1024, skew)
			want, _, err := ref.Schedule(sims)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 8} {
				pcfg := cfg
				pcfg.Parallelism = par
				got, pb, err := MustNewScheduler(pcfg).Schedule(sims)
				if err != nil {
					t.Fatal(err)
				}
				if !want.Equal(got) {
					t.Fatalf("cfg=%d skew=%.1f par=%d: schedule diverges from sequential reference", ci, skew, par)
				}
				if pb.Shards != par {
					t.Fatalf("cfg=%d skew=%.1f par=%d: breakdown reports %d shards", ci, skew, par, pb.Shards)
				}
				if pb.SortClusters == 0 || pb.MaxClusterAddrs == 0 {
					t.Fatalf("cfg=%d skew=%.1f par=%d: cluster counters not recorded: %+v", ci, skew, par, pb)
				}
			}
		}
	}

	// The random workloads exercise read/write shapes SmallBank never
	// produces (multi-write no-read reordering candidates, stateless
	// transactions).
	seqSched := MustNewScheduler(Config{Reorder: true, Heuristic: RankMaxOutDegree, Parallelism: 1})
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 101))
		_, sims := randomWorkload(rng, 300, 40)
		want, _, err := seqSched.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			par := par
			sched := MustNewScheduler(Config{Reorder: true, Heuristic: RankMaxOutDegree, Parallelism: par})
			got, _, err := sched.Schedule(sims)
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(got) {
				t.Fatalf("trial=%d par=%d: random-workload schedule diverges", trial, par)
			}
		}
	}
}

// TestConflictClustersPartition checks the clustering invariants the
// parallel sorter's safety argument rests on: clusters partition the rank
// order, and no transaction's footprint spans two clusters.
func TestConflictClustersPartition(t *testing.T) {
	sims := smallBankSims(t, 3, 700, 0.5)
	acg := BuildACG(sims)
	ranks := RankAddresses(acg, RankMaxOutDegree)
	clusters := conflictClusters(acg, ranks)

	seen := make(map[int]int) // address -> cluster
	total := 0
	for c, addrs := range clusters {
		total += len(addrs)
		for _, j := range addrs {
			if prev, dup := seen[j]; dup {
				t.Fatalf("address %d in clusters %d and %d", j, prev, c)
			}
			seen[j] = c
		}
	}
	if total != len(ranks) {
		t.Fatalf("clusters cover %d addresses, rank order has %d", total, len(ranks))
	}
	for _, sim := range sims {
		var first = -1
		check := func(k types.Key) {
			c := seen[acg.index[k]]
			if first == -1 {
				first = c
			} else if c != first {
				t.Fatalf("tx %d footprint spans clusters %d and %d", sim.Tx.ID, first, c)
			}
		}
		for _, r := range sim.Reads {
			check(r.Key)
		}
		for _, w := range sim.Writes {
			check(w.Key)
		}
	}
}

// TestStatelessTxSequencedInSorter pins the satellite fix: a transaction
// with no reads and no writes gets initialSeq from the sorter itself
// (sorter.finish), not from a post-hoc patch in Schedule, and commits in
// the first group alongside conflict-free peers.
func TestStatelessTxSequencedInSorter(t *testing.T) {
	sims := []*types.SimResult{
		{Tx: &types.Transaction{ID: 0}}, // stateless
		simRW(1, []types.Key{key(7)}, []types.Key{key(8)}),
		{Tx: &types.Transaction{ID: 2}}, // stateless
	}
	for _, par := range []int{1, 4} {
		sched := MustNewScheduler(Config{Reorder: true, Heuristic: RankMaxOutDegree, Parallelism: par})
		out, _, err := sched.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []types.TxID{0, 2} {
			if out.Seqs[id] != initialSeq {
				t.Fatalf("par=%d: stateless tx %d seq = %d, want %d", par, id, out.Seqs[id], initialSeq)
			}
		}
		if out.AbortedCount() != 0 {
			t.Fatalf("par=%d: aborts on a conflict-free epoch", par)
		}
	}
}

func ExampleBuildACGSharded() {
	sims := []*types.SimResult{
		simRW(0, []types.Key{key(1)}, []types.Key{key(2)}),
		simRW(1, []types.Key{key(2)}, []types.Key{key(3)}),
	}
	acg := BuildACGSharded(sims, 2)
	fmt.Println(acg.NumAddresses(), acg.NumUnits(), acg.Deps.EdgeCount())
	// Output: 3 4 2
}
