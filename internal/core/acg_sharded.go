package core

import (
	"sort"
	"sync"

	"github.com/nezha-dag/nezha/internal/graph"
	"github.com/nezha-dag/nezha/internal/types"
)

// BuildACGSharded is the key-sharded parallel twin of BuildACG: the epoch's
// transactions are partitioned into `shards` contiguous ranges, each range
// builds per-shard address sets and edge lists with worker-local maps, and
// the partial results merge deterministically in key order. The resulting
// ACG is identical to the sequential build — same vertex subscripts, same
// unit order inside every address set, same dependency edges in the same
// insertion order:
//
//   - Subscripts: the merged key set is the union of the shard key sets,
//     sorted by key bytes — exactly the sequential pass-1 result.
//   - Unit order: shards cover ascending, contiguous id ranges and are
//     concatenated in shard order, so every address set lists transactions
//     by ascending id, as the sequential pass 2 does.
//   - Edge order: each shard keeps its edges in local first-occurrence
//     order; replaying shards in order through AddEdge (which drops
//     duplicates) inserts every edge at its global first occurrence.
//
// BuildACG remains the reference implementation; the determinism tests
// assert structural equality between the two at several shard counts.
func BuildACGSharded(sims []*types.SimResult, shards int) *ACG {
	if shards > len(sims) {
		shards = len(sims)
	}
	if shards <= 1 {
		return BuildACG(sims)
	}

	bounds := shardBounds(len(sims), shards)

	// Pass 1 (parallel): every shard collects the keys its transactions
	// touch in a local set.
	localKeys := make([][]types.Key, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			part := sims[bounds[s]:bounds[s+1]]
			seen := make(map[types.Key]struct{}, 2*len(part))
			keys := make([]types.Key, 0, 2*len(part))
			for _, sim := range part {
				for _, r := range sim.Reads {
					if _, ok := seen[r.Key]; !ok {
						seen[r.Key] = struct{}{}
						keys = append(keys, r.Key)
					}
				}
				for _, w := range sim.Writes {
					if _, ok := seen[w.Key]; !ok {
						seen[w.Key] = struct{}{}
						keys = append(keys, w.Key)
					}
				}
			}
			localKeys[s] = keys
		}(s)
	}
	wg.Wait()

	// Merge 1 (sequential): union the shard key sets, then sort for the
	// deterministic subscript numbering.
	seen := make(map[types.Key]struct{}, 2*len(sims))
	keys := make([]types.Key, 0, 2*len(sims))
	for _, lk := range localKeys {
		for _, k := range lk {
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })

	acg := &ACG{
		index: make(map[types.Key]int, len(keys)),
		sims:  make([]*types.SimResult, denseSimLen(sims)),
	}
	acg.Addrs = make([]AddressSet, len(keys))
	for i, k := range keys {
		acg.Addrs[i] = AddressSet{Key: k}
		acg.index[k] = i
	}
	acg.Deps = graph.NewDirected(len(keys))

	// Pass 2 (parallel): shards map their units onto vertex-indexed local
	// sets and record dependency edges, deduplicated locally, in the same
	// nested order the sequential pass uses (per transaction: per write,
	// per read). acg.index is read-only from here on, so the shards can
	// share it. sims is dense-indexed, and shard id ranges are disjoint,
	// so the concurrent writes land on disjoint slots.
	parts := make([]*acgShardPart, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			part := &acgShardPart{
				reads:    make(map[int][]types.TxID),
				writes:   make(map[int][]types.TxID),
				edgeSeen: make(map[int64]struct{}),
			}
			for _, sim := range sims[bounds[s]:bounds[s+1]] {
				id := sim.Tx.ID
				acg.sims[id] = sim
				for _, r := range sim.Reads {
					j := acg.index[r.Key]
					part.reads[j] = append(part.reads[j], id)
				}
				for _, w := range sim.Writes {
					i := acg.index[w.Key]
					part.writes[i] = append(part.writes[i], id)
					for _, r := range sim.Reads {
						if r.Key == w.Key {
							continue
						}
						part.addEdge(i, acg.index[r.Key], len(keys))
					}
				}
			}
			parts[s] = part
		}(s)
	}
	wg.Wait()

	// Merge 2a (parallel over vertex chunks): concatenate the shard
	// partials in shard order — each vertex's slots are written by exactly
	// one worker.
	chunk := (len(keys) + shards - 1) / shards
	for lo := 0; lo < len(keys); lo += chunk {
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				var nr, nw int
				for _, p := range parts {
					nr += len(p.reads[v])
					nw += len(p.writes[v])
				}
				addr := &acg.Addrs[v]
				if nr > 0 {
					addr.Reads = make([]types.TxID, 0, nr)
					for _, p := range parts {
						addr.Reads = append(addr.Reads, p.reads[v]...)
					}
				}
				if nw > 0 {
					addr.Writes = make([]types.TxID, 0, nw)
					for _, p := range parts {
						addr.Writes = append(addr.Writes, p.writes[v]...)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	// Merge 2b (sequential): replay the shard edge lists in shard order;
	// AddEdge coalesces cross-shard duplicates.
	for _, p := range parts {
		for _, e := range p.edges {
			acg.Deps.AddEdge(e[0], e[1])
		}
	}
	return acg
}

// acgShardPart is one shard's worker-local build state.
type acgShardPart struct {
	reads    map[int][]types.TxID
	writes   map[int][]types.TxID
	edges    [][2]int
	edgeSeen map[int64]struct{}
}

// addEdge records the edge u→v once per shard, preserving first-occurrence
// order. n is the vertex count, used to pack the pair into one map key.
func (p *acgShardPart) addEdge(u, v, n int) {
	packed := int64(u)*int64(n) + int64(v)
	if _, dup := p.edgeSeen[packed]; dup {
		return
	}
	p.edgeSeen[packed] = struct{}{}
	p.edges = append(p.edges, [2]int{u, v})
}

// shardBounds splits n items into `shards` contiguous, near-equal ranges;
// bounds[s] : bounds[s+1] is shard s.
func shardBounds(n, shards int) []int {
	bounds := make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		bounds[s] = s * n / shards
	}
	return bounds
}
