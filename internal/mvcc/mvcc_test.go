package mvcc

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

func key(b byte) types.Key {
	var k types.Key
	k[0] = b
	k[types.KeyLen-1] = b
	return k
}

// backend is a mutable flat map standing in for the trie, with a load
// counter so tests can assert copy-on-read behaviour.
type backend struct {
	mu    sync.Mutex
	m     map[types.Key][]byte
	loads int
}

func newBackend() *backend { return &backend{m: make(map[types.Key][]byte)} }

func (b *backend) load(k types.Key) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	return b.m[k], nil
}

func (b *backend) set(k types.Key, v []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = v
}

// commit drives the full statedb-shaped commit protocol: reserve, append
// versions pre-flush, flush the backend, release.
func commit(t *testing.T, st *Store, b *backend, writes []types.WriteEntry) uint64 {
	t.Helper()
	keys := make([]types.Key, len(writes))
	for i, w := range writes {
		keys[i] = w.Key
	}
	st.ReserveEpoch(keys)
	gen, err := st.CommitEpoch(writes, b.load)
	if err != nil {
		t.Fatalf("CommitEpoch: %v", err)
	}
	for _, w := range writes {
		b.set(w.Key, w.Value)
	}
	st.ReleaseEpoch()
	return gen
}

func TestReadThroughAndCopyOnRead(t *testing.T) {
	b := newBackend()
	b.set(key(1), []byte("v0"))
	st := New(0, b.load)

	v := st.Head()
	for i := 0; i < 3; i++ {
		got, err := v.Get(key(1))
		if err != nil || string(got) != "v0" {
			t.Fatalf("get #%d = %q, %v", i, got, err)
		}
	}
	if b.loads != 1 {
		t.Fatalf("backend loads = %d, want 1 (copy-on-read)", b.loads)
	}
	if got, err := v.Get(key(2)); err != nil || got != nil {
		t.Fatalf("missing key = %q, %v; want nil, nil", got, err)
	}
	s := st.Stats()
	if s.Misses != 2 || s.Hits != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 2/2", s.Hits, s.Misses)
	}
}

func TestVersionVisibilityPerGeneration(t *testing.T) {
	b := newBackend()
	b.set(key(1), []byte("v0"))
	st := New(0, b.load)

	commit(t, st, b, []types.WriteEntry{{Key: key(1), Value: []byte("v1")}})
	commit(t, st, b, []types.WriteEntry{{Key: key(1), Value: []byte("v2")}, {Key: key(2), Value: []byte("w2")}})

	cases := []struct {
		gen  uint64
		k    types.Key
		want string
	}{
		{0, key(1), "v0"},
		{1, key(1), "v1"},
		{2, key(1), "v2"},
		{0, key(2), ""},
		{1, key(2), ""},
		{2, key(2), "w2"},
	}
	for _, c := range cases {
		got, err := st.View(c.gen).Get(c.k)
		if err != nil {
			t.Fatalf("gen %d key %x: %v", c.gen, c.k[0], err)
		}
		if string(got) != c.want {
			t.Fatalf("gen %d key %x = %q, want %q", c.gen, c.k[0], got, c.want)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleBaseLoadDiscarded drives the exact race the package comment's
// rule 2 covers: a reader at the old generation loads from a backend that
// already flushed the new value; the chain (populated by CommitEpoch
// before the flush) must win.
func TestStaleBaseLoadDiscarded(t *testing.T) {
	b := newBackend()
	b.set(key(1), []byte("old"))
	st := New(0, b.load)

	old := st.Head() // pinned at gen 0, key never read yet (cold)
	commit(t, st, b, []types.WriteEntry{{Key: key(1), Value: []byte("new")}})

	// The backend now holds "new"; the old view must still read "old"
	// because CommitEpoch base-loaded the chain pre-flush.
	got, err := old.Get(key(1))
	if err != nil || string(got) != "old" {
		t.Fatalf("old view read = %q, %v; want \"old\"", got, err)
	}
	if got, err := st.Head().Get(key(1)); err != nil || string(got) != "new" {
		t.Fatalf("head view read = %q, %v; want \"new\"", got, err)
	}
}

func TestReservedKeyNotCached(t *testing.T) {
	b := newBackend()
	b.set(key(1), []byte("v0"))
	st := New(0, b.load)

	st.ReserveEpoch([]types.Key{key(1)})
	if got, err := st.Head().Get(key(1)); err != nil || string(got) != "v0" {
		t.Fatalf("reserved read = %q, %v", got, err)
	}
	// The value must not have been cached: a second read loads again.
	if _, err := st.Head().Get(key(1)); err != nil {
		t.Fatal(err)
	}
	if b.loads != 2 {
		t.Fatalf("backend loads = %d, want 2 (reserved keys are not cached)", b.loads)
	}
	st.ReleaseEpoch()
	if _, err := st.Head().Get(key(1)); err != nil {
		t.Fatal(err)
	}
	if b.loads != 3 {
		t.Fatalf("backend loads = %d, want 3", b.loads)
	}
	// Released: now cached.
	if _, err := st.Head().Get(key(1)); err != nil {
		t.Fatal(err)
	}
	if b.loads != 3 {
		t.Fatalf("backend loads = %d, want 3 (cached after release)", b.loads)
	}
}

func TestPrefetch(t *testing.T) {
	b := newBackend()
	b.set(key(1), []byte("v1"))
	b.set(key(2), []byte("v2"))
	st := New(0, b.load)

	if err := st.Prefetch(key(1)); err != nil {
		t.Fatal(err)
	}
	st.ReserveEpoch([]types.Key{key(2)})
	if err := st.Prefetch(key(2)); err != nil {
		t.Fatal(err)
	}
	st.ReleaseEpoch()
	if err := st.Prefetch(key(1)); err != nil { // already warm
		t.Fatal(err)
	}

	s := st.Stats()
	if s.Prefetched != 1 || s.PrefetchSkipped != 2 {
		t.Fatalf("prefetched=%d skipped=%d, want 1/2", s.Prefetched, s.PrefetchSkipped)
	}

	// Reading the prefetched key is a cache hit and counts toward the
	// prefetch hit-rate exactly once.
	if got, err := st.Head().Get(key(1)); err != nil || string(got) != "v1" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if _, err := st.Head().Get(key(1)); err != nil {
		t.Fatal(err)
	}
	s = st.Stats()
	if s.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1", s.PrefetchHits)
	}
	if s.Misses != 0 {
		t.Fatalf("misses = %d, want 0 (prefetch warmed the key)", s.Misses)
	}
}

func TestWatermarkFoldsChains(t *testing.T) {
	b := newBackend()
	st := New(0, b.load)
	for g := 1; g <= 4; g++ {
		commit(t, st, b, []types.WriteEntry{{Key: key(1), Value: []byte(fmt.Sprintf("v%d", g))}})
	}

	collected := st.SetWatermark(2)
	if collected != 2 {
		t.Fatalf("collected = %d, want 2", collected)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reads inside the live window still see the folded value: gen 2 and
	// gen 2.5 (i.e. a view at 2 before gen 3's write) resolve to base.
	if got, err := st.View(2).Get(key(1)); err != nil || string(got) != "v2" {
		t.Fatalf("view(2) = %q, %v; want v2 via folded base", got, err)
	}
	if got, err := st.View(3).Get(key(1)); err != nil || string(got) != "v3" {
		t.Fatalf("view(3) = %q, %v", got, err)
	}
	// Below the watermark the store refuses.
	if _, err := st.View(1).Get(key(1)); !errors.Is(err, ErrBelowWatermark) {
		t.Fatalf("view(1) err = %v, want ErrBelowWatermark", err)
	}
	// Lowering is a no-op.
	if got := st.SetWatermark(1); got != 0 {
		t.Fatalf("lowering watermark collected %d", got)
	}
	s := st.Stats()
	if s.GCVersions != 2 || s.Versions != 2 {
		t.Fatalf("gc=%d live=%d, want 2/2", s.GCVersions, s.Versions)
	}
}

// TestConcurrentReadersDuringCommit hammers old- and new-generation reads
// while commits and prefetches run; run with -race.
func TestConcurrentReadersDuringCommit(t *testing.T) {
	b := newBackend()
	const keys = 32
	for i := 0; i < keys; i++ {
		b.set(key(byte(i)), []byte{0})
	}
	st := New(0, b.load)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := st.Gen()
				v := st.View(g)
				for i := 0; i < keys; i++ {
					got, err := v.Get(key(byte(i)))
					if errors.Is(err, ErrBelowWatermark) {
						break
					}
					if err != nil {
						t.Errorf("reader: %v", err)
						return
					}
					if len(got) != 1 || uint64(got[0]) > g {
						t.Errorf("reader at gen %d saw future value %v", g, got)
						return
					}
				}
				_ = st.Prefetch(key(byte(r)))
			}
		}(r)
	}
	for g := byte(1); g <= 40; g++ {
		writes := make([]types.WriteEntry, 0, keys/2)
		for i := 0; i < keys; i += 2 {
			writes = append(writes, types.WriteEntry{Key: key(byte(i)), Value: []byte{g}})
		}
		keysOnly := make([]types.Key, len(writes))
		for i, w := range writes {
			keysOnly[i] = w.Key
		}
		st.ReserveEpoch(keysOnly)
		if _, err := st.CommitEpoch(writes, b.load); err != nil {
			t.Fatal(err)
		}
		for _, w := range writes {
			b.set(w.Key, w.Value)
		}
		st.ReleaseEpoch()
		if g%8 == 0 {
			st.SetWatermark(st.Gen() - 1)
		}
	}
	close(stop)
	wg.Wait()
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalVersionIDsAscendAcrossKeys(t *testing.T) {
	b := newBackend()
	st := New(0, b.load)
	commit(t, st, b, []types.WriteEntry{
		{Key: key(1), Value: []byte("a")},
		{Key: key(2), Value: []byte("b")},
	})
	commit(t, st, b, []types.WriteEntry{{Key: key(1), Value: []byte("c")}})
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.nextGV.Load() != 3 {
		t.Fatalf("allocated %d global versions, want 3", st.nextGV.Load())
	}
}

// TestRollbackEpoch models a failed trie flush: the staged versions are
// unwound and a retry of the same commit produces the same visibility as
// if the failure never happened.
func TestRollbackEpoch(t *testing.T) {
	b := newBackend()
	b.set(key(1), []byte("v0"))
	st := New(0, b.load)
	commit(t, st, b, []types.WriteEntry{{Key: key(1), Value: []byte("v1")}})

	writes := []types.WriteEntry{{Key: key(1), Value: []byte("v2")}, {Key: key(3), Value: []byte("w")}}
	st.ReserveEpoch([]types.Key{key(1), key(3)})
	if _, err := st.CommitEpoch(writes, b.load); err != nil {
		t.Fatal(err)
	}
	// Flush "fails": roll back instead of updating the backend.
	st.RollbackEpoch(writes)
	st.ReleaseEpoch()

	if st.Gen() != 1 {
		t.Fatalf("gen = %d after rollback, want 1", st.Gen())
	}
	if got, err := st.Head().Get(key(1)); err != nil || string(got) != "v1" {
		t.Fatalf("read after rollback = %q, %v; want v1", got, err)
	}
	if got, err := st.Head().Get(key(3)); err != nil || got != nil {
		t.Fatalf("read after rollback = %q, %v; want nil", got, err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The retry lands cleanly at the same generation.
	commit(t, st, b, writes)
	if got, err := st.Head().Get(key(1)); err != nil || string(got) != "v2" {
		t.Fatalf("read after retry = %q, %v; want v2", got, err)
	}
	if got, err := st.Head().Get(key(3)); err != nil || string(got) != "w" {
		t.Fatalf("read after retry = %q, %v; want w", got, err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoaderErrorPropagates(t *testing.T) {
	boom := errors.New("disk on fire")
	st := New(0, func(types.Key) ([]byte, error) { return nil, boom })
	if _, err := st.Head().Get(key(1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want loader error", err)
	}
	if err := st.Prefetch(key(1)); !errors.Is(err, boom) {
		t.Fatalf("prefetch err = %v, want loader error", err)
	}
	if _, err := st.CommitEpoch([]types.WriteEntry{{Key: key(1)}}, nil); !errors.Is(err, boom) {
		t.Fatalf("commit err = %v, want loader error", err)
	}
}
