package mvcc

import (
	"bytes"
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

// FuzzVersionChain decodes fuzz input into an interleaved op sequence —
// epoch commits (through the full reserve/commit/flush/release protocol),
// reads pinned at arbitrary live generations, prefetches, and watermark
// advances — and checks every read against a flat shadow-map oracle: one
// plain map copied per committed generation, the semantics the version
// chains compress. Structural invariants (versions ascending, folds never
// lose the newest at-or-below-watermark value, versions imply base) are
// re-checked after every watermark move and at the end.
func FuzzVersionChain(f *testing.F) {
	// Seeds: a commit+read round trip, a GC fold under live readers, a
	// prefetch racing a reservation, and a multi-key commit batch.
	f.Add([]byte{0, 2, 1, 10, 2, 20, 1, 1, 0, 3, 0})
	f.Add([]byte{0, 1, 1, 7, 0, 1, 1, 8, 0, 1, 1, 9, 2, 1, 1, 1, 1, 0})
	f.Add([]byte{3, 4, 0, 2, 4, 40, 5, 50, 1, 4, 1, 3, 2})
	f.Add([]byte{0, 4, 1, 1, 2, 2, 3, 3, 4, 4, 1, 3, 1, 2, 0, 1, 2, 99, 1, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		const numKeys = 8 // small key space forces deep chains

		// backing is the mutable flat store behind the mvcc cache;
		// history[g] is the full shadow state at generation g.
		backing := make(map[types.Key][]byte)
		load := func(k types.Key) ([]byte, error) { return backing[k], nil }
		history := []map[types.Key][]byte{{}}
		st := New(0, load)

		snapshotState := func() map[types.Key][]byte {
			m := make(map[types.Key][]byte, len(backing))
			for k, v := range backing {
				m[k] = v
			}
			return m
		}

		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}

		var valSeq byte
		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0: // commit a batch of writes
				nb, _ := next()
				n := int(nb%4) + 1
				writes := make([]types.WriteEntry, 0, n)
				seen := make(map[types.Key]bool, n)
				for i := 0; i < n; i++ {
					kb, ok1 := next()
					vb, ok2 := next()
					if !ok1 || !ok2 {
						break
					}
					k := key(kb % numKeys)
					if seen[k] { // commit overlays write each key once
						continue
					}
					seen[k] = true
					valSeq++
					writes = append(writes, types.WriteEntry{Key: k, Value: []byte{vb, valSeq}})
				}
				if len(writes) == 0 {
					continue
				}
				keys := make([]types.Key, len(writes))
				for i, w := range writes {
					keys[i] = w.Key
				}
				st.ReserveEpoch(keys)
				if _, err := st.CommitEpoch(writes, load); err != nil {
					t.Fatalf("commit: %v", err)
				}
				for _, w := range writes {
					backing[w.Key] = w.Value
				}
				st.ReleaseEpoch()
				history = append(history, snapshotState())
			case 1: // read a key at a live generation
				kb, ok1 := next()
				gb, ok2 := next()
				if !ok1 || !ok2 {
					break
				}
				w := st.Watermark()
				span := st.Gen() - w + 1
				gen := w + uint64(gb)%span
				k := key(kb % numKeys)
				got, err := st.View(gen).Get(k)
				if err != nil {
					t.Fatalf("read key %d at gen %d: %v", kb%numKeys, gen, err)
				}
				want := history[gen][k]
				if !bytes.Equal(got, want) {
					t.Fatalf("read key %d at gen %d = %x, oracle says %x", kb%numKeys, gen, got, want)
				}
			case 2: // advance the watermark
				gb, ok1 := next()
				if !ok1 {
					break
				}
				st.SetWatermark(st.Watermark() + uint64(gb%3))
				if st.Watermark() > st.Gen() {
					t.Fatalf("watermark %d ran past gen %d", st.Watermark(), st.Gen())
				}
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("after gc: %v", err)
				}
			case 3: // prefetch a key, then verify a read still agrees
				kb, ok1 := next()
				if !ok1 {
					break
				}
				k := key(kb % numKeys)
				if err := st.Prefetch(k); err != nil {
					t.Fatalf("prefetch: %v", err)
				}
				gen := st.Gen()
				got, err := st.View(gen).Get(k)
				if err != nil {
					t.Fatalf("post-prefetch read: %v", err)
				}
				if want := history[gen][k]; !bytes.Equal(got, want) {
					t.Fatalf("post-prefetch read key %d = %x, oracle says %x", kb%numKeys, got, want)
				}
			}
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
