// Package mvcc is the multi-version state core: per-key version chains in
// front of the authenticated trie, so that execution, commitment, and the
// next epoch's read-set prefetch share one copy-free structure instead of
// each epoch duplicating the state into a fresh snapshot (the Octopus-style
// store ROADMAP item 1 calls for).
//
// # Layout
//
// The store shards keys sixteen ways (same discipline as the statedb
// snapshot and the commit overlay). Each key maps to a chain:
//
//	base     copy-on-read cache of the backend (trie) value, valid for
//	         every generation up to the chain's oldest version
//	versions ascending list of {generation, global version id, value}
//
// Generations count backend commits (one per statedb.Commit); every
// committed write receives a fresh global version id from one atomic
// counter, so the total write order is recoverable across keys. A View
// pins a generation g and resolves each key to the newest version with
// generation <= g, falling back to base — a copy-free read of the state
// as of generation g.
//
// # Why reads stay consistent during a concurrent commit
//
// Two rules close every race between a reader at generation g and the
// commit building generation g+1:
//
//  1. CommitEpoch appends the new versions (and eagerly loads base for any
//     written chain that lacks it, while the backend still holds the old
//     value) BEFORE the trie flush mutates the backend. A chain therefore
//     never has versions without a loaded base (invariant checked by
//     tests), and by the time the backend can return a g+1 value the chain
//     already shadows it for every reader.
//  2. A chain with no versions has had a constant value over the whole
//     live window [watermark, current generation] — any change inside the
//     window would have left a version (GC folds, it never erases history
//     above the watermark). So a backend load for a version-less chain is
//     correct for every live view no matter which root it observes, and
//     the copy-on-read step re-checks the chain under the shard lock
//     before caching: if versions appeared meanwhile, the freshly loaded
//     value is discarded in favour of the chain.
//
// Epoch-scoped write reservations (ReserveEpoch/ReleaseEpoch) mark the
// keys a commit is about to write. They are a cheap go-away signal for
// the background prefetcher — loading a reserved key would be wasted work,
// its chain is about to be warmed by CommitEpoch itself — and a defensive
// guard on the copy-on-read path, which refuses to cache a reserved key.
//
// # Garbage collection
//
// SetWatermark(w) declares that no live view reads below generation w
// (the node advances w to the generation of its last persisted epoch).
// GC then FOLDS each chain: the newest version at or below w becomes the
// new base and every version at or below w is dropped. Folding — rather
// than dropping — is what keeps rule 2 honest: a later read between w and
// a surviving version still sees the folded value. Reads below the
// watermark return ErrBelowWatermark.
package mvcc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/nezha-dag/nezha/internal/types"
)

// ErrBelowWatermark is returned by View.Get when the view's generation has
// been garbage-collected: the store no longer guarantees reads below the
// watermark.
var ErrBelowWatermark = errors.New("mvcc: view generation below gc watermark")

// Loader resolves a key against the backing store (the state trie).
// Missing keys return (nil, nil), matching the trie's read contract.
type Loader func(k types.Key) ([]byte, error)

// numShards matches the statedb snapshot and commit overlay sharding.
const numShards = 16

// DepthBuckets are the chain-depth histogram bounds GC records into
// (Stats.DepthBuckets counts chains with depth <=1, <=2, <=4, <=8, <=16,
// and a final overflow bucket).
var DepthBuckets = []float64{1, 2, 4, 8, 16}

// numDepthBuckets is len(DepthBuckets) plus the overflow bucket.
const numDepthBuckets = 6

// Stats is a point-in-time snapshot of the store's counters. All fields
// are cumulative; callers exporting to a metrics registry diff against the
// previous snapshot.
type Stats struct {
	// Hits counts reads served from a chain (version or loaded base).
	Hits uint64
	// Misses counts reads that had to fall through to the backend.
	Misses uint64
	// Prefetched counts keys the prefetcher pulled cold into the cache.
	Prefetched uint64
	// PrefetchHits counts prefetched keys a later read actually used.
	PrefetchHits uint64
	// PrefetchSkipped counts prefetch requests dropped because the key
	// was already warm or reserved by an in-flight commit.
	PrefetchSkipped uint64
	// GCVersions counts versions dropped (folded) by SetWatermark.
	GCVersions uint64
	// DepthBuckets histograms chain depth (version count) observed at GC
	// time; bounds are DepthBuckets plus a final overflow bucket.
	DepthBuckets [numDepthBuckets]uint64
	// Chains is the number of live chains (cache entries).
	Chains uint64
	// Versions is the number of live versions across all chains.
	Versions uint64
}

// version is one committed value of a key.
type version struct {
	gen uint64 // backend generation the value became visible at
	gv  uint64 // global version id (total write order across keys)
	val []byte
}

// chain is the version history plus copy-on-read base cache of one key.
type chain struct {
	versions   []version // ascending by gen
	base       []byte
	baseLoaded bool
	// prefetched marks a base the prefetcher loaded; the first read
	// through it clears the mark and counts a prefetch hit.
	prefetched bool
}

// shard is one lock domain of the store.
type shard struct {
	mu       sync.RWMutex
	chains   map[types.Key]*chain
	reserved map[types.Key]struct{}
}

// Store is the multi-version state core. Safe for concurrent use; the
// single-writer discipline of the commit phase (one CommitEpoch at a time,
// bracketed by ReserveEpoch/ReleaseEpoch) is the caller's responsibility,
// exactly as it is for statedb.Commit.
type Store struct {
	load Loader

	gen       atomic.Uint64 // latest committed generation
	nextGV    atomic.Uint64 // global version id allocator
	watermark atomic.Uint64

	hits            atomic.Uint64
	misses          atomic.Uint64
	prefetched      atomic.Uint64
	prefetchHits    atomic.Uint64
	prefetchSkipped atomic.Uint64
	gcVersions      atomic.Uint64
	depthBuckets    [numDepthBuckets]atomic.Uint64

	shards [numShards]shard
}

// New returns a store over the given backend loader, pinned at generation
// gen (the number of backend commits already applied).
func New(gen uint64, load Loader) *Store {
	st := &Store{load: load}
	st.gen.Store(gen)
	st.watermark.Store(gen)
	for i := range st.shards {
		st.shards[i].chains = make(map[types.Key]*chain)
		st.shards[i].reserved = make(map[types.Key]struct{})
	}
	return st
}

func (st *Store) shardOf(k types.Key) *shard { return &st.shards[k[0]&(numShards-1)] }

// Gen returns the latest committed generation.
func (st *Store) Gen() uint64 { return st.gen.Load() }

// Watermark returns the GC watermark: the lowest generation views may read.
func (st *Store) Watermark() uint64 { return st.watermark.Load() }

// View returns a copy-free reader pinned at generation gen. The caller
// must not read the view once the watermark has advanced past gen.
func (st *Store) View(gen uint64) *View { return &View{st: st, gen: gen} }

// Head returns a view pinned at the latest committed generation.
func (st *Store) Head() *View { return st.View(st.Gen()) }

// View reads the state as of one generation. Safe for concurrent use and
// for use concurrently with a commit building a later generation (see the
// package comment for why). Implements vm.StateReader.
type View struct {
	st  *Store
	gen uint64
}

// Gen returns the generation the view is pinned at.
func (v *View) Gen() uint64 { return v.gen }

// Get resolves a key as of the view's generation.
func (v *View) Get(k types.Key) ([]byte, error) {
	if w := v.st.watermark.Load(); v.gen < w {
		return nil, fmt.Errorf("%w: view at %d, watermark %d", ErrBelowWatermark, v.gen, w)
	}
	return v.st.readAt(k, v.gen)
}

// readAt is the shared read path: chain lookup, then copy-on-read backend
// load for version-less chains.
func (st *Store) readAt(k types.Key, gen uint64) ([]byte, error) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	c := sh.chains[k]
	if val, ok, upgrade := c.resolve(gen); ok {
		if upgrade {
			// Re-take the lock exclusively to clear the prefetch mark;
			// rare (first touch of a prefetched key only).
			sh.mu.RUnlock()
			sh.mu.Lock()
			if c.prefetched {
				c.prefetched = false
				st.prefetchHits.Add(1)
			}
			sh.mu.Unlock()
		} else {
			sh.mu.RUnlock()
		}
		st.hits.Add(1)
		return val, nil
	}
	sh.mu.RUnlock()

	// Miss: load from the backend outside the lock, then re-check the
	// chain before caching (rule 2 of the package comment).
	st.misses.Add(1)
	val, err := st.load(k)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c = sh.chains[k]
	if cached, ok, _ := c.resolve(gen); ok {
		// A commit or a racing reader populated the chain meanwhile; its
		// value is authoritative (ours may straddle the flush).
		if c.prefetched {
			c.prefetched = false
			st.prefetchHits.Add(1)
		}
		return cached, nil
	}
	if _, res := sh.reserved[k]; res {
		// The key is about to be written by the in-flight commit; serve
		// the loaded value (still pre-flush: its version would otherwise
		// be in the chain already) but do not cache it.
		return val, nil
	}
	if c == nil {
		c = &chain{}
		sh.chains[k] = c
	}
	c.base = val
	c.baseLoaded = true
	return val, nil
}

// resolve returns the chain's value at generation gen, whether the chain
// could answer, and whether the answer came from a prefetched base (the
// caller then upgrades the lock to clear the mark). Nil-receiver safe.
func (c *chain) resolve(gen uint64) (val []byte, ok, prefetchHit bool) {
	if c == nil {
		return nil, false, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].gen <= gen {
			return c.versions[i].val, true, false
		}
	}
	if c.baseLoaded {
		return c.base, true, c.prefetched
	}
	return nil, false, false
}

// ReserveEpoch marks the keys the next CommitEpoch will write. Prefetch
// requests for reserved keys are dropped and the copy-on-read path will
// not cache them. Call ReleaseEpoch after the backend flush completes.
func (st *Store) ReserveEpoch(keys []types.Key) {
	for _, k := range keys {
		sh := st.shardOf(k)
		sh.mu.Lock()
		sh.reserved[k] = struct{}{}
		sh.mu.Unlock()
	}
}

// ReleaseEpoch clears every reservation.
func (st *Store) ReleaseEpoch() {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		clear(sh.reserved)
		sh.mu.Unlock()
	}
}

// CommitEpoch makes one backend commit's writes visible as a new
// generation and returns it. It MUST run before the backend flush mutates
// the trie, with load still resolving pre-flush values (statedb passes a
// trie reader it already holds the commit lock for): any written chain
// without a loaded base gets one here, while the old value is still
// readable, preserving the versions-imply-base invariant. Writes may list
// a key at most once (the commit overlay guarantees that).
func (st *Store) CommitEpoch(writes []types.WriteEntry, load Loader) (uint64, error) {
	if load == nil {
		load = st.load
	}
	gen := st.gen.Load() + 1
	for i, w := range writes {
		sh := st.shardOf(w.Key)
		sh.mu.Lock()
		c := sh.chains[w.Key]
		if c == nil {
			c = &chain{}
			sh.chains[w.Key] = c
		}
		if !c.baseLoaded && len(c.versions) == 0 {
			sh.mu.Unlock()
			old, err := load(w.Key)
			if err != nil {
				st.dropVersionsAt(gen, writes[:i])
				return 0, fmt.Errorf("mvcc: commit base load: %w", err)
			}
			sh.mu.Lock()
			// Single-writer commit discipline: nothing else appends
			// versions, so the chain is still version-less; a racing
			// reader may have loaded the same (old) base, which is
			// idempotent.
			c.base = old
			c.baseLoaded = true
		}
		c.versions = append(c.versions, version{gen: gen, gv: st.nextGV.Add(1), val: w.Value})
		sh.mu.Unlock()
	}
	st.gen.Store(gen)
	return gen, nil
}

// RollbackEpoch undoes the latest CommitEpoch after the backend flush
// FAILED: the appended versions never reached the trie, and a retried
// epoch must not observe them. Only valid immediately after a successful
// CommitEpoch whose flush did not land — the commit lock the caller holds
// guarantees no view was created at the rolled-back generation (View
// blocks on the same lock), so nothing can have read the versions.
func (st *Store) RollbackEpoch(writes []types.WriteEntry) {
	gen := st.gen.Load()
	st.dropVersionsAt(gen, writes)
	st.gen.Store(gen - 1)
}

// dropVersionsAt removes each listed key's trailing version if it sits at
// exactly the given generation (the failed commit's appends).
func (st *Store) dropVersionsAt(gen uint64, writes []types.WriteEntry) {
	for _, w := range writes {
		sh := st.shardOf(w.Key)
		sh.mu.Lock()
		if c := sh.chains[w.Key]; c != nil && len(c.versions) > 0 {
			if last := len(c.versions) - 1; c.versions[last].gen == gen {
				c.versions = c.versions[:last]
			}
		}
		sh.mu.Unlock()
	}
}

// Prefetch pulls a cold key's value into the cache so the next epoch's
// execution finds it warm. Keys already chained or reserved by the
// in-flight commit are skipped. Safe to run concurrently with CommitEpoch
// and the backend flush.
func (st *Store) Prefetch(k types.Key) error {
	sh := st.shardOf(k)
	sh.mu.RLock()
	_, reserved := sh.reserved[k]
	c := sh.chains[k]
	warm := c != nil && (c.baseLoaded || len(c.versions) > 0)
	sh.mu.RUnlock()
	if warm || reserved {
		st.prefetchSkipped.Add(1)
		return nil
	}
	val, err := st.load(k)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c = sh.chains[k]
	if _, res := sh.reserved[k]; res || (c != nil && (c.baseLoaded || len(c.versions) > 0)) {
		st.prefetchSkipped.Add(1)
		return nil
	}
	if c == nil {
		c = &chain{}
		sh.chains[k] = c
	}
	c.base = val
	c.baseLoaded = true
	c.prefetched = true
	st.prefetched.Add(1)
	return nil
}

// SetWatermark advances the GC watermark to w and folds every chain:
// the newest version at or below w becomes the chain's base and versions
// at or below w are dropped. Lowering the watermark is a no-op, and w is
// clamped to the current generation (a watermark above every committed
// generation would invalidate even the head view). Returns the number of
// versions collected.
func (st *Store) SetWatermark(w uint64) int {
	if g := st.gen.Load(); w > g {
		w = g
	}
	for {
		cur := st.watermark.Load()
		if w <= cur {
			return 0
		}
		if st.watermark.CompareAndSwap(cur, w) {
			break
		}
	}
	collected := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, c := range sh.chains { //nezha:nondeterminism-ok fold is per-chain and commutative; only the commutative collected count crosses chains
			st.observeDepth(len(c.versions))
			cut := 0
			for cut < len(c.versions) && c.versions[cut].gen <= w {
				cut++
			}
			if cut == 0 {
				continue
			}
			c.base = c.versions[cut-1].val
			c.baseLoaded = true
			c.prefetched = false
			c.versions = append(c.versions[:0], c.versions[cut:]...)
			collected += cut
		}
		sh.mu.Unlock()
	}
	st.gcVersions.Add(uint64(collected))
	return collected
}

// observeDepth records one chain's version count into the depth histogram.
func (st *Store) observeDepth(depth int) {
	for i, bound := range DepthBuckets {
		if float64(depth) <= bound {
			st.depthBuckets[i].Add(1)
			return
		}
	}
	st.depthBuckets[numDepthBuckets-1].Add(1)
}

// Stats snapshots the store's counters.
func (st *Store) Stats() Stats {
	s := Stats{
		Hits:            st.hits.Load(),
		Misses:          st.misses.Load(),
		Prefetched:      st.prefetched.Load(),
		PrefetchHits:    st.prefetchHits.Load(),
		PrefetchSkipped: st.prefetchSkipped.Load(),
		GCVersions:      st.gcVersions.Load(),
	}
	for i := range st.depthBuckets {
		s.DepthBuckets[i] = st.depthBuckets[i].Load()
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		s.Chains += uint64(len(sh.chains))
		for _, c := range sh.chains { //nezha:nondeterminism-ok summing version counts is commutative
			s.Versions += uint64(len(c.versions))
		}
		sh.mu.RUnlock()
	}
	return s
}

// CheckInvariants walks every chain and verifies the structural rules the
// read path relies on: versions strictly ascending in generation, global
// version ids strictly ascending within a chain, no version at or below
// the watermark, and versions-imply-base. Tests and the fuzz target call
// it; it is not on any hot path.
func (st *Store) CheckInvariants() error {
	w := st.watermark.Load()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		keys := make([]types.Key, 0, len(sh.chains))
		for k := range sh.chains {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a].Less(keys[b]) })
		for _, k := range keys {
			c := sh.chains[k]
			if len(c.versions) > 0 && !c.baseLoaded {
				sh.mu.RUnlock()
				return fmt.Errorf("mvcc: key %x has versions but no base", k[:4])
			}
			for j, v := range c.versions {
				if v.gen <= w {
					sh.mu.RUnlock()
					return fmt.Errorf("mvcc: key %x holds version at gen %d <= watermark %d", k[:4], v.gen, w)
				}
				if j > 0 && (v.gen <= c.versions[j-1].gen || v.gv <= c.versions[j-1].gv) {
					sh.mu.RUnlock()
					return fmt.Errorf("mvcc: key %x versions not ascending at index %d", k[:4], j)
				}
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}
