package journal

// Kind identifies a journal event type. Kinds are named "<area>/<event>"
// in lower-case (hyphens inside a segment), and every kind emitted
// anywhere in the tree must be one of the constants below: nezha-vet's
// journalhygiene analyzer (internal/lint/journalhygiene) rejects Emit
// calls whose kind is not a registered constant, duplicate registrations,
// and Kind constants declared outside this file. The inventory doubles as
// the reviewable surface of "what the flight recorder can see".
type Kind string

// The registry. One constant per event type, grouped by the layer that
// emits it. Add new kinds here first; the vet suite fails the build
// otherwise.
//
// Kinds marked deterministic (see deterministicKinds below) carry only
// replica-deterministic payloads: two honest nodes processing the same
// epoch must emit byte-identical events for them, which is what lets
// Diff align journals across nodes. Everything else is context — timing,
// sync traffic, MVCC generations — that explains a divergence but cannot
// itself be compared across replicas.
const (
	// node: epoch pipeline outcomes (internal/node).
	NodeEpochCommit   Kind = "node/epoch-commit"   // epoch finalized: root fold, committed, aborted, txs
	NodeBlockDiscard  Kind = "node/block-discard"  // validation dropped a block: hash fold
	NodeEpochAssembly Kind = "node/epoch-assembly" // epoch composition feeding the scheduler: blocks, txs, block/tx-order digests
	NodeRecoveryAudit Kind = "node/recovery-audit" // post-restore self-audit passed: epochs, folded re-derived assembly digests, root fold
	NodeStageDone     Kind = "node/stage-done"     // one pipeline stage finished: stage name, tasks

	// sched: concurrency-control phase outputs (emitted by the node's
	// schedule stage — the scheduler itself is determinism-critical code
	// the observer must stay out of).
	SchedGroups Kind = "sched/groups" // commit-group layout: count, rescued, first/last-tx digest

	// sync: the self-healing block syncer's state machine (internal/node).
	SyncRequest  Kind = "sync/request"  // MsgGetBlocks sent: peer, from-height, resync flag
	SyncResponse Kind = "sync/response" // MsgBlocks ingested: peer, accepted, more flag
	SyncTimeout  Kind = "sync/timeout"  // outstanding request hit its deadline: peer
	SyncDemote   Kind = "sync/demote"   // peer demoted after consecutive failures
	SyncResync   Kind = "sync/resync"   // full resync from height 0 armed

	// state: the MVCC epoch protocol, observed at the statedb call sites
	// (internal/mvcc is determinism-critical; internal/statedb is not).
	StateReserve   Kind = "state/reserve"   // commit reserved its write keys: count
	StateCommit    Kind = "state/commit"    // trie flush done: writes, root fold
	StateRollback  Kind = "state/rollback"  // failed flush unwound staged versions
	StateWatermark Kind = "state/watermark" // GC watermark advanced: folded versions

	// chaos: fault arming and lifecycle, written into the target node's
	// journal by the harness (internal/chaos).
	ChaosFault   Kind = "chaos/fault"   // a fault armed against this node: kind, site
	ChaosKill    Kind = "chaos/kill"    // the harness killed this node
	ChaosRestart Kind = "chaos/restart" // this node restarted from disk
)

// deterministicKinds marks the kinds whose payloads must be identical on
// every honest replica for the same epoch — the alignment keys Diff uses.
// A kind is only promoted here when every field it carries derives from
// the epoch's content, never from timing, peer choice, or local restart
// history (MVCC generations reset on restart, so state/* stays out, and
// node/recovery-audit stays out because only nodes that restarted emit it).
var deterministicKinds = map[Kind]bool{
	NodeEpochCommit:   true,
	NodeBlockDiscard:  true,
	NodeEpochAssembly: true,
	SchedGroups:       true,
}

// Deterministic reports whether a kind's payload is replica-deterministic.
func Deterministic(k Kind) bool { return deterministicKinds[k] }
