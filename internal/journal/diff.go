package journal

// Cross-node divergence forensics: align two nodes' journals on their
// deterministic events — keyed by (epoch, kind), the coordinates every
// honest replica must agree on — and report the first place they do not.
//
// Only kinds marked Deterministic participate in alignment: their
// payloads derive purely from epoch content, so a payload mismatch IS
// the divergence (or its earliest visible symptom). Everything else in
// the journals — sync traffic, stage timings, MVCC generations, fault
// arming — is kept as surrounding context in the report, because it
// explains how the nodes got to the diverging event.
//
// Two extra signals fall out of the same pass:
//
//   - Self-inconsistency: a node that crashed before persisting an epoch
//     re-processes it after restart, so one journal can carry the same
//     (epoch, kind) twice. Determinism says both occurrences must carry
//     identical payloads; if they differ, the node disagreed with ITSELF
//     across a replay — a stronger localization than any cross-node diff.
//   - Truncation: epochs past the shorter journal's horizon are noted,
//     not reported as divergence — a node that is merely behind has not
//     diverged.

import (
	"fmt"
	"sort"
	"strings"
)

// diffKey is the alignment coordinate.
type diffKey struct {
	Epoch uint64
	Kind  Kind
}

// kindOrder fixes a canonical order for kinds sharing an epoch, so "first
// divergence" is well-defined. Pipeline order: discards happen during
// validation, the surviving composition is assembled next, the group
// layout during scheduling, the commit last.
var kindOrder = map[Kind]int{
	NodeBlockDiscard:  0,
	NodeEpochAssembly: 1,
	SchedGroups:       2,
	NodeEpochCommit:   3,
}

func keyLess(a, b diffKey) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	return kindOrder[a.Kind] < kindOrder[b.Kind]
}

// Divergence is one diff verdict: the earliest aligned coordinate where
// the two journals disagree, with surrounding context from each side.
type Divergence struct {
	ANode, BNode string
	Epoch        uint64
	Kind         Kind
	// A and B are the mismatched events; one is nil when the coordinate
	// is missing on that side. For a self-inconsistency both come from
	// the same node (ANode == BNode): the two occurrences that disagree.
	A, B *Event
	// Reason classifies the mismatch: "payload mismatch", "missing on
	// <node>", or "self-inconsistent on <node>".
	Reason string
	// ContextA/ContextB are the events (all kinds) surrounding the
	// mismatch in each node's journal, for the causal read-back.
	ContextA, ContextB []Event
	// Truncated notes the horizon difference when one journal ends at an
	// earlier epoch ("" when both cover the same epochs).
	Truncated string
}

// side is one journal's deterministic index.
type side struct {
	node string
	all  []Event // full journal, Seq order
	last map[diffKey]Event
	// selfBad is the earliest key whose repeated occurrences disagree.
	selfBad   *diffKey
	selfA     Event
	selfB     Event
	maxEpoch  uint64
	hasEvents bool
}

// indexSide builds one journal's deterministic index.
func indexSide(events []Event) *side {
	s := &side{
		all:  append([]Event(nil), events...),
		last: make(map[diffKey]Event),
	}
	sort.SliceStable(s.all, func(i, j int) bool { return s.all[i].Seq < s.all[j].Seq })
	for _, e := range s.all {
		if s.node == "" {
			s.node = e.Node
		}
		if !Deterministic(e.Kind) {
			continue
		}
		s.hasEvents = true
		if e.Epoch > s.maxEpoch {
			s.maxEpoch = e.Epoch
		}
		k := diffKey{Epoch: e.Epoch, Kind: e.Kind}
		if prev, seen := s.last[k]; seen && !prev.PayloadEqual(e) {
			if s.selfBad == nil || keyLess(k, *s.selfBad) {
				kk := k
				s.selfBad, s.selfA, s.selfB = &kk, prev, e
			}
		}
		s.last[k] = e
	}
	return s
}

// context returns up to n events on each side of the event with sequence
// seq in the journal's Seq order (the event itself included).
func (s *side) context(seq uint64, n int) []Event {
	i := sort.Search(len(s.all), func(i int) bool { return s.all[i].Seq >= seq })
	lo, hi := i-n, i+n+1
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.all) {
		hi = len(s.all)
	}
	return s.all[lo:hi]
}

// DefaultContext is how many surrounding events Diff attaches per side.
const DefaultContext = 6

// Diff aligns two journals and returns the first divergence, or nil when
// every aligned deterministic event matches (a node that is merely
// behind — shorter horizon — does not diverge).
func Diff(a, b []Event) *Divergence {
	return DiffContext(a, b, DefaultContext)
}

// DiffContext is Diff with an explicit context width.
func DiffContext(a, b []Event, contextN int) *Divergence {
	sa, sb := indexSide(a), indexSide(b)
	if sa.node == "" {
		sa.node = "a"
	}
	if sb.node == "" {
		sb.node = "b"
	}

	// Comparison horizon: epochs both journals reached. Beyond it the
	// shorter journal is truncated, not divergent.
	horizon := sa.maxEpoch
	truncated := ""
	if sb.maxEpoch < horizon {
		horizon = sb.maxEpoch
	}
	if sa.maxEpoch != sb.maxEpoch {
		short, shortMax, longMax := sb.node, sb.maxEpoch, sa.maxEpoch
		if sa.maxEpoch < sb.maxEpoch {
			short, shortMax, longMax = sa.node, sa.maxEpoch, sb.maxEpoch
		}
		truncated = fmt.Sprintf("%s's journal ends at epoch %d (peer reaches %d); epochs beyond %d not compared",
			short, shortMax, longMax, horizon)
	}

	keys := make([]diffKey, 0, len(sa.last)+len(sb.last))
	seen := make(map[diffKey]bool, len(sa.last)+len(sb.last))
	for k := range sa.last {
		if k.Epoch <= horizon && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range sb.last {
		if k.Epoch <= horizon && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	var cross *Divergence
	for _, k := range keys {
		ea, okA := sa.last[k]
		eb, okB := sb.last[k]
		switch {
		case okA && okB:
			if ea.PayloadEqual(eb) {
				continue
			}
			cross = &Divergence{
				ANode: sa.node, BNode: sb.node, Epoch: k.Epoch, Kind: k.Kind,
				A: &ea, B: &eb, Reason: "payload mismatch",
			}
		case okA:
			cross = &Divergence{
				ANode: sa.node, BNode: sb.node, Epoch: k.Epoch, Kind: k.Kind,
				A: &ea, Reason: fmt.Sprintf("missing on %s", sb.node),
			}
		default:
			cross = &Divergence{
				ANode: sa.node, BNode: sb.node, Epoch: k.Epoch, Kind: k.Kind,
				B: &eb, Reason: fmt.Sprintf("missing on %s", sa.node),
			}
		}
		break
	}

	// A self-inconsistency at or before the cross divergence is the
	// sharper finding: the node contradicted itself across a replay.
	d := cross
	for _, s := range []*side{sa, sb} {
		if s.selfBad == nil || s.selfBad.Epoch > horizon {
			continue
		}
		if d == nil || !keyLess(diffKey{Epoch: d.Epoch, Kind: d.Kind}, *s.selfBad) {
			a1, b1 := s.selfA, s.selfB
			d = &Divergence{
				ANode: s.node, BNode: s.node, Epoch: s.selfBad.Epoch, Kind: s.selfBad.Kind,
				A: &a1, B: &b1, Reason: fmt.Sprintf("self-inconsistent on %s", s.node),
			}
		}
	}
	if d == nil {
		// Identical as far as both journals go: a shorter horizon alone
		// (a node merely behind) is not a divergence.
		return nil
	}
	d.Truncated = truncated
	if d.ANode == d.BNode {
		// Self-inconsistency: both contexts come from the one journal.
		s := sa
		if s.node != d.ANode {
			s = sb
		}
		if d.A != nil {
			d.ContextA = s.context(d.A.Seq, contextN)
		}
		if d.B != nil {
			d.ContextB = s.context(d.B.Seq, contextN)
		}
		return d
	}
	if d.A != nil {
		d.ContextA = sa.context(d.A.Seq, contextN)
	}
	if d.B != nil {
		d.ContextB = sb.context(d.B.Seq, contextN)
	}
	return d
}

// String renders the divergence report: the verdict line, the two
// mismatched events, and the surrounding context from each journal.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "first divergence at epoch %d, kind %s (%s)\n", d.Epoch, d.Kind, d.Reason)
	if d.Truncated != "" {
		fmt.Fprintf(&b, "note: %s\n", d.Truncated)
	}
	writeSide := func(label string, e *Event, ctx []Event) {
		if e == nil {
			fmt.Fprintf(&b, "  %s: (no event)\n", label)
			return
		}
		fmt.Fprintf(&b, "  %s: %s\n", label, e.String())
		if len(ctx) == 0 {
			return
		}
		fmt.Fprintf(&b, "  context (%s):\n", label)
		for _, c := range ctx {
			marker := "   "
			if c.Seq == e.Seq && c.Kind == e.Kind {
				marker = " > "
			}
			fmt.Fprintf(&b, "  %s%s\n", marker, c.String())
		}
	}
	aLabel, bLabel := d.ANode, d.BNode
	if d.ANode == d.BNode {
		aLabel, bLabel = d.ANode+" (first)", d.BNode+" (replay)"
	}
	writeSide(aLabel, d.A, d.ContextA)
	writeSide(bLabel, d.B, d.ContextB)
	return b.String()
}
