package journal

import (
	"strings"
	"testing"
)

// mkJournal builds a synthetic per-node journal: for each epoch a
// schedule event, a commit event, and some non-deterministic context
// (sync traffic), with sequence numbers in emit order.
func mkJournal(node string, epochs int, mutate func(e *Event)) []Event {
	var out []Event
	seq := uint64(0)
	emit := func(kind Kind, epoch uint64, fields ...Field) {
		e := Event{Seq: seq, Wall: int64(seq), LC: seq, Node: node, Kind: kind, Epoch: epoch}
		e.NumFields = uint8(copy(e.Fields[:], fields))
		if mutate != nil {
			mutate(&e)
		}
		out = append(out, e)
		seq++
	}
	for ep := uint64(1); ep <= uint64(epochs); ep++ {
		emit(SyncRequest, ep, FS("peer", "nX"))
		emit(SchedGroups, ep, F("groups", 3+ep%2), F("digest", ep*101))
		emit(StateCommit, ep, F("writes", 12))
		emit(NodeEpochCommit, ep, F("root", ep*0x1000), F("committed", 40))
	}
	return out
}

func TestDiffIdenticalJournals(t *testing.T) {
	a := mkJournal("n0", 6, nil)
	b := mkJournal("n1", 6, nil)
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical journals diverged: %s", d.String())
	}
}

// TestDiffPinpointsPlantedDivergence is the meta-test for the forensics
// path: plant a single differing event deep in one journal and require
// the diff to name exactly that coordinate.
func TestDiffPinpointsPlantedDivergence(t *testing.T) {
	a := mkJournal("n0", 8, nil)
	b := mkJournal("n1", 8, func(e *Event) {
		if e.Kind == NodeEpochCommit && e.Epoch == 5 {
			e.Fields[0].Val ^= 1 // one bit of one root in one epoch
		}
	})
	d := Diff(a, b)
	if d == nil {
		t.Fatal("planted divergence not found")
	}
	if d.Epoch != 5 || d.Kind != NodeEpochCommit {
		t.Fatalf("divergence at (epoch %d, %s), want (5, %s)", d.Epoch, d.Kind, NodeEpochCommit)
	}
	if d.Reason != "payload mismatch" {
		t.Fatalf("reason %q, want payload mismatch", d.Reason)
	}
	if d.A == nil || d.B == nil || d.A.Fields[0].Val == d.B.Fields[0].Val {
		t.Fatal("divergence does not carry the two mismatched events")
	}
	if len(d.ContextA) == 0 || len(d.ContextB) == 0 {
		t.Fatal("divergence carries no surrounding context")
	}
	rep := d.String()
	for _, want := range []string{"epoch 5", "node/epoch-commit", "payload mismatch", "n0", "n1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestDiffEarliestDivergenceWins(t *testing.T) {
	a := mkJournal("n0", 8, nil)
	b := mkJournal("n1", 8, func(e *Event) {
		// Two plants: the schedule split at epoch 3 must outrank the root
		// mismatch at epoch 6 — and within one epoch, pipeline order ranks
		// SchedGroups before NodeEpochCommit.
		if e.Kind == SchedGroups && e.Epoch == 3 {
			e.Fields[1].Val++
		}
		if e.Kind == NodeEpochCommit && (e.Epoch == 3 || e.Epoch == 6) {
			e.Fields[0].Val ^= 1
		}
	})
	d := Diff(a, b)
	if d == nil {
		t.Fatal("divergence not found")
	}
	if d.Epoch != 3 || d.Kind != SchedGroups {
		t.Fatalf("first divergence at (epoch %d, %s), want (3, %s)", d.Epoch, d.Kind, SchedGroups)
	}
}

func TestDiffMissingEvent(t *testing.T) {
	a := mkJournal("n0", 6, nil)
	var b []Event
	for _, e := range mkJournal("n1", 6, nil) {
		if e.Kind == NodeEpochCommit && e.Epoch == 4 {
			continue // n1 never committed epoch 4 but kept going
		}
		b = append(b, e)
	}
	d := Diff(a, b)
	if d == nil {
		t.Fatal("missing event not reported")
	}
	if d.Epoch != 4 || d.Kind != NodeEpochCommit || !strings.Contains(d.Reason, "missing on n1") {
		t.Fatalf("got (epoch %d, %s, %q), want epoch 4 commit missing on n1", d.Epoch, d.Kind, d.Reason)
	}
}

func TestDiffLaggingNodeIsNotDivergent(t *testing.T) {
	a := mkJournal("n0", 8, nil)
	b := mkJournal("n1", 5, nil) // merely behind
	if d := Diff(a, b); d != nil {
		t.Fatalf("lagging journal reported as divergence: %s", d.String())
	}
	// But a real mismatch inside the shared horizon still reports, with
	// the truncation noted.
	b[len(b)-1].Fields[0].Val ^= 1
	d := Diff(a, b)
	if d == nil {
		t.Fatal("mismatch within horizon not found")
	}
	if d.Epoch != 5 || d.Truncated == "" || !strings.Contains(d.Truncated, "ends at epoch 5") {
		t.Fatalf("got epoch %d truncated %q, want epoch 5 with truncation note", d.Epoch, d.Truncated)
	}
}

func TestDiffSelfInconsistency(t *testing.T) {
	// n0 crashed after epoch 3 and re-processed it on restart with a
	// different result: the same (epoch, kind) appears twice in ONE
	// journal with different payloads. That outranks the cross-node
	// mismatch it causes at the same coordinate.
	a := mkJournal("n0", 6, nil)
	replay := Event{Seq: uint64(len(a)), Node: "n0", Kind: NodeEpochCommit, Epoch: 3}
	replay.NumFields = uint8(copy(replay.Fields[:], []Field{F("root", 0x3000^1), F("committed", 40)}))
	a = append(a, replay)
	b := mkJournal("n1", 6, nil)
	d := Diff(a, b)
	if d == nil {
		t.Fatal("self-inconsistency not found")
	}
	if !strings.Contains(d.Reason, "self-inconsistent on n0") {
		t.Fatalf("reason %q, want self-inconsistent on n0", d.Reason)
	}
	if d.ANode != "n0" || d.BNode != "n0" || d.Epoch != 3 {
		t.Fatalf("got %s/%s epoch %d, want both sides n0 at epoch 3", d.ANode, d.BNode, d.Epoch)
	}
	if !strings.Contains(d.String(), "(replay)") {
		t.Errorf("report does not label the replayed occurrence:\n%s", d.String())
	}
}
