package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs a test body with recording on, restoring the previous
// state after (the gate is process-global).
func withEnabled(t *testing.T, fn func()) {
	t.Helper()
	prev := Enabled()
	Enable()
	defer func() {
		if !prev {
			Disable()
		}
	}()
	fn()
}

func TestRingWrapAround(t *testing.T) {
	withEnabled(t, func() {
		r := newRecorder("wrap", 8)
		for i := 0; i < 20; i++ {
			r.Emit(NodeEpochCommit, uint64(i), F("root", uint64(i)*10))
		}
		if got := r.Len(); got != 8 {
			t.Fatalf("Len() = %d, want ring capacity 8", got)
		}
		evs := r.Snapshot()
		if len(evs) != 8 {
			t.Fatalf("Snapshot returned %d events, want 8", len(evs))
		}
		// Oldest retained event is emit 12 (20 emits into an 8-slot ring);
		// sequences must be contiguous and payloads must match their seq.
		for i, e := range evs {
			wantSeq := uint64(12 + i)
			if e.Seq != wantSeq {
				t.Errorf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
			}
			if e.Epoch != wantSeq || e.Fields[0].Val != wantSeq*10 {
				t.Errorf("event %d: epoch %d root %d, want %d/%d (torn slot?)",
					i, e.Epoch, e.Fields[0].Val, wantSeq, wantSeq*10)
			}
		}
	})
}

func TestConcurrentEmitters(t *testing.T) {
	withEnabled(t, func() {
		r := newRecorder("conc", 64)
		const workers, perWorker = 4, 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					e := uint64(w*perWorker + i)
					r.Emit(SchedGroups, e, F("groups", e), F("digest", e*7))
				}
			}(w)
		}
		wg.Wait()
		if got := r.seq.Load(); got != workers*perWorker {
			t.Fatalf("reserved %d sequences, want %d", got, workers*perWorker)
		}
		// Every snapshotted event must be internally consistent: the slot
		// mutex means fields always belong to the epoch they were emitted
		// with, even when emitters raced on neighboring slots.
		for _, e := range r.Snapshot() {
			if e.Fields[0].Val != e.Epoch || e.Fields[1].Val != e.Epoch*7 {
				t.Fatalf("torn event: %s", e.String())
			}
		}
	})
}

func TestSnapshotDuringEmits(t *testing.T) {
	withEnabled(t, func() {
		r := newRecorder("live", 16)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					r.Emit(StateCommit, i, F("root", i))
				}
			}
		}()
		for i := 0; i < 50; i++ {
			for _, e := range r.Snapshot() {
				if e.Fields[0].Val != e.Epoch {
					t.Errorf("inconsistent event from live snapshot: %s", e.String())
				}
			}
		}
		close(stop)
		wg.Wait()
	})
}

func TestDisabledEmitDoesNotAllocate(t *testing.T) {
	Disable()
	r := newRecorder("noalloc", 8)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(NodeEpochCommit, 1)
	}); allocs != 0 {
		t.Errorf("disabled Emit allocated %.1f times per op, want 0", allocs)
	}
	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(1000, func() {
		nilRec.Emit(NodeEpochCommit, 1, F("root", 2))
	}); allocs != 0 {
		t.Errorf("nil-recorder Emit allocated %.1f times per op, want 0", allocs)
	}
	if r.Len() != 0 {
		t.Errorf("disabled Emit recorded %d events, want 0", r.Len())
	}
}

func TestEnabledEmitAllocBudget(t *testing.T) {
	withEnabled(t, func() {
		r := newRecorder("budget", 1024)
		if allocs := testing.AllocsPerRun(500, func() {
			r.Emit(NodeEpochCommit, 3, F("root", 7), F("committed", 9))
		}); allocs > 1 {
			t.Errorf("enabled Emit allocated %.1f times per op, want <= 1", allocs)
		}
	})
}

func TestForReturnsSameRecorderAndResetDrops(t *testing.T) {
	Reset()
	a, b := For("same"), For("same")
	if a != b {
		t.Fatal("For returned two recorders for one node id")
	}
	For("other")
	recs := Recorders()
	if len(recs) != 2 || recs[0].Node() != "other" || recs[1].Node() != "same" {
		t.Fatalf("Recorders() = %v, want [other same]", recs)
	}
	Reset()
	if got := Recorders(); len(got) != 0 {
		t.Fatalf("Recorders() after Reset has %d entries, want 0", len(got))
	}
}

func TestWitnessAdvancesLamportClock(t *testing.T) {
	withEnabled(t, func() {
		a := newRecorder("a", 8)
		b := newRecorder("b", 8)
		for i := 0; i < 5; i++ {
			a.Emit(SyncRequest, 1)
		}
		b.Emit(SyncResponse, 1)
		b.Witness(a.Clock())
		b.Emit(SyncResponse, 2)
		evs := b.Snapshot()
		last := evs[len(evs)-1]
		if last.LC <= a.Clock() {
			t.Errorf("post-witness LC %d not past witnessed clock %d", last.LC, a.Clock())
		}
		b.Witness(1) // regression: witnessing an older clock must not rewind
		if b.Clock() != last.LC {
			t.Errorf("Witness rewound the clock to %d", b.Clock())
		}
	})
}

func TestFoldBytes(t *testing.T) {
	if got := FoldBytes([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xff}); got != 1<<56 {
		t.Errorf("FoldBytes = %#x, want first 8 bytes big-endian (%#x)", got, uint64(1)<<56)
	}
	if got := FoldBytes([]byte{0, 1}); got != 1<<48 {
		t.Errorf("FoldBytes short input = %#x, want zero-padded %#x", got, uint64(1)<<48)
	}
}

func sampleEvents() []Event {
	var out []Event
	mk := func(seq uint64, kind Kind, epoch uint64, fields ...Field) {
		e := Event{Seq: seq, Wall: int64(1000 + seq), LC: seq + 1, Node: "n0", Kind: kind, Epoch: epoch}
		e.NumFields = uint8(copy(e.Fields[:], fields))
		out = append(out, e)
	}
	mk(0, ChaosFault, 0, FS("kind", "crash"), FS("site", "node/persist"))
	mk(1, SchedGroups, 1, F("groups", 4), F("rescued", 1), F("digest", 0xdeadbeef))
	mk(2, NodeEpochCommit, 1, F("root", 0x1234), F("committed", 40))
	mk(3, SyncRequest, 2, FS("peer", "n1"), F("resync", 0))
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d changed across binary round trip:\n  wrote %+v\n  read  %+v", i, events[i], got[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d changed across JSONL round trip:\n  wrote %+v\n  read  %+v", i, events[i], got[i])
		}
	}
}

func TestReadFileSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents()
	bin := filepath.Join(dir, "bin.journal")
	if err := WriteFile(bin, events); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	jsonl := filepath.Join(dir, "jsonl.journal")
	if err := os.WriteFile(jsonl, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{bin, jsonl} {
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: %d events, want %d", path, len(got), len(events))
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a journal"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("Read(garbage) = %v, want ErrBadFormat", err)
	}
	// A truncated binary stream is corruption, not a silent short read.
	var buf bytes.Buffer
	if err := Write(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(torn)); err == nil {
		t.Error("Read(torn stream) succeeded, want unexpected-EOF error")
	}
}

func TestDumpAllWritesEveryRecorder(t *testing.T) {
	Reset()
	defer Reset()
	withEnabled(t, func() {
		For("d0").Emit(NodeEpochCommit, 1, F("root", 0xaa))
		For("d1").Emit(NodeEpochCommit, 1, F("root", 0xbb))
		dir := t.TempDir()
		if err := DumpAll(dir); err != nil {
			t.Fatal(err)
		}
		for _, node := range []string{"d0", "d1"} {
			evs, err := ReadFile(filepath.Join(dir, node+".journal"))
			if err != nil {
				t.Fatalf("%s: %v", node, err)
			}
			if len(evs) != 1 || evs[0].Node != node {
				t.Fatalf("%s journal holds %v", node, evs)
			}
		}
	})
}

func TestEventStringIncludesFields(t *testing.T) {
	e := sampleEvents()[2]
	s := e.String()
	for _, want := range []string{"node/epoch-commit", "epoch 1", "root=0x1234", "committed=0x28"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
