// Package journal is the always-on flight recorder: a bounded per-node
// ring of structured events covering the places replicas can disagree —
// epoch commits, scheduler outputs, sync transitions, MVCC epoch
// boundaries, injected faults. It exists for exactly one moment: two
// nodes have computed different state roots for the same epoch, and the
// aggregate metrics can only say THAT they diverged, not which event
// sequence differed first. The journal answers the second question.
//
// Design constraints, in order:
//
//   - Disabled must be near-free. Every Emit starts with one atomic load
//     (BenchmarkJournalDisabled in the root bench suite guards ≤2 ns), so
//     the instrumentation can live on hot paths permanently, like the
//     failpoint substrate it mirrors. Call sites that compute expensive
//     payloads (digests) guard them with Enabled().
//   - Enabled must not serialize emitters. The append path is a single
//     atomic sequence reservation plus a per-slot mutex for the payload
//     write; two goroutines only contend when they land on the same slot
//     (ring-capacity apart). No seqlock: the chaos harness runs under
//     -race, and a seqlock's unsynchronized reads would light it up.
//   - The observer must not perturb determinism-critical ordering: Emit
//     is forbidden inside lint.CriticalPackages (enforced by nezha-vet's
//     journalhygiene analyzer); instrumentation lives at the call sites
//     around those packages instead.
//
// Clocks: every event carries the ring sequence (per-node total order),
// a wall-clock timestamp (human correlation only), and a Lamport clock.
// The Lamport clock ticks on every emit and is advanced past a remote
// node's clock via Witness when a message from that node is delivered —
// the chaos harness witnesses the sender on every dispatch — so "A's
// event e1 causally precedes B's event e2" is readable from LC order.
//
// Recorders are process-global and keyed by node id (For), so a node
// restarting under the same id keeps appending to the same ring — the
// pre-crash history is exactly what a forensic dump wants.
package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nezha-dag/nezha/internal/metrics"
)

// DefaultCap is the per-node ring capacity (events retained before the
// oldest are overwritten). Power of two: the append path masks, never
// divides.
const DefaultCap = 4096

// MaxFields is how many key/value fields one event carries; Emit drops
// extras rather than allocate.
const MaxFields = 4

// Field is one key/value payload entry: a static key plus a numeric
// value, a small string value, or both.
type Field struct {
	Key string `json:"k"`
	Val uint64 `json:"v,omitempty"`
	Str string `json:"s,omitempty"`
}

// F builds a numeric field.
func F(key string, val uint64) Field { return Field{Key: key, Val: val} }

// FS builds a string field.
func FS(key, str string) Field { return Field{Key: key, Str: str} }

// FoldBytes folds a hash or id prefix into a journal-sized value: the
// first 8 bytes, big-endian (zero-padded when shorter). Enough bits to
// compare roots across nodes without carrying 32-byte payloads.
func FoldBytes(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v <<= 8
		if i < len(b) {
			v |= uint64(b[i])
		}
	}
	return v
}

// Event is one recorded event. The struct is fixed-size (plus the node
// and kind string headers, which point at static data) so a ring slot
// never allocates.
type Event struct {
	// Seq is the per-node ring sequence — the node's total emit order.
	Seq uint64
	// Wall is the wall-clock emit time in Unix nanoseconds. Human
	// correlation only; never compared across nodes.
	Wall int64
	// LC is the node's Lamport clock at emit time (see Witness).
	LC uint64
	// Node is the emitting node's id.
	Node string
	// Kind is the registered event kind (names.go).
	Kind Kind
	// Epoch is the epoch (or height, for sync events) the event belongs
	// to; 0 when not epoch-scoped.
	Epoch uint64
	// Fields holds the first NumFields payload entries.
	Fields    [MaxFields]Field
	NumFields uint8
}

// String renders one event for human eyes; the inspect CLI and the diff
// report share it.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[seq %5d lc %5d] %-18s epoch %-4d", e.Seq, e.LC, e.Kind, e.Epoch)
	for i := 0; i < int(e.NumFields); i++ {
		f := e.Fields[i]
		if f.Str != "" {
			fmt.Fprintf(&b, " %s=%s", f.Key, f.Str)
		} else {
			fmt.Fprintf(&b, " %s=%#x", f.Key, f.Val)
		}
	}
	return b.String()
}

// PayloadEqual reports whether two events carry the same kind, epoch,
// and fields — the replica-determinism comparison Diff runs on aligned
// events (sequence numbers and clocks are per-node and excluded).
func (e Event) PayloadEqual(o Event) bool {
	if e.Kind != o.Kind || e.Epoch != o.Epoch || e.NumFields != o.NumFields {
		return false
	}
	for i := 0; i < int(e.NumFields); i++ {
		if e.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// enabled is the process-wide gate — the one atomic load every disabled
// Emit pays.
var enabled atomic.Bool

// Enable turns recording on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns recording off; existing ring contents stay readable.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on. Call sites use it to skip
// expensive payload computation (digests) when the journal is off.
func Enabled() bool { return enabled.Load() }

// recorders is the process-global registry, keyed by node id.
var recorders sync.Map // string -> *Recorder

// Reset drops every recorder. The chaos harness calls it at scenario
// start so one scenario's journal never bleeds into the next; recorders
// held by live nodes keep working but are no longer reachable via For.
func Reset() {
	recorders.Range(func(k, _ any) bool {
		recorders.Delete(k)
		return true
	})
}

// For returns the recorder for a node id, creating it on first use. A
// restarted node (same id) gets its pre-crash recorder back.
func For(node string) *Recorder {
	if r, ok := recorders.Load(node); ok {
		return r.(*Recorder)
	}
	r := newRecorder(node, DefaultCap)
	if prev, loaded := recorders.LoadOrStore(node, r); loaded {
		return prev.(*Recorder)
	}
	return r
}

// Recorders snapshots the registry, sorted by node id.
func Recorders() []*Recorder {
	var out []*Recorder
	recorders.Range(func(_, v any) bool {
		out = append(out, v.(*Recorder))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].node < out[j].node })
	return out
}

// slot is one ring entry. The mutex covers only the payload copy — a
// few dozen bytes — so contention requires two emitters ring-capacity
// apart in sequence space.
type slot struct {
	mu sync.Mutex
	ev Event
}

// Recorder is one node's bounded event ring. Safe for concurrent use;
// the nil recorder drops everything.
type Recorder struct {
	node  string
	mask  uint64
	seq   atomic.Uint64 // next sequence to reserve
	lc    atomic.Uint64 // Lamport clock
	slots []slot

	// Metric handles are created once at construction — metric
	// constructors inside the emit path would both allocate and trip
	// nezha-vet's metricshygiene loop rule.
	mEvents  *metrics.Counter
	mDropped *metrics.Counter
	mSize    *metrics.Gauge
}

// newRecorder builds a recorder with the given ring capacity (rounded up
// to a power of two, minimum 2).
func newRecorder(node string, capacity int) *Recorder {
	n := 2
	for n < capacity {
		n <<= 1
	}
	nl := metrics.Label{Name: "node", Value: node}
	r := &Recorder{
		node:  node,
		mask:  uint64(n - 1),
		slots: make([]slot, n),
		mEvents: metrics.Default().Counter("nezha_journal_events_total",
			"Events appended to the flight-recorder ring.", nl),
		mDropped: metrics.Default().Counter("nezha_journal_dropped_total",
			"Ring-buffer overwrites: oldest events displaced by new ones.", nl),
		mSize: metrics.Default().Gauge("nezha_journal_size",
			"Events currently retained in the flight-recorder ring.", nl),
	}
	return r
}

// Node returns the recorder's node id.
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Emit appends one event. Disabled (or nil-recorder) calls cost one
// atomic load and allocate nothing; enabled calls cost one atomic
// reservation, one slot-mutex hold, and at most one allocation (the
// variadic fields, when they escape). Fields beyond MaxFields are
// dropped.
func (r *Recorder) Emit(kind Kind, epoch uint64, fields ...Field) {
	if !enabled.Load() || r == nil {
		return
	}
	r.emit(kind, epoch, fields)
}

// emit is the armed path.
func (r *Recorder) emit(kind Kind, epoch uint64, fields []Field) {
	lc := r.lc.Add(1)
	seq := r.seq.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.mu.Lock()
	ev := &s.ev
	ev.Seq = seq
	ev.Wall = time.Now().UnixNano() //nezha:nondeterminism-ok Wall is human-correlation metadata; PayloadEqual and the divergence diff exclude it
	ev.LC = lc
	ev.Node = r.node
	ev.Kind = kind
	ev.Epoch = epoch
	n := copy(ev.Fields[:], fields)
	for i := n; i < MaxFields; i++ {
		ev.Fields[i] = Field{}
	}
	ev.NumFields = uint8(n)
	s.mu.Unlock()

	r.mEvents.Inc()
	size := seq + 1
	if size > uint64(len(r.slots)) {
		r.mDropped.Inc()
		size = uint64(len(r.slots))
	}
	r.mSize.Set(float64(size))
}

// Witness advances the Lamport clock past a remote node's clock — called
// when a message from that node is delivered, so cross-node causality is
// readable from LC order.
func (r *Recorder) Witness(remote uint64) {
	if r == nil {
		return
	}
	for {
		cur := r.lc.Load()
		if cur >= remote {
			return
		}
		if r.lc.CompareAndSwap(cur, remote) {
			return
		}
	}
}

// Clock returns the recorder's current Lamport clock.
func (r *Recorder) Clock() uint64 {
	if r == nil {
		return 0
	}
	return r.lc.Load()
}

// Len reports how many events the ring currently retains.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.seq.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot copies the retained events, oldest first. It is safe against
// concurrent emitters: a slot overwritten (or reserved but not yet
// written) while the snapshot walks is detected by its sequence stamp
// and skipped, so every returned event is internally consistent.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	end := r.seq.Load()
	start := uint64(0)
	if end > uint64(len(r.slots)) {
		start = end - uint64(len(r.slots))
	}
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		s := &r.slots[i&r.mask]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq != i || ev.Kind == "" {
			continue // lapped by a concurrent emitter, or never written
		}
		out = append(out, ev)
	}
	return out
}

// DumpAll writes every registered recorder's journal into dir, one
// binary file per node (<node>.journal), creating dir if needed. It is
// the crash/divergence dump the chaos harness triggers; the inspect CLI
// reads the files back.
func DumpAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range Recorders() {
		path := filepath.Join(dir, r.Node()+".journal")
		if err := WriteFile(path, r.Snapshot()); err != nil {
			return fmt.Errorf("journal: dump %s: %w", r.Node(), err)
		}
	}
	return nil
}
