package journal

// Export/import for journal dumps. Two formats over the same events:
//
//   - Binary (magic "NZJRNL1\n" + uvarint-packed records): what DumpAll
//     writes — compact, allocation-light, and append-friendly.
//   - JSONL (one JSON object per line): what scripting and jq want.
//
// ReadFile sniffs the magic so the inspect CLI takes either.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// magic is the binary journal header.
var magic = []byte("NZJRNL1\n")

// ErrBadFormat reports a journal stream that is neither binary nor JSONL.
var ErrBadFormat = errors.New("journal: unrecognized format")

// Write encodes events to the binary format.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	var buf []byte
	for i := range events {
		buf = appendEvent(buf[:0], &events[i])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendEvent packs one record: fixed-order uvarints with length-prefixed
// strings. Wall is stored as a uint64 bit pattern (it is a positive
// nanosecond count everywhere it matters).
func appendEvent(buf []byte, e *Event) []byte {
	buf = binary.AppendUvarint(buf, e.Seq)
	buf = binary.AppendUvarint(buf, uint64(e.Wall))
	buf = binary.AppendUvarint(buf, e.LC)
	buf = appendString(buf, e.Node)
	buf = appendString(buf, string(e.Kind))
	buf = binary.AppendUvarint(buf, e.Epoch)
	buf = binary.AppendUvarint(buf, uint64(e.NumFields))
	for i := 0; i < int(e.NumFields); i++ {
		f := e.Fields[i]
		buf = appendString(buf, f.Key)
		buf = binary.AppendUvarint(buf, f.Val)
		buf = appendString(buf, f.Str)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Read decodes a binary journal stream.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if !bytes.Equal(head, magic) {
		return nil, ErrBadFormat
	}
	var out []Event
	for {
		ev, err := readEvent(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("journal: record %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
}

func readEvent(br *bufio.Reader) (Event, error) {
	var e Event
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		// A clean EOF before the first byte of a record is end-of-stream;
		// anything torn mid-record is corruption.
		if err == io.EOF {
			return e, io.EOF
		}
		return e, err
	}
	e.Seq = seq
	wall, err := readUvarint(br)
	if err != nil {
		return e, err
	}
	e.Wall = int64(wall)
	if e.LC, err = readUvarint(br); err != nil {
		return e, err
	}
	if e.Node, err = readString(br); err != nil {
		return e, err
	}
	kind, err := readString(br)
	if err != nil {
		return e, err
	}
	e.Kind = Kind(kind)
	if e.Epoch, err = readUvarint(br); err != nil {
		return e, err
	}
	nf, err := readUvarint(br)
	if err != nil {
		return e, err
	}
	if nf > MaxFields {
		return e, fmt.Errorf("field count %d exceeds %d", nf, MaxFields)
	}
	e.NumFields = uint8(nf)
	for i := 0; i < int(nf); i++ {
		if e.Fields[i].Key, err = readString(br); err != nil {
			return e, err
		}
		if e.Fields[i].Val, err = readUvarint(br); err != nil {
			return e, err
		}
		if e.Fields[i].Str, err = readString(br); err != nil {
			return e, err
		}
	}
	return e, nil
}

// readUvarint is ReadUvarint with mid-record EOF promoted to a hard error.
func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err == io.EOF {
		return 0, io.ErrUnexpectedEOF
	}
	return v, err
}

// maxStringLen bounds decoded string lengths so a corrupt length prefix
// cannot drive an absurd allocation.
const maxStringLen = 1 << 16

func readString(br *bufio.Reader) (string, error) {
	n, err := readUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("string length %d exceeds %d", n, maxStringLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// eventJSON is the JSONL wire shape (fields trimmed to NumFields).
type eventJSON struct {
	Seq    uint64  `json:"seq"`
	Wall   int64   `json:"wall"`
	LC     uint64  `json:"lc"`
	Node   string  `json:"node"`
	Kind   Kind    `json:"kind"`
	Epoch  uint64  `json:"epoch"`
	Fields []Field `json:"fields,omitempty"`
}

// WriteJSONL encodes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		e := &events[i]
		ej := eventJSON{
			Seq: e.Seq, Wall: e.Wall, LC: e.LC,
			Node: e.Node, Kind: e.Kind, Epoch: e.Epoch,
		}
		if e.NumFields > 0 {
			ej.Fields = append(ej.Fields, e.Fields[:e.NumFields]...)
		}
		if err := enc.Encode(&ej); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL journal stream.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(line, &ej); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", len(out)+1, err)
		}
		if len(ej.Fields) > MaxFields {
			return nil, fmt.Errorf("journal: line %d: field count %d exceeds %d", len(out)+1, len(ej.Fields), MaxFields)
		}
		e := Event{
			Seq: ej.Seq, Wall: ej.Wall, LC: ej.LC,
			Node: ej.Node, Kind: ej.Kind, Epoch: ej.Epoch,
			NumFields: uint8(len(ej.Fields)),
		}
		copy(e.Fields[:], ej.Fields)
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFile writes a binary journal file.
func WriteFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a journal file, sniffing the format: the binary magic
// first, JSONL otherwise.
func ReadFile(path string) ([]Event, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(raw, magic) {
		return Read(bytes.NewReader(raw))
	}
	return ReadJSONL(bytes.NewReader(raw))
}
