package chaos

import (
	"fmt"
	"io"
)

// SweepConfig parameterizes a multi-seed chaos sweep (the CI entry point).
type SweepConfig struct {
	// StartSeed is the first scenario seed; seeds increment from here.
	StartSeed int64
	// Seeds is how many scenarios to run. 0 means 20.
	Seeds int
	// Scenario is the per-seed configuration; its Seed field is overwritten
	// by the sweep.
	Scenario Config
	// MaxFailures stops the sweep early once this many scenarios failed.
	// 0 means 3.
	MaxFailures int
	// Verbose, when set, receives one line per scenario (and the scenario
	// event logs if Scenario.Verbose is also set).
	Verbose io.Writer
}

// Report aggregates a sweep.
type Report struct {
	Trials        int
	Failures      []*Failure
	Epochs        uint64
	Blocks        int
	CrashRestarts int
	Partitions    int
	StorageErrors int
	Stalls        int
	MempoolFaults int
}

// Failed reports whether any scenario failed.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// Summary renders the sweep outcome as one line.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"chaos: %d scenarios, %d failures | %d epochs, %d blocks | %d crash-restarts, %d partitions, %d storage errors, %d stalls, %d mempool faults",
		r.Trials, len(r.Failures), r.Epochs, r.Blocks,
		r.CrashRestarts, r.Partitions, r.StorageErrors, r.Stalls, r.MempoolFaults)
}

// Sweep runs Seeds scenarios sequentially (failpoints are process-global)
// and aggregates their results. The error reports harness setup problems
// only; cluster misbehavior lands in Report.Failures with replayable
// seeds.
func Sweep(cfg SweepConfig) (*Report, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 20
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 3
	}
	rep := &Report{}
	for i := 0; i < cfg.Seeds; i++ {
		sc := cfg.Scenario
		sc.Seed = cfg.StartSeed + int64(i)
		res, err := Run(sc)
		if err != nil {
			return rep, fmt.Errorf("chaos: seed %d: %w", sc.Seed, err)
		}
		rep.Trials++
		rep.Epochs += res.Epochs
		rep.Blocks += res.Blocks
		rep.CrashRestarts += res.CrashRestarts
		rep.Partitions += res.Partitions
		rep.StorageErrors += res.StorageErrors
		rep.Stalls += res.Stalls
		rep.MempoolFaults += res.MempoolFaults
		if cfg.Verbose != nil {
			status := "ok"
			if res.Failure != nil {
				status = "FAIL"
			}
			fmt.Fprintf(cfg.Verbose,
				"seed %d: %s (%d epochs, %d blocks, %d crashes, %d partitions, %d storage errors, %d stalls)\n",
				sc.Seed, status, res.Epochs, res.Blocks,
				res.CrashRestarts, res.Partitions, res.StorageErrors, res.Stalls)
		}
		if res.Failure != nil {
			rep.Failures = append(rep.Failures, res.Failure)
			if cfg.Verbose != nil {
				fmt.Fprintln(cfg.Verbose, " ", res.Failure.Error())
			}
			if len(rep.Failures) >= cfg.MaxFailures {
				break
			}
		}
	}
	return rep, nil
}
