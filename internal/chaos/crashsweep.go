package chaos

// The crash-point sweep: for every registered failpoint site (fail.AllNames)
// and a set of injected torn-WAL offsets, run a two-node trial — a "victim"
// over a real LSM directory that is crashed and restarted at exactly that
// point, and a never-crashed in-memory "twin" fed the same mined blocks —
// and assert the recovered victim converges to the twin on every recovery
// invariant: identical processed-epoch watermark, identical state root for
// every epoch, and identical re-derived assembly digests for every epoch.
//
// The sweep is what makes the failpoint registry honest: a crash site that
// exists but is never exercised proves nothing, so every name in the
// registry must either appear in a trial here or carry an explicit
// exemption with a reason (TestCrashSweepCoversRegistry enforces this).
// Failpoints are process-global, so the sweep must not run concurrently
// with chaos scenarios or other failpoint users.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

const (
	sweepVictimID = "victim"
	sweepTwinID   = "sweep-twin"
	// sweepCrashAfter skips the first hits of a runtime-armed site so the
	// crash lands mid-history rather than on the very first event.
	sweepCrashAfter = 3
	// sweepReplayAfter places the recovery-replay crash mid-WAL rather
	// than on the first record (any mid-run restart replays far more
	// records than this).
	sweepReplayAfter = 8
	// minSweepEpochs is the least committed-epoch watermark a trial must
	// reach for its convergence check to mean anything.
	minSweepEpochs = 3
)

// sweepExemptions lists the registered sites the sweep deliberately does
// not crash at, with the reason. Every fail.Name must be swept or listed
// here; the sweep errors out on any site that is neither.
var sweepExemptions = map[fail.Name]string{
	fail.BenchDisarmed: "benchmark-only site measuring the disarmed fast path; no node code hits it",
	fail.P2PDrop:       "evaluated on the network fabric's delivery goroutines — a panic there kills the whole process, and the sweep runs no fabric; the chaos scenarios cover delivery faults",
	fail.P2PStall:      "evaluated on the network fabric's delivery goroutines — a panic there kills the whole process, and the sweep runs no fabric; the chaos scenarios cover delivery faults",
}

// CrashSweepConfig parameterizes a crash-point sweep.
type CrashSweepConfig struct {
	// Dir is the root for per-trial LSM directories. Empty means a fresh
	// temp directory, removed when every trial passes and kept (with its
	// path in the report) when any fails.
	Dir string
	// Rounds is the mining rounds per trial; 0 means 12 (minimum 8, so
	// scripted mid-run restarts have history on both sides).
	Rounds int
	// Chains is the OHIE chain count per trial; 0 means 2.
	Chains int
	// TornOffsets is how many fractional torn-WAL truncation points to
	// sweep; 0 means 4 (the minimum the recovery story promises).
	TornOffsets int
	// Seed seeds the workload generator; 0 means 11.
	Seed int64
	// Verbose, when set, receives one line per trial.
	Verbose io.Writer
}

func (c CrashSweepConfig) withDefaults() CrashSweepConfig {
	if c.Rounds == 0 {
		c.Rounds = 12
	}
	if c.Rounds < 8 {
		c.Rounds = 8
	}
	if c.Chains <= 0 {
		c.Chains = 2
	}
	if c.TornOffsets <= 0 {
		c.TornOffsets = 4
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	return c
}

// CrashTrialResult is one crash-and-recover trial's outcome.
type CrashTrialResult struct {
	// Name identifies the trial: "site:<fail.Name>", "torn-wal:<frac>",
	// or "corrupt-wal".
	Name string
	// Crashes counts how many times the victim was crash-restarted.
	Crashes int
	// Epochs is the converged processed-epoch watermark.
	Epochs uint64
	// Err is empty on success.
	Err string
}

// CrashSweepReport aggregates a crash-point sweep.
type CrashSweepReport struct {
	Trials []CrashTrialResult
	// Exempt maps the registered-but-unswept site names to their reasons.
	Exempt map[string]string
	// Dir is where the per-trial stores live; retained on failure for
	// forensics.
	Dir string
}

// Failed reports whether any trial failed.
func (r *CrashSweepReport) Failed() bool {
	for _, t := range r.Trials {
		if t.Err != "" {
			return true
		}
	}
	return false
}

// Summary renders the sweep outcome as one line.
func (r *CrashSweepReport) Summary() string {
	failures, crashes := 0, 0
	var epochs uint64
	for _, t := range r.Trials {
		if t.Err != "" {
			failures++
		}
		crashes += t.Crashes
		epochs += t.Epochs
	}
	return fmt.Sprintf(
		"crash sweep: %d trials, %d failures | %d forced crashes, %d recovered epochs | %d sites exempt",
		len(r.Trials), failures, crashes, epochs, len(r.Exempt))
}

// crashTrialSpec selects what a single trial crashes and how the victim
// is configured so the site actually fires.
type crashTrialSpec struct {
	name     string
	site     fail.Name // runtime or recovery crash site; "" for WAL-mutation trials
	recovery bool      // arm the site at a scripted mid-run restart instead of at runtime
	serial   bool      // run both nodes on the serial pipeline (node/stage-serial)
	tiny     bool      // tiny memtable + aggressive compaction (kvstore/flush, kvstore/compact)
	mempool  bool      // front the victim's miner with the mempool
	evict    bool      // tiny mempool caps so eviction decisions fire
	tornFrac float64   // >0: truncate the WAL to this fraction at a scripted restart
	corrupt  bool      // flip a mid-log WAL byte; recovery must reject loudly
}

func (sp crashTrialSpec) scripted() bool {
	return sp.recovery || sp.tornFrac > 0 || sp.corrupt
}

// crashSweepSpecs expands the failpoint registry plus the WAL-mutation
// trials into the full trial list. It errors on any registered site that
// is neither swept nor exempted — adding a failpoint without deciding its
// crash-recovery story is exactly what the sweep exists to prevent.
func crashSweepSpecs(cfg CrashSweepConfig) ([]crashTrialSpec, error) {
	var specs []crashTrialSpec
	for _, name := range fail.AllNames() {
		if _, ok := sweepExemptions[name]; ok {
			continue
		}
		sp := crashTrialSpec{name: "site:" + string(name), site: name}
		switch name {
		case fail.KVFlush, fail.KVCompact:
			sp.tiny = true
		case fail.KVWALReplay, fail.NodeRestore:
			sp.recovery = true
		case fail.NodeStageSerial:
			sp.serial = true
		case fail.MempoolAdmit:
			sp.mempool = true
		case fail.MempoolEvict:
			sp.mempool, sp.evict = true, true
		case fail.KVWALAppend, fail.KVWALSync, fail.KVApply,
			fail.NodeSubmit, fail.NodePersist, fail.NodePersistDone,
			fail.NodeDivergeRoot, fail.NodeStageValidate, fail.NodeStageExecute,
			fail.NodeStageSchedule, fail.NodeStageCommit, fail.NodeStagePrefetch:
			// Default trial: panic the site at runtime, tagged to the victim.
		default:
			return nil, fmt.Errorf("chaos: registered failpoint %q is neither swept nor exempted — decide its crash-recovery story", name)
		}
		specs = append(specs, sp)
	}
	for i := 0; i < cfg.TornOffsets; i++ {
		frac := float64(i+1) / float64(cfg.TornOffsets+1)
		specs = append(specs, crashTrialSpec{
			name:     fmt.Sprintf("torn-wal:%.2f", frac),
			tornFrac: frac,
		})
	}
	specs = append(specs, crashTrialSpec{name: "corrupt-wal", corrupt: true})
	return specs, nil
}

// CrashSweep runs one trial per spec sequentially (failpoints are
// process-global) and reports per-trial outcomes. The error reports
// harness setup problems only; recovery misbehavior lands in the report.
func CrashSweep(cfg CrashSweepConfig) (*CrashSweepReport, error) {
	cfg = cfg.withDefaults()
	specs, err := crashSweepSpecs(cfg)
	if err != nil {
		return nil, err
	}
	root := cfg.Dir
	ephemeral := false
	if root == "" {
		root, err = os.MkdirTemp("", "nezha-crashsweep-")
		if err != nil {
			return nil, err
		}
		ephemeral = true
	}
	rep := &CrashSweepReport{Exempt: map[string]string{}, Dir: root}
	for name, why := range sweepExemptions {
		rep.Exempt[string(name)] = why
	}

	// The recovery self-audit's digest cross-check only runs with the
	// journal on (restarted nodes compare re-derived assembly digests
	// against the ring's pre-crash events), so every trial doubles as an
	// audit exercise.
	wasEnabled := journal.Enabled()
	journal.Enable()
	defer func() {
		if !wasEnabled {
			journal.Disable()
		}
	}()

	for _, sp := range specs {
		res := runCrashTrial(cfg, root, sp)
		rep.Trials = append(rep.Trials, res)
		if cfg.Verbose != nil {
			status := "ok"
			if res.Err != "" {
				status = "FAIL: " + res.Err
			}
			fmt.Fprintf(cfg.Verbose, "%-28s %d crashes, %d epochs: %s\n",
				res.Name, res.Crashes, res.Epochs, status)
		}
	}
	if ephemeral && !rep.Failed() {
		os.RemoveAll(root)
		rep.Dir = ""
	}
	return rep, nil
}

// crashTrial is the per-trial engine state.
type crashTrial struct {
	cfg     CrashSweepConfig
	sp      crashTrialSpec
	dir     string
	nodeCfg node.Config

	txs    []*types.Transaction
	cursor int
	// mined holds every block in mining order; a restarted victim is
	// resubmitted the full sequence (duplicates are benign).
	mined []*types.Block

	victim  *node.Node
	vstore  *kvstore.LSM
	vminer  *node.Miner
	twin    *node.Node
	tstore  *kvstore.Memory
	crashes int
}

func runCrashTrial(cfg CrashSweepConfig, root string, sp crashTrialSpec) CrashTrialResult {
	res := CrashTrialResult{Name: sp.name}
	fail.Reset()
	defer fail.Reset()
	// Each trial reuses the victim's journal id; clear the rings so the
	// recovery audit never cross-checks against a previous trial's epochs.
	journal.Reset()

	c := &crashTrial{cfg: cfg, sp: sp, dir: filepath.Join(root, sanitizeTrialName(sp.name))}
	if err := c.setup(); err != nil {
		res.Err = err.Error()
		return res
	}
	defer c.teardown()

	done, err := c.run()
	res.Crashes = c.crashes
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if done {
		// WAL-corruption trials end at the loud rejection; there is no
		// recovered node to converge.
		return res
	}
	if err := c.verify(&res); err != nil {
		res.Err = err.Error()
	}
	return res
}

func sanitizeTrialName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, name)
}

// setup builds the deterministic workload, the shared node config, the
// in-memory twin, and the first incarnation of the victim; runtime trials
// then arm their crash site tagged to the victim.
func (c *crashTrial) setup() error {
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     c.cfg.Seed,
		Accounts: 200,
		Skew:     0.5, InitialBalance: 1_000,
	})
	if err != nil {
		return err
	}
	c.txs = gen.Txs(c.cfg.Rounds * blocksPerRound * blockTxs)
	genesis, err := gen.GenesisWrites(c.txs)
	if err != nil {
		return err
	}
	c.nodeCfg = node.Config{
		Consensus:     consensus.Params{Chains: c.cfg.Chains},
		Workers:       workers,
		Contracts:     map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
		GenesisWrites: genesis,
		ConfirmDepth:  confirmDepth,
		Persist:       true,
	}
	if c.sp.mempool {
		c.nodeCfg.Mempool = &mempool.Config{}
		if c.sp.evict {
			// One tiny shard so admission pressure forces eviction
			// decisions every round.
			c.nodeCfg.Mempool = &mempool.Config{Shards: 1, ShardCap: 8}
		}
	}

	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	c.tstore = kvstore.NewMemory()
	twin, err := node.New(sweepTwinID, c.tstore, c.nodeConfig())
	if err != nil {
		return err
	}
	c.twin = twin
	if err := c.openVictim(); err != nil {
		return err
	}
	if c.sp.site != "" && !c.sp.recovery {
		fail.Enable(c.sp.site, fail.Spec{
			Mode:  fail.ModePanic,
			Tag:   sweepVictimID,
			After: sweepCrashAfter,
			Count: 1,
		})
	}
	return nil
}

func (c *crashTrial) nodeConfig() node.Config {
	cfg := c.nodeCfg
	if !c.sp.serial {
		cfg.Scheduler = core.MustNewScheduler(core.DefaultConfig())
	}
	return cfg
}

func (c *crashTrial) teardown() {
	if c.vstore != nil {
		c.vstore.Close()
	}
	if c.tstore != nil {
		c.tstore.Close()
	}
}

// guard runs a victim operation, converting an armed crash-failpoint
// panic into a crashed=true return (mirroring harness.guard).
func (c *crashTrial) guard(op func() error) (crashed bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if !fail.IsCrash(rec) {
				panic(rec)
			}
			crashed, err = true, nil
		}
	}()
	err = op()
	return
}

// abandonVictim simulates SIGKILL: in-memory state is dropped and the
// store is deliberately NOT closed — a crash does not flush.
func (c *crashTrial) abandonVictim() {
	c.victim, c.vstore, c.vminer = nil, nil, nil
}

// restartVictim records the crash and brings the victim back from its
// directory, surviving crashes armed inside recovery itself.
func (c *crashTrial) restartVictim() error {
	c.crashes++
	c.abandonVictim()
	return c.openVictim()
}

// openVictim (re)opens the victim's store and node and resubmits the full
// mined history. Recovery-armed trials crash inside this path (WAL replay
// or metadata restore); the loop abandons the half-open incarnation and
// tries again, exactly like a supervisor restarting a crash-looping
// process whose fault was transient.
func (c *crashTrial) openVictim() error {
	for attempt := 0; attempt < 4; attempt++ {
		crashed, err := c.guard(func() error {
			if c.victim == nil {
				if err := c.incarnateVictim(); err != nil {
					return err
				}
			}
			return c.resubmit()
		})
		if crashed {
			c.crashes++
			c.abandonVictim()
			continue
		}
		return err
	}
	return fmt.Errorf("victim crashed on every recovery attempt")
}

func (c *crashTrial) incarnateVictim() error {
	opts := kvstore.DefaultLSMOptions()
	opts.FailTag = sweepVictimID
	if c.sp.tiny {
		// Force flushes and compactions inside the trial window so the
		// kvstore/flush and kvstore/compact sites actually fire.
		opts.MemtableBytes = 2 << 10
		opts.CompactAt = 2
	}
	store, err := kvstore.OpenLSM(c.dir, opts)
	if err != nil {
		return err
	}
	n, err := node.New(sweepVictimID, store, c.nodeConfig())
	if err != nil {
		store.Close()
		return err
	}
	c.vstore, c.victim = store, n
	c.vminer = node.NewMiner(n, types.AddressFromUint64(0x51), blockTxs)
	return nil
}

// resubmit replays the full mined history into the victim and processes
// whatever became ready. Already-known blocks are benign duplicates.
func (c *crashTrial) resubmit() error {
	for _, b := range c.mined {
		if err := c.victim.SubmitBlock(b); err != nil && !benign(err) {
			return fmt.Errorf("resubmit: %w", err)
		}
	}
	_, err := c.victim.ProcessReadyEpochs()
	return err
}

// victimOp runs op against the victim, crash-restarting it when the armed
// site fires. Returns any non-crash error.
func (c *crashTrial) victimOp(op func() error) error {
	crashed, err := c.guard(op)
	if crashed {
		return c.restartVictim()
	}
	return err
}

// run drives the mining rounds. Returns done=true when the trial's story
// ends before convergence checks (the corrupt-WAL rejection trial).
func (c *crashTrial) run() (done bool, err error) {
	for r := 0; r < c.cfg.Rounds; r++ {
		if c.sp.scripted() && r == c.cfg.Rounds/2 {
			done, err := c.scriptedRestart()
			if done || err != nil {
				return done, err
			}
		}
		feed := c.txs[c.cursor : c.cursor+blocksPerRound*blockTxs]
		c.cursor += len(feed)
		if err := c.victimOp(func() error { c.vminer.AddTxs(feed); return nil }); err != nil {
			return false, fmt.Errorf("round %d: add txs: %w", r, err)
		}
		for i := 0; i < blocksPerRound; i++ {
			var b *types.Block
			crashed, err := c.guard(func() error {
				var merr error
				b, merr = c.vminer.Mine(context.Background())
				return merr
			})
			if crashed {
				if err := c.restartVictim(); err != nil {
					return false, err
				}
				i--
				continue
			}
			if err != nil {
				return false, fmt.Errorf("round %d: mine: %w", r, err)
			}
			c.mined = append(c.mined, b)
			if err := c.twin.SubmitBlock(b); err != nil && !benign(err) {
				return false, fmt.Errorf("round %d: twin ingest: %w", r, err)
			}
			if err := c.victimOp(func() error {
				if serr := c.victim.SubmitBlock(b); serr != nil && !benign(serr) {
					return serr
				}
				return nil
			}); err != nil {
				return false, fmt.Errorf("round %d: victim ingest: %w", r, err)
			}
		}
		if err := c.victimOp(func() error {
			_, perr := c.victim.ProcessReadyEpochs()
			return perr
		}); err != nil {
			return false, fmt.Errorf("round %d: victim process: %w", r, err)
		}
		if _, err := c.twin.ProcessReadyEpochs(); err != nil {
			return false, fmt.Errorf("round %d: twin process: %w", r, err)
		}
	}
	// Drain: one more restart-free pass so buffered orphans and the last
	// confirmable epochs land on both sides.
	if err := c.victimOp(func() error { return c.resubmit() }); err != nil {
		return false, err
	}
	if _, err := c.twin.ProcessReadyEpochs(); err != nil {
		return false, err
	}
	return false, nil
}

// scriptedRestart crash-abandons the victim mid-run and brings it back
// through the trial's recovery hazard: an armed recovery failpoint, a
// torn WAL tail, or planted mid-log corruption.
func (c *crashTrial) scriptedRestart() (done bool, err error) {
	c.crashes++
	c.abandonVictim()
	walPath := filepath.Join(c.dir, "wal.log")
	switch {
	case c.sp.tornFrac > 0:
		fi, err := os.Stat(walPath)
		if err != nil {
			return false, err
		}
		cut := int64(float64(fi.Size()) * c.sp.tornFrac)
		if cut >= fi.Size() {
			cut = fi.Size() - 1
		}
		if err := os.Truncate(walPath, cut); err != nil {
			return false, err
		}
	case c.sp.corrupt:
		return true, c.runCorruptTrial(walPath)
	case c.sp.recovery:
		spec := fail.Spec{Mode: fail.ModePanic, Tag: sweepVictimID, Count: 1}
		if c.sp.site == fail.KVWALReplay {
			spec.After = sweepReplayAfter
		}
		fail.Enable(c.sp.site, spec)
	}
	return false, c.openVictim()
}

// runCorruptTrial flips one byte in the middle of the log (intact records
// follow it, so this is corruption, not a torn tail) and requires the
// reopen to fail loudly with the typed error and a counter increment —
// never a silent truncation to the prefix.
func (c *crashTrial) runCorruptTrial(walPath string) error {
	raw, err := os.ReadFile(walPath)
	if err != nil {
		return err
	}
	if len(raw) < 16 {
		return fmt.Errorf("corrupt-wal: log too short to plant corruption (%d bytes)", len(raw))
	}
	raw[len(raw)/4] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		return err
	}
	before := kvstore.WALCorruptions()
	opts := kvstore.DefaultLSMOptions()
	opts.FailTag = sweepVictimID
	store, err := kvstore.OpenLSM(c.dir, opts)
	if err == nil {
		store.Close()
		return fmt.Errorf("corrupt-wal: recovery accepted a log with planted mid-record corruption")
	}
	if !errors.Is(err, kvstore.ErrWALCorrupt) {
		return fmt.Errorf("corrupt-wal: recovery failed with %v, want ErrWALCorrupt", err)
	}
	if after := kvstore.WALCorruptions(); after <= before {
		return fmt.Errorf("corrupt-wal: nezha_wal_corruption_total did not increment (%.0f -> %.0f)", before, after)
	}
	return nil
}

// verify asserts the recovered victim converged to the never-crashed twin
// on every recovery invariant, and that the trial actually exercised its
// crash point.
func (c *crashTrial) verify(res *CrashTrialResult) error {
	if c.sp.site != "" && c.crashes == 0 {
		return fmt.Errorf("armed site %s never fired — the sweep lost coverage", c.sp.site)
	}
	vnext, tnext := c.victim.NextEpoch(), c.twin.NextEpoch()
	res.Epochs = vnext - 1
	if vnext != tnext {
		return fmt.Errorf("watermark diverged: victim next epoch %d, twin %d", vnext, tnext)
	}
	if vnext-1 < minSweepEpochs {
		return fmt.Errorf("converged at only %d epochs; the trial proved nothing", vnext-1)
	}
	for e := uint64(0); e < vnext; e++ {
		vr, vok := c.victim.RootAt(e)
		tr, tok := c.twin.RootAt(e)
		if !vok || !tok {
			return fmt.Errorf("epoch %d: missing state root (victim %v, twin %v)", e, vok, tok)
		}
		if vr != tr {
			return fmt.Errorf("epoch %d: state root diverged: victim %x twin %x", e, vr[:8], tr[:8])
		}
	}
	for e := uint64(1); e < vnext; e++ {
		vg, vok := c.victim.Ledger().EpochBlocks(e)
		tg, tok := c.twin.Ledger().EpochBlocks(e)
		if !vok || !tok {
			return fmt.Errorf("epoch %d: ledger cannot serve committed epoch (victim %v, twin %v)", e, vok, tok)
		}
		vbd, vtd := node.AssemblyDigests(e, vg)
		tbd, ttd := node.AssemblyDigests(e, tg)
		if vbd != tbd || vtd != ttd {
			return fmt.Errorf("epoch %d: assembly digests diverged: victim (%#x, %#x) twin (%#x, %#x)",
				e, vbd, vtd, tbd, ttd)
		}
	}
	return nil
}
