// Package chaos is the fault-injection convergence harness: an in-process
// multi-node cluster (real Node, Miner, Syncer, LSM store, and simulated
// p2p fabric) driven by a seeded workload while a seeded fault scheduler
// crash-restarts nodes, partitions and heals the network, injects storage
// errors, and stalls peers. After the fault rounds every failpoint is
// disarmed, the network heals, crashed nodes restart from their on-disk
// state, and the cluster must CONVERGE: every node reaches the same epoch
// watermark and reports byte-for-byte identical state roots for every
// processed epoch, with each restarted node's recovered roots matching
// what the cluster had already agreed on.
//
// Determinism and replay: the workload, the fault schedule, and every
// probabilistic failpoint draw from the scenario seed, so a failing seed
// re-runs the same faults (goroutine interleaving — hence exact message
// timing — may vary, but convergence is required under EVERY
// interleaving; a seed that fails intermittently is still a real bug).
// Every Failure message embeds the nezha-chaos replay command.
//
// The harness deliberately keeps block production fork-free: only nodes
// that hold every block any live node holds may mine, and every mined
// block must be holdable by at least two non-stalled majority-side nodes,
// so the block DAG grows linearly and any state divergence is attributable
// to the injected faults rather than to probabilistic fork-choice finality
// (fork convergence under concurrent mining is
// TestGossipNetworkConvergesOnRoots' job). The two-holder rule counts only
// nodes that can actually receive the broadcast — a stalled node's armed
// delivery-drop makes it a holder on paper only (see mine) — otherwise a
// solo miner can persist a private lineage whose crash-replay later
// collides with the cluster's re-mined history (the seed-3 divergence,
// ROADMAP item 6). Faults still create real disagreement — crashed nodes
// lose their unpersisted ledger tail, partitioned and stalled nodes miss
// broadcasts — which the self-healing sync layer must repair.
//
// Failpoints are process-global, so scenarios must not run concurrently;
// Run executes its seed sweep sequentially.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/p2p"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// Scenario shape. Small fixed knobs live here rather than in Config: the
// harness's value is reproducibility, not tunability.
const (
	blocksPerRound  = 2
	blockTxs        = 20
	confirmDepth    = 2
	syncBatch       = 16
	workers         = 2
	crashForceAfter = 3 // rounds before an unfired crash failpoint becomes a hard kill
	syncRoundStep   = 25 * time.Millisecond
	convergeTimeout = 90 * time.Second
	minEpochs       = 3 // a converged run processing fewer epochs proved nothing
)

// crashSites are the failpoints a crash fault may arm; all sit on paths a
// live node exercises every round or two, so an armed ModePanic fires
// quickly (crashForceAfter is the backstop).
var crashSites = []fail.Name{
	fail.NodePersist,
	fail.NodeSubmit,
	fail.KVWALAppend,
	fail.NodeStageCommit,
}

// Config parameterizes one chaos scenario.
type Config struct {
	// Seed drives the workload, the fault schedule, failpoint probability,
	// and sync jitter. The replay key.
	Seed int64
	// Nodes is the cluster size. 0 means 4 (minimum 3: partitions need a
	// majority side that can keep mining).
	Nodes int
	// Chains is the OHIE parallel-chain count. 0 means 3.
	Chains int
	// Rounds is how many fault-active rounds run before the convergence
	// phase. 0 means 36 (minimum 24 so the mandatory fault windows fit).
	Rounds int
	// Accounts sizes the SmallBank workload's account set. 0 means 300.
	Accounts int
	// Dir is the scratch root for per-node LSM directories. Empty means a
	// temp directory that is removed when the scenario ends.
	Dir string
	// SnapshotExec switches every node to the legacy snapshot-copy
	// execution path instead of the MVCC view default — CI runs the sweep
	// once per mode, so an executor-specific convergence bug is pinned to
	// its executor.
	SnapshotExec bool
	// Mempool fronts every miner with the admission-controlled pool of
	// internal/mempool instead of the legacy flat pool, and adds
	// admission-fault injection to the schedule — the sweep then proves
	// convergence holds when block assembly runs through the new
	// ingestion path. Off keeps the schedule byte-identical to historical
	// seeds.
	Mempool bool
	// JournalDir, when set, receives every node's flight-recorder journal
	// (one <node>.journal per node) whether or not the scenario fails.
	// When empty, journals are dumped only on failure, into a preserved
	// temp directory named in the Failure.
	JournalDir string
	// Verbose, when set, receives the scenario's event log as it happens.
	Verbose io.Writer
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Nodes < 3 {
		c.Nodes = 3
	}
	if c.Chains <= 0 {
		c.Chains = 3
	}
	if c.Rounds < 24 {
		if c.Rounds != 0 {
			c.Rounds = 24
		} else {
			c.Rounds = 36
		}
	}
	if c.Accounts <= 0 {
		c.Accounts = 300
	}
	return c
}

// Failure is one scenario's verdict when the cluster misbehaved. Its
// message embeds everything needed to re-run the scenario.
type Failure struct {
	Seed  int64
	Round int
	Msg   string
	// JournalDir is where the per-node flight-recorder journals were
	// dumped (empty only if the dump itself failed).
	JournalDir string
	// Divergence is the first-divergence forensics report from pairwise
	// journal diffs — the earliest (epoch, kind) where two nodes recorded
	// different deterministic events. Empty when the journals agree (the
	// failure was a wedge or timeout, not a state split).
	Divergence string
}

// Error implements error with the replay command inline, mirroring
// internal/check's replayable failures.
func (f *Failure) Error() string {
	s := fmt.Sprintf("chaos: seed %d round %d: %s (reproduce: nezha-chaos replay -seed %d)",
		f.Seed, f.Round, f.Msg, f.Seed)
	if f.JournalDir != "" {
		s += "; journals: " + f.JournalDir
	}
	if f.Divergence != "" {
		s += "\n" + f.Divergence
	}
	return s
}

// Result reports one scenario.
type Result struct {
	Seed int64
	// Epochs is how many epochs the converged cluster processed.
	Epochs uint64
	// Blocks is how many blocks were mined and broadcast.
	Blocks int
	// CrashRestarts counts nodes killed (failpoint panic or forced) and
	// later restarted from their on-disk state.
	CrashRestarts int
	// Partitions counts partition/heal cycles.
	Partitions int
	// StorageErrors counts injected storage errors a node observed and
	// survived.
	StorageErrors int
	// MempoolFaults counts admission-fault windows armed against miner
	// pools (Config.Mempool scenarios only).
	MempoolFaults int
	// Stalls counts peer-stall faults (probabilistic delivery drops).
	Stalls int
	// Events is the scenario's fault/recovery log.
	Events []string
	// Failure is nil when the cluster converged.
	Failure *Failure
}

// faultKind enumerates the scheduler's fault repertoire.
type faultKind int

const (
	faultCrash faultKind = iota
	faultPartition
	faultStorage
	faultStall
	faultMempool
)

// fault is one scheduled fault: a preferred target (resolved to a live
// node at apply time) plus kind-specific parameters.
type fault struct {
	kind     faultKind
	node     int
	site     fail.Name // crash failpoint site
	duration int       // rounds down / partitioned / stalled
}

// pendingCrash tracks an armed crash failpoint that has not fired yet.
type pendingCrash struct {
	site    fail.Name
	forceAt int // round at which the arm becomes a hard kill
	downFor int
}

// chaosNode is one cluster member plus its harness bookkeeping.
type chaosNode struct {
	idx   int
	id    string
	dir   string
	addr  types.Address
	peers []string

	n      *node.Node
	store  kvstore.Store
	ep     *p2p.Endpoint
	miner  *node.Miner
	syncer *node.Syncer

	down         bool
	restartAt    int
	pending      *pendingCrash
	stalledUntil int
	mpFaultUntil int
}

// harness drives one scenario.
type harness struct {
	cfg      Config
	rng      *rand.Rand
	net      *p2p.Network
	nodes    []*chaosNode
	nodeCfg  node.Config
	txs      []*types.Transaction
	txCursor int
	schedule map[int][]fault

	// maxHeights[c] is the height of chain c in the authoritative mined
	// history (every broadcast block). Mining eligibility and the
	// convergence target both derive from it.
	maxHeights []uint64
	// agreed[e] is the first state root any node reported for epoch e;
	// every later report must match it byte for byte.
	agreed   map[uint64]types.Hash
	agreedBy map[uint64]string
	// armedSites maps failpoint name -> target node id while armed, so two
	// faults never fight over one site (Enable replaces).
	armedSites map[fail.Name]string
	// now is the virtual clock the syncer runs on; it advances a fixed
	// step per round so deadlines and backoff replay deterministically.
	now time.Time

	minority map[string]bool
	healAt   int

	res  *Result
	fail *Failure
}

// dbgHook, when non-nil, is invoked just before a convergence-timeout
// failure. Test-only diagnostics.
var dbgHook func(*harness)

// armHook, when non-nil, runs right after Run seeds the failpoint
// substrate (which resets it first). Test-only: forensics meta-tests use
// it to arm failpoints the fault schedule does not know about.
var armHook func()

// Run executes one scenario. The returned error reports harness setup
// problems (an unwritable scratch dir); cluster misbehavior is reported
// via Result.Failure so a sweep can keep going and collect seeds.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	root := cfg.Dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "nezha-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	fail.Reset()
	fail.Seed(cfg.Seed)
	defer fail.Reset()
	if armHook != nil {
		armHook()
	}

	// Fresh flight recorders for the scenario: every node journals from
	// block zero, and a failure dumps them all (see dumpJournals).
	journal.Reset()
	journal.Enable()
	defer journal.Disable()

	h := &harness{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		maxHeights: make([]uint64, cfg.Chains),
		agreed:     make(map[uint64]types.Hash),
		agreedBy:   make(map[uint64]string),
		armedSites: make(map[fail.Name]string),
		now:        time.Unix(0, 0).Add(time.Hour),
		res:        &Result{Seed: cfg.Seed},
	}
	if err := h.setup(root); err != nil {
		return nil, err
	}
	defer h.teardown()

	h.schedule = h.buildSchedule()
	for r := 0; r < cfg.Rounds && h.fail == nil; r++ {
		h.beginRound(r)
		for _, f := range h.schedule[r] {
			h.applyFault(r, f)
		}
		h.pump(r)
		h.mine(r)
		h.pump(r)
		h.process(r)
		h.syncStep()
		h.pump(r)
	}
	if h.fail == nil {
		h.converge()
	}
	h.dumpJournals()
	h.res.Failure = h.fail
	return h.res, nil
}

// dumpJournals writes every node's flight recorder to disk — always when
// the scenario asked for a journal directory, and on failure otherwise
// (into a preserved temp directory) — then runs pairwise diffs and embeds
// the earliest divergence in the Failure. Dump problems are reported as
// events, never as scenario failures: forensics must not mask the verdict.
func (h *harness) dumpJournals() {
	dir := h.cfg.JournalDir
	if dir == "" {
		if h.fail == nil {
			return
		}
		tmp, err := os.MkdirTemp("", "nezha-journal-")
		if err != nil {
			h.eventf(h.cfg.Rounds, "journal dump failed: %v", err)
			return
		}
		dir = tmp // deliberately preserved: it is the crash-dump artifact
	}
	if err := journal.DumpAll(dir); err != nil {
		h.eventf(h.cfg.Rounds, "journal dump failed: %v", err)
		return
	}
	if h.fail == nil {
		return
	}
	h.fail.JournalDir = dir
	// Pairwise first-divergence scan; report the earliest mismatch.
	recs := journal.Recorders()
	var first *journal.Divergence
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			d := journal.Diff(recs[i].Snapshot(), recs[j].Snapshot())
			if d == nil {
				continue
			}
			if first == nil || d.Epoch < first.Epoch {
				first = d
			}
		}
	}
	if first != nil {
		h.fail.Divergence = first.String()
	}
}

// setup builds the workload, the network, and the initial cluster.
func (h *harness) setup(root string) error {
	gen, err := workload.NewGenerator(workload.Config{
		Seed:     h.cfg.Seed,
		Accounts: uint64(h.cfg.Accounts),
		Skew:     0.5, InitialBalance: 1_000,
	})
	if err != nil {
		return err
	}
	h.txs = gen.Txs(h.cfg.Rounds * blocksPerRound * blockTxs)
	genesis, err := gen.GenesisWrites(h.txs)
	if err != nil {
		return err
	}
	h.nodeCfg = node.Config{
		Consensus:         consensus.Params{Chains: h.cfg.Chains},
		Workers:           workers,
		Contracts:         map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
		GenesisWrites:     genesis,
		ConfirmDepth:      confirmDepth,
		Persist:           true,
		SyncBatch:         syncBatch,
		SnapshotExecution: h.cfg.SnapshotExec,
	}
	if h.cfg.Mempool {
		// The defaults suit the scenario's scale (blockTxs per round per
		// miner); the generator's global nonce counter is sparse per
		// sender, so StrictNonce stays off.
		h.nodeCfg.Mempool = &mempool.Config{}
	}

	h.net = p2p.NewNetwork(p2p.Config{QueueLen: 512, Seed: h.cfg.Seed})
	ids := make([]string, h.cfg.Nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i)
	}
	for i, id := range ids {
		var peers []string
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		cn := &chaosNode{
			idx:   i,
			id:    id,
			dir:   filepath.Join(root, fmt.Sprintf("seed%d-%s", h.cfg.Seed, id)),
			addr:  types.AddressFromUint64(uint64(i + 1)),
			peers: peers,
		}
		if err := os.MkdirAll(cn.dir, 0o755); err != nil {
			return err
		}
		if cn.ep, err = h.net.Join(id); err != nil {
			return err
		}
		if err := h.open(cn); err != nil {
			return err
		}
		h.nodes = append(h.nodes, cn)
	}
	return nil
}

// open (re)opens a node over its LSM directory and rebuilds its miner and
// syncer. Used at setup and at crash restart; node.New restores any
// persisted state it finds.
func (h *harness) open(cn *chaosNode) error {
	opts := kvstore.DefaultLSMOptions()
	opts.FailTag = cn.id
	store, err := kvstore.OpenLSM(cn.dir, opts)
	if err != nil {
		return err
	}
	cfg := h.nodeCfg
	cfg.Scheduler = core.MustNewScheduler(core.DefaultConfig())
	n, err := node.New(cn.id, store, cfg)
	if err != nil {
		store.Close()
		return err
	}
	cn.store, cn.n = store, n
	cn.miner = node.NewMiner(n, cn.addr, blockTxs)
	cn.syncer = node.NewSyncer(n, cn.ep, cn.peers, node.SyncConfig{
		RequestTimeout: 40 * time.Millisecond,
		BackoffBase:    15 * time.Millisecond,
		BackoffMax:     120 * time.Millisecond,
		DemoteAfter:    2,
		Seed:           h.cfg.Seed + int64(cn.idx),
	})
	return nil
}

// teardown closes surviving stores and the network.
func (h *harness) teardown() {
	for _, cn := range h.nodes {
		if !cn.down && cn.store != nil {
			cn.store.Close()
		}
	}
	h.net.Close()
}

// buildSchedule precomputes the fault plan: one mandatory fault of every
// kind in disjoint round windows (so every seed exercises crash-restart,
// partition/heal, storage error, and peer stall at least once), plus
// seeded extras.
func (h *harness) buildSchedule() map[int][]fault {
	sched := make(map[int][]fault)
	add := func(r int, f fault) { sched[r] = append(sched[r], f) }
	pick := func(lo, hi int) int { return lo + h.rng.Intn(hi-lo) }
	R := h.cfg.Rounds

	add(pick(2, R/4), fault{kind: faultStorage, node: h.rng.Intn(h.cfg.Nodes)})
	add(pick(R/4, R/2), fault{
		kind: faultCrash, node: h.rng.Intn(h.cfg.Nodes),
		site: crashSites[h.rng.Intn(len(crashSites))], duration: 2 + h.rng.Intn(3),
	})
	add(pick(R/2, 3*R/4), fault{
		kind: faultPartition, node: h.rng.Intn(h.cfg.Nodes), duration: 3 + h.rng.Intn(3),
	})
	add(pick(3*R/4, R-2), fault{
		kind: faultStall, node: h.rng.Intn(h.cfg.Nodes), duration: 3,
	})
	// Mempool scenarios get one mandatory admission-fault window on top.
	// All mempool draws short-circuit on the flag, so non-mempool
	// schedules stay byte-identical to historical seeds.
	if h.cfg.Mempool {
		add(pick(2, R-2), fault{kind: faultMempool, node: h.rng.Intn(h.cfg.Nodes), duration: 2})
	}

	for r := 2; r < R-2; r++ {
		if h.rng.Float64() < 0.05 {
			add(r, fault{
				kind: faultCrash, node: h.rng.Intn(h.cfg.Nodes),
				site: crashSites[h.rng.Intn(len(crashSites))], duration: 2 + h.rng.Intn(3),
			})
		}
		if h.rng.Float64() < 0.08 {
			add(r, fault{kind: faultStorage, node: h.rng.Intn(h.cfg.Nodes)})
		}
		if h.rng.Float64() < 0.08 {
			add(r, fault{kind: faultStall, node: h.rng.Intn(h.cfg.Nodes), duration: 3})
		}
		if h.rng.Float64() < 0.04 {
			add(r, fault{kind: faultPartition, node: h.rng.Intn(h.cfg.Nodes), duration: 3})
		}
		if h.cfg.Mempool && h.rng.Float64() < 0.08 {
			add(r, fault{kind: faultMempool, node: h.rng.Intn(h.cfg.Nodes), duration: 2})
		}
	}
	return sched
}

// beginRound expires round-scoped conditions: heals due partitions,
// restarts due nodes, force-kills overdue crash arms, clears expired
// stalls.
func (h *harness) beginRound(r int) {
	if h.healAt != 0 && r >= h.healAt {
		h.net.Heal()
		h.minority, h.healAt = nil, 0
		h.eventf(r, "partition healed")
	}
	for _, cn := range h.nodes {
		if cn.down && r >= cn.restartAt {
			h.restart(r, cn)
			if h.fail != nil {
				return
			}
		}
		if !cn.down && cn.pending != nil && r >= cn.pending.forceAt {
			// The armed site was never hit (the node idled); crash it the
			// blunt way so the schedule's kill still happens.
			h.kill(r, cn, "forced kill, failpoint "+string(cn.pending.site)+" never fired")
		}
		if cn.stalledUntil != 0 && r >= cn.stalledUntil {
			if h.armedSites[fail.P2PDrop] == cn.id {
				fail.Disable(fail.P2PDrop)
				delete(h.armedSites, fail.P2PDrop)
			}
			cn.stalledUntil = 0
		}
		if cn.mpFaultUntil != 0 && r >= cn.mpFaultUntil {
			if h.armedSites[fail.MempoolAdmit] == cn.id {
				fail.Disable(fail.MempoolAdmit)
				delete(h.armedSites, fail.MempoolAdmit)
			}
			cn.mpFaultUntil = 0
		}
	}
}

// applyFault arms one scheduled fault, retargeting or skipping when the
// cluster state makes it unsafe (someone already down, site already armed).
func (h *harness) applyFault(r int, f fault) {
	switch f.kind {
	case faultCrash:
		if h.anyDownOrPending() {
			return // one crash in flight at a time keeps every block replicated
		}
		cn := h.pickAlive(f.node)
		if cn == nil {
			return
		}
		if _, taken := h.armedSites[f.site]; taken {
			return
		}
		fail.Enable(f.site, fail.Spec{Mode: fail.ModePanic, Tag: cn.id, Count: 1})
		h.armedSites[f.site] = cn.id
		cn.pending = &pendingCrash{site: f.site, forceAt: r + crashForceAfter, downFor: f.duration}
		h.journalFault(cn, "crash", string(f.site))
		h.eventf(r, "armed crash failpoint %s@%s", f.site, cn.id)
	case faultStorage:
		cn := h.pickAlive(f.node)
		if cn == nil {
			return
		}
		if _, taken := h.armedSites[fail.KVApply]; taken {
			return
		}
		fail.Enable(fail.KVApply, fail.Spec{Mode: fail.ModeError, Tag: cn.id, Count: 1})
		h.armedSites[fail.KVApply] = cn.id
		h.journalFault(cn, "storage", string(fail.KVApply))
		h.eventf(r, "armed storage error kvstore/apply@%s", cn.id)
	case faultPartition:
		if h.healAt != 0 {
			return
		}
		cn := h.pickAlive(f.node)
		if cn == nil {
			return
		}
		h.minority = map[string]bool{cn.id: true}
		h.net.Partition([]string{cn.id})
		h.healAt = r + f.duration
		h.journalFault(cn, "partition", "")
		h.res.Partitions++
		h.eventf(r, "partitioned %s away for %d rounds", cn.id, f.duration)
	case faultStall:
		cn := h.pickAlive(f.node)
		if cn == nil {
			return
		}
		if _, taken := h.armedSites[fail.P2PDrop]; taken {
			return
		}
		fail.Enable(fail.P2PDrop, fail.Spec{Mode: fail.ModeDrop, Tag: cn.id, Prob: 0.8, Count: 20})
		h.armedSites[fail.P2PDrop] = cn.id
		cn.stalledUntil = r + f.duration
		h.journalFault(cn, "stall", string(fail.P2PDrop))
		h.res.Stalls++
		h.eventf(r, "stalling deliveries to %s for %d rounds", cn.id, f.duration)
	case faultMempool:
		if !h.cfg.Mempool {
			return
		}
		cn := h.pickAlive(f.node)
		if cn == nil {
			return
		}
		if _, taken := h.armedSites[fail.MempoolAdmit]; taken {
			return
		}
		// Probabilistic admission errors against one miner's pool: some of
		// its fed transactions never enter a block. Convergence must hold
		// anyway — admission shapes block content, never block execution.
		fail.Enable(fail.MempoolAdmit, fail.Spec{Mode: fail.ModeError, Tag: cn.id, Prob: 0.5, Count: 10})
		h.armedSites[fail.MempoolAdmit] = cn.id
		cn.mpFaultUntil = r + f.duration
		h.journalFault(cn, "mempool", string(fail.MempoolAdmit))
		h.res.MempoolFaults++
		h.eventf(r, "admission faults at %s for %d rounds", cn.id, f.duration)
	}
}

// pickAlive resolves a preferred node index to a live node, scanning
// forward so the choice stays deterministic.
func (h *harness) pickAlive(idx int) *chaosNode {
	for i := 0; i < len(h.nodes); i++ {
		cn := h.nodes[(idx+i)%len(h.nodes)]
		if !cn.down {
			return cn
		}
	}
	return nil
}

func (h *harness) anyDownOrPending() bool {
	for _, cn := range h.nodes {
		if cn.down || cn.pending != nil {
			return true
		}
	}
	return false
}

// guard runs op on a live node, translating an injected crash panic into a
// kill, an injected error into a survived storage fault, and anything else
// into a scenario failure.
func (h *harness) guard(r int, cn *chaosNode, op func() error) {
	if cn.down || h.fail != nil {
		return
	}
	var err error
	crashed := false
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				if !fail.IsCrash(rec) {
					panic(rec)
				}
				crashed = true
			}
		}()
		err = op()
	}()
	if crashed {
		h.kill(r, cn, "crash failpoint fired")
		return
	}
	if err == nil {
		return
	}
	if errors.Is(err, fail.ErrInjected) {
		h.res.StorageErrors++
		delete(h.armedSites, "kvstore/apply")
		h.eventf(r, "%s survived injected error: %v", cn.id, err)
		return
	}
	h.failf(r, "%s: %v", cn.id, err)
}

// kill simulates SIGKILL: the node's in-memory state is abandoned (the
// store is deliberately NOT closed — a crash does not flush), the endpoint
// goes down, and a restart is scheduled.
func (h *harness) kill(r int, cn *chaosNode, why string) {
	downFor := 3
	if cn.pending != nil {
		fail.Disable(cn.pending.site)
		delete(h.armedSites, cn.pending.site)
		downFor = cn.pending.downFor
		cn.pending = nil
	}
	if h.armedSites["kvstore/apply"] == cn.id {
		// A dead node cannot observe its armed storage error; disarm so the
		// site frees up for later faults.
		fail.Disable("kvstore/apply")
		delete(h.armedSites, "kvstore/apply")
	}
	if h.armedSites[fail.MempoolAdmit] == cn.id {
		// Likewise its admission faults: the pool died with the miner.
		fail.Disable(fail.MempoolAdmit)
		delete(h.armedSites, fail.MempoolAdmit)
		cn.mpFaultUntil = 0
	}
	cn.down = true
	cn.restartAt = r + downFor
	journal.For(cn.id).Emit(journal.ChaosKill, 0, journal.FS("why", why))
	h.net.SetDown(cn.id, true)
	cn.n, cn.store, cn.miner, cn.syncer = nil, nil, nil, nil
	h.res.CrashRestarts++
	h.eventf(r, "%s crashed (%s), restart at round %d", cn.id, why, cn.restartAt)
}

// restart reopens a crashed node from its LSM directory and checks the
// recovered state against everything the cluster has agreed on: a restored
// root that differs from the agreed root for the same epoch means the
// crash tore durability.
func (h *harness) restart(r int, cn *chaosNode) {
	if err := h.open(cn); err != nil {
		h.failf(r, "restart %s: %v", cn.id, err)
		return
	}
	for e, want := range h.agreed {
		got, ok := cn.n.RootAt(e)
		if ok && got != want {
			h.failf(r, "restarted %s recovered root %s for epoch %d, cluster agreed on %s",
				cn.id, got.Short(), e, want.Short())
			return
		}
	}
	cn.ep.Drain()
	h.net.SetDown(cn.id, false)
	cn.down = false
	journal.For(cn.id).Emit(journal.ChaosRestart, cn.n.NextEpoch())
	h.eventf(r, "%s restarted at epoch %d", cn.id, cn.n.NextEpoch())
}

// aliveMax returns the per-chain maximum height over live nodes — the
// catch-up target (a crashed node may have taken the global tip down with
// it; what matters is what the live cluster can still serve).
func (h *harness) aliveMax() []uint64 {
	max := make([]uint64, h.cfg.Chains)
	for _, cn := range h.nodes {
		if cn.down {
			continue
		}
		for c := 0; c < h.cfg.Chains; c++ {
			if hgt := cn.n.Ledger().Height(uint32(c)); hgt > max[c] {
				max[c] = hgt
			}
		}
	}
	return max
}

// caughtUp reports whether a node holds every chain at the live maximum.
func (h *harness) caughtUp(cn *chaosNode, max []uint64) bool {
	for c := 0; c < h.cfg.Chains; c++ {
		if cn.n.Ledger().Height(uint32(c)) < max[c] {
			return false
		}
	}
	return true
}

// mine produces this round's blocks. Only fully-caught-up majority-side
// nodes are eligible — the fork-free discipline documented in the package
// comment — and at least two such nodes must be able to HOLD the block so
// no mined block can ever have a single holder. Stalled nodes are excluded
// from that holder count, not just from candidacy: a stalled node's armed
// delivery-drop makes it a holder on paper only, and a sole candidate
// mining into stalled and partitioned peers builds a private lineage that
// it alone persists — which a later crash-replay resurrects against the
// cluster's re-mined history of those heights. That resurrection was the
// seed-3 divergence (ROADMAP item 6; regression-tested in
// TestCrashReplayResurrectionConverges).
func (h *harness) mine(r int) {
	for i := 0; i < blocksPerRound && h.fail == nil; i++ {
		max := h.aliveMax()
		var candidates []*chaosNode
		majority := 0
		for _, cn := range h.nodes {
			if cn.down || h.minority[cn.id] || cn.stalledUntil != 0 {
				continue
			}
			majority++
			if h.caughtUp(cn, max) {
				candidates = append(candidates, cn)
			}
		}
		if majority < 2 || len(candidates) == 0 {
			return // nobody can safely mine this round; sync will catch up
		}
		cn := candidates[h.rng.Intn(len(candidates))]
		if h.txCursor < len(h.txs) {
			end := h.txCursor + blockTxs
			if end > len(h.txs) {
				end = len(h.txs)
			}
			// Guarded: with the mempool front end, feeding the pool runs
			// admission (and its failpoint) rather than a plain append.
			batch := h.txs[h.txCursor:end]
			h.guard(r, cn, func() error {
				cn.miner.AddTxs(batch)
				return nil
			})
			h.txCursor = end
			if cn.down {
				continue
			}
		}
		b, err := cn.miner.Mine(context.Background())
		if err != nil {
			h.failf(r, "%s mine: %v", cn.id, err)
			return
		}
		submitted := false
		h.guard(r, cn, func() error {
			if err := cn.n.SubmitBlock(b); err != nil {
				return err
			}
			submitted = true
			return nil
		})
		if !submitted || cn.down {
			continue // crashed or failed on ingest: the block dies with it
		}
		cn.ep.Broadcast(p2p.Message{Type: p2p.MsgBlock, Block: b})
		c := int(b.Header.ChainID)
		if b.Header.Height != h.maxHeights[c]+1 && b.Header.Height > h.maxHeights[c] {
			h.failf(r, "mined block skipped heights on chain %d: %d after %d",
				c, b.Header.Height, h.maxHeights[c])
			return
		}
		if b.Header.Height > h.maxHeights[c] {
			h.maxHeights[c] = b.Header.Height
		}
		h.res.Blocks++
	}
}

// pump drains every live inbox until two consecutive quiet sweeps — the
// same quiescence rule the gossip convergence test uses, so in-flight
// deliveries land before anyone processes.
func (h *harness) pump(r int) {
	for quiet, sweeps := 0, 0; quiet < 2 && h.fail == nil; sweeps++ {
		if sweeps > 400 {
			// A healthy round quiesces in a handful of sweeps; hundreds mean
			// a message livelock (e.g. a sync exchange that never terminates).
			// Fail with state instead of hanging the harness.
			if dbgHook != nil {
				dbgHook(h)
			}
			h.failf(r, "network failed to quiesce after %d sweeps: %s", sweeps, h.describeNodes())
			return
		}
		moved := 0
		for _, cn := range h.nodes {
			moved += h.drain(r, cn)
			if h.fail != nil {
				return
			}
		}
		if moved == 0 {
			quiet++
		} else {
			quiet = 0
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// drain empties one node's inbox; a node crashing mid-drain keeps its
// remaining messages queued (Drain discards them at restart).
func (h *harness) drain(r int, cn *chaosNode) int {
	moved := 0
	for !cn.down && h.fail == nil {
		select {
		case msg := <-cn.ep.Inbox():
			moved++
			h.dispatch(r, cn, msg)
		default:
			return moved
		}
	}
	return moved
}

// benign reports ledger errors that gossip and sync tolerate by design.
func benign(err error) bool {
	return errors.Is(err, dag.ErrDuplicateBlock) ||
		errors.Is(err, dag.ErrBelowFinal) ||
		errors.Is(err, dag.ErrUnknownParent)
}

// journalFault records an armed fault in the target node's journal —
// chaos/* events are forensic context, tying what the harness did to
// what the node subsequently recorded.
func (h *harness) journalFault(cn *chaosNode, kind, site string) {
	fields := []journal.Field{journal.FS("kind", kind)}
	if site != "" {
		fields = append(fields, journal.FS("site", site))
	}
	journal.For(cn.id).Emit(journal.ChaosFault, 0, fields...)
}

func (h *harness) dispatch(r int, cn *chaosNode, msg p2p.Message) {
	// A delivered message carries the sender's logical clock: witnessing it
	// makes cross-node journal timelines causally comparable.
	if msg.From != "" && journal.Enabled() {
		journal.For(cn.id).Witness(journal.For(msg.From).Clock())
	}
	switch msg.Type {
	case p2p.MsgBlock:
		h.guard(r, cn, func() error {
			if err := cn.n.SubmitBlock(msg.Block); err != nil && !benign(err) {
				return err
			}
			return nil
		})
	case p2p.MsgGetBlocks:
		cn.n.HandleSyncRequest(cn.ep, msg)
	case p2p.MsgBlocks:
		h.guard(r, cn, func() error {
			if _, err := cn.syncer.HandleBlocks(h.now, msg); err != nil && !benign(err) {
				return err
			}
			return nil
		})
	}
}

// process lets every live node fold its ready epochs and records the
// resulting roots against the cluster agreement.
func (h *harness) process(r int) {
	for _, cn := range h.nodes {
		if cn.down || h.fail != nil {
			continue
		}
		var results []*node.EpochResult
		h.guard(r, cn, func() error {
			var err error
			results, err = cn.n.ProcessReadyEpochs()
			return err
		})
		if cn.down || h.fail != nil {
			continue
		}
		h.recordRoots(r, cn, results)
	}
}

// recordRoots checks every processed epoch's root against the first root
// any node reported for that epoch. Divergence here is the harness's core
// assertion: deterministic processing over an eventually-identical block
// set must yield identical roots.
func (h *harness) recordRoots(r int, cn *chaosNode, results []*node.EpochResult) {
	for _, res := range results {
		if prev, ok := h.agreed[res.Epoch]; ok {
			if prev != res.StateRoot {
				h.failf(r, "state divergence at epoch %d: %s computed %s but %s computed %s",
					res.Epoch, cn.id, res.StateRoot.Short(), h.agreedBy[res.Epoch], prev.Short())
				return
			}
			continue
		}
		h.agreed[res.Epoch] = res.StateRoot
		h.agreedBy[res.Epoch] = cn.id
	}
}

// syncStep advances the virtual clock one round and ticks the syncer of
// every live node that is behind the live maximum: deadlines expire,
// backoff elapses, rotation and pagination proceed.
func (h *harness) syncStep() {
	h.now = h.now.Add(syncRoundStep)
	max := h.aliveMax()
	for _, cn := range h.nodes {
		if cn.down {
			continue
		}
		if !h.caughtUp(cn, max) {
			cn.syncer.Tick(h.now)
		}
	}
}

// converge is the final phase: disarm everything, heal, restart the dead,
// then drive pump/process/sync until every node holds the same chains and
// the same watermark — or the timeout declares the cluster wedged. Then
// every node must report identical roots for every processed epoch.
func (h *harness) converge() {
	fail.Reset()
	h.armedSites = make(map[fail.Name]string)
	h.net.Heal()
	h.minority, h.healAt = nil, 0
	r := h.cfg.Rounds
	for _, cn := range h.nodes {
		cn.pending = nil
		cn.stalledUntil = 0
		cn.mpFaultUntil = 0
		if cn.down {
			h.restart(r, cn)
			if h.fail != nil {
				return
			}
		}
	}

	deadline := time.Now().Add(convergeTimeout)
	for {
		h.pump(r)
		h.process(r)
		if h.fail != nil {
			return
		}
		max := h.aliveMax()
		done := true
		var epoch uint64
		for i, cn := range h.nodes {
			if !h.caughtUp(cn, max) {
				done = false
				break
			}
			if i == 0 {
				epoch = cn.n.NextEpoch()
			} else if cn.n.NextEpoch() != epoch {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			if dbgHook != nil {
				dbgHook(h)
			}
			h.failf(r, "no convergence: %s", h.describeNodes())
			return
		}
		h.syncStep()
	}

	target := h.nodes[0].n.NextEpoch()
	if target-1 < minEpochs {
		h.failf(r, "converged after only %d epochs; the scenario proved nothing", target-1)
		return
	}
	h.res.Epochs = target - 1
	for e := uint64(0); e < target; e++ {
		ref, ok := h.nodes[0].n.RootAt(e)
		if !ok {
			h.failf(r, "%s has no root for epoch %d", h.nodes[0].id, e)
			return
		}
		if agreed, ok := h.agreed[e]; ok && agreed != ref {
			h.failf(r, "epoch %d final root %s contradicts the agreed root %s",
				e, ref.Short(), agreed.Short())
			return
		}
		for _, cn := range h.nodes[1:] {
			got, ok := cn.n.RootAt(e)
			if !ok {
				h.failf(r, "%s has no root for epoch %d", cn.id, e)
				return
			}
			if got != ref {
				h.failf(r, "epoch %d: %s root %s != %s root %s",
					e, cn.id, got.Short(), h.nodes[0].id, ref.Short())
				return
			}
		}
	}
	h.eventf(r, "converged: %d epochs, %d blocks, roots identical on all %d nodes",
		h.res.Epochs, h.res.Blocks, len(h.nodes))
}

// describeNodes summarizes per-node progress for failure messages.
func (h *harness) describeNodes() string {
	s := ""
	for _, cn := range h.nodes {
		if s != "" {
			s += "; "
		}
		if cn.down {
			s += fmt.Sprintf("%s down", cn.id)
			continue
		}
		s += fmt.Sprintf("%s epoch %d heights", cn.id, cn.n.NextEpoch())
		for c := 0; c < h.cfg.Chains; c++ {
			s += fmt.Sprintf(" %d", cn.n.Ledger().Height(uint32(c)))
		}
	}
	return s
}

func (h *harness) eventf(r int, format string, args ...any) {
	ev := fmt.Sprintf("round %d: %s", r, fmt.Sprintf(format, args...))
	h.res.Events = append(h.res.Events, ev)
	if h.cfg.Verbose != nil {
		fmt.Fprintln(h.cfg.Verbose, ev)
	}
}

// failf records the scenario's first failure; later faults and assertions
// are moot once the cluster is known bad.
func (h *harness) failf(r int, format string, args ...any) {
	if h.fail != nil {
		return
	}
	h.fail = &Failure{Seed: h.cfg.Seed, Round: r, Msg: fmt.Sprintf(format, args...)}
	if h.cfg.Verbose != nil {
		fmt.Fprintln(h.cfg.Verbose, "FAIL:", h.fail.Error())
	}
}
