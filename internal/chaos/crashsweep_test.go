package chaos

import (
	"strings"
	"testing"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/kvstore"
)

// TestCrashSweepAllSites runs the full crash-point sweep: every registered
// failpoint site that can crash a node, plus the torn-WAL offsets and the
// planted-corruption trial. A failure here means some crash point leaves a
// restarted node that does not converge back to a never-crashed replica —
// the invariant the whole recovery story rests on.
func TestCrashSweepAllSites(t *testing.T) {
	fail.Reset()
	defer fail.Reset()

	tornBefore := kvstore.WALTornTails()
	cfg := CrashSweepConfig{Dir: t.TempDir()}
	rep, err := CrashSweep(cfg)
	if err != nil {
		t.Fatalf("sweep setup: %v", err)
	}
	if delta := kvstore.WALTornTails() - tornBefore; delta < 1 {
		t.Errorf("torn-WAL trials never tripped nezha_wal_torn_tail_total (delta %.0f)", delta)
	}
	for _, tr := range rep.Trials {
		if tr.Err != "" {
			t.Errorf("trial %s: %s", tr.Name, tr.Err)
		}
	}
	t.Log(rep.Summary())

	// Shape: one trial per non-exempt site, the promised >=4 torn offsets,
	// and the corruption-rejection trial.
	wantSites := len(fail.AllNames()) - len(rep.Exempt)
	sites, torn, corrupt := 0, 0, 0
	for _, tr := range rep.Trials {
		switch {
		case strings.HasPrefix(tr.Name, "site:"):
			sites++
			if tr.Crashes == 0 && tr.Err == "" {
				t.Errorf("trial %s reported success without a single crash", tr.Name)
			}
		case strings.HasPrefix(tr.Name, "torn-wal:"):
			torn++
		case tr.Name == "corrupt-wal":
			corrupt++
		default:
			t.Errorf("unrecognized trial name %q", tr.Name)
		}
	}
	if sites != wantSites {
		t.Errorf("swept %d sites, want %d (registry %d minus %d exempt)",
			sites, wantSites, len(fail.AllNames()), len(rep.Exempt))
	}
	if torn < 4 {
		t.Errorf("swept %d torn-WAL offsets, want >= 4", torn)
	}
	if corrupt != 1 {
		t.Errorf("got %d corrupt-wal trials, want 1", corrupt)
	}
}

// TestCrashSweepCoversRegistry pins the sweep's exhaustiveness without
// running trials: every registered failpoint name must either produce a
// trial spec or carry an explicit exemption with a reason.
func TestCrashSweepCoversRegistry(t *testing.T) {
	cfg := CrashSweepConfig{}.withDefaults()
	specs, err := crashSweepSpecs(cfg)
	if err != nil {
		t.Fatalf("crashSweepSpecs: %v", err)
	}
	swept := map[string]bool{}
	for _, sp := range specs {
		if sp.site != "" {
			swept[string(sp.site)] = true
		}
	}
	for _, name := range fail.AllNames() {
		reason, exempt := sweepExemptions[name]
		switch {
		case exempt && swept[string(name)]:
			t.Errorf("site %s is both swept and exempted (%q)", name, reason)
		case exempt && reason == "":
			t.Errorf("site %s is exempted without a reason", name)
		case !exempt && !swept[string(name)]:
			t.Errorf("site %s is neither swept nor exempted", name)
		}
	}
}
