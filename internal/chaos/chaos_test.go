package chaos

import (
	"strings"
	"testing"
)

// TestScenarioConverges runs single seeded scenarios end to end: faults
// fire, the cluster heals, and every node ends on identical per-epoch
// roots. Each seed is a subtest so a failure names its replay seed.
func TestScenarioConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos scenario")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(strings.Join([]string{"seed", string(rune('0' + seed))}, ""), func(t *testing.T) {
			res, err := Run(Config{Seed: seed, Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			if res.Failure != nil {
				for _, ev := range res.Events {
					t.Log(ev)
				}
				t.Fatal(res.Failure.Error())
			}
			if res.Epochs < minEpochs {
				t.Fatalf("only %d epochs processed", res.Epochs)
			}
			if res.CrashRestarts < 1 || res.Partitions < 1 || res.StorageErrors < 1 || res.Stalls < 1 {
				t.Fatalf("mandatory faults missing: %d crashes, %d partitions, %d storage errors, %d stalls\n%s",
					res.CrashRestarts, res.Partitions, res.StorageErrors, res.Stalls,
					strings.Join(res.Events, "\n"))
			}
		})
	}
}

// TestScenarioReplaysDeterministically: the same seed must produce the
// same fault schedule and the same converged chain — the property the
// replay CLI relies on. Message timing may vary between runs, so only
// seed-derived quantities are compared.
func TestScenarioReplaysDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos scenario")
	}
	a, err := Run(Config{Seed: 7, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 7, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Failure != nil || b.Failure != nil {
		t.Fatalf("seed 7 failed: %v / %v", a.Failure, b.Failure)
	}
	if a.Partitions != b.Partitions || a.Stalls != b.Stalls {
		t.Fatalf("fault schedule diverged between identical seeds: %+v vs %+v", a, b)
	}
}

// TestSweepAggregates runs a tiny sweep through the CI entry point.
func TestSweepAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos sweep")
	}
	rep, err := Sweep(SweepConfig{
		StartSeed: 100,
		Seeds:     2,
		Scenario:  Config{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Error(f.Error())
		}
		t.FailNow()
	}
	if rep.Trials != 2 || rep.Epochs == 0 {
		t.Fatalf("sweep under-reported: %s", rep.Summary())
	}
}

// TestScenarioMempoolConverges runs the sweep's mempool mode: miners
// front the admission-controlled pool, admission faults drop fed
// transactions at one node, and convergence must hold regardless —
// admission shapes block content, never block execution.
func TestScenarioMempoolConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos scenario")
	}
	res, err := Run(Config{Seed: 5, Dir: t.TempDir(), Mempool: true})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if res.Failure != nil {
		for _, ev := range res.Events {
			t.Log(ev)
		}
		t.Fatal(res.Failure.Error())
	}
	if res.MempoolFaults < 1 {
		t.Fatalf("mempool mode armed no admission faults\n%s", strings.Join(res.Events, "\n"))
	}
	if res.Epochs < minEpochs {
		t.Fatalf("only %d epochs processed", res.Epochs)
	}
}
