package chaos

import (
	"math/rand"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/types"
)

// TestCrashReplayResurrectionConverges is the deterministic regression
// test for ROADMAP item 6, the chaos seed-3 flake. The bug: mine()'s
// two-holder majority rule counted stalled nodes, although an armed
// delivery-drop means a stalled node never actually holds the broadcast.
// Under the right fault alignment — one node down, one stalled, one
// partitioned — the remaining node passed the majority check alone,
// solo-mined a private lineage, processed and persisted epochs built from
// it (becoming the agreed root reporter), and then crashed; the healed
// cluster re-mined those heights with different transactions and diverged
// from the dead node's agreed roots.
//
// Loaded CI runs hit that alignment ~1 in 25 times through probabilistic
// drop draws. This test forces it directly with failpoints and scripted
// harness state: the drop spec uses Prob 0 (always fire), so the window is
// exercised on every run regardless of scheduling. With the mine() fix the
// lone node is no longer eligible (a stalled peer does not count as a
// holder), nothing private is ever persisted, and the cluster converges.
func TestCrashReplayResurrectionConverges(t *testing.T) {
	fail.Reset()
	fail.Seed(3)
	defer fail.Reset()
	journal.Reset()
	journal.Enable()
	defer journal.Disable()

	// Two chains keep the solo-mining window short: the forced window must
	// mine deep enough past the pre-window heights for a private epoch to
	// clear confirmDepth on every chain.
	cfg := Config{Seed: 3, Nodes: 4, Chains: 2, Dir: t.TempDir()}
	cfg = cfg.withDefaults()
	h := newScriptedHarness(t, cfg)
	defer h.teardown()

	r := 0
	step := func() {
		if h.fail != nil {
			return
		}
		h.beginRound(r)
		h.pump(r)
		h.mine(r)
		h.pump(r)
		h.process(r)
		h.syncStep()
		h.pump(r)
		r++
	}

	// Healthy shared history first, so the forced window has committed
	// epochs behind it.
	for i := 0; i < 6; i++ {
		step()
	}
	if h.fail != nil {
		t.Fatalf("base history failed: %v", h.fail.Error())
	}

	// Force the seed-3 fault alignment at round 6: n3 dead, n0 stalled
	// behind an always-fire delivery drop, n2 partitioned away — n1 is the
	// only node that can actually hold a new block.
	n0, n1, n2, n3 := h.nodes[0], h.nodes[1], h.nodes[2], h.nodes[3]
	h.kill(r, n3, "scripted crash")
	n3.restartAt = 20
	fail.Enable(fail.P2PDrop, fail.Spec{Mode: fail.ModeDrop, Tag: n0.id, Count: 1 << 20})
	h.armedSites[fail.P2PDrop] = n0.id
	n0.stalledUntil = 14
	h.minority = map[string]bool{n2.id: true}
	h.net.Partition([]string{n2.id})
	h.healAt = 14

	// The window: under the pre-fix eligibility rule n1 passes the
	// majority check alone here (stalled n0 still counted as a holder),
	// solo-mines six rounds of private blocks, and persists epochs built
	// from them. Under the fixed rule nothing mines in these rounds.
	for i := 0; i < 6; i++ {
		step()
	}

	// Crash n1 through the stage-commit failpoint — the crash-replay the
	// seed-3 forensics implicated — then keep the cluster running: the
	// heal at round 14 lets n0 and n2 mine those heights themselves while
	// n1 is down, colliding with any roots n1 persisted and agreed.
	fail.Enable(fail.NodeStageCommit, fail.Spec{Mode: fail.ModePanic, Tag: n1.id, Count: 1})
	h.armedSites[fail.NodeStageCommit] = n1.id
	n1.pending = &pendingCrash{site: fail.NodeStageCommit, forceAt: r + crashForceAfter, downFor: 6}
	for i := 0; i < 12; i++ {
		step()
	}

	if h.fail == nil {
		h.converge()
	}
	if h.fail != nil {
		t.Fatalf("cluster failed to converge through the forced crash-replay interleaving: %v", h.fail.Error())
	}
	if h.res.Epochs < minEpochs {
		t.Fatalf("converged after only %d epochs; the forced window proved nothing", h.res.Epochs)
	}
	if h.res.CrashRestarts < 2 {
		t.Fatalf("expected both scripted crash-restarts, got %d", h.res.CrashRestarts)
	}
}

// newScriptedHarness builds a harness the way Run does, minus the seeded
// fault schedule — scripted tests drive rounds and arm faults themselves.
func newScriptedHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		maxHeights: make([]uint64, cfg.Chains),
		agreed:     make(map[uint64]types.Hash),
		agreedBy:   make(map[uint64]string),
		armedSites: make(map[fail.Name]string),
		now:        time.Unix(0, 0).Add(time.Hour),
		res:        &Result{Seed: cfg.Seed},
	}
	if err := h.setup(cfg.Dir); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return h
}
