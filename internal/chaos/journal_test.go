package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
)

// TestForcedDivergenceYieldsForensics is the end-to-end meta-test for the
// flight recorder: force a real single-node root divergence (the
// node/diverge-root failpoint flips one bit of one reported epoch root),
// let the harness detect it, and require the Failure to carry per-node
// journal dumps plus a first-divergence report that names the earliest
// mismatched deterministic event.
func TestForcedDivergenceYieldsForensics(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos scenario")
	}
	armHook = func() {
		fail.Enable(fail.NodeDivergeRoot, fail.Spec{Mode: fail.ModeError, Tag: "n1", Count: 1})
	}
	defer func() { armHook = nil }()

	res, err := Run(Config{Seed: 5, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	f := res.Failure
	if f == nil {
		t.Fatal("perturbed root did not fail the scenario")
	}
	if !strings.Contains(f.Msg, "state divergence") {
		t.Fatalf("failure is not a state divergence: %s", f.Msg)
	}

	if f.JournalDir == "" {
		t.Fatal("failure carries no journal dump directory")
	}
	defer os.RemoveAll(f.JournalDir) // the preserved crash-dump artifact
	entries, err := os.ReadDir(f.JournalDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("dumped %d journals, want one per node (4)", len(entries))
	}
	var n1Committed bool
	for _, de := range entries {
		evs, err := journal.ReadFile(filepath.Join(f.JournalDir, de.Name()))
		if err != nil {
			t.Fatalf("unparseable journal %s: %v", de.Name(), err)
		}
		if len(evs) == 0 {
			t.Fatalf("journal %s is empty", de.Name())
		}
		for _, e := range evs {
			if e.Node == "n1" && e.Kind == journal.NodeEpochCommit {
				n1Committed = true
			}
		}
	}
	if !n1Committed {
		t.Fatal("n1's journal has no epoch-commit events to diverge on")
	}

	if f.Divergence == "" {
		t.Fatal("failure carries no first-divergence report")
	}
	for _, want := range []string{"first divergence", string(journal.NodeEpochCommit), "n1"} {
		if !strings.Contains(f.Divergence, want) {
			t.Errorf("divergence report missing %q:\n%s", want, f.Divergence)
		}
	}
	if !strings.Contains(f.Error(), "journals: "+f.JournalDir) {
		t.Errorf("Failure.Error() does not name the journal dir:\n%s", f.Error())
	}
}

// TestJournalDumpOnRequest: a passing scenario with JournalDir set still
// dumps every node's journal, and pairwise diffs find nothing.
func TestJournalDumpOnRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos scenario")
	}
	dir := t.TempDir()
	res, err := Run(Config{Seed: 2, Dir: t.TempDir(), JournalDir: dir})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if res.Failure != nil {
		t.Fatal(res.Failure.Error())
	}
	var journals [][]journal.Event
	for _, node := range []string{"n0", "n1", "n2", "n3"} {
		evs, err := journal.ReadFile(filepath.Join(dir, node+".journal"))
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		if len(evs) == 0 {
			t.Fatalf("%s journal is empty", node)
		}
		journals = append(journals, evs)
	}
	for i := range journals {
		for j := i + 1; j < len(journals); j++ {
			if d := journal.Diff(journals[i], journals[j]); d != nil {
				t.Errorf("converged cluster's journals diverge:\n%s", d.String())
			}
		}
	}
}
