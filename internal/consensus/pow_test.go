package consensus

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

// Ledger-coupled mining behaviour is exercised in internal/dag's tests
// (the dag package imports consensus there to avoid a cycle); this file
// covers the pure functions.

func TestMeetsTargetBoundaries(t *testing.T) {
	var h types.Hash
	if !MeetsTarget(h, 0) {
		t.Fatal("difficulty 0 must always pass")
	}
	if !MeetsTarget(h, 64) {
		t.Fatal("zero hash fails 64 bits")
	}
	h[0] = 0x80 // first bit set
	if MeetsTarget(h, 1) {
		t.Fatal("set first bit passed 1-bit target")
	}
	h[0] = 0x40 // second bit set
	if !MeetsTarget(h, 1) || MeetsTarget(h, 2) {
		t.Fatal("bit-level boundary wrong")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Chains: 1, DifficultyBits: 0}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{
		{Chains: 0},
		{Chains: 1, DifficultyBits: -1},
		{Chains: 1, DifficultyBits: 65},
	} {
		if err := p.Validate(); err == nil {
			t.Fatalf("%+v accepted", p)
		}
	}
}

func TestVerifyPoW(t *testing.T) {
	b := &types.Block{Header: types.BlockHeader{Nonce: 1}}
	if err := VerifyPoW(b, Params{Chains: 1, DifficultyBits: 0}); err != nil {
		t.Fatal(err)
	}
	// A 64-bit target is unreachable for a fixed nonce.
	if err := VerifyPoW(b, Params{Chains: 1, DifficultyBits: 64}); err == nil {
		t.Fatal("impossible difficulty passed")
	}
}
