// Package consensus implements the simulated Nakamoto proof-of-work that
// drives the OHIE ledger: target-based SHA-256 mining with OHIE's
// post-mining chain assignment (the miner commits to every chain's tip and
// the nonce's hash decides which chain the block extends).
//
// The paper's testbed mines on real CPUs; the reproduction keeps the same
// mechanism at a configurable (tiny) difficulty so that multi-node
// simulations produce genuinely concurrent blocks without burning hours —
// the substitution preserves the behaviour under test (parallel block
// production feeding the execution layer).
package consensus

import (
	"context"
	"errors"
	"fmt"

	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/types"
)

// Live mining/verification counters on the default registry.
var (
	mBlocksMined = metrics.Default().Counter("nezha_pow_blocks_mined_total",
		"Blocks successfully mined by this process.")
	mHashAttempts = metrics.Default().Counter("nezha_pow_hash_attempts_total",
		"Nonces tried across all mining calls.")
	mVerifyFailures = metrics.Default().Counter("nezha_pow_verify_failures_total",
		"Blocks rejected for missing the difficulty target.")
)

// Params configures mining and verification.
type Params struct {
	// Chains is k, the number of parallel chains.
	Chains int
	// DifficultyBits is the number of leading zero bits a block hash must
	// carry. 0 means every nonce wins (instant mining, for benchmarks).
	DifficultyBits int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Chains < 1 {
		return fmt.Errorf("consensus: need at least 1 chain, got %d", p.Chains)
	}
	if p.DifficultyBits < 0 || p.DifficultyBits > 64 {
		return fmt.Errorf("consensus: difficulty %d outside [0, 64]", p.DifficultyBits)
	}
	return nil
}

// ErrMiningCancelled is returned when the context expires mid-search.
var ErrMiningCancelled = errors.New("consensus: mining cancelled")

// MeetsTarget reports whether a hash satisfies the difficulty.
func MeetsTarget(h types.Hash, bits int) bool {
	for i := 0; i < bits; i++ {
		if h[i/8]&(0x80>>(i%8)) != 0 {
			return false
		}
	}
	return true
}

// VerifyPoW checks a block's proof of work.
func VerifyPoW(b *types.Block, p Params) error {
	if !MeetsTarget(b.Hash(), p.DifficultyBits) {
		mVerifyFailures.Inc()
		return fmt.Errorf("consensus: block %s misses difficulty %d", b.Hash().Short(), p.DifficultyBits)
	}
	return nil
}

// Template is the miner's input: everything that goes into the PoW
// preimage except the nonce.
type Template struct {
	Ledger    *dag.Ledger
	StateRoot types.Hash
	Txs       []*types.Transaction
	Miner     types.Address
	Time      uint64
	// NonceSeed offsets the nonce search so concurrent miners explore
	// disjoint ranges (and deterministic tests get reproducible blocks).
	NonceSeed uint64
}

// Mine searches for a nonce satisfying the difficulty, then derives the
// OHIE fields (chain, parent, rank) from the winning hash via the ledger.
// The committed tips are snapshotted once at the start — exactly the OHIE
// protocol, where a late tip update simply yields a stale block that loses
// the first-seen race.
func Mine(ctx context.Context, t Template, p Params) (*types.Block, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tips := t.Ledger.Tips()
	b := &types.Block{
		Header: types.BlockHeader{
			TipsRoot:  types.TipsCommitment(tips),
			TxRoot:    types.ComputeTxRoot(t.Txs),
			StateRoot: t.StateRoot,
			Time:      t.Time,
			Miner:     t.Miner,
		},
		Tips: tips,
		Txs:  t.Txs,
	}
	for nonce := t.NonceSeed; ; nonce++ {
		if nonce%4096 == 0 {
			select {
			case <-ctx.Done():
				mHashAttempts.Add(float64(nonce - t.NonceSeed))
				return nil, fmt.Errorf("%w: %v", ErrMiningCancelled, ctx.Err())
			default:
			}
		}
		b.Header.Nonce = nonce
		b.InvalidateHash()
		if MeetsTarget(b.Hash(), p.DifficultyBits) {
			mHashAttempts.Add(float64(nonce - t.NonceSeed + 1))
			break
		}
	}
	if err := t.Ledger.DeriveFields(b); err != nil {
		return nil, err
	}
	mBlocksMined.Inc()
	return b, nil
}
