// Package dag implements the OHIE parallel-chain ledger [Yu et al.,
// S&P'20], the DAG-based blockchain the paper builds on (§V): k Nakamoto
// chains growing in parallel, hash-based chain assignment, and the
// (Rank, ChainID) total order over blocks. Epochs — the unit of state
// transition in the paper's processing workflow — are the block sets at
// equal height across all chains.
//
// Concurrent miners fork chains, so the ledger keeps every valid candidate
// block and runs Nakamoto fork choice per chain, exactly as OHIE does:
// the canonical chain is the longest one descending from the finalized
// prefix, with ties broken toward the smaller tip hash (a deterministic
// refinement of first-seen that makes independent nodes converge faster).
// The finalization watermark freezes the canonical prefix once the node has
// processed it; deeper reorgs are rejected — the simulation analogue of
// OHIE's probabilistic confirmation depth (a block buried depth-d deep
// reorgs with exponentially small probability).
package dag

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/types"
)

// Live gauges/counters on the default registry. Multi-node simulations
// share one process, so these aggregate across every in-process ledger;
// a production node has exactly one.
var (
	mBlocksAdded = metrics.Default().Counter("nezha_dag_blocks_added_total",
		"Valid candidate blocks accepted into the DAG.")
	mFinalizedEpoch = metrics.Default().Gauge("nezha_dag_finalized_epoch",
		"Finalization watermark (highest immutable epoch).")
)

// chainHeightGauge returns the per-chain canonical tip height gauge.
func chainHeightGauge(chain uint32) *metrics.Gauge {
	return metrics.Default().Gauge("nezha_dag_chain_height",
		"Canonical tip height per parallel chain.",
		metrics.Label{Name: "chain", Value: strconv.FormatUint(uint64(chain), 10)})
}

// Ledger errors.
var (
	// ErrUnknownParent is returned when a committed tip is not in the
	// ledger yet; callers should buffer the block and retry after its
	// ancestry arrives.
	ErrUnknownParent = errors.New("dag: unknown parent block")
	// ErrBelowFinal is returned for blocks at or below the finalization
	// watermark — forks that arrive too late to matter.
	ErrBelowFinal = errors.New("dag: block height at or below finalized epoch")
	// ErrBadBlock is returned for structurally invalid blocks.
	ErrBadBlock = errors.New("dag: invalid block")
	// ErrDuplicateBlock is returned when the block is already present.
	ErrDuplicateBlock = errors.New("dag: duplicate block")
)

// Ledger is the OHIE block DAG. It is safe for concurrent use.
type Ledger struct {
	mu     sync.RWMutex
	k      int
	blocks map[types.Hash]*types.Block
	// children indexes candidate blocks by parent hash, each list in
	// ascending hash order for deterministic traversal.
	children map[types.Hash][]*types.Block
	// canonical[c] caches the current canonical chain of c.
	canonical [][]*types.Block
	// finalized is the epoch watermark: the canonical prefix up to this
	// height is frozen and competing candidates at or below it are
	// rejected.
	finalized uint64
}

// NewLedger creates a ledger with k parallel chains, each rooted at a
// deterministic genesis block (Rank 0, NextRank 1, as in OHIE).
func NewLedger(k int) (*Ledger, error) {
	if k < 1 {
		return nil, fmt.Errorf("dag: need at least one chain, got %d", k)
	}
	l := &Ledger{
		k:         k,
		blocks:    make(map[types.Hash]*types.Block),
		children:  make(map[types.Hash][]*types.Block),
		canonical: make([][]*types.Block, k),
	}
	for c := 0; c < k; c++ {
		g := GenesisBlock(uint32(c))
		l.blocks[g.Hash()] = g
		l.canonical[c] = []*types.Block{g}
	}
	return l, nil
}

// GenesisBlock returns the deterministic genesis block of a chain. Genesis
// blocks are constants agreed upon out of band, so the hash-assignment rule
// does not apply to them.
func GenesisBlock(chain uint32) *types.Block {
	return &types.Block{
		Header: types.BlockHeader{
			TipsRoot: types.HashConcat([]byte("nezha/genesis"), []byte{
				byte(chain >> 24), byte(chain >> 16), byte(chain >> 8), byte(chain),
			}),
			ChainID:  chain,
			Height:   0,
			Rank:     0,
			NextRank: 1,
		},
	}
}

// Chains returns k, the number of parallel chains (the paper's block
// concurrency ω).
func (l *Ledger) Chains() int { return l.k }

// Tips returns the canonical tip hash of every chain, in chain order — the
// set a miner must commit to.
func (l *Ledger) Tips() []types.Hash {
	l.mu.RLock()
	defer l.mu.RUnlock()
	tips := make([]types.Hash, l.k)
	for c := 0; c < l.k; c++ {
		tips[c] = l.canonical[c][len(l.canonical[c])-1].Hash()
	}
	return tips
}

// TipBlocks returns the canonical tip block of every chain.
func (l *Ledger) TipBlocks() []*types.Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	tips := make([]*types.Block, l.k)
	for c := 0; c < l.k; c++ {
		tips[c] = l.canonical[c][len(l.canonical[c])-1]
	}
	return tips
}

// Block returns a block by hash.
func (l *Ledger) Block(h types.Hash) (*types.Block, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	b, ok := l.blocks[h]
	return b, ok
}

// DeriveFields computes the hash-derived header fields of a freshly mined
// block — chain assignment, parent, height, rank, next-rank — from its
// committed tips, per OHIE's rules. It does not mutate the ledger. The
// block's Tips must reference blocks known to the ledger.
func (l *Ledger) DeriveFields(b *types.Block) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.deriveLocked(b)
}

func (l *Ledger) deriveLocked(b *types.Block) error {
	if len(b.Tips) != l.k {
		return fmt.Errorf("%w: %d tips for %d chains", ErrBadBlock, len(b.Tips), l.k)
	}
	if types.TipsCommitment(b.Tips) != b.Header.TipsRoot {
		return fmt.Errorf("%w: tips do not match TipsRoot", ErrBadBlock)
	}
	chain := b.AssignedChain(l.k)
	parent, ok := l.blocks[b.Tips[chain]]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownParent, b.Tips[chain].Short())
	}
	if parent.Header.ChainID != chain {
		return fmt.Errorf("%w: committed tip of chain %d lies on chain %d", ErrBadBlock, chain, parent.Header.ChainID)
	}
	// OHIE rank rule: rank = parent.nextRank; nextRank = max(rank+1,
	// max nextRank among all committed tips).
	rank := parent.Header.NextRank
	next := rank + 1
	for _, tipHash := range b.Tips {
		tip, ok := l.blocks[tipHash]
		if !ok {
			return fmt.Errorf("%w: committed tip %s", ErrUnknownParent, tipHash.Short())
		}
		if tip.Header.NextRank > next {
			next = tip.Header.NextRank
		}
	}
	b.Header.ChainID = chain
	b.Header.ParentHash = parent.Hash()
	b.Header.Height = parent.Header.Height + 1
	b.Header.Rank = rank
	b.Header.NextRank = next
	return nil
}

// Add validates a block and registers it as a candidate for its (chain,
// height) slot, re-resolving the fork choice. Derived header fields are
// recomputed unconditionally (they are not covered by the hash, so a
// malicious sender could have filled them arbitrarily).
func (l *Ledger) Add(b *types.Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.blocks[b.Hash()]; dup {
		return ErrDuplicateBlock
	}
	if err := l.deriveLocked(b); err != nil {
		return err
	}
	if b.Header.Height <= l.finalized {
		return fmt.Errorf("%w: height %d, finalized %d", ErrBelowFinal, b.Header.Height, l.finalized)
	}
	if types.ComputeTxRoot(b.Txs) != b.Header.TxRoot {
		return fmt.Errorf("%w: tx root mismatch", ErrBadBlock)
	}
	l.blocks[b.Hash()] = b
	kids := append(l.children[b.Header.ParentHash], b)
	sort.Slice(kids, func(i, j int) bool { return lessHash(kids[i].Hash(), kids[j].Hash()) })
	l.children[b.Header.ParentHash] = kids
	l.recomputeCanonicalLocked(b.Header.ChainID)
	mBlocksAdded.Inc()
	chainHeightGauge(b.Header.ChainID).Set(float64(len(l.canonical[b.Header.ChainID]) - 1))
	return nil
}

// recomputeCanonicalLocked runs fork choice for chain c above the frozen
// prefix: the branch with the greatest depth wins (Nakamoto longest-chain),
// and equal-depth branches are decided by the smaller block hash *at the
// fork point*. Deciding ties at the divergence rather than at the tip makes
// the rule a monotone pure function of the block set: the moment two nodes
// have exchanged the competing fork-point blocks they agree on the branch
// and all miners extend the same one, so balanced forks cannot persist.
func (l *Ledger) recomputeCanonicalLocked(c uint32) {
	chain := l.canonical[c]
	frozenLen := l.finalized + 1
	if frozenLen > uint64(len(chain)) {
		frozenLen = uint64(len(chain))
	}
	chain = chain[:frozenLen]

	// Subtree depth of every block above the frozen tip, by iterative
	// post-order accumulation (chains are short; this is O(blocks)).
	root := chain[len(chain)-1]
	depth := map[types.Hash]uint64{}
	var order []*types.Block
	stack := []*types.Block{root}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, b)
		stack = append(stack, l.children[b.Hash()]...)
	}
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		best := uint64(0)
		for _, kid := range l.children[b.Hash()] {
			if d := depth[kid.Hash()] + 1; d > best {
				best = d
			}
		}
		depth[b.Hash()] = best
	}

	// Walk down: deepest child wins, ties to the smallest hash (children
	// are stored hash-sorted, so the first maximal child is the winner).
	for at := root; ; {
		var next *types.Block
		var bestDepth uint64
		for _, kid := range l.children[at.Hash()] {
			if next == nil || depth[kid.Hash()] > bestDepth {
				next, bestDepth = kid, depth[kid.Hash()]
			}
		}
		if next == nil {
			break
		}
		chain = append(chain, next)
		at = next
	}
	l.canonical[c] = chain
}

func lessHash(a, b types.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Restore loads previously-validated blocks from the node's own storage
// without re-deriving header fields: a persisted block's committed tips may
// reference fork candidates that lost and were never persisted, so the
// full Add path cannot re-validate them. Blocks must arrive parent-first
// (the persistence layer stores canonical chains in epoch order). The
// watermark is applied after the canonical chains are rebuilt.
func (l *Ledger) Restore(blocks []*types.Block, finalized uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	touched := map[uint32]bool{}
	for _, b := range blocks {
		if _, dup := l.blocks[b.Hash()]; dup {
			continue
		}
		if _, ok := l.blocks[b.Header.ParentHash]; !ok {
			return fmt.Errorf("%w: restore out of order at %s", ErrUnknownParent, b.Hash().Short())
		}
		l.blocks[b.Hash()] = b
		kids := append(l.children[b.Header.ParentHash], b)
		sort.Slice(kids, func(i, j int) bool { return lessHash(kids[i].Hash(), kids[j].Hash()) })
		l.children[b.Header.ParentHash] = kids
		touched[b.Header.ChainID] = true
	}
	for c := range touched {
		l.recomputeCanonicalLocked(c)
	}
	if finalized > l.finalized {
		l.finalized = finalized
	}
	return nil
}

// Finalize raises the watermark: epochs at or below e are immutable and
// late fork candidates for them are rejected. Nodes call it after
// processing an epoch.
func (l *Ledger) Finalize(e uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e > l.finalized {
		l.finalized = e
		mFinalizedEpoch.Set(float64(e))
	}
}

// Finalized returns the current watermark.
func (l *Ledger) Finalized() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.finalized
}

// Height returns the canonical height of a chain's tip.
func (l *Ledger) Height(chain uint32) uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.canonical[chain]) - 1)
}

// EpochReady reports whether epoch e is processable under the given
// confirmation depth: every canonical chain must reach height e+depth.
// Epoch 0 is the genesis epoch and is never processed.
func (l *Ledger) EpochReady(e uint64, depth uint64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for c := 0; c < l.k; c++ {
		if uint64(len(l.canonical[c]))-1 < e+depth {
			return false
		}
	}
	return true
}

// EpochBlocks returns epoch e's canonical blocks in the OHIE total order
// (Rank, ChainID), or false when some chain has not reached height e yet.
func (l *Ledger) EpochBlocks(e uint64) ([]*types.Block, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	blocks := make([]*types.Block, 0, l.k)
	for c := 0; c < l.k; c++ {
		if uint64(len(l.canonical[c]))-1 < e {
			return nil, false
		}
		blocks = append(blocks, l.canonical[c][e])
	}
	sortBlocks(blocks)
	return blocks, true
}

// BlocksAbove returns every canonical block with height strictly above h,
// ordered by height then chain — parents always precede children, so a
// receiver can replay the batch directly into its own ledger. This is the
// payload of the block-synchronization protocol.
func (l *Ledger) BlocksAbove(h uint64) []*types.Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []*types.Block
	maxLen := 0
	for c := 0; c < l.k; c++ {
		if len(l.canonical[c]) > maxLen {
			maxLen = len(l.canonical[c])
		}
	}
	for height := h + 1; height < uint64(maxLen); height++ {
		for c := 0; c < l.k; c++ {
			if height < uint64(len(l.canonical[c])) {
				out = append(out, l.canonical[c][height])
			}
		}
	}
	return out
}

// SyncBlocksAbove returns every known non-genesis block strictly above
// height h — canonical AND fork candidates — sorted height-major (then
// chain, then hash, so the order is deterministic). Block sync must ship
// candidates too: a block's committed tips may reference fork blocks that
// later lost, and Add cannot re-derive a block whose tips are missing.
// Because fork choice is a pure function of the block set, a peer that
// ingests the full set converges to the same canonical chains.
func (l *Ledger) SyncBlocksAbove(h uint64) []*types.Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []*types.Block
	for _, b := range l.blocks {
		if b.Header.Height > h {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i], out[j]
		if bi.Header.Height != bj.Header.Height {
			return bi.Header.Height < bj.Header.Height
		}
		if bi.Header.ChainID != bj.Header.ChainID {
			return bi.Header.ChainID < bj.Header.ChainID
		}
		return lessHash(bi.Hash(), bj.Hash())
	})
	return out
}

// TotalOrder returns every non-genesis canonical block up to and including
// maxEpoch in the OHIE total order.
func (l *Ledger) TotalOrder(maxEpoch uint64) []*types.Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []*types.Block
	for c := 0; c < l.k; c++ {
		chain := l.canonical[c]
		for h := uint64(1); h < uint64(len(chain)) && h <= maxEpoch; h++ {
			out = append(out, chain[h])
		}
	}
	sortBlocks(out)
	return out
}

// sortBlocks orders blocks by (Rank, ChainID), OHIE's total order; the
// hash is a final tie-break for full determinism.
func sortBlocks(blocks []*types.Block) {
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i], blocks[j]
		if a.Header.Rank != b.Header.Rank {
			return a.Header.Rank < b.Header.Rank
		}
		if a.Header.ChainID != b.Header.ChainID {
			return a.Header.ChainID < b.Header.ChainID
		}
		return lessHash(a.Hash(), b.Hash())
	})
}
