package dag_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/nezha-dag/nezha/internal/dag"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/types"
)

// mine produces a valid next block over the ledger's current tips using
// instant (difficulty-0) mining with a distinct seed per call.
func mine(t *testing.T, l *dag.Ledger, seed uint64, txs []*types.Transaction) *types.Block {
	t.Helper()
	b, err := consensus.Mine(context.Background(), consensus.Template{
		Ledger:    l,
		Txs:       txs,
		Miner:     types.AddressFromUint64(seed),
		Time:      seed,
		NonceSeed: seed * 1_000_003,
	}, consensus.Params{Chains: l.Chains(), DifficultyBits: 0})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	return b
}

func TestNewLedgerValidation(t *testing.T) {
	if _, err := dag.NewLedger(0); err == nil {
		t.Fatal("zero chains accepted")
	}
	l, err := dag.NewLedger(4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Chains() != 4 || len(l.Tips()) != 4 {
		t.Fatal("ledger shape wrong")
	}
	// Genesis invariants.
	for _, tip := range l.TipBlocks() {
		if tip.Header.Rank != 0 || tip.Header.NextRank != 1 || tip.Header.Height != 0 {
			t.Fatalf("genesis fields wrong: %+v", tip.Header)
		}
	}
}

func TestAddAndGrow(t *testing.T) {
	l, err := dag.NewLedger(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]int)
	for seed := uint64(1); seed <= 40; seed++ {
		b := mine(t, l, seed, nil)
		if err := l.Add(b); err != nil {
			t.Fatalf("add block %d: %v", seed, err)
		}
		seen[b.Header.ChainID]++
		// Rank rule: rank must equal the parent's next-rank.
		parent, ok := l.Block(b.Header.ParentHash)
		if !ok {
			t.Fatal("parent vanished")
		}
		if b.Header.Rank != parent.Header.NextRank {
			t.Fatalf("rank %d != parent next-rank %d", b.Header.Rank, parent.Header.NextRank)
		}
		if b.Header.NextRank <= b.Header.Rank {
			t.Fatal("next-rank must exceed rank")
		}
	}
	// Hash assignment should spread blocks over all four chains.
	if len(seen) != 4 {
		t.Fatalf("blocks landed on only %d chains: %v", len(seen), seen)
	}
}

func TestForkChoiceSmallestHashWins(t *testing.T) {
	l, err := dag.NewLedger(2)
	if err != nil {
		t.Fatal(err)
	}
	// Mine two competing blocks from the SAME tips on the same chain.
	var b1, b2 *types.Block
	for seed := uint64(1); ; seed++ {
		b1 = mine(t, l, seed, nil)
		b2 = mine(t, l, seed+1000, nil)
		if b1.Header.ChainID == b2.Header.ChainID {
			break
		}
	}
	if err := l.Add(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(b1); !errors.Is(err, dag.ErrDuplicateBlock) {
		t.Fatalf("duplicate err = %v", err)
	}
	// The fork candidate is accepted, and the canonical tip is the
	// smaller hash regardless of arrival order.
	if err := l.Add(b2); err != nil {
		t.Fatalf("fork candidate rejected: %v", err)
	}
	tip := l.TipBlocks()[b1.Header.ChainID]
	want := b1
	h1, h2 := b1.Hash(), b2.Hash()
	if h2.Hex() < h1.Hex() {
		want = b2
	}
	if tip.Hash() != want.Hash() {
		t.Fatalf("canonical tip = %s, want smaller hash %s", tip.Hash().Short(), want.Hash().Short())
	}

	// Arrival order must not matter: a second ledger fed in reverse
	// order converges to the same tip.
	l2, err := dag.NewLedger(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Add(b2); err != nil {
		t.Fatal(err)
	}
	if err := l2.Add(b1); err != nil {
		t.Fatal(err)
	}
	if l2.TipBlocks()[b1.Header.ChainID].Hash() != want.Hash() {
		t.Fatal("fork choice depends on arrival order")
	}
}

func TestFinalizeRejectsLateForks(t *testing.T) {
	l, err := dag.NewLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	b1 := mine(t, l, 1, nil)
	if err := l.Add(b1); err != nil {
		t.Fatal(err)
	}
	l.Finalize(1)
	if l.Finalized() != 1 {
		t.Fatal("watermark not raised")
	}
	// A late competitor for the finalized height must be rejected even if
	// its hash is smaller. mine() builds over the current tips (height 1
	// now), so construct the late fork from genesis tips via a fresh
	// ledger with identical deterministic genesis blocks.
	lateFork, err := consensus.Mine(context.Background(), consensus.Template{
		Ledger: mustFreshLedger(t), Miner: types.AddressFromUint64(9), NonceSeed: 555,
	}, consensus.Params{Chains: 1, DifficultyBits: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Add(lateFork); !errors.Is(err, dag.ErrBelowFinal) {
		t.Fatalf("late fork err = %v", err)
	}
}

func mustFreshLedger(t *testing.T) *dag.Ledger {
	t.Helper()
	l, err := dag.NewLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAddRejectsCorruptBlocks(t *testing.T) {
	l, err := dag.NewLedger(2)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong tip count.
	b := mine(t, l, 1, nil)
	b.Tips = b.Tips[:1]
	if err := l.Add(b); !errors.Is(err, dag.ErrBadBlock) {
		t.Fatalf("short tips err = %v", err)
	}
	// Tips not matching commitment.
	b = mine(t, l, 2, nil)
	b.Tips = append([]types.Hash(nil), b.Tips...)
	b.Tips[0] = types.HashBytes([]byte("forged"))
	if err := l.Add(b); err == nil {
		t.Fatal("forged tips accepted")
	}
	// Unknown parent: commitment consistent but tip hash unknown.
	fake := []types.Hash{types.HashBytes([]byte("a")), types.HashBytes([]byte("b"))}
	bogus := &types.Block{
		Header: types.BlockHeader{TipsRoot: types.TipsCommitment(fake)},
		Tips:   fake,
	}
	if err := l.Add(bogus); !errors.Is(err, dag.ErrUnknownParent) {
		t.Fatalf("unknown parent err = %v", err)
	}
	// Tx-root mismatch.
	b = mine(t, l, 3, []*types.Transaction{{Nonce: 1}})
	b.Txs = nil
	if err := l.Add(b); !errors.Is(err, dag.ErrBadBlock) {
		t.Fatalf("tx root err = %v", err)
	}
}

func TestEpochAssembly(t *testing.T) {
	l, err := dag.NewLedger(3)
	if err != nil {
		t.Fatal(err)
	}
	if l.EpochReady(1, 0) {
		t.Fatal("epoch 1 ready on fresh ledger")
	}
	// Grow until every chain has height >= 2.
	for seed := uint64(1); !l.EpochReady(2, 0); seed++ {
		b := mine(t, l, seed, nil)
		if err := l.Add(b); err != nil {
			t.Fatal(err)
		}
		if seed > 500 {
			t.Fatal("chains refuse to grow")
		}
	}
	blocks, ok := l.EpochBlocks(1)
	if !ok || len(blocks) != 3 {
		t.Fatalf("epoch 1: ok=%v blocks=%d", ok, len(blocks))
	}
	// All at height 1, one per chain, rank-ordered.
	chains := make(map[uint32]bool)
	for i, b := range blocks {
		if b.Header.Height != 1 {
			t.Fatalf("epoch block at height %d", b.Header.Height)
		}
		chains[b.Header.ChainID] = true
		if i > 0 {
			prev := blocks[i-1]
			if prev.Header.Rank > b.Header.Rank ||
				(prev.Header.Rank == b.Header.Rank && prev.Header.ChainID >= b.Header.ChainID) {
				t.Fatal("epoch blocks not in (rank, chain) order")
			}
		}
	}
	if len(chains) != 3 {
		t.Fatal("epoch missing a chain")
	}
}

func TestTotalOrderIsLinearExtensionOfChains(t *testing.T) {
	l, err := dag.NewLedger(4)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); !l.EpochReady(3, 0); seed++ {
		b := mine(t, l, seed, nil)
		if err := l.Add(b); err != nil {
			t.Fatal(err)
		}
		if seed > 2000 {
			t.Fatal("chains refuse to grow")
		}
	}
	order := l.TotalOrder(3)
	pos := make(map[types.Hash]int)
	for i, b := range order {
		pos[b.Hash()] = i
	}
	// Within each chain, height order must be preserved.
	for c := uint32(0); c < 4; c++ {
		var prevPos = -1
		for h := uint64(1); h <= 3; h++ {
			blocks, ok := l.EpochBlocks(h)
			if !ok {
				t.Fatal("epoch incomplete")
			}
			for _, b := range blocks {
				if b.Header.ChainID != c {
					continue
				}
				p, ok := pos[b.Hash()]
				if !ok {
					t.Fatal("block missing from total order")
				}
				if p <= prevPos {
					t.Fatalf("chain %d order violated in total order", c)
				}
				prevPos = p
			}
		}
	}
}

func TestDifficultyEnforced(t *testing.T) {
	l, err := dag.NewLedger(2)
	if err != nil {
		t.Fatal(err)
	}
	params := consensus.Params{Chains: 2, DifficultyBits: 8}
	b, err := consensus.Mine(context.Background(), consensus.Template{
		Ledger: l, Miner: types.AddressFromUint64(1), NonceSeed: 7,
	}, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := consensus.VerifyPoW(b, params); err != nil {
		t.Fatal(err)
	}
	if b.Hash()[0] != 0 {
		t.Fatal("difficulty-8 hash does not start with a zero byte")
	}
	// A doctored nonce fails verification.
	b.Header.Nonce++
	b.InvalidateHash()
	if err := consensus.VerifyPoW(b, params); err == nil {
		t.Fatal("doctored block passed PoW check")
	}
}

func TestMiningCancellation(t *testing.T) {
	l, err := dag.NewLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = consensus.Mine(ctx, consensus.Template{Ledger: l}, consensus.Params{Chains: 1, DifficultyBits: 64})
	if !errors.Is(err, consensus.ErrMiningCancelled) {
		t.Fatalf("err = %v", err)
	}
}

func TestConsensusParamsValidate(t *testing.T) {
	bad := []consensus.Params{
		{Chains: 0, DifficultyBits: 1},
		{Chains: 1, DifficultyBits: -1},
		{Chains: 1, DifficultyBits: 100},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
	if err := (consensus.Params{Chains: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeetsTarget(t *testing.T) {
	var h types.Hash
	h[0] = 0x01 // 7 leading zero bits
	if !consensus.MeetsTarget(h, 7) {
		t.Fatal("7-bit target should pass")
	}
	if consensus.MeetsTarget(h, 8) {
		t.Fatal("8-bit target should fail")
	}
	if !consensus.MeetsTarget(types.ZeroHash, 64) {
		t.Fatal("zero hash fails")
	}
}

// TestForkChoiceOrderIndependent: ledgers receiving the same block set in
// different orders must converge on identical canonical chains — the
// property cross-node agreement rests on.
func TestForkChoiceOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		// Generate a contentious block set: mine repeatedly from a
		// "builder" ledger but only deliver a random subset immediately,
		// creating forks.
		builder, err := dag.NewLedger(2)
		if err != nil {
			t.Fatal(err)
		}
		var blocks []*types.Block
		for seed := uint64(1); seed <= 30; seed++ {
			b := mine(t, builder, seed+uint64(trial)*1000, nil)
			blocks = append(blocks, b)
			// Deliver with probability 0.7, so tips sometimes lag and
			// later blocks fork earlier heights.
			if rng.Float64() < 0.7 {
				_ = builder.Add(b)
			}
		}

		canonical := func(order []*types.Block) []types.Hash {
			l, err := dag.NewLedger(2)
			if err != nil {
				t.Fatal(err)
			}
			pending := append([]*types.Block(nil), order...)
			for len(pending) > 0 {
				var still []*types.Block
				progress := false
				for _, b := range pending {
					err := l.Add(b)
					switch {
					case err == nil:
						progress = true
					case errors.Is(err, dag.ErrUnknownParent):
						still = append(still, b)
					case errors.Is(err, dag.ErrDuplicateBlock):
					default:
						t.Fatalf("add: %v", err)
					}
				}
				if !progress && len(still) > 0 {
					t.Fatalf("trial %d: %d orphans never resolved", trial, len(still))
				}
				pending = still
			}
			var out []types.Hash
			for c := uint32(0); c < 2; c++ {
				h := l.Height(c)
				for i := uint64(0); i <= h; i++ {
					bs, _ := l.EpochBlocks(i)
					for _, b := range bs {
						if b.Header.ChainID == c {
							out = append(out, b.Hash())
						}
					}
				}
			}
			return out
		}

		forward := canonical(blocks)
		shuffled := append([]*types.Block(nil), blocks...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		other := canonical(shuffled)
		if len(forward) != len(other) {
			t.Fatalf("trial %d: canonical lengths differ: %d vs %d", trial, len(forward), len(other))
		}
		for i := range forward {
			if forward[i] != other[i] {
				t.Fatalf("trial %d: canonical chains diverge at %d", trial, i)
			}
		}
	}
}
