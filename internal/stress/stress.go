// Package stress is the sustained-load driver behind cmd/nezha-stress and
// the CI soak tier: it runs an in-process multi-node cluster whose miners
// front the admission-controlled mempool (internal/mempool), feeds it a
// continuous workload stream at a configurable rate, and measures
// admission-to-commit latency from the blocks each epoch actually
// commits.
//
// Two pacing modes, after the classic load-generator split:
//
//   - Open loop (TargetTPS > 0): transactions arrive on a fixed schedule
//     regardless of how the system keeps up, so queueing delay shows up
//     in the latency distribution instead of silently throttling the
//     offered load. This is the honest mode for "can it sustain X TPS".
//   - Closed loop (TargetTPS == 0): a bounded number of in-flight
//     transactions; a commit refills the submission budget. This finds
//     the system's natural throughput without unbounded queue growth.
//
// The driver is also the soak oracle: every round it asserts that all
// nodes at the same epoch agree on the state root, and that the commit
// watermark keeps advancing (no stall longer than StallTimeout). Chaos
// soaks arm failpoints (fail.Enable is permitted here by the repo's
// failpoint analyzer, as in internal/chaos) and assert the same
// invariants under injected faults.
package stress

import (
	"context"
	"fmt"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/types"
)

// Config parameterizes one stress run.
type Config struct {
	// Workload is the transaction stream (required; see NewWorkload).
	Workload Workload
	// Nodes is the cluster size; every node mines and every node
	// processes every block, so root agreement is checked across Nodes
	// independent pipeline executions. Default 2.
	Nodes int
	// Chains is the OHIE parallel-chain count. Default 4.
	Chains int
	// BlockSize caps transactions per block. Default 200 (§VI-A).
	BlockSize int
	// DifficultyBits sets the PoW difficulty. Default 0 (instant
	// mining): the stress target is the ingestion and pipeline path, not
	// the hash race.
	DifficultyBits int
	// Duration bounds the run (required).
	Duration time.Duration
	// TargetTPS selects open-loop pacing when positive; 0 runs closed
	// loop.
	TargetTPS float64
	// InFlight bounds submitted-but-uncommitted transactions in closed
	// loop (default 4×BlockSize×Nodes). Open loop ignores it.
	InFlight int
	// Mempool overrides the admission pool configuration. StrictNonce is
	// forced on — the driver's workloads generate dense per-sender
	// nonces, and assembly must not ship gaps.
	Mempool mempool.Config
	// VerifySignatures admits only signature-checked transactions (pair
	// with Options.Sign).
	VerifySignatures bool
	// Scheduler names the concurrency control: "nezha" (default) or
	// "serial".
	Scheduler string
	// StallTimeout fails the run if no epoch commits for this long
	// (default 30s). This is the soak tier's liveness oracle.
	StallTimeout time.Duration
	// Failpoints are armed for the whole run (chaos soak), with Seed
	// fixing the probabilistic ones. The set is reset on return.
	Failpoints map[fail.Name]fail.Spec
	// Seed feeds fail.Seed when Failpoints are armed.
	Seed int64
	// JournalDir, when set, enables the flight recorder for the run and
	// dumps every node's journal there on exit — the forensics artifact
	// the soak tier uploads.
	JournalDir string
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.Chains <= 0 {
		c.Chains = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 200
	}
	if c.InFlight <= 0 {
		c.InFlight = 4 * c.BlockSize * c.Nodes
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.Scheduler == "" {
		c.Scheduler = "nezha"
	}
	return c
}

// Report is the outcome of a run: throughput, the latency distribution,
// and the oracle verdicts.
type Report struct {
	Workload  string
	Nodes     int
	Duration  time.Duration
	OpenLoop  bool
	TargetTPS float64

	Submitted int // transactions offered to admission
	Admitted  int // transactions accepted into the pool
	Committed int // transactions committed by the pipeline
	Aborted   int // scheduler aborts (re-executed serially, still final)
	Lost      int // in-flight entries reclaimed after lostAfter (dropped or stranded in stale forks)
	Epochs    uint64

	CommitTPS float64
	// P50/P95/P99 are admission-to-commit latencies, estimated from a
	// fixed-bucket histogram (resolution is bucket width).
	P50, P95, P99 time.Duration
	// MaxCommitGap is the longest observed wall-clock gap between
	// consecutive epoch commits — the watermark-liveness figure.
	MaxCommitGap time.Duration
	FinalEpoch   uint64
	FinalRoot    types.Hash
}

// String renders the report as the human-readable block nezha-stress
// prints.
func (r *Report) String() string {
	mode := "closed-loop"
	if r.OpenLoop {
		mode = fmt.Sprintf("open-loop @ %.0f TPS", r.TargetTPS)
	}
	return fmt.Sprintf(
		"stress: %s, %d nodes, %s, %v\n"+
			"  submitted %d, admitted %d, committed %d (aborted-and-retried %d, lost %d), %d epochs\n"+
			"  commit throughput %.0f tx/s\n"+
			"  latency p50 %v  p95 %v  p99 %v (admission→commit)\n"+
			"  max commit gap %v, final epoch %d, root %s",
		r.Workload, r.Nodes, mode, r.Duration.Round(time.Millisecond),
		r.Submitted, r.Admitted, r.Committed, r.Aborted, r.Lost, r.Epochs,
		r.CommitTPS,
		r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond),
		r.MaxCommitGap.Round(time.Millisecond), r.FinalEpoch, r.FinalRoot.Short())
}

// submitBatch caps how many transactions one pacing round generates, so
// a high TargetTPS cannot stall the round loop building one giant batch.
const submitBatch = 2048

// lostAfter is how long an in-flight transaction may go uncommitted
// before the sweep reclaims its pacing slot (it was dropped at admission
// on every pool, or stranded in a stale fork).
const lostAfter = 5 * time.Second

// Run executes one stress run and returns its report. A non-nil error
// means an oracle failed (state divergence, commit stall) or the cluster
// broke; the report is still populated as far as the run got.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload == nil {
		return nil, fmt.Errorf("stress: Config.Workload is required")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("stress: Config.Duration is required")
	}
	var sched func() types.Scheduler
	switch cfg.Scheduler {
	case "nezha":
		sched = func() types.Scheduler { return core.MustNewScheduler(core.DefaultConfig()) }
	case "serial":
		sched = func() types.Scheduler { return nil }
	default:
		return nil, fmt.Errorf("stress: unknown scheduler %q (nezha | serial)", cfg.Scheduler)
	}

	if len(cfg.Failpoints) > 0 {
		fail.Seed(cfg.Seed)
		for name, spec := range cfg.Failpoints {
			fail.Enable(name, spec)
		}
		defer fail.Reset()
	}
	if cfg.JournalDir != "" {
		journal.Reset()
		journal.Enable()
		defer journal.Disable()
	}

	mpCfg := cfg.Mempool
	mpCfg.StrictNonce = true
	mpCfg.VerifySignatures = cfg.VerifySignatures

	// Build the cluster. Every node runs the full pipeline over the same
	// block set; node 0 is the measurement vantage point.
	nodes := make([]*node.Node, cfg.Nodes)
	miners := make([]*node.Miner, cfg.Nodes)
	for i := range nodes {
		n, err := node.New(fmt.Sprintf("stress-%d", i), kvstore.NewMemory(), node.Config{
			Consensus:        consensus.Params{Chains: cfg.Chains, DifficultyBits: cfg.DifficultyBits},
			Scheduler:        sched(),
			Contracts:        cfg.Workload.Contracts(),
			GenesisWrites:    cfg.Workload.Genesis(),
			VerifySignatures: cfg.VerifySignatures,
			RetainEpochStats: 64,
			Mempool:          &mpCfg,
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = n
		miners[i] = node.NewMiner(n, types.AddressFromUint64(uint64(i+1)), cfg.BlockSize)
	}
	if cfg.JournalDir != "" {
		defer func() {
			if err := journal.DumpAll(cfg.JournalDir); err != nil {
				fmt.Printf("stress: journal dump: %v\n", err)
			}
		}()
	}

	// The latency series lives in a fresh registry so back-to-back runs
	// (tests, sweeps) do not accumulate into one histogram.
	reg := metrics.NewRegistry()
	latency := reg.Histogram("nezha_stress_commit_latency_seconds",
		"Admission-to-commit latency of stress-driven transactions.", nil)

	rep := &Report{
		Workload: cfg.Workload.Name(), Nodes: cfg.Nodes,
		OpenLoop: cfg.TargetTPS > 0, TargetTPS: cfg.TargetTPS,
	}
	submitTimes := make(map[types.Hash]time.Time, cfg.InFlight)
	start := time.Now()
	lastCommit := start
	lastSweep := start
	deadline := start.Add(cfg.Duration)

	for now := start; now.Before(deadline); now = time.Now() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}

		// Pacing: how many transactions does this round owe?
		due := 0
		if cfg.TargetTPS > 0 {
			due = int(cfg.TargetTPS*now.Sub(start).Seconds()) - rep.Submitted
		} else {
			due = cfg.InFlight - len(submitTimes)
		}
		if due > submitBatch {
			due = submitBatch
		}
		if due <= 0 {
			// Ahead of schedule (or the window is full): yield briefly so
			// an idle cluster does not spin mining empty blocks flat out.
			time.Sleep(500 * time.Microsecond)
		} else {
			batch := make([]*types.Transaction, due)
			for i := range batch {
				batch[i] = cfg.Workload.NextTx()
			}
			// Instant gossip: the batch reaches every miner's pool. Each
			// pool admits independently; epoch assembly dedupes by hash.
			for mi, m := range miners {
				n, _ := m.Pool().AdmitBatch(batch)
				if mi == 0 {
					rep.Admitted += n
				}
			}
			submitted := time.Now()
			for _, tx := range batch {
				submitTimes[tx.Hash()] = submitted
			}
			rep.Submitted += due
		}

		// One mining round: every miner races a candidate; accepted
		// blocks replicate to the whole cluster (stale forks are normal).
		for i, m := range miners {
			mineCtx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
			b, err := m.Mine(mineCtx)
			cancel()
			if err != nil {
				if ctx.Err() != nil {
					return rep, ctx.Err()
				}
				continue // cancelled search; next round
			}
			if err := nodes[i].SubmitBlock(b); err != nil {
				continue // lost the fork race locally
			}
			for j, peer := range nodes {
				if j == i {
					continue
				}
				if err := peer.SubmitBlock(b); err == nil {
					// Optimistically advance the peer pool's floors past
					// the replicated block's transactions, as a real
					// mempool does on new-block import: without this,
					// every miner re-assembles the whole gossiped stream
					// and epochs commit near-duplicate blocks. A block
					// that later loses its fork race strands its txs —
					// the in-flight sweep below reclaims them.
					miners[j].Pool().MarkIncluded(b.Txs)
				}
			}
		}

		// Processing round: every node advances; node 0 is measured.
		for i, n := range nodes {
			results, err := n.ProcessReadyEpochs()
			if err != nil {
				return rep, fmt.Errorf("stress: %s: %w", n.ID(), err)
			}
			for _, r := range results {
				blocks, ok := n.Ledger().EpochBlocks(r.Epoch)
				if !ok {
					continue
				}
				etxs := types.NewEpoch(r.Epoch, blocks).Txs
				// A committed epoch is final: advance this node's own
				// inclusion floors past its transactions, so a tx one
				// miner included stops being re-assembled by the others
				// (each pool admitted the whole gossiped stream).
				miners[i].Pool().MarkIncluded(etxs)
				if i != 0 {
					continue
				}
				commitTime := time.Now()
				if gap := commitTime.Sub(lastCommit); gap > rep.MaxCommitGap {
					rep.MaxCommitGap = gap
				}
				lastCommit = commitTime
				rep.Epochs++
				rep.Committed += r.Stats.Committed
				rep.Aborted += r.Stats.Aborted
				for _, tx := range etxs {
					if t0, ok := submitTimes[tx.Hash()]; ok {
						latency.ObserveDuration(commitTime.Sub(t0))
						delete(submitTimes, tx.Hash())
					}
				}
			}
		}

		// Reclaim transactions that will never commit — dropped by an
		// admission fault on every pool, or stranded in a block that lost
		// its fork race. Without the sweep, closed-loop pacing treats
		// them as forever in flight and the window starves.
		if now := time.Now(); now.Sub(lastSweep) > time.Second {
			lastSweep = now
			for h, t0 := range submitTimes {
				if now.Sub(t0) > lostAfter {
					delete(submitTimes, h)
					rep.Lost++
				}
			}
		}

		// Oracles: divergence is fatal immediately; so is a stalled
		// commit watermark.
		for _, n := range nodes[1:] {
			if n.NextEpoch() == nodes[0].NextEpoch() && n.StateRoot() != nodes[0].StateRoot() {
				return rep, fmt.Errorf("stress: state divergence at epoch %d: %s=%s %s=%s",
					n.NextEpoch()-1, nodes[0].ID(), nodes[0].StateRoot().Short(), n.ID(), n.StateRoot().Short())
			}
		}
		if time.Since(lastCommit) > cfg.StallTimeout {
			return rep, fmt.Errorf("stress: commit watermark stalled: no epoch in %v (next epoch %d)",
				cfg.StallTimeout, nodes[0].NextEpoch())
		}
	}

	rep.Duration = time.Since(start)
	rep.FinalEpoch = nodes[0].NextEpoch() - 1
	rep.FinalRoot = nodes[0].StateRoot()
	if rep.Duration > 0 {
		rep.CommitTPS = float64(rep.Committed) / rep.Duration.Seconds()
	}
	quantile := func(q float64) time.Duration {
		return time.Duration(latency.Quantile(q) * float64(time.Second))
	}
	if latency.Count() > 0 {
		rep.P50, rep.P95, rep.P99 = quantile(0.50), quantile(0.95), quantile(0.99)
	}
	if rep.Epochs == 0 {
		return rep, fmt.Errorf("stress: no epoch committed in %v", cfg.Duration)
	}
	return rep, nil
}
