package stress

import (
	"fmt"

	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/contracts/token"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// Workload is the transaction source a stress run draws from: an
// unbounded, deterministic stream plus the genesis state and contract
// programs it runs against. Implementations must produce dense per-sender
// nonces (1, 2, 3, ...) — the driver feeds a StrictNonce mempool, which
// parks any sender whose next expected nonce is missing.
type Workload interface {
	// Name labels the workload in reports.
	Name() string
	// Genesis returns the full initial state. It covers the entire
	// account population: a stream has no up-front transaction set to
	// derive touched accounts from.
	Genesis() []types.WriteEntry
	// Contracts maps contract addresses to MiniVM programs.
	Contracts() map[types.Address][]byte
	// NextTx draws the next transaction. Successive calls from one
	// sender must carry consecutive nonces.
	NextTx() *types.Transaction
}

// Options tune the built-in workload constructors.
type Options struct {
	Seed     int64
	Accounts uint64
	// Skew is the Zipfian coefficient in [0, 1].
	Skew float64
	// Sign ed25519-signs every transaction (SmallBank only), so the
	// mempool's batched verification is on the admission path.
	Sign bool
}

// NewWorkload builds a named workload: "smallbank" or "token".
func NewWorkload(name string, opts Options) (Workload, error) {
	if opts.Accounts == 0 {
		opts.Accounts = 10_000
	}
	switch name {
	case "smallbank":
		gen, err := workload.NewGenerator(workload.Config{
			Seed: opts.Seed, Accounts: opts.Accounts, Skew: opts.Skew,
			InitialBalance: 10_000, ReadOnlyRatio: -1,
			Sign: opts.Sign, PerSenderNonces: true,
		})
		if err != nil {
			return nil, err
		}
		return &smallBankWorkload{gen: gen}, nil
	case "token":
		if opts.Sign {
			return nil, fmt.Errorf("stress: the token workload does not sign transactions")
		}
		gen, err := workload.NewTokenGenerator(workload.TokenConfig{
			Seed: opts.Seed, Accounts: opts.Accounts, Skew: opts.Skew,
			InitialBalance: 10_000, MintRatio: 0.1, PerSenderNonces: true,
		})
		if err != nil {
			return nil, err
		}
		return &tokenWorkload{gen: gen}, nil
	default:
		return nil, fmt.Errorf("stress: unknown workload %q (smallbank | token)", name)
	}
}

type smallBankWorkload struct{ gen *workload.Generator }

func (w *smallBankWorkload) Name() string                { return "smallbank" }
func (w *smallBankWorkload) Genesis() []types.WriteEntry { return w.gen.GenesisAll() }
func (w *smallBankWorkload) NextTx() *types.Transaction  { return w.gen.NextTx() }
func (w *smallBankWorkload) Contracts() map[types.Address][]byte {
	return map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()}
}

type tokenWorkload struct{ gen *workload.TokenGenerator }

func (w *tokenWorkload) Name() string                { return "token" }
func (w *tokenWorkload) Genesis() []types.WriteEntry { return w.gen.GenesisAll() }
func (w *tokenWorkload) NextTx() *types.Transaction  { return w.gen.NextTx() }
func (w *tokenWorkload) Contracts() map[types.Address][]byte {
	return map[types.Address][]byte{token.ContractAddress: token.Program()}
}
