package stress

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/fail"
)

func shortRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	if cfg.Workload == nil {
		w, err := NewWorkload("smallbank", Options{Seed: 1, Accounts: 500, Skew: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workload = w
	}
	if cfg.Duration == 0 {
		cfg.Duration = 1500 * time.Millisecond
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("stress run failed: %v\n%v", err, rep)
	}
	return rep
}

// TestClosedLoopSmallBank: the default closed-loop mode must commit
// transactions, keep the in-flight window bounded, and produce a sane
// latency distribution.
func TestClosedLoopSmallBank(t *testing.T) {
	rep := shortRun(t, Config{Nodes: 2, BlockSize: 100})
	if rep.Committed == 0 {
		t.Fatalf("nothing committed: %v", rep)
	}
	if rep.Admitted > rep.Submitted {
		t.Fatalf("admitted %d > submitted %d", rep.Admitted, rep.Submitted)
	}
	if rep.P99 < rep.P50 {
		t.Fatalf("p99 %v < p50 %v", rep.P99, rep.P50)
	}
	if !strings.Contains(rep.String(), "closed-loop") {
		t.Fatalf("report mislabels mode:\n%v", rep)
	}
}

// TestOpenLoopPacing: open loop must track the offered rate — the
// submitted count stays near TargetTPS×Duration rather than running away
// to the system's maximum.
func TestOpenLoopPacing(t *testing.T) {
	rep := shortRun(t, Config{Nodes: 2, BlockSize: 100, TargetTPS: 400})
	want := int(400 * rep.Duration.Seconds())
	if rep.Submitted > want+submitBatch {
		t.Fatalf("open loop overshot: submitted %d, schedule allows ~%d", rep.Submitted, want)
	}
	if rep.Submitted < want/2 {
		t.Fatalf("open loop fell far behind: submitted %d of ~%d", rep.Submitted, want)
	}
	if !strings.Contains(rep.String(), "open-loop") {
		t.Fatalf("report mislabels mode:\n%v", rep)
	}
}

// TestTokenWorkload exercises the second workload end to end (its
// over-balance transfers revert, so the abort path is live).
func TestTokenWorkload(t *testing.T) {
	w, err := NewWorkload("token", Options{Seed: 3, Accounts: 300, Skew: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rep := shortRun(t, Config{Workload: w, Nodes: 2, BlockSize: 100, Duration: time.Second})
	if rep.Committed == 0 {
		t.Fatalf("nothing committed: %v", rep)
	}
}

// TestChaosFailpointsHoldOracles arms the mempool failpoints the soak
// tier uses and checks the run's own oracles still pass: admission
// faults drop transactions, they must never diverge state or stall the
// watermark.
func TestChaosFailpointsHoldOracles(t *testing.T) {
	rep := shortRun(t, Config{
		Nodes: 2, BlockSize: 100,
		Seed: 42,
		Failpoints: map[fail.Name]fail.Spec{
			fail.MempoolAdmit: {Mode: fail.ModeError, Prob: 0.05},
		},
	})
	if rep.Committed == 0 {
		t.Fatalf("nothing committed under chaos: %v", rep)
	}
	if rep.Admitted >= rep.Submitted {
		t.Fatalf("admission faults armed but nothing dropped (admitted %d of %d)",
			rep.Admitted, rep.Submitted)
	}
}

// TestUnknownWorkloadAndMissingConfig pin the constructor errors.
func TestUnknownWorkloadAndMissingConfig(t *testing.T) {
	if _, err := NewWorkload("ycsb", Options{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(context.Background(), Config{Duration: time.Second}); err == nil {
		t.Fatal("nil workload accepted")
	}
	w, _ := NewWorkload("smallbank", Options{Accounts: 10})
	if _, err := Run(context.Background(), Config{Workload: w}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
