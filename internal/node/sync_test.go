package node

import (
	"context"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/p2p"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// TestLateJoinerSyncsToSameRoot grows a chain on one node, then has a
// fresh node join, request the missing blocks, and process to the same
// state root — the paper's "full node synchronizes the entire system
// state" role.
func TestLateJoinerSyncsToSameRoot(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 8, Accounts: 300, Skew: 0.5, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(600)
	genesis := genesisFor(t, gen, txs)

	build := func(id string) *Node {
		cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
		cfg.GenesisWrites = genesis
		n, err := New(id, kvstore.NewMemory(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	veteran := build("veteran")
	miner := NewMiner(veteran, types.AddressFromUint64(1), 100)
	miner.AddTxs(txs)
	growEpochs(t, veteran, []*Miner{miner}, 3)
	if veteran.NextEpoch() < 4 {
		t.Fatalf("veteran only reached epoch %d", veteran.NextEpoch()-1)
	}

	// A fresh node joins and syncs.
	net := p2p.NewNetwork(p2p.Config{QueueLen: 64})
	defer net.Close()
	vetEp, err := net.Join("veteran")
	if err != nil {
		t.Fatal(err)
	}
	joiner := build("joiner")
	joinEp, err := net.Join("joiner")
	if err != nil {
		t.Fatal(err)
	}

	joiner.RequestSync(joinEp, "veteran")
	// Serve the request on the veteran, deliver the response on the
	// joiner.
	deadline := time.After(5 * time.Second)
	synced := false
	for !synced {
		select {
		case msg := <-vetEp.Inbox():
			if _, err := veteran.HandleMessage(vetEp, msg); err != nil {
				t.Fatal(err)
			}
		case msg := <-joinEp.Inbox():
			if _, err := joiner.HandleMessage(joinEp, msg); err != nil {
				t.Fatal(err)
			}
			if msg.Type == p2p.MsgBlocks {
				synced = true
			}
		case <-deadline:
			t.Fatal("sync never completed")
		}
	}

	if _, err := joiner.ProcessReadyEpochs(); err != nil {
		t.Fatal(err)
	}
	// The joiner processes at least the veteran's finalized prefix; at
	// matching epochs the roots must be identical.
	if joiner.NextEpoch() < 2 {
		t.Fatalf("joiner stuck at epoch %d", joiner.NextEpoch()-1)
	}
	if joiner.NextEpoch() == veteran.NextEpoch() {
		if joiner.StateRoot() != veteran.StateRoot() {
			t.Fatalf("synced joiner root %s != veteran %s",
				joiner.StateRoot().Short(), veteran.StateRoot().Short())
		}
		return
	}
	// Otherwise compare at the joiner's last processed epoch via the
	// veteran's recorded history.
	e := joiner.NextEpoch() - 1
	veteran.mu.Lock()
	want, ok := veteran.roots[e]
	veteran.mu.Unlock()
	if !ok {
		t.Fatalf("veteran has no root for epoch %d", e)
	}
	if joiner.StateRoot() != want {
		t.Fatalf("epoch %d: joiner root %s != veteran %s", e, joiner.StateRoot().Short(), want.Short())
	}
}

func TestBlocksAboveOrdering(t *testing.T) {
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(2), 10)
	growEpochs(t, n, []*Miner{miner}, 2)

	blocks := n.Ledger().BlocksAbove(0)
	if len(blocks) < 4 {
		t.Fatalf("too few blocks: %d", len(blocks))
	}
	// Parents must precede children.
	seen := map[types.Hash]bool{}
	for c := 0; c < n.Ledger().Chains(); c++ {
		// genesis blocks are implicit ancestors
	}
	for _, b := range blocks {
		if b.Header.Height > 1 && !seen[b.Header.ParentHash] {
			t.Fatalf("child %s delivered before parent", b.Hash().Short())
		}
		seen[b.Hash()] = true
	}
	// Height filter.
	above1 := n.Ledger().BlocksAbove(1)
	for _, b := range above1 {
		if b.Header.Height <= 1 {
			t.Fatalf("block at height %d leaked past filter", b.Header.Height)
		}
	}
}

// TestNodeRestartFromPersistedStore processes epochs with persistence on,
// "crashes" (drops all in-memory state), reopens over the same LSM
// directory, and must come back at the same epoch and root — then keep
// processing.
func TestNodeRestartFromPersistedStore(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Node, kvstore.Store) {
		store, err := kvstore.OpenLSM(dir, kvstore.DefaultLSMOptions())
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
		cfg.Persist = true
		gen, err := workload.NewGenerator(workload.Config{
			Seed: 6, Accounts: 200, Skew: 0.3, InitialBalance: 1_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.GenesisWrites = genesisFor(t, gen, gen.Txs(400))
		n, err := New("durable", store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n, store
	}

	n1, store1 := open()
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 6, Accounts: 200, Skew: 0.3, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n1, types.AddressFromUint64(1), 100)
	miner.AddTxs(gen.Txs(400))
	growEpochs(t, n1, []*Miner{miner}, 2)
	wantEpoch, wantRoot := n1.NextEpoch(), n1.StateRoot()
	if wantEpoch < 3 {
		t.Fatalf("only reached epoch %d", wantEpoch-1)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same epoch, same root, no genesis re-application.
	n2, store2 := open()
	defer store2.Close()
	if n2.NextEpoch() != wantEpoch {
		t.Fatalf("restart epoch %d, want %d", n2.NextEpoch(), wantEpoch)
	}
	if n2.StateRoot() != wantRoot {
		t.Fatalf("restart root %s, want %s", n2.StateRoot().Short(), wantRoot.Short())
	}
	// The ledger must have replayed the canonical chains.
	for c := uint32(0); c < 2; c++ {
		if n2.Ledger().Height(c) < wantEpoch-1 {
			t.Fatalf("chain %d restored to height %d", c, n2.Ledger().Height(c))
		}
	}
	// And the node keeps processing new epochs after restart.
	miner2 := NewMiner(n2, types.AddressFromUint64(1), 100)
	miner2.AddTxs(gen.Txs(200))
	growEpochs(t, n2, []*Miner{miner2}, wantEpoch)
	if n2.NextEpoch() <= wantEpoch {
		t.Fatal("node did not progress after restart")
	}
}

// TestHandleMessageDispatch covers the message router: txs surface to the
// caller, unknown types are ignored, block gossip feeds the ledger.
func TestHandleMessageDispatch(t *testing.T) {
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := p2p.NewNetwork(p2p.Config{})
	defer net.Close()
	ep, err := net.Join("x")
	if err != nil {
		t.Fatal(err)
	}

	// MsgTxs returns the transactions.
	txs, err := n.HandleMessage(ep, p2p.Message{Type: p2p.MsgTxs, Txs: []*types.Transaction{{Nonce: 1}}})
	if err != nil || len(txs) != 1 {
		t.Fatalf("MsgTxs: %v %d", err, len(txs))
	}
	// Unknown type is a no-op.
	if _, err := n.HandleMessage(ep, p2p.Message{Type: p2p.MsgType(99)}); err != nil {
		t.Fatal(err)
	}
	// A valid block lands in the ledger; a duplicate is benign.
	miner := NewMiner(n, types.AddressFromUint64(1), 10)
	b, err := miner.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.HandleMessage(ep, p2p.Message{Type: p2p.MsgBlock, Block: b}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.HandleMessage(ep, p2p.Message{Type: p2p.MsgBlock, Block: b}); err != nil {
		t.Fatalf("duplicate gossip surfaced: %v", err)
	}
	if n.Ledger().Height(0) != 1 {
		t.Fatal("gossiped block not added")
	}
	// MsgGetBlocks triggers a reply toward the requester.
	requester, err := net.Join("req")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.HandleMessage(ep, p2p.Message{Type: p2p.MsgGetBlocks, From: "req", Height: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-requester.Inbox():
		if msg.Type != p2p.MsgBlocks || len(msg.Blocks) != 1 {
			t.Fatalf("sync reply = %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no sync reply")
	}
}

// TestRestoreRejectsOutOfOrder covers the ledger restore contract.
func TestRestoreRejectsOutOfOrder(t *testing.T) {
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(1), 10)
	b1, err := miner.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2, err := miner.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := dag.NewLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	// Child before parent: rejected.
	if err := fresh.Restore([]*types.Block{b2}, 0); err == nil {
		t.Fatal("out-of-order restore accepted")
	}
	// Parent-first: accepted, canonical rebuilt.
	if err := fresh.Restore([]*types.Block{b1, b2}, 1); err != nil {
		t.Fatal(err)
	}
	if fresh.Height(0) != 2 || fresh.Finalized() != 1 {
		t.Fatalf("restored height %d finalized %d", fresh.Height(0), fresh.Finalized())
	}
}
