package node

import (
	"encoding/binary"
	"fmt"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/rlp"
	"github.com/nezha-dag/nezha/internal/types"
)

// Node persistence: the chain metadata a restarted node needs — processed
// epoch watermark, per-epoch state roots, and the canonical blocks — lives
// in the same key-value store as the state trie, under string-prefixed keys
// (trie nodes are keyed by exactly 32 raw bytes; these keys have different
// lengths, so the namespaces cannot collide).
//
// On New(), a node finding persisted metadata restores its ledger by
// replaying the stored canonical blocks (parents first), re-finalizes its
// watermark, and reopens the state at the last committed root — the
// restart story LevelDB gives the paper's prototype.

var (
	metaKey        = []byte("nezha/meta/v1")
	blockKeyPrefix = []byte("nezha/blk/") // + epoch(8B BE) + chain(4B BE)
)

func blockKey(epoch uint64, chain uint32) []byte {
	k := make([]byte, 0, len(blockKeyPrefix)+12)
	k = append(k, blockKeyPrefix...)
	k = binary.BigEndian.AppendUint64(k, epoch)
	k = binary.BigEndian.AppendUint32(k, chain)
	return k
}

// persistEpochLocked stores the epoch's canonical blocks and the updated
// metadata in one atomic batch. The meta record goes LAST into the batch:
// it is the commit point, so a crash that tears the batch mid-WAL replays
// blocks without the watermark — the epoch simply re-persists on the next
// run — never a watermark pointing at missing blocks.
func (n *Node) persistEpochLocked(e uint64, blocks []*types.Block) error {
	// Failpoints bracketing the durability write: "node/persist" fires
	// before anything is built (crash = nothing stored), and
	// "node/persist-done" after the batch is durable (crash = fully
	// stored, the restarted node must land on the NEW watermark). The
	// mid-write cases live in kvstore's own failpoints.
	if err := fail.HitTag(fail.NodePersist, n.id); err != nil {
		return fmt.Errorf("node: persist epoch %d: %w", e, err)
	}
	batch := &kvstore.Batch{}
	for _, b := range blocks {
		batch.Put(blockKey(e, b.Header.ChainID), types.EncodeBlock(b))
	}
	batch.Put(metaKey, n.encodeMetaLocked())
	if err := n.store.Apply(batch); err != nil {
		return fmt.Errorf("node: persist epoch %d: %w", e, err)
	}
	if err := fail.HitTag(fail.NodePersistDone, n.id); err != nil {
		return fmt.Errorf("node: persist epoch %d: %w", e, err)
	}
	return nil
}

// encodeMetaLocked serializes nextEpoch and the roots history.
func (n *Node) encodeMetaLocked() []byte {
	items := []rlp.Item{rlp.Uint(n.nextEpoch)}
	// Roots in ascending epoch order for determinism.
	for e := uint64(0); e < n.nextEpoch; e++ {
		root, ok := n.roots[e]
		if !ok {
			continue
		}
		items = append(items, rlp.List(rlp.Uint(e), rlp.String(root[:])))
	}
	return rlp.Encode(rlp.List(items...))
}

// restoreFromStore loads persisted metadata and blocks; returns false when
// the store holds no prior node state.
func (n *Node) restoreFromStore() (bool, error) {
	raw, found, err := n.store.Get(metaKey)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	item, err := rlp.Decode(raw)
	if err != nil || item.K != rlp.KindList || len(item.List) < 1 {
		return false, fmt.Errorf("node: corrupt metadata: %v", err)
	}
	next, err := rlp.DecodeUint(item.List[0].Str)
	if err != nil {
		return false, fmt.Errorf("node: corrupt metadata epoch: %w", err)
	}
	roots := map[uint64]types.Hash{}
	for _, entry := range item.List[1:] {
		if entry.K != rlp.KindList || len(entry.List) != 2 {
			return false, fmt.Errorf("node: corrupt root entry")
		}
		e, err := rlp.DecodeUint(entry.List[0].Str)
		if err != nil {
			return false, err
		}
		if len(entry.List[1].Str) != types.HashLen {
			return false, fmt.Errorf("node: corrupt root hash")
		}
		var root types.Hash
		copy(root[:], entry.List[1].Str)
		roots[e] = root
	}

	// Replay persisted canonical blocks, epoch by epoch (parents first).
	// The full Add path cannot run here — a block's committed tips may
	// include fork losers that were never persisted — so the ledger
	// trusts the derived fields it validated before persisting.
	var blocks []*types.Block
	for e := uint64(1); e < next; e++ {
		for c := uint32(0); c < uint32(n.ledger.Chains()); c++ {
			raw, found, err := n.store.Get(blockKey(e, c))
			if err != nil {
				return false, err
			}
			if !found {
				return false, fmt.Errorf("node: missing persisted block epoch %d chain %d", e, c)
			}
			b, err := types.DecodeBlock(raw)
			if err != nil {
				return false, fmt.Errorf("node: decode persisted block: %w", err)
			}
			blocks = append(blocks, b)
		}
	}
	if err := n.ledger.Restore(blocks, next-1); err != nil {
		return false, fmt.Errorf("node: replay persisted blocks: %w", err)
	}
	n.nextEpoch = next
	n.roots = roots
	return true, nil
}
