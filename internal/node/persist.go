package node

import (
	"encoding/binary"
	"fmt"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/rlp"
	"github.com/nezha-dag/nezha/internal/types"
)

// Node persistence: the chain metadata a restarted node needs — processed
// epoch watermark, per-epoch state roots, and the canonical blocks — lives
// in the same key-value store as the state trie, under string-prefixed keys
// (trie nodes are keyed by exactly 32 raw bytes; these keys have different
// lengths, so the namespaces cannot collide).
//
// On New(), a node finding persisted metadata restores its ledger by
// replaying the stored canonical blocks (parents first), re-finalizes its
// watermark, and reopens the state at the last committed root — the
// restart story LevelDB gives the paper's prototype.

var (
	metaKey        = []byte("nezha/meta/v1")
	blockKeyPrefix = []byte("nezha/blk/") // + epoch(8B BE) + chain(4B BE)
)

func blockKey(epoch uint64, chain uint32) []byte {
	k := make([]byte, 0, len(blockKeyPrefix)+12)
	k = append(k, blockKeyPrefix...)
	k = binary.BigEndian.AppendUint64(k, epoch)
	k = binary.BigEndian.AppendUint32(k, chain)
	return k
}

// persistEpochLocked stores the epoch's canonical blocks and the updated
// metadata in one atomic batch. The meta record goes LAST into the batch:
// it is the commit point, so a crash that tears the batch mid-WAL replays
// blocks without the watermark — the epoch simply re-persists on the next
// run — never a watermark pointing at missing blocks.
func (n *Node) persistEpochLocked(e uint64, blocks []*types.Block) error {
	// Failpoints bracketing the durability write: "node/persist" fires
	// before anything is built (crash = nothing stored), and
	// "node/persist-done" after the batch is durable (crash = fully
	// stored, the restarted node must land on the NEW watermark). The
	// mid-write cases live in kvstore's own failpoints.
	if err := fail.HitTag(fail.NodePersist, n.id); err != nil {
		return fmt.Errorf("node: persist epoch %d: %w", e, err)
	}
	batch := &kvstore.Batch{}
	for _, b := range blocks {
		batch.Put(blockKey(e, b.Header.ChainID), types.EncodeBlock(b))
	}
	batch.Put(metaKey, n.encodeMetaLocked())
	if err := n.store.Apply(batch); err != nil {
		return fmt.Errorf("node: persist epoch %d: %w", e, err)
	}
	if err := fail.HitTag(fail.NodePersistDone, n.id); err != nil {
		return fmt.Errorf("node: persist epoch %d: %w", e, err)
	}
	return nil
}

// encodeMetaLocked serializes nextEpoch and the roots history.
func (n *Node) encodeMetaLocked() []byte {
	items := []rlp.Item{rlp.Uint(n.nextEpoch)}
	// Roots in ascending epoch order for determinism.
	for e := uint64(0); e < n.nextEpoch; e++ {
		root, ok := n.roots[e]
		if !ok {
			continue
		}
		items = append(items, rlp.List(rlp.Uint(e), rlp.String(root[:])))
	}
	return rlp.Encode(rlp.List(items...))
}

// restoreFromStore loads persisted metadata and blocks; returns false when
// the store holds no prior node state.
func (n *Node) restoreFromStore() (bool, error) {
	raw, found, err := n.store.Get(metaKey)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	// The restore failpoint fires only on an actual restore (metadata
	// found), so the crash-point sweep can kill a node mid-recovery without
	// perturbing fresh starts.
	if err := fail.HitTag(fail.NodeRestore, n.id); err != nil {
		return false, fmt.Errorf("node: restore: %w", err)
	}
	item, err := rlp.Decode(raw)
	if err != nil || item.K != rlp.KindList || len(item.List) < 1 {
		return false, fmt.Errorf("node: corrupt metadata: %v", err)
	}
	next, err := rlp.DecodeUint(item.List[0].Str)
	if err != nil {
		return false, fmt.Errorf("node: corrupt metadata epoch: %w", err)
	}
	roots := map[uint64]types.Hash{}
	for _, entry := range item.List[1:] {
		if entry.K != rlp.KindList || len(entry.List) != 2 {
			return false, fmt.Errorf("node: corrupt root entry")
		}
		e, err := rlp.DecodeUint(entry.List[0].Str)
		if err != nil {
			return false, err
		}
		if len(entry.List[1].Str) != types.HashLen {
			return false, fmt.Errorf("node: corrupt root hash")
		}
		var root types.Hash
		copy(root[:], entry.List[1].Str)
		roots[e] = root
	}

	// Replay persisted canonical blocks, epoch by epoch (parents first).
	// The full Add path cannot run here — a block's committed tips may
	// include fork losers that were never persisted — so the ledger
	// trusts the derived fields it validated before persisting.
	var blocks []*types.Block
	for e := uint64(1); e < next; e++ {
		for c := uint32(0); c < uint32(n.ledger.Chains()); c++ {
			raw, found, err := n.store.Get(blockKey(e, c))
			if err != nil {
				return false, err
			}
			if !found {
				return false, fmt.Errorf("node: missing persisted block epoch %d chain %d", e, c)
			}
			b, err := types.DecodeBlock(raw)
			if err != nil {
				return false, fmt.Errorf("node: decode persisted block: %w", err)
			}
			blocks = append(blocks, b)
		}
	}
	if err := n.ledger.Restore(blocks, next-1); err != nil {
		return false, fmt.Errorf("node: replay persisted blocks: %w", err)
	}
	n.nextEpoch = next
	n.roots = roots
	if err := n.auditRecovery(blocks); err != nil {
		return false, err
	}
	return true, nil
}

// auditRecovery is the post-restart self-audit: before a restored node
// accepts any work it cross-checks what restoreFromStore rebuilt — the
// watermark against the persisted roots, the replayed ledger heights, and
// the re-derived assembly composition of every restored epoch — and
// refuses to start on any inconsistency. A node that rejoins with state
// subtly different from what it persisted poisons the cluster silently
// (the seed-3 lesson; DESIGN.md §15), so recovery fails loudly instead.
//
// blocks is the restored canonical sequence: epoch-major ascending from 1,
// chain-ascending within each epoch, exactly one block per (epoch, chain).
func (n *Node) auditRecovery(blocks []*types.Block) error {
	last := n.nextEpoch - 1
	for e := uint64(0); e <= last; e++ {
		if _, ok := n.roots[e]; !ok {
			return fmt.Errorf("node: recovery audit: watermark %d but no persisted root for epoch %d", last, e)
		}
	}
	chains := n.ledger.Chains()
	for c := 0; c < chains; c++ {
		if h := n.ledger.Height(uint32(c)); h < last {
			return fmt.Errorf("node: recovery audit: chain %d replayed to height %d, below watermark %d", c, h, last)
		}
	}
	if want := int(last) * chains; len(blocks) != want {
		return fmt.Errorf("node: recovery audit: restored %d canonical blocks, want %d (%d epochs x %d chains)", len(blocks), want, last, chains)
	}
	if !journal.Enabled() {
		return nil
	}
	// Re-derive each restored epoch's assembly digests. Where the
	// in-process ring still holds that epoch's pre-crash
	// node/epoch-assembly event (harness restarts share the recorder), the
	// replayed composition must match it byte-for-byte: a mismatch means
	// post-restart re-assembly is not identical to the never-crashed path —
	// the exact bug class behind the seed-3 divergence.
	prior := map[uint64][2]uint64{}
	for _, ev := range n.jr.Snapshot() {
		if ev.Kind != journal.NodeEpochAssembly {
			continue
		}
		var bd, td uint64
		for i := 0; i < int(ev.NumFields); i++ {
			switch ev.Fields[i].Key {
			case "bdigest":
				bd = ev.Fields[i].Val
			case "tdigest":
				td = ev.Fields[i].Val
			}
		}
		prior[ev.Epoch] = [2]uint64{bd, td}
	}
	const prime = 1099511628211
	bfold, tfold := uint64(14695981039346656037), uint64(14695981039346656037)
	for e := uint64(1); e <= last; e++ {
		// Take the epoch's blocks through the ledger's own ordering (OHIE
		// rank order), not the chain-ascending order they were loaded in:
		// the live pipeline assembles epochs via EpochBlocks, so this also
		// proves the persisted ranks reproduce the pre-crash canonical
		// order.
		group, ok := n.ledger.EpochBlocks(e)
		if !ok {
			return fmt.Errorf("node: recovery audit: restored ledger cannot serve epoch %d below watermark %d", e, last)
		}
		bd, td := AssemblyDigests(e, group)
		if p, ok := prior[e]; ok && (p[0] != bd || p[1] != td) {
			return fmt.Errorf("node: recovery audit: epoch %d re-assembly digests (%#x, %#x) differ from pre-restart assembly (%#x, %#x)",
				e, bd, td, p[0], p[1])
		}
		bfold = (bfold ^ bd) * prime
		tfold = (tfold ^ td) * prime
	}
	root := n.roots[last]
	n.jr.Emit(journal.NodeRecoveryAudit, last,
		journal.F("epochs", last),
		journal.F("bfold", bfold),
		journal.F("tfold", tfold),
		journal.F("root", journal.FoldBytes(root[:])))
	return nil
}
