package node

import (
	"context"
	"testing"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// mineAhead mines and submits `epochs` complete epochs WITHOUT processing
// them, so later processing sees a backlog — the shape the cross-epoch
// prevalidation overlap needs.
func mineAhead(t *testing.T, n *Node, m *Miner, epochs uint64) {
	t.Helper()
	ctx := context.Background()
	for i := 0; !n.Ledger().EpochReady(epochs, 0); i++ {
		if i > 10_000 {
			t.Fatal("epochs refuse to complete")
		}
		b, err := m.Mine(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SubmitBlock(b); err != nil && !isStale(err) {
			t.Fatal(err)
		}
	}
}

// TestStagesRecordedConcurrent: the concurrent pipeline reports its named
// stages (including the MVCC read-set prefetch kick before commit), with
// durations mirroring the legacy phase fields and task counts matching
// the epoch.
func TestStagesRecordedConcurrent(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 11, Accounts: 200, Skew: 0.3, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(150)
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("stages", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(9), 75)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, 1)

	epochs := n.Metrics().Epochs()
	if len(epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	for _, es := range epochs {
		want := []string{"validate", "execute", "schedule", "prefetch", "commit"}
		if len(es.Stages) != len(want) {
			t.Fatalf("epoch %d: %d stages recorded, want %d", es.Epoch, len(es.Stages), len(want))
		}
		for i, name := range want {
			if es.Stages[i].Name != name {
				t.Fatalf("epoch %d stage %d = %q, want %q", es.Epoch, i, es.Stages[i].Name, name)
			}
		}
		if es.Stages[0].Duration != es.Validate || es.Stages[1].Duration != es.Execute ||
			es.Stages[2].Duration != es.Control || es.Stages[4].Duration != es.Commit {
			t.Fatalf("epoch %d: stage durations diverge from legacy phase fields", es.Epoch)
		}
		if es.Stages[1].Tasks != es.Txs {
			t.Fatalf("epoch %d: execute stage saw %d tasks, epoch has %d txs", es.Epoch, es.Stages[1].Tasks, es.Txs)
		}
		if es.Txs > 0 && es.Stages[1].Busy <= 0 {
			t.Fatalf("epoch %d: execute stage recorded no busy time", es.Epoch)
		}
		if es.Stages[1].Workers < 1 || es.Stages[1].Workers > cfg.Workers {
			t.Fatalf("epoch %d: execute stage workers = %d", es.Epoch, es.Stages[1].Workers)
		}
	}

	// The aggregated summary carries the same stage names.
	sum := n.Metrics().Summarize()
	if len(sum.Stages) != 5 || sum.Stages[0].Name != "validate" {
		t.Fatalf("summary stages: %+v", sum.Stages)
	}
}

// TestStagesRecordedSerial: the serial baseline runs validate+serial and
// still splits the legacy execute/commit fields.
func TestStagesRecordedSerial(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 12, Accounts: 100, Skew: 0, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(40)
	cfg := testConfig(1, nil) // nil scheduler selects the serial baseline
	cfg.VerifySchedules = false
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("serial-stages", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(2), 40)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, 1)

	es := n.Metrics().Epochs()[0]
	if len(es.Stages) != 2 || es.Stages[0].Name != "validate" || es.Stages[1].Name != "serial" {
		t.Fatalf("serial stages: %+v", es.Stages)
	}
	if es.Execute+es.Commit != es.Stages[1].Duration {
		t.Fatal("serial stage duration not split across execute+commit")
	}
}

// TestPrevalidationOverlap: with a backlog of signed epochs, the commit of
// epoch e prevalidates epoch e+1's signatures in the background, and the
// next validate stage consumes the verdicts (reporting the overlapped
// time) — while producing the exact same state roots as a node processing
// the same blocks with no backlog (and therefore no overlap).
func TestPrevalidationOverlap(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 13, Accounts: 120, Skew: 0.2, InitialBalance: 1_000, Sign: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(240)
	mkNode := func(id string) (*Node, *Miner) {
		cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
		cfg.VerifySignatures = true
		cfg.Parallelism = 2
		cfg.GenesisWrites = genesisFor(t, gen, txs)
		n, err := New(id, kvstore.NewMemory(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMiner(n, types.AddressFromUint64(3), 60)
		m.AddTxs(txs)
		return n, m
	}

	// Overlapped node: mine the whole backlog, then process it in one go.
	n1, m1 := mkNode("overlap")
	mineAhead(t, n1, m1, 4)
	results, err := n1.ProcessReadyEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 4 {
		t.Fatalf("processed %d epochs, want >= 4", len(results))
	}
	overlapped := 0
	for _, res := range results[1:] { // epoch 1 has no preceding commit
		if len(res.Stats.Stages) == 0 || res.Stats.Stages[0].Name != "validate" {
			t.Fatalf("epoch %d: missing validate stage", res.Epoch)
		}
		if res.Stats.Stages[0].Overlap > 0 {
			overlapped++
		}
	}
	if overlapped == 0 {
		t.Fatal("no epoch consumed a background prevalidation")
	}

	// Lockstep node: identical blocks, processed as they arrive, so every
	// signature check runs inline. Roots must match epoch for epoch.
	n2, m2 := mkNode("lockstep")
	growEpochs(t, n2, []*Miner{m2}, uint64(len(results)))
	for _, res := range results {
		if root, ok := n2.roots[res.Epoch]; !ok || root != res.StateRoot {
			t.Fatalf("epoch %d: overlapped root %x != lockstep root %x", res.Epoch, res.StateRoot, root)
		}
	}
}

// TestPrevalidationCatchesForgery: a forged transaction in a backlogged
// epoch is caught by the background prevalidation path too — the block is
// discarded exactly as the inline path would.
func TestPrevalidationCatchesForgery(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 14, Accounts: 80, Skew: 0, InitialBalance: 1_000, Sign: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(120)
	// Forge a transaction that will land in a later block: content no
	// longer matches its signature.
	txs[100].Value++

	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	cfg.VerifySignatures = true
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("forged", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(7), 40)
	miner.AddTxs(txs)
	mineAhead(t, n, miner, 3)
	results, err := n.ProcessReadyEpochs()
	if err != nil {
		t.Fatal(err)
	}
	discarded := 0
	for _, res := range results {
		discarded += len(res.Discarded)
	}
	if discarded != 1 {
		t.Fatalf("%d blocks discarded, want exactly the forged one", discarded)
	}
}
