package node

import (
	"errors"

	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/p2p"
	"github.com/nezha-dag/nezha/internal/types"
)

// Block synchronization: the paper's deployment includes a full node whose
// job is to "synchronize the entire system state" (§VI-A). Synchronization
// here is block-based — a late joiner fetches the canonical blocks it is
// missing and replays the deterministic pipeline, which reproduces the
// exact state every other node holds (state roots are checked per epoch by
// validation, so a lying sync peer cannot corrupt the joiner silently: its
// blocks simply fail PoW or root checks and are discarded).

// MinHeight returns the lowest canonical chain height — everything at or
// below it is fully synchronized.
func (n *Node) MinHeight() uint64 {
	min := n.ledger.Height(0)
	for c := uint32(1); c < uint32(n.ledger.Chains()); c++ {
		if h := n.ledger.Height(c); h < min {
			min = h
		}
	}
	return min
}

// DefaultSyncBatch is the MsgBlocks response cap when Config.SyncBatch is
// zero: large enough that a small cluster catches up in one round trip,
// small enough that serving a long-offline joiner never serializes the
// whole chain into one message.
const DefaultSyncBatch = 128

// syncBatch resolves Config.SyncBatch.
func (n *Node) syncBatch() int {
	if n.cfg.SyncBatch > 0 {
		return n.cfg.SyncBatch
	}
	return DefaultSyncBatch
}

// HandleSyncRequest serves a MsgGetBlocks: it replies with every block it
// knows — canonical and fork candidates, because committed tips may point
// at candidates — above the requested height, capped near Config.SyncBatch
// blocks per response. The cap cuts at a height boundary so each reply
// covers a complete height window (request Height, UpTo]: the requester
// can advance its paging cursor to UpTo knowing nothing below it was
// withheld, even while some of its blocks still sit in the orphan buffer
// waiting for tips from higher windows. A truncated reply sets More.
func (n *Node) HandleSyncRequest(ep *p2p.Endpoint, msg p2p.Message) {
	all := n.ledger.SyncBlocksAbove(msg.Height)
	if len(all) == 0 {
		return
	}
	blocks, more := all, false
	if batch := n.syncBatch(); len(all) > batch {
		cutH := all[batch].Header.Height
		if all[0].Header.Height == cutH {
			// The window's first height level alone exceeds the batch:
			// ship the whole level anyway, a partial level would let the
			// requester advance past blocks it never saw.
			end := batch
			for end < len(all) && all[end].Header.Height == cutH {
				end++
			}
			blocks, more = all[:end], end < len(all)
		} else {
			// Exclude the partially-covered level at the cut.
			end := batch
			for end > 0 && all[end-1].Header.Height == cutH {
				end--
			}
			blocks, more = all[:end], true
		}
	}
	syncServed(n.id).Add(float64(len(blocks)))
	ep.Send(msg.From, p2p.Message{
		Type:   p2p.MsgBlocks,
		Blocks: blocks,
		UpTo:   blocks[len(blocks)-1].Header.Height,
		More:   more,
	})
}

// HandleSyncResponse ingests a MsgBlocks batch, tolerating duplicates,
// already-final blocks, and out-of-order delivery (the orphan buffer
// reassembles). It returns the number of blocks accepted and the first
// hard error (invalid blocks from a malicious peer).
func (n *Node) HandleSyncResponse(msg p2p.Message) (int, error) {
	accepted := 0
	for _, b := range msg.Blocks {
		err := n.SubmitBlock(b)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, dag.ErrDuplicateBlock),
			errors.Is(err, dag.ErrBelowFinal),
			errors.Is(err, dag.ErrUnknownParent):
			// Benign: already known, already final, or buffered.
		default:
			return accepted, err
		}
	}
	return accepted, nil
}

// RequestSync asks a peer for everything above this node's lowest fully-
// synchronized height.
func (n *Node) RequestSync(ep *p2p.Endpoint, peer string) {
	ep.Send(peer, p2p.Message{Type: p2p.MsgGetBlocks, Height: n.MinHeight()})
}

// HandleMessage dispatches one network message to the appropriate handler;
// the event loops of cmd/nezha-node and the examples route through it.
// MsgTxs is returned to the caller (miner wiring is the caller's concern).
func (n *Node) HandleMessage(ep *p2p.Endpoint, msg p2p.Message) ([]*types.Transaction, error) {
	switch msg.Type {
	case p2p.MsgBlock:
		err := n.SubmitBlock(msg.Block)
		if err != nil && !errors.Is(err, dag.ErrDuplicateBlock) &&
			!errors.Is(err, dag.ErrBelowFinal) && !errors.Is(err, dag.ErrUnknownParent) {
			return nil, err
		}
		return nil, nil
	case p2p.MsgGetBlocks:
		n.HandleSyncRequest(ep, msg)
		return nil, nil
	case p2p.MsgBlocks:
		_, err := n.HandleSyncResponse(msg)
		return nil, err
	case p2p.MsgTxs:
		return msg.Txs, nil
	default:
		return nil, nil
	}
}
