// Package node wires every substrate into the paper's full transaction-
// processing pipeline (§III-B, Fig. 2(b)):
//
//	validation → concurrent speculative execution → concurrency control →
//	group-concurrent commitment
//
// A Node owns an OHIE ledger, a state database, a worker pool, and a
// pluggable concurrency-control scheme (Nezha, the CG baseline, or serial
// execution). Epochs are processed strictly in order; every node processing
// the same epochs independently converges to the same state root — the
// agreement tests assert exactly that.
package node

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/mvcc"
	"github.com/nezha-dag/nezha/internal/statedb"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/vm"
)

// Node errors.
var (
	// ErrEpochNotReady is returned when a chain is still missing its
	// block for the requested epoch.
	ErrEpochNotReady = errors.New("node: epoch not ready")
	// ErrEpochOutOfOrder is returned when epochs are processed out of
	// sequence.
	ErrEpochOutOfOrder = errors.New("node: epoch out of order")
)

// Config assembles a node.
type Config struct {
	// Consensus parameterizes the OHIE ledger and PoW checks.
	Consensus consensus.Params
	// Scheduler is the concurrency-control scheme. Nil selects the
	// paper's serial baseline: transactions execute and commit one by
	// one with no speculation.
	Scheduler types.Scheduler
	// Workers sizes the execution/commit pool; 0 means GOMAXPROCS.
	Workers int
	// Contracts maps addresses to MiniVM bytecode. Transactions to other
	// addresses are treated as plain value transfers.
	Contracts map[types.Address][]byte
	// VerifySchedules re-checks every schedule with core.VerifySchedule
	// before committing (a paranoia mode used by tests; adds latency).
	VerifySchedules bool
	// VerifySignatures makes the validation phase check every block
	// transaction's signature; blocks carrying an invalid signature are
	// discarded like blocks with a bad state root.
	VerifySignatures bool
	// GenesisWrites seeds the state before epoch 1 (e.g. initial account
	// balances).
	GenesisWrites []types.WriteEntry
	// ConfirmDepth is how many blocks must sit above an epoch on every
	// chain before the node processes it. 0 suits deterministic
	// single-miner settings; multi-miner networks need >= 1 so that
	// deterministic fork choice converges before epochs finalize.
	ConfirmDepth uint64
	// Parallelism sizes the pipeline's background work — the signature
	// prevalidation of epoch e+1 that overlaps epoch e's commit; 0 means
	// Workers. It is distinct from Workers so the overlapped stage can be
	// kept off the critical path's cores.
	Parallelism int
	// Persist stores canonical blocks and chain metadata in the node's
	// key-value store after every epoch, and New restores them on
	// reopen — the restart durability a real full node has. Off by
	// default (benchmarks measure the paper's phases, which exclude it).
	Persist bool
	// RetainEpochStats caps how many per-epoch stat records the node's
	// Collector keeps (a ring of the most recent); 0 retains everything,
	// which long-running nodes should avoid. Live /metrics series are
	// unaffected — only the detailed Collector window shrinks.
	RetainEpochStats int
	// SyncBatch caps how many blocks one MsgBlocks response carries
	// (rounded to a whole height window); a truncated response sets
	// Message.More and Message.UpTo so the requester keeps paging. A
	// long-offline joiner would otherwise make its peer serialize the
	// entire chain into one message. 0 means DefaultSyncBatch.
	SyncBatch int
	// SnapshotExecution selects the legacy per-epoch snapshot-copy
	// execution path instead of the copy-free MVCC view. It is retained
	// as the differential reference: internal/check runs both modes over
	// identical epochs and asserts identical roots and commit groups.
	SnapshotExecution bool
	// PredictReads, when set, predicts the state keys a contract
	// transaction will read (from its payload alone) so the prefetcher
	// stage can warm them under the previous epoch's commit. Nil means
	// contract read sets are not predicted; native transfers are always
	// predicted from the sender/recipient balance cells. Mispredictions
	// are harmless — the prefetch is a pure cache warm-up.
	PredictReads func(tx *types.Transaction) []types.Key
	// Mempool, when set, replaces the miner's flat FIFO transaction pool
	// with the sharded admission-controlled pool of internal/mempool:
	// AddTxs becomes batched admission (typed backpressure errors, rate
	// limits, deterministic eviction) and block assembly takes the pool's
	// priority/nonce order. Nil — the default — keeps the legacy pool,
	// byte-identical to pre-mempool behaviour; the assembled-epoch tests
	// and the differential oracles rely on that. The Tag is filled with
	// the node id when empty.
	Mempool *mempool.Config
}

// Node is one full node. Public methods are safe for concurrent use.
type Node struct {
	id  string
	cfg Config

	store  kvstore.Store
	ledger *dag.Ledger
	state  *statedb.StateDB
	coll   *metrics.Collector
	// jr is the node's flight recorder (internal/journal): pipeline
	// outcomes, sync transitions, and statedb epoch boundaries append to
	// it whenever journaling is enabled process-wide. Never nil.
	jr *journal.Recorder

	mu        sync.Mutex
	nextEpoch uint64
	// orphans buffers blocks whose ancestry has not arrived yet.
	orphans []*types.Block
	// roots[e] is the state root after processing epoch e; roots[0] is
	// the genesis root. Validation accepts a block whose StateRoot
	// matches the root of a processed epoch below its height.
	roots map[uint64]types.Hash
	// preval is the in-flight background signature prevalidation, if any
	// (see pipeline.go).
	preval *prevalidation
	// prefetch is the in-flight background read-set prefetch, if any
	// (see pipeline.go).
	prefetch *prefetchRun
	// prevMVCC is the last-exported MVCC stats snapshot; the telemetry
	// hook diffs against it so registry counters stay monotonic.
	prevMVCC mvcc.Stats
	// pendingPersist holds an epoch whose in-memory commit succeeded but
	// whose durability write failed (a transient disk error). The state
	// advance cannot be rolled back — re-running the epoch would execute
	// against post-epoch state — so the node instead re-attempts the
	// persist before it processes anything further; until it succeeds the
	// watermark stalls rather than leaving a hole no restart could replay.
	pendingPersist *pendingEpoch
	// tracer, when set, records per-stage spans for Chrome trace-event
	// export (see telemetry.go). Nil means no tracing.
	tracer *metrics.Tracer
}

// parallelism resolves cfg.Parallelism (0 means Workers).
func (n *Node) parallelism() int {
	if n.cfg.Parallelism > 0 {
		return n.cfg.Parallelism
	}
	return n.cfg.Workers
}

// New creates a node over the given block/state store.
func New(id string, store kvstore.Store, cfg Config) (*Node, error) {
	if err := cfg.Consensus.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	ledger, err := dag.NewLedger(cfg.Consensus.Chains)
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:        id,
		cfg:       cfg,
		store:     store,
		ledger:    ledger,
		coll:      metrics.NewCollector(),
		jr:        journal.For(id),
		nextEpoch: 1,
	}
	n.coll.SetCap(cfg.RetainEpochStats)
	if cfg.Persist {
		restored, err := n.restoreFromStore()
		if err != nil {
			return nil, err
		}
		if restored {
			n.state = statedb.Open(store, n.roots[n.nextEpoch-1])
			n.state.SetJournal(n.jr)
			return n, nil
		}
	}
	n.state = statedb.Open(store, mpt.EmptyRoot)
	n.state.SetJournal(n.jr)
	if len(cfg.GenesisWrites) > 0 {
		if _, err := n.state.Commit(cfg.GenesisWrites); err != nil {
			return nil, fmt.Errorf("node: genesis: %w", err)
		}
	}
	n.roots = map[uint64]types.Hash{0: n.state.Root()}
	return n, nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Ledger exposes the node's OHIE ledger.
func (n *Node) Ledger() *dag.Ledger { return n.ledger }

// StateRoot returns the current head state root.
func (n *Node) StateRoot() types.Hash { return n.state.Root() }

// State exposes the node's state database (read paths for tools/examples).
func (n *Node) State() *statedb.StateDB { return n.state }

// Metrics exposes the node's collector.
func (n *Node) Metrics() *metrics.Collector { return n.coll }

// NextEpoch returns the next epoch number the node will process.
func (n *Node) NextEpoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextEpoch
}

// RootAt returns the state root recorded after processing epoch e (epoch 0
// is the genesis root). The chaos harness compares these across nodes.
func (n *Node) RootAt(e uint64) (types.Hash, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	root, ok := n.roots[e]
	return root, ok
}

// SubmitBlock verifies a block's proof of work and adds it to the ledger.
// Blocks whose ancestry has not arrived yet are buffered and retried after
// later submissions (gossip delivers out of order); duplicate and
// below-watermark blocks are reported via dag's errors.
func (n *Node) SubmitBlock(b *types.Block) error {
	// Failpoint: reject or crash on block ingest (a full disk, a corrupted
	// message, a fault injected by the chaos harness).
	if err := fail.HitTag(fail.NodeSubmit, n.id); err != nil {
		return err
	}
	if err := consensus.VerifyPoW(b, n.cfg.Consensus); err != nil {
		return err
	}
	err := n.ledger.Add(b)
	if errors.Is(err, dag.ErrUnknownParent) {
		n.mu.Lock()
		if len(n.orphans) < maxOrphans {
			n.orphans = append(n.orphans, b)
		}
		n.mu.Unlock()
		return err
	}
	if err != nil {
		return err
	}
	n.retryOrphans()
	return nil
}

// maxOrphans bounds the out-of-order buffer.
const maxOrphans = 4096

// retryOrphans re-submits buffered blocks until no further progress.
func (n *Node) retryOrphans() {
	for {
		n.mu.Lock()
		pending := n.orphans
		n.orphans = nil
		n.mu.Unlock()
		if len(pending) == 0 {
			return
		}
		progress := false
		var still []*types.Block
		for _, b := range pending {
			err := n.ledger.Add(b)
			switch {
			case err == nil:
				progress = true
			case errors.Is(err, dag.ErrUnknownParent):
				still = append(still, b)
			default:
				// Duplicate, finalized, or invalid: drop.
			}
		}
		n.mu.Lock()
		n.orphans = append(still, n.orphans...)
		n.mu.Unlock()
		if !progress {
			return
		}
	}
}

// EpochResult reports one processed epoch.
type EpochResult struct {
	Epoch     uint64
	StateRoot types.Hash
	Schedule  *types.Schedule
	Stats     metrics.EpochStats
	// Discarded lists blocks dropped by the validation phase.
	Discarded []types.Hash
}

// pendingEpoch is a processed epoch still owed to the store (see
// Node.pendingPersist).
type pendingEpoch struct {
	e      uint64
	blocks []*types.Block
}

// flushPendingPersistLocked re-attempts a previously failed durability
// write. Nothing else may persist (or process) until the owed epoch is on
// disk: persisted epochs must stay contiguous or restoreFromStore finds a
// watermark pointing at missing blocks.
func (n *Node) flushPendingPersistLocked() error {
	if n.pendingPersist == nil {
		return nil
	}
	if err := n.persistEpochLocked(n.pendingPersist.e, n.pendingPersist.blocks); err != nil {
		return err
	}
	n.pendingPersist = nil
	return nil
}

// ProcessReadyEpochs processes every fully-assembled epoch in order and
// returns their results. An epoch owed to the store by an earlier failed
// persist is flushed first, even when no new epoch is ready.
func (n *Node) ProcessReadyEpochs() ([]*EpochResult, error) {
	n.mu.Lock()
	err := n.flushPendingPersistLocked()
	n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var out []*EpochResult
	for {
		n.mu.Lock()
		e := n.nextEpoch
		n.mu.Unlock()
		if !n.ledger.EpochReady(e, n.cfg.ConfirmDepth) {
			return out, nil
		}
		res, err := n.ProcessEpoch(e)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
}

// ProcessAssembledEpoch runs the pipeline on an externally-assembled block
// set, bypassing ledger assembly and proof-of-work. The benchmark harness
// uses it to control block concurrency exactly (OHIE's hash assignment
// would otherwise randomize how many blocks land per chain per epoch). The
// blocks are treated as the node's next epoch; their headers must already
// carry the node's current state root and the correct height for
// validation to pass.
func (n *Node) ProcessAssembledEpoch(blocks []*types.Block) (*EpochResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.processBlocksLocked(n.nextEpoch, blocks)
}

// ProcessEpoch runs the four-phase pipeline on epoch e. Epochs must be
// processed consecutively.
func (n *Node) ProcessEpoch(e uint64) (*EpochResult, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e != n.nextEpoch {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrEpochOutOfOrder, e, n.nextEpoch)
	}
	blocks, ok := n.ledger.EpochBlocks(e)
	if !ok {
		return nil, fmt.Errorf("%w: epoch %d", ErrEpochNotReady, e)
	}
	return n.processBlocksLocked(e, blocks)
}

// processBlocksLocked runs the epoch through the staged pipeline (see
// pipeline.go for the stages) and finalizes the result.
func (n *Node) processBlocksLocked(e uint64, blocks []*types.Block) (*EpochResult, error) {
	if err := n.flushPendingPersistLocked(); err != nil {
		return nil, err
	}
	stats := metrics.EpochStats{Epoch: e, BlockConcurrency: len(blocks)}
	er := &epochRun{
		number: e,
		blocks: blocks,
		stats:  &stats,
		res:    &EpochResult{Epoch: e},
	}
	stages := mvccStages
	switch {
	case n.cfg.Scheduler == nil:
		stages = serialStages
	case n.cfg.SnapshotExecution:
		stages = snapshotStages
	}
	err := n.runStages(er, stages)
	putResultsBuf(er.results)
	if err != nil {
		return nil, err
	}

	n.nextEpoch++
	root := n.state.Root()
	// Failpoint: corrupt the root this node records and reports for the
	// epoch, without touching the state itself — the forced convergence
	// failure the journal forensics meta-tests use to prove a chaos
	// divergence dumps journals naming the mismatched epoch-commit event.
	if err := fail.HitTag(fail.NodeDivergeRoot, n.id); err != nil {
		root[0] ^= 0x01
	}
	n.roots[e] = root
	n.ledger.Finalize(e)
	if n.cfg.Persist {
		if err := n.persistEpochLocked(e, er.epoch.Blocks); err != nil {
			n.pendingPersist = &pendingEpoch{e: e, blocks: er.epoch.Blocks}
			return nil, err
		}
	}
	// The epoch is durable (or durability is off): no view below the
	// post-commit generation can still be live, so the MVCC garbage
	// collector may fold everything older. A failed persist returns above
	// and stalls the watermark along with the persistence watermark.
	n.state.AdvanceWatermark()
	er.res.StateRoot = root
	er.res.Schedule = er.sched
	stats.Committed = er.sched.CommittedCount()
	er.res.Stats = stats
	n.coll.Record(stats)
	n.recordEpochMetrics(&stats, len(er.res.Discarded))
	n.jr.Emit(journal.NodeEpochCommit, e,
		journal.F("root", journal.FoldBytes(root[:])),
		journal.F("committed", uint64(stats.Committed)),
		journal.F("aborted", uint64(stats.Aborted)),
		journal.F("txs", uint64(stats.Txs)))
	return er.res, nil
}

// validSignatures checks every transaction signature in a block across the
// worker pool (signature verification is the validation phase's dominant
// cost on real chains). It is the inline fallback for blocks the
// background prevalidation did not cover.
func (n *Node) validSignatures(b *types.Block) bool {
	return n.checkSignatures(b, n.cfg.Workers)
}

// validStateRootLocked implements the validation-phase root check. OHIE's
// hash-based chain assignment means a miner cannot know pre-mining which
// height its block lands at, so the rule accepts the root of any processed
// epoch strictly below the block's height (the paper's lockstep clusters
// make this "the previous epoch" in practice; see DESIGN.md §7).
func (n *Node) validStateRootLocked(b *types.Block) bool {
	for epoch, root := range n.roots {
		if epoch < b.Header.Height && root == b.Header.StateRoot {
			return true
		}
	}
	return false
}

// CommitSchedule is the commitment phase (§III-B) as a reusable function:
// commit groups apply their writes concurrently (workers-wide) to a sharded
// in-memory overlay in increasing sequence order, and the updated cells
// then flush to the state trie in one batch. The benchmark harness calls it
// directly to measure commit latency per scheme.
func CommitSchedule(db *statedb.StateDB, sims []*types.SimResult, sched *types.Schedule, workers int) (types.Hash, error) {
	return commitScheduleInto(db, sims, sched, workers, newOverlay())
}

// commitScheduleInto is CommitSchedule writing through a caller-supplied
// (possibly pooled) overlay. The overlay must be empty.
func commitScheduleInto(db *statedb.StateDB, sims []*types.SimResult, sched *types.Schedule, workers int, ov *overlay) (types.Hash, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	byID := make(map[types.TxID]*types.SimResult, len(sims))
	for _, sim := range sims {
		byID[sim.Tx.ID] = sim
	}
	for _, group := range sched.Groups() {
		applyGroup(ov, group, byID, workers)
	}
	return db.Commit(ov.entries())
}

// simulate speculatively executes one transaction against a state reader
// (the epoch's snapshot or MVCC view).
func (n *Node) simulate(tx *types.Transaction, state statedb.Reader) *types.SimResult {
	sim := &types.SimResult{Tx: tx}
	code, isContract := n.cfg.Contracts[tx.To]
	if !isContract {
		n.simulateTransfer(tx, state, sim)
		return sim
	}
	res, err := vm.Execute(code, vm.Context{
		Contract: tx.To,
		Caller:   tx.From,
		Payload:  tx.Payload,
		GasLimit: tx.Gas,
	}, state)
	sim.Err = err
	if res != nil {
		sim.Reads = res.Reads
		sim.Writes = res.Writes
		sim.GasUsed = res.GasUsed
	}
	return sim
}

// simulateTransfer is the native value-transfer path: move tx.Value from
// the sender's to the recipient's balance cell, saturating at zero.
func (n *Node) simulateTransfer(tx *types.Transaction, state statedb.Reader, sim *types.SimResult) {
	fromKey, toKey := types.BalanceKey(tx.From), types.BalanceKey(tx.To)
	fromRaw, err := state.Get(fromKey)
	if err != nil {
		sim.Err = err
		return
	}
	toRaw, err := state.Get(toKey)
	if err != nil {
		sim.Err = err
		return
	}
	sim.Reads = []types.ReadEntry{{Key: fromKey, Value: fromRaw}, {Key: toKey, Value: toRaw}}
	from, to := decodeU64(fromRaw), decodeU64(toRaw)
	amount := tx.Value
	if amount > from {
		amount = from
	}
	sim.Writes = []types.WriteEntry{
		{Key: fromKey, Value: encodeU64(from - amount)},
		{Key: toKey, Value: encodeU64(to + amount)},
	}
	sortEntries(sim)
}

// applyGroup installs one commit group's writes. Transactions inside a
// group touch pairwise-distinct keys (scheduler invariant), so the workers
// can write shards concurrently without ordering.
func applyGroup(ov *overlay, group []types.TxID, byID map[types.TxID]*types.SimResult, workers int) {
	if len(group) < 2*workers {
		for _, id := range group {
			for _, w := range byID[id].Writes {
				ov.put(w.Key, w.Value)
			}
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(group) + workers - 1) / workers
	for start := 0; start < len(group); start += chunk {
		end := start + chunk
		if end > len(group) {
			end = len(group)
		}
		wg.Add(1)
		go func(ids []types.TxID) {
			defer wg.Done()
			for _, id := range ids {
				for _, w := range byID[id].Writes {
					ov.put(w.Key, w.Value)
				}
			}
		}(group[start:end])
	}
	wg.Wait()
}

// verifyAgainstState adapts a state reader (snapshot or MVCC view) to
// core.VerifySchedule's map interface.
func verifyAgainstState(state statedb.Reader, sims []*types.SimResult, sched *types.Schedule) error {
	// The verifier only reads keys that appear in some read set; collect
	// their pre-epoch values.
	values := make(map[types.Key][]byte)
	for _, sim := range sims {
		for _, r := range sim.Reads {
			if _, ok := values[r.Key]; ok {
				continue
			}
			v, err := state.Get(r.Key)
			if err != nil {
				return err
			}
			values[r.Key] = v
		}
	}
	return core.VerifySchedule(values, sims, sched)
}

// overlay is the sharded in-memory state the commitment phase writes into
// before flushing ("applies the write values … to an in-memory state",
// §III-B). Sharding lets same-group transactions commit concurrently.
type overlay struct {
	shards [16]overlayShard
}

type overlayShard struct {
	mu sync.Mutex
	m  map[types.Key][]byte
}

func newOverlay() *overlay {
	ov := &overlay{}
	for i := range ov.shards {
		ov.shards[i].m = make(map[types.Key][]byte)
	}
	return ov
}

func (ov *overlay) put(k types.Key, v []byte) {
	s := &ov.shards[k[0]&0x0f]
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// entries flattens the overlay in sorted key order (determinism for the
// trie walk; the MPT is history-independent, but a deterministic order
// keeps profiles stable).
func (ov *overlay) entries() []types.WriteEntry {
	var out []types.WriteEntry
	for i := range ov.shards {
		for k, v := range ov.shards[i].m {
			out = append(out, types.WriteEntry{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

func sortEntries(sim *types.SimResult) {
	sort.Slice(sim.Reads, func(i, j int) bool { return sim.Reads[i].Key.Less(sim.Reads[j].Key) })
	sort.Slice(sim.Writes, func(i, j int) bool { return sim.Writes[i].Key.Less(sim.Writes[j].Key) })
}

func encodeU64(v uint64) []byte {
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = byte(v)
		v >>= 8
	}
	return out
}

func decodeU64(raw []byte) uint64 {
	if len(raw) != 8 {
		return 0
	}
	var v uint64
	for _, b := range raw {
		v = v<<8 | uint64(b)
	}
	return v
}
