package node

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// testConfig returns a node config with the SmallBank contract deployed,
// instant mining, k chains, and the Nezha scheduler.
func testConfig(k int, sched types.Scheduler) Config {
	return Config{
		Consensus:       consensus.Params{Chains: k, DifficultyBits: 0},
		Scheduler:       sched,
		Workers:         4,
		Contracts:       map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
		VerifySchedules: true,
	}
}

// genesisFor seeds every account the given transactions touch.
func genesisFor(t *testing.T, gen *workload.Generator, txs []*types.Transaction) []types.WriteEntry {
	t.Helper()
	snap, err := gen.Snapshot(txs)
	if err != nil {
		t.Fatal(err)
	}
	writes := make([]types.WriteEntry, 0, len(snap))
	for k, v := range snap {
		writes = append(writes, types.WriteEntry{Key: k, Value: v})
	}
	return writes
}

// growEpochs mines and submits blocks (round-robin across the given
// miners) until the node has `epochs` complete epochs, processing as it
// goes.
func growEpochs(t *testing.T, n *Node, miners []*Miner, epochs uint64) {
	t.Helper()
	ctx := context.Background()
	for i := 0; n.Ledger().Height(0) < epochs || !n.Ledger().EpochReady(epochs, 0); i++ {
		if i > 10_000 {
			t.Fatal("epochs refuse to complete")
		}
		m := miners[i%len(miners)]
		b, err := m.Mine(ctx)
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		// Stale blocks are expected casualties of hash assignment.
		if err := n.SubmitBlock(b); err != nil && !isStale(err) {
			t.Fatalf("submit: %v", err)
		}
		if _, err := n.ProcessReadyEpochs(); err != nil {
			t.Fatalf("process: %v", err)
		}
	}
}

func isStale(err error) bool {
	return errors.Is(err, dag.ErrBelowFinal) || errors.Is(err, dag.ErrDuplicateBlock)
}

func TestSingleNodePipelineSmallBank(t *testing.T) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(600)
	cfg := testConfig(3, core.MustNewScheduler(core.DefaultConfig()))
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("full", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(99), 100)
	miner.AddTxs(txs)
	if miner.PoolSize() != 600 {
		t.Fatalf("pool = %d", miner.PoolSize())
	}

	growEpochs(t, n, []*Miner{miner}, 2)

	sum := n.Metrics().Summarize()
	if sum.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if sum.Txs == 0 || sum.Epochs == 0 {
		t.Fatalf("summary empty: %+v", sum)
	}
	if n.StateRoot() == (types.Hash{}) {
		t.Fatal("state root still empty")
	}
	// Committed writes must be observable: at least one touched account
	// balance differs from the genesis value.
	changed := false
	for _, tx := range txs {
		call, err := workload.DecodeCall(tx.Payload)
		if err != nil {
			t.Fatal(err)
		}
		v, err := n.State().Get(smallbank.CheckingKey(call.Acct1))
		if err != nil {
			t.Fatal(err)
		}
		if workload.DecodeBalance(v) != 10_000 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("no state change observed after committed epochs")
	}
}

// TestNodesAgreeAcrossSchedulers: two nodes running the SAME scheduler over
// the same blocks must converge to identical roots — and a Nezha node and a
// second Nezha node must agree (cross-scheme roots legitimately differ
// because abort sets differ).
func TestNodesAgreeOnStateRoot(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 3, Accounts: 200, Skew: 0.8, InitialBalance: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(400)

	build := func(id string) (*Node, error) {
		cfg := testConfig(4, core.MustNewScheduler(core.DefaultConfig()))
		cfg.GenesisWrites = genesisFor(t, gen, txs)
		return New(id, kvstore.NewMemory(), cfg)
	}
	n1, err := build("n1")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := build("n2")
	if err != nil {
		t.Fatal(err)
	}
	if n1.StateRoot() != n2.StateRoot() {
		t.Fatal("genesis roots differ")
	}

	// One miner attached to n1; every block is replayed into n2.
	miner := NewMiner(n1, types.AddressFromUint64(1), 50)
	miner.AddTxs(txs)
	ctx := context.Background()
	for i := 0; !n1.Ledger().EpochReady(3, 0); i++ {
		if i > 5000 {
			t.Fatal("epochs refuse to complete")
		}
		b, err := miner.Mine(ctx)
		if err != nil {
			t.Fatal(err)
		}
		err1 := n1.SubmitBlock(b)
		err2 := n2.SubmitBlock(b)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nodes disagree on block validity: %v vs %v", err1, err2)
		}
		if _, err := n1.ProcessReadyEpochs(); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.ProcessReadyEpochs(); err != nil {
			t.Fatal(err)
		}
	}
	if n1.NextEpoch() != n2.NextEpoch() {
		t.Fatalf("nodes at different epochs: %d vs %d", n1.NextEpoch(), n2.NextEpoch())
	}
	if n1.NextEpoch() < 3 {
		t.Fatal("fewer than 2 epochs processed")
	}
	if n1.StateRoot() != n2.StateRoot() {
		t.Fatalf("state roots diverge: %s vs %s", n1.StateRoot(), n2.StateRoot())
	}
}

// TestCGNodeMatchesNezhaCommittedSubset: with the CG scheduler the pipeline
// must also produce verified-serializable epochs (scheduler plugability).
func TestCGSchedulerInPipeline(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 5, Accounts: 2000, Skew: 0.2, InitialBalance: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(200)
	cfg := testConfig(2, cg.NewScheduler(cg.DefaultConfig()))
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("cg", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(7), 100)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, 1)
	if n.Metrics().Summarize().Committed == 0 {
		t.Fatal("CG pipeline committed nothing")
	}
}

// TestSerialBaselinePipeline: nil scheduler = serial execution; everything
// commits (no aborts possible) and state advances.
func TestSerialBaselinePipeline(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 9, Accounts: 100, Skew: 0.9, InitialBalance: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(150)
	cfg := testConfig(2, nil)
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("serial", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(3), 100)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, 1)
	sum := n.Metrics().Summarize()
	if sum.Aborted != 0 {
		t.Fatalf("serial execution aborted %d transactions", sum.Aborted)
	}
	if sum.Committed == 0 {
		t.Fatal("serial pipeline committed nothing")
	}
}

// TestSerialAndNezhaConvergeOnConflictFreeWorkload: when transactions have
// no conflicts at all (distinct accounts), serial and Nezha must produce
// the SAME final state root — parallelism must be semantically invisible.
func TestSerialAndNezhaConvergeOnConflictFreeWorkload(t *testing.T) {
	// Hand-build disjoint transactions: account i deposits into its own
	// checking cell.
	var txs []*types.Transaction
	for i := uint64(0); i < 100; i++ {
		txs = append(txs, &types.Transaction{
			From:    types.AddressFromUint64(i),
			To:      smallbank.ContractAddress,
			Nonce:   i,
			Gas:     100_000,
			Payload: workload.EncodeCall(workload.Call{Op: smallbank.OpDepositChecking, Acct1: i, Amount: 5}),
		})
	}
	var genesis []types.WriteEntry
	for i := uint64(0); i < 100; i++ {
		genesis = append(genesis,
			types.WriteEntry{Key: smallbank.CheckingKey(i), Value: workload.EncodeBalance(100)},
			types.WriteEntry{Key: smallbank.SavingsKey(i), Value: workload.EncodeBalance(100)},
		)
	}

	run := func(sched types.Scheduler) types.Hash {
		cfg := testConfig(2, sched)
		cfg.GenesisWrites = genesis
		n, err := New("x", kvstore.NewMemory(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		miner := NewMiner(n, types.AddressFromUint64(50), 100)
		miner.AddTxs(txs)
		growEpochs(t, n, []*Miner{miner}, 1)
		return n.StateRoot()
	}
	serial := run(nil)
	nezha := run(core.MustNewScheduler(core.DefaultConfig()))
	if serial != nezha {
		t.Fatalf("conflict-free workload: serial root %s != nezha root %s", serial, nezha)
	}
}

func TestProcessEpochOrderEnforced(t *testing.T) {
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ProcessEpoch(5); !errors.Is(err, ErrEpochOutOfOrder) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.ProcessEpoch(1); !errors.Is(err, ErrEpochNotReady) {
		t.Fatalf("err = %v", err)
	}
}

// TestValidationDiscardsBadStateRoot: a block carrying a forged state root
// must be discarded during validation and its transactions skipped.
func TestValidationDiscardsBadStateRoot(t *testing.T) {
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(1), 10)
	miner.AddTxs([]*types.Transaction{{
		From: types.AddressFromUint64(1), To: types.AddressFromUint64(2),
		Value: 5, Gas: 1000, Nonce: 1,
	}})

	// Sabotage the state root by mining with a doctored template: easiest
	// is to mine honestly, then corrupt and re-derive. A corrupted root
	// changes the hash, so re-mine manually at difficulty 0.
	b, err := miner.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b.Header.StateRoot = types.HashBytes([]byte("forged"))
	b.InvalidateHash()
	if err := n.Ledger().DeriveFields(b); err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitBlock(b); err != nil {
		t.Fatal(err)
	}
	res, err := n.ProcessEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discarded) != 1 {
		t.Fatalf("discarded = %v", res.Discarded)
	}
	if res.Stats.Txs != 0 {
		t.Fatal("transactions from a discarded block were processed")
	}
}

func TestNativeTransfer(t *testing.T) {
	alice, bob := types.AddressFromUint64(1), types.AddressFromUint64(2)
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	cfg.GenesisWrites = []types.WriteEntry{
		{Key: types.BalanceKey(alice), Value: encodeU64(100)},
	}
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(9), 10)
	miner.AddTxs([]*types.Transaction{
		{From: alice, To: bob, Value: 30, Gas: 1000, Nonce: 1},
		{From: alice, To: bob, Value: 1000, Gas: 1000, Nonce: 2}, // over-balance: saturates
	})
	growEpochs(t, n, []*Miner{miner}, 1)

	aliceBal, err := n.State().Get(types.BalanceKey(alice))
	if err != nil {
		t.Fatal(err)
	}
	bobBal, err := n.State().Get(types.BalanceKey(bob))
	if err != nil {
		t.Fatal(err)
	}
	total := decodeU64(aliceBal) + decodeU64(bobBal)
	if total != 100 {
		t.Fatalf("balance not conserved: alice=%d bob=%d", decodeU64(aliceBal), decodeU64(bobBal))
	}
	if decodeU64(bobBal) == 0 {
		t.Fatal("no transfer happened")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New("x", kvstore.NewMemory(), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func BenchmarkPipelineEpoch(b *testing.B) {
	for _, conc := range []int{2, 8} {
		b.Run(fmt.Sprintf("chains=%d", conc), func(b *testing.B) {
			gen, err := workload.NewGenerator(workload.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			txs := gen.Txs(conc * 200 * (b.N + 2))
			snap, err := gen.Snapshot(txs)
			if err != nil {
				b.Fatal(err)
			}
			var genesis []types.WriteEntry
			for k, v := range snap {
				genesis = append(genesis, types.WriteEntry{Key: k, Value: v})
			}
			cfg := Config{
				Consensus:     consensus.Params{Chains: conc, DifficultyBits: 0},
				Scheduler:     core.MustNewScheduler(core.DefaultConfig()),
				Contracts:     map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
				GenesisWrites: genesis,
			}
			n, err := New("bench", kvstore.NewMemory(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			miner := NewMiner(n, types.AddressFromUint64(1), 200)
			miner.AddTxs(txs)
			ctx := context.Background()
			b.ResetTimer()
			processed := uint64(0)
			for processed < uint64(b.N) {
				blk, err := miner.Mine(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if err := n.SubmitBlock(blk); err != nil && !isStale(err) {
					b.Fatal(err)
				}
				results, err := n.ProcessReadyEpochs()
				if err != nil {
					b.Fatal(err)
				}
				processed += uint64(len(results))
			}
		})
	}
}
