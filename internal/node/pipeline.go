package node

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nezha-dag/nezha/internal/crypto"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/statedb"
	"github.com/nezha-dag/nezha/internal/types"
)

// The epoch pipeline as named stages.
//
// processBlocksLocked used to be one monolithic body; it is now a stage
// list, each stage a named function over the shared epochRun scratch. The
// stage boundary is also the measurement boundary: runStages times every
// stage into a metrics.StageStat (queue depth, worker count, busy time)
// and keeps the legacy EpochStats phase fields in sync, so the per-phase
// numbers reported by earlier versions are unchanged.
//
// Cross-epoch overlap: the only inter-epoch dependency is the state
// snapshot — execution of epoch e+1 needs the post-commit state of epoch
// e, but signature validation of e+1 needs no state at all. The commit
// stage therefore kicks a background signature prevalidation of epoch
// e+1 (kickPrevalidation) that runs under epoch e's MPT/LSM commit; the
// next validate stage collects it (takePrevalidation) and falls back to
// inline checking for any block the background pass did not cover.

// stage is one named step of the epoch pipeline. run receives the stage's
// StageStat with Name and Workers pre-filled and may refine Tasks, Busy,
// Workers, and Overlap; runStages fills Duration. failName is the stage's
// handoff failpoint, evaluated before the stage runs (precomputed so the
// disabled fast path costs no string concatenation per epoch).
type stage struct {
	name     string
	failName fail.Name
	run      func(n *Node, er *epochRun, ss *metrics.StageStat) error
}

// epochRun is the scratch state one epoch threads through its stages.
type epochRun struct {
	number uint64
	blocks []*types.Block

	epoch      *types.Epoch
	state      statedb.Reader     // pre-epoch read state: MVCC view or copied snapshot
	results    []*types.SimResult // pooled; nil-ed and returned after the epoch
	sims       []*types.SimResult // results minus execution failures
	execFailed []types.TxID
	sched      *types.Schedule

	stats *metrics.EpochStats
	res   *EpochResult
}

// mvccStages is the speculative pipeline of §III-B — validation,
// concurrent execution, concurrency control, group-concurrent commitment —
// over the copy-free MVCC view, with the read-set prefetch of epoch e+1
// kicked just before epoch e's commit so it rides under the trie flush.
var mvccStages = []stage{
	{"validate", fail.NodeStageValidate, (*Node).validateStage},
	{"execute", fail.NodeStageExecute, (*Node).executeStage},
	{"schedule", fail.NodeStageSchedule, (*Node).scheduleStage},
	{"prefetch", fail.NodeStagePrefetch, (*Node).prefetchStage},
	{"commit", fail.NodeStageCommit, (*Node).commitStage},
}

// snapshotStages is the same pipeline over a per-epoch snapshot copy — the
// pre-MVCC behaviour, kept as the differential reference
// (Config.SnapshotExecution).
var snapshotStages = []stage{
	{"validate", fail.NodeStageValidate, (*Node).validateStage},
	{"execute", fail.NodeStageExecute, (*Node).executeStage},
	{"schedule", fail.NodeStageSchedule, (*Node).scheduleStage},
	{"commit", fail.NodeStageCommit, (*Node).commitStage},
}

// serialStages is the serial baseline of §VI-B behind the same harness.
var serialStages = []stage{
	{"validate", fail.NodeStageValidate, (*Node).validateStage},
	{"serial", fail.NodeStageSerial, (*Node).serialStage},
}

// runStages drives the pipeline: each stage is timed into a StageStat
// appended to stats.Stages, and its duration is mirrored onto the legacy
// phase field the stage corresponds to.
func (n *Node) runStages(er *epochRun, stages []stage) error {
	for _, st := range stages {
		// Stage-handoff failpoint: an injected error aborts the epoch
		// before the stage touches shared state; an injected panic
		// simulates a crash between stages.
		if err := fail.HitTag(st.failName, n.id); err != nil {
			return fmt.Errorf("node: epoch %d %s handoff: %w", er.number, st.name, err)
		}
		ss := metrics.StageStat{Name: st.name, Workers: 1}
		start := time.Now()
		if err := st.run(n, er, &ss); err != nil {
			return err
		}
		ss.Duration = time.Since(start)
		er.stats.Stages = append(er.stats.Stages, ss)
		n.recordStageMetrics(st.name, ss)
		n.jr.Emit(journal.NodeStageDone, er.number, //nezha:dettaint-ok only the stage name and task count are journaled; the wall-clock Duration on ss stays in metrics and the tracer
			journal.FS("stage", st.name), journal.F("tasks", uint64(ss.Tasks)))
		n.tracer.Span(n.id, st.name, start, ss.Duration, map[string]any{
			"epoch":     er.number,
			"tasks":     ss.Tasks,
			"workers":   ss.Workers,
			"occupancy": ss.Occupancy(),
		})

		switch st.name {
		case "validate":
			er.stats.Validate = ss.Duration
		case "execute":
			er.stats.Execute = ss.Duration
		case "schedule":
			er.stats.Control = ss.Duration
		case "commit":
			er.stats.Commit = ss.Duration
		case "serial":
			// Serial processing has no distinct phases: report the time
			// as execute+commit, split evenly for display purposes.
			er.stats.Execute = ss.Duration / 2
			er.stats.Commit = ss.Duration - er.stats.Execute
		}
	}
	return nil
}

// validateStage discards blocks whose state root does not match an agreed
// epoch state or that carry an invalid signature (§III-B). Signature
// verdicts prevalidated under the previous epoch's commit are consumed
// here; blocks the background pass missed are checked inline.
func (n *Node) validateStage(er *epochRun, ss *metrics.StageStat) error {
	pv := n.takePrevalidation(er.number)
	ss.Tasks = len(er.blocks)
	ss.Workers = n.cfg.Workers
	if pv != nil {
		// Time the background pass spent under the previous commit —
		// latency this epoch did not pay.
		ss.Overlap = pv.elapsed
		n.tracer.Span(n.id+"/background", "prevalidate", pv.started, pv.elapsed,
			map[string]any{"epoch": er.number, "blocks": len(pv.ok)})
	}
	valid := er.blocks[:0]
	for _, b := range er.blocks {
		sigOK := true
		if n.cfg.VerifySignatures {
			if verdict, ok := pv.lookup(b.Hash()); ok {
				sigOK = verdict
			} else {
				sigOK = n.validSignatures(b)
			}
		}
		if sigOK && n.validStateRootLocked(b) {
			valid = append(valid, b)
		} else {
			h := b.Hash()
			er.res.Discarded = append(er.res.Discarded, h)
			n.jr.Emit(journal.NodeBlockDiscard, er.number,
				journal.F("block", journal.FoldBytes(h[:])))
		}
	}
	er.epoch = types.NewEpoch(er.number, valid)
	er.stats.Txs = len(er.epoch.Txs)
	// The assembled composition — which blocks survived validation, in
	// what order, carrying which transactions — is the scheduler's entire
	// input. Journaling its digests here is what lets divergence forensics
	// tell "the nodes scheduled different inputs" apart from "the nodes
	// scheduled the same input differently" (ROADMAP item 6). Enabled()
	// gates the digest walk, not just the append.
	if journal.Enabled() {
		bd, td := assemblyDigests(valid, er.epoch.Txs)
		n.jr.Emit(journal.NodeEpochAssembly, er.number,
			journal.F("blocks", uint64(len(valid))),
			journal.F("txs", uint64(len(er.epoch.Txs))),
			journal.F("bdigest", bd),
			journal.F("tdigest", td))
	}
	return nil
}

// assemblyDigests folds the epoch composition into two comparable values:
// FNV-1a over the surviving block hashes in epoch order, and over the
// transaction hashes in their assigned ID order. Any difference in which
// blocks survived, their order, or the tx order they induce perturbs one
// of the digests.
func assemblyDigests(blocks []*types.Block, txs []*types.Transaction) (uint64, uint64) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	fold := func(h uint64, b []byte) uint64 {
		for _, c := range b {
			h ^= uint64(c)
			h *= prime
		}
		return h
	}
	bd := uint64(offset)
	for _, b := range blocks {
		h := b.Hash()
		bd = fold(bd, h[:])
	}
	td := uint64(offset)
	for _, tx := range txs {
		h := tx.Hash()
		td = fold(td, h[:])
	}
	return bd, td
}

// AssemblyDigests re-derives the node/epoch-assembly digests for an epoch
// from its canonical blocks — the forensic hook the recovery self-audit
// and the crash-point sweep use to compare composition across a crash
// boundary. Epoch assembly is deterministic in the block sequence:
// types.NewEpoch assigns transaction IDs in block order, so two nodes (or
// one node before and after a restart) holding the same blocks in the same
// order must produce identical digests. Re-assigning IDs here is
// idempotent for blocks taken in their canonical epoch order.
func AssemblyDigests(epoch uint64, blocks []*types.Block) (blockDigest, txDigest uint64) {
	ep := types.NewEpoch(epoch, blocks)
	return assemblyDigests(blocks, ep.Txs)
}

// executeStage speculatively executes the epoch's transactions against the
// pre-epoch state on the worker pool. The default read path is a copy-free
// MVCC view (no per-epoch state duplication; the background prefetch of
// this epoch's read set is collected first and its hidden time credited
// as overlap); Config.SnapshotExecution selects the legacy snapshot copy.
// Workers pull indices from an atomic counter (cheaper than a channel at
// this fan-out) and write disjoint slots of the pooled results buffer;
// per-worker busy spans feed the stage's occupancy counters.
func (n *Node) executeStage(er *epochRun, ss *metrics.StageStat) error {
	if n.cfg.SnapshotExecution {
		er.state = n.state.Snapshot()
	} else {
		if pf := n.takePrefetch(er.number); pf != nil {
			ss.Overlap = pf.elapsed
			n.tracer.Span(n.id+"/background", "prefetch", pf.started, pf.elapsed,
				map[string]any{"epoch": er.number, "keys": pf.keys})
		}
		er.state = n.state.View()
	}
	txs := er.epoch.Txs
	er.results = getResultsBuf(len(txs))
	workers := n.cfg.Workers
	if workers > len(txs) && len(txs) > 0 {
		workers = len(txs)
	}
	ss.Tasks = len(txs)
	ss.Workers = workers

	busy := make([]time.Duration, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) {
					break
				}
				er.results[i] = n.simulate(txs[i], er.state)
			}
			busy[w] = time.Since(t0)
		}(w)
	}
	wg.Wait()
	for _, d := range busy {
		ss.Busy += d
	}

	er.sims = make([]*types.SimResult, 0, len(er.results))
	for _, r := range er.results {
		if r.Err != nil {
			er.execFailed = append(er.execFailed, r.Tx.ID)
			continue
		}
		er.sims = append(er.sims, r)
	}
	er.stats.ExecutionFailed = len(er.execFailed)
	return nil
}

// scheduleStage runs the configured concurrency-control scheme and folds
// execution failures into the abort set.
func (n *Node) scheduleStage(er *epochRun, ss *metrics.StageStat) error {
	sched, breakdown, err := n.cfg.Scheduler.Schedule(er.sims)
	if err != nil {
		return fmt.Errorf("node: schedule epoch %d: %w", er.number, err)
	}
	for _, id := range er.execFailed {
		sched.Abort(id, types.AbortExecution)
	}
	sched.NormalizeAborts()
	er.sched = sched
	er.stats.Aborted = sched.AbortedCount() - len(er.execFailed)
	er.stats.ControlBreakdown = breakdown
	ss.Tasks = len(er.sims)
	ss.Workers = breakdown.Shards

	// The scheduler's phase output is the replica-deterministic artifact
	// divergence forensics align on; the digest folds the group layout so
	// a reordered or resized group shows up without journaling every id.
	// Enabled() gates the digest walk, not just the append.
	if journal.Enabled() {
		groups := sched.Groups()
		n.jr.Emit(journal.SchedGroups, er.number,
			journal.F("groups", uint64(len(groups))),
			journal.F("rescued", uint64(breakdown.Rescued)),
			journal.F("digest", groupDigest(groups)))
	}

	if n.cfg.VerifySchedules {
		if err := verifyAgainstState(er.state, er.sims, sched); err != nil {
			return fmt.Errorf("node: epoch %d schedule unsound: %w", er.number, err)
		}
	}
	return nil
}

// groupDigest folds a schedule's commit-group layout into one comparable
// value: FNV-1a over each group's size and first/last transaction id.
// Groups are already in deterministic commit order, so two replicas that
// scheduled the same epoch identically produce the same digest, and any
// layout difference — a split group, a reordered boundary — perturbs it.
func groupDigest(groups [][]types.TxID) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		mix(uint64(len(g)))
		mix(uint64(g[0]))
		mix(uint64(g[len(g)-1]))
	}
	return h
}

// prefetchStage kicks the background read-set prefetch of the NEXT epoch:
// a goroutine walks epoch e+1's predicted read keys and pulls the cold
// ones into the MVCC version cache while epoch e's commit flushes the
// trie. The next executeStage collects it (takePrefetch) and credits the
// hidden time as overlap. The stage itself only launches the goroutine.
func (n *Node) prefetchStage(er *epochRun, ss *metrics.StageStat) error {
	n.kickPrefetch(er.number + 1)
	if n.prefetch != nil {
		ss.Tasks = n.prefetch.keys
	}
	ss.Workers = 1
	return nil
}

// commitStage applies the commit groups concurrently to a pooled overlay
// and flushes the updated cells to the trie and store. Before the flush
// starts it kicks the background signature prevalidation of the NEXT
// epoch, so that work rides under this epoch's MPT/LSM commit.
func (n *Node) commitStage(er *epochRun, ss *metrics.StageStat) error {
	n.kickPrevalidation(er.number + 1)
	ss.Tasks = er.sched.CommittedCount()
	ss.Workers = n.cfg.Workers
	ov := overlayPool.Get().(*overlay)
	if _, err := commitScheduleInto(n.state, er.sims, er.sched, n.cfg.Workers, ov); err != nil {
		return fmt.Errorf("node: commit epoch %d: %w", er.number, err)
	}
	ov.reset()
	overlayPool.Put(ov)
	return nil
}

// serialStage is the baseline of §VI-B: execute and commit each
// transaction in order against the live state, no speculation, no aborts
// (failed executions are skipped, as a failed EVM transaction would be).
func (n *Node) serialStage(er *epochRun, ss *metrics.StageStat) error {
	sched := types.NewSchedule()
	seq := types.Seq(1)
	for _, tx := range er.epoch.Txs {
		snap := n.state.Snapshot()
		sim := n.simulate(tx, snap)
		if sim.Err != nil {
			sched.Abort(tx.ID, types.AbortExecution)
			er.stats.ExecutionFailed++
			continue
		}
		if _, err := n.state.Commit(sim.Writes); err != nil {
			return fmt.Errorf("node: serial commit: %w", err)
		}
		sched.Commit(tx.ID, seq)
		seq++
	}
	sched.NormalizeAborts()
	er.sched = sched
	ss.Tasks = len(er.epoch.Txs)
	return nil
}

// prevalidation is one background signature-checking run for an upcoming
// epoch. The goroutine writes ok and elapsed strictly before closing done,
// so a reader that waits on done observes both.
type prevalidation struct {
	epoch   uint64
	done    chan struct{}
	ok      map[types.Hash]bool
	started time.Time
	elapsed time.Duration
}

// lookup returns the prevalidated verdict for a block, if the background
// pass covered it. Nil-receiver safe: no prevalidation means no verdicts.
func (pv *prevalidation) lookup(h types.Hash) (verdict, covered bool) {
	if pv == nil {
		return false, false
	}
	v, ok := pv.ok[h]
	return v, ok
}

// kickPrevalidation starts checking epoch e's block signatures in the
// background. Caller holds n.mu; the goroutine itself must not touch any
// mu-guarded state — it reads only the ledger (internally locked; blocks
// are immutable once added) and writes its own prevalidation record.
// Fork-choice races are harmless: verdicts are keyed by block hash and the
// validate stage re-checks uncovered blocks inline.
func (n *Node) kickPrevalidation(e uint64) {
	if !n.cfg.VerifySignatures {
		return
	}
	blocks, ok := n.ledger.EpochBlocks(e)
	if !ok || len(blocks) == 0 {
		return
	}
	pv := &prevalidation{
		epoch: e,
		done:  make(chan struct{}),
		ok:    make(map[types.Hash]bool, len(blocks)),
	}
	n.preval = pv
	workers := n.parallelism()
	go func() {
		pv.started = time.Now()
		for _, b := range blocks {
			pv.ok[b.Hash()] = n.checkSignatures(b, workers)
		}
		pv.elapsed = time.Since(pv.started)
		close(pv.done)
	}()
}

// takePrevalidation claims the pending background run for epoch e, waiting
// for it to finish. A run for a different epoch (fork reorg, assembled
// epochs bypassing the ledger) is dropped without waiting — its goroutine
// only touches its own record and dies quietly.
func (n *Node) takePrevalidation(e uint64) *prevalidation {
	pv := n.preval
	n.preval = nil
	if pv == nil || pv.epoch != e {
		return nil
	}
	<-pv.done
	return pv
}

// prefetchRun is one background read-set prefetch for an upcoming epoch.
// The goroutine writes keys/loaded/elapsed strictly before closing done,
// so a reader that waits on done observes all of them.
type prefetchRun struct {
	epoch   uint64
	done    chan struct{}
	keys    int // predicted keys walked
	started time.Time
	elapsed time.Duration
}

// predictReads guesses the state keys a transaction will read from its
// payload alone — the prefetcher's input. Native transfers touch exactly
// the sender and recipient balance cells; contract read sets come from
// cfg.PredictReads when the embedder can derive them (the chaos harness
// does for SmallBank). A misprediction only costs a wasted cache fill.
func (n *Node) predictReads(tx *types.Transaction) []types.Key {
	if _, isContract := n.cfg.Contracts[tx.To]; isContract {
		if n.cfg.PredictReads != nil {
			return n.cfg.PredictReads(tx)
		}
		return nil
	}
	return []types.Key{types.BalanceKey(tx.From), types.BalanceKey(tx.To)}
}

// kickPrefetch starts pulling epoch e's predicted read set into the MVCC
// version cache in the background. Caller holds n.mu; like the signature
// prevalidation, the goroutine must not touch mu-guarded state — it reads
// the ledger (internally locked) and the statedb (internally locked) and
// writes only its own record. It is kicked before the commit stage so the
// trie walks ride under the flush; the mvcc reservation protocol makes the
// concurrent loads safe, and keys the commit is about to write are
// skipped as reserved.
func (n *Node) kickPrefetch(e uint64) {
	blocks, ok := n.ledger.EpochBlocks(e)
	if !ok || len(blocks) == 0 {
		return
	}
	var keys []types.Key
	seen := make(map[types.Key]struct{})
	for _, b := range blocks {
		for _, tx := range b.Txs {
			for _, k := range n.predictReads(tx) {
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		return
	}
	pf := &prefetchRun{epoch: e, done: make(chan struct{}), keys: len(keys)}
	n.prefetch = pf
	go func() {
		pf.started = time.Now()
		for _, k := range keys {
			// Load errors are non-fatal here: the execute stage will hit
			// the same error on the synchronous path and report it there.
			_ = n.state.Prefetch(k)
		}
		pf.elapsed = time.Since(pf.started)
		close(pf.done)
	}()
}

// takePrefetch claims the pending background prefetch for epoch e, waiting
// for it to finish. A run for a different epoch is dropped without
// waiting — its goroutine only warms the shared cache, which is harmless.
func (n *Node) takePrefetch(e uint64) *prefetchRun {
	pf := n.prefetch
	n.prefetch = nil
	if pf == nil || pf.epoch != e {
		return nil
	}
	<-pf.done
	return pf
}

// checkSignatures verifies every transaction signature in a block across
// the given number of workers.
func (n *Node) checkSignatures(b *types.Block, workers int) bool {
	if workers > len(b.Txs) {
		workers = len(b.Txs)
	}
	if workers <= 1 {
		for _, tx := range b.Txs {
			if crypto.VerifyTx(tx) != nil {
				return false
			}
		}
		return true
	}
	var bad atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !bad.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(b.Txs) {
					return
				}
				if crypto.VerifyTx(b.Txs[i]) != nil {
					bad.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return !bad.Load()
}

// Per-epoch scratch pools. Epochs allocate a results buffer sized to the
// transaction count and a 16-shard commit overlay; both are recycled
// across epochs (and across nodes — the pools are package-level, and the
// buffers carry no node identity).
var (
	simResultsPool sync.Pool
	overlayPool    = sync.Pool{New: func() any { return newOverlay() }}
)

// getResultsBuf returns a pooled simulation-results buffer with length n.
func getResultsBuf(n int) []*types.SimResult {
	if v := simResultsPool.Get(); v != nil {
		if buf := v.([]*types.SimResult); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]*types.SimResult, n)
}

// putResultsBuf nils the buffer (dropping the sim references for the GC)
// and returns it to the pool.
func putResultsBuf(buf []*types.SimResult) {
	if buf == nil {
		return
	}
	for i := range buf {
		buf[i] = nil
	}
	simResultsPool.Put(buf[:0]) //nolint:staticcheck // slice headers are cheap relative to the backing array win
}

// reset clears the overlay's shard maps for reuse.
func (ov *overlay) reset() {
	for i := range ov.shards {
		clear(ov.shards[i].m)
	}
}
