package node

import (
	"context"
	"testing"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// TestMempoolFedMinerPipeline drives the full pipeline with the miner's
// flat pool replaced by the admission-controlled mempool: transactions
// enter via batched admission, blocks assemble from the pool's
// deterministic order, and epochs commit as usual.
func TestMempoolFedMinerPipeline(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 7, Accounts: 500, Skew: 0.3, InitialBalance: 10_000,
		ReadOnlyRatio: -1, PerSenderNonces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(600)
	cfg := testConfig(3, core.MustNewScheduler(core.DefaultConfig()))
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	cfg.Mempool = &mempool.Config{StrictNonce: true, ShardCap: -1, SenderCap: -1}
	n, err := New("mp-full", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(99), 100)
	if miner.Pool() == nil {
		t.Fatal("mempool knob set but miner has no pool")
	}
	miner.AddTxs(txs)
	if got := miner.PoolSize(); got != 600 {
		t.Fatalf("pool = %d, want 600", got)
	}
	// Gossip echo: re-adding the same batch must not double-queue.
	miner.AddTxs(txs)
	if got := miner.PoolSize(); got != 600 {
		t.Fatalf("pool after re-add = %d, want 600", got)
	}

	growEpochs(t, n, []*Miner{miner}, 2)

	sum := n.Metrics().Summarize()
	if sum.Committed == 0 {
		t.Fatal("nothing committed through the mempool-fed path")
	}
	// Mined transactions advanced the inclusion floors: the pool shrank.
	if miner.PoolSize() >= 600 {
		t.Fatalf("pool never drained: %d", miner.PoolSize())
	}
}

// TestMempoolMinerConvergence replays every mempool-assembled block into
// a second, mempool-free node: both must process identical epochs and
// agree on every state root — the mempool only changes which transactions
// enter blocks, never how blocks execute.
func TestMempoolMinerConvergence(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 11, Accounts: 300, Skew: 0.4, InitialBalance: 5_000,
		ReadOnlyRatio: -1, PerSenderNonces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(400)
	build := func(id string, mp *mempool.Config) *Node {
		cfg := testConfig(4, core.MustNewScheduler(core.DefaultConfig()))
		cfg.GenesisWrites = genesisFor(t, gen, txs)
		cfg.Mempool = mp
		n, err := New(id, kvstore.NewMemory(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1 := build("mp-n1", &mempool.Config{StrictNonce: true, ShardCap: -1, SenderCap: -1})
	n2 := build("mp-n2", nil)
	if n1.StateRoot() != n2.StateRoot() {
		t.Fatal("genesis roots differ")
	}

	miner := NewMiner(n1, types.AddressFromUint64(1), 50)
	miner.AddTxs(txs)
	ctx := context.Background()
	for i := 0; !n1.Ledger().EpochReady(3, 0); i++ {
		if i > 5000 {
			t.Fatal("epochs refuse to complete")
		}
		b, err := miner.Mine(ctx)
		if err != nil {
			t.Fatal(err)
		}
		err1 := n1.SubmitBlock(b)
		err2 := n2.SubmitBlock(b)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nodes disagree on block validity: %v vs %v", err1, err2)
		}
		if _, err := n1.ProcessReadyEpochs(); err != nil {
			t.Fatal(err)
		}
		if _, err := n2.ProcessReadyEpochs(); err != nil {
			t.Fatal(err)
		}
	}
	if n1.NextEpoch() != n2.NextEpoch() {
		t.Fatalf("nodes at different epochs: %d vs %d", n1.NextEpoch(), n2.NextEpoch())
	}
	if n1.StateRoot() != n2.StateRoot() {
		t.Fatalf("state roots diverge: %s vs %s", n1.StateRoot(), n2.StateRoot())
	}
}

// TestMinerWithoutKnobHasNoPool pins the default: a nil Config.Mempool
// keeps the legacy flat pool (the byte-identical path the assembled-epoch
// tests and differential oracles depend on).
func TestMinerWithoutKnobHasNoPool(t *testing.T) {
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("flat", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m := NewMiner(n, types.AddressFromUint64(1), 10); m.Pool() != nil {
		t.Fatal("miner grew a mempool without the config knob")
	}
}
