package node

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// fixMinerClock replaces the miner's wall clock with a deterministic
// counter so two runs mine byte-identical blocks (block time feeds the
// header hash, which feeds DAG chain assignment).
func fixMinerClock(m *Miner) {
	var tick uint64
	m.clock = func() uint64 {
		tick++
		return tick
	}
}

// growNode drives one node through the given number of epochs over a
// fixed SmallBank workload and returns the per-epoch roots.
func growNode(t *testing.T, id string, snapshotExec bool, epochs uint64) map[uint64]types.Hash {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 77, Accounts: 150, Skew: 0.6, InitialBalance: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(400)
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	cfg.SnapshotExecution = snapshotExec
	cfg.PredictReads = func(tx *types.Transaction) []types.Key {
		return smallbank.PredictCall(tx.Payload)
	}
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New(id, kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(5), 50)
	fixMinerClock(miner)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, epochs)

	roots := make(map[uint64]types.Hash)
	for e := uint64(0); ; e++ {
		r, ok := n.RootAt(e)
		if !ok {
			break
		}
		roots[e] = r
	}
	return roots
}

// TestMVCCMatchesSnapshotExecution runs the same workload through the MVCC
// view pipeline and the legacy snapshot-copy pipeline and asserts byte-
// identical per-epoch roots — the node-level version of the differential
// acceptance criterion (internal/check sweeps it across shapes).
func TestMVCCMatchesSnapshotExecution(t *testing.T) {
	mvccRoots := growNode(t, "mvcc-mode", false, 4)
	snapRoots := growNode(t, "snap-mode", true, 4)
	if len(mvccRoots) < 3 {
		t.Fatalf("only %d roots recorded", len(mvccRoots))
	}
	if len(mvccRoots) != len(snapRoots) {
		t.Fatalf("epoch counts differ: %d vs %d", len(mvccRoots), len(snapRoots))
	}
	for e, r := range mvccRoots {
		if other := snapRoots[e]; other != r {
			t.Fatalf("epoch %d: mvcc root %x != snapshot root %x", e, r[:4], other[:4])
		}
	}
}

// TestPrefetcherWarmsCache checks the prefetch stage actually ran: over a
// multi-epoch SmallBank run with payload prediction wired, prefetched keys
// must be non-zero and some of them must have been used by execution.
func TestPrefetcherWarmsCache(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 31, Accounts: 120, Skew: 0.2, InitialBalance: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(300)
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	cfg.PredictReads = func(tx *types.Transaction) []types.Key {
		return smallbank.PredictCall(tx.Payload)
	}
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("prefetch-node", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(6), 40)
	fixMinerClock(miner)
	miner.AddTxs(txs)
	// Mine the whole backlog first: the prefetcher only fires when epoch
	// e+1 is already assembled while epoch e commits.
	mineAhead(t, n, miner, 5)
	if _, err := n.ProcessReadyEpochs(); err != nil {
		t.Fatal(err)
	}

	stats, ok := n.State().MVCCStats()
	if !ok {
		t.Fatal("mvcc store missing after mvcc-mode run")
	}
	if stats.Prefetched == 0 {
		t.Fatalf("no keys prefetched: %+v", stats)
	}
	if stats.PrefetchHits == 0 {
		t.Fatalf("no prefetched key was used: %+v", stats)
	}
	if stats.GCVersions == 0 {
		t.Fatalf("watermark never folded a version: %+v", stats)
	}
}

// TestMVCCMatchesSnapshotAssembled removes mining from the comparison:
// both modes process the SAME externally-assembled epochs and must agree
// on every schedule and root.
func TestMVCCMatchesSnapshotAssembled(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 77, Accounts: 150, Skew: 0.6, InitialBalance: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(600)
	mk := func(id string, snapExec bool) *Node {
		cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
		cfg.SnapshotExecution = snapExec
		cfg.GenesisWrites = genesisFor(t, gen, txs)
		n, err := New(id, kvstore.NewMemory(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1, n2 := mk("mv", false), mk("sn", true)
	const per = 200
	for e := 0; e < 3; e++ {
		chunk := txs[e*per : (e+1)*per]
		mkBlocks := func(n *Node) []*types.Block {
			var blocks []*types.Block
			for c := 0; c < 2; c++ {
				blocks = append(blocks, &types.Block{
					Header: types.BlockHeader{
						Height:    n.NextEpoch(),
						StateRoot: n.StateRoot(),
						Miner:     types.AddressFromUint64(9),
					},
					Txs: chunk[c*100 : (c+1)*100],
				})
			}
			return blocks
		}
		r1, err := n1.ProcessAssembledEpoch(mkBlocks(n1))
		if err != nil {
			t.Fatalf("mvcc epoch %d: %v", e+1, err)
		}
		r2, err := n2.ProcessAssembledEpoch(mkBlocks(n2))
		if err != nil {
			t.Fatalf("snapshot epoch %d: %v", e+1, err)
		}
		if !r1.Schedule.Equal(r2.Schedule) {
			t.Fatalf("epoch %d: schedules differ", e+1)
		}
		if r1.StateRoot != r2.StateRoot {
			t.Fatalf("epoch %d: roots differ %x vs %x", e+1, r1.StateRoot[:4], r2.StateRoot[:4])
		}
	}
}

// TestPredictReadsTransfers: native transfers predict exactly the two
// balance cells without any configured predictor.
func TestPredictReadsTransfers(t *testing.T) {
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("predict", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx := &types.Transaction{From: types.AddressFromUint64(1), To: types.AddressFromUint64(2)}
	keys := n.predictReads(tx)
	want := []types.Key{types.BalanceKey(tx.From), types.BalanceKey(tx.To)}
	if len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("predicted %v, want %v", keys, want)
	}
	// Contract calls without a predictor predict nothing.
	ctx := &types.Transaction{From: tx.From, To: smallbank.ContractAddress}
	if got := n.predictReads(ctx); got != nil {
		t.Fatalf("contract prediction without hook = %v, want nil", got)
	}
}
