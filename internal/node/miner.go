package node

import (
	"context"
	"sync"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/types"
)

// Miner drives block production for one node: it keeps a transaction pool,
// assembles block templates over the node's current tips and latest
// processed state root, and runs the OHIE proof of work.
type Miner struct {
	node      *Node
	addr      types.Address
	blockSize int

	mu    sync.Mutex
	pool  []*types.Transaction
	seen  map[types.Hash]bool
	seed  uint64
	clock func() uint64
}

// NewMiner attaches a miner to a node. blockSize caps transactions per
// block (the paper uses 200, §VI-A).
func NewMiner(n *Node, addr types.Address, blockSize int) *Miner {
	return &Miner{
		node:      n,
		addr:      addr,
		blockSize: blockSize,
		seen:      make(map[types.Hash]bool),
		seed:      uint64(types.HashBytes(addr[:])[0]) << 32, // disjoint nonce ranges per miner
		clock:     func() uint64 { return uint64(time.Now().UnixMilli()) },
	}
}

// AddTxs queues transactions, dropping ones already seen.
func (m *Miner) AddTxs(txs []*types.Transaction) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tx := range txs {
		h := tx.Hash()
		if m.seen[h] {
			continue
		}
		m.seen[h] = true
		m.pool = append(m.pool, tx)
	}
}

// PoolSize returns the number of queued transactions.
func (m *Miner) PoolSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pool)
}

// Mine assembles and mines one block. The transactions leave the pool only
// on success; a cancelled search returns them.
func (m *Miner) Mine(ctx context.Context) (*types.Block, error) {
	m.mu.Lock()
	take := m.blockSize
	if take > len(m.pool) {
		take = len(m.pool)
	}
	txs := append([]*types.Transaction(nil), m.pool[:take]...)
	m.seed += 1_000_000 // fresh nonce range per attempt
	seed := m.seed
	m.mu.Unlock()

	b, err := consensus.Mine(ctx, consensus.Template{
		Ledger:    m.node.Ledger(),
		StateRoot: m.node.StateRoot(),
		Txs:       txs,
		Miner:     m.addr,
		Time:      m.clock(),
		NonceSeed: seed,
	}, m.node.cfg.Consensus)
	if err != nil {
		return nil, err
	}
	// Remove the mined transactions; the pool may have grown while the
	// nonce search ran.
	mined := make(map[types.Hash]bool, len(txs))
	for _, tx := range txs {
		mined[tx.Hash()] = true
	}
	m.mu.Lock()
	kept := m.pool[:0]
	for _, tx := range m.pool {
		if mined[tx.Hash()] {
			delete(m.seen, tx.Hash())
			continue
		}
		kept = append(kept, tx)
	}
	m.pool = kept
	m.mu.Unlock()
	return b, nil
}
