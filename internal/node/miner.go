package node

import (
	"context"
	"sync"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/mempool"
	"github.com/nezha-dag/nezha/internal/types"
)

// Miner drives block production for one node: it keeps a transaction pool,
// assembles block templates over the node's current tips and latest
// processed state root, and runs the OHIE proof of work.
//
// The pool is one of two implementations. The default is the legacy flat
// FIFO slice — kept byte-identical because the assembled-epoch tests and
// the differential oracles depend on its ordering. With Config.Mempool
// set, the miner instead fronts an internal/mempool.Pool: AddTxs becomes
// batched admission and assembly takes the pool's deterministic
// priority/nonce order.
type Miner struct {
	node      *Node
	addr      types.Address
	blockSize int

	// mp, when non-nil, replaces the flat pool below entirely.
	mp *mempool.Pool

	mu    sync.Mutex
	pool  []*types.Transaction
	seen  map[types.Hash]bool
	seed  uint64
	clock func() uint64
}

// NewMiner attaches a miner to a node. blockSize caps transactions per
// block (the paper uses 200, §VI-A).
func NewMiner(n *Node, addr types.Address, blockSize int) *Miner {
	m := &Miner{
		node:      n,
		addr:      addr,
		blockSize: blockSize,
		seen:      make(map[types.Hash]bool),
		seed:      uint64(types.HashBytes(addr[:])[0]) << 32, // disjoint nonce ranges per miner
		clock:     func() uint64 { return uint64(time.Now().UnixMilli()) },
	}
	if n.cfg.Mempool != nil {
		mpCfg := *n.cfg.Mempool
		if mpCfg.Tag == "" {
			mpCfg.Tag = n.id
		}
		m.mp = mempool.New(mpCfg)
	}
	return m
}

// Pool exposes the miner's admission-controlled mempool (nil when the
// node runs the legacy flat pool). Submitters that want typed
// backpressure — rather than AddTxs's fire-and-forget — admit through it
// directly.
func (m *Miner) Pool() *mempool.Pool { return m.mp }

// AddTxs queues transactions, dropping ones already seen. With a mempool
// attached this is batched admission; rejections (duplicates, rate
// limits, capacity) are counted in nezha_mempool_dropped_total rather
// than reported — gossip redelivery is not a caller that can react.
func (m *Miner) AddTxs(txs []*types.Transaction) {
	if m.mp != nil {
		m.mp.AdmitBatch(txs)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tx := range txs {
		h := tx.Hash()
		if m.seen[h] {
			continue
		}
		m.seen[h] = true
		m.pool = append(m.pool, tx)
	}
}

// PoolSize returns the number of queued transactions.
func (m *Miner) PoolSize() int {
	if m.mp != nil {
		return m.mp.Len()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pool)
}

// Mine assembles and mines one block. The transactions leave the pool only
// on success; a cancelled search returns them.
func (m *Miner) Mine(ctx context.Context) (*types.Block, error) {
	var txs []*types.Transaction
	m.mu.Lock()
	if m.mp != nil {
		// Assemble is a peek: the transactions stay queued until the
		// search succeeds, so a cancelled attempt forfeits nothing.
		txs = m.mp.Assemble(m.blockSize)
	} else {
		take := m.blockSize
		if take > len(m.pool) {
			take = len(m.pool)
		}
		txs = append([]*types.Transaction(nil), m.pool[:take]...)
	}
	m.seed += 1_000_000 // fresh nonce range per attempt
	seed := m.seed
	m.mu.Unlock()

	b, err := consensus.Mine(ctx, consensus.Template{
		Ledger:    m.node.Ledger(),
		StateRoot: m.node.StateRoot(),
		Txs:       txs,
		Miner:     m.addr,
		Time:      m.clock(),
		NonceSeed: seed,
	}, m.node.cfg.Consensus)
	if err != nil {
		return nil, err
	}
	if m.mp != nil {
		// Success: advance each sender's inclusion floor past the mined
		// nonces so gossip echoes bounce off admission.
		m.mp.MarkIncluded(txs)
		return b, nil
	}
	// Remove the mined transactions; the pool may have grown while the
	// nonce search ran.
	mined := make(map[types.Hash]bool, len(txs))
	for _, tx := range txs {
		mined[tx.Hash()] = true
	}
	m.mu.Lock()
	kept := m.pool[:0]
	for _, tx := range m.pool {
		if mined[tx.Hash()] {
			delete(m.seen, tx.Hash())
			continue
		}
		kept = append(kept, tx)
	}
	m.pool = kept
	m.mu.Unlock()
	return b, nil
}
