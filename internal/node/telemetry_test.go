package node

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// TestNodeTracerSpans: an attached tracer records one span per pipeline
// stage per epoch on the node's track, and with a signed backlog the
// background prevalidation appears on the <id>/background track.
func TestNodeTracerSpans(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 21, Accounts: 150, Skew: 0.2, InitialBalance: 1_000, Sign: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(200)
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	cfg.VerifySignatures = true
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("traced", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracer := metrics.NewTracer()
	n.SetTracer(tracer)

	miner := NewMiner(n, types.AddressFromUint64(5), 50)
	miner.AddTxs(txs)
	mineAhead(t, n, miner, 3) // backlog → prevalidation overlap
	results, err := n.ProcessReadyEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("processed %d epochs, want >= 3", len(results))
	}
	// 4 stages per epoch, plus at least one prevalidation span.
	if tracer.Len() < 4*len(results)+1 {
		t.Fatalf("tracer recorded %d spans for %d epochs", tracer.Len(), len(results))
	}

	var b strings.Builder
	if err := tracer.Export(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	spans := map[string]int{}
	tracks := map[string]bool{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			spans[e.Name]++
		case "M":
			tracks[e.Args["name"].(string)] = true
		}
	}
	for _, stage := range []string{"validate", "execute", "schedule", "commit"} {
		if spans[stage] != len(results) {
			t.Fatalf("%d %q spans for %d epochs", spans[stage], stage, len(results))
		}
	}
	if spans["prevalidate"] == 0 {
		t.Fatal("no prevalidate span despite a signed backlog")
	}
	if !tracks["traced"] || !tracks["traced/background"] {
		t.Fatalf("tracks = %v", tracks)
	}
}

// TestNodeRegistrySeries: processing an epoch populates the process-wide
// registry with the node's stage and epoch series.
func TestNodeRegistrySeries(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 22, Accounts: 100, Skew: 0, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(80)
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	// A unique node id keeps this test's series disjoint from other tests
	// sharing the default registry.
	n, err := New("registry-series-node", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(8), 80)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, 1)

	reg := metrics.Default()
	nl := metrics.Label{Name: "node", Value: "registry-series-node"}
	if got := reg.Counter("nezha_epochs_processed_total", "", nl).Value(); got < 1 {
		t.Fatalf("epochs processed = %v", got)
	}
	if got := reg.Counter("nezha_txs_total", "", nl).Value(); got != float64(n.Metrics().Summarize().Txs) {
		t.Fatalf("txs counter = %v, collector says %d", got, n.Metrics().Summarize().Txs)
	}
	sl := metrics.Label{Name: "stage", Value: "execute"}
	if got := reg.Histogram("nezha_stage_duration_seconds", "", nil, nl, sl).Count(); got < 1 {
		t.Fatalf("execute duration observations = %d", got)
	}
	if got := reg.Counter("nezha_stage_tasks_total", "", nl, sl).Value(); got != float64(n.Metrics().Summarize().Txs) {
		t.Fatalf("execute tasks = %v", got)
	}
}
