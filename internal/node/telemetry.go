package node

// Live-telemetry hooks: every processed epoch updates the process-wide
// metrics registry (metrics.Default()) so a running node can be scraped
// over /metrics while the per-epoch Collector keeps the detailed record
// the benches read. Series carry a node label because simulations run
// several nodes in one process; a production deployment has one.

import (
	"time"

	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/mvcc"
)

// recordStageMetrics exports one stage's counters after it ran.
func (n *Node) recordStageMetrics(stage string, ss metrics.StageStat) {
	reg := metrics.Default()
	nl := metrics.Label{Name: "node", Value: n.id}
	sl := metrics.Label{Name: "stage", Value: stage}
	reg.Histogram("nezha_stage_duration_seconds",
		"Wall-clock duration of each pipeline stage (Fig. 2(b) phases).",
		nil, nl, sl).ObserveDuration(ss.Duration)
	reg.Counter("nezha_stage_tasks_total",
		"Work items processed per stage (blocks, transactions, commits).",
		nl, sl).Add(float64(ss.Tasks))
	reg.Counter("nezha_stage_busy_seconds_total",
		"Summed per-worker busy span per stage; divide by capacity for occupancy.",
		nl, sl).Add(ss.Busy.Seconds())
	reg.Counter("nezha_stage_capacity_seconds_total",
		"Summed duration*workers per stage (the occupancy denominator).",
		nl, sl).Add((ss.Duration * time.Duration(ss.Workers)).Seconds())
	reg.Counter("nezha_stage_overlap_seconds_total",
		"Stage work that ran hidden under the previous epoch's commit.",
		nl, sl).Add(ss.Overlap.Seconds())
	reg.Gauge("nezha_stage_occupancy",
		"Worker-pool occupancy of the stage in the last processed epoch.",
		nl, sl).Set(ss.Occupancy())
}

// recordEpochMetrics exports epoch-level counters after the epoch
// committed. Called with n.mu held.
func (n *Node) recordEpochMetrics(stats *metrics.EpochStats, discarded int) {
	reg := metrics.Default()
	nl := metrics.Label{Name: "node", Value: n.id}
	reg.Counter("nezha_epochs_processed_total",
		"Epochs fully processed (validate through commit).", nl).Inc()
	reg.Counter("nezha_txs_total",
		"Transactions entering the pipeline after block validation.", nl).Add(float64(stats.Txs))
	reg.Counter("nezha_txs_committed_total",
		"Transactions committed by concurrency control (Fig. 12 numerator).", nl).Add(float64(stats.Committed))
	reg.Counter("nezha_txs_aborted_total",
		"Transactions aborted by the scheduler (Fig. 11 numerator).", nl).Add(float64(stats.Aborted))
	reg.Counter("nezha_txs_execution_failed_total",
		"Speculative executions that failed (revert/out-of-gas).", nl).Add(float64(stats.ExecutionFailed))
	reg.Counter("nezha_blocks_discarded_total",
		"Blocks dropped by validation (bad state root or signature).", nl).Add(float64(discarded))
	reg.Gauge("nezha_node_next_epoch",
		"Next epoch number the node will process.", nl).Set(float64(stats.Epoch + 1))
	reg.Gauge("nezha_epoch_block_concurrency",
		"Blocks forming the last processed epoch (the paper's omega).", nl).Set(float64(stats.BlockConcurrency))
	if mv, ok := n.state.MVCCStats(); ok {
		n.recordMVCCMetrics(mv)
	}
}

// recordMVCCMetrics exports the multi-version store's counters. The store
// keeps cumulative totals, so the node diffs against the last exported
// snapshot to keep the registry counters monotonic. Called with n.mu held.
func (n *Node) recordMVCCMetrics(cur mvcc.Stats) {
	reg := metrics.Default()
	nl := metrics.Label{Name: "node", Value: n.id}
	prev := n.prevMVCC
	n.prevMVCC = cur
	reg.Counter("nezha_mvcc_cache_hits_total",
		"Execution reads served by the MVCC version cache.", nl).Add(float64(cur.Hits - prev.Hits))
	reg.Counter("nezha_mvcc_cache_misses_total",
		"Execution reads that fell through to the state trie.", nl).Add(float64(cur.Misses - prev.Misses))
	reg.Counter("nezha_mvcc_prefetched_keys_total",
		"Cold keys the read-set prefetcher pulled into the version cache.", nl).Add(float64(cur.Prefetched - prev.Prefetched))
	reg.Counter("nezha_mvcc_prefetch_hits_total",
		"Prefetched keys a later execution read actually used (hit-rate numerator).", nl).Add(float64(cur.PrefetchHits - prev.PrefetchHits))
	reg.Counter("nezha_mvcc_prefetch_skipped_total",
		"Prefetch requests dropped because the key was warm or reserved by a commit.", nl).Add(float64(cur.PrefetchSkipped - prev.PrefetchSkipped))
	reg.Counter("nezha_mvcc_gc_versions_total",
		"Versions folded into chain bases by the GC watermark.", nl).Add(float64(cur.GCVersions - prev.GCVersions))
	reg.Gauge("nezha_mvcc_live_chains",
		"Per-key version chains (cache entries) currently held.", nl).Set(float64(cur.Chains))
	reg.Gauge("nezha_mvcc_live_versions",
		"Committed versions retained above the GC watermark.", nl).Set(float64(cur.Versions))
	depth := reg.Histogram("nezha_mvcc_chain_depth",
		"Version-chain depth observed at GC time.", mvcc.DepthBuckets, nl)
	for i, count := range cur.DepthBuckets {
		rep := 2 * mvcc.DepthBuckets[len(mvcc.DepthBuckets)-1] // overflow bucket representative
		if i < len(mvcc.DepthBuckets) {
			rep = mvcc.DepthBuckets[i]
		}
		for seen := prev.DepthBuckets[i]; seen < count; seen++ {
			depth.Observe(rep)
		}
	}
}

// SetTracer attaches an epoch tracer: every subsequent stage records a
// span (and the background prevalidation its overlap span), exportable
// as Chrome trace-event JSON. Pass nil to stop tracing.
func (n *Node) SetTracer(t *metrics.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = t
}
