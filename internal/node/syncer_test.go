package node

import (
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/p2p"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// syncTestNodes builds a veteran with a few epochs of history and a fresh
// joiner sharing its genesis, both attached to a network.
func syncTestNodes(t *testing.T, syncBatch int) (veteran, joiner *Node, vetEp, joinEp *p2p.Endpoint, net *p2p.Network) {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 11, Accounts: 300, Skew: 0.5, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(600)
	genesis := genesisFor(t, gen, txs)

	build := func(id string) *Node {
		cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
		cfg.GenesisWrites = genesis
		cfg.SyncBatch = syncBatch
		n, err := New(id, kvstore.NewMemory(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	veteran = build("veteran")
	miner := NewMiner(veteran, types.AddressFromUint64(1), 100)
	miner.AddTxs(txs)
	growEpochs(t, veteran, []*Miner{miner}, 3)

	net = p2p.NewNetwork(p2p.Config{QueueLen: 64})
	t.Cleanup(net.Close)
	vetEp, err = net.Join("veteran")
	if err != nil {
		t.Fatal(err)
	}
	joiner = build("joiner")
	joinEp, err = net.Join("joiner")
	if err != nil {
		t.Fatal(err)
	}
	return veteran, joiner, vetEp, joinEp, net
}

// TestSyncBatchCapAndPagination forces a tiny response cap and checks that
// the joiner still reaches the veteran's state by paging: several MsgBlocks
// responses, the truncated ones flagged More, each next request from the
// advanced MinHeight.
func TestSyncBatchCapAndPagination(t *testing.T) {
	veteran, joiner, vetEp, joinEp, _ := syncTestNodes(t, 3)

	sync := NewSyncer(joiner, joinEp, []string{"veteran"}, SyncConfig{})
	if !sync.Kick(time.Now()) {
		t.Fatal("initial kick did not send")
	}

	total := len(veteran.Ledger().SyncBlocksAbove(0))
	pages, truncated := 0, 0
	var lastReq uint64
	deadline := time.After(10 * time.Second)
	for joiner.MinHeight() < veteran.MinHeight() {
		select {
		case msg := <-vetEp.Inbox():
			if msg.Type != p2p.MsgGetBlocks {
				t.Fatalf("veteran received %v", msg.Type)
			}
			if pages > 0 && msg.Height <= lastReq {
				t.Fatalf("page %d re-requested from %d, cursor did not advance past %d",
					pages, msg.Height, lastReq)
			}
			lastReq = msg.Height
			veteran.HandleSyncRequest(vetEp, msg)
		case msg := <-joinEp.Inbox():
			if msg.Type != p2p.MsgBlocks {
				continue
			}
			pages++
			if len(msg.Blocks) >= total {
				t.Fatalf("one response carried all %d blocks despite cap 3", total)
			}
			if msg.UpTo != msg.Blocks[len(msg.Blocks)-1].Header.Height {
				t.Fatalf("UpTo=%d but last block height=%d", msg.UpTo,
					msg.Blocks[len(msg.Blocks)-1].Header.Height)
			}
			if msg.More {
				truncated++
			}
			if _, err := sync.HandleBlocks(time.Now(), msg); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatalf("paging stalled: joiner height %d < veteran %d after %d pages",
				joiner.MinHeight(), veteran.MinHeight(), pages)
		}
	}
	if pages < 2 || truncated == 0 {
		t.Fatalf("expected multiple pages with More set; pages=%d truncated=%d", pages, truncated)
	}

	if _, err := joiner.ProcessReadyEpochs(); err != nil {
		t.Fatal(err)
	}
	if joiner.NextEpoch() != veteran.NextEpoch() || joiner.StateRoot() != veteran.StateRoot() {
		t.Fatalf("joiner epoch %d root %s, veteran epoch %d root %s",
			joiner.NextEpoch(), joiner.StateRoot().Short(),
			veteran.NextEpoch(), veteran.StateRoot().Short())
	}
}

// TestSyncerTimeoutRotatesPeers sends the first request to a peer that never
// answers; after the deadline plus backoff the syncer must demote nothing
// yet (one failure) but rotate to the second peer.
func TestSyncerTimeoutRotatesPeers(t *testing.T) {
	_, joiner, _, joinEp, net := syncTestNodes(t, 0)
	if _, err := net.Join("dead"); err != nil {
		t.Fatal(err)
	}

	cfg := SyncConfig{RequestTimeout: 50 * time.Millisecond, BackoffBase: 10 * time.Millisecond}
	sync := NewSyncer(joiner, joinEp, []string{"dead", "veteran"}, cfg)

	base := time.Now()
	if !sync.Kick(base) {
		t.Fatal("kick did not send")
	}
	if sync.Peer() != "dead" {
		t.Fatalf("first request went to %q", sync.Peer())
	}
	// Before the deadline nothing changes.
	sync.Tick(base.Add(20 * time.Millisecond))
	if sync.Peer() != "dead" {
		t.Fatal("request abandoned before deadline")
	}
	// Past the deadline: failure recorded, backoff blocks an instant retry.
	sync.Tick(base.Add(60 * time.Millisecond))
	if sync.Inflight() {
		t.Fatal("request survived its deadline")
	}
	// Past the backoff (10ms ± 20%): rotation reaches the live peer.
	sync.Tick(base.Add(100 * time.Millisecond))
	if sync.Peer() != "veteran" {
		t.Fatalf("rotation picked %q, want veteran", sync.Peer())
	}
}

// TestSyncerDemotesAndResets fails the only peer repeatedly: after
// DemoteAfter consecutive timeouts it is demoted, yet the syncer keeps
// probing it (all-demoted resets the scores rather than stalling forever).
func TestSyncerDemotesAndResets(t *testing.T) {
	_, joiner, _, joinEp, net := syncTestNodes(t, 0)
	if _, err := net.Join("flaky"); err != nil {
		t.Fatal(err)
	}

	cfg := SyncConfig{
		RequestTimeout: 10 * time.Millisecond,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		DemoteAfter:    2,
	}
	sync := NewSyncer(joiner, joinEp, []string{"flaky"}, cfg)

	now := time.Now()
	for i := 0; i < 5; i++ {
		if !sync.Kick(now) {
			// Backoff may still be pending; advance further.
			now = now.Add(20 * time.Millisecond)
			if !sync.Kick(now) {
				t.Fatalf("round %d: syncer stopped probing its only peer", i)
			}
		}
		if sync.Peer() != "flaky" {
			t.Fatalf("round %d: request went to %q", i, sync.Peer())
		}
		now = now.Add(20 * time.Millisecond) // past the deadline
		sync.Tick(now)
		if sync.Inflight() && sync.Peer() == "flaky" {
			// Tick may have re-kicked immediately once backoff passed;
			// that is the desired keep-probing behavior.
			continue
		}
		now = now.Add(20 * time.Millisecond) // past any backoff
	}

	h := sync.health["flaky"]
	if h == nil {
		t.Fatal("no health record")
	}
	// The score must have been reset at least once (failures never exceed
	// DemoteAfter by much because all-demoted wipes the slate).
	if h.failures > 5 {
		t.Fatalf("failures=%d, reset never happened", h.failures)
	}
}

// TestSyncerBackoffGrows checks the exponential schedule: consecutive
// failures stretch the pause between requests, capped at BackoffMax.
func TestSyncerBackoffGrows(t *testing.T) {
	_, joiner, _, joinEp, net := syncTestNodes(t, 0)
	if _, err := net.Join("dead" /* never answers */); err != nil {
		t.Fatal(err)
	}
	cfg := SyncConfig{
		RequestTimeout: time.Millisecond,
		BackoffBase:    100 * time.Millisecond,
		BackoffMax:     400 * time.Millisecond,
		DemoteAfter:    100, // keep rotation trivial
	}
	sync := NewSyncer(joiner, joinEp, []string{"dead"}, cfg)

	now := time.Now()
	sync.Kick(now)
	now = now.Add(2 * time.Millisecond)
	sync.Tick(now) // first failure: backoff ~100ms (±20%)
	if sync.Kick(now.Add(50 * time.Millisecond)) {
		t.Fatal("kick inside first backoff window")
	}
	if !sync.Kick(now.Add(200 * time.Millisecond)) {
		t.Fatal("kick after first backoff window failed")
	}
	now = now.Add(202 * time.Millisecond)
	sync.Tick(now) // second failure: backoff ~200ms
	if sync.Kick(now.Add(100 * time.Millisecond)) {
		t.Fatal("kick inside doubled backoff window")
	}
	if !sync.Kick(now.Add(300 * time.Millisecond)) {
		t.Fatal("kick after doubled backoff failed")
	}
}

// TestSyncerPaginationSticksToPeer: a More-flagged response continues the
// exchange with the SAME peer from UpTo — rotating mid-exchange would
// restart the cursor at MinHeight and, on a node that cannot advance,
// page forever.
func TestSyncerPaginationSticksToPeer(t *testing.T) {
	veteran, joiner, vetEp, joinEp, net := syncTestNodes(t, 3)
	if _, err := net.Join("other"); err != nil {
		t.Fatal(err)
	}
	sync := NewSyncer(joiner, joinEp, []string{"other", "veteran"}, SyncConfig{})

	now := time.Now()
	sync.Kick(now)
	if sync.Peer() != "other" {
		t.Fatalf("first request went to %q", sync.Peer())
	}
	// "other" stays silent: time out, then rotate to the veteran.
	now = now.Add(time.Second)
	sync.Tick(now)
	now = now.Add(time.Second)
	sync.Tick(now)
	if sync.Peer() != "veteran" {
		t.Fatalf("rotation picked %q, want veteran", sync.Peer())
	}
	req := <-vetEp.Inbox()
	veteran.HandleSyncRequest(vetEp, req)
	resp := <-joinEp.Inbox()
	if !resp.More {
		t.Fatal("batch cap 3 did not truncate the response")
	}
	if _, err := sync.HandleBlocks(now, resp); err != nil {
		t.Fatal(err)
	}
	if sync.Peer() != "veteran" {
		t.Fatalf("pagination rotated away to %q mid-exchange", sync.Peer())
	}
	next := <-vetEp.Inbox()
	if next.Type != p2p.MsgGetBlocks || next.Height != resp.UpTo {
		t.Fatalf("follow-up requested height %d, want cursor %d", next.Height, resp.UpTo)
	}
}

// TestSyncerFullResyncAfterNoProgress: an exchange that completes without
// raising MinHeight means something at or below the cursor is missing (a
// fork candidate lost in a crash); the syncer must fall back to requesting
// from height 0, and a fruitless resync must not re-arm itself.
func TestSyncerFullResyncAfterNoProgress(t *testing.T) {
	veteran, joiner, vetEp, joinEp, _ := syncTestNodes(t, 0)
	sync := NewSyncer(joiner, joinEp, []string{"veteran"}, SyncConfig{})

	// Catch the joiner up completely first — a normal, productive exchange.
	now := time.Now()
	sync.Kick(now)
	req := <-vetEp.Inbox()
	veteran.HandleSyncRequest(vetEp, req)
	resp := <-joinEp.Inbox()
	if _, err := sync.HandleBlocks(now, resp); err != nil {
		t.Fatal(err)
	}
	if joiner.MinHeight() != veteran.MinHeight() {
		t.Fatalf("joiner at %d, veteran at %d", joiner.MinHeight(), veteran.MinHeight())
	}
	if sync.Inflight() {
		t.Fatal("productive exchange armed a resync")
	}

	// Now an exchange that yields nothing: all duplicates, not truncated.
	now = now.Add(time.Second)
	sync.Kick(now)
	req = <-vetEp.Inbox()
	if req.Height != joiner.MinHeight() {
		t.Fatalf("request from %d, want MinHeight %d", req.Height, joiner.MinHeight())
	}
	last := resp.Blocks[len(resp.Blocks)-1]
	if _, err := sync.HandleBlocks(now, p2p.Message{
		Type: p2p.MsgBlocks, From: "veteran",
		Blocks: []*types.Block{last}, UpTo: last.Header.Height,
	}); err != nil {
		t.Fatal(err)
	}
	full := <-vetEp.Inbox()
	if full.Type != p2p.MsgGetBlocks || full.Height != 0 {
		t.Fatalf("expected full resync from height 0, got height %d", full.Height)
	}

	// Serving the resync yields duplicates again; the syncer must settle
	// rather than loop.
	veteran.HandleSyncRequest(vetEp, full)
	resp = <-joinEp.Inbox()
	if _, err := sync.HandleBlocks(now, resp); err != nil {
		t.Fatal(err)
	}
	if sync.Inflight() {
		t.Fatal("fruitless full resync re-armed itself")
	}
}

// TestSyncerIgnoresStrayResponses: a MsgBlocks from a peer we did not ask
// must not clear the outstanding request, though its blocks are ingested.
func TestSyncerIgnoresStrayResponses(t *testing.T) {
	veteran, joiner, _, joinEp, net := syncTestNodes(t, 0)
	if _, err := net.Join("dead"); err != nil {
		t.Fatal(err)
	}
	sync := NewSyncer(joiner, joinEp, []string{"dead", "veteran"}, SyncConfig{})

	now := time.Now()
	sync.Kick(now)
	if sync.Peer() != "dead" {
		t.Fatalf("request went to %q", sync.Peer())
	}
	blocks := veteran.Ledger().BlocksAbove(0)
	accepted, err := sync.HandleBlocks(now, p2p.Message{
		Type: p2p.MsgBlocks, From: "veteran", Blocks: blocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if accepted == 0 {
		t.Fatal("stray response's blocks were not ingested")
	}
	if !sync.Inflight() || sync.Peer() != "dead" {
		t.Fatal("stray response cleared the outstanding request")
	}
}
