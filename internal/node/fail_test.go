package node

import (
	"context"
	"errors"
	"testing"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// Crash-mid-persist coverage: panic failpoints fire inside the persist path
// at every interesting site — before anything is written, mid-WAL-batch,
// and after the batch is durable — and each time the reopened node must
// come back with watermark, state root, and ledger agreeing with each
// other, then keep processing. persistEpochLocked's commit-point ordering
// (meta record last) is exactly what these tests exercise.

// persistCrashNode opens a persistent node over dir whose store carries the
// failpoint tag "crashnode".
func persistCrashNode(t *testing.T, dir string) (*Node, kvstore.Store, *workload.Generator) {
	t.Helper()
	opts := kvstore.DefaultLSMOptions()
	opts.FailTag = "crashnode"
	store, err := kvstore.OpenLSM(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 13, Accounts: 200, Skew: 0.3, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	cfg.Persist = true
	cfg.GenesisWrites = genesisFor(t, gen, gen.Txs(400))
	n, err := New("crashnode", store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, store, gen
}

// growUntilCrash mines and submits blocks until a fail.Crash panic escapes
// (returning true) or the node reaches `epochs` epochs (returning false).
func growUntilCrash(t *testing.T, n *Node, gen *workload.Generator, epochs uint64) (crashed bool) {
	t.Helper()
	miner := NewMiner(n, types.AddressFromUint64(1), 100)
	miner.AddTxs(gen.Txs(400))
	defer func() {
		if r := recover(); r != nil {
			if !fail.IsCrash(r) {
				panic(r)
			}
			crashed = true
		}
	}()
	ctx := context.Background()
	for i := 0; n.NextEpoch() <= epochs; i++ {
		if i > 10_000 {
			t.Fatal("epochs refuse to complete")
		}
		b, err := miner.Mine(ctx)
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		if err := n.SubmitBlock(b); err != nil && !isStale(err) {
			t.Fatalf("submit: %v", err)
		}
		if _, err := n.ProcessReadyEpochs(); err != nil {
			t.Fatalf("process: %v", err)
		}
	}
	return false
}

// assertRecovered reopens the store and checks the restored node is
// self-consistent: the watermark's root is the live root, the ledger
// replayed to the watermark, and the node still processes new epochs.
func assertRecovered(t *testing.T, dir string, minEpoch uint64) {
	t.Helper()
	n, store, gen := persistCrashNode(t, dir)
	defer store.Close()
	e := n.NextEpoch()
	if e < minEpoch {
		t.Fatalf("recovered at epoch %d, want >= %d", e, minEpoch)
	}
	n.mu.Lock()
	want, ok := n.roots[e-1]
	n.mu.Unlock()
	if !ok {
		t.Fatalf("no persisted root for watermark epoch %d", e-1)
	}
	if n.StateRoot() != want {
		t.Fatalf("live root %s != persisted root %s for epoch %d",
			n.StateRoot().Short(), want.Short(), e-1)
	}
	for c := uint32(0); c < 2; c++ {
		if n.Ledger().Height(c) < e-1 {
			t.Fatalf("chain %d replayed to height %d, watermark %d",
				c, n.Ledger().Height(c), e-1)
		}
	}
	// And the node is not wedged: it keeps processing.
	if crashed := growUntilCrash(t, n, gen, e+1); crashed {
		t.Fatal("crash failpoint still armed during recovery run")
	}
	if n.NextEpoch() <= e {
		t.Fatal("recovered node did not progress")
	}
}

// TestCrashBeforePersist: the process dies before the epoch's batch is
// built. The store must still hold the PREVIOUS epoch intact.
func TestCrashBeforePersist(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	n, store, gen := persistCrashNode(t, dir)

	// Let two epochs persist cleanly, then crash at the third's persist.
	fail.Enable("node/persist", fail.Spec{Mode: fail.ModePanic, Tag: "crashnode", After: 2})
	if !growUntilCrash(t, n, gen, 6) {
		t.Fatal("crash failpoint never fired")
	}
	fail.Reset()
	store.Close()
	assertRecovered(t, dir, 3)
}

// TestCrashMidPersistBatch: the process dies inside the WAL append of the
// persist batch — the torn tail must replay to a consistent prefix, and
// the commit-point ordering (meta last) keeps watermark and blocks in
// agreement.
func TestCrashMidPersistBatch(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	n, store, gen := persistCrashNode(t, dir)

	// Each persist batch writes k block records + meta; crash after a few
	// appends so the tear lands inside a batch.
	fail.Enable("kvstore/wal-append", fail.Spec{Mode: fail.ModePanic, Tag: "crashnode", After: 12})
	if !growUntilCrash(t, n, gen, 8) {
		t.Fatal("crash failpoint never fired")
	}
	fail.Reset()
	// Abandon store without Close — a crash does not flush.
	_ = store
	assertRecovered(t, dir, 1)
}

// TestCrashAfterPersistDone: the process dies after the batch is durable;
// the restarted node must land on the NEW watermark, not the old one.
func TestCrashAfterPersistDone(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	n, store, gen := persistCrashNode(t, dir)

	fail.Enable("node/persist-done", fail.Spec{Mode: fail.ModePanic, Tag: "crashnode", After: 2})
	if !growUntilCrash(t, n, gen, 6) {
		t.Fatal("crash failpoint never fired")
	}
	crashEpoch := n.NextEpoch() // includes the epoch whose persist completed
	fail.Reset()
	store.Close()
	assertRecovered(t, dir, crashEpoch)
}

// TestPersistFailureHealsBeforeNextEpoch: a TRANSIENT storage error during
// the durability write must not leave a permanent hole in the persisted
// epoch sequence. The in-memory commit cannot be rolled back (the state
// trie already advanced), so the node owes the store that epoch and must
// flush it before processing anything further — otherwise a later epoch's
// metadata records a watermark whose blocks were never stored and restart
// fails with "missing persisted block".
func TestPersistFailureHealsBeforeNextEpoch(t *testing.T) {
	defer fail.Reset()
	dir := t.TempDir()
	n, store, gen := persistCrashNode(t, dir)

	// Epoch 1 persists cleanly; epoch 2's persist fails exactly once.
	fail.Enable("node/persist", fail.Spec{
		Mode: fail.ModeError, Tag: "crashnode", After: 1, Count: 1,
	})
	miner := NewMiner(n, types.AddressFromUint64(1), 100)
	miner.AddTxs(gen.Txs(400))
	ctx := context.Background()
	injected := false
	for i := 0; n.NextEpoch() <= 3; i++ {
		if i > 10_000 {
			t.Fatal("epochs refuse to complete")
		}
		b, err := miner.Mine(ctx)
		if err != nil {
			t.Fatalf("mine: %v", err)
		}
		if err := n.SubmitBlock(b); err != nil && !isStale(err) {
			t.Fatalf("submit: %v", err)
		}
		if _, err := n.ProcessReadyEpochs(); err != nil {
			if !errors.Is(err, fail.ErrInjected) {
				t.Fatalf("process: %v", err)
			}
			injected = true
		}
	}
	if !injected {
		t.Fatal("persist failpoint never fired")
	}
	final := n.NextEpoch()
	fail.Reset()
	store.Close()
	// Every epoch up to the in-memory watermark must be on disk — the owed
	// epoch was re-persisted before its successors, leaving no hole.
	assertRecovered(t, dir, final)
}

// TestSubmitBlockFailpoint: an injected ingest error surfaces to the
// caller and leaves the ledger unchanged; disabling restores service.
func TestSubmitBlockFailpoint(t *testing.T) {
	defer fail.Reset()
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(1), 10)
	b, err := miner.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	fail.Enable("node/submit", fail.Spec{Mode: fail.ModeError, Tag: "x"})
	if err := n.SubmitBlock(b); err == nil {
		t.Fatal("armed failpoint let the block through")
	}
	if n.Ledger().Height(0) != 0 {
		t.Fatal("rejected block reached the ledger")
	}
	fail.Disable("node/submit")
	if err := n.SubmitBlock(b); err != nil {
		t.Fatal(err)
	}
	if n.Ledger().Height(0) != 1 {
		t.Fatal("block not added after disable")
	}
}

// TestStageHandoffFailpoint: an injected stage-handoff error aborts the
// epoch cleanly — the node's watermark does not advance and a retry after
// disable succeeds (the pipeline mutates nothing before its first stage).
func TestStageHandoffFailpoint(t *testing.T) {
	defer fail.Reset()
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	n, err := New("x", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(1), 10)
	b, err := miner.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitBlock(b); err != nil {
		t.Fatal(err)
	}

	fail.Enable("node/stage-validate", fail.Spec{Mode: fail.ModeError, Tag: "x"})
	if _, err := n.ProcessEpoch(1); err == nil {
		t.Fatal("armed handoff failpoint did not abort the epoch")
	}
	if n.NextEpoch() != 1 {
		t.Fatalf("aborted epoch advanced the watermark to %d", n.NextEpoch())
	}
	fail.Disable("node/stage-validate")
	if _, err := n.ProcessEpoch(1); err != nil {
		t.Fatalf("retry after disable: %v", err)
	}
	if n.NextEpoch() != 2 {
		t.Fatal("retried epoch did not commit")
	}
}
