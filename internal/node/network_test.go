package node

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/contracts/token"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/crypto"
	"github.com/nezha-dag/nezha/internal/dag"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/p2p"
	"github.com/nezha-dag/nezha/internal/statedb"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// TestGossipNetworkConvergesOnRoots is the end-to-end integration test:
// several nodes mine concurrently (real fork pressure), gossip blocks over
// the simulated network, and must converge on identical state roots at
// every processed epoch.
func TestGossipNetworkConvergesOnRoots(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node simulation")
	}
	const (
		nodes       = 3
		chains      = 3
		targetEpoch = 2
		latency     = 200 * time.Microsecond
	)
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 13, Accounts: 2_000, Skew: 0.4, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(3_000)
	snap, err := gen.Snapshot(txs)
	if err != nil {
		t.Fatal(err)
	}
	genesis := make([]types.WriteEntry, 0, len(snap))
	for k, v := range snap {
		genesis = append(genesis, types.WriteEntry{Key: k, Value: v})
	}

	net := p2p.NewNetwork(p2p.Config{Latency: latency, Jitter: latency, QueueLen: 4096})
	defer net.Close()

	type peer struct {
		node  *Node
		miner *Miner
		ep    *p2p.Endpoint
	}
	peers := make([]*peer, nodes)
	for i := range peers {
		id := fmt.Sprintf("n%d", i)
		n, err := New(id, kvstore.NewMemory(), Config{
			Consensus:     consensus.Params{Chains: chains, DifficultyBits: 4},
			Scheduler:     core.MustNewScheduler(core.DefaultConfig()),
			Contracts:     map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
			GenesisWrites: genesis,
			ConfirmDepth:  3,
		})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := net.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMiner(n, types.AddressFromUint64(uint64(i)), 50)
		m.AddTxs(txs)
		peers[i] = &peer{node: n, miner: m, ep: ep}
	}

	rootsAt := make([]map[uint64]types.Hash, nodes)
	for i := range rootsAt {
		rootsAt[i] = make(map[uint64]types.Hash)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// drainAll empties every inbox; it returns how many messages moved.
	drainAll := func() int {
		moved := 0
		for _, p := range peers {
			for {
				select {
				case msg := <-p.ep.Inbox():
					moved++
					err := p.node.SubmitBlock(msg.Block)
					if err != nil && !errors.Is(err, dag.ErrDuplicateBlock) &&
						!errors.Is(err, dag.ErrBelowFinal) && !errors.Is(err, dag.ErrUnknownParent) {
						t.Fatalf("%s: %v", p.node.ID(), err)
					}
				default:
					goto next
				}
			}
		next:
		}
		return moved
	}
	for peers[0].node.NextEpoch() <= targetEpoch {
		if ctx.Err() != nil {
			t.Fatal("timed out before the target epoch")
		}
		for _, p := range peers {
			mineCtx, mineCancel := context.WithTimeout(ctx, 100*time.Millisecond)
			b, err := p.miner.Mine(mineCtx)
			mineCancel()
			if err != nil {
				continue
			}
			if p.node.SubmitBlock(b) == nil {
				p.ep.Broadcast(p2p.Message{Type: p2p.MsgBlock, Block: b})
			}
		}
		// Wait for gossip quiescence before anyone processes: two
		// consecutive quiet sweeps with a full latency bound between
		// them. (Single-core CI schedules deliveries late; processing
		// while blocks are in flight is how real probabilistic-finality
		// violations would look, but this test wants determinism.)
		quiet := 0
		for quiet < 2 {
			if drainAll() > 0 {
				quiet = 0
			} else {
				quiet++
			}
			time.Sleep(2 * latency)
		}
		for i, p := range peers {
			results, err := p.node.ProcessReadyEpochs()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				rootsAt[i][r.Epoch] = r.StateRoot
			}
		}
	}

	// Every epoch processed by more than one node must have one root.
	checked := 0
	for e := uint64(1); e <= targetEpoch; e++ {
		var ref types.Hash
		seen := false
		for i := range peers {
			root, ok := rootsAt[i][e]
			if !ok {
				continue
			}
			if !seen {
				ref, seen = root, true
				continue
			}
			checked++
			if root != ref {
				t.Fatalf("epoch %d: node %d root %s != %s", e, i, root.Short(), ref.Short())
			}
		}
	}
	if checked == 0 {
		t.Fatal("no epoch was processed by more than one node; test proved nothing")
	}
}

// TestPipelineOverLSMStore runs the full pipeline against the durable LSM
// backend instead of the in-memory store — the configuration the paper's
// prototype actually ships (LevelDB underneath the MPT) — and reloads the
// committed state from disk afterwards.
func TestPipelineOverLSMStore(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.OpenLSM(dir, kvstore.LSMOptions{MemtableBytes: 1 << 16, CompactAt: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	gen, err := workload.NewGenerator(workload.Config{
		Seed: 2, Accounts: 500, Skew: 0.5, InitialBalance: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(300)
	snap, err := gen.Snapshot(txs)
	if err != nil {
		t.Fatal(err)
	}
	genesis := make([]types.WriteEntry, 0, len(snap))
	for k, v := range snap {
		genesis = append(genesis, types.WriteEntry{Key: k, Value: v})
	}
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	cfg.GenesisWrites = genesis
	n, err := New("lsm", store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(5), 100)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, 1)
	if n.Metrics().Summarize().Committed == 0 {
		t.Fatal("nothing committed over LSM")
	}

	// The committed state must be reloadable from disk: reopen the same
	// directory and read a SmallBank cell back through a fresh state
	// database rooted at the final root.
	root := n.StateRoot()
	call, err := workload.DecodeCall(txs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	probe := smallbank.CheckingKey(call.Acct1)
	want, err := n.State().Get(probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := kvstore.OpenLSM(dir, kvstore.DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	db := statedb.Open(reopened, root)
	got, err := db.Get(probe)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("reloaded state %x != live state %x", got, want)
	}
}

// TestSignatureValidation: with VerifySignatures on, a properly signed
// workload processes normally and a block containing a forged transaction
// is discarded whole.
func TestSignatureValidation(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{
		Seed: 4, Accounts: 50, Skew: 0, InitialBalance: 1_000, Sign: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(60)
	for _, tx := range txs {
		if err := crypto.VerifyTx(tx); err != nil {
			t.Fatalf("generator produced unverifiable tx: %v", err)
		}
	}
	cfg := testConfig(1, core.MustNewScheduler(core.DefaultConfig()))
	cfg.VerifySignatures = true
	cfg.GenesisWrites = genesisFor(t, gen, txs)
	n, err := New("sig", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(1), 30)
	miner.AddTxs(txs[:30])
	growEpochs(t, n, []*Miner{miner}, 1)
	sum := n.Metrics().Summarize()
	if sum.Committed == 0 {
		t.Fatal("signed workload committed nothing")
	}

	// Forge one transaction inside the next block: the block must be
	// discarded by validation, not processed.
	forged := txs[30:60]
	forged[0].Value += 1 // content no longer matches its signature
	forged[0].Sig = append([]byte(nil), forged[0].Sig...)
	miner.AddTxs(forged)
	b, err := miner.Mine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SubmitBlock(b); err != nil {
		t.Fatal(err)
	}
	res, err := n.ProcessEpoch(n.NextEpoch())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discarded) != 1 {
		t.Fatalf("forged block not discarded: %+v", res.Discarded)
	}
	if res.Stats.Txs != 0 {
		t.Fatal("transactions from the forged block were processed")
	}
}

// TestTokenWorkloadPipeline runs the ERC20-style token workload through the
// full pipeline: token-supply conservation must hold across committed
// epochs, and under high skew some transfers revert (AbortExecution)
// without corrupting state.
func TestTokenWorkloadPipeline(t *testing.T) {
	gen, err := workload.NewTokenGenerator(workload.TokenConfig{
		Seed: 3, Accounts: 40, Skew: 0.9, InitialBalance: 50, MintRatio: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Txs(300)
	genesis, err := gen.Genesis(txs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, core.MustNewScheduler(core.DefaultConfig()))
	cfg.Contracts[token.ContractAddress] = token.Program()
	cfg.GenesisWrites = genesis
	n, err := New("token", kvstore.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	miner := NewMiner(n, types.AddressFromUint64(1), 150)
	miner.AddTxs(txs)
	growEpochs(t, n, []*Miner{miner}, 1)

	sum := n.Metrics().Summarize()
	if sum.Committed == 0 {
		t.Fatal("nothing committed")
	}
	// With 40 accounts at balance 50 and transfer amounts up to 100,
	// reverts are essentially guaranteed across 300 attempts.
	if sum.Txs > 0 && n.Metrics().Epochs()[0].ExecutionFailed == 0 {
		t.Log("warning: no execution aborts observed (statistically unlikely)")
	}

	// Supply conservation: the sum of all balances equals the genesis
	// supply (transfers conserve; MintRatio is 0).
	var total uint64
	var genesisTotal uint64
	for _, w := range genesis {
		if w.Key == token.SupplyKey() {
			genesisTotal = workload.DecodeBalance(w.Value)
			continue
		}
		v, err := n.State().Get(w.Key)
		if err != nil {
			t.Fatal(err)
		}
		total += workload.DecodeBalance(v)
	}
	if total != genesisTotal {
		t.Fatalf("token supply not conserved: %d != %d", total, genesisTotal)
	}
}
