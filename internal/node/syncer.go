package node

// Self-healing block synchronization. The plain RequestSync/HandleSyncRequest
// pair assumes the chosen peer answers; a real cluster has peers that crash,
// stall, or sit on the wrong side of a partition. Syncer wraps the same
// messages with the retry machinery a long-lived node needs: per-request
// deadlines, exponential backoff with jitter, rotation to the next peer on
// timeout, and a consecutive-failure health score that demotes unresponsive
// peers so they are skipped until everyone else has failed too.
//
// Syncer is event-loop driven, like the rest of the node: the owner calls
// Kick to start catching up, HandleBlocks when a MsgBlocks arrives, and Tick
// periodically so deadlines and backoff expire. Time is always passed in,
// which keeps the chaos harness and the tests deterministic.

import (
	"math/rand"
	"sync"
	"time"

	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/p2p"
)

// The per-node sync counters. Each helper passes its name as a literal at
// the constructor call: nezha-vet's metricshygiene analyzer requires
// grep-able literal names at every Counter/Gauge call site, which is why
// there is no name-threading wrapper here.

func syncNode(node string) metrics.Label {
	return metrics.Label{Name: "node", Value: node}
}

func syncServed(node string) *metrics.Counter {
	return metrics.Default().Counter("nezha_sync_blocks_served_total",
		"Blocks serialized into MsgBlocks responses for other nodes.", syncNode(node))
}

func syncRequests(node string) *metrics.Counter {
	return metrics.Default().Counter("nezha_sync_requests_total",
		"MsgGetBlocks requests issued by the syncer.", syncNode(node))
}

func syncTimeouts(node string) *metrics.Counter {
	return metrics.Default().Counter("nezha_sync_timeouts_total",
		"Sync requests that hit their deadline without a response.", syncNode(node))
}

func syncAccepted(node string) *metrics.Counter {
	return metrics.Default().Counter("nezha_sync_blocks_accepted_total",
		"Blocks accepted into the ledger from sync responses.", syncNode(node))
}

func syncDemotions(node string) *metrics.Counter {
	return metrics.Default().Counter("nezha_sync_demotions_total",
		"Peers demoted after consecutive sync failures.", syncNode(node))
}

func syncResyncs(node string) *metrics.Counter {
	return metrics.Default().Counter("nezha_sync_full_resyncs_total",
		"Full resyncs from height 0 after a no-progress exchange.", syncNode(node))
}

func syncInflight(node string) *metrics.Gauge {
	return metrics.Default().Gauge("nezha_sync_inflight",
		"Whether the syncer has an outstanding request (0 or 1).", syncNode(node))
}

// SyncConfig tunes the self-healing sync loop.
type SyncConfig struct {
	// RequestTimeout is the per-request deadline before the syncer gives
	// up on the current peer. 0 means 500 ms.
	RequestTimeout time.Duration
	// BackoffBase is the first retry delay after a failure; each further
	// consecutive failure doubles it. 0 means 100 ms.
	BackoffBase time.Duration
	// BackoffMax caps the doubling. 0 means 5 s.
	BackoffMax time.Duration
	// JitterFrac spreads each backoff uniformly in ±frac of itself so a
	// rebooted cluster does not retry in lockstep. 0 means 0.2.
	JitterFrac float64
	// DemoteAfter is how many consecutive failures demote a peer. A
	// demoted peer is skipped by rotation until every peer is demoted,
	// at which point all scores reset (better to retry a flaky peer than
	// to stall forever). 0 means 3.
	DemoteAfter int
	// Seed drives the backoff jitter.
	Seed int64
}

func (c SyncConfig) withDefaults() SyncConfig {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 500 * time.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.2
	}
	if c.DemoteAfter <= 0 {
		c.DemoteAfter = 3
	}
	return c
}

// peerHealth is one peer's consecutive-failure score.
type peerHealth struct {
	failures int
	demoted  bool
}

// Syncer drives a node's catch-up against a fixed peer set. Safe for
// concurrent use; all methods take the current time explicitly.
type Syncer struct {
	n   *Node
	ep  *p2p.Endpoint
	cfg SyncConfig

	mu           sync.Mutex
	order        []string // rotation order, fixed at construction
	health       map[string]*peerHealth
	cursor       int    // next rotation index into order
	inflight     bool   // a request is outstanding
	peer         string // who it was sent to
	deadline     time.Time
	failStreak   int       // consecutive failures across all peers (backoff input)
	backoffUntil time.Time // no new request before this instant
	// pagePeer/pageFrom are the pagination cursor: a More-flagged response
	// from pagePeer covered heights up to pageFrom, so the next kick sticks
	// with the SAME peer and resumes there — rotating mid-exchange would
	// restart from MinHeight and, on a node that cannot advance, never
	// terminate. A failure clears the cursor, so rotation starts a fresh
	// exchange.
	pagePeer string
	pageFrom uint64
	// exchangeMin is MinHeight when the current exchange began; an exchange
	// that completes without raising it made no progress.
	exchangeMin uint64
	// resyncArmed schedules the next exchange to start from height 0: a
	// completed exchange with no progress means the node is missing a block
	// at or below its own cursor (a fork candidate lost in a crash, say)
	// that normal paging can never re-fetch. resyncing marks the current
	// exchange as that full resync, so a fruitless resync does not re-arm
	// itself forever.
	resyncArmed bool
	resyncing   bool
	rng         *rand.Rand
}

// NewSyncer builds a syncer over the given peers (the rotation order is the
// slice order). The node's HandleSyncRequest still serves inbound requests;
// Syncer only manages this node's own catch-up.
func NewSyncer(n *Node, ep *p2p.Endpoint, peers []string, cfg SyncConfig) *Syncer {
	s := &Syncer{
		n:      n,
		ep:     ep,
		cfg:    cfg.withDefaults(),
		order:  append([]string(nil), peers...),
		health: make(map[string]*peerHealth, len(peers)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, p := range peers {
		s.health[p] = &peerHealth{}
	}
	return s
}

// Inflight reports whether a request is outstanding.
func (s *Syncer) Inflight() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Peer returns the peer the outstanding request was sent to ("" if none).
func (s *Syncer) Peer() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inflight {
		return ""
	}
	return s.peer
}

// Kick starts a sync request if none is outstanding and backoff allows.
// Returns true if a request went out.
func (s *Syncer) Kick(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kickLocked(now)
}

// Tick expires the outstanding request's deadline (demoting and rotating
// away from the silent peer) and starts the next request once backoff has
// passed. Call it from the owner's event loop at least every few hundred
// milliseconds while behind.
func (s *Syncer) Tick(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight && now.After(s.deadline) {
		syncTimeouts(s.n.id).Inc()
		s.n.jr.Emit(journal.SyncTimeout, 0, journal.FS("peer", s.peer))
		s.failLocked(now, s.peer)
	}
	s.kickLocked(now)
}

// HandleBlocks ingests a MsgBlocks response. It feeds the blocks to the
// node regardless of who sent them (blocks self-validate), but only a
// response from the awaited peer clears the outstanding request and its
// health penalty. When the response is truncated (msg.More) the next
// request goes out immediately — pagination, not failure. Returns the
// number of blocks accepted and the first hard error.
func (s *Syncer) HandleBlocks(now time.Time, msg p2p.Message) (int, error) {
	accepted, err := s.n.HandleSyncResponse(msg)
	syncAccepted(s.n.id).Add(float64(accepted))
	more := uint64(0)
	if msg.More {
		more = 1
	}
	s.n.jr.Emit(journal.SyncResponse, msg.UpTo,
		journal.FS("peer", msg.From), journal.F("accepted", uint64(accepted)), journal.F("more", more))

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inflight || msg.From != s.peer {
		return accepted, err
	}
	if err != nil {
		// The awaited peer answered with invalid blocks: that is worse
		// than silence, so it takes the same failure path.
		s.failLocked(now, s.peer)
		return accepted, err
	}
	// Success: clear the request and forgive the peer.
	s.inflight = false
	syncInflight(s.n.id).Set(0)
	s.failStreak = 0
	s.backoffUntil = time.Time{}
	if h := s.health[msg.From]; h != nil {
		h.failures = 0
		h.demoted = false
	}
	if msg.More {
		// The peer capped the batch at height UpTo; keep paging there.
		s.pagePeer, s.pageFrom = msg.From, msg.UpTo
		s.kickLocked(now)
	} else {
		// Exchange complete; future rounds restart from MinHeight.
		s.pagePeer, s.pageFrom = "", 0
		noProgress := s.n.MinHeight() <= s.exchangeMin
		wasResync := s.resyncing
		s.resyncing = false
		if noProgress && !wasResync {
			// The peer served everything above our cursor and none of it
			// moved us: something we need sits at or below the cursor.
			// Re-fetch the peer's whole block set — duplicates bounce off
			// as benign, the missing candidate lands.
			s.resyncArmed = true
			syncResyncs(s.n.id).Inc()
			s.n.jr.Emit(journal.SyncResync, s.exchangeMin)
			s.kickLocked(now)
		}
	}
	return accepted, nil
}

// failLocked records a failure of the outstanding request against peer:
// health demotion, global backoff, and rotation (the cursor already moved
// past the peer at kick time, so the next kick tries someone else).
func (s *Syncer) failLocked(now time.Time, peer string) {
	s.inflight = false
	syncInflight(s.n.id).Set(0)
	// Abandon the exchange: a stale cursor carried to the next peer would
	// skip the heights it never delivered.
	s.pagePeer, s.pageFrom = "", 0
	s.resyncing = false
	if h := s.health[peer]; h != nil {
		h.failures++
		if !h.demoted && h.failures >= s.cfg.DemoteAfter {
			h.demoted = true
			syncDemotions(s.n.id).Inc()
			s.n.jr.Emit(journal.SyncDemote, 0, journal.FS("peer", peer))
		}
	}
	s.failStreak++
	s.backoffUntil = now.Add(s.backoffLocked())
}

// backoffLocked computes the jittered exponential backoff for the current
// failure streak.
func (s *Syncer) backoffLocked() time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < s.failStreak; i++ {
		d *= 2
		if d >= s.cfg.BackoffMax {
			d = s.cfg.BackoffMax
			break
		}
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	// Uniform jitter in ±JitterFrac·d, never below zero.
	j := time.Duration((s.rng.Float64()*2 - 1) * s.cfg.JitterFrac * float64(d))
	if d+j < 0 {
		return 0
	}
	return d + j
}

// kickLocked sends the next request if allowed. Reports whether it did.
func (s *Syncer) kickLocked(now time.Time) bool {
	if s.inflight || len(s.order) == 0 || now.Before(s.backoffUntil) {
		return false
	}
	peer := s.pagePeer
	if peer == "" {
		// No exchange in progress: rotate to the next healthy peer.
		p, ok := s.nextPeerLocked()
		if !ok {
			return false
		}
		peer = p
	}
	s.inflight = true
	s.peer = peer
	s.deadline = now.Add(s.cfg.RequestTimeout)
	height := s.n.MinHeight()
	if peer == s.pagePeer && (s.resyncing || s.pageFrom > height) {
		height = s.pageFrom
	} else {
		// Fresh exchange: record the baseline for progress detection and
		// consume any armed full resync.
		s.exchangeMin = height
		s.resyncing = s.resyncArmed
		s.resyncArmed = false
		if s.resyncing {
			height = 0
		}
	}
	syncRequests(s.n.id).Inc()
	syncInflight(s.n.id).Set(1)
	resync := uint64(0)
	if s.resyncing {
		resync = 1
	}
	s.n.jr.Emit(journal.SyncRequest, height,
		journal.FS("peer", peer), journal.F("resync", resync))
	// Send outside the node's lock but inside ours is fine: the simulated
	// network never blocks the sender.
	s.ep.Send(peer, p2p.Message{Type: p2p.MsgGetBlocks, Height: height})
	return true
}

// nextPeerLocked rotates to the next non-demoted peer. If every peer is
// demoted, all scores reset and rotation starts over — a stalled syncer
// must keep probing, because "all peers bad" usually means "we were the
// problem" (our own partition side, our own crash).
func (s *Syncer) nextPeerLocked() (string, bool) {
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < len(s.order); i++ {
			p := s.order[s.cursor%len(s.order)]
			s.cursor++
			if h := s.health[p]; h == nil || !h.demoted {
				return p, true
			}
		}
		// Every peer demoted: reset and retry once.
		for _, h := range s.health {
			h.failures = 0
			h.demoted = false
		}
	}
	return "", false
}
