package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomTx(rng *rand.Rand) *Transaction {
	tx := &Transaction{
		ID:    TxID(rng.Uint64()),
		From:  AddressFromUint64(rng.Uint64()),
		To:    AddressFromUint64(rng.Uint64()),
		Nonce: rng.Uint64(),
		Value: rng.Uint64(),
		Gas:   rng.Uint64(),
	}
	if rng.Intn(2) == 0 {
		tx.Payload = make([]byte, rng.Intn(40))
		rng.Read(tx.Payload)
	}
	if rng.Intn(2) == 0 {
		tx.Sig = make([]byte, 96)
		rng.Read(tx.Sig)
	}
	return tx
}

func txEqual(a, b *Transaction) bool {
	return a.ID == b.ID && a.From == b.From && a.To == b.To &&
		a.Nonce == b.Nonce && a.Value == b.Value && a.Gas == b.Gas &&
		string(a.Payload) == string(b.Payload) && string(a.Sig) == string(b.Sig)
}

func TestTxCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		tx := randomTx(rng)
		back, err := DecodeTx(EncodeTx(tx))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !txEqual(tx, back) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
		// Hash stability across the codec (the signing preimage must be
		// byte-identical).
		if tx.Hash() != back.Hash() {
			t.Fatalf("trial %d: hash changed across codec", trial)
		}
	}
}

func TestBlockCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		b := &Block{
			Header: BlockHeader{
				TipsRoot:   HashBytes([]byte{byte(trial), 1}),
				TxRoot:     HashBytes([]byte{byte(trial), 2}),
				StateRoot:  HashBytes([]byte{byte(trial), 3}),
				Time:       rng.Uint64(),
				Miner:      AddressFromUint64(rng.Uint64()),
				Nonce:      rng.Uint64(),
				ChainID:    rng.Uint32() % 64,
				Height:     rng.Uint64(),
				ParentHash: HashBytes([]byte{byte(trial), 4}),
				Rank:       rng.Uint64(),
				NextRank:   rng.Uint64(),
			},
		}
		for i := 0; i < rng.Intn(4); i++ {
			b.Tips = append(b.Tips, HashBytes([]byte{byte(trial), byte(i), 5}))
		}
		for i := 0; i < rng.Intn(5); i++ {
			b.Txs = append(b.Txs, randomTx(rng))
		}
		back, err := DecodeBlock(EncodeBlock(b))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Header != b.Header {
			t.Fatalf("trial %d: header mismatch", trial)
		}
		if back.Hash() != b.Hash() {
			t.Fatalf("trial %d: block hash changed", trial)
		}
		if len(back.Tips) != len(b.Tips) || len(back.Txs) != len(b.Txs) {
			t.Fatalf("trial %d: payload sizes differ", trial)
		}
		for i := range b.Tips {
			if back.Tips[i] != b.Tips[i] {
				t.Fatalf("trial %d: tip %d differs", trial, i)
			}
		}
		for i := range b.Txs {
			if !txEqual(back.Txs[i], b.Txs[i]) {
				t.Fatalf("trial %d: tx %d differs", trial, i)
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0x01},
		{0xc0},                   // empty list
		EncodeTx(&Transaction{}), // tx encoding is not a block
	}
	for i, raw := range inputs {
		if _, err := DecodeBlock(raw); err == nil {
			t.Errorf("input %d decoded as block", i)
		}
	}
	if _, err := DecodeTx([]byte{0xc0}); err == nil {
		t.Error("empty list decoded as tx")
	}
	// Truncated valid encoding.
	full := EncodeBlock(&Block{Header: BlockHeader{}})
	if _, err := DecodeBlock(full[:len(full)-2]); err == nil {
		t.Error("truncated block decoded")
	}
}

// TestTxCodecQuick drives the codec through testing/quick.
func TestTxCodecQuick(t *testing.T) {
	f := func(id, nonce, value, gas uint64, payload []byte) bool {
		tx := &Transaction{ID: TxID(id), Nonce: nonce, Value: value, Gas: gas, Payload: payload}
		back, err := DecodeTx(EncodeTx(tx))
		return err == nil && txEqual(tx, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
