package types

import (
	"errors"
	"testing"
)

func makeTxs(n int) []*Transaction {
	txs := make([]*Transaction, n)
	for i := range txs {
		txs[i] = &Transaction{Nonce: uint64(i + 1)}
	}
	return txs
}

func TestTxProofAllPositionsAllSizes(t *testing.T) {
	// Cover even, odd, and power-of-two tree sizes, every position.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		txs := makeTxs(n)
		root := ComputeTxRoot(txs)
		for i := 0; i < n; i++ {
			proof, err := ProveTx(txs, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if err := VerifyTxProof(root, txs[i].Hash(), proof); err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
		}
	}
}

func TestTxProofRejectsForgery(t *testing.T) {
	txs := makeTxs(7)
	root := ComputeTxRoot(txs)
	proof, err := ProveTx(txs, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong transaction at the proven position.
	other := &Transaction{Nonce: 999}
	if err := VerifyTxProof(root, other.Hash(), proof); !errors.Is(err, ErrInvalidTxProof) {
		t.Fatalf("forged tx accepted: %v", err)
	}
	// Tampered sibling.
	bad := &TxProof{Index: proof.Index, Siblings: append([]Hash(nil), proof.Siblings...)}
	bad.Siblings[0][0] ^= 1
	if err := VerifyTxProof(root, txs[3].Hash(), bad); !errors.Is(err, ErrInvalidTxProof) {
		t.Fatalf("tampered sibling accepted: %v", err)
	}
	// Wrong index.
	bad = &TxProof{Index: proof.Index + 1, Siblings: proof.Siblings}
	if err := VerifyTxProof(root, txs[3].Hash(), bad); !errors.Is(err, ErrInvalidTxProof) {
		t.Fatalf("shifted index accepted: %v", err)
	}
	// Index outside the tree.
	bad = &TxProof{Index: 64, Siblings: proof.Siblings}
	if err := VerifyTxProof(root, txs[3].Hash(), bad); !errors.Is(err, ErrInvalidTxProof) {
		t.Fatalf("oversized index accepted: %v", err)
	}
	// Wrong root.
	otherRoot := ComputeTxRoot(makeTxs(6))
	if err := VerifyTxProof(otherRoot, txs[3].Hash(), proof); !errors.Is(err, ErrInvalidTxProof) {
		t.Fatalf("wrong root accepted: %v", err)
	}
	// Nil proof.
	if err := VerifyTxProof(root, txs[3].Hash(), nil); !errors.Is(err, ErrInvalidTxProof) {
		t.Fatalf("nil proof accepted: %v", err)
	}
}

func TestProveTxBounds(t *testing.T) {
	txs := makeTxs(3)
	if _, err := ProveTx(txs, -1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := ProveTx(txs, 3); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestTxProofMatchesBlockRoot ties the proof to the block structure: a
// proof verified against a mined block's header TxRoot.
func TestTxProofMatchesBlockRoot(t *testing.T) {
	txs := makeTxs(5)
	b := &Block{Header: BlockHeader{TxRoot: ComputeTxRoot(txs)}, Txs: txs}
	proof, err := ProveTx(b.Txs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTxProof(b.Header.TxRoot, b.Txs[2].Hash(), proof); err != nil {
		t.Fatal(err)
	}
}
