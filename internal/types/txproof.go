package types

import (
	"errors"
	"fmt"
)

// Transaction inclusion proofs over a block's TxRoot — the light-client
// primitive every Merkle-root block design implies. A proof carries the
// sibling hashes along the path from a transaction's leaf to the root of
// the duplicate-last binary tree built by ComputeTxRoot.

// ErrInvalidTxProof is returned when an inclusion proof fails verification.
var ErrInvalidTxProof = errors.New("types: invalid transaction inclusion proof")

// TxProof proves that a transaction is included in a block at a given
// position.
type TxProof struct {
	// Index is the transaction's position in the block.
	Index int
	// Siblings are the hashes adjacent to the path, leaf level first.
	Siblings []Hash
}

// ProveTx builds the inclusion proof for the transaction at index in txs.
func ProveTx(txs []*Transaction, index int) (*TxProof, error) {
	if index < 0 || index >= len(txs) {
		return nil, fmt.Errorf("types: tx index %d out of range [0,%d)", index, len(txs))
	}
	level := make([]Hash, len(txs))
	for i, tx := range txs {
		level[i] = tx.Hash()
	}
	proof := &TxProof{Index: index}
	pos := index
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		sibling := pos ^ 1 // the paired node
		proof.Siblings = append(proof.Siblings, level[sibling])
		next := make([]Hash, len(level)/2)
		for i := range next {
			next[i] = HashConcat(level[2*i][:], level[2*i+1][:])
		}
		level = next
		pos /= 2
	}
	return proof, nil
}

// VerifyTxProof checks that a transaction hash sits at proof.Index under
// the given TxRoot.
func VerifyTxProof(root Hash, txHash Hash, proof *TxProof) error {
	if proof == nil || proof.Index < 0 {
		return ErrInvalidTxProof
	}
	h := txHash
	pos := proof.Index
	for _, sibling := range proof.Siblings {
		if pos%2 == 0 {
			h = HashConcat(h[:], sibling[:])
		} else {
			h = HashConcat(sibling[:], h[:])
		}
		pos /= 2
	}
	if pos != 0 {
		return fmt.Errorf("%w: index exceeds tree size", ErrInvalidTxProof)
	}
	if h != root {
		return fmt.Errorf("%w: root mismatch", ErrInvalidTxProof)
	}
	return nil
}
