package types

import "time"

// PhaseBreakdown records how long each concurrency-control sub-phase took;
// it backs the paper's Fig. 10 (sub-phase latency comparison).
//
// The phases line up across schemes as the paper draws them:
//
//	           Nezha                      CG baseline
//	Graph:     ACG construction           pairwise conflict graph build
//	Cycle:     sorting-rank division      cycle detection + removal
//	Sort:      per-address tx sorting     topological sorting
type PhaseBreakdown struct {
	Graph time.Duration
	Cycle time.Duration
	Sort  time.Duration
}

// Total returns the sum of all sub-phases.
func (p PhaseBreakdown) Total() time.Duration { return p.Graph + p.Cycle + p.Sort }

// Add accumulates another breakdown into p.
func (p *PhaseBreakdown) Add(o PhaseBreakdown) {
	p.Graph += o.Graph
	p.Cycle += o.Cycle
	p.Sort += o.Sort
}

// Scheduler is a concurrency-control scheme: it turns the speculative
// execution results of one epoch into a commit schedule. Implementations
// must be deterministic — every node runs the scheduler independently on the
// same input and the chain is only consistent if they all derive the same
// schedule.
type Scheduler interface {
	// Name identifies the scheme in benchmark output ("nezha", "cg", ...).
	Name() string
	// Schedule derives the commit order. sims must be sorted by ascending
	// transaction id; results with Err set are skipped by callers before
	// invoking Schedule.
	Schedule(sims []*SimResult) (*Schedule, PhaseBreakdown, error)
}
