package types

import "time"

// PhaseBreakdown records how long each concurrency-control sub-phase took;
// it backs the paper's Fig. 10 (sub-phase latency comparison).
//
// The phases line up across schemes as the paper draws them:
//
//	           Nezha                      CG baseline
//	Graph:     ACG construction           pairwise conflict graph build
//	Cycle:     sorting-rank division      cycle detection + removal
//	Sort:      per-address tx sorting     topological sorting
type PhaseBreakdown struct {
	Graph time.Duration
	Cycle time.Duration
	Sort  time.Duration

	// Shards is the worker fan-out the graph-construction phase ran with
	// (1 = the sequential reference builder).
	Shards int
	// SortClusters is how many independent conflict clusters the sorting
	// phase fanned out across; 0 means the sequential path ran. Clusters
	// are the unit of sort-phase parallelism: addresses in different
	// clusters share no transaction state.
	SortClusters int
	// MaxClusterAddrs is the address count of the largest cluster — the
	// sequential grain that bounds sort-phase speedup (one giant cluster
	// means the sorting of a contended epoch cannot parallelize).
	MaxClusterAddrs int
	// Rescued counts transactions the reordering enhancement (§IV-D)
	// re-sequenced above their conflicts instead of aborting — each one
	// is an abort the enhanced design avoided (the Fig. 11 gap between
	// Nezha and Nezha-without-reordering).
	Rescued int
}

// Total returns the sum of all sub-phases.
func (p PhaseBreakdown) Total() time.Duration { return p.Graph + p.Cycle + p.Sort }

// Add accumulates another breakdown into p. Durations and cluster counts
// sum; Shards and MaxClusterAddrs keep their maximum (they are per-epoch
// shapes, not additive quantities).
func (p *PhaseBreakdown) Add(o PhaseBreakdown) {
	p.Graph += o.Graph
	p.Cycle += o.Cycle
	p.Sort += o.Sort
	if o.Shards > p.Shards {
		p.Shards = o.Shards
	}
	p.SortClusters += o.SortClusters
	if o.MaxClusterAddrs > p.MaxClusterAddrs {
		p.MaxClusterAddrs = o.MaxClusterAddrs
	}
	p.Rescued += o.Rescued
}

// Scheduler is a concurrency-control scheme: it turns the speculative
// execution results of one epoch into a commit schedule. Implementations
// must be deterministic — every node runs the scheduler independently on the
// same input and the chain is only consistent if they all derive the same
// schedule.
type Scheduler interface {
	// Name identifies the scheme in benchmark output ("nezha", "cg", ...).
	Name() string
	// Schedule derives the commit order. sims must be sorted by ascending
	// transaction id; results with Err set are skipped by callers before
	// invoking Schedule.
	Schedule(sims []*SimResult) (*Schedule, PhaseBreakdown, error)
}
