package types

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// AddressLen is the byte length of an account Address.
const AddressLen = 20

// Address is a 20-byte account address, mirroring the account model of
// Ethereum-style chains that the paper's prototype targets.
type Address [AddressLen]byte

// ZeroAddress is the all-zero address.
var ZeroAddress Address

// Bytes returns the address as a byte slice.
func (a Address) Bytes() []byte { return a[:] }

// Hex returns the lowercase hex encoding of the address.
func (a Address) Hex() string { return hex.EncodeToString(a[:]) }

// String implements fmt.Stringer.
func (a Address) String() string { return "0x" + a.Hex() }

// IsZero reports whether the address is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// AddressFromBytes builds an Address from b, which must be exactly
// AddressLen bytes long.
func AddressFromBytes(b []byte) (Address, error) {
	var a Address
	if len(b) != AddressLen {
		return a, fmt.Errorf("types: address must be %d bytes, got %d", AddressLen, len(b))
	}
	copy(a[:], b)
	return a, nil
}

// AddressFromUint64 derives a deterministic address from a numeric account
// id. Workload generators use it to map account indices onto addresses.
func AddressFromUint64(n uint64) Address {
	h := HashConcat([]byte("account"), binary.BigEndian.AppendUint64(nil, n))
	var a Address
	copy(a[:], h[:AddressLen])
	return a
}

// KeyLen is the byte length of a state Key.
const KeyLen = 32

// Key identifies one cell of blockchain state — the unit of conflict in the
// paper ("address" in the paper's terminology covers both account addresses
// and the storage slots behind them; concurrency control operates at this
// granularity). A Key is the hash of (contract address, storage slot).
type Key [KeyLen]byte

// StorageKey derives the state Key for a storage slot of a contract.
func StorageKey(contract Address, slot Hash) Key {
	h := HashConcat(contract[:], slot[:])
	return Key(h)
}

// BalanceKey derives the state Key holding the native balance of an account.
func BalanceKey(account Address) Key {
	h := HashConcat([]byte("balance"), account[:])
	return Key(h)
}

// KeyFromUint64 derives a deterministic Key from a numeric id, used by
// synthetic workloads and tests.
func KeyFromUint64(n uint64) Key {
	h := HashConcat([]byte("key"), binary.BigEndian.AppendUint64(nil, n))
	return Key(h)
}

// Bytes returns the key as a byte slice.
func (k Key) Bytes() []byte { return k[:] }

// Hex returns the lowercase hex encoding of the key.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// String implements fmt.Stringer.
func (k Key) String() string { return "0x" + k.Hex() }

// Compare orders keys lexicographically, returning -1, 0, or +1. The
// deterministic order of keys underpins the determinism of the whole
// concurrency-control pipeline (every node must derive an identical
// schedule).
func (k Key) Compare(o Key) int { return bytes.Compare(k[:], o[:]) }

// Less reports whether k sorts before o.
func (k Key) Less(o Key) bool { return k.Compare(o) < 0 }
