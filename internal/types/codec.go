package types

import (
	"errors"
	"fmt"

	"github.com/nezha-dag/nezha/internal/rlp"
)

// RLP wire/storage codec for transactions and blocks. The in-process
// simulation passes pointers, but durable block storage (node restarts) and
// any real wire format need canonical bytes; RLP keeps the encoding in the
// family the paper's Ethereum-derived stack uses.

// ErrDecode is returned for malformed encodings.
var ErrDecode = errors.New("types: malformed encoding")

// EncodeTx serializes a transaction (including ID and signature — this is
// the storage form, not the signing preimage).
func EncodeTx(tx *Transaction) []byte {
	return rlp.Encode(txItem(tx))
}

func txItem(tx *Transaction) rlp.Item {
	return rlp.List(
		rlp.Uint(uint64(tx.ID)),
		rlp.String(tx.From[:]),
		rlp.String(tx.To[:]),
		rlp.Uint(tx.Nonce),
		rlp.Uint(tx.Value),
		rlp.Uint(tx.Gas),
		rlp.String(tx.Payload),
		rlp.String(tx.Sig),
	)
}

// DecodeTx parses EncodeTx output.
func DecodeTx(b []byte) (*Transaction, error) {
	item, err := rlp.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return txFromItem(item)
}

func txFromItem(item rlp.Item) (*Transaction, error) {
	if item.K != rlp.KindList || len(item.List) != 8 {
		return nil, fmt.Errorf("%w: transaction shape", ErrDecode)
	}
	for i, f := range item.List {
		if f.K != rlp.KindString {
			return nil, fmt.Errorf("%w: transaction field %d is a list", ErrDecode, i)
		}
	}
	id, err := rlp.DecodeUint(item.List[0].Str)
	if err != nil {
		return nil, fmt.Errorf("%w: id: %v", ErrDecode, err)
	}
	from, err := AddressFromBytes(item.List[1].Str)
	if err != nil {
		return nil, fmt.Errorf("%w: from: %v", ErrDecode, err)
	}
	to, err := AddressFromBytes(item.List[2].Str)
	if err != nil {
		return nil, fmt.Errorf("%w: to: %v", ErrDecode, err)
	}
	nonce, err := rlp.DecodeUint(item.List[3].Str)
	if err != nil {
		return nil, fmt.Errorf("%w: nonce: %v", ErrDecode, err)
	}
	value, err := rlp.DecodeUint(item.List[4].Str)
	if err != nil {
		return nil, fmt.Errorf("%w: value: %v", ErrDecode, err)
	}
	gas, err := rlp.DecodeUint(item.List[5].Str)
	if err != nil {
		return nil, fmt.Errorf("%w: gas: %v", ErrDecode, err)
	}
	tx := &Transaction{
		ID: TxID(id), From: from, To: to,
		Nonce: nonce, Value: value, Gas: gas,
	}
	if len(item.List[6].Str) > 0 {
		tx.Payload = append([]byte(nil), item.List[6].Str...)
	}
	if len(item.List[7].Str) > 0 {
		tx.Sig = append([]byte(nil), item.List[7].Str...)
	}
	return tx, nil
}

// EncodeBlock serializes a block with its tips and transactions.
func EncodeBlock(b *Block) []byte {
	h := &b.Header
	tips := make([]rlp.Item, len(b.Tips))
	for i, t := range b.Tips {
		tips[i] = rlp.String(t[:])
	}
	txs := make([]rlp.Item, len(b.Txs))
	for i, tx := range b.Txs {
		txs[i] = txItem(tx)
	}
	return rlp.Encode(rlp.List(
		rlp.String(h.TipsRoot[:]),
		rlp.String(h.TxRoot[:]),
		rlp.String(h.StateRoot[:]),
		rlp.Uint(h.Time),
		rlp.String(h.Miner[:]),
		rlp.Uint(h.Nonce),
		rlp.Uint(uint64(h.ChainID)),
		rlp.Uint(h.Height),
		rlp.String(h.ParentHash[:]),
		rlp.Uint(h.Rank),
		rlp.Uint(h.NextRank),
		rlp.List(tips...),
		rlp.List(txs...),
	))
}

// DecodeBlock parses EncodeBlock output.
func DecodeBlock(raw []byte) (*Block, error) {
	item, err := rlp.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if item.K != rlp.KindList || len(item.List) != 13 {
		return nil, fmt.Errorf("%w: block shape", ErrDecode)
	}
	b := &Block{}
	h := &b.Header

	hashField := func(i int, dst *Hash) error {
		f := item.List[i]
		if f.K != rlp.KindString || len(f.Str) != HashLen {
			return fmt.Errorf("%w: block field %d is not a hash", ErrDecode, i)
		}
		copy(dst[:], f.Str)
		return nil
	}
	uintField := func(i int) (uint64, error) {
		f := item.List[i]
		if f.K != rlp.KindString {
			return 0, fmt.Errorf("%w: block field %d is a list", ErrDecode, i)
		}
		return rlp.DecodeUint(f.Str)
	}

	if err := hashField(0, &h.TipsRoot); err != nil {
		return nil, err
	}
	if err := hashField(1, &h.TxRoot); err != nil {
		return nil, err
	}
	if err := hashField(2, &h.StateRoot); err != nil {
		return nil, err
	}
	var v uint64
	if v, err = uintField(3); err != nil {
		return nil, err
	}
	h.Time = v
	miner := item.List[4]
	if miner.K != rlp.KindString {
		return nil, fmt.Errorf("%w: miner", ErrDecode)
	}
	if h.Miner, err = AddressFromBytes(miner.Str); err != nil {
		return nil, fmt.Errorf("%w: miner: %v", ErrDecode, err)
	}
	if v, err = uintField(5); err != nil {
		return nil, err
	}
	h.Nonce = v
	if v, err = uintField(6); err != nil {
		return nil, err
	}
	if v > 1<<32-1 {
		return nil, fmt.Errorf("%w: chain id overflow", ErrDecode)
	}
	h.ChainID = uint32(v)
	if v, err = uintField(7); err != nil {
		return nil, err
	}
	h.Height = v
	if err := hashField(8, &h.ParentHash); err != nil {
		return nil, err
	}
	if v, err = uintField(9); err != nil {
		return nil, err
	}
	h.Rank = v
	if v, err = uintField(10); err != nil {
		return nil, err
	}
	h.NextRank = v

	tipsItem := item.List[11]
	if tipsItem.K != rlp.KindList {
		return nil, fmt.Errorf("%w: tips", ErrDecode)
	}
	b.Tips = make([]Hash, len(tipsItem.List))
	for i, t := range tipsItem.List {
		if t.K != rlp.KindString || len(t.Str) != HashLen {
			return nil, fmt.Errorf("%w: tip %d", ErrDecode, i)
		}
		copy(b.Tips[i][:], t.Str)
	}
	txsItem := item.List[12]
	if txsItem.K != rlp.KindList {
		return nil, fmt.Errorf("%w: txs", ErrDecode)
	}
	b.Txs = make([]*Transaction, len(txsItem.List))
	for i, ti := range txsItem.List {
		tx, err := txFromItem(ti)
		if err != nil {
			return nil, fmt.Errorf("%w: tx %d: %v", ErrDecode, i, err)
		}
		b.Txs[i] = tx
	}
	return b, nil
}
