package types

import (
	"fmt"
	"sort"
)

// Seq is a Lamport-style sequence number assigned by concurrency control
// (§IV-C). Transactions sharing a Seq have no conflicts between them and may
// commit concurrently; groups commit in increasing Seq. Seq 0 is the
// "unassigned" sentinel — assigned numbers start at 1.
type Seq uint64

// AbortReason explains why concurrency control aborted a transaction.
type AbortReason int

// Abort reasons. Enums start at 1 so the zero value is invalid, per the
// style guide.
const (
	// AbortUnserializable marks a transaction whose write carried a
	// sequence number below a read it must follow (Algorithm 2, lines
	// 20–24) or that sat on an unbreakable cycle in the CG baseline.
	AbortUnserializable AbortReason = iota + 1
	// AbortCycle marks a CG-baseline victim removed to break conflict
	// cycles (Johnson's algorithm + greedy victim selection).
	AbortCycle
	// AbortExecution marks a transaction whose speculative execution
	// itself failed (revert / out of gas); it never reached scheduling.
	AbortExecution
)

// String implements fmt.Stringer.
func (r AbortReason) String() string {
	switch r {
	case AbortUnserializable:
		return "unserializable"
	case AbortCycle:
		return "cycle"
	case AbortExecution:
		return "execution"
	default:
		return fmt.Sprintf("AbortReason(%d)", int(r))
	}
}

// Abort records one aborted transaction and the reason.
type Abort struct {
	ID     TxID
	Reason AbortReason
}

// Schedule is the output of the concurrency-control phase: a total commit
// order with a certain degree of concurrency (the paper's main deliverable).
type Schedule struct {
	// Seqs maps each committed transaction id to its sequence number.
	Seqs map[TxID]Seq
	// Aborted lists aborted transactions in ascending id order.
	Aborted []Abort
}

// NewSchedule returns an empty schedule ready to be filled.
func NewSchedule() *Schedule {
	return &Schedule{Seqs: make(map[TxID]Seq)}
}

// Commit records a committed transaction at the given sequence number.
func (s *Schedule) Commit(id TxID, seq Seq) { s.Seqs[id] = seq }

// Abort records an aborted transaction.
func (s *Schedule) Abort(id TxID, reason AbortReason) {
	delete(s.Seqs, id)
	s.Aborted = append(s.Aborted, Abort{ID: id, Reason: reason})
}

// IsCommitted reports whether the transaction survived scheduling.
func (s *Schedule) IsCommitted(id TxID) bool {
	_, ok := s.Seqs[id]
	return ok
}

// CommittedCount returns the number of committed transactions.
func (s *Schedule) CommittedCount() int { return len(s.Seqs) }

// AbortedCount returns the number of aborted transactions.
func (s *Schedule) AbortedCount() int { return len(s.Aborted) }

// AbortRate returns aborted/(aborted+committed), the paper's Fig. 11 metric.
func (s *Schedule) AbortRate() float64 {
	total := len(s.Seqs) + len(s.Aborted)
	if total == 0 {
		return 0
	}
	return float64(len(s.Aborted)) / float64(total)
}

// Groups returns the commit groups in increasing sequence order; each group
// holds the ids of transactions that commit concurrently, sorted by id. The
// result is deterministic.
func (s *Schedule) Groups() [][]TxID {
	bySeq := make(map[Seq][]TxID, len(s.Seqs))
	for id, seq := range s.Seqs {
		bySeq[seq] = append(bySeq[seq], id)
	}
	seqs := make([]Seq, 0, len(bySeq))
	for seq := range bySeq {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	groups := make([][]TxID, len(seqs))
	for i, seq := range seqs {
		ids := bySeq[seq]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		groups[i] = ids
	}
	return groups
}

// SerialOrder returns every committed transaction id in (Seq, TxID) order —
// the serial execution the concurrent commit is equivalent to.
func (s *Schedule) SerialOrder() []TxID {
	ids := make([]TxID, 0, len(s.Seqs))
	for id := range s.Seqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := s.Seqs[ids[i]], s.Seqs[ids[j]]
		if si != sj {
			return si < sj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// NormalizeAborts sorts the abort list by id; schedulers call it before
// returning so that schedules compare byte-for-byte across nodes.
func (s *Schedule) NormalizeAborts() {
	sort.Slice(s.Aborted, func(i, j int) bool { return s.Aborted[i].ID < s.Aborted[j].ID })
}

// Equal reports whether two schedules are identical (same commits with the
// same sequence numbers and the same abort set). Used by determinism tests
// and by multi-node agreement checks.
func (s *Schedule) Equal(o *Schedule) bool {
	if len(s.Seqs) != len(o.Seqs) || len(s.Aborted) != len(o.Aborted) {
		return false
	}
	for id, seq := range s.Seqs {
		if o.Seqs[id] != seq {
			return false
		}
	}
	for i, a := range s.Aborted {
		if o.Aborted[i] != a {
			return false
		}
	}
	return true
}
