package types

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestHashBytes(t *testing.T) {
	h1 := HashBytes([]byte("hello"))
	h2 := HashBytes([]byte("hello"))
	h3 := HashBytes([]byte("world"))
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	if h1 == h3 {
		t.Fatal("distinct inputs collided")
	}
	if h1.IsZero() {
		t.Fatal("digest of non-empty input is zero")
	}
}

func TestHashConcatMatchesSingleBuffer(t *testing.T) {
	a, b, c := []byte("aa"), []byte("bb"), []byte("cc")
	want := HashBytes(bytes.Join([][]byte{a, b, c}, nil))
	got := HashConcat(a, b, c)
	if got != want {
		t.Fatalf("HashConcat = %s, want %s", got, want)
	}
}

func TestHashHexRoundTrip(t *testing.T) {
	h := HashBytes([]byte("round trip"))
	parsed, err := HashFromHex(h.String())
	if err != nil {
		t.Fatalf("HashFromHex: %v", err)
	}
	if parsed != h {
		t.Fatalf("round trip mismatch: %s != %s", parsed, h)
	}
	if _, err := HashFromHex("0x1234"); err == nil {
		t.Fatal("short hex accepted")
	}
	if _, err := HashFromHex("zz"); err == nil {
		t.Fatal("invalid hex accepted")
	}
}

func TestAddressFromBytes(t *testing.T) {
	b := make([]byte, AddressLen)
	b[0] = 0xab
	a, err := AddressFromBytes(b)
	if err != nil {
		t.Fatalf("AddressFromBytes: %v", err)
	}
	if a[0] != 0xab {
		t.Fatal("bytes not copied")
	}
	if _, err := AddressFromBytes(b[:10]); err == nil {
		t.Fatal("short slice accepted")
	}
}

func TestAddressFromUint64Deterministic(t *testing.T) {
	if AddressFromUint64(7) != AddressFromUint64(7) {
		t.Fatal("not deterministic")
	}
	if AddressFromUint64(7) == AddressFromUint64(8) {
		t.Fatal("distinct ids collided")
	}
}

func TestKeyDerivationsDisjoint(t *testing.T) {
	acct := AddressFromUint64(1)
	k1 := BalanceKey(acct)
	k2 := StorageKey(acct, HashBytes([]byte("slot0")))
	k3 := KeyFromUint64(1)
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatal("key namespaces collided")
	}
}

func TestKeyCompare(t *testing.T) {
	var a, b Key
	b[31] = 1
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less ordering wrong")
	}
}

func TestTransactionHashMemoizedAndStable(t *testing.T) {
	tx := &Transaction{From: AddressFromUint64(1), To: AddressFromUint64(2), Nonce: 3, Value: 4, Gas: 5, Payload: []byte{1, 2}}
	h1 := tx.Hash()
	h2 := tx.Hash()
	if h1 != h2 {
		t.Fatal("memoized hash changed")
	}
	// ID and Sig must not affect the hash.
	other := &Transaction{From: tx.From, To: tx.To, Nonce: 3, Value: 4, Gas: 5, Payload: []byte{1, 2}, ID: 99, Sig: []byte{9}}
	if other.Hash() != h1 {
		t.Fatal("ID/Sig leaked into hash")
	}
	changed := &Transaction{From: tx.From, To: tx.To, Nonce: 3, Value: 5, Gas: 5, Payload: []byte{1, 2}}
	if changed.Hash() == h1 {
		t.Fatal("value change did not change hash")
	}
}

func TestSimResultAccessors(t *testing.T) {
	k1, k2 := KeyFromUint64(1), KeyFromUint64(2)
	r := &SimResult{
		Reads:  []ReadEntry{{Key: k1, Value: []byte{1}}},
		Writes: []WriteEntry{{Key: k2, Value: []byte{2}}},
	}
	if !r.ReadsKey(k1) || r.ReadsKey(k2) {
		t.Fatal("ReadsKey wrong")
	}
	if !r.WritesKey(k2) || r.WritesKey(k1) {
		t.Fatal("WritesKey wrong")
	}
	if got := r.ReadKeys(); len(got) != 1 || got[0] != k1 {
		t.Fatal("ReadKeys wrong")
	}
	if got := r.WriteKeys(); len(got) != 1 || got[0] != k2 {
		t.Fatal("WriteKeys wrong")
	}
}

func TestComputeTxRoot(t *testing.T) {
	if ComputeTxRoot(nil) != ZeroHash {
		t.Fatal("empty root should be zero")
	}
	tx1 := &Transaction{Nonce: 1}
	tx2 := &Transaction{Nonce: 2}
	tx3 := &Transaction{Nonce: 3}
	r12 := ComputeTxRoot([]*Transaction{tx1, tx2})
	r21 := ComputeTxRoot([]*Transaction{tx2, tx1})
	if r12 == r21 {
		t.Fatal("root must be order-sensitive")
	}
	if ComputeTxRoot([]*Transaction{tx1}) == ComputeTxRoot([]*Transaction{tx2}) {
		t.Fatal("distinct single-tx roots collided")
	}
	// Odd count exercises the duplicate-last rule.
	r123 := ComputeTxRoot([]*Transaction{tx1, tx2, tx3})
	if r123 == r12 || r123.IsZero() {
		t.Fatal("odd-count root wrong")
	}
}

func TestBlockHeaderHashCoversPowFields(t *testing.T) {
	base := BlockHeader{Epoch: 5, Time: 6, Nonce: 7}
	powMutations := []func(*BlockHeader){
		func(h *BlockHeader) { h.TipsRoot[0] = 1 },
		func(h *BlockHeader) { h.TxRoot[0] = 1 },
		func(h *BlockHeader) { h.StateRoot[0] = 1 },
		func(h *BlockHeader) { h.Epoch++ },
		func(h *BlockHeader) { h.Time++ },
		func(h *BlockHeader) { h.Miner[0] = 1 },
		func(h *BlockHeader) { h.Nonce++ },
	}
	want := base.Hash()
	for i, mutate := range powMutations {
		hdr := base
		mutate(&hdr)
		if hdr.Hash() == want {
			t.Fatalf("PoW mutation %d did not change the hash", i)
		}
	}
	// Derived fields must NOT affect the hash: OHIE assigns them after
	// mining, from the hash itself.
	derivedMutations := []func(*BlockHeader){
		func(h *BlockHeader) { h.ChainID++ },
		func(h *BlockHeader) { h.Height++ },
		func(h *BlockHeader) { h.ParentHash[0] = 1 },
		func(h *BlockHeader) { h.Rank++ },
		func(h *BlockHeader) { h.NextRank++ },
	}
	for i, mutate := range derivedMutations {
		hdr := base
		mutate(&hdr)
		if hdr.Hash() != want {
			t.Fatalf("derived mutation %d changed the hash", i)
		}
	}
}

func TestAssignedChainInRangeAndDeterministic(t *testing.T) {
	counts := make(map[uint32]int)
	for i := 0; i < 256; i++ {
		b := &Block{Header: BlockHeader{Nonce: uint64(i)}}
		c := b.AssignedChain(8)
		if c >= 8 {
			t.Fatalf("chain %d out of range", c)
		}
		if b.AssignedChain(8) != c {
			t.Fatal("assignment not deterministic")
		}
		counts[c]++
	}
	// All 8 chains should receive some blocks (overwhelmingly likely).
	if len(counts) != 8 {
		t.Fatalf("only %d chains hit across 256 hashes", len(counts))
	}
}

func TestTipsCommitment(t *testing.T) {
	a := TipsCommitment([]Hash{HashBytes([]byte("a")), HashBytes([]byte("b"))})
	b := TipsCommitment([]Hash{HashBytes([]byte("b")), HashBytes([]byte("a"))})
	if a == b {
		t.Fatal("commitment must be order-sensitive")
	}
}

func TestNewEpochAssignsIDsAndDropsDuplicates(t *testing.T) {
	shared := &Transaction{Nonce: 42}
	b1 := &Block{Header: BlockHeader{ChainID: 0}, Txs: []*Transaction{{Nonce: 1}, shared}}
	b2 := &Block{Header: BlockHeader{ChainID: 1}, Txs: []*Transaction{{Nonce: 42}, {Nonce: 2}}}
	e := NewEpoch(3, []*Block{b1, b2})
	if e.BlockConcurrency() != 2 {
		t.Fatalf("concurrency = %d, want 2", e.BlockConcurrency())
	}
	if len(e.Txs) != 3 {
		t.Fatalf("duplicate not dropped: %d txs", len(e.Txs))
	}
	for i, tx := range e.Txs {
		if tx.ID != TxID(i) {
			t.Fatalf("tx %d has id %d", i, tx.ID)
		}
	}
}

func TestScheduleGroupsAndSerialOrder(t *testing.T) {
	s := NewSchedule()
	s.Commit(5, 2)
	s.Commit(1, 1)
	s.Commit(3, 2)
	s.Abort(4, AbortUnserializable)
	s.Abort(2, AbortCycle)
	s.NormalizeAborts()

	groups := s.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if len(groups[0]) != 1 || groups[0][0] != 1 {
		t.Fatalf("group 0 = %v", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != 3 || groups[1][1] != 5 {
		t.Fatalf("group 1 = %v", groups[1])
	}
	order := s.SerialOrder()
	want := []TxID{1, 3, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("serial order = %v, want %v", order, want)
		}
	}
	if s.Aborted[0].ID != 2 || s.Aborted[1].ID != 4 {
		t.Fatalf("aborts not normalized: %v", s.Aborted)
	}
	if got := s.AbortRate(); got != 2.0/5.0 {
		t.Fatalf("abort rate = %v", got)
	}
	if s.IsCommitted(4) || !s.IsCommitted(5) {
		t.Fatal("IsCommitted wrong")
	}
}

func TestScheduleEqual(t *testing.T) {
	a := NewSchedule()
	a.Commit(1, 1)
	a.Abort(2, AbortCycle)
	b := NewSchedule()
	b.Commit(1, 1)
	b.Abort(2, AbortCycle)
	if !a.Equal(b) {
		t.Fatal("identical schedules not equal")
	}
	b.Commit(3, 9)
	if a.Equal(b) {
		t.Fatal("different schedules equal")
	}
	c := NewSchedule()
	c.Commit(1, 2)
	c.Abort(2, AbortCycle)
	if a.Equal(c) {
		t.Fatal("different seq considered equal")
	}
	d := NewSchedule()
	d.Commit(1, 1)
	d.Abort(2, AbortUnserializable)
	if a.Equal(d) {
		t.Fatal("different abort reason considered equal")
	}
}

func TestAbortReasonString(t *testing.T) {
	cases := map[AbortReason]string{
		AbortUnserializable: "unserializable",
		AbortCycle:          "cycle",
		AbortExecution:      "execution",
		AbortReason(99):     "AbortReason(99)",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}

// Property: Groups() and SerialOrder() agree — flattening the groups yields
// the serial order — for arbitrary (id, seq) assignments.
func TestScheduleGroupsFlattenToSerialOrder(t *testing.T) {
	f := func(pairs map[uint16]uint8) bool {
		s := NewSchedule()
		for id, seq := range pairs {
			s.Commit(TxID(id), Seq(seq)+1)
		}
		var flat []TxID
		for _, g := range s.Groups() {
			flat = append(flat, g...)
		}
		order := s.SerialOrder()
		if len(flat) != len(order) {
			return false
		}
		for i := range flat {
			if flat[i] != order[i] {
				return false
			}
		}
		return sort.SliceIsSorted(order, func(i, j int) bool {
			si, sj := s.Seqs[order[i]], s.Seqs[order[j]]
			if si != sj {
				return si < sj
			}
			return order[i] < order[j]
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
