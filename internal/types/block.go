package types

import (
	"encoding/binary"
	"fmt"
)

// BlockHeader carries the metadata of a block in the OHIE-style
// parallel-chain DAG [Yu et al., S&P'20], the substrate the paper evaluates
// on (§V).
//
// OHIE's defining trick is that a miner does not choose which chain its
// block extends: the proof-of-work preimage commits (via TipsRoot) to the
// tips of ALL k chains, and once a nonce is found, the block lands on chain
// `hash mod k`, extending the committed tip of that chain. The fields below
// therefore split into two groups:
//
//   - PoW fields, covered by the block hash: TipsRoot, TxRoot, StateRoot,
//     Epoch, Time, Miner, Nonce.
//   - Derived fields, recomputed and verified by every validator from the
//     hash and the committed tips: ChainID, Height, ParentHash, Rank,
//     NextRank. They ride along as a convenience cache and are NOT hashed.
//
// Rank and NextRank implement OHIE's total ordering: a block's Rank equals
// its parent's NextRank, and NextRank = max(Rank+1, highest NextRank among
// the committed tips). Confirmed blocks across all chains are ordered by
// (Rank, ChainID).
//
// StateRoot is the state root after the previous epoch (deferred execution,
// Fig. 2(b)): consensus nodes do not execute transactions before proposing,
// so the root they commit to is the one already agreed upon.
type BlockHeader struct {
	// PoW fields.
	TipsRoot  Hash    // commitment to the k chain tips observed by the miner
	TxRoot    Hash    // Merkle root over the transaction hashes
	StateRoot Hash    // state root of the previous epoch (validation phase)
	Epoch     uint64  // epoch the block belongs to
	Time      uint64  // miner-reported unix milliseconds
	Miner     Address // block proposer
	Nonce     uint64  // PoW nonce

	// Derived fields (not hashed; verified against the PoW hash and tips).
	ChainID    uint32 // hash-assigned parallel chain
	Height     uint64 // position within its own chain
	ParentHash Hash   // the committed tip of chain ChainID
	Rank       uint64 // OHIE rank (position in the total order)
	NextRank   uint64 // OHIE next-rank hint for children
}

// PowContent returns the canonical preimage of the block hash: the PoW
// fields only.
func (h *BlockHeader) PowContent() []byte {
	buf := make([]byte, 0, 3*HashLen+3*8+AddressLen+8)
	buf = append(buf, h.TipsRoot[:]...)
	buf = append(buf, h.TxRoot[:]...)
	buf = append(buf, h.StateRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, h.Time)
	buf = append(buf, h.Miner[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.Nonce)
	return buf
}

// Hash returns the block hash: SHA-256 over the PoW content.
func (h *BlockHeader) Hash() Hash { return HashBytes(h.PowContent()) }

// TipsCommitment hashes an ordered tip list into the TipsRoot commitment.
func TipsCommitment(tips []Hash) Hash {
	buf := make([]byte, 0, len(tips)*HashLen)
	for _, t := range tips {
		buf = append(buf, t[:]...)
	}
	return HashBytes(buf)
}

// Block is a header, the tip list behind its TipsRoot, and the transaction
// payload.
type Block struct {
	Header BlockHeader
	// Tips lists the tip of every chain (index = chain id) the miner
	// observed; Header.TipsRoot must equal TipsCommitment(Tips).
	Tips []Hash
	Txs  []*Transaction

	hash *Hash // memoized header hash
}

// Hash returns the memoized block hash.
func (b *Block) Hash() Hash {
	if b.hash != nil {
		return *b.hash
	}
	h := b.Header.Hash()
	b.hash = &h
	return h
}

// InvalidateHash drops the memoized hash; miners call it while searching
// for a nonce.
func (b *Block) InvalidateHash() { b.hash = nil }

// AssignedChain returns the chain the block's hash assigns it to, given k
// parallel chains (OHIE: the trailing bits / modulus of the hash).
func (b *Block) AssignedChain(k int) uint32 {
	h := b.Hash()
	return uint32(binary.BigEndian.Uint64(h[HashLen-8:]) % uint64(k))
}

// ComputeTxRoot returns the Merkle root over the block's transaction
// hashes. An empty block has the zero root. Odd levels duplicate the last
// node, the conventional Bitcoin-style construction.
func ComputeTxRoot(txs []*Transaction) Hash {
	if len(txs) == 0 {
		return ZeroHash
	}
	level := make([]Hash, len(txs))
	for i, tx := range txs {
		level[i] = tx.Hash()
	}
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := make([]Hash, len(level)/2)
		for i := range next {
			next[i] = HashConcat(level[2*i][:], level[2*i+1][:])
		}
		level = next
	}
	return level[0]
}

// String implements fmt.Stringer.
func (b *Block) String() string {
	return fmt.Sprintf("block chain=%d height=%d rank=%d txs=%d hash=%s",
		b.Header.ChainID, b.Header.Height, b.Header.Rank, len(b.Txs), b.Hash().Short())
}

// Epoch is the unit of state transition in the paper's workflow (§III-B):
// the set of concurrent blocks B_e confirmed for epoch e, in the DAG's
// deterministic total order. Transactions across the epoch's blocks are
// flattened and numbered with consecutive TxIDs in that order; duplicate
// transactions (same content hash appearing in several concurrent blocks)
// keep only their first occurrence.
type Epoch struct {
	Number uint64
	Blocks []*Block // in (Rank, ChainID) order
	Txs    []*Transaction
}

// NewEpoch flattens the given ordered block set into an epoch, assigning
// TxIDs and dropping duplicate transactions ("picks transactions that first
// appear in all verified blocks", §III-B).
func NewEpoch(number uint64, blocks []*Block) *Epoch {
	e := &Epoch{Number: number, Blocks: blocks}
	seen := make(map[Hash]struct{})
	var id TxID
	for _, b := range blocks {
		for _, tx := range b.Txs {
			h := tx.Hash()
			if _, dup := seen[h]; dup {
				continue
			}
			seen[h] = struct{}{}
			tx.ID = id
			id++
			e.Txs = append(e.Txs, tx)
		}
	}
	return e
}

// BlockConcurrency returns ω_e, the number of concurrent blocks in the
// epoch.
func (e *Epoch) BlockConcurrency() int { return len(e.Blocks) }
