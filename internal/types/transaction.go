package types

import (
	"encoding/binary"
	"fmt"
)

// TxID identifies a transaction within one epoch. IDs are assigned after the
// epoch's block set is fixed: blocks are visited in the DAG's deterministic
// total order and transactions are numbered consecutively, so every node
// assigns identical IDs. The paper's ordering rules ("determined according
// to their subscripts", §IV-C) break ties by this id.
type TxID uint64

// Transaction is a signed state-transition request. Payload is the calldata
// handed to the execution engine (for contract calls: a 4-byte selector
// followed by arguments); for plain value transfers Payload is empty and
// Value is moved from From to To.
type Transaction struct {
	// ID is the epoch-local identifier. It is not part of the signed,
	// hashed content: it is assigned when the transaction's block obtains
	// its position in the epoch order.
	ID TxID

	From    Address
	To      Address
	Nonce   uint64
	Value   uint64
	Gas     uint64
	Payload []byte

	// Sig is the transaction signature. The reproduction signs with a
	// deterministic HMAC-style construction (see internal/crypto within
	// the node pipeline); consensus-layer tests verify it, while the
	// concurrency-control benchmarks skip signing to isolate the phases
	// the paper measures.
	Sig []byte

	hash *Hash // memoized content hash
}

// SigningContent returns the canonical byte encoding of the transaction
// fields covered by the hash and signature.
func (t *Transaction) SigningContent() []byte {
	buf := make([]byte, 0, 2*AddressLen+3*8+len(t.Payload))
	buf = append(buf, t.From[:]...)
	buf = append(buf, t.To[:]...)
	buf = binary.BigEndian.AppendUint64(buf, t.Nonce)
	buf = binary.BigEndian.AppendUint64(buf, t.Value)
	buf = binary.BigEndian.AppendUint64(buf, t.Gas)
	buf = append(buf, t.Payload...)
	return buf
}

// Hash returns the content hash of the transaction, memoizing the result.
// The hash covers everything except ID and Sig.
func (t *Transaction) Hash() Hash {
	if t.hash != nil {
		return *t.hash
	}
	h := HashBytes(t.SigningContent())
	t.hash = &h
	return h
}

// String implements fmt.Stringer.
func (t *Transaction) String() string {
	return fmt.Sprintf("tx#%d %s->%s nonce=%d value=%d", t.ID, t.From.Hex()[:8], t.To.Hex()[:8], t.Nonce, t.Value)
}

// ReadEntry records one read performed during speculative execution: the
// state key and the value observed in the epoch snapshot.
type ReadEntry struct {
	Key   Key
	Value []byte
}

// WriteEntry records one write performed during speculative execution: the
// state key and the value the transaction intends to install.
type WriteEntry struct {
	Key   Key
	Value []byte
}

// SimResult is the outcome of speculatively executing one transaction
// against the epoch's state snapshot (the "concurrent execution phase" of
// §III-B). Reads and Writes are deduplicated per key and sorted by key so
// that downstream graph construction is deterministic.
type SimResult struct {
	Tx      *Transaction
	Reads   []ReadEntry
	Writes  []WriteEntry
	GasUsed uint64
	// Err is non-nil when the simulation itself failed (out of gas,
	// explicit revert). Failed simulations never enter concurrency
	// control; the node records them as execution aborts.
	Err error
}

// ReadKeys returns the read set RS(T) as keys only.
func (r *SimResult) ReadKeys() []Key {
	keys := make([]Key, len(r.Reads))
	for i, e := range r.Reads {
		keys[i] = e.Key
	}
	return keys
}

// WriteKeys returns the write set WS(T) as keys only.
func (r *SimResult) WriteKeys() []Key {
	keys := make([]Key, len(r.Writes))
	for i, e := range r.Writes {
		keys[i] = e.Key
	}
	return keys
}

// ReadsKey reports whether the transaction read the given key.
func (r *SimResult) ReadsKey(k Key) bool {
	for _, e := range r.Reads {
		if e.Key == k {
			return true
		}
	}
	return false
}

// WritesKey reports whether the transaction wrote the given key.
func (r *SimResult) WritesKey(k Key) bool {
	for _, e := range r.Writes {
		if e.Key == k {
			return true
		}
	}
	return false
}
