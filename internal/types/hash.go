// Package types defines the fundamental data model shared by every
// subsystem of the Nezha reproduction: hashes, account addresses, state
// keys, transactions, blocks, epochs, read/write sets produced by
// speculative execution, and the commit schedules produced by concurrency
// control.
//
// The model is account-based (not UTXO), as required by the paper's system
// model (§III-A): conflicts arise from concurrent reads and writes to the
// same state key.
package types

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashLen is the byte length of a Hash.
const HashLen = 32

// Hash is a 32-byte SHA-256 digest. The paper's prototype hashes with
// Keccak-256 (via the EVM); this reproduction substitutes SHA-256 from the
// standard library, which preserves every property the system relies on
// (collision resistance, fixed width).
type Hash [HashLen]byte

// ZeroHash is the all-zero hash, used as the parent of genesis blocks and
// as the "empty" marker throughout.
var ZeroHash Hash

// HashBytes returns the SHA-256 digest of data.
func HashBytes(data []byte) Hash {
	return sha256.Sum256(data)
}

// HashConcat returns the SHA-256 digest of the concatenation of the given
// byte slices, without allocating an intermediate buffer.
func HashConcat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Bytes returns the hash as a byte slice.
func (h Hash) Bytes() []byte { return h[:] }

// IsZero reports whether the hash is the zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Hex returns the lowercase hex encoding of the hash.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// Short returns the first four bytes of the hash in hex, for logs.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// String implements fmt.Stringer.
func (h Hash) String() string { return "0x" + h.Hex() }

// HashFromHex parses a hex string (with or without a 0x prefix) into a Hash.
func HashFromHex(s string) (Hash, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("types: decode hash hex: %w", err)
	}
	if len(b) != HashLen {
		return h, fmt.Errorf("types: hash must be %d bytes, got %d", HashLen, len(b))
	}
	copy(h[:], b)
	return h, nil
}
