package workload

import (
	"fmt"
	"math/rand"

	"github.com/nezha-dag/nezha/internal/contracts/token"
	"github.com/nezha-dag/nezha/internal/types"
)

// TokenConfig describes an ERC20-style transfer workload: Zipfian-selected
// senders and receivers moving a fungible token. Unlike SmallBank, an
// over-balance transfer REVERTS, so under high contention this workload
// exercises the execution-abort path alongside scheduling aborts.
type TokenConfig struct {
	Seed     int64
	Accounts uint64
	// Skew is the Zipfian coefficient in [0, 1].
	Skew float64
	// InitialBalance is minted to every account at genesis.
	InitialBalance uint64
	// MintRatio in [0,1] is the fraction of operations that mint instead
	// of transfer (mints contend on the global supply cell).
	MintRatio float64
	// PerSenderNonces numbers each sender's transactions with its own
	// dense counter instead of the sparse global one — what the mempool's
	// nonce-ordered queues expect. Default off (historical streams
	// byte-identical).
	PerSenderNonces bool
}

// DefaultTokenConfig mirrors the SmallBank defaults.
func DefaultTokenConfig() TokenConfig {
	return TokenConfig{Seed: 1, Accounts: 10_000, Skew: 0, InitialBalance: 10_000, MintRatio: 0.1}
}

// TokenGenerator produces token-contract transactions.
type TokenGenerator struct {
	cfg    TokenConfig
	zipf   *Zipfian
	rng    *rand.Rand
	nonce  uint64
	nonces map[uint64]uint64 // per-sender counters (PerSenderNonces)
}

// NewTokenGenerator builds a deterministic token workload generator.
func NewTokenGenerator(cfg TokenConfig) (*TokenGenerator, error) {
	if cfg.Accounts == 0 {
		return nil, fmt.Errorf("workload: zero accounts")
	}
	if cfg.MintRatio < 0 || cfg.MintRatio > 1 {
		return nil, fmt.Errorf("workload: mint ratio %v outside [0,1]", cfg.MintRatio)
	}
	zipf, err := NewZipfian(cfg.Seed, cfg.Accounts, cfg.Skew)
	if err != nil {
		return nil, err
	}
	return &TokenGenerator{
		cfg:    cfg,
		zipf:   zipf,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x70ce)),
		nonces: make(map[uint64]uint64),
	}, nil
}

// NextTx draws the next token transaction.
func (g *TokenGenerator) NextTx() *types.Transaction {
	var call token.Call
	if g.rng.Float64() < g.cfg.MintRatio {
		call = token.Call{Op: token.OpMint, Arg1: g.zipf.Next(), Amount: uint64(g.rng.Intn(50) + 1)}
	} else {
		from := g.zipf.Next()
		to := g.zipf.Next()
		for tries := 0; to == from && tries < 16; tries++ {
			to = g.zipf.Next()
		}
		if to == from {
			to = (from + 1) % g.cfg.Accounts
		}
		call = token.Call{Op: token.OpTransfer, Arg1: from, Arg2: to, Amount: uint64(g.rng.Intn(100) + 1)}
	}
	var nonce uint64
	if g.cfg.PerSenderNonces {
		g.nonces[call.Arg1]++
		nonce = g.nonces[call.Arg1]
	} else {
		g.nonce++
		nonce = g.nonce
	}
	return &types.Transaction{
		From:    types.AddressFromUint64(call.Arg1),
		To:      token.ContractAddress,
		Nonce:   nonce,
		Gas:     1_000_000,
		Payload: call.Encode(),
	}
}

// Txs draws n transactions.
func (g *TokenGenerator) Txs(n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = g.NextTx()
	}
	return out
}

// GenesisAll materializes the initial balances of the ENTIRE account
// population plus the matching total supply. Streaming ingestion needs
// this instead of Genesis: the transaction stream is unbounded, so there
// is no up-front tx set to derive the touched accounts from.
func (g *TokenGenerator) GenesisAll() []types.WriteEntry {
	out := make([]types.WriteEntry, 0, g.cfg.Accounts+1)
	for acct := uint64(0); acct < g.cfg.Accounts; acct++ {
		out = append(out, types.WriteEntry{
			Key: token.BalanceKey(acct), Value: EncodeBalance(g.cfg.InitialBalance),
		})
	}
	out = append(out, types.WriteEntry{
		Key:   token.SupplyKey(),
		Value: EncodeBalance(g.cfg.InitialBalance * g.cfg.Accounts),
	})
	return out
}

// Genesis returns the writes minting InitialBalance to every account the
// given transactions touch, plus the matching total supply.
func (g *TokenGenerator) Genesis(txs []*types.Transaction) ([]types.WriteEntry, error) {
	accounts := map[uint64]struct{}{}
	for _, tx := range txs {
		call, err := token.Decode(tx.Payload)
		if err != nil {
			return nil, err
		}
		accounts[call.Arg1] = struct{}{}
		if call.Op == token.OpTransfer || call.Op == token.OpTransferFrom {
			accounts[call.Arg2] = struct{}{}
		}
	}
	writes := make([]types.WriteEntry, 0, len(accounts)+1)
	for acct := range accounts {
		writes = append(writes, types.WriteEntry{
			Key: token.BalanceKey(acct), Value: EncodeBalance(g.cfg.InitialBalance),
		})
	}
	writes = append(writes, types.WriteEntry{
		Key:   token.SupplyKey(),
		Value: EncodeBalance(g.cfg.InitialBalance * uint64(len(accounts))),
	})
	return writes, nil
}
