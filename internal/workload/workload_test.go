package workload

import (
	"math"
	"sort"
	"testing"

	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/contracts/token"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
)

func TestZipfianValidation(t *testing.T) {
	if _, err := NewZipfian(1, 0, 0.5); err == nil {
		t.Fatal("zero items accepted")
	}
	if _, err := NewZipfian(1, 10, -0.1); err == nil {
		t.Fatal("negative skew accepted")
	}
	if _, err := NewZipfian(1, 10, 1.1); err == nil {
		t.Fatal("skew > 1 accepted")
	}
	if _, err := NewZipfian(1, 10, 1.0); err != nil {
		t.Fatalf("skew 1.0 rejected: %v", err)
	}
}

func TestZipfianUniformAtSkewZero(t *testing.T) {
	const n, draws = 100, 200_000
	z, err := NewZipfian(7, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Chi-squared sanity: each bucket expects draws/n = 2000; allow ±25%.
	for i, c := range counts {
		if math.Abs(float64(c)-draws/n) > 0.25*draws/n {
			t.Fatalf("bucket %d = %d, uniform expectation %d", i, c, draws/n)
		}
	}
}

func TestZipfianConcentratesWithSkew(t *testing.T) {
	const n, draws = 10_000, 100_000
	top10Share := func(skew float64) float64 {
		z, err := NewZipfian(3, n, skew)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[uint64]int)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		all := make([]int, 0, len(counts))
		for _, c := range counts {
			all = append(all, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(all)))
		top := 0
		for i := 0; i < 10 && i < len(all); i++ {
			top += all[i]
		}
		return float64(top) / draws
	}
	s0 := top10Share(0)
	s6 := top10Share(0.6)
	s10 := top10Share(1.0)
	if !(s0 < s6 && s6 < s10) {
		t.Fatalf("top-10 share not increasing with skew: %.3f, %.3f, %.3f", s0, s6, s10)
	}
	if s10 < 0.3 {
		t.Fatalf("skew 1.0 top-10 share only %.3f; distribution not Zipfian", s10)
	}
	if s0 > 0.01 {
		t.Fatalf("uniform top-10 share %.3f too concentrated", s0)
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a, _ := NewZipfian(42, 1000, 0.8)
	b, _ := NewZipfian(42, 1000, 0.8)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestEncodeDecodeCallRoundTrip(t *testing.T) {
	for op := smallbank.OpTransactSavings; op <= smallbank.OpGetBalance; op++ {
		in := Call{Op: op, Acct1: 12345, Acct2: 678, Amount: 42}
		out, err := DecodeCall(EncodeCall(in))
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if out != in {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
	}
	if _, err := DecodeCall([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := EncodeCall(Call{Op: smallbank.OpGetBalance, Acct1: 1})
	bad[0] = 99
	if _, err := DecodeCall(bad); err == nil {
		t.Fatal("bad selector accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(cfg)
	txs1, txs2 := g1.Txs(200), g2.Txs(200)
	for i := range txs1 {
		if txs1[i].Hash() != txs2[i].Hash() {
			t.Fatalf("tx %d differs across identically-seeded generators", i)
		}
	}
}

func TestGeneratorTwoAccountOpsDistinct(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Skew = 1.0 // max collision pressure
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		c := g.NextCall()
		if (c.Op == smallbank.OpSendPayment || c.Op == smallbank.OpAmalgamate) && c.Acct1 == c.Acct2 {
			t.Fatal("two-account op drew identical accounts")
		}
	}
}

func TestFootprintShapes(t *testing.T) {
	cases := []struct {
		op            smallbank.Op
		reads, writes int
	}{
		{smallbank.OpTransactSavings, 1, 1},
		{smallbank.OpDepositChecking, 1, 1},
		{smallbank.OpSendPayment, 2, 2},
		{smallbank.OpWriteCheck, 2, 1},
		{smallbank.OpAmalgamate, 3, 3},
		{smallbank.OpGetBalance, 2, 0},
	}
	for _, tc := range cases {
		r, w := smallbank.Footprint(tc.op, 1, 2)
		if len(r) != tc.reads || len(w) != tc.writes {
			t.Fatalf("%v: footprint %d/%d, want %d/%d", tc.op, len(r), len(w), tc.reads, tc.writes)
		}
	}
	// Same-account degenerate case deduplicates.
	r, w := smallbank.Footprint(smallbank.OpSendPayment, 5, 5)
	if len(r) != 1 || len(w) != 1 {
		t.Fatalf("self-payment footprint %d/%d, want 1/1", len(r), len(w))
	}
	if smallbank.OpGetBalance.IsWrite() || !smallbank.OpSendPayment.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
}

func TestSavingsCheckingKeysDisjoint(t *testing.T) {
	if smallbank.SavingsKey(1) == smallbank.CheckingKey(1) {
		t.Fatal("savings and checking keys collide")
	}
	if smallbank.SavingsKey(1) == smallbank.SavingsKey(2) {
		t.Fatal("different accounts collide")
	}
}

// TestSimulateSchedulesSerializable wires the generator into the Nezha
// scheduler end to end: a SmallBank epoch simulated against its snapshot
// must verify serializable at every skew.
func TestSimulateSchedulesSerializable(t *testing.T) {
	for _, skew := range []float64{0, 0.6, 1.0} {
		cfg := DefaultConfig()
		cfg.Skew = skew
		cfg.Accounts = 1000
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		txs := g.Txs(400)
		for i, tx := range txs {
			tx.ID = types.TxID(i)
		}
		snapshot, err := g.Snapshot(txs)
		if err != nil {
			t.Fatal(err)
		}
		sims, err := Simulate(txs, snapshot)
		if err != nil {
			t.Fatal(err)
		}
		sched, _, err := core.MustNewScheduler(core.DefaultConfig()).Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifySchedule(snapshot, sims, sched); err != nil {
			t.Fatalf("skew %.1f: %v", skew, err)
		}
		if sched.CommittedCount() == 0 {
			t.Fatalf("skew %.1f: nothing committed", skew)
		}
	}
}

func TestApplyCallArithmetic(t *testing.T) {
	s1, c1 := smallbank.SavingsKey(1), smallbank.CheckingKey(1)
	c2 := smallbank.CheckingKey(2)
	vals := map[types.Key]uint64{s1: 100, c1: 50, c2: 10}

	out := applyCall(Call{Op: smallbank.OpTransactSavings, Acct1: 1, Amount: 7}, vals)
	if out[s1] != 107 {
		t.Fatalf("transact_savings: %d", out[s1])
	}
	out = applyCall(Call{Op: smallbank.OpDepositChecking, Acct1: 1, Amount: 7}, vals)
	if out[c1] != 57 {
		t.Fatalf("deposit_checking: %d", out[c1])
	}
	out = applyCall(Call{Op: smallbank.OpSendPayment, Acct1: 1, Acct2: 2, Amount: 30}, vals)
	if out[c1] != 20 || out[c2] != 40 {
		t.Fatalf("send_payment: %d/%d", out[c1], out[c2])
	}
	// Overdraft saturates at zero.
	out = applyCall(Call{Op: smallbank.OpSendPayment, Acct1: 1, Acct2: 2, Amount: 500}, vals)
	if out[c1] != 0 || out[c2] != 510 {
		t.Fatalf("overdraft send_payment: %d/%d", out[c1], out[c2])
	}
	// WriteCheck with sufficient funds: plain deduction.
	out = applyCall(Call{Op: smallbank.OpWriteCheck, Acct1: 1, Amount: 30}, vals)
	if out[c1] != 20 {
		t.Fatalf("write_check: %d", out[c1])
	}
	// WriteCheck beyond savings+checking: penalty of 1.
	out = applyCall(Call{Op: smallbank.OpWriteCheck, Acct1: 1, Amount: 200}, vals)
	if out[c1] != 0 { // 50 - 201 saturates
		t.Fatalf("penalized write_check: %d", out[c1])
	}
	out = applyCall(Call{Op: smallbank.OpAmalgamate, Acct1: 1, Acct2: 2}, vals)
	if out[s1] != 0 || out[c1] != 0 || out[c2] != 160 {
		t.Fatalf("amalgamate: %d/%d/%d", out[s1], out[c1], out[c2])
	}
	out = applyCall(Call{Op: smallbank.OpGetBalance, Acct1: 1}, vals)
	if len(out) != 0 {
		t.Fatalf("get_balance wrote: %v", out)
	}
}

func TestBalanceCodec(t *testing.T) {
	if DecodeBalance(EncodeBalance(123456789)) != 123456789 {
		t.Fatal("round trip failed")
	}
	if DecodeBalance(nil) != 0 || DecodeBalance([]byte{1}) != 0 {
		t.Fatal("malformed balances must read 0")
	}
}

func TestReadOnlyRatioKnob(t *testing.T) {
	count := func(ratio float64) (reads, writes int) {
		cfg := DefaultConfig()
		cfg.ReadOnlyRatio = ratio
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if g.NextCall().Op == smallbank.OpGetBalance {
				reads++
			} else {
				writes++
			}
		}
		return reads, writes
	}
	if r, _ := count(0); r != 0 {
		t.Fatalf("ratio 0 produced %d reads", r)
	}
	if _, w := count(1); w != 0 {
		t.Fatalf("ratio 1 produced %d writes", w)
	}
	r, _ := count(0.5)
	if r < 800 || r > 1200 {
		t.Fatalf("ratio 0.5 produced %d/2000 reads", r)
	}
	// Default mix: each op ~1/6.
	rDef, _ := count(-1)
	if rDef < 200 || rDef > 470 {
		t.Fatalf("uniform mix produced %d/2000 read-only ops", rDef)
	}
	if _, err := NewTokenGenerator(TokenConfig{Accounts: 10, MintRatio: 2}); err == nil {
		t.Fatal("bad mint ratio accepted")
	}
	if _, err := NewTokenGenerator(TokenConfig{}); err == nil {
		t.Fatal("zero accounts accepted")
	}
}

func TestTokenGeneratorDeterministicAndDistinct(t *testing.T) {
	cfg := DefaultTokenConfig()
	cfg.Accounts = 100
	cfg.Skew = 1.0
	g1, err := NewTokenGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewTokenGenerator(cfg)
	t1, t2 := g1.Txs(200), g2.Txs(200)
	for i := range t1 {
		if t1[i].Hash() != t2[i].Hash() {
			t.Fatalf("tx %d differs", i)
		}
	}
	// Transfers never self-transfer.
	for _, tx := range t1 {
		call, err := token.Decode(tx.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if call.Op == token.OpTransfer && call.Arg1 == call.Arg2 {
			t.Fatal("self transfer generated")
		}
	}
	// Genesis covers every touched account and sets a consistent supply.
	genesis, err := g1.Genesis(t1)
	if err != nil {
		t.Fatal(err)
	}
	var supply uint64
	var total uint64
	for _, w := range genesis {
		if w.Key == token.SupplyKey() {
			supply = DecodeBalance(w.Value)
		} else {
			total += DecodeBalance(w.Value)
		}
	}
	if supply == 0 || supply != total {
		t.Fatalf("genesis supply %d != balance sum %d", supply, total)
	}
}
