// Package workload generates the SmallBank benchmark workloads of §VI-A:
// transactions over a configurable account population whose access pattern
// follows a Zipfian distribution with coefficient skew ∈ [0, 1] (skew = 0 is
// uniform; larger skew concentrates accesses on fewer hot accounts, raising
// contention). It produces both raw transactions for the full node pipeline
// and ready-made simulation results for pure concurrency-control benchmarks.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws account indices in [0, n) with the YCSB formulation of the
// Zipfian distribution [Gray et al., SIGMOD '94]: item ranks are permuted by
// a hash so the hot items are scattered across the id space, and theta (the
// paper's skew) controls concentration. theta = 0 degenerates to uniform.
//
// The closed form requires theta < 1; the paper's Fig. 11 evaluates skew up
// to 1.0, which we map to theta = 0.9999 (the standard YCSB practice for
// "skew 1").
type Zipfian struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	alpha, zetan, eta, zeta2 float64
}

// maxTheta caps theta just below 1, where the YCSB closed form diverges.
const maxTheta = 0.9999

// NewZipfian builds a generator over n items with the given skew, seeded
// deterministically (benchmarks must be reproducible).
func NewZipfian(seed int64, n uint64, skew float64) (*Zipfian, error) {
	if n == 0 {
		return nil, fmt.Errorf("workload: zipfian over zero items")
	}
	if skew < 0 || skew > 1 {
		return nil, fmt.Errorf("workload: skew %v outside [0, 1]", skew)
	}
	theta := skew
	if theta > maxTheta {
		theta = maxTheta
	}
	z := &Zipfian{rng: rand.New(rand.NewSource(seed)), n: n, theta: theta}
	if theta > 0 {
		z.zetan = zeta(n, theta)
		z.zeta2 = zeta(2, theta)
		z.alpha = 1 / (1 - theta)
		z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	}
	return z, nil
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next item index in [0, n).
func (z *Zipfian) Next() uint64 {
	if z.theta == 0 {
		return uint64(z.rng.Int63n(int64(z.n)))
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	// Scatter ranks across the id space so hot accounts are not the
	// numerically-smallest ids (YCSB's fnv hashing step). The scatter is
	// a fixed bijection-ish hash modulo n: collisions merely relabel
	// which accounts are hot, which is irrelevant to contention shape.
	return scatter(rank) % z.n
}

// scatter is the 64-bit finalizer of MurmurHash3, a cheap deterministic
// mixing function.
func scatter(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
