package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/crypto"
	"github.com/nezha-dag/nezha/internal/types"
)

// Config describes a SmallBank workload. The defaults mirror §VI-A: 10k
// accounts, six operation types drawn uniformly, Zipfian account selection.
type Config struct {
	Seed     int64
	Accounts uint64
	// Skew is the Zipfian coefficient in [0, 1]; 0 means uniform access.
	Skew float64
	// InitialBalance seeds every savings and checking cell.
	InitialBalance uint64
	// Sign makes the generator sign every transaction with the sender
	// account's deterministic key (internal/crypto). Off by default: the
	// pure-scheduling benchmarks exclude signature costs, as the paper's
	// concurrency-control measurements do.
	Sign bool
	// ReadOnlyRatio overrides the paper's uniform six-op mix when
	// non-negative: GetBalance is drawn with this probability and the
	// five write ops uniformly otherwise. The default (negative) keeps
	// the paper's uniform mix (each op 1/6).
	ReadOnlyRatio float64
	// PerSenderNonces numbers each sender's transactions with its own
	// dense counter (1, 2, 3, ...) instead of the legacy global counter,
	// which is sparse per sender. The mempool's nonce-ordered queues and
	// StrictNonce assembly need dense per-sender nonces; the default
	// (off) keeps historical transaction streams byte-identical.
	PerSenderNonces bool
}

// DefaultConfig returns the paper's workload parameters.
func DefaultConfig() Config {
	return Config{Seed: 1, Accounts: 10_000, Skew: 0, InitialBalance: 10_000, ReadOnlyRatio: -1}
}

// Generator produces SmallBank transactions and (optionally) their
// simulation results directly, bypassing the VM, for pure concurrency-
// control benchmarks where execution cost is out of scope.
type Generator struct {
	cfg    Config
	zipf   *Zipfian
	rng    *rand.Rand
	nonce  uint64
	nonces map[uint64]uint64 // per-sender counters (PerSenderNonces)
	keys   map[uint64]*crypto.Key
}

// NewGenerator builds a deterministic workload generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Accounts == 0 {
		return nil, fmt.Errorf("workload: zero accounts")
	}
	zipf, err := NewZipfian(cfg.Seed, cfg.Accounts, cfg.Skew)
	if err != nil {
		return nil, err
	}
	return &Generator{
		cfg:    cfg,
		zipf:   zipf,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		nonces: make(map[uint64]uint64),
		keys:   make(map[uint64]*crypto.Key),
	}, nil
}

// Call is one generated SmallBank invocation before encoding.
type Call struct {
	Op     smallbank.Op
	Acct1  uint64
	Acct2  uint64
	Amount uint64
}

// NextCall draws the next SmallBank invocation: a uniformly-chosen op over
// Zipfian-chosen accounts (distinct accounts for the two-account ops).
func (g *Generator) NextCall() Call {
	var op smallbank.Op
	if g.cfg.ReadOnlyRatio >= 0 {
		if g.rng.Float64() < g.cfg.ReadOnlyRatio {
			op = smallbank.OpGetBalance
		} else {
			op = smallbank.Op(g.rng.Intn(smallbank.NumOps-1) + 1)
		}
	} else {
		op = smallbank.Op(g.rng.Intn(smallbank.NumOps) + 1)
	}
	a1 := g.zipf.Next()
	a2 := a1
	if op == smallbank.OpSendPayment || op == smallbank.OpAmalgamate {
		for tries := 0; a2 == a1 && tries < 16; tries++ {
			a2 = g.zipf.Next()
		}
		if a2 == a1 {
			a2 = (a1 + 1) % g.cfg.Accounts
		}
	}
	return Call{Op: op, Acct1: a1, Acct2: a2, Amount: uint64(g.rng.Intn(100) + 1)}
}

// NextTx draws the next invocation encoded as a transaction calling the
// SmallBank contract (payload format in EncodeCall).
func (g *Generator) NextTx() *types.Transaction {
	call := g.NextCall()
	var nonce uint64
	if g.cfg.PerSenderNonces {
		g.nonces[call.Acct1]++
		nonce = g.nonces[call.Acct1]
	} else {
		g.nonce++
		nonce = g.nonce
	}
	tx := &types.Transaction{
		From:    types.AddressFromUint64(call.Acct1),
		To:      smallbank.ContractAddress,
		Nonce:   nonce,
		Gas:     1_000_000,
		Payload: EncodeCall(call),
	}
	if g.cfg.Sign {
		key := g.keys[call.Acct1]
		if key == nil {
			key = crypto.KeyForAccount(call.Acct1)
			g.keys[call.Acct1] = key
		}
		tx.From = key.Address()
		key.SignTx(tx)
	}
	return tx
}

// Txs draws n transactions.
func (g *Generator) Txs(n int) []*types.Transaction {
	out := make([]*types.Transaction, n)
	for i := range out {
		out[i] = g.NextTx()
	}
	return out
}

// EncodeCall serializes a call into the transaction payload understood by
// the SmallBank MiniVM program: a 1-byte selector followed by three
// big-endian uint64 arguments.
func EncodeCall(c Call) []byte {
	buf := make([]byte, 0, 1+3*8)
	buf = append(buf, byte(c.Op))
	buf = binary.BigEndian.AppendUint64(buf, c.Acct1)
	buf = binary.BigEndian.AppendUint64(buf, c.Acct2)
	buf = binary.BigEndian.AppendUint64(buf, c.Amount)
	return buf
}

// DecodeCall parses a payload produced by EncodeCall.
func DecodeCall(payload []byte) (Call, error) {
	if len(payload) != 1+3*8 {
		return Call{}, fmt.Errorf("workload: payload length %d, want %d", len(payload), 1+3*8)
	}
	op := smallbank.Op(payload[0])
	if op < smallbank.OpTransactSavings || op > smallbank.OpGetBalance {
		return Call{}, fmt.Errorf("workload: unknown op selector %d", payload[0])
	}
	return Call{
		Op:     op,
		Acct1:  binary.BigEndian.Uint64(payload[1:9]),
		Acct2:  binary.BigEndian.Uint64(payload[9:17]),
		Amount: binary.BigEndian.Uint64(payload[17:25]),
	}, nil
}

// Snapshot materializes the initial SmallBank state (every savings and
// checking cell at InitialBalance) as a key-value map — the epoch snapshot
// the pure-scheduling benchmarks simulate against.
//
// Only accounts that the given transactions touch are materialized, keeping
// the map proportional to the workload rather than the account population.
func (g *Generator) Snapshot(txs []*types.Transaction) (map[types.Key][]byte, error) {
	snap := make(map[types.Key][]byte)
	val := encodeBalance(g.cfg.InitialBalance)
	for _, tx := range txs {
		call, err := DecodeCall(tx.Payload)
		if err != nil {
			return nil, err
		}
		for _, acct := range []uint64{call.Acct1, call.Acct2} {
			snap[smallbank.SavingsKey(acct)] = val
			snap[smallbank.CheckingKey(acct)] = val
		}
	}
	return snap, nil
}

// GenesisWrites is Snapshot flattened into genesis write entries in
// canonical key order. Genesis order is replicated state — it reaches the
// persisted epoch meta and the recovery audit journal — so the map is
// sorted here, once, instead of trusting every caller to remember.
func (g *Generator) GenesisWrites(txs []*types.Transaction) ([]types.WriteEntry, error) {
	snap, err := g.Snapshot(txs)
	if err != nil {
		return nil, err
	}
	out := make([]types.WriteEntry, 0, len(snap))
	for k, v := range snap {
		out = append(out, types.WriteEntry{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out, nil
}

// GenesisAll materializes the initial balances of the ENTIRE account
// population as genesis writes. Streaming ingestion needs this instead of
// Snapshot: the transaction stream is unbounded, so there is no up-front
// tx set to derive the touched accounts from.
func (g *Generator) GenesisAll() []types.WriteEntry {
	val := encodeBalance(g.cfg.InitialBalance)
	out := make([]types.WriteEntry, 0, 2*g.cfg.Accounts)
	for acct := uint64(0); acct < g.cfg.Accounts; acct++ {
		out = append(out,
			types.WriteEntry{Key: smallbank.SavingsKey(acct), Value: val},
			types.WriteEntry{Key: smallbank.CheckingKey(acct), Value: val},
		)
	}
	return out
}

// Simulate produces the SimResult of every transaction against the given
// snapshot without a VM: the footprint comes from smallbank.Footprint and
// write values apply the op's balance arithmetic. This is the fast path for
// scheduler-only benchmarks (Figs. 9–11); the full pipeline uses the MiniVM
// and must produce identical read/write sets (cross-checked in tests).
func Simulate(txs []*types.Transaction, snapshot map[types.Key][]byte) ([]*types.SimResult, error) {
	sims := make([]*types.SimResult, 0, len(txs))
	for _, tx := range txs {
		call, err := DecodeCall(tx.Payload)
		if err != nil {
			return nil, err
		}
		sim := &types.SimResult{Tx: tx}
		readKeys, writeKeys := smallbank.Footprint(call.Op, call.Acct1, call.Acct2)
		vals := make(map[types.Key]uint64, len(readKeys))
		for _, k := range readKeys {
			raw := snapshot[k]
			sim.Reads = append(sim.Reads, types.ReadEntry{Key: k, Value: raw})
			vals[k] = decodeBalance(raw)
		}
		writeVals := applyCall(call, vals)
		for _, k := range writeKeys {
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: encodeBalance(writeVals[k])})
		}
		// Key-sorted sets match the MiniVM logger's output exactly, so
		// the fast path and the VM path are interchangeable.
		sort.Slice(sim.Reads, func(i, j int) bool { return sim.Reads[i].Key.Less(sim.Reads[j].Key) })
		sort.Slice(sim.Writes, func(i, j int) bool { return sim.Writes[i].Key.Less(sim.Writes[j].Key) })
		sims = append(sims, sim)
	}
	return sims, nil
}

// applyCall computes the post-state balances of an op given the read
// balances. Balances saturate at zero instead of underflowing; SmallBank
// semantics (and the original benchmark) allow unconditional updates.
func applyCall(c Call, vals map[types.Key]uint64) map[types.Key]uint64 {
	s1, c1 := smallbank.SavingsKey(c.Acct1), smallbank.CheckingKey(c.Acct1)
	c2 := smallbank.CheckingKey(c.Acct2)
	out := make(map[types.Key]uint64, 3)
	switch c.Op {
	case smallbank.OpTransactSavings:
		out[s1] = vals[s1] + c.Amount
	case smallbank.OpDepositChecking:
		out[c1] = vals[c1] + c.Amount
	case smallbank.OpSendPayment:
		out[c1] = sub(vals[c1], c.Amount)
		out[c2] = vals[c2] + c.Amount
	case smallbank.OpWriteCheck:
		// Writing a check against insufficient total funds incurs a
		// penalty of 1, per the original SmallBank specification.
		amount := c.Amount
		if vals[s1]+vals[c1] < c.Amount {
			amount++
		}
		out[c1] = sub(vals[c1], amount)
	case smallbank.OpAmalgamate:
		out[c2] = vals[c2] + vals[s1] + vals[c1]
		out[s1] = 0
		out[c1] = 0
	case smallbank.OpGetBalance:
		// Read-only.
	}
	return out
}

func sub(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// encodeBalance stores balances as 8-byte big-endian values.
func encodeBalance(v uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, v)
}

// decodeBalance parses a stored balance; missing or short cells read as 0.
func decodeBalance(raw []byte) uint64 {
	if len(raw) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(raw)
}

// EncodeBalance is the exported form of the balance codec for other
// packages (the VM contract and state bootstrap must agree with it).
func EncodeBalance(v uint64) []byte { return encodeBalance(v) }

// DecodeBalance is the exported decoding twin of EncodeBalance.
func DecodeBalance(raw []byte) uint64 { return decodeBalance(raw) }
