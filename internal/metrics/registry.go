package metrics

// The live-telemetry registry: named counters, gauges, and fixed-bucket
// histograms, concurrent-safe and zero-dependency, with a Prometheus
// text-format encoder. The Collector in metrics.go remains the after-the-
// fact per-epoch record the benches read; the registry is the always-on
// view a running node exports over HTTP (see server.go).
//
// The design follows the Prometheus client conventions without importing
// it: metrics belong to families (one name, one type, one help string),
// families fan out into children by label set, and instruments are cheap
// enough for hot paths — a child update is one or two atomic operations,
// and get-or-create of an existing child is a short critical section that
// callers on per-epoch paths need not cache around.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair attached to a metric child.
type Label struct {
	Name  string
	Value string
}

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern — the standard lock-free float accumulator.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. The zero value is usable
// but unregistered; obtain counters from a Registry.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter. Negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adjusts the value by the (possibly negative) delta.
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram counts observations into fixed cumulative buckets, tracking
// the total sum and count alongside. Buckets are upper bounds; a final
// +Inf bucket is implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit for time series.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-th quantile (q in [0, 1]) from the bucket
// counts by linear interpolation inside the owning bucket — the same
// estimator Prometheus's histogram_quantile applies server-side, so a
// report printed from this method matches what a dashboard would show.
// Resolution is bounded by bucket width: with DurationBuckets a p99 of
// "3.1ms" really means "in the 2.5–5ms bucket, ~24% in". Returns NaN on
// an empty histogram; samples in the +Inf bucket clamp to the highest
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) || len(h.bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (bound-lower)*(rank-cum)/c
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// DurationBuckets are the default histogram bounds for stage/phase
// latencies, in seconds: 100 µs up to 10 s, roughly ×2.5 per step — wide
// enough to cover an instant-mining bench epoch and a contended
// production epoch in the same series.
func DurationBuckets() []float64 {
	return []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// child is one labelled instance inside a family.
type child struct {
	labels []Label
	metric any // *Counter, *Gauge, or *Histogram
}

// family groups every child sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child // keyed by encoded label set
}

// Registry is a concurrent collection of metric families. Get-or-create
// lookups and exposition may interleave freely with hot-path updates.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry backs Default(). Instrumented packages (node, core, dag,
// consensus, p2p, kvstore) register against it at import time, mirroring
// the Prometheus default-registerer idiom, so wiring a live endpoint is
// one StartServer call away from any binary.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every built-in instrument
// registers on.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter with the given name and labels, creating
// the family and child as needed. It panics if the name is invalid or
// already registered as a different type — a programmer error, like
// prometheus.MustRegister.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.getOrCreate(name, help, kindCounter, nil, labels, func() any { return &Counter{} })
	return c.(*Counter)
}

// Gauge returns the gauge with the given name and labels, creating it as
// needed. Same panic contract as Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := r.getOrCreate(name, help, kindGauge, nil, labels, func() any { return &Gauge{} })
	return g.(*Gauge)
}

// Histogram returns the histogram with the given name, buckets, and
// labels, creating it as needed. Buckets must be strictly increasing;
// they are fixed by the first registration of the family (later calls may
// pass nil). Same panic contract as Counter.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly increasing", name))
		}
	}
	h := r.getOrCreate(name, help, kindHistogram, buckets, labels, nil)
	return h.(*Histogram)
}

func (r *Registry) getOrCreate(name, help string, kind metricKind, bounds []float64, labels []Label, mk func() any) any {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l.Name, name))
		}
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		if kind == kindHistogram {
			if len(bounds) == 0 {
				bounds = DurationBuckets()
			}
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %q already registered as %s, requested %s", name, f.kind, kind))
	}

	// Children sort their labels once at creation so the same set in any
	// order maps to one child and one exposition line.
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	key := labelKey(ls)

	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch.metric
	}
	var m any
	if kind == kindHistogram {
		m = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	} else {
		m = mk()
	}
	f.children[key] = &child{labels: ls, metric: m}
	return m
}

// labelKey encodes a sorted label set as it appears in the exposition
// format (also the dedup key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// formatValue renders a sample value. Integral values print without an
// exponent so counters read naturally; +Inf matches the exposition spec.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes every family in the Prometheus text exposition
// format (version 0.0.4): families in name order, children in label-set
// order, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			f.mu.Unlock()
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			ch := f.children[k]
			switch m := ch.metric.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, k, formatValue(m.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, k, formatValue(m.Value()))
			case *Histogram:
				writeHistogram(&b, f.name, ch.labels, m)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram expands one histogram child. Bucket counts are
// cumulative per the exposition format; the le label joins the child's
// own labels in sorted position.
func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelKey(withLE(labels, formatValue(bound))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelKey(withLE(labels, "+Inf")), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelKey(labels), formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelKey(labels), h.Count())
}

// withLE returns the label set plus an le label, re-sorted.
func withLE(labels []Label, le string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	out = append(out, Label{Name: "le", Value: le})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
