package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one counter, one gauge, and one histogram
// from many goroutines — run under -race, this is the registry's
// concurrency contract.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-fetch through the registry each iteration: get-or-create
			// of an existing child must be safe alongside updates.
			for i := 0; i < iters; i++ {
				r.Counter("reqs_total", "").Inc()
				r.Gauge("depth", "").Add(1)
				r.Histogram("lat_seconds", "", []float64{0.5}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("reqs_total", "").Value(); got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
	if got := r.Gauge("depth", "").Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	h := r.Histogram("lat_seconds", "", nil)
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if want := float64(workers*iters) * 0.25; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "")
	c.Add(3)
	c.Add(-5) // ignored: counters never decrease
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %v, want 4", c.Value())
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) semantics: a
// sample exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bounds", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 7} {
		h.Observe(v)
	}
	// Direct (non-cumulative) bucket occupancy: le=1 holds 0.5 and 1,
	// le=2 holds 1.5 and 2, le=5 holds 5, +Inf holds 7.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 || h.Sum() != 17 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Cumulative exposition: 2, 4, 5, 6.
	for _, line := range []string{
		`bounds_bucket{le="1"} 2`,
		`bounds_bucket{le="2"} 4`,
		`bounds_bucket{le="5"} 5`,
		`bounds_bucket{le="+Inf"} 6`,
		`bounds_sum 17`,
		`bounds_count 6`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, b.String())
		}
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", DurationBuckets())
	h.ObserveDuration(2500 * time.Microsecond)
	if h.Sum() != 0.0025 {
		t.Fatalf("sum = %v, want 0.0025", h.Sum())
	}
}

// TestWritePrometheusGolden locks the exposition byte-for-byte: family
// ordering, HELP/TYPE comments, label sorting and escaping, histogram
// expansion, and value formatting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "Last family by name.").Add(2)
	r.Counter("alpha_total", "Labelled counter.",
		Label{Name: "node", Value: "full"}, Label{Name: "chain", Value: "0"}).Add(7)
	r.Counter("alpha_total", "Labelled counter.",
		Label{Name: "chain", Value: "1"}, Label{Name: "node", Value: "full"}).Inc()
	r.Gauge("beta", "A gauge.").Set(1.5)
	r.Histogram("gamma_seconds", "A histogram.", []float64{0.1, 1}).Observe(0.05)
	r.Histogram("gamma_seconds", "A histogram.", nil).Observe(3)

	const want = `# HELP alpha_total Labelled counter.
# TYPE alpha_total counter
alpha_total{chain="0",node="full"} 7
alpha_total{chain="1",node="full"} 1
# HELP beta A gauge.
# TYPE beta gauge
beta 1.5
# HELP gamma_seconds A histogram.
# TYPE gamma_seconds histogram
gamma_seconds_bucket{le="0.1"} 1
gamma_seconds_bucket{le="1"} 1
gamma_seconds_bucket{le="+Inf"} 2
gamma_seconds_sum 3.05
gamma_seconds_count 2
# HELP zeta_total Last family by name.
# TYPE zeta_total counter
zeta_total 2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestLabelOrderIsOneChild: the same label set in any order resolves to
// one child.
func TestLabelOrderIsOneChild(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	b := r.Counter("x_total", "", Label{Name: "b", Value: "2"}, Label{Name: "a", Value: "1"})
	if a != b {
		t.Fatal("label order created distinct children")
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{Name: "v", Value: "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestEmptyFamiliesSkipped(t *testing.T) {
	r := NewRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("empty registry produced output: %q", b.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	mustPanic("invalid metric name", func() { r.Counter("9bad", "") })
	mustPanic("invalid label name", func() { r.Counter("ok_total", "", Label{Name: "le:", Value: "x"}) })
	mustPanic("unsorted buckets", func() { r.Histogram("h", "", []float64{1, 1}) })
	r.Counter("typed_total", "")
	mustPanic("type mismatch", func() { r.Gauge("typed_total", "") })
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:             "0",
		42:            "42",
		-3:            "-3",
		1.5:           "1.5",
		0.0025:        "0.0025",
		math.Inf(+1):  "+Inf",
		1e15:          "1e+15", // beyond the integral cutoff
		1234567890123: "1234567890123",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestHistogramQuantile pins the interpolation estimator: uniform samples
// across known buckets must recover the exact quantiles, and the edge
// cases (empty, +Inf overflow, clamped q) behave as documented.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram must report NaN")
	}
	// 100 samples: 50 in (0,1], 25 in (1,2], 25 in (2,4].
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 25; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 25; i++ {
		h.Observe(3)
	}
	cases := []struct{ q, want float64 }{
		{0.25, 0.5},  // rank 25 of 50 in bucket (0,1] → halfway
		{0.5, 1.0},   // rank 50: exactly exhausts the first bucket
		{0.75, 2.0},  // rank 75: exhausts the second
		{0.875, 3.0}, // rank 87.5: halfway through (2,4]
		{1.0, 4.0},
		{-1, 0.0},  // clamps to q=0 → lower edge of first occupied bucket
		{2.0, 4.0}, // clamps to q=1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Overflow samples land in +Inf; the estimate clamps to the top bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) with +Inf samples = %v, want clamp to 4", got)
	}
}

// TestHistogramQuantileEdges pins the degenerate shapes the interpolation
// loop has to survive: a single bucket, the exact q=0/q=1 endpoints, a
// bound-less histogram, a NaN quantile, and empty leading buckets.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()

	// A histogram with no finite bounds can't place any estimate. The
	// registry substitutes DurationBuckets for empty bounds, so the only
	// way to reach this guard is a zero-value struct.
	unbounded := &Histogram{}
	unbounded.count.Add(1)
	if !math.IsNaN(unbounded.Quantile(0.5)) {
		t.Error("histogram without bounds must report NaN")
	}

	// Single bucket: the whole distribution interpolates across (0, 10].
	single := r.Histogram("edge_single", "", []float64{10})
	single.Observe(5)
	if !math.IsNaN(single.Quantile(math.NaN())) {
		t.Error("NaN quantile must report NaN")
	}
	for _, c := range []struct{ q, want float64 }{
		{0, 0},   // lower edge of the only occupied bucket
		{0.5, 5}, // halfway through it
		{1, 10},  // upper bound
	} {
		if got := single.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("single-bucket Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// Empty histograms stay NaN at the endpoints too, not zero.
	empty := r.Histogram("edge_empty", "", []float64{1, 2})
	if !math.IsNaN(empty.Quantile(0)) || !math.IsNaN(empty.Quantile(1)) {
		t.Error("empty histogram must report NaN at q=0 and q=1")
	}

	// q=0 skips zero-count buckets: the estimate starts at the lower edge
	// of the first bucket that actually holds samples.
	skewed := r.Histogram("edge_skewed", "", []float64{1, 2, 4})
	skewed.Observe(1.5)
	skewed.Observe(1.5)
	if got := skewed.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) with empty first bucket = %v, want 1", got)
	}
	if got := skewed.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}

	// Everything in +Inf: no finite bucket can satisfy the rank, so the
	// estimate clamps to the highest finite bound.
	overflow := r.Histogram("edge_overflow", "", []float64{1})
	overflow.Observe(50)
	if got := overflow.Quantile(0.5); got != 1 {
		t.Errorf("all-overflow Quantile(0.5) = %v, want clamp to 1", got)
	}
}
