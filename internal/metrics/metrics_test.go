package metrics

import (
	"sync"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

func TestEpochStatsDerived(t *testing.T) {
	s := EpochStats{
		Txs: 100, Committed: 90, Aborted: 10,
		Validate: time.Millisecond, Execute: 2 * time.Millisecond,
		Control: 3 * time.Millisecond, Commit: 4 * time.Millisecond,
	}
	if s.Total() != 10*time.Millisecond {
		t.Fatalf("total = %v", s.Total())
	}
	if s.AbortRate() != 0.1 {
		t.Fatalf("abort rate = %v", s.AbortRate())
	}
	if (EpochStats{}).AbortRate() != 0 {
		t.Fatal("empty abort rate not zero")
	}
}

func TestCollectorSummarize(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 3; i++ {
		c.Record(EpochStats{
			Epoch: uint64(i), Txs: 10, Committed: 8, Aborted: 2,
			Execute: time.Millisecond,
			ControlBreakdown: types.PhaseBreakdown{
				Graph: time.Microsecond, Cycle: 2 * time.Microsecond, Sort: 3 * time.Microsecond,
			},
		})
	}
	sum := c.Summarize()
	if sum.Epochs != 3 || sum.Txs != 30 || sum.Committed != 24 || sum.Aborted != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Execute != 3*time.Millisecond {
		t.Fatalf("execute = %v", sum.Execute)
	}
	if sum.ControlBreakdown.Total() != 18*time.Microsecond {
		t.Fatalf("breakdown total = %v", sum.ControlBreakdown.Total())
	}
	if sum.AbortRate() != 0.2 {
		t.Fatalf("abort rate = %v", sum.AbortRate())
	}
	if len(c.Epochs()) != 3 {
		t.Fatal("epochs copy wrong")
	}
}

func TestEffectiveThroughput(t *testing.T) {
	s := Summary{Committed: 500}
	if got := s.EffectiveThroughput(2 * time.Second); got != 250 {
		t.Fatalf("tps = %v", got)
	}
	if s.EffectiveThroughput(0) != 0 {
		t.Fatal("zero window must yield zero")
	}
}

// TestCollectorRing: with a cap set, Record evicts oldest-first, Epochs
// stays ordered, Dropped counts evictions, and Reset clears the window.
func TestCollectorRing(t *testing.T) {
	c := NewCollector()
	c.SetCap(3)
	for i := 0; i < 5; i++ {
		c.Record(EpochStats{Epoch: uint64(i), Txs: 1})
	}
	got := c.Epochs()
	if len(got) != 3 || got[0].Epoch != 2 || got[1].Epoch != 3 || got[2].Epoch != 4 {
		t.Fatalf("retained window = %+v", got)
	}
	if c.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.Dropped())
	}
	if sum := c.Summarize(); sum.Epochs != 3 || sum.Txs != 3 {
		t.Fatalf("summary over window = %+v", sum)
	}

	// Shrinking the cap evicts immediately, keeping the newest.
	c.SetCap(1)
	if got := c.Epochs(); len(got) != 1 || got[0].Epoch != 4 {
		t.Fatalf("after shrink: %+v", got)
	}
	if c.Dropped() != 4 {
		t.Fatalf("dropped after shrink = %d, want 4", c.Dropped())
	}

	// Back to unbounded: the window grows again.
	c.SetCap(0)
	for i := 5; i < 8; i++ {
		c.Record(EpochStats{Epoch: uint64(i)})
	}
	if got := c.Epochs(); len(got) != 4 || got[0].Epoch != 4 || got[3].Epoch != 7 {
		t.Fatalf("after uncapping: %+v", got)
	}

	c.Reset()
	if len(c.Epochs()) != 0 || c.Dropped() != 0 {
		t.Fatal("reset did not clear the collector")
	}
	c.Record(EpochStats{Epoch: 99})
	if got := c.Epochs(); len(got) != 1 || got[0].Epoch != 99 {
		t.Fatalf("record after reset: %+v", got)
	}
}

// TestOccupancyWeighted: aggregating stages whose worker counts differ
// weights each epoch by its own Duration×Workers capacity. The old
// max-workers denominator would report 300ms/(200ms×4) = 0.375 here; the
// weighted form reports 300ms/500ms = 0.6.
func TestOccupancyWeighted(t *testing.T) {
	wide := StageStat{Name: "execute", Duration: 100 * time.Millisecond, Workers: 4, Busy: 200 * time.Millisecond}
	if got := wide.Occupancy(); got != 0.5 {
		t.Fatalf("single-sample occupancy = %v, want 0.5", got)
	}
	narrow := StageStat{Name: "execute", Duration: 100 * time.Millisecond, Workers: 1, Busy: 100 * time.Millisecond}
	if got := narrow.Occupancy(); got != 1 {
		t.Fatalf("single-sample occupancy = %v, want 1", got)
	}

	c := NewCollector()
	c.Record(EpochStats{Epoch: 0, Stages: []StageStat{wide}})
	c.Record(EpochStats{Epoch: 1, Stages: []StageStat{narrow}})
	sum := c.Summarize()
	if len(sum.Stages) != 1 {
		t.Fatalf("stages = %+v", sum.Stages)
	}
	agg := sum.Stages[0]
	if agg.Capacity != 500*time.Millisecond {
		t.Fatalf("capacity = %v, want 500ms", agg.Capacity)
	}
	if got := agg.Occupancy(); got != 0.6 {
		t.Fatalf("weighted occupancy = %v, want 0.6", got)
	}
	if agg.Workers != 4 {
		t.Fatalf("max workers = %d, want 4", agg.Workers)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(EpochStats{Txs: 1, Committed: 1})
			}
		}()
	}
	wg.Wait()
	if sum := c.Summarize(); sum.Epochs != 800 || sum.Committed != 800 {
		t.Fatalf("summary = %+v", sum)
	}
}
