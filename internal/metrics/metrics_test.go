package metrics

import (
	"sync"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

func TestEpochStatsDerived(t *testing.T) {
	s := EpochStats{
		Txs: 100, Committed: 90, Aborted: 10,
		Validate: time.Millisecond, Execute: 2 * time.Millisecond,
		Control: 3 * time.Millisecond, Commit: 4 * time.Millisecond,
	}
	if s.Total() != 10*time.Millisecond {
		t.Fatalf("total = %v", s.Total())
	}
	if s.AbortRate() != 0.1 {
		t.Fatalf("abort rate = %v", s.AbortRate())
	}
	if (EpochStats{}).AbortRate() != 0 {
		t.Fatal("empty abort rate not zero")
	}
}

func TestCollectorSummarize(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 3; i++ {
		c.Record(EpochStats{
			Epoch: uint64(i), Txs: 10, Committed: 8, Aborted: 2,
			Execute: time.Millisecond,
			ControlBreakdown: types.PhaseBreakdown{
				Graph: time.Microsecond, Cycle: 2 * time.Microsecond, Sort: 3 * time.Microsecond,
			},
		})
	}
	sum := c.Summarize()
	if sum.Epochs != 3 || sum.Txs != 30 || sum.Committed != 24 || sum.Aborted != 6 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Execute != 3*time.Millisecond {
		t.Fatalf("execute = %v", sum.Execute)
	}
	if sum.ControlBreakdown.Total() != 18*time.Microsecond {
		t.Fatalf("breakdown total = %v", sum.ControlBreakdown.Total())
	}
	if sum.AbortRate() != 0.2 {
		t.Fatalf("abort rate = %v", sum.AbortRate())
	}
	if len(c.Epochs()) != 3 {
		t.Fatal("epochs copy wrong")
	}
}

func TestEffectiveThroughput(t *testing.T) {
	s := Summary{Committed: 500}
	if got := s.EffectiveThroughput(2 * time.Second); got != 250 {
		t.Fatalf("tps = %v", got)
	}
	if s.EffectiveThroughput(0) != 0 {
		t.Fatal("zero window must yield zero")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(EpochStats{Txs: 1, Committed: 1})
			}
		}()
	}
	wg.Wait()
	if sum := c.Summarize(); sum.Epochs != 800 || sum.Committed != 800 {
		t.Fatalf("summary = %+v", sum)
	}
}
