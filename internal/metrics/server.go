package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        liveness probe (200, "ok" + uptime)
//	/debug/pprof/   the standard runtime profiles (CPU, heap, goroutine,
//	                block, mutex, execution trace)
//
// It binds its own mux rather than http.DefaultServeMux so importing this
// package never leaks debug handlers into an unrelated server.
type Server struct {
	srv     *http.Server
	ln      net.Listener
	started time.Time
}

// Handler returns an http.Handler serving the registry's exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// StartServer listens on addr (host:port; ":0" picks a free port) and
// serves the registry in a background goroutine until Close.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, started: time.Now()}

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok\nuptime %s\n", time.Since(s.started).Round(time.Millisecond))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }() // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (resolving ":0" to the chosen port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately; in-flight scrapes are cut off.
func (s *Server) Close() error { return s.srv.Close() }
