// Package metrics collects the measurements the paper's evaluation reports:
// per-phase latencies of the transaction-processing workflow (validation,
// concurrent execution, concurrency control, commitment — Fig. 2(b)), the
// concurrency-control sub-phase breakdown (Fig. 10), abort counts
// (Fig. 11), and effective throughput (Fig. 12).
package metrics

import (
	"sync"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

// StageStat records one named pipeline stage of one epoch: its wall-clock
// span, how many work items it fanned out, the goroutines serving it, the
// summed per-worker busy span, and how much of its cost ran hidden under
// the previous epoch's commit (the cross-epoch overlap).
type StageStat struct {
	Name     string
	Duration time.Duration
	// Tasks is the number of work items the stage processed (blocks for
	// validation, transactions for execution/scheduling, committed
	// transactions for commitment).
	Tasks int
	// Workers is the goroutine count that served the stage (1 = inline).
	Workers int
	// Busy is the summed wall-clock span of the stage's workers; with
	// Duration and Workers it yields the pool occupancy.
	Busy time.Duration
	// Overlap is work this stage would have done that already ran in the
	// background, overlapped with the previous epoch's commit.
	Overlap time.Duration
	// Capacity is the summed Duration×Workers over the samples this stat
	// aggregates. Zero on a single-epoch sample (where Duration×Workers
	// is the capacity); Summarize fills it so occupancy stays duration-
	// weighted across epochs whose worker counts differ.
	Capacity time.Duration
}

// capacitySpan returns the worker-capacity wall-clock this sample covers.
func (s StageStat) capacitySpan() time.Duration {
	if s.Capacity > 0 {
		return s.Capacity
	}
	return s.Duration * time.Duration(s.Workers)
}

// Occupancy returns the fraction of the stage's worker capacity that was
// busy: Busy / (Duration × Workers) for a single-epoch sample, and
// Busy / ΣᵢDurationᵢ×Workersᵢ for an aggregated one — each epoch's
// occupancy weighted by its capacity, so epochs that ran longer or wider
// count proportionally more (keeping max Workers across epochs, as
// aggregation once did, overstated the denominator of narrow epochs and
// understated busy pools). 0 when the stage kept no busy span (inline
// stages); values near 1 mean a balanced, saturated pool.
func (s StageStat) Occupancy() float64 {
	span := s.capacitySpan()
	if span <= 0 || s.Busy <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(span)
}

// add accumulates another sample of the same stage.
func (s *StageStat) add(o StageStat) {
	s.Duration += o.Duration
	s.Tasks += o.Tasks
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Busy += o.Busy
	s.Overlap += o.Overlap
	s.Capacity += o.capacitySpan()
}

// EpochStats records one processed epoch.
type EpochStats struct {
	Epoch            uint64
	BlockConcurrency int
	Txs              int
	Committed        int
	Aborted          int
	ExecutionFailed  int

	Validate time.Duration
	Execute  time.Duration
	Control  time.Duration
	Commit   time.Duration
	// ControlBreakdown splits Control into the Fig. 10 sub-phases.
	ControlBreakdown types.PhaseBreakdown
	// Stages lists the pipeline stages in execution order with their
	// queue/occupancy counters (the staged-pipeline view of the four
	// phase durations above).
	Stages []StageStat
}

// Total returns the end-to-end processing latency of the epoch.
func (e EpochStats) Total() time.Duration {
	return e.Validate + e.Execute + e.Control + e.Commit
}

// AbortRate returns aborted/(committed+aborted), counting scheduler aborts
// only (execution failures are a different phenomenon).
func (e EpochStats) AbortRate() float64 {
	total := e.Committed + e.Aborted
	if total == 0 {
		return 0
	}
	return float64(e.Aborted) / float64(total)
}

// Collector accumulates epoch statistics; safe for concurrent use. By
// default it retains every recorded epoch; long-running nodes should set
// a cap (SetCap) so retention is a ring buffer instead of an unbounded
// append.
type Collector struct {
	mu     sync.Mutex
	epochs []EpochStats
	// cap > 0 bounds len(epochs); epochs is then a ring with start
	// marking the oldest entry.
	cap     int
	start   int
	dropped uint64
}

// NewCollector returns an empty, unbounded collector.
func NewCollector() *Collector { return &Collector{} }

// SetCap bounds retention to the most recent n epochs (0 restores
// unbounded retention). Epochs(), Summarize(), and the derived summary
// metrics then cover only the retained window; Dropped() counts what has
// been evicted. Shrinking the cap below the current count evicts the
// oldest entries immediately.
func (c *Collector) SetCap(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n > 0 && len(c.epochs) > n {
		ordered := c.orderedLocked()
		c.epochs = ordered[len(ordered)-n:]
		c.dropped += uint64(len(ordered) - n)
	} else if c.start > 0 {
		c.epochs = c.orderedLocked()
	}
	c.start = 0
	c.cap = n
}

// Record appends one epoch's stats, evicting the oldest retained epoch
// when a cap is set and full.
func (c *Collector) Record(s EpochStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap > 0 && len(c.epochs) >= c.cap {
		c.epochs[c.start] = s
		c.start = (c.start + 1) % len(c.epochs)
		c.dropped++
		return
	}
	c.epochs = append(c.epochs, s)
}

// Reset discards every retained epoch (the cap, if any, is kept) and
// zeroes the dropped counter.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs = c.epochs[:0]
	c.start = 0
	c.dropped = 0
}

// Dropped reports how many epochs have been evicted by the ring cap
// since the last Reset.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// orderedLocked returns the retained epochs oldest-first.
func (c *Collector) orderedLocked() []EpochStats {
	out := make([]EpochStats, 0, len(c.epochs))
	out = append(out, c.epochs[c.start:]...)
	out = append(out, c.epochs[:c.start]...)
	return out
}

// Epochs returns a copy of the retained stats, oldest first.
func (c *Collector) Epochs() []EpochStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.orderedLocked()
}

// Summary aggregates the recorded epochs.
type Summary struct {
	Epochs    int
	Txs       int
	Committed int
	Aborted   int

	Validate time.Duration
	Execute  time.Duration
	Control  time.Duration
	Commit   time.Duration

	ControlBreakdown types.PhaseBreakdown
	// Stages aggregates per-stage samples by name, preserving first-seen
	// stage order. Aggregated stats carry Capacity (the summed
	// Duration×Workers of their samples), so Occupancy() is duration-
	// weighted across epochs; Workers is the maximum seen and is
	// informational only.
	Stages []StageStat
}

// Total returns the summed end-to-end latency.
func (s Summary) Total() time.Duration {
	return s.Validate + s.Execute + s.Control + s.Commit
}

// AbortRate returns the aggregate scheduler abort rate.
func (s Summary) AbortRate() float64 {
	total := s.Committed + s.Aborted
	if total == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(total)
}

// EffectiveThroughput returns committed transactions per second given the
// wall-clock window they were processed in — the paper's Fig. 12 metric
// ("the number of valid transactions that pass transaction processing and
// persist their states").
func (s Summary) EffectiveThroughput(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(s.Committed) / window.Seconds()
}

// Summarize aggregates the retained epochs (all of them when no cap is
// set; the most recent window otherwise).
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Summary
	stageIdx := make(map[string]int)
	for _, e := range c.orderedLocked() {
		s.Epochs++
		s.Txs += e.Txs
		s.Committed += e.Committed
		s.Aborted += e.Aborted
		s.Validate += e.Validate
		s.Execute += e.Execute
		s.Control += e.Control
		s.Commit += e.Commit
		s.ControlBreakdown.Add(e.ControlBreakdown)
		for _, st := range e.Stages {
			i, ok := stageIdx[st.Name]
			if !ok {
				i = len(s.Stages)
				stageIdx[st.Name] = i
				s.Stages = append(s.Stages, StageStat{Name: st.Name})
			}
			s.Stages[i].add(st)
		}
	}
	return s
}
