// Package metrics collects the measurements the paper's evaluation reports:
// per-phase latencies of the transaction-processing workflow (validation,
// concurrent execution, concurrency control, commitment — Fig. 2(b)), the
// concurrency-control sub-phase breakdown (Fig. 10), abort counts
// (Fig. 11), and effective throughput (Fig. 12).
package metrics

import (
	"sync"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

// StageStat records one named pipeline stage of one epoch: its wall-clock
// span, how many work items it fanned out, the goroutines serving it, the
// summed per-worker busy span, and how much of its cost ran hidden under
// the previous epoch's commit (the cross-epoch overlap).
type StageStat struct {
	Name     string
	Duration time.Duration
	// Tasks is the number of work items the stage processed (blocks for
	// validation, transactions for execution/scheduling, committed
	// transactions for commitment).
	Tasks int
	// Workers is the goroutine count that served the stage (1 = inline).
	Workers int
	// Busy is the summed wall-clock span of the stage's workers; with
	// Duration and Workers it yields the pool occupancy.
	Busy time.Duration
	// Overlap is work this stage would have done that already ran in the
	// background, overlapped with the previous epoch's commit.
	Overlap time.Duration
}

// Occupancy returns the fraction of the stage's worker capacity that was
// busy: Busy / (Duration × Workers). 0 when the stage kept no busy span
// (inline stages); values near 1 mean a balanced, saturated pool.
func (s StageStat) Occupancy() float64 {
	if s.Duration <= 0 || s.Workers <= 0 || s.Busy <= 0 {
		return 0
	}
	return float64(s.Busy) / (float64(s.Duration) * float64(s.Workers))
}

// add accumulates another sample of the same stage.
func (s *StageStat) add(o StageStat) {
	s.Duration += o.Duration
	s.Tasks += o.Tasks
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Busy += o.Busy
	s.Overlap += o.Overlap
}

// EpochStats records one processed epoch.
type EpochStats struct {
	Epoch            uint64
	BlockConcurrency int
	Txs              int
	Committed        int
	Aborted          int
	ExecutionFailed  int

	Validate time.Duration
	Execute  time.Duration
	Control  time.Duration
	Commit   time.Duration
	// ControlBreakdown splits Control into the Fig. 10 sub-phases.
	ControlBreakdown types.PhaseBreakdown
	// Stages lists the pipeline stages in execution order with their
	// queue/occupancy counters (the staged-pipeline view of the four
	// phase durations above).
	Stages []StageStat
}

// Total returns the end-to-end processing latency of the epoch.
func (e EpochStats) Total() time.Duration {
	return e.Validate + e.Execute + e.Control + e.Commit
}

// AbortRate returns aborted/(committed+aborted), counting scheduler aborts
// only (execution failures are a different phenomenon).
func (e EpochStats) AbortRate() float64 {
	total := e.Committed + e.Aborted
	if total == 0 {
		return 0
	}
	return float64(e.Aborted) / float64(total)
}

// Collector accumulates epoch statistics; safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	epochs []EpochStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Record appends one epoch's stats.
func (c *Collector) Record(s EpochStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs = append(c.epochs, s)
}

// Epochs returns a copy of all recorded stats.
func (c *Collector) Epochs() []EpochStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EpochStats, len(c.epochs))
	copy(out, c.epochs)
	return out
}

// Summary aggregates the recorded epochs.
type Summary struct {
	Epochs    int
	Txs       int
	Committed int
	Aborted   int

	Validate time.Duration
	Execute  time.Duration
	Control  time.Duration
	Commit   time.Duration

	ControlBreakdown types.PhaseBreakdown
	// Stages aggregates per-stage samples by name, preserving first-seen
	// stage order.
	Stages []StageStat
}

// Total returns the summed end-to-end latency.
func (s Summary) Total() time.Duration {
	return s.Validate + s.Execute + s.Control + s.Commit
}

// AbortRate returns the aggregate scheduler abort rate.
func (s Summary) AbortRate() float64 {
	total := s.Committed + s.Aborted
	if total == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(total)
}

// EffectiveThroughput returns committed transactions per second given the
// wall-clock window they were processed in — the paper's Fig. 12 metric
// ("the number of valid transactions that pass transaction processing and
// persist their states").
func (s Summary) EffectiveThroughput(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(s.Committed) / window.Seconds()
}

// Summarize aggregates all recorded epochs.
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Summary
	stageIdx := make(map[string]int)
	for _, e := range c.epochs {
		s.Epochs++
		s.Txs += e.Txs
		s.Committed += e.Committed
		s.Aborted += e.Aborted
		s.Validate += e.Validate
		s.Execute += e.Execute
		s.Control += e.Control
		s.Commit += e.Commit
		s.ControlBreakdown.Add(e.ControlBreakdown)
		for _, st := range e.Stages {
			i, ok := stageIdx[st.Name]
			if !ok {
				i = len(s.Stages)
				stageIdx[st.Name] = i
				s.Stages = append(s.Stages, StageStat{Name: st.Name})
			}
			s.Stages[i].add(st)
		}
	}
	return s
}
