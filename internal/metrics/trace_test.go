package metrics

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// exportedTrace mirrors the JSON container the viewers load.
type exportedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func exportTrace(t *testing.T, tr *Tracer) exportedTrace {
	t.Helper()
	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatal(err)
	}
	var out exportedTrace
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, b.String())
	}
	return out
}

// TestTracerExport: spans land on named tracks, timestamps are relative
// to the earliest span and sorted, and args survive the round trip.
func TestTracerExport(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	tr.Span("node", "validate", t0, 2*time.Millisecond, map[string]any{"epoch": 1})
	tr.Span("node", "execute", t0.Add(2*time.Millisecond), 3*time.Millisecond, nil)
	tr.Span("node/background", "prevalidate", t0.Add(time.Millisecond), time.Millisecond, nil)
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}

	out := exportTrace(t, tr)
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var names []string
	tracks := map[int]string{}
	lastTS := -1.0
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Fatalf("metadata event %q", e.Name)
			}
			tracks[e.TID] = e.Args["name"].(string)
		case "X":
			names = append(names, e.Name)
			if e.TS < 0 || e.Dur < 0 {
				t.Fatalf("negative ts/dur on %q: %v/%v", e.Name, e.TS, e.Dur)
			}
			if e.TS < lastTS {
				t.Fatalf("events not sorted by ts: %q at %v after %v", e.Name, e.TS, lastTS)
			}
			lastTS = e.TS
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if len(names) != 3 || names[0] != "validate" || names[1] != "prevalidate" || names[2] != "execute" {
		t.Fatalf("span order = %v", names)
	}
	if tracks[0] != "node" || tracks[1] != "node/background" {
		t.Fatalf("tracks = %v", tracks)
	}
	// The first span anchors zero.
	if out.TraceEvents[2].TS != 0 {
		t.Fatalf("first span ts = %v, want 0", out.TraceEvents[2].TS)
	}
	if got := out.TraceEvents[2].Args["epoch"].(float64); got != 1 {
		t.Fatalf("args epoch = %v", got)
	}
}

// TestTracerEarlierSpanRebases: a span that started before the current
// zero (a background pass kicked before the first traced stage) rebases
// the whole trace so timestamps stay non-negative.
func TestTracerEarlierSpanRebases(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	tr.Span("main", "commit", t0.Add(10*time.Millisecond), time.Millisecond, nil)
	tr.Span("bg", "prevalidate", t0, 5*time.Millisecond, nil)

	out := exportTrace(t, tr)
	var pre, commit float64 = -1, -1
	for _, e := range out.TraceEvents {
		switch e.Name {
		case "prevalidate":
			pre = e.TS
		case "commit":
			commit = e.TS
		}
	}
	if pre != 0 {
		t.Fatalf("earlier span ts = %v, want 0", pre)
	}
	if commit != 10_000 { // 10 ms in µs
		t.Fatalf("rebased span ts = %v, want 10000", commit)
	}
}

// TestTracerNil: a nil tracer is a no-op recorder, so instrumented code
// needs no guards.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Span("x", "y", time.Now(), time.Second, nil)
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded a span")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	t0 := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Span("t", "s", t0.Add(time.Duration(w*50+i)*time.Microsecond), time.Microsecond, nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 400 {
		t.Fatalf("len = %d, want 400", tr.Len())
	}
	exportTrace(t, tr) // must still be valid JSON with sorted events
}

func TestTracerWriteFile(t *testing.T) {
	tr := NewTracer()
	tr.Span("a", "b", time.Now(), time.Millisecond, nil)
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out exportedTrace
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 { // one metadata + one span
		t.Fatalf("events = %d, want 2", len(out.TraceEvents))
	}
}
