package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServerEndpoints: a server on a kernel-chosen port exposes the
// registry exposition, the liveness probe, and the pprof index.
func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("smoke_total", "Smoke series.", Label{Name: "node", Value: "t"}).Add(3)
	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, `smoke_total{node="t"} 3`) {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _, _ = get(t, base+"/debug/pprof/heap")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/heap = %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

// TestServerBadAddr: an unbindable address surfaces as an error, not a
// background panic.
func TestServerBadAddr(t *testing.T) {
	if _, err := StartServer("256.0.0.1:0", NewRegistry()); err == nil {
		t.Fatal("no error for unbindable address")
	}
}
