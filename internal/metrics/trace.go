package metrics

// Epoch tracing in the Chrome trace-event format ("trace event format",
// the JSON Perfetto and chrome://tracing load). Each pipeline stage of
// each epoch becomes one complete ("X") event; tracks (the viewer's
// rows) separate the critical path from background work, so the
// cross-epoch prevalidation overlap is visible as a span running under
// the previous epoch's commit — the picture DESIGN.md §8.3 describes.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// traceEvent is one complete event in the trace-event JSON schema.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace zero
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer accumulates spans; safe for concurrent use. The zero Tracer is
// not usable — construct with NewTracer. A nil *Tracer is a valid no-op
// receiver for Span, so instrumented code can record unconditionally.
type Tracer struct {
	mu     sync.Mutex
	zero   time.Time
	tracks map[string]int
	order  []string
	events []traceEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{tracks: make(map[string]int)}
}

// Span records one completed span on the named track. The first span
// anchors the trace's zero time; spans that started before it (e.g. a
// background prevalidation that predates the first traced stage) are
// clamped to zero so timestamps stay non-negative, as the viewers expect.
// Nil-receiver safe.
func (t *Tracer) Span(track, name string, start time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.zero.IsZero() || start.Before(t.zero) {
		base := start
		// Shift already-recorded events forward so they stay relative to
		// the new, earlier zero.
		if !t.zero.IsZero() {
			delta := float64(t.zero.Sub(base)) / float64(time.Microsecond)
			for i := range t.events {
				t.events[i].TS += delta
			}
		}
		t.zero = base
	}
	tid, ok := t.tracks[track]
	if !ok {
		tid = len(t.order)
		t.tracks[track] = tid
		t.order = append(t.order, track)
	}
	t.events = append(t.events, traceEvent{
		Name: name,
		Ph:   "X",
		TS:   float64(start.Sub(t.zero)) / float64(time.Microsecond),
		Dur:  float64(d) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		Args: args,
	})
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Export emits the trace as a JSON object with a traceEvents array —
// the container format every trace viewer accepts. Events are sorted by
// timestamp; each track gets a thread_name metadata event so viewers
// label rows with the track names instead of bare tids.
func (t *Tracer) Export(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	order := append([]string(nil), t.order...)
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	type metaEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	out := struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{DisplayTimeUnit: "ms"}
	for tid, track := range order {
		out.TraceEvents = append(out.TraceEvents, metaEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": track},
		})
	}
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace to path, creating or truncating it.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: create trace file: %w", err)
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
