package rlp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// encodeHex helpers for the canonical RLP test vectors from the Ethereum
// wiki.
func TestCanonicalVectors(t *testing.T) {
	cases := []struct {
		name string
		item Item
		want []byte
	}{
		{"empty string", String(nil), []byte{0x80}},
		{"dog", String([]byte("dog")), []byte{0x83, 'd', 'o', 'g'}},
		{"single byte", String([]byte{0x0f}), []byte{0x0f}},
		{"byte 0x00", String([]byte{0x00}), []byte{0x00}},
		{"byte 0x7f", String([]byte{0x7f}), []byte{0x7f}},
		{"byte 0x80", String([]byte{0x80}), []byte{0x81, 0x80}},
		{"empty list", List(), []byte{0xc0}},
		{
			"cat dog list",
			List(String([]byte("cat")), String([]byte("dog"))),
			[]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'},
		},
		{
			"set representation [[], [[]], [[], [[]]]]",
			List(List(), List(List()), List(List(), List(List()))),
			[]byte{0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0},
		},
		{
			"56-byte string uses long form",
			String(bytes.Repeat([]byte{'a'}, 56)),
			append([]byte{0xb8, 56}, bytes.Repeat([]byte{'a'}, 56)...),
		},
	}
	for _, tc := range cases {
		got := Encode(tc.item)
		if !bytes.Equal(got, tc.want) {
			t.Errorf("%s: encode = %x, want %x", tc.name, got, tc.want)
		}
		back, err := Decode(tc.want)
		if err != nil {
			t.Errorf("%s: decode: %v", tc.name, err)
			continue
		}
		if !itemsEqual(back, tc.item) {
			t.Errorf("%s: round trip mismatch", tc.name)
		}
	}
}

func TestUintVectors(t *testing.T) {
	cases := []struct {
		v    uint64
		want []byte
	}{
		{0, []byte{0x80}},
		{15, []byte{0x0f}},
		{1024, []byte{0x82, 0x04, 0x00}},
		{0xFFFFFFFF, []byte{0x84, 0xff, 0xff, 0xff, 0xff}},
	}
	for _, tc := range cases {
		got := Encode(Uint(tc.v))
		if !bytes.Equal(got, tc.want) {
			t.Errorf("Uint(%d) = %x, want %x", tc.v, got, tc.want)
		}
		it, err := Decode(tc.want)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		back, err := DecodeUint(it.Str)
		if err != nil || back != tc.v {
			t.Errorf("DecodeUint(%x) = %d, %v; want %d", it.Str, back, err, tc.v)
		}
	}
	if _, err := DecodeUint([]byte{0, 1}); err == nil {
		t.Error("leading zero accepted")
	}
	if _, err := DecodeUint(bytes.Repeat([]byte{1}, 9)); err == nil {
		t.Error("9-byte integer accepted")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty input":               {},
		"truncated short string":    {0x85, 'a', 'b'},
		"truncated long string len": {0xb9, 0x01},
		"truncated list":            {0xc5, 0x83, 'a'},
		"trailing bytes":            {0x80, 0x00},
		"non-canonical single byte": {0x81, 0x05},
		"non-canonical long len":    {0xb8, 0x01, 'x'},
		"long len leading zero":     {0xb9, 0x00, 0x38},
	}
	for name, input := range cases {
		if _, err := Decode(input); err == nil {
			t.Errorf("%s: accepted %x", name, input)
		}
	}
	// Specific error identities for the common cases.
	if _, err := Decode([]byte{0x80, 0x00}); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("trailing error = %v", err)
	}
	if _, err := Decode([]byte{0x85}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated error = %v", err)
	}
}

func randomItem(rng *rand.Rand, depth int) Item {
	if depth == 0 || rng.Intn(2) == 0 {
		n := rng.Intn(70)
		s := make([]byte, n)
		rng.Read(s)
		return String(s)
	}
	n := rng.Intn(5)
	items := make([]Item, n)
	for i := range items {
		items[i] = randomItem(rng, depth-1)
	}
	return Item{K: KindList, List: items}
}

func itemsEqual(a, b Item) bool {
	if a.K != b.K {
		return false
	}
	if a.K == KindString {
		return bytes.Equal(a.Str, b.Str)
	}
	if len(a.List) != len(b.List) {
		return false
	}
	for i := range a.List {
		if !itemsEqual(a.List[i], b.List[i]) {
			return false
		}
	}
	return true
}

// TestRoundTripRandom: encode∘decode is the identity on random nested items.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		it := randomItem(rng, 4)
		back, err := Decode(Encode(it))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !itemsEqual(it, back) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

// TestUintRoundTripQuick covers the integer codec with testing/quick.
func TestUintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		got, err := DecodeUint(Uint(v).Str)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEncodingIsInjective: distinct items must encode distinctly (the MPT
// hashes encodings, so collisions would forge state roots).
func TestEncodingIsInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seen := make(map[string]Item)
	for trial := 0; trial < 2000; trial++ {
		it := randomItem(rng, 3)
		enc := string(Encode(it))
		if prev, ok := seen[enc]; ok {
			if !itemsEqual(prev, it) {
				t.Fatalf("collision: %+v and %+v share encoding %x", prev, it, enc)
			}
		}
		seen[enc] = it
	}
}
