package rlp

import (
	"bytes"
	"testing"
)

// itemEq compares two Items structurally, treating nil and empty as the
// same byte string / list (the decoder is free to return either).
func itemEq(a, b Item) bool {
	if a.K != b.K {
		return false
	}
	if a.K == KindString {
		return bytes.Equal(a.Str, b.Str)
	}
	if len(a.List) != len(b.List) {
		return false
	}
	for i := range a.List {
		if !itemEq(a.List[i], b.List[i]) {
			return false
		}
	}
	return true
}

// FuzzRLP feeds arbitrary bytes to the decoder; every input it accepts must
// round-trip: re-encoding yields bytes the decoder maps back to the same
// value, and re-encoding is a fixed point (the encoder is canonical). The
// MPT hashes node encodings, so any drift here silently forks state roots.
func FuzzRLP(f *testing.F) {
	f.Add([]byte{0x80})                                   // empty string
	f.Add([]byte{0xc0})                                   // empty list
	f.Add([]byte{0x83, 'd', 'o', 'g'})                    // short string
	f.Add([]byte{0xc4, 0x83, 'c', 'a', 't'})              // nested
	f.Add(Encode(List(Uint(1), String(nil), List())))     // canonical builder output
	f.Add(Encode(String(bytes.Repeat([]byte{0x7f}, 60)))) // long-form string
	f.Fuzz(func(t *testing.T, data []byte) {
		it, err := Decode(data)
		if err != nil {
			return // invalid inputs only need to be rejected cleanly
		}
		enc := Encode(it)
		it2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v (enc=%x)", err, enc)
		}
		if !itemEq(it, it2) {
			t.Fatalf("round-trip changed the value: %#v vs %#v", it, it2)
		}
		if enc2 := Encode(it2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoder is not a fixed point: %x vs %x", enc, enc2)
		}
	})
}
