// Package rlp implements Recursive Length Prefix encoding, the
// serialization format Ethereum-style nodes use for Merkle Patricia Trie
// nodes and canonical structures. The reproduction needs it because the MPT
// (internal/mpt) hashes the RLP encoding of its nodes, exactly as the
// paper's prototype does through its Ethereum-derived state layer.
//
// The value model is deliberately minimal: an Item is either a byte string
// or a list of Items — which is the entire RLP data model. Struct mapping
// layers (as in go-ethereum) are out of scope; the MPT builds Items
// explicitly.
package rlp

import (
	"errors"
	"fmt"
)

// Kind discriminates the two RLP value kinds.
type Kind int

// The RLP value kinds.
const (
	KindString Kind = iota + 1
	KindList
)

// Item is one RLP value: either Str (when K == KindString) or List (when
// K == KindList).
type Item struct {
	K    Kind
	Str  []byte
	List []Item
}

// String builds a byte-string item.
func String(b []byte) Item { return Item{K: KindString, Str: b} }

// List builds a list item.
func List(items ...Item) Item { return Item{K: KindList, List: items} }

// Uint encodes an unsigned integer as a minimal big-endian byte string
// (leading zeros stripped; zero encodes as the empty string), per the RLP
// convention.
func Uint(v uint64) Item {
	if v == 0 {
		return String(nil)
	}
	var buf [8]byte
	n := 0
	for shift := 56; shift >= 0; shift -= 8 {
		b := byte(v >> shift)
		if n == 0 && b == 0 {
			continue
		}
		buf[n] = b
		n++
	}
	return String(buf[:n])
}

// DecodeUint parses a minimal big-endian byte string produced by Uint.
func DecodeUint(b []byte) (uint64, error) {
	if len(b) > 8 {
		return 0, fmt.Errorf("rlp: integer of %d bytes overflows uint64", len(b))
	}
	if len(b) > 0 && b[0] == 0 {
		return 0, errors.New("rlp: integer has leading zero")
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v, nil
}

// Encode serializes an item.
func Encode(it Item) []byte {
	return appendItem(nil, it)
}

func appendItem(dst []byte, it Item) []byte {
	switch it.K {
	case KindString:
		return appendString(dst, it.Str)
	case KindList:
		var payload []byte
		for _, sub := range it.List {
			payload = appendItem(payload, sub)
		}
		dst = appendLength(dst, 0xc0, len(payload))
		return append(dst, payload...)
	default:
		panic(fmt.Sprintf("rlp: encode item of kind %d", it.K))
	}
}

func appendString(dst, s []byte) []byte {
	if len(s) == 1 && s[0] < 0x80 {
		return append(dst, s[0])
	}
	dst = appendLength(dst, 0x80, len(s))
	return append(dst, s...)
}

func appendLength(dst []byte, base byte, length int) []byte {
	if length < 56 {
		return append(dst, base+byte(length))
	}
	var buf [8]byte
	n := 0
	for shift := 56; shift >= 0; shift -= 8 {
		b := byte(uint64(length) >> shift)
		if n == 0 && b == 0 {
			continue
		}
		buf[n] = b
		n++
	}
	dst = append(dst, base+55+byte(n))
	return append(dst, buf[:n]...)
}

// Decoding errors.
var (
	ErrTrailingBytes = errors.New("rlp: trailing bytes after value")
	ErrTruncated     = errors.New("rlp: input truncated")
	ErrNonCanonical  = errors.New("rlp: non-canonical encoding")
)

// Decode parses exactly one item from b, rejecting trailing bytes.
func Decode(b []byte) (Item, error) {
	it, rest, err := decodeItem(b)
	if err != nil {
		return Item{}, err
	}
	if len(rest) != 0 {
		return Item{}, ErrTrailingBytes
	}
	return it, nil
}

func decodeItem(b []byte) (Item, []byte, error) {
	if len(b) == 0 {
		return Item{}, nil, ErrTruncated
	}
	tag := b[0]
	switch {
	case tag < 0x80: // single byte
		return String(b[:1]), b[1:], nil
	case tag <= 0xb7: // short string
		n := int(tag - 0x80)
		if len(b) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		s := b[1 : 1+n]
		if n == 1 && s[0] < 0x80 {
			return Item{}, nil, ErrNonCanonical // should have been a single byte
		}
		return String(s), b[1+n:], nil
	case tag <= 0xbf: // long string
		return decodeLong(b, tag-0xb7, false)
	case tag <= 0xf7: // short list
		n := int(tag - 0xc0)
		if len(b) < 1+n {
			return Item{}, nil, ErrTruncated
		}
		items, err := decodeListPayload(b[1 : 1+n])
		if err != nil {
			return Item{}, nil, err
		}
		return Item{K: KindList, List: items}, b[1+n:], nil
	default: // long list
		return decodeLong(b, tag-0xf7, true)
	}
}

func decodeLong(b []byte, lenOfLen byte, isList bool) (Item, []byte, error) {
	n := int(lenOfLen)
	if len(b) < 1+n {
		return Item{}, nil, ErrTruncated
	}
	lenBytes := b[1 : 1+n]
	if lenBytes[0] == 0 {
		return Item{}, nil, ErrNonCanonical
	}
	var length uint64
	for _, c := range lenBytes {
		if length > (1<<56)-1 {
			return Item{}, nil, fmt.Errorf("rlp: length overflow")
		}
		length = length<<8 | uint64(c)
	}
	if length < 56 {
		return Item{}, nil, ErrNonCanonical // should have used short form
	}
	body := b[1+n:]
	if uint64(len(body)) < length {
		return Item{}, nil, ErrTruncated
	}
	payload, rest := body[:length], body[length:]
	if !isList {
		return String(payload), rest, nil
	}
	items, err := decodeListPayload(payload)
	if err != nil {
		return Item{}, nil, err
	}
	return Item{K: KindList, List: items}, rest, nil
}

func decodeListPayload(b []byte) ([]Item, error) {
	var items []Item
	for len(b) > 0 {
		it, rest, err := decodeItem(b)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		b = rest
	}
	return items, nil
}
