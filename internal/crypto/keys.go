// Package crypto provides the account-key layer of the reproduction:
// Ed25519 keypairs derived deterministically from seeds, account addresses
// bound to public keys, and transaction signing/verification.
//
// The paper's prototype inherits secp256k1/Keccak from its Ethereum-derived
// stack; this reproduction substitutes Ed25519 + SHA-256 from the standard
// library (DESIGN.md substitution rules). Everything the system relies on
// is preserved: unforgeable transaction authorization bound to the sender
// address, and deterministic verification at every node.
package crypto

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/nezha-dag/nezha/internal/types"
)

// Signature layout: 32-byte public key followed by the 64-byte Ed25519
// signature. The public key rides along because addresses are one-way
// hashes of it.
const (
	pubKeyLen = ed25519.PublicKeySize
	sigLen    = ed25519.SignatureSize
	// SigBytes is the total length of a transaction signature blob.
	SigBytes = pubKeyLen + sigLen
)

// Verification errors.
var (
	ErrBadSignature = errors.New("crypto: signature verification failed")
	ErrWrongSender  = errors.New("crypto: signer does not own the sender address")
)

// Key is an account keypair.
type Key struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	addr types.Address
}

// KeyFromSeed derives a keypair from a 32-byte seed. Identical seeds yield
// identical keys on every node — what the deterministic test networks and
// workload generators need.
func KeyFromSeed(seed [32]byte) *Key {
	priv := ed25519.NewKeyFromSeed(seed[:])
	pub := priv.Public().(ed25519.PublicKey)
	return &Key{priv: priv, pub: pub, addr: AddressOfPub(pub)}
}

// KeyForAccount derives the canonical keypair of a numeric account id, the
// mapping the SmallBank workload uses.
func KeyForAccount(n uint64) *Key {
	seed := types.HashConcat([]byte("account-key"), binary.BigEndian.AppendUint64(nil, n))
	return KeyFromSeed(seed)
}

// Address returns the account address owned by the key.
func (k *Key) Address() types.Address { return k.addr }

// AddressOfPub hashes a public key into its account address (first 20 bytes
// of SHA-256, the Ethereum convention modulo the hash function).
func AddressOfPub(pub ed25519.PublicKey) types.Address {
	h := types.HashBytes(pub)
	var a types.Address
	copy(a[:], h[:types.AddressLen])
	return a
}

// SignTx signs the transaction's canonical content and installs the
// signature blob. The transaction's From must already be the signer's
// address (Sign does not overwrite it; mismatches surface at verification).
func (k *Key) SignTx(tx *types.Transaction) {
	sig := ed25519.Sign(k.priv, tx.SigningContent())
	blob := make([]byte, 0, SigBytes)
	blob = append(blob, k.pub...)
	blob = append(blob, sig...)
	tx.Sig = blob
}

// VerifyTx checks that the transaction carries a valid signature from the
// owner of its From address.
func VerifyTx(tx *types.Transaction) error {
	if len(tx.Sig) != SigBytes {
		return fmt.Errorf("%w: signature blob is %d bytes, want %d", ErrBadSignature, len(tx.Sig), SigBytes)
	}
	pub := ed25519.PublicKey(tx.Sig[:pubKeyLen])
	sig := tx.Sig[pubKeyLen:]
	if AddressOfPub(pub) != tx.From {
		return fmt.Errorf("%w: %s", ErrWrongSender, tx.From)
	}
	if !ed25519.Verify(pub, tx.SigningContent(), sig) {
		return ErrBadSignature
	}
	return nil
}
