package crypto

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/nezha-dag/nezha/internal/types"
)

func TestKeyDeterministicFromSeed(t *testing.T) {
	var seed [32]byte
	seed[0] = 7
	k1, k2 := KeyFromSeed(seed), KeyFromSeed(seed)
	if k1.Address() != k2.Address() {
		t.Fatal("same seed yields different addresses")
	}
	seed[0] = 8
	if KeyFromSeed(seed).Address() == k1.Address() {
		t.Fatal("different seeds collided")
	}
	if KeyForAccount(1).Address() == KeyForAccount(2).Address() {
		t.Fatal("account keys collided")
	}
	if KeyForAccount(1).Address() != KeyForAccount(1).Address() {
		t.Fatal("account key not deterministic")
	}
}

func signedTx(k *Key) *types.Transaction {
	tx := &types.Transaction{
		From: k.Address(), To: types.AddressFromUint64(9),
		Nonce: 1, Value: 5, Gas: 1000, Payload: []byte{1, 2, 3},
	}
	k.SignTx(tx)
	return tx
}

func TestSignAndVerify(t *testing.T) {
	k := KeyForAccount(42)
	tx := signedTx(k)
	if err := VerifyTx(tx); err != nil {
		t.Fatal(err)
	}
	if len(tx.Sig) != SigBytes {
		t.Fatalf("sig blob %d bytes", len(tx.Sig))
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	k := KeyForAccount(1)

	// Content tampering: any signed field change invalidates.
	mutations := []func(*types.Transaction){
		func(tx *types.Transaction) { tx.To = types.AddressFromUint64(99) },
		func(tx *types.Transaction) { tx.Nonce++ },
		func(tx *types.Transaction) { tx.Value++ },
		func(tx *types.Transaction) { tx.Gas++ },
		func(tx *types.Transaction) { tx.Payload[0] ^= 1 },
	}
	for i, mutate := range mutations {
		tx := signedTx(k)
		mutate(tx)
		if err := VerifyTx(tx); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("mutation %d: err = %v", i, err)
		}
	}

	// Signature bit flip.
	tx := signedTx(k)
	tx.Sig[SigBytes-1] ^= 1
	if err := VerifyTx(tx); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("flipped sig: %v", err)
	}

	// Truncated blob.
	tx = signedTx(k)
	tx.Sig = tx.Sig[:10]
	if err := VerifyTx(tx); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("short sig: %v", err)
	}

	// Wrong sender: a valid signature from a key that does not own From.
	other := KeyForAccount(2)
	tx = signedTx(k)
	other.SignTx(tx) // signs honestly, but From is k's address
	if err := VerifyTx(tx); !errors.Is(err, ErrWrongSender) {
		t.Fatalf("wrong sender: %v", err)
	}
}

// TestSignVerifyQuick: signing then verifying succeeds for arbitrary
// payloads and account ids.
func TestSignVerifyQuick(t *testing.T) {
	f := func(acct uint64, payload []byte, nonce uint64) bool {
		k := KeyForAccount(acct)
		tx := &types.Transaction{From: k.Address(), Nonce: nonce, Payload: payload}
		k.SignTx(tx)
		return VerifyTx(tx) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
