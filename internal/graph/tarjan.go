package graph

// SCCs returns the strongly connected components of the graph using an
// iterative formulation of Tarjan's algorithm (the recursive textbook form
// overflows the stack on the adversarial high-skew workloads of the paper's
// Fig. 9, where one component can span thousands of transactions).
//
// Components are emitted in reverse topological order (Tarjan's natural
// output); vertices inside each component are sorted ascending for
// determinism by the caller if needed — the raw pop order is preserved here
// because Johnson's algorithm does not care.
func (g *Directed) SCCs() [][]int {
	const unvisited = -1

	index := make([]int, g.n)
	lowlink := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}

	var (
		counter int
		stack   []int // Tarjan's component stack
		sccs    [][]int
	)

	// frame emulates the recursion: v is the vertex, ei the index of the
	// next out-edge to explore.
	type frame struct {
		v  int
		ei int
	}

	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		call := []frame{{v: root}}
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			// All edges of v explored: close the frame.
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

// NontrivialSCCs returns only the components that can contain cycles:
// components with more than one vertex, plus single vertices with a
// self-loop.
func (g *Directed) NontrivialSCCs() [][]int {
	var out [][]int
	for _, comp := range g.SCCs() {
		if len(comp) > 1 || g.HasEdge(comp[0], comp[0]) {
			out = append(out, comp)
		}
	}
	return out
}
