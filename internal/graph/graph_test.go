package graph

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func TestAddEdgeDeduplicates(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.OutDegree(0) != 2 || g.InDegree(1) != 1 || g.InDegree(0) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDirected(2).AddEdge(0, 5)
}

func TestTopoSortLinear(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(3, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 0)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("acyclic graph reported cyclic")
	}
	want := []int{3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortTieBreaksBySmallestID(t *testing.T) {
	g := NewDirected(5)
	g.AddEdge(4, 0)
	// 1, 2, 3, 4 all start with zero in-degree: expect ascending output.
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("reported cyclic")
	}
	want := []int{1, 2, 3, 4, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
	if !g.HasCycle() {
		t.Fatal("HasCycle false on a cycle")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone mutated original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone missing edge")
	}
}

func sortComponents(comps [][]int) {
	for _, c := range comps {
		sort.Ints(c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
}

func TestSCCs(t *testing.T) {
	// Two 3-cycles bridged by one edge, plus an isolated vertex.
	g := NewDirected(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	comps := g.SCCs()
	sortComponents(comps)
	want := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	if len(comps) != len(want) {
		t.Fatalf("got %d components, want %d: %v", len(comps), len(want), comps)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestNontrivialSCCs(t *testing.T) {
	g := NewDirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 2) // self-loop counts
	comps := g.NontrivialSCCs()
	sortComponents(comps)
	if len(comps) != 2 {
		t.Fatalf("got %d nontrivial components: %v", len(comps), comps)
	}
	if comps[0][0] != 0 || comps[0][1] != 1 || comps[1][0] != 2 {
		t.Fatalf("components = %v", comps)
	}
}

func TestSCCsIterativeOnDeepChain(t *testing.T) {
	// A 200k-vertex cycle would blow a recursive Tarjan's goroutine stack
	// budget in one frame burst; the iterative version must handle it.
	const n = 200_000
	g := NewDirected(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	comps := g.SCCs()
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("giant cycle not one component: %d comps", len(comps))
	}
}

func collectCycles(t *testing.T, g *Directed, limit int) [][]int {
	t.Helper()
	var cycles [][]int
	err := g.ElementaryCycles(limit, func(c []int) {
		cp := make([]int, len(c))
		copy(cp, c)
		cycles = append(cycles, cp)
	})
	if err != nil {
		t.Fatalf("ElementaryCycles: %v", err)
	}
	return cycles
}

func TestElementaryCyclesSimple(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(1, 0)
	cycles := collectCycles(t, g, 0)
	if len(cycles) != 2 {
		t.Fatalf("got %d cycles, want 2: %v", len(cycles), cycles)
	}
}

func TestElementaryCyclesSelfLoop(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	cycles := collectCycles(t, g, 0)
	if len(cycles) != 1 || len(cycles[0]) != 1 || cycles[0][0] != 0 {
		t.Fatalf("self-loop cycles = %v", cycles)
	}
}

func TestElementaryCyclesCompleteGraph(t *testing.T) {
	// K4 has 20 elementary circuits: C(4,2)=6 2-cycles, 8 3-cycles,
	// 6 4-cycles.
	g := NewDirected(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	cycles := collectCycles(t, g, 0)
	if len(cycles) != 20 {
		t.Fatalf("K4 cycles = %d, want 20", len(cycles))
	}
	count, err := g.CountCycles(0)
	if err != nil || count != 20 {
		t.Fatalf("CountCycles = %d, %v", count, err)
	}
}

func TestElementaryCyclesLimit(t *testing.T) {
	g := NewDirected(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	count, err := g.CountCycles(5)
	if !errors.Is(err, ErrTooManyCycles) {
		t.Fatalf("err = %v, want ErrTooManyCycles", err)
	}
	if count != 6 { // limit+1 cycles observed before stopping
		t.Fatalf("count = %d, want 6", count)
	}
}

func TestElementaryCyclesAcyclic(t *testing.T) {
	g := NewDirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	if cycles := collectCycles(t, g, 0); len(cycles) != 0 {
		t.Fatalf("acyclic graph produced cycles: %v", cycles)
	}
}

// cycleCanonical rotates a cycle so its minimal vertex comes first,
// providing a set-comparable form.
func cycleCanonical(c []int) string {
	minIdx := 0
	for i, v := range c {
		if v < c[minIdx] {
			minIdx = i
		}
	}
	out := make([]byte, 0, len(c)*3)
	for i := 0; i < len(c); i++ {
		v := c[(minIdx+i)%len(c)]
		out = append(out, byte('0'+v/100), byte('0'+(v/10)%10), byte('0'+v%10))
	}
	return string(out)
}

// bruteForceCycles enumerates elementary circuits by trying every start
// vertex and DFS-ing simple paths back to it, keeping each cycle only when
// the start is its minimal vertex (so each circuit is counted once).
func bruteForceCycles(g *Directed) map[string]bool {
	out := make(map[string]bool)
	n := g.N()
	var path []int
	onPath := make([]bool, n)
	var dfs func(start, v int)
	dfs = func(start, v int) {
		path = append(path, v)
		onPath[v] = true
		for _, w := range g.Out(v) {
			if w == start {
				out[cycleCanonical(path)] = true
			} else if !onPath[w] && w > start {
				dfs(start, w)
			}
		}
		onPath[v] = false
		path = path[:len(path)-1]
	}
	for s := 0; s < n; s++ {
		dfs(s, s)
	}
	return out
}

// TestElementaryCyclesAgainstBruteForce cross-checks Johnson against a
// brute-force DFS enumeration on random graphs.
func TestElementaryCyclesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		g := NewDirected(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(i, j)
				}
			}
		}
		want := bruteForceCycles(g)
		got := make(map[string]bool)
		err := g.ElementaryCycles(0, func(c []int) {
			key := cycleCanonical(c)
			if got[key] {
				t.Fatalf("trial %d: duplicate cycle %v", trial, c)
			}
			got[key] = true
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: johnson found %d cycles, brute force %d", trial, len(got), len(want))
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("trial %d: cycle %q missed by johnson", trial, key)
			}
		}
	}
}

// TestIntMinHeapProperty drives the heap through random interleaved
// push/pop sequences against a sorted-slice oracle. (A sift-down bug in an
// earlier version of this heap silently produced valid-looking but
// non-minimal pops, breaking cross-node determinism — hence the paranoia.)
func TestIntMinHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		var h IntMinHeap
		var vals []int
		for i := 0; i < 60; i++ {
			if rng.Intn(3) > 0 || h.Len() == 0 {
				v := rng.Intn(100)
				h.Push(v)
				vals = append(vals, v)
			} else {
				got := h.Pop()
				sort.Ints(vals)
				if got != vals[0] {
					t.Fatalf("trial %d: pop = %d, want %d", trial, got, vals[0])
				}
				vals = vals[1:]
			}
		}
		sort.Ints(vals)
		for _, want := range vals {
			if got := h.Pop(); got != want {
				t.Fatalf("trial %d drain: pop = %d, want %d", trial, got, want)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("trial %d: heap not empty after drain", trial)
		}
	}
}
