package graph

import "errors"

// ErrTooManyCycles is returned by ElementaryCycles when the enumeration
// exceeds the caller's limit. The paper observes exactly this failure mode
// in the CG baseline: at skew ≥ 0.8 the number of elementary circuits grows
// so fast that "the CG process fails due to being out of memory" (§VI-B).
// A limit lets the harness reproduce the collapse without taking the
// benchmark machine down with it.
var ErrTooManyCycles = errors.New("graph: elementary cycle limit exceeded")

// ElementaryCycles enumerates the elementary circuits of the graph with
// Johnson's algorithm, invoking fn once per cycle with the vertex sequence
// (the slice is reused; callers must copy if they retain it). Enumeration
// stops early with ErrTooManyCycles once more than limit cycles have been
// produced; limit <= 0 means unlimited.
//
// Complexity is O((V+E)(c+1)) for c circuits — the cost the paper charges
// against Fabric++/FabricSharp-style conflict graphs.
func (g *Directed) ElementaryCycles(limit int, fn func(cycle []int)) error {
	j := &johnson{g: g, limit: limit, fn: fn}
	return j.run()
}

// CountCycles returns the number of elementary circuits, stopping at limit.
func (g *Directed) CountCycles(limit int) (int, error) {
	count := 0
	err := g.ElementaryCycles(limit, func([]int) { count++ })
	return count, err
}

type johnson struct {
	g     *Directed
	limit int
	fn    func([]int)

	blocked []bool
	bmap    []map[int]bool // B-lists: bmap[w] holds vertices to unblock when w unblocks
	stack   []int
	found   int

	// sub is the adjacency of the current SCC-induced subgraph restricted
	// to vertices >= s.
	sub   [][]int
	inSCC []bool
}

func (j *johnson) run() error {
	n := j.g.n
	j.blocked = make([]bool, n)
	j.bmap = make([]map[int]bool, n)
	j.inSCC = make([]bool, n)
	j.sub = make([][]int, n)

	for s := 0; s < n; s++ {
		comp := j.leastSCC(s)
		if comp == nil {
			continue
		}
		for _, v := range comp {
			j.inSCC[v] = true
		}
		// Build the induced subgraph once per start vertex.
		for _, v := range comp {
			outs := j.sub[v][:0]
			for _, w := range j.g.adj[v] {
				if w >= s && j.inSCC[w] {
					outs = append(outs, w)
				}
			}
			j.sub[v] = outs
			j.blocked[v] = false
			j.bmap[v] = nil
		}
		if _, err := j.circuit(s, s); err != nil {
			return err
		}
		for _, v := range comp {
			j.inSCC[v] = false
		}
	}
	return nil
}

// leastSCC finds the strongly connected component, within the subgraph
// induced by vertices >= s, that contains s and has a cycle through s.
// Returns nil when s participates in no cycle among the remaining vertices.
func (j *johnson) leastSCC(s int) []int {
	// Run Tarjan on the subgraph of vertices >= s and return s's component
	// if it is nontrivial (or s has a self-loop).
	restricted := restrictedGraph{g: j.g, min: s}
	comp := restricted.sccOf(s)
	if len(comp) > 1 {
		return comp
	}
	if j.g.HasEdge(s, s) {
		return comp
	}
	return nil
}

// circuit is Johnson's CIRCUIT procedure; it reports whether an elementary
// circuit through s was found below v.
func (j *johnson) circuit(v, s int) (bool, error) {
	foundCycle := false
	j.stack = append(j.stack, v)
	j.blocked[v] = true

	for _, w := range j.sub[v] {
		if w == s {
			j.found++
			if j.fn != nil {
				j.fn(j.stack)
			}
			foundCycle = true
			if j.limit > 0 && j.found > j.limit {
				return true, ErrTooManyCycles
			}
		} else if !j.blocked[w] {
			childFound, err := j.circuit(w, s)
			if err != nil {
				return foundCycle, err
			}
			if childFound {
				foundCycle = true
			}
		}
	}

	if foundCycle {
		j.unblock(v)
	} else {
		for _, w := range j.sub[v] {
			if j.bmap[w] == nil {
				j.bmap[w] = make(map[int]bool)
			}
			j.bmap[w][v] = true
		}
	}
	j.stack = j.stack[:len(j.stack)-1]
	return foundCycle, nil
}

func (j *johnson) unblock(v int) {
	j.blocked[v] = false
	//nezha:nondeterminism-ok drains the whole B-set and unblock is idempotent; the resulting blocked state is order-insensitive
	for w := range j.bmap[v] {
		delete(j.bmap[v], w)
		if j.blocked[w] {
			j.unblock(w)
		}
	}
}

// restrictedGraph is a view of g limited to vertices >= min; it exists so
// that leastSCC can run Tarjan without copying the graph per start vertex.
type restrictedGraph struct {
	g   *Directed
	min int
}

// sccOf returns the strongly connected component containing root within the
// restricted view, using the same iterative Tarjan scheme as Directed.SCCs.
func (r restrictedGraph) sccOf(root int) []int {
	const unvisited = -1
	n := r.g.n
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int
	)
	type frame struct {
		v  int
		ei int
	}
	call := []frame{{v: root}}
	index[root] = counter
	lowlink[root] = counter
	counter++
	stack = append(stack, root)
	onStack[root] = true

	var result []int
	for len(call) > 0 {
		f := &call[len(call)-1]
		v := f.v
		if f.ei < len(r.g.adj[v]) {
			w := r.g.adj[v][f.ei]
			f.ei++
			if w < r.min {
				continue
			}
			if index[w] == unvisited {
				index[w] = counter
				lowlink[w] = counter
				counter++
				stack = append(stack, w)
				onStack[w] = true
				call = append(call, frame{v: w})
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
			continue
		}
		call = call[:len(call)-1]
		if len(call) > 0 {
			parent := call[len(call)-1].v
			if lowlink[v] < lowlink[parent] {
				lowlink[parent] = lowlink[v]
			}
		}
		if lowlink[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			for _, u := range comp {
				if u == root {
					result = comp
				}
			}
			if result != nil {
				return result
			}
		}
	}
	return result
}
