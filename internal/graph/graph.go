// Package graph provides the directed-graph algorithms the reproduction
// needs, implemented from scratch on a compact adjacency representation:
//
//   - Tarjan's strongly-connected-components algorithm [Tarjan 1972], used
//     by the CG baseline to localize cycles before enumerating them.
//   - Johnson's elementary-circuit enumeration [Johnson 1975], the cycle
//     detection step of Fabric++/FabricSharp that the paper's strawman
//     (§III-D) inherits.
//   - Kahn's topological sort, used by the CG baseline for the final serial
//     order and (in optimized form, inside internal/core) by Nezha's
//     sorting-rank division.
//
// Vertices are dense ints [0, n); callers maintain their own mapping to
// transactions or addresses. All algorithms are deterministic: neighbors are
// visited in insertion order and tie-breaks favor smaller vertex ids.
package graph

import "fmt"

// Directed is a mutable directed graph with dense integer vertices.
// Parallel edges are coalesced; self-loops are allowed and reported as
// length-1 cycles.
type Directed struct {
	n   int
	adj [][]int        // out-neighbors, ascending insertion
	in  []int          // in-degree per vertex
	set []map[int]bool // edge membership for O(1) duplicate checks
}

// NewDirected returns a graph with n vertices and no edges.
func NewDirected(n int) *Directed {
	g := &Directed{
		n:   n,
		adj: make([][]int, n),
		in:  make([]int, n),
		set: make([]map[int]bool, n),
	}
	return g
}

// N returns the number of vertices.
func (g *Directed) N() int { return g.n }

// AddEdge inserts the edge u→v if absent. It panics on out-of-range
// vertices: edge endpoints are always program-derived, so a violation is a
// bug, not an input error.
func (g *Directed) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if g.set[u] == nil {
		g.set[u] = make(map[int]bool)
	}
	if g.set[u][v] {
		return
	}
	g.set[u][v] = true
	g.adj[u] = append(g.adj[u], v)
	g.in[v]++
}

// HasEdge reports whether the edge u→v exists.
func (g *Directed) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		return false
	}
	return g.set[u][v]
}

// Out returns the out-neighbors of u in insertion order. The slice is owned
// by the graph; callers must not mutate it.
func (g *Directed) Out(u int) []int { return g.adj[u] }

// OutDegree returns the out-degree of u.
func (g *Directed) OutDegree(u int) int { return len(g.adj[u]) }

// InDegree returns the in-degree of u.
func (g *Directed) InDegree(u int) int { return g.in[u] }

// EdgeCount returns the total number of edges.
func (g *Directed) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// Clone returns a deep copy of the graph.
func (g *Directed) Clone() *Directed {
	c := NewDirected(g.n)
	for u, outs := range g.adj {
		for _, v := range outs {
			c.AddEdge(u, v)
		}
	}
	return c
}

// TopoSort returns a topological order of the graph using Kahn's algorithm,
// breaking ties toward the smallest vertex id (a deterministic order is
// required for cross-node schedule agreement). The second result is false if
// the graph contains a cycle; the returned prefix then covers only the
// vertices outside cycles reachable before the first stall.
func (g *Directed) TopoSort() ([]int, bool) {
	indeg := make([]int, g.n)
	copy(indeg, g.in)
	// A min-heap keyed by vertex id keeps tie-breaking deterministic.
	var h IntMinHeap
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			h.Push(v)
		}
	}
	order := make([]int, 0, g.n)
	for h.Len() > 0 {
		u := h.Pop()
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				h.Push(v)
			}
		}
	}
	return order, len(order) == g.n
}

// HasCycle reports whether the graph contains at least one cycle.
func (g *Directed) HasCycle() bool {
	_, ok := g.TopoSort()
	return !ok
}

// IntMinHeap is a minimal binary min-heap of ints. It avoids
// container/heap's interface indirection in the hot sorting paths of both
// Kahn's algorithm here and Nezha's rank division. The zero value is an
// empty heap ready for use.
type IntMinHeap struct{ a []int }

// Len returns the number of elements.
func (h *IntMinHeap) Len() int { return len(h.a) }

// Push inserts x.
func (h *IntMinHeap) Push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

// Pop removes and returns the minimum; it panics on an empty heap.
func (h *IntMinHeap) Pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.a) && h.a[l] < h.a[smallest] {
			smallest = l
		}
		if r < len(h.a) && h.a[r] < h.a[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}
