// Package occda implements OCC-DA, a dependency-aware hybrid between the
// plain OCC baseline (internal/occ) and Nezha's sorting-based control
// (internal/core): a first optimistic pass commits transactions in block
// order exactly like OCC, but leaves sequence-number gaps; a second rescue
// pass then revisits each OCC victim and tries to slot it into a gap that
// respects every read-write dependency against the already-committed set,
// instead of aborting it outright. The scheme quantifies how much of plain
// OCC's abort rate (the "more than 40%" the paper cites as its motivation)
// is recoverable with per-victim dependency analysis alone — no conflict
// graph, no address sorting — and what that analysis costs relative to
// Nezha's batched approach. Bench tables report it as the third scheme
// next to nezha and cg.
//
// Soundness argument (the invariants core.VerifySchedule enforces): a
// rescued transaction v commits at sequence s only if
//
//	s > every committed reader of each of v's write keys   (lo bound)
//	s < every committed writer of each of v's read keys    (hi bound)
//	s differs from every committed writer of v's write keys
//
// which is precisely "writes sort strictly above other transactions'
// reads, pairwise-distinct writer numbers per key". Reads never constrain
// other reads. The final pass renumbers the surviving sequence numbers
// densely, preserving their relative order (and therefore the commit
// groups), so schedules stay comparable across schemes.
package occda

import (
	"sort"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

// seqStride is the gap left between consecutive pass-1 commits. Rescue
// slots victims into these gaps; 16 gives each victim fifteen candidate
// positions between any two adjacent survivors before the window closes.
const seqStride = 16

// Scheduler is the OCC-DA hybrid. Stateless and safe for concurrent use.
type Scheduler struct{}

var _ types.Scheduler = (*Scheduler)(nil)

// NewScheduler returns the OCC-DA scheduler.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Name implements types.Scheduler.
func (s *Scheduler) Name() string { return "occda" }

// keyState tracks the committed footprint of one state key across both
// passes: the highest sequence number any committed transaction read it
// at, the lowest it was written at, and every writer's number (writers
// per key are pairwise distinct; readers may share).
type keyState struct {
	maxRead    types.Seq
	minWrite   types.Seq
	writeTaken []types.Seq // ascending
}

// Schedule implements types.Scheduler.
//
// Pass 1 ("Graph" phase) is the OCC baseline with strided numbering: in
// block order, a transaction commits unless a key it read was written by
// an earlier committed transaction; committed transactions take sequence
// numbers 16, 32, 48, …
//
// Pass 2 ("Cycle" phase) revisits the pass-1 victims in block order. For
// each victim it derives the feasible window [lo, hi] from the committed
// footprint — lo from readers of its write set, hi from writers of its
// read set — and commits it at the smallest number in the window not
// already taken by a writer on any of its write keys. Victims with an
// empty window abort with AbortUnserializable; successful rescues are
// counted in PhaseBreakdown.Rescued and immediately join the committed
// footprint, so later victims see them.
//
// Pass 3 ("Sort" phase) renumbers the committed set densely, preserving
// order and grouping.
func (s *Scheduler) Schedule(sims []*types.SimResult) (*types.Schedule, types.PhaseBreakdown, error) {
	var pb types.PhaseBreakdown
	start := time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule

	sched := types.NewSchedule()
	keys := make(map[types.Key]*keyState)
	stateOf := func(k types.Key) *keyState {
		st := keys[k]
		if st == nil {
			st = &keyState{}
			keys[k] = st
		}
		return st
	}

	// Pass 1: plain OCC in block order, strided numbering.
	var victims []*types.SimResult
	seq := types.Seq(seqStride)
	for _, sim := range sims {
		conflict := false
		for _, r := range sim.Reads {
			if st := keys[r.Key]; st != nil && len(st.writeTaken) > 0 {
				// A read is invalidated by any earlier committed writer
				// of the key — unless that writer is this transaction
				// itself, which cannot happen in a single pass.
				conflict = true
				break
			}
		}
		if conflict {
			victims = append(victims, sim)
			continue
		}
		commitAt(sched, stateOf, sim, seq)
		seq += seqStride
	}
	pb.Graph = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule

	// Pass 2: dependency-aware rescue of the OCC victims.
	start = time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	for _, sim := range victims {
		if got, ok := rescueSlot(keys, sim); ok {
			commitAt(sched, stateOf, sim, got)
			pb.Rescued++
		} else {
			sched.Abort(sim.Tx.ID, types.AbortUnserializable)
		}
	}
	sched.NormalizeAborts()
	pb.Cycle = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule

	// Pass 3: dense renumbering, order- and group-preserving.
	start = time.Now() //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	renumber(sched)
	pb.Sort = time.Since(start) //nezha:nondeterminism-ok wall-clock only feeds the local PhaseBreakdown timings, never the schedule
	return sched, pb, nil
}

// commitAt records the commit and folds the transaction's footprint into
// the per-key state.
func commitAt(sched *types.Schedule, stateOf func(types.Key) *keyState, sim *types.SimResult, seq types.Seq) {
	sched.Commit(sim.Tx.ID, seq)
	for _, r := range sim.Reads {
		st := stateOf(r.Key)
		if seq > st.maxRead {
			st.maxRead = seq
		}
	}
	for _, w := range sim.Writes {
		st := stateOf(w.Key)
		if st.minWrite == 0 || seq < st.minWrite {
			st.minWrite = seq
		}
		i := sort.Search(len(st.writeTaken), func(i int) bool { return st.writeTaken[i] >= seq })
		st.writeTaken = append(st.writeTaken, 0)
		copy(st.writeTaken[i+1:], st.writeTaken[i:])
		st.writeTaken[i] = seq
	}
}

// rescueSlot computes the feasible sequence window for one victim against
// the committed footprint and returns the smallest admissible number, or
// ok=false when the window is empty.
func rescueSlot(keys map[types.Key]*keyState, sim *types.SimResult) (types.Seq, bool) {
	lo := types.Seq(1)
	for _, w := range sim.Writes {
		if st := keys[w.Key]; st != nil && st.maxRead >= lo {
			lo = st.maxRead + 1
		}
	}
	hi := types.Seq(0) // 0 = unbounded
	for _, r := range sim.Reads {
		if st := keys[r.Key]; st != nil && st.minWrite > 0 {
			if st.minWrite == 1 {
				return 0, false // must precede a writer at the floor
			}
			if hi == 0 || st.minWrite-1 < hi {
				hi = st.minWrite - 1
			}
		}
	}
	if hi != 0 && lo > hi {
		return 0, false
	}
	// Smallest s in [lo, hi] not taken by a committed writer on any of the
	// victim's write keys. Each collision bumps s past the colliding
	// writer, so the scan is bounded by the total number of taken slots.
	s := lo
	for {
		collided := false
		for _, w := range sim.Writes {
			st := keys[w.Key]
			if st == nil {
				continue
			}
			i := sort.Search(len(st.writeTaken), func(i int) bool { return st.writeTaken[i] >= s })
			if i < len(st.writeTaken) && st.writeTaken[i] == s {
				s++
				collided = true
				break
			}
		}
		if !collided {
			if hi != 0 && s > hi {
				return 0, false
			}
			return s, true
		}
		if hi != 0 && s > hi {
			return 0, false
		}
	}
}

// renumber maps the committed sequence numbers onto 1..n densely,
// preserving their relative order (equal stays equal, less stays less).
func renumber(sched *types.Schedule) {
	if len(sched.Seqs) == 0 {
		return
	}
	used := make([]types.Seq, 0, len(sched.Seqs))
	for _, seq := range sched.Seqs { //nezha:nondeterminism-ok collecting values for sorting; order is irrelevant
		used = append(used, seq)
	}
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	dense := make(map[types.Seq]types.Seq, len(used))
	next := types.Seq(1)
	for _, seq := range used {
		if _, ok := dense[seq]; !ok {
			dense[seq] = next
			next++
		}
	}
	for id, seq := range sched.Seqs { //nezha:nondeterminism-ok in-place remap; each entry is rewritten independently
		sched.Seqs[id] = dense[seq]
	}
}
