package occda

import (
	"math/rand"
	"testing"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/occ"
	"github.com/nezha-dag/nezha/internal/types"
)

func key(n byte) types.Key {
	var k types.Key
	k[0] = n
	return k
}

func simRW(id types.TxID, reads, writes []types.Key) *types.SimResult {
	sim := &types.SimResult{Tx: &types.Transaction{ID: id}}
	for _, k := range reads {
		sim.Reads = append(sim.Reads, types.ReadEntry{Key: k})
	}
	for _, k := range writes {
		sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(id)}})
	}
	return sim
}

// TestRescuesOCCVictim: the canonical recoverable conflict. Tx 0 writes k;
// tx 1 reads k and writes elsewhere. Plain OCC aborts tx 1; OCC-DA slots
// it below tx 0's write.
func TestRescuesOCCVictim(t *testing.T) {
	k := key(1)
	sims := []*types.SimResult{
		simRW(0, nil, []types.Key{k}),
		simRW(1, []types.Key{k}, []types.Key{key(2)}),
	}
	sched, pb, err := NewScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.IsCommitted(0) || !sched.IsCommitted(1) {
		t.Fatalf("rescue failed: %+v aborted %+v", sched.Seqs, sched.Aborted)
	}
	if pb.Rescued != 1 {
		t.Fatalf("Rescued = %d, want 1", pb.Rescued)
	}
	// The rescued reader must sort below the writer it read under.
	if sched.Seqs[1] >= sched.Seqs[0] {
		t.Fatalf("rescued reader at %d, writer at %d", sched.Seqs[1], sched.Seqs[0])
	}
	if err := core.VerifySchedule(nil, sims, sched); err != nil {
		t.Fatal(err)
	}
}

// TestUnrescuableVictimAborts: a victim squeezed between a reader of its
// write set and a writer of its read set with no gap must still abort.
func TestUnrescuableVictimAborts(t *testing.T) {
	a, b := key(1), key(2)
	sims := []*types.SimResult{
		simRW(0, []types.Key{b}, []types.Key{a}), // reads b, writes a
		simRW(1, []types.Key{a}, []types.Key{b}), // reads a (dirty), writes b
	}
	sched, pb, err := NewScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	// Tx 1 must precede tx 0 (it read a, which 0 wrote) and follow it (it
	// writes b, which 0 read) — an unbreakable cycle.
	if sched.IsCommitted(1) {
		t.Fatalf("unrescuable victim committed at %d", sched.Seqs[1])
	}
	if pb.Rescued != 0 {
		t.Fatalf("Rescued = %d, want 0", pb.Rescued)
	}
	if sched.Aborted[0].Reason != types.AbortUnserializable {
		t.Fatalf("reason = %v", sched.Aborted[0].Reason)
	}
	if err := core.VerifySchedule(nil, sims, sched); err != nil {
		t.Fatal(err)
	}
}

// TestDenseRenumbering: final sequence numbers are 1..n with no gaps,
// regardless of the strided intermediate numbering.
func TestDenseRenumbering(t *testing.T) {
	sims := []*types.SimResult{
		simRW(0, nil, []types.Key{key(1)}),
		simRW(1, []types.Key{key(1)}, []types.Key{key(2)}), // rescued below tx 0
		simRW(2, []types.Key{key(3)}, []types.Key{key(4)}),
	}
	sched, _, err := NewScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[types.Seq]bool)
	max := types.Seq(0)
	for _, seq := range sched.Seqs {
		seen[seq] = true
		if seq > max {
			max = seq
		}
	}
	for s := types.Seq(1); s <= max; s++ {
		if !seen[s] {
			t.Fatalf("gap at seq %d in %v", s, sched.Seqs)
		}
	}
}

// TestSchedulesVerifyOnRandomWorkloads: every schedule OCC-DA produces
// must pass the scheme-agnostic serializability verifier.
func TestSchedulesVerifyOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewScheduler()
	for trial := 0; trial < 60; trial++ {
		snapshot := make(map[types.Key][]byte)
		nKeys := 3 + rng.Intn(20)
		var sims []*types.SimResult
		for i := 0; i < 60; i++ {
			sim := &types.SimResult{Tx: &types.Transaction{ID: types.TxID(i)}}
			seenR := map[types.Key]bool{}
			for r := 0; r < rng.Intn(3); r++ {
				k := types.KeyFromUint64(uint64(rng.Intn(nKeys)))
				if seenR[k] {
					continue
				}
				seenR[k] = true
				snapshot[k] = nil
				sim.Reads = append(sim.Reads, types.ReadEntry{Key: k})
			}
			seenW := map[types.Key]bool{}
			for w := 0; w < 1+rng.Intn(2); w++ {
				k := types.KeyFromUint64(uint64(rng.Intn(nKeys)))
				if seenW[k] {
					continue
				}
				seenW[k] = true
				sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(i)}})
			}
			sims = append(sims, sim)
		}
		sched, _, err := s.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifySchedule(snapshot, sims, sched); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sched.CommittedCount()+sched.AbortedCount() != len(sims) {
			t.Fatalf("trial %d: accounting wrong", trial)
		}
	}
}

// TestAbortsNoMoreThanOCC: on identical workloads the hybrid's abort set
// is a subset of plain OCC's victims — rescue can only help. Under
// contention it must actually rescue someone.
func TestAbortsNoMoreThanOCC(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	plain := occ.NewScheduler()
	hybrid := NewScheduler()
	occTotal, daTotal, rescued := 0, 0, 0
	for trial := 0; trial < 20; trial++ {
		var sims []*types.SimResult
		for i := 0; i < 100; i++ {
			sims = append(sims, simRW(types.TxID(i),
				[]types.Key{key(byte(rng.Intn(8)))},
				[]types.Key{key(byte(rng.Intn(8)))}))
		}
		o, _, err := plain.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		d, pb, err := hybrid.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		if d.AbortedCount() > o.AbortedCount() {
			t.Fatalf("trial %d: occda aborts %d > occ %d", trial, d.AbortedCount(), o.AbortedCount())
		}
		// Every occda abort must be an occ victim too.
		for _, a := range d.Aborted {
			if o.IsCommitted(a.ID) {
				t.Fatalf("trial %d: occda aborted %d, which occ committed", trial, a.ID)
			}
		}
		occTotal += o.AbortedCount()
		daTotal += d.AbortedCount()
		rescued += pb.Rescued
	}
	if rescued == 0 {
		t.Fatal("no victim rescued across 20 contended trials")
	}
	if daTotal >= occTotal {
		t.Fatalf("occda aborts (%d) not below occ (%d) under contention", daTotal, occTotal)
	}
}

// TestPass1MatchesOCCCommitGroups: with no victims the hybrid degenerates
// to plain OCC — serial commit order, identical commit set.
func TestPass1MatchesOCCCommitGroups(t *testing.T) {
	sims := []*types.SimResult{
		simRW(0, []types.Key{key(1)}, []types.Key{key(2)}),
		simRW(1, []types.Key{key(3)}, []types.Key{key(4)}),
		simRW(2, []types.Key{key(5)}, []types.Key{key(6)}),
	}
	sched, pb, err := NewScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Rescued != 0 || sched.AbortedCount() != 0 {
		t.Fatalf("conflict-free epoch rescued/aborted: %+v", sched.Aborted)
	}
	for i, id := range []types.TxID{0, 1, 2} {
		if sched.Seqs[id] != types.Seq(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", id, sched.Seqs[id], i+1)
		}
	}
}

func TestDeterministicAndEmpty(t *testing.T) {
	s := NewScheduler()
	out, _, err := s.Schedule(nil)
	if err != nil || out.CommittedCount() != 0 {
		t.Fatalf("empty: %v", err)
	}
	sims := []*types.SimResult{
		simRW(0, []types.Key{key(1)}, []types.Key{key(2)}),
		simRW(1, []types.Key{key(2)}, []types.Key{key(1)}),
		simRW(2, nil, []types.Key{key(1)}),
		simRW(3, []types.Key{key(1)}, []types.Key{key(3)}),
	}
	a, _, _ := s.Schedule(sims)
	for i := 0; i < 10; i++ {
		b, _, _ := s.Schedule(sims)
		if !a.Equal(b) {
			t.Fatal("occda not deterministic")
		}
	}
	if s.Name() != "occda" {
		t.Fatal("name")
	}
}
