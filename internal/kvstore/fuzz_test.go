package kvstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

type walRec struct {
	op       byte
	key, val []byte
}

// FuzzWAL decodes fuzz input into a sequence of put/delete records, writes
// them through the WAL, and checks the two recovery guarantees replay
// promises: an intact log replays every record byte-for-byte in order, and
// a log truncated at ANY byte offset (the tail a crash leaves) replays a
// clean prefix of the written records — never an error, never a mangled or
// reordered record.
func FuzzWAL(f *testing.F) {
	f.Add([]byte{1, 3, 2, 'k', 'e', 'y', 'v', '2', 2, 1, 0, 'x'}, uint16(0))
	f.Add([]byte{1, 0, 0, 2, 0, 0}, uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "wal")
		w, err := openWAL(path, "")
		if err != nil {
			t.Fatalf("open: %v", err)
		}

		var recs []walRec
		for pos := 0; pos+2 < len(data); {
			op := walOpPut
			if data[pos]%2 == 0 {
				op = walOpDelete
			}
			keyLen := int(data[pos+1] % 9)
			valLen := int(data[pos+2] % 17)
			pos += 3
			key := make([]byte, 0, keyLen)
			for i := 0; i < keyLen; i++ {
				key = append(key, byte(pos+i))
			}
			val := make([]byte, 0, valLen)
			for i := 0; i < valLen; i++ {
				val = append(val, byte(pos+i)^0x5A)
			}
			pos += 1 // advance so consecutive records differ
			if err := w.append(byte(op), key, val); err != nil {
				t.Fatalf("append: %v", err)
			}
			recs = append(recs, walRec{byte(op), key, val})
		}
		if err := w.close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Intact log: replay must reproduce every record exactly and report
		// the whole file as valid.
		var got []walRec
		validLen, err := replayWAL(path, "", func(op byte, key, value []byte) {
			got = append(got, walRec{op, append([]byte(nil), key...), append([]byte(nil), value...)})
		})
		if err != nil {
			t.Fatalf("replay intact: %v", err)
		}
		if fi, err := os.Stat(path); err != nil {
			t.Fatal(err)
		} else if validLen != fi.Size() {
			t.Fatalf("intact log: valid length %d, file size %d", validLen, fi.Size())
		}
		requireRecPrefix(t, recs, got, len(recs))

		// Torn log: truncate at an arbitrary byte offset and replay.
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			return
		}
		torn := filepath.Join(dir, "torn")
		cutAt := int(cut) % (len(raw) + 1)
		if err := os.WriteFile(torn, raw[:cutAt], 0o644); err != nil {
			t.Fatal(err)
		}
		got = nil
		validLen, err = replayWAL(torn, "", func(op byte, key, value []byte) {
			got = append(got, walRec{op, append([]byte(nil), key...), append([]byte(nil), value...)})
		})
		if err != nil {
			t.Fatalf("replay torn: %v", err)
		}
		if validLen > int64(cutAt) {
			t.Fatalf("torn log: valid length %d past the cut at %d", validLen, cutAt)
		}
		requireRecPrefix(t, recs, got, -1)
	})
}

// requireRecPrefix asserts got is a prefix of want; wantLen >= 0 demands an
// exact length too.
func requireRecPrefix(t *testing.T, want, got []walRec, wantLen int) {
	t.Helper()
	if wantLen >= 0 && len(got) != wantLen {
		t.Fatalf("replayed %d records, want %d", len(got), wantLen)
	}
	if len(got) > len(want) {
		t.Fatalf("replay invented records: %d > %d", len(got), len(want))
	}
	for i := range got {
		if got[i].op != want[i].op || !bytes.Equal(got[i].key, want[i].key) || !bytes.Equal(got[i].val, want[i].val) {
			t.Fatalf("record %d mangled: got %+v want %+v", i, got[i], want[i])
		}
	}
}
