package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/metrics"
)

// Live storage counters on the default registry, aggregated across every
// open store in the process.
var (
	mFlushes = metrics.Default().Counter("nezha_lsm_flushes_total",
		"Memtable flushes to a new SSTable.")
	mFlushBytes = metrics.Default().Counter("nezha_lsm_flush_bytes_total",
		"Payload bytes flushed out of memtables.")
	mCompactions = metrics.Default().Counter("nezha_lsm_compactions_total",
		"Full (size-tiered) compactions run.")
	mTables = metrics.Default().Gauge("nezha_lsm_tables",
		"Live SSTables across all open stores.")
	mWALRecords = metrics.Default().Counter("nezha_lsm_wal_records_total",
		"Records appended to write-ahead logs.")
	mWALBytes = metrics.Default().Counter("nezha_lsm_wal_bytes_total",
		"Bytes appended to write-ahead logs (including framing).")
	mWALTornTail = metrics.Default().Counter("nezha_wal_torn_tail_total",
		"Torn WAL tails truncated during replay (the clean prefix an in-flight append leaves at a crash).")
	mWALCorruption = metrics.Default().Counter("nezha_wal_corruption_total",
		"WAL replays rejected for mid-log corruption (ErrWALCorrupt).")
)

// WALTornTails and WALCorruptions expose the process-wide replay-integrity
// counters so harnesses (the crash-point sweep, recovery tests) can assert
// on deltas without scraping the exposition endpoint.
func WALTornTails() float64 { return mWALTornTail.Value() }

// WALCorruptions reports how many WAL replays were rejected with
// ErrWALCorrupt. See WALTornTails.
func WALCorruptions() float64 { return mWALCorruption.Value() }

// LSMOptions tunes the LSM store.
type LSMOptions struct {
	// MemtableBytes is the approximate memtable payload size that
	// triggers a flush to a new SSTable.
	MemtableBytes int
	// CompactAt is the number of SSTables that triggers a full
	// (size-tiered, single-output) compaction.
	CompactAt int
	// FailTag names this store instance for failpoint scoping: armed
	// kvstore/* failpoints with a matching Spec.Tag hit only this store.
	// Empty leaves the store's sites matchable by untagged specs only.
	FailTag string
}

// DefaultLSMOptions returns small-footprint defaults suitable for the
// reproduction's workloads.
func DefaultLSMOptions() LSMOptions {
	return LSMOptions{MemtableBytes: 4 << 20, CompactAt: 6}
}

// LSM is the durable LevelDB-style store: writes land in the WAL and the
// skiplist memtable; full memtables flush to numbered SSTable files; reads
// consult the memtable first and then tables newest-first; compaction
// periodically merges all tables into one. It is safe for concurrent use.
//
// Recovery needs no manifest: live tables are the *.sst files in the
// directory, with higher file numbers taking precedence, and a compaction
// output always carries a higher number than its inputs — so a crash
// between "write merged table" and "remove inputs" leaves a state that
// reads identically.
type LSM struct {
	mu     sync.RWMutex
	opts   LSMOptions
	dir    string
	mem    *skiplist
	log    *wal
	tables []*sstable // ascending file number; later = newer
	nextNo uint64
	closed bool
}

var _ Store = (*LSM)(nil)

// OpenLSM opens (or creates) a store rooted at dir, replaying any
// write-ahead log left by a previous process.
func OpenLSM(dir string, opts LSMOptions) (*LSM, error) {
	if opts.MemtableBytes <= 0 || opts.CompactAt <= 1 {
		return nil, fmt.Errorf("kvstore: invalid LSM options %+v", opts)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: create dir: %w", err)
	}
	s := &LSM{opts: opts, dir: dir, mem: newSkiplist(), nextNo: 1}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: read dir: %w", err)
	}
	var numbers []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		no, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		numbers = append(numbers, no)
	}
	sort.Slice(numbers, func(i, j int) bool { return numbers[i] < numbers[j] })
	for _, no := range numbers {
		t, err := openSSTable(s.tablePath(no))
		if err != nil {
			return nil, err
		}
		s.tables = append(s.tables, t)
		if no >= s.nextNo {
			s.nextNo = no + 1
		}
	}
	mTables.Add(float64(len(s.tables)))

	// Replay the WAL into a fresh memtable, then truncate any torn tail
	// before reopening the same log for append. The truncation matters:
	// appending after leftover garbage would strand every later record
	// behind an unreadable span, which the next recovery must reject as
	// corruption (it cannot tell stranded records from planted ones).
	walPath := filepath.Join(dir, "wal.log")
	validLen, err := replayWAL(walPath, opts.FailTag, func(op byte, key, value []byte) {
		k := append([]byte(nil), key...)
		v := append([]byte(nil), value...)
		s.mem.put(k, v, op == walOpDelete)
	})
	if err != nil {
		return nil, err
	}
	if fi, statErr := os.Stat(walPath); statErr == nil && fi.Size() > validLen {
		if err := os.Truncate(walPath, validLen); err != nil {
			return nil, fmt.Errorf("kvstore: truncate torn wal tail: %w", err)
		}
	}
	s.log, err = openWAL(walPath, opts.FailTag)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (s *LSM) tablePath(no uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%06d.sst", no))
}

// Get implements Store.
func (s *LSM) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if v, tomb, ok := s.mem.get(key); ok {
		if tomb {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	for i := len(s.tables) - 1; i >= 0; i-- {
		v, tomb, ok, err := s.tables[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if tomb {
				return nil, false, nil
			}
			return append([]byte(nil), v...), true, nil
		}
	}
	return nil, false, nil
}

// Put implements Store.
func (s *LSM) Put(key, value []byte) error {
	b := &Batch{}
	b.Put(key, value)
	return s.Apply(b)
}

// Delete implements Store.
func (s *LSM) Delete(key []byte) error {
	b := &Batch{}
	b.Delete(key)
	return s.Apply(b)
}

// Apply implements Store: the batch hits the WAL first, then the memtable,
// and may trigger a flush and compaction.
func (s *LSM) Apply(b *Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// The batch-commit failpoint fires before any op reaches the WAL, so
	// an injected error is clean: nothing of the batch is durable.
	if err := fail.HitTag(fail.KVApply, s.opts.FailTag); err != nil { //nezha:locksafe-ok a delay here models a slow store stalling every caller; error/panic specs unwind past the deferred unlock
		return err
	}
	for _, op := range b.ops {
		walOp := byte(walOpPut)
		if op.delete {
			walOp = walOpDelete
		}
		if err := s.log.append(walOp, op.key, op.value); err != nil {
			return err
		}
	}
	if err := s.log.sync(); err != nil {
		return err
	}
	for _, op := range b.ops {
		s.mem.put(op.key, op.value, op.delete)
	}
	if s.mem.bytes >= s.opts.MemtableBytes {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// flushLocked writes the memtable to a new SSTable, truncates the WAL, and
// compacts when the table count crosses the threshold.
func (s *LSM) flushLocked() error {
	if s.mem.length == 0 {
		return nil
	}
	if err := fail.HitTag(fail.KVFlush, s.opts.FailTag); err != nil {
		return err
	}
	mFlushes.Inc()
	mFlushBytes.Add(float64(s.mem.bytes))
	entries := make([]sstEntry, 0, s.mem.length)
	s.mem.scan(nil, func(key, value []byte, tombstone bool) bool {
		entries = append(entries, sstEntry{key: key, value: value, tombstone: tombstone})
		return true
	})
	no := s.nextNo
	s.nextNo++
	if err := writeSSTable(s.tablePath(no), entries); err != nil {
		return err
	}
	t, err := openSSTable(s.tablePath(no))
	if err != nil {
		return err
	}
	s.tables = append(s.tables, t)
	mTables.Add(1)

	// The memtable is durable in the table now: reset the log.
	if err := s.log.close(); err != nil {
		return err
	}
	walPath := filepath.Join(s.dir, "wal.log")
	if err := os.Remove(walPath); err != nil {
		return fmt.Errorf("kvstore: reset wal: %w", err)
	}
	if s.log, err = openWAL(walPath, s.opts.FailTag); err != nil {
		return err
	}
	s.mem = newSkiplist()

	if len(s.tables) >= s.opts.CompactAt {
		return s.compactLocked()
	}
	return nil
}

// compactLocked merges every table into one, dropping shadowed versions and
// tombstones (a full compaction may discard tombstones because no older
// table remains underneath).
func (s *LSM) compactLocked() error {
	if err := fail.HitTag(fail.KVCompact, s.opts.FailTag); err != nil {
		return err
	}
	merged := make(map[string]sstEntry)
	// Oldest to newest: later tables overwrite.
	for _, t := range s.tables {
		err := t.scan(nil, func(e sstEntry) bool {
			merged[string(e.key)] = e
			return true
		})
		if err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.tombstone {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	entries := make([]sstEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, merged[k])
	}

	no := s.nextNo
	s.nextNo++
	if err := writeSSTable(s.tablePath(no), entries); err != nil {
		return err
	}
	t, err := openSSTable(s.tablePath(no))
	if err != nil {
		return err
	}
	old := s.tables
	s.tables = []*sstable{t}
	mCompactions.Inc()
	mTables.Add(float64(1 - len(old))) // the merged output replaced len(old) inputs
	for _, o := range old {
		if err := os.Remove(o.path); err != nil {
			return fmt.Errorf("kvstore: remove compacted table: %w", err)
		}
	}
	return nil
}

// Iter implements Store with a k-way merge across the memtable and all
// tables, newest version winning, tombstones masking.
func (s *LSM) Iter(start, end []byte, fn func(key, value []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	// Materialize the visible range. Simpler than a streaming merge and
	// adequate for the ranges the reproduction scans (state flushes and
	// tests); the memtable and tables are immutable snapshots under RLock.
	merged := make(map[string]sstEntry)
	for _, t := range s.tables {
		err := t.scan(start, func(e sstEntry) bool {
			if end != nil && bytes.Compare(e.key, end) >= 0 {
				return false
			}
			merged[string(e.key)] = e
			return true
		})
		if err != nil {
			s.mu.RUnlock()
			return err
		}
	}
	s.mem.scan(start, func(key, value []byte, tombstone bool) bool {
		if end != nil && bytes.Compare(key, end) >= 0 {
			return false
		}
		merged[string(key)] = sstEntry{key: key, value: value, tombstone: tombstone}
		return true
	})
	s.mu.RUnlock()

	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.tombstone {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), merged[k].value) {
			return nil
		}
	}
	return nil
}

// Flush forces the memtable to disk; exposed so the node can persist state
// at epoch boundaries and tests can exercise the table path.
func (s *LSM) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// TableCount reports how many SSTables are live (test instrumentation).
func (s *LSM) TableCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables)
}

// Close implements Store.
func (s *LSM) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	mTables.Add(-float64(len(s.tables)))
	return s.log.close()
}
