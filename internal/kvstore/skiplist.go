package kvstore

import (
	"bytes"
	"math/rand"
)

// skiplist is the LSM memtable: a probabilistic ordered map from byte-string
// keys to values, the classic LevelDB/RocksDB memtable structure. A nil
// value slice paired with tombstone=true records a deletion that must mask
// older SSTable entries.
//
// The list is NOT internally synchronized; the owning LSM store serializes
// access.
type skiplist struct {
	head   *skipNode
	rng    *rand.Rand
	level  int
	length int
	bytes  int // approximate payload size, drives memtable flush
}

const skipMaxLevel = 16

type skipNode struct {
	key       []byte
	value     []byte
	tombstone bool
	next      [skipMaxLevel]*skipNode
}

// newSkiplist returns an empty memtable. The tower-height RNG is seeded
// deterministically: the structure (not just content) of a run is then
// reproducible, which keeps benchmark variance down.
func newSkiplist() *skiplist {
	return &skiplist{head: &skipNode{}, rng: rand.New(rand.NewSource(0xdecaf)), level: 1}
}

func (s *skiplist) randomLevel() int {
	level := 1
	for level < skipMaxLevel && s.rng.Intn(4) == 0 {
		level++
	}
	return level
}

// put inserts or replaces key. tombstone marks a deletion record.
func (s *skiplist) put(key, value []byte, tombstone bool) {
	var update [skipMaxLevel]*skipNode
	node := s.head
	for i := s.level - 1; i >= 0; i-- {
		for node.next[i] != nil && bytes.Compare(node.next[i].key, key) < 0 {
			node = node.next[i]
		}
		update[i] = node
	}
	target := node.next[0]
	if target != nil && bytes.Equal(target.key, key) {
		s.bytes += len(value) - len(target.value)
		target.value = value
		target.tombstone = tombstone
		return
	}
	level := s.randomLevel()
	if level > s.level {
		for i := s.level; i < level; i++ {
			update[i] = s.head
		}
		s.level = level
	}
	fresh := &skipNode{key: key, value: value, tombstone: tombstone}
	for i := 0; i < level; i++ {
		fresh.next[i] = update[i].next[i]
		update[i].next[i] = fresh
	}
	s.length++
	s.bytes += len(key) + len(value) + 48 // node overhead estimate
}

// get returns the entry for key. ok is false when the key has no record at
// all; tombstone is true when the newest record is a deletion.
func (s *skiplist) get(key []byte) (value []byte, tombstone, ok bool) {
	node := s.head
	for i := s.level - 1; i >= 0; i-- {
		for node.next[i] != nil && bytes.Compare(node.next[i].key, key) < 0 {
			node = node.next[i]
		}
	}
	node = node.next[0]
	if node == nil || !bytes.Equal(node.key, key) {
		return nil, false, false
	}
	return node.value, node.tombstone, true
}

// scan walks entries with key >= start in order, including tombstones.
func (s *skiplist) scan(start []byte, fn func(key, value []byte, tombstone bool) bool) {
	node := s.head
	for i := s.level - 1; i >= 0; i-- {
		for node.next[i] != nil && bytes.Compare(node.next[i].key, start) < 0 {
			node = node.next[i]
		}
	}
	for node = node.next[0]; node != nil; node = node.next[0] {
		if !fn(node.key, node.value, node.tombstone) {
			return
		}
	}
}
