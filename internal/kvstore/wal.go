package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"github.com/nezha-dag/nezha/internal/fail"
)

// wal is the write-ahead log making memtable contents durable before they
// reach an SSTable. Record format:
//
//	crc32(le, 4B) | type(1B) | keyLen(uvarint) | valLen(uvarint) | key | val
//
// The CRC covers everything after itself. Replay classifies damage rather
// than truncating silently: a clean torn tail — the record prefix an
// in-flight append leaves when the process dies — is counted, truncated by
// the caller, and survived, while mid-log corruption is rejected with
// ErrWALCorrupt. See replayWAL for the classification contract.
type wal struct {
	f *os.File
	w *bufio.Writer
	// tag scopes this log's failpoints to its owning store (see
	// LSMOptions.FailTag).
	tag string
}

const (
	walOpPut    = 1
	walOpDelete = 2
)

// ErrWALCorrupt reports mid-log write-ahead-log corruption: a record whose
// CRC fails with its bytes fully present, a record carrying an impossible
// length, or an unreadable span followed by an intact record — shapes a
// crash tear cannot produce, because a tear always leaves a clean prefix.
// Recovery refuses to guess which records survive and fails loudly instead.
var ErrWALCorrupt = errors.New("kvstore: wal corrupt")

// errWALTruncated marks a record cut off by end-of-file during parsing —
// the shape of a torn tail, pending the intact-records-after check that
// distinguishes it from corruption.
var errWALTruncated = errors.New("record truncated by end of file")

func openWAL(path, tag string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f), tag: tag}, nil
}

// append writes one record. Sync durability is left to the caller (sync).
func (w *wal) append(op byte, key, value []byte) error {
	if err := fail.HitTag(fail.KVWALAppend, w.tag); err != nil {
		return err
	}
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	payload = append(payload, op)
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = binary.AppendUvarint(payload, uint64(len(value)))
	payload = append(payload, key...)
	payload = append(payload, value...)

	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(crc[:]); err != nil {
		return fmt.Errorf("kvstore: wal write: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("kvstore: wal write: %w", err)
	}
	mWALRecords.Inc()
	mWALBytes.Add(float64(len(crc) + len(payload)))
	return nil
}

// sync flushes buffered records to the OS. (fsync is intentionally skipped:
// the reproduction trades disk-crash durability for benchmark throughput,
// like LevelDB's default write options.)
func (w *wal) sync() error {
	if err := fail.HitTag(fail.KVWALSync, w.tag); err != nil {
		return err
	}
	return w.w.Flush()
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// parseWALRecord decodes one record at the start of b, returning the
// record's total encoded size. n == 0 with a nil error means b is empty —
// the clean end of the log. errWALTruncated means the record runs past the
// end of b; any other error describes damage with the bytes fully present.
func parseWALRecord(b []byte) (op byte, key, value []byte, n int, err error) {
	if len(b) == 0 {
		return 0, nil, nil, 0, nil
	}
	if len(b) < 5 {
		return 0, nil, nil, 0, errWALTruncated
	}
	crc := binary.LittleEndian.Uint32(b[:4])
	op = b[4]
	p := 5
	keyLen, kn := binary.Uvarint(b[p:])
	if kn == 0 {
		return 0, nil, nil, 0, errWALTruncated
	}
	if kn < 0 {
		return 0, nil, nil, 0, errors.New("key length varint overflows uint64")
	}
	p += kn
	valLen, vn := binary.Uvarint(b[p:])
	if vn == 0 {
		return 0, nil, nil, 0, errWALTruncated
	}
	if vn < 0 {
		return 0, nil, nil, 0, errors.New("value length varint overflows uint64")
	}
	p += vn
	// A fully-parsed varint is byte-identical to what the writer emitted (a
	// tear mid-varint leaves a continuation bit set and parses as
	// truncated), so an absurd length here is damage, not a tear.
	if keyLen > 1<<30 || valLen > 1<<30 {
		return 0, nil, nil, 0, fmt.Errorf("impossible record lengths key=%d value=%d", keyLen, valLen)
	}
	total := p + int(keyLen) + int(valLen)
	if total > len(b) {
		return 0, nil, nil, 0, errWALTruncated
	}
	if crc32.ChecksumIEEE(b[4:total]) != crc {
		return 0, nil, nil, 0, errors.New("crc mismatch")
	}
	body := b[p:total]
	return op, body[:keyLen], body[keyLen:], total, nil
}

// replayWAL streams the records of the log at path into fn and returns
// validLen, the byte offset just past the last intact record — the length
// the caller must truncate the file to before appending again, so a torn
// tail can never strand later appends behind unreadable bytes.
//
// Damage classification, the recovery-integrity contract (DESIGN.md §15):
//
//   - Clean torn tail: a record cut off by end-of-file with nothing intact
//     after it. This is the prefix an in-flight append leaves at a crash;
//     it is counted in nezha_wal_torn_tail_total and replay returns nil.
//   - Mid-log corruption: a CRC failure with the record's bytes fully
//     present, an impossible length, or an unreadable span followed by an
//     intact record. Counted in nezha_wal_corruption_total and rejected
//     with ErrWALCorrupt carrying the byte offset for forensics.
//
// tag scopes the kvstore/wal-replay failpoint to the owning store.
func replayWAL(path, tag string, fn func(op byte, key, value []byte)) (validLen int64, err error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("kvstore: open wal for replay: %w", err)
	}
	off := 0
	for {
		op, key, value, n, perr := parseWALRecord(raw[off:])
		switch {
		case perr == nil && n == 0:
			return int64(off), nil // clean end of log
		case errors.Is(perr, errWALTruncated):
			if j := scanWALRecord(raw, off+1); j >= 0 {
				mWALCorruption.Inc()
				return int64(off), fmt.Errorf("%w: unreadable span at byte offset %d with an intact record after it at offset %d (%s, %d bytes)",
					ErrWALCorrupt, off, j, path, len(raw))
			}
			mWALTornTail.Inc()
			return int64(off), nil
		case perr != nil:
			mWALCorruption.Inc()
			return int64(off), fmt.Errorf("%w: %v at byte offset %d (%s, %d bytes)",
				ErrWALCorrupt, perr, off, path, len(raw))
		}
		if err := fail.HitTag(fail.KVWALReplay, tag); err != nil {
			return int64(off), err
		}
		fn(op, key, value)
		off += n
	}
}

// scanWALRecord reports the offset of the first intact (CRC-checked, fully
// present) record at or after from, or -1 if none exists. A valid record
// materializing from unrelated bytes is a ~2^-32 CRC coincidence, so a hit
// is taken as proof that the unreadable span before it is corruption
// rather than a tear — a tear cannot leave bytes after itself.
func scanWALRecord(raw []byte, from int) int {
	for j := from; j < len(raw); j++ {
		if _, _, _, n, err := parseWALRecord(raw[j:]); err == nil && n > 0 {
			return j
		}
	}
	return -1
}
