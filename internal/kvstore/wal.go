package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/nezha-dag/nezha/internal/fail"
)

// wal is the write-ahead log making memtable contents durable before they
// reach an SSTable. Record format:
//
//	crc32(le, 4B) | type(1B) | keyLen(uvarint) | valLen(uvarint) | key | val
//
// The CRC covers everything after itself. Replay stops silently at the
// first corrupt or truncated record — the tail a crash may leave behind.
type wal struct {
	f *os.File
	w *bufio.Writer
	// tag scopes this log's failpoints to its owning store (see
	// LSMOptions.FailTag).
	tag string
}

const (
	walOpPut    = 1
	walOpDelete = 2
)

func openWAL(path, tag string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f), tag: tag}, nil
}

// append writes one record. Sync durability is left to the caller (sync).
func (w *wal) append(op byte, key, value []byte) error {
	if err := fail.HitTag(fail.KVWALAppend, w.tag); err != nil {
		return err
	}
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(value))
	payload = append(payload, op)
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = binary.AppendUvarint(payload, uint64(len(value)))
	payload = append(payload, key...)
	payload = append(payload, value...)

	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(crc[:]); err != nil {
		return fmt.Errorf("kvstore: wal write: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("kvstore: wal write: %w", err)
	}
	mWALRecords.Inc()
	mWALBytes.Add(float64(len(crc) + len(payload)))
	return nil
}

// sync flushes buffered records to the OS. (fsync is intentionally skipped:
// the reproduction trades disk-crash durability for benchmark throughput,
// like LevelDB's default write options.)
func (w *wal) sync() error {
	if err := fail.HitTag(fail.KVWALSync, w.tag); err != nil {
		return err
	}
	return w.w.Flush()
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// replayWAL streams the records of a log file into fn, stopping without
// error at a torn tail.
func replayWAL(path string, fn func(op byte, key, value []byte)) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: open wal for replay: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	for {
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return nil // clean EOF or torn record boundary
		}
		op, err := r.ReadByte()
		if err != nil {
			return nil
		}
		keyLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil
		}
		valLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil
		}
		if keyLen > 1<<30 || valLen > 1<<30 {
			return nil // corrupt lengths: treat as torn tail
		}
		body := make([]byte, keyLen+valLen)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil
		}

		payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(body))
		payload = append(payload, op)
		payload = binary.AppendUvarint(payload, keyLen)
		payload = binary.AppendUvarint(payload, valLen)
		payload = append(payload, body...)
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return nil // corrupt record: stop replay
		}
		fn(op, body[:keyLen], body[keyLen:])
	}
}
