// Package kvstore is the reproduction's embedded key-value storage engine —
// the substitute for the LevelDB instance the paper's prototype stores block
// and state data in (§V). Two backends implement one Store interface:
//
//   - Memory: a mutex-guarded ordered map, for tests and pure benchmarks.
//   - LSM: a log-structured merge store in the LevelDB tradition —
//     write-ahead log, skiplist memtable, sorted-string-table files, and
//     size-tiered compaction — durable across restarts.
//
// Keys and values are arbitrary byte strings; iteration is in ascending
// lexicographic key order.
package kvstore

import "errors"

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// Store is an embedded key-value store.
type Store interface {
	// Get returns the value for key; found is false when absent.
	Get(key []byte) (value []byte, found bool, err error)
	// Put inserts or replaces a key.
	Put(key, value []byte) error
	// Delete removes a key; deleting an absent key is not an error.
	Delete(key []byte) error
	// Apply commits a batch atomically.
	Apply(b *Batch) error
	// Iter calls fn for every key in [start, end) in ascending order; a nil
	// end means "to the last key". fn returning false stops iteration.
	Iter(start, end []byte, fn func(key, value []byte) bool) error
	// Close releases resources; the store must not be used afterwards.
	Close() error
}

// Batch is a set of writes applied atomically by Store.Apply. Later
// operations on the same key override earlier ones.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	key    []byte
	value  []byte
	delete bool
}

// Put queues an insert/replace.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), value: append([]byte(nil), value...)})
}

// Delete queues a removal.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), delete: true})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }
