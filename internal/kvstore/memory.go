package kvstore

import (
	"bytes"
	"sort"
	"sync"
)

// Memory is an in-memory Store backed by a map plus a lazily-maintained
// sorted key index for iteration. It is safe for concurrent use.
type Memory struct {
	mu     sync.RWMutex
	data   map[string][]byte
	keys   []string // sorted; rebuilt lazily after mutation
	dirty  bool
	closed bool
}

var _ Store = (*Memory)(nil)

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{data: make(map[string][]byte)}
}

// Get implements Store.
func (m *Memory) Get(key []byte) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	v, ok := m.data[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Put implements Store.
func (m *Memory) Put(key, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.putLocked(key, value)
	return nil
}

func (m *Memory) putLocked(key, value []byte) {
	k := string(key)
	if _, existed := m.data[k]; !existed {
		m.dirty = true
	}
	m.data[k] = append([]byte(nil), value...)
}

// Delete implements Store.
func (m *Memory) Delete(key []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := string(key)
	if _, existed := m.data[k]; existed {
		delete(m.data, k)
		m.dirty = true
	}
	return nil
}

// Apply implements Store.
func (m *Memory) Apply(b *Batch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, op := range b.ops {
		if op.delete {
			k := string(op.key)
			if _, existed := m.data[k]; existed {
				delete(m.data, k)
				m.dirty = true
			}
			continue
		}
		m.putLocked(op.key, op.value)
	}
	return nil
}

// Iter implements Store.
func (m *Memory) Iter(start, end []byte, fn func(key, value []byte) bool) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.dirty {
		m.keys = m.keys[:0]
		for k := range m.data {
			m.keys = append(m.keys, k)
		}
		sort.Strings(m.keys)
		m.dirty = false
	}
	// Snapshot the visible range so fn may call back into the store.
	type kv struct{ k, v []byte }
	var snap []kv
	from := sort.SearchStrings(m.keys, string(start))
	for _, k := range m.keys[from:] {
		if end != nil && bytes.Compare([]byte(k), end) >= 0 {
			break
		}
		if v, ok := m.data[k]; ok {
			snap = append(snap, kv{[]byte(k), append([]byte(nil), v...)})
		}
	}
	m.mu.Unlock()

	for _, e := range snap {
		if !fn(e.k, e.v) {
			return nil
		}
	}
	return nil
}

// Len returns the number of live keys.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
