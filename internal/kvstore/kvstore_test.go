package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// openStores returns one of each backend, named, for table-driven tests.
func openStores(t *testing.T) map[string]Store {
	t.Helper()
	lsm, err := OpenLSM(t.TempDir(), LSMOptions{MemtableBytes: 1 << 12, CompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "lsm": lsm}
}

func TestStoreBasicOps(t *testing.T) {
	for name, s := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, found, err := s.Get([]byte("missing")); err != nil || found {
				t.Fatalf("missing key: found=%v err=%v", found, err)
			}
			if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			v, found, err := s.Get([]byte("k1"))
			if err != nil || !found || string(v) != "v1" {
				t.Fatalf("get k1 = %q, %v, %v", v, found, err)
			}
			// Overwrite.
			if err := s.Put([]byte("k1"), []byte("v2")); err != nil {
				t.Fatal(err)
			}
			v, _, _ = s.Get([]byte("k1"))
			if string(v) != "v2" {
				t.Fatalf("overwrite: %q", v)
			}
			// Delete, then delete again (idempotent).
			if err := s.Delete([]byte("k1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete([]byte("k1")); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := s.Get([]byte("k1")); found {
				t.Fatal("deleted key still present")
			}
			// Empty value is a valid value, distinct from absent.
			if err := s.Put([]byte("empty"), nil); err != nil {
				t.Fatal(err)
			}
			v, found, _ = s.Get([]byte("empty"))
			if !found || len(v) != 0 {
				t.Fatalf("empty value: %q, %v", v, found)
			}
		})
	}
}

func TestStoreBatch(t *testing.T) {
	for name, s := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			b := &Batch{}
			b.Put([]byte("a"), []byte("1"))
			b.Put([]byte("b"), []byte("2"))
			b.Put([]byte("a"), []byte("3")) // later op wins
			b.Delete([]byte("b"))
			if b.Len() != 4 {
				t.Fatalf("batch len %d", b.Len())
			}
			if err := s.Apply(b); err != nil {
				t.Fatal(err)
			}
			v, _, _ := s.Get([]byte("a"))
			if string(v) != "3" {
				t.Fatalf("a = %q", v)
			}
			if _, found, _ := s.Get([]byte("b")); found {
				t.Fatal("b survived batch delete")
			}
			b.Reset()
			if b.Len() != 0 {
				t.Fatal("reset failed")
			}
		})
	}
}

func TestStoreIter(t *testing.T) {
	for name, s := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			for i := 9; i >= 0; i-- { // insert out of order
				if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Delete([]byte("k05")); err != nil {
				t.Fatal(err)
			}
			var got []string
			err := s.Iter([]byte("k02"), []byte("k08"), func(k, v []byte) bool {
				got = append(got, string(k))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"k02", "k03", "k04", "k06", "k07"}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("iter = %v, want %v", got, want)
			}
			// Early stop.
			count := 0
			if err := s.Iter(nil, nil, func(k, v []byte) bool { count++; return count < 3 }); err != nil {
				t.Fatal(err)
			}
			if count != 3 {
				t.Fatalf("early stop visited %d", count)
			}
		})
	}
}

func TestStoreClosedErrors(t *testing.T) {
	for name, s := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Get([]byte("x")); err != ErrClosed {
				t.Fatalf("Get after close: %v", err)
			}
			if err := s.Put([]byte("x"), nil); err != ErrClosed {
				t.Fatalf("Put after close: %v", err)
			}
		})
	}
}

func TestLSMFlushAndReadBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{MemtableBytes: 1 << 10, CompactAt: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Write enough to force several flushes.
	for i := 0; i < 500; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if s.TableCount() == 0 {
		t.Fatal("no SSTable was flushed")
	}
	for i := 0; i < 500; i++ {
		v, found, err := s.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !found {
			t.Fatalf("key %d missing after flush: %v", i, err)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 32)) {
			t.Fatalf("key %d value corrupt", i)
		}
	}
}

func TestLSMCompactionPreservesData(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{MemtableBytes: 1 << 10, CompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	expect := make(map[string]string)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		if rng.Intn(5) == 0 {
			delete(expect, k)
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		v := fmt.Sprintf("v%d", i)
		expect[k] = v
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.TableCount() >= 6 {
		t.Fatalf("compaction never ran: %d tables", s.TableCount())
	}
	for k, v := range expect {
		got, found, err := s.Get([]byte(k))
		if err != nil || !found || string(got) != v {
			t.Fatalf("key %s = %q,%v,%v want %q", k, got, found, err, v)
		}
	}
	// And via iteration.
	seen := make(map[string]string)
	if err := s.Iter(nil, nil, func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(expect) {
		t.Fatalf("iter saw %d keys, want %d", len(seen), len(expect))
	}
}

func TestLSMRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, DefaultLSMOptions()) // huge memtable: nothing flushes
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("k50")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: close without flush, reopen, everything must be
	// back via WAL replay.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		v, found, err := s2.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if i == 50 {
			if found {
				t.Fatal("tombstone lost in recovery")
			}
			continue
		}
		if !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q,%v after recovery", k, v, found)
		}
	}
}

func TestLSMRecoveryTornWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last few bytes off the WAL, as a crash mid-write would.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatalf("torn WAL broke recovery: %v", err)
	}
	defer s2.Close()
	// All but the torn record must be intact.
	for i := 0; i < 49; i++ {
		if _, found, _ := s2.Get([]byte(fmt.Sprintf("k%02d", i))); !found {
			t.Fatalf("k%02d lost", i)
		}
	}
	if _, found, _ := s2.Get([]byte("k49")); found {
		t.Fatal("torn record resurrected")
	}
}

func TestLSMPersistsAcrossFlushedRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{MemtableBytes: 1 << 10, CompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenLSM(dir, LSMOptions{MemtableBytes: 1 << 10, CompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 300; i++ {
		v, found, err := s2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%03d = %q,%v,%v", i, v, found, err)
		}
	}
}

func TestLSMOptionsValidation(t *testing.T) {
	if _, err := OpenLSM(t.TempDir(), LSMOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

// TestLSMMatchesMemoryModel drives both backends with an identical random
// operation stream and cross-checks every read — the LSM store must be
// observationally equivalent to the trivial map.
func TestLSMMatchesMemoryModel(t *testing.T) {
	lsm, err := OpenLSM(t.TempDir(), LSMOptions{MemtableBytes: 1 << 9, CompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer lsm.Close()
	mem := NewMemory()
	defer mem.Close()

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("key%03d", rng.Intn(200)))
		switch rng.Intn(4) {
		case 0:
			if err := lsm.Delete(k); err != nil {
				t.Fatal(err)
			}
			if err := mem.Delete(k); err != nil {
				t.Fatal(err)
			}
		default:
			v := []byte(fmt.Sprintf("val%d", i))
			if err := lsm.Put(k, v); err != nil {
				t.Fatal(err)
			}
			if err := mem.Put(k, v); err != nil {
				t.Fatal(err)
			}
		}
		if i%97 == 0 {
			probe := []byte(fmt.Sprintf("key%03d", rng.Intn(200)))
			lv, lok, lerr := lsm.Get(probe)
			mv, mok, merr := mem.Get(probe)
			if lerr != nil || merr != nil || lok != mok || !bytes.Equal(lv, mv) {
				t.Fatalf("op %d: lsm(%q,%v,%v) != mem(%q,%v,%v)", i, lv, lok, lerr, mv, mok, merr)
			}
		}
	}
	// Final full comparison via iteration.
	collect := func(s Store) map[string]string {
		out := make(map[string]string)
		if err := s.Iter(nil, nil, func(k, v []byte) bool {
			out[string(k)] = string(v)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	lAll, mAll := collect(lsm), collect(mem)
	if len(lAll) != len(mAll) {
		t.Fatalf("key counts differ: %d vs %d", len(lAll), len(mAll))
	}
	for k, v := range mAll {
		if lAll[k] != v {
			t.Fatalf("key %s: %q vs %q", k, lAll[k], v)
		}
	}
}

func TestMemoryConcurrentAccess(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := s.Put(k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, found, err := s.Get(k); err != nil || !found {
					t.Errorf("read own write failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestSkiplistOrderedQuick: the memtable must keep arbitrary keys sorted.
func TestSkiplistOrderedQuick(t *testing.T) {
	f := func(keys [][]byte) bool {
		sl := newSkiplist()
		for i, k := range keys {
			sl.put(append([]byte(nil), k...), []byte{byte(i)}, false)
		}
		var got []string
		sl.scan(nil, func(k, v []byte, tomb bool) bool {
			got = append(got, string(k))
			return true
		})
		return sort.StringsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLSMPut(b *testing.B) {
	s, err := OpenLSM(b.TempDir(), DefaultLSMOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	key := make([]byte, 32)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
		if err := s.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSMGet(b *testing.B) {
	s, err := OpenLSM(b.TempDir(), DefaultLSMOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10_000; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("value")); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get([]byte(fmt.Sprintf("key-%05d", i%10_000))); err != nil {
			b.Fatal(err)
		}
	}
}
