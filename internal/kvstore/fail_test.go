package kvstore

import (
	"errors"
	"fmt"
	"testing"

	"github.com/nezha-dag/nezha/internal/fail"
)

// TestApplyFailpointIsClean: an injected batch-commit error must leave the
// store exactly as it was — nothing from the failed batch visible, and the
// next Apply succeeds once the fault clears.
func TestApplyFailpointIsClean(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	s, err := OpenLSM(t.TempDir(), LSMOptions{MemtableBytes: 1 << 16, CompactAt: 4, FailTag: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put([]byte("k0"), []byte("v0")); err != nil {
		t.Fatal(err)
	}

	fail.Enable("kvstore/apply", fail.Spec{Mode: fail.ModeError, Tag: "victim", Count: 1})
	b := &Batch{}
	b.Put([]byte("k1"), []byte("v1"))
	b.Put([]byte("k2"), []byte("v2"))
	if err := s.Apply(b); !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("Apply = %v, want injected error", err)
	}
	for _, k := range []string{"k1", "k2"} {
		if _, found, _ := s.Get([]byte(k)); found {
			t.Fatalf("key %s visible after failed batch", k)
		}
	}
	// Fault cleared (Count: 1): the retry lands atomically.
	if err := s.Apply(b); err != nil {
		t.Fatalf("retry after injected fault: %v", err)
	}
	if v, found, _ := s.Get([]byte("k2")); !found || string(v) != "v2" {
		t.Fatalf("retried batch not visible: %q %v", v, found)
	}
}

// TestWALAppendCrashMidBatchRecovers: a crash in the middle of a batch's
// WAL appends leaves a partial batch on disk. Reopening must replay the
// durable prefix without error — the torn-tail contract — and the store
// must remain writable.
func TestWALAppendCrashMidBatchRecovers(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	dir := t.TempDir()
	s, err := OpenLSM(dir, LSMOptions{MemtableBytes: 1 << 20, CompactAt: 4, FailTag: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("stable"), []byte("yes")); err != nil {
		t.Fatal(err)
	}

	// Panic on the second append of the next batch: op 1 is in the log
	// buffer, op 2 never lands, the "process" dies without closing.
	fail.Enable("kvstore/wal-append", fail.Spec{Mode: fail.ModePanic, Tag: "victim", After: 1, Count: 1})
	func() {
		defer func() {
			if r := recover(); !fail.IsCrash(r) {
				t.Fatalf("recovered %v, want injected crash", r)
			}
		}()
		b := &Batch{}
		b.Put([]byte("torn1"), []byte("x"))
		b.Put([]byte("torn2"), []byte("y"))
		_ = s.Apply(b)
	}()

	// Crash: abandon the handle without Close (no flush of buffered
	// records) and reopen the directory.
	re, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatalf("reopen after torn batch: %v", err)
	}
	defer re.Close()
	if v, found, _ := re.Get([]byte("stable")); !found || string(v) != "yes" {
		t.Fatalf("pre-crash data lost: %q %v", v, found)
	}
	// The torn batch's ops must not have survived wholesale; whatever
	// prefix replayed, the store keeps working.
	if err := re.Put([]byte("after"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := re.Get([]byte("after")); !found || string(v) != "crash" {
		t.Fatalf("post-recovery write lost: %q %v", v, found)
	}
}

// TestFlushFailpointKeepsMemtableServing: an injected flush error must not
// lose the memtable — reads keep serving from memory and a later flush
// succeeds.
func TestFlushFailpointKeepsMemtableServing(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	s, err := OpenLSM(t.TempDir(), LSMOptions{MemtableBytes: 1 << 20, CompactAt: 8, FailTag: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 32; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	fail.Enable("kvstore/flush", fail.Spec{Mode: fail.ModeError, Tag: "victim", Count: 1})
	if err := s.Flush(); !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("Flush = %v, want injected error", err)
	}
	if v, found, _ := s.Get([]byte("k07")); !found || string(v) != "v" {
		t.Fatalf("memtable lost after failed flush: %q %v", v, found)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush retry: %v", err)
	}
	if s.TableCount() == 0 {
		t.Fatal("retried flush produced no table")
	}
	if v, found, _ := s.Get([]byte("k07")); !found || string(v) != "v" {
		t.Fatalf("data lost across flush: %q %v", v, found)
	}
}

// TestWALSyncErrorSurfacesFromApply: a failed log sync must surface to the
// Apply caller rather than silently succeed.
func TestWALSyncErrorSurfacesFromApply(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	s, err := OpenLSM(t.TempDir(), LSMOptions{MemtableBytes: 1 << 20, CompactAt: 4, FailTag: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fail.Enable("kvstore/wal-sync", fail.Spec{Mode: fail.ModeError, Tag: "victim", Count: 1})
	if err := s.Put([]byte("k"), []byte("v")); !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("Put = %v, want injected sync error", err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry after sync fault: %v", err)
	}
}
