package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// SSTable file layout (all integers little-endian):
//
//	entry*   : type(1B) keyLen(uvarint) valLen(uvarint) key val
//	index    : count(u32), then per entry: keyLen(uvarint) key offset(u64)
//	footer   : indexOffset(u64) indexCRC(u32) magic(u64)
//
// The index holds every indexInterval-th entry's key and file offset; a
// lookup binary-searches the in-memory index and scans at most one
// interval. Entries are unique and sorted — each flush/compaction writes
// from an already-deduplicated source.
const (
	sstMagic      uint64 = 0x4e455a48415f5353 // "NEZHA_SS"
	indexInterval        = 16
)

const (
	sstOpPut    = walOpPut
	sstOpDelete = walOpDelete
)

// sstEntry is one record streamed out of (or into) a table file.
type sstEntry struct {
	key       []byte
	value     []byte
	tombstone bool
}

// writeSSTable persists sorted, deduplicated entries to path.
func writeSSTable(path string, entries []sstEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kvstore: create sstable: %w", err)
	}
	w := bufio.NewWriter(f)

	type indexRec struct {
		key    []byte
		offset uint64
	}
	var (
		index  []indexRec
		offset uint64
	)
	for i, e := range entries {
		if i%indexInterval == 0 {
			index = append(index, indexRec{key: e.key, offset: offset})
		}
		rec := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(e.key)+len(e.value))
		op := byte(sstOpPut)
		if e.tombstone {
			op = sstOpDelete
		}
		rec = append(rec, op)
		rec = binary.AppendUvarint(rec, uint64(len(e.key)))
		rec = binary.AppendUvarint(rec, uint64(len(e.value)))
		rec = append(rec, e.key...)
		rec = append(rec, e.value...)
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("kvstore: write sstable: %w", err)
		}
		offset += uint64(len(rec))
	}

	indexOffset := offset
	var indexBuf bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(index)))
	indexBuf.Write(u32[:])
	for _, rec := range index {
		indexBuf.Write(binary.AppendUvarint(nil, uint64(len(rec.key))))
		indexBuf.Write(rec.key)
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], rec.offset)
		indexBuf.Write(u64[:])
	}
	if _, err := w.Write(indexBuf.Bytes()); err != nil {
		return fmt.Errorf("kvstore: write sstable index: %w", err)
	}

	var footer [20]byte
	binary.LittleEndian.PutUint64(footer[0:8], indexOffset)
	binary.LittleEndian.PutUint32(footer[8:12], crc32.ChecksumIEEE(indexBuf.Bytes()))
	binary.LittleEndian.PutUint64(footer[12:20], sstMagic)
	if _, err := w.Write(footer[:]); err != nil {
		return fmt.Errorf("kvstore: write sstable footer: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flush sstable: %w", err)
	}
	return f.Close()
}

// sstable is an open table file with its sparse index resident in memory.
type sstable struct {
	path    string
	data    []byte // entry region, mmap-less: read fully (tables are modest)
	keys    [][]byte
	offsets []uint64
}

// openSSTable loads a table file and validates its footer and index CRC.
func openSSTable(path string) (*sstable, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kvstore: read sstable: %w", err)
	}
	if len(raw) < 20 {
		return nil, fmt.Errorf("kvstore: sstable %s truncated", path)
	}
	footer := raw[len(raw)-20:]
	if binary.LittleEndian.Uint64(footer[12:20]) != sstMagic {
		return nil, fmt.Errorf("kvstore: sstable %s bad magic", path)
	}
	indexOffset := binary.LittleEndian.Uint64(footer[0:8])
	if indexOffset > uint64(len(raw)-20) {
		return nil, fmt.Errorf("kvstore: sstable %s index offset out of range", path)
	}
	indexRegion := raw[indexOffset : len(raw)-20]
	if crc32.ChecksumIEEE(indexRegion) != binary.LittleEndian.Uint32(footer[8:12]) {
		return nil, fmt.Errorf("kvstore: sstable %s index corrupt", path)
	}

	t := &sstable{path: path, data: raw[:indexOffset]}
	if len(indexRegion) < 4 {
		return nil, fmt.Errorf("kvstore: sstable %s index truncated", path)
	}
	count := binary.LittleEndian.Uint32(indexRegion[:4])
	pos := 4
	for i := uint32(0); i < count; i++ {
		keyLen, n := binary.Uvarint(indexRegion[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("kvstore: sstable %s index entry corrupt", path)
		}
		pos += n
		if pos+int(keyLen)+8 > len(indexRegion) {
			return nil, fmt.Errorf("kvstore: sstable %s index entry truncated", path)
		}
		t.keys = append(t.keys, indexRegion[pos:pos+int(keyLen)])
		pos += int(keyLen)
		t.offsets = append(t.offsets, binary.LittleEndian.Uint64(indexRegion[pos:pos+8]))
		pos += 8
	}
	return t, nil
}

// decodeEntry parses one record at offset, returning the entry and the next
// offset.
func (t *sstable) decodeEntry(offset uint64) (sstEntry, uint64, error) {
	buf := t.data[offset:]
	if len(buf) == 0 {
		return sstEntry{}, 0, fmt.Errorf("kvstore: sstable %s read past end", t.path)
	}
	op := buf[0]
	pos := 1
	keyLen, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return sstEntry{}, 0, fmt.Errorf("kvstore: sstable %s entry corrupt", t.path)
	}
	pos += n
	valLen, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return sstEntry{}, 0, fmt.Errorf("kvstore: sstable %s entry corrupt", t.path)
	}
	pos += n
	if pos+int(keyLen)+int(valLen) > len(buf) {
		return sstEntry{}, 0, fmt.Errorf("kvstore: sstable %s entry truncated", t.path)
	}
	e := sstEntry{
		key:       buf[pos : pos+int(keyLen)],
		value:     buf[pos+int(keyLen) : pos+int(keyLen)+int(valLen)],
		tombstone: op == sstOpDelete,
	}
	return e, offset + uint64(pos) + keyLen + valLen, nil
}

// get looks up key; ok reports whether a record (possibly a tombstone)
// exists in this table.
func (t *sstable) get(key []byte) (value []byte, tombstone, ok bool, err error) {
	if len(t.keys) == 0 {
		return nil, false, false, nil
	}
	// Last index entry with keys[i] <= key.
	i := sort.Search(len(t.keys), func(i int) bool { return bytes.Compare(t.keys[i], key) > 0 }) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	offset := t.offsets[i]
	for steps := 0; steps < indexInterval; steps++ {
		if offset >= uint64(len(t.data)) {
			break
		}
		e, next, err := t.decodeEntry(offset)
		if err != nil {
			return nil, false, false, err
		}
		switch bytes.Compare(e.key, key) {
		case 0:
			return e.value, e.tombstone, true, nil
		case 1:
			return nil, false, false, nil
		}
		offset = next
	}
	return nil, false, false, nil
}

// scan walks all entries with key >= start in order.
func (t *sstable) scan(start []byte, fn func(e sstEntry) bool) error {
	var offset uint64
	if len(t.keys) > 0 {
		i := sort.Search(len(t.keys), func(i int) bool { return bytes.Compare(t.keys[i], start) > 0 }) - 1
		if i > 0 {
			offset = t.offsets[i]
		}
	}
	for offset < uint64(len(t.data)) {
		e, next, err := t.decodeEntry(offset)
		if err != nil {
			return err
		}
		if bytes.Compare(e.key, start) >= 0 {
			if !fn(e) {
				return nil
			}
		}
		offset = next
	}
	return nil
}
