package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fillWAL writes n single-put batches so the log holds n records (the
// default memtable never flushes at this size) and closes the store.
func fillWAL(t *testing.T, dir string, n int, gen string) {
	t.Helper()
	s, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("%s-k%02d", gen, i)), []byte(fmt.Sprintf("%s-v%02d", gen, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALMidLogCorruptionRejected plants a flipped byte in the middle of
// the log — intact records follow it, so this is corruption, not a crash
// tear — and requires recovery to refuse loudly: the typed error, the
// counter, and no store. Silently truncating to the prefix here would
// discard acknowledged writes.
func TestWALMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	fillWAL(t, dir, 50, "a")
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	before := WALCorruptions()
	s, err := OpenLSM(dir, DefaultLSMOptions())
	if err == nil {
		s.Close()
		t.Fatal("recovery accepted a log with mid-record corruption")
	}
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("recovery failed with %v, want ErrWALCorrupt", err)
	}
	if delta := WALCorruptions() - before; delta < 1 {
		t.Fatalf("nezha_wal_corruption_total moved by %.0f, want >= 1", delta)
	}
}

// TestWALTornTailRecoversAndStaysAppendable tears the log mid-record (the
// shape an interrupted write leaves), recovers, then keeps writing and
// recovers again. The second recovery is the regression half: recovery
// must physically truncate the torn bytes before reopening for append,
// or the next generation's records land after garbage and are lost.
func TestWALTornTailRecoversAndStaysAppendable(t *testing.T) {
	dir := t.TempDir()
	fillWAL(t, dir, 50, "a")
	walPath := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	before := WALTornTails()
	s, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatalf("torn tail broke recovery: %v", err)
	}
	if delta := WALTornTails() - before; delta != 1 {
		t.Fatalf("nezha_wal_torn_tail_total moved by %.0f, want 1", delta)
	}
	// Second generation of writes over the recovered (truncated) log.
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("b-k%02d", i)), []byte(fmt.Sprintf("b-v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer s2.Close()
	for i := 0; i < 49; i++ { // record 49 died in the tear
		if _, found, _ := s2.Get([]byte(fmt.Sprintf("a-k%02d", i))); !found {
			t.Fatalf("first-generation a-k%02d lost", i)
		}
	}
	if _, found, _ := s2.Get([]byte("a-k49")); found {
		t.Fatal("torn record resurrected")
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("b-k%02d", i)
		v, found, _ := s2.Get([]byte(k))
		if !found || string(v) != fmt.Sprintf("b-v%02d", i) {
			t.Fatalf("post-tear write %s = %q,%v — appends after the torn tail were lost", k, v, found)
		}
	}
}

// TestWALCleanLogMovesNoCounters pins that an intact log replays without
// tripping either integrity counter: the counters must mean something.
func TestWALCleanLogMovesNoCounters(t *testing.T) {
	dir := t.TempDir()
	fillWAL(t, dir, 30, "a")
	tornBefore, corruptBefore := WALTornTails(), WALCorruptions()
	s, err := OpenLSM(dir, DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if d := WALTornTails() - tornBefore; d != 0 {
		t.Fatalf("clean replay moved nezha_wal_torn_tail_total by %.0f", d)
	}
	if d := WALCorruptions() - corruptBefore; d != 0 {
		t.Fatalf("clean replay moved nezha_wal_corruption_total by %.0f", d)
	}
}
