package statedb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/mvcc"
	"github.com/nezha-dag/nezha/internal/types"
)

func TestViewIsolationAcrossCommit(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	view := db.View()

	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("new")}, {Key: keyN(2), Value: []byte("x")}}); err != nil {
		t.Fatal(err)
	}

	// The old view keeps resolving pre-commit values — including for
	// key 2, which it never touched before the commit (the eager base
	// load in CommitEpoch covers cold keys).
	if v, err := view.Get(keyN(1)); err != nil || string(v) != "old" {
		t.Fatalf("view read = %q, %v; want old", v, err)
	}
	if v, err := view.Get(keyN(2)); err != nil || v != nil {
		t.Fatalf("view read of cold key = %q, %v; want nil", v, err)
	}
	head := db.View()
	if v, err := head.Get(keyN(1)); err != nil || string(v) != "new" {
		t.Fatalf("head view read = %q, %v; want new", v, err)
	}
	if v, err := head.Get(keyN(2)); err != nil || string(v) != "x" {
		t.Fatalf("head view read = %q, %v; want x", v, err)
	}
}

// TestViewMatchesSnapshot drives the two read paths over the same commit
// sequence and asserts value-for-value agreement at every step.
func TestViewMatchesSnapshot(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	for round := uint64(0); round < 8; round++ {
		var writes []types.WriteEntry
		for i := uint64(0); i < 16; i++ {
			if (round+i)%3 == 0 {
				writes = append(writes, types.WriteEntry{
					Key:   keyN(i),
					Value: []byte(fmt.Sprintf("r%d-k%d", round, i)),
				})
			}
		}
		if _, err := db.Commit(writes); err != nil {
			t.Fatal(err)
		}
		snap := db.Snapshot()
		view := db.View()
		for i := uint64(0); i < 20; i++ {
			sv, err1 := snap.Get(keyN(i))
			vv, err2 := view.Get(keyN(i))
			if err1 != nil || err2 != nil {
				t.Fatalf("round %d key %d: snap err %v, view err %v", round, i, err1, err2)
			}
			if !bytes.Equal(sv, vv) {
				t.Fatalf("round %d key %d: snapshot %q != view %q", round, i, sv, vv)
			}
		}
	}
}

func TestAdvanceWatermarkInvalidatesOldViews(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	old := db.View()
	if _, err := old.Get(keyN(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("v2")}}); err != nil {
		t.Fatal(err)
	}
	if folded := db.AdvanceWatermark(); folded == 0 {
		t.Fatal("expected the old version to fold")
	}
	if _, err := old.Get(keyN(1)); !errors.Is(err, mvcc.ErrBelowWatermark) {
		t.Fatalf("stale view err = %v, want ErrBelowWatermark", err)
	}
	if v, err := db.View().Get(keyN(1)); err != nil || string(v) != "v2" {
		t.Fatalf("head view after gc = %q, %v", v, err)
	}
}

func TestPrefetchWarmsView(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(7), Value: []byte("warm")}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Prefetch(keyN(7)); err != nil {
		t.Fatal(err)
	}
	if v, err := db.View().Get(keyN(7)); err != nil || string(v) != "warm" {
		t.Fatalf("view read = %q, %v", v, err)
	}
	stats, ok := db.MVCCStats()
	if !ok {
		t.Fatal("stats missing after prefetch")
	}
	if stats.Prefetched != 1 || stats.PrefetchHits != 1 || stats.Misses != 0 {
		t.Fatalf("stats = %+v; want 1 prefetched, 1 hit, 0 misses", stats)
	}
}

func TestMVCCStatsAbsentWithoutViews(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.MVCCStats(); ok {
		t.Fatal("snapshot-only use must not create the mvcc store")
	}
	if db.AdvanceWatermark() != 0 {
		t.Fatal("watermark advance without a store must be a no-op")
	}
}
