// Package statedb layers the blockchain state abstraction over the Merkle
// Patricia Trie and the key-value store: authenticated roots per epoch,
// cheap snapshots for speculative execution (every transaction of epoch e
// reads the state of epoch e-1, §III-B), and batched commitment ("each node
// applies the write values … and the updated elements are then flushed to
// the underlying database", §III-B).
package statedb

import (
	"fmt"
	"sync"

	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/types"
)

// StateDB is the mutable head state. A single writer (the commit phase)
// calls Commit; any number of readers use Snapshots. StateDB itself is safe
// for concurrent use.
type StateDB struct {
	mu    sync.RWMutex
	store kvstore.Store
	trie  *mpt.Trie
	root  types.Hash
}

// Open returns a StateDB over the given node store, rooted at root
// (mpt.EmptyRoot for a fresh chain).
func Open(store kvstore.Store, root types.Hash) *StateDB {
	return &StateDB{store: store, trie: mpt.New(root, store), root: root}
}

// Root returns the current state root.
func (s *StateDB) Root() types.Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root
}

// Get reads a key from the head state.
func (s *StateDB) Get(k types.Key) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, _, err := s.trie.Get(k[:])
	return v, err
}

// Snapshot captures a read-only view of the current head state. Snapshots
// are immutable, safe for concurrent use, and memoize resolved values —
// speculative execution hammers the same hot keys, especially under skew.
func (s *StateDB) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn := &Snapshot{
		root: s.root,
		trie: mpt.New(s.root, s.store),
	}
	for i := range sn.shards {
		sn.shards[i].cache = make(map[types.Key][]byte)
	}
	return sn
}

// Commit applies the writes of one epoch to the trie, persists the new
// nodes, and returns the new root. Writes must already be conflict-free
// (distinct keys or intentional last-writer-wins order); the concurrency-
// control layer guarantees that.
func (s *StateDB) Commit(writes []types.WriteEntry) (types.Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range writes {
		if err := s.trie.Put(w.Key[:], w.Value); err != nil {
			return types.Hash{}, fmt.Errorf("statedb: apply write: %w", err)
		}
	}
	root, err := s.trie.Commit()
	if err != nil {
		return types.Hash{}, err
	}
	s.root = root
	return root, nil
}

// Iterate walks the head state in key order (test and tooling support).
func (s *StateDB) Iterate(fn func(k types.Key, v []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.trie.Iterate(func(key, value []byte) bool {
		var k types.Key
		if len(key) != types.KeyLen {
			// Foreign entries (non-state keys) are skipped.
			return true
		}
		copy(k[:], key)
		return fn(k, value)
	})
}

// Snapshot is an immutable view of the state at one root. The value cache
// is sharded by key prefix so that a worker pool hammering hot keys does
// not serialize on one lock.
type Snapshot struct {
	root types.Hash
	trie *mpt.Trie

	shards [16]snapshotShard
}

type snapshotShard struct {
	mu    sync.RWMutex
	cache map[types.Key][]byte
}

// Root returns the snapshot's root.
func (sn *Snapshot) Root() types.Hash { return sn.root }

// Get reads a key from the snapshot; missing keys return nil.
func (sn *Snapshot) Get(k types.Key) ([]byte, error) {
	sh := &sn.shards[k[0]&0x0f]
	sh.mu.RLock()
	if v, ok := sh.cache[k]; ok {
		sh.mu.RUnlock()
		return v, nil
	}
	sh.mu.RUnlock()

	v, _, err := sn.trie.Get(k[:])
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	sh.cache[k] = v
	sh.mu.Unlock()
	return v, nil
}
