// Package statedb layers the blockchain state abstraction over the Merkle
// Patricia Trie and the key-value store: authenticated roots per epoch,
// cheap snapshots for speculative execution (every transaction of epoch e
// reads the state of epoch e-1, §III-B), and batched commitment ("each node
// applies the write values … and the updated elements are then flushed to
// the underlying database", §III-B).
package statedb

import (
	"fmt"
	"sync"

	"github.com/nezha-dag/nezha/internal/journal"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/mvcc"
	"github.com/nezha-dag/nezha/internal/types"
)

// Reader is the read API speculative execution runs against: either a
// copied Snapshot (the legacy per-epoch path, retained as the differential
// reference) or a copy-free mvcc.View. It matches vm.StateReader.
type Reader interface {
	Get(k types.Key) ([]byte, error)
}

// StateDB is the mutable head state. A single writer (the commit phase)
// calls Commit; any number of readers use Snapshots or Views. StateDB
// itself is safe for concurrent use.
type StateDB struct {
	mu    sync.RWMutex
	store kvstore.Store
	trie  *mpt.Trie
	root  types.Hash
	// mv is the multi-version cache in front of the trie, created on the
	// first View call (snapshot-only users never pay for it). Once it
	// exists, every Commit threads its writes through it so views stay
	// consistent with the trie.
	mv *mvcc.Store
	// jr, when set, receives state/* journal events at the MVCC epoch
	// boundaries (reserve, commit, rollback, watermark). The mvcc package
	// itself is determinism-critical code the flight recorder must stay
	// out of, so the observation happens here at its call sites.
	jr *journal.Recorder
}

// SetJournal attaches a flight recorder; subsequent commits and watermark
// advances emit state/* events into it. Pass nil to detach.
func (s *StateDB) SetJournal(r *journal.Recorder) {
	s.mu.Lock()
	s.jr = r
	s.mu.Unlock()
}

// Open returns a StateDB over the given node store, rooted at root
// (mpt.EmptyRoot for a fresh chain).
func Open(store kvstore.Store, root types.Hash) *StateDB {
	return &StateDB{store: store, trie: mpt.New(root, store), root: root}
}

// Root returns the current state root.
func (s *StateDB) Root() types.Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root
}

// Get reads a key from the head state.
func (s *StateDB) Get(k types.Key) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, _, err := s.trie.Get(k[:])
	return v, err
}

// Snapshot captures a read-only view of the current head state. Snapshots
// are immutable, safe for concurrent use, and memoize resolved values —
// speculative execution hammers the same hot keys, especially under skew.
func (s *StateDB) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn := &Snapshot{
		root: s.root,
		trie: mpt.New(s.root, s.store),
	}
	for i := range sn.shards {
		sn.shards[i].cache = make(map[types.Key][]byte)
	}
	return sn
}

// View returns a copy-free MVCC reader pinned at the current state — the
// Snapshot replacement for speculative execution. Unlike a Snapshot it
// shares the version cache with every other view and with the commit
// path, so nothing is duplicated per epoch; the view stays readable while
// a later Commit runs (it keeps resolving pre-commit values) until
// AdvanceWatermark garbage-collects its generation.
func (s *StateDB) View() *mvcc.View {
	s.mu.RLock()
	mv := s.mv
	if mv != nil {
		v := mv.Head() // generation is stable under the read lock
		s.mu.RUnlock()
		return v
	}
	s.mu.RUnlock()
	return s.ensureMVCC().Head()
}

// ensureMVCC creates the multi-version store on first use. The backend
// loader reads through StateDB.Get, whose read lock serializes it against
// the trie flush; the mvcc read path discards loads that straddle a
// commit (see the mvcc package comment).
func (s *StateDB) ensureMVCC() *mvcc.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mv == nil {
		s.mv = mvcc.New(0, s.Get)
	}
	return s.mv
}

// Prefetch pulls a cold key into the version cache (the pipeline's
// prefetcher stage walks the next epoch's predicted read sets with it,
// overlapped with the current epoch's commit).
func (s *StateDB) Prefetch(k types.Key) error {
	s.mu.RLock()
	mv := s.mv
	s.mu.RUnlock()
	if mv == nil {
		mv = s.ensureMVCC()
	}
	return mv.Prefetch(k)
}

// AdvanceWatermark moves the MVCC garbage-collection watermark up to the
// current committed generation — the caller's promise that no view older
// than the present state is still being read (the node makes it once an
// epoch has persisted). Returns the number of folded versions.
func (s *StateDB) AdvanceWatermark() int {
	s.mu.RLock()
	mv, jr := s.mv, s.jr
	gen := uint64(0)
	if mv != nil {
		gen = mv.Gen()
	}
	s.mu.RUnlock()
	if mv == nil {
		return 0
	}
	folded := mv.SetWatermark(gen)
	// Context event, not an alignment key: generations restart from zero
	// when a node reopens, so they are not comparable across replicas.
	jr.Emit(journal.StateWatermark, gen, journal.F("folded", uint64(folded)))
	return folded
}

// MVCCStats snapshots the version cache's counters; ok is false until the
// first View call creates the cache.
func (s *StateDB) MVCCStats() (stats mvcc.Stats, ok bool) {
	s.mu.RLock()
	mv := s.mv
	s.mu.RUnlock()
	if mv == nil {
		return mvcc.Stats{}, false
	}
	return mv.Stats(), true
}

// Commit applies the writes of one epoch to the trie, persists the new
// nodes, and returns the new root. Writes must already be conflict-free
// (distinct keys or intentional last-writer-wins order); the concurrency-
// control layer guarantees that.
//
// When the MVCC cache exists the commit follows its protocol: reserve the
// written keys, append the new versions while the trie still resolves
// pre-flush values, flush, then release the reservations. Readers pinned
// before the commit keep seeing the old values throughout.
func (s *StateDB) Commit(writes []types.WriteEntry) (types.Hash, error) {
	s.mu.Lock()
	mv := s.mv
	if mv != nil && len(writes) > 0 {
		keys := make([]types.Key, len(writes))
		for i, w := range writes {
			keys[i] = w.Key
		}
		mv.ReserveEpoch(keys)
		defer mv.ReleaseEpoch()
		s.jr.Emit(journal.StateReserve, mv.Gen(), journal.F("keys", uint64(len(keys))))
		// Pre-flush trie reads, under the already-held write lock.
		load := func(k types.Key) ([]byte, error) {
			v, _, err := s.trie.Get(k[:])
			return v, err
		}
		if _, err := mv.CommitEpoch(writes, load); err != nil {
			s.mu.Unlock()
			return types.Hash{}, err
		}
	}
	defer s.mu.Unlock()
	// A failed flush must also unwind the versions staged above: the
	// writes never reached the trie, and a retried epoch reading a view
	// would otherwise see phantom state no other node computed.
	rollback := func() {
		if mv != nil && len(writes) > 0 {
			mv.RollbackEpoch(writes)
			s.jr.Emit(journal.StateRollback, mv.Gen(), journal.F("writes", uint64(len(writes))))
		}
	}
	for _, w := range writes {
		if err := s.trie.Put(w.Key[:], w.Value); err != nil {
			rollback()
			return types.Hash{}, fmt.Errorf("statedb: apply write: %w", err)
		}
	}
	root, err := s.trie.Commit()
	if err != nil {
		rollback()
		return types.Hash{}, err
	}
	s.root = root
	gen := uint64(0)
	if mv != nil {
		gen = mv.Gen()
	}
	s.jr.Emit(journal.StateCommit, gen,
		journal.F("writes", uint64(len(writes))), journal.F("root", journal.FoldBytes(root[:])))
	return root, nil
}

// Iterate walks the head state in key order (test and tooling support).
func (s *StateDB) Iterate(fn func(k types.Key, v []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.trie.Iterate(func(key, value []byte) bool {
		var k types.Key
		if len(key) != types.KeyLen {
			// Foreign entries (non-state keys) are skipped.
			return true
		}
		copy(k[:], key)
		return fn(k, value)
	})
}

// Snapshot is an immutable view of the state at one root. The value cache
// is sharded by key prefix so that a worker pool hammering hot keys does
// not serialize on one lock.
type Snapshot struct {
	root types.Hash
	trie *mpt.Trie

	shards [16]snapshotShard
}

type snapshotShard struct {
	mu    sync.RWMutex
	cache map[types.Key][]byte
}

// Both execution read paths satisfy the shared Reader API.
var (
	_ Reader = (*Snapshot)(nil)
	_ Reader = (*mvcc.View)(nil)
)

// Root returns the snapshot's root.
func (sn *Snapshot) Root() types.Hash { return sn.root }

// Get reads a key from the snapshot; missing keys return nil.
func (sn *Snapshot) Get(k types.Key) ([]byte, error) {
	sh := &sn.shards[k[0]&0x0f]
	sh.mu.RLock()
	if v, ok := sh.cache[k]; ok {
		sh.mu.RUnlock()
		return v, nil
	}
	sh.mu.RUnlock()

	v, _, err := sn.trie.Get(k[:])
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	sh.cache[k] = v
	sh.mu.Unlock()
	return v, nil
}
