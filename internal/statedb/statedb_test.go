package statedb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/types"
)

func keyN(n uint64) types.Key { return types.KeyFromUint64(n) }

func TestOpenEmpty(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if db.Root() != mpt.EmptyRoot {
		t.Fatal("fresh db root not empty")
	}
	v, err := db.Get(keyN(1))
	if err != nil || v != nil {
		t.Fatalf("get on empty = %q, %v", v, err)
	}
}

func TestCommitAndRead(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	root, err := db.Commit([]types.WriteEntry{
		{Key: keyN(1), Value: []byte("a")},
		{Key: keyN(2), Value: []byte("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if root == mpt.EmptyRoot || root != db.Root() {
		t.Fatal("root not updated")
	}
	v, err := db.Get(keyN(1))
	if err != nil || string(v) != "a" {
		t.Fatalf("get = %q, %v", v, err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()

	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("new")}}); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees the old value; head sees the new one.
	v, err := snap.Get(keyN(1))
	if err != nil || string(v) != "old" {
		t.Fatalf("snapshot read = %q, %v", v, err)
	}
	head, _ := db.Get(keyN(1))
	if string(head) != "new" {
		t.Fatalf("head read = %q", head)
	}
	if snap.Root() == db.Root() {
		t.Fatal("roots must differ")
	}
}

func TestSnapshotMissingKeyIsNil(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	snap := db.Snapshot()
	v, err := snap.Get(keyN(42))
	if err != nil || v != nil {
		t.Fatalf("missing = %q, %v", v, err)
	}
	// Cached nil must stay nil.
	v, err = snap.Get(keyN(42))
	if err != nil || v != nil {
		t.Fatalf("cached missing = %q, %v", v, err)
	}
}

func TestSnapshotConcurrentReads(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	var writes []types.WriteEntry
	for i := uint64(0); i < 200; i++ {
		writes = append(writes, types.WriteEntry{Key: keyN(i), Value: []byte(fmt.Sprintf("v%d", i))})
	}
	if _, err := db.Commit(writes); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 200; i++ {
				v, err := snap.Get(keyN(i))
				if err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("key %d = %q, %v", i, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRootsDeterministicAcrossStores(t *testing.T) {
	// Two independent databases applying the same writes must converge to
	// the same root — the cross-node state agreement the validation phase
	// checks (§III-B).
	writes := []types.WriteEntry{
		{Key: keyN(3), Value: []byte("x")},
		{Key: keyN(1), Value: []byte("y")},
		{Key: keyN(2), Value: []byte("z")},
	}
	db1 := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	db2 := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	r1, err := db1.Commit(writes)
	if err != nil {
		t.Fatal(err)
	}
	// Different grouping of the same writes.
	if _, err := db2.Commit(writes[:1]); err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Commit(writes[1:])
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("roots diverge: %s vs %s", r1, r2)
	}
}

func TestReopenFromPersistedRoot(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.OpenLSM(dir, kvstore.DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	db := Open(store, mpt.EmptyRoot)
	root, err := db.Commit([]types.WriteEntry{{Key: keyN(7), Value: []byte("persisted")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := kvstore.OpenLSM(dir, kvstore.DefaultLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2 := Open(store2, root)
	v, err := db2.Get(keyN(7))
	if err != nil || string(v) != "persisted" {
		t.Fatalf("reopened get = %q, %v", v, err)
	}
}

func TestIterate(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	want := map[types.Key]string{}
	var writes []types.WriteEntry
	for i := uint64(0); i < 20; i++ {
		k := keyN(i)
		want[k] = fmt.Sprintf("v%d", i)
		writes = append(writes, types.WriteEntry{Key: k, Value: []byte(want[k])})
	}
	if _, err := db.Commit(writes); err != nil {
		t.Fatal(err)
	}
	got := map[types.Key]string{}
	var prev types.Key
	first := true
	err := db.Iterate(func(k types.Key, v []byte) bool {
		if !first && !prev.Less(k) {
			t.Fatalf("iteration out of order")
		}
		prev, first = k, false
		got[k] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: %q != %q", k, got[k], v)
		}
	}
}

func TestCommitEmptyWriteSet(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	r1, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("empty commit changed the root")
	}
}

func TestDeleteViaEmptyValue(t *testing.T) {
	db := Open(kvstore.NewMemory(), mpt.EmptyRoot)
	if _, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	root, err := db.Commit([]types.WriteEntry{{Key: keyN(1), Value: nil}})
	if err != nil {
		t.Fatal(err)
	}
	if root != mpt.EmptyRoot {
		t.Fatal("deleting the only key must restore the empty root")
	}
	v, err := db.Get(keyN(1))
	if err != nil || v != nil {
		t.Fatalf("deleted key = %q", v)
	}
	if !bytes.Equal(nil, v) {
		t.Fatal("deleted value not nil")
	}
}
