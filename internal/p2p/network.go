// Package p2p simulates the peer-to-peer network the paper's cluster runs
// on (14 nodes on 100 Mbps Ethernet, §VI-A). The simulation is in-process:
// endpoints exchange messages over channels with configurable latency,
// jitter, and loss. What the experiments need from the network — every node
// eventually sees every block and independently derives the same schedule —
// is preserved; wire-level details are out of scope by design (DESIGN.md).
package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/types"
)

// msgDropped returns the drop counter for one (message type, reason)
// pair; reasons are "loss" (simulated wire loss), "queue_full" (a
// saturated inbox after retries), "partition" (sender and recipient in
// different partition groups), "down" (a crashed endpoint), and
// "failpoint" (an armed p2p/drop site).
func msgDropped(t MsgType, reason string) *metrics.Counter {
	return metrics.Default().Counter("nezha_p2p_msgs_dropped_total",
		"Messages dropped in flight, by type and reason.",
		metrics.Label{Name: "type", Value: t.String()},
		metrics.Label{Name: "reason", Value: reason})
}

func msgSent(t MsgType) *metrics.Counter {
	return metrics.Default().Counter("nezha_p2p_msgs_sent_total",
		"Per-recipient message deliveries attempted.",
		metrics.Label{Name: "type", Value: t.String()})
}

func msgDelivered(t MsgType) *metrics.Counter {
	return metrics.Default().Counter("nezha_p2p_msgs_delivered_total",
		"Messages enqueued into a recipient inbox.",
		metrics.Label{Name: "type", Value: t.String()})
}

// MsgType discriminates network messages.
type MsgType int

// Message types.
const (
	// MsgBlock carries one freshly mined block (gossip).
	MsgBlock MsgType = iota + 1
	// MsgTxs carries client transactions toward miners.
	MsgTxs
	// MsgGetBlocks asks a peer for its canonical blocks above Height
	// (block synchronization for late joiners).
	MsgGetBlocks
	// MsgBlocks answers MsgGetBlocks with a batch of blocks in
	// parent-before-child order.
	MsgBlocks
)

// String implements fmt.Stringer (also the metrics type label).
func (t MsgType) String() string {
	switch t {
	case MsgBlock:
		return "block"
	case MsgTxs:
		return "txs"
	case MsgGetBlocks:
		return "get_blocks"
	case MsgBlocks:
		return "blocks"
	default:
		return fmt.Sprintf("type_%d", int(t))
	}
}

// Message is one network datagram.
type Message struct {
	From string
	Type MsgType
	// Block is set for MsgBlock.
	Block *types.Block
	// Txs is set for MsgTxs.
	Txs []*types.Transaction
	// Height is set for MsgGetBlocks: "send blocks above this height".
	Height uint64
	// Blocks is set for MsgBlocks.
	Blocks []*types.Block
	// UpTo is set on a MsgBlocks response: the batch covers every block
	// the sender knows with height in (request Height, UpTo]. The
	// requester resumes paging from UpTo.
	UpTo uint64
	// More is set on a MsgBlocks response whose sender capped the batch:
	// the requester should re-request from UpTo to keep catching up (see
	// node.HandleSyncRequest).
	More bool
}

// Config tunes the simulated network.
type Config struct {
	// Latency is the base one-way delivery delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// LossRate drops messages with this probability (retransmission is
	// the application's concern, mirroring gossip redundancy).
	LossRate float64
	// Seed drives the jitter/loss randomness.
	Seed int64
	// QueueLen is each endpoint's inbox capacity (senders drop when an
	// inbox is full, like a saturated socket buffer).
	QueueLen int
	// QueueRetries is how many times a delivery of a block-bearing
	// message (MsgBlock, MsgBlocks) retries a full inbox before dropping,
	// so a briefly-busy node does not force a full sync round. Other
	// message types always drop immediately (gossip redundancy covers
	// them). 0 means 3; negative disables retries.
	QueueRetries int
	// RetryDelay is the pause between inbox retries. 0 means the base
	// Latency, or 1 ms when Latency is 0.
	RetryDelay time.Duration
}

// DefaultConfig simulates a same-region LAN: 1 ms ± 1 ms, no loss.
func DefaultConfig() Config {
	return Config{Latency: time.Millisecond, Jitter: time.Millisecond, QueueLen: 1024}
}

// ErrDuplicateNode is returned when joining with a taken identifier.
var ErrDuplicateNode = errors.New("p2p: duplicate node id")

// Network is the in-process message fabric. Safe for concurrent use.
type Network struct {
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	nodes   map[string]*Endpoint
	pending sync.WaitGroup
	closed  bool
	// partition maps node id -> group index; nil means fully connected.
	// Nodes in different groups cannot exchange messages.
	partition map[string]int
	// down marks crashed endpoints: they neither send nor receive until
	// marked up again (crash-restart simulation keeps the endpoint and
	// its id, like a process restarting on the same host).
	down map[string]bool
}

// NewNetwork creates an empty network.
func NewNetwork(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.QueueRetries == 0 {
		cfg.QueueRetries = 3
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = cfg.Latency
		if cfg.RetryDelay <= 0 {
			cfg.RetryDelay = time.Millisecond
		}
	}
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[string]*Endpoint),
		down:  make(map[string]bool),
	}
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	id    string
	net   *Network
	inbox chan Message
}

// Join attaches a new endpoint with the given id.
func (n *Network) Join(id string) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, taken := n.nodes[id]; taken {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	ep := &Endpoint{id: id, net: n, inbox: make(chan Message, n.cfg.QueueLen)}
	n.nodes[id] = ep
	return ep, nil
}

// Peers returns the ids of all joined nodes.
func (n *Network) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// Partition splits the network into isolated groups: nodes may only
// exchange messages with nodes in their own group. Nodes not named in any
// group together form one implicit group of their own, so a single call
// like Partition([]string{"n3"}) isolates n3 from everyone else. Heal
// reconnects everything.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Listed groups are numbered from 1; unlisted nodes read as the map
	// zero value 0, the implicit group.
	n.partition = make(map[string]int)
	for g, ids := range groups {
		for _, id := range ids {
			n.partition[id] = g + 1
		}
	}
}

// Heal removes any partition: the network is fully connected again.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = nil
}

// SetDown marks an endpoint as crashed (true) or restarted (false). A down
// endpoint neither sends nor receives; its queued inbox messages remain
// and are typically drained by Endpoint.Drain on restart.
func (n *Network) SetDown(id string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = down
}

// Drain discards everything queued in the endpoint's inbox — a restarted
// process has an empty socket buffer.
func (e *Endpoint) Drain() int {
	drained := 0
	for {
		select {
		case <-e.inbox:
			drained++
		default:
			return drained
		}
	}
}

// reachableLocked reports whether a message from `from` may reach `to`
// under the current partition and crash state.
func (n *Network) reachableLocked(from, to string) (ok bool, reason string) {
	if n.down[from] || n.down[to] {
		return false, "down"
	}
	if n.partition != nil && n.partition[from] != n.partition[to] {
		return false, "partition"
	}
	return true, ""
}

// Close stops delivery; in-flight messages are awaited so no goroutine
// leaks past Close.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.pending.Wait()
}

// ID returns the endpoint's node id.
func (e *Endpoint) ID() string { return e.id }

// Inbox returns the receive channel.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Broadcast sends a message to every other endpoint, each delivery subject
// to latency, jitter, and loss.
func (e *Endpoint) Broadcast(msg Message) {
	msg.From = e.id
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	for id, peer := range n.nodes {
		if id == e.id {
			continue
		}
		n.deliverLocked(peer, msg)
	}
}

// Send delivers a message to one peer; unknown peers are silently dropped,
// as on a real lossy network.
func (e *Endpoint) Send(to string, msg Message) {
	msg.From = e.id
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if peer, ok := n.nodes[to]; ok {
		n.deliverLocked(peer, msg)
	}
}

func (n *Network) deliverLocked(to *Endpoint, msg Message) {
	msgSent(msg.Type).Inc()
	if ok, reason := n.reachableLocked(msg.From, to.id); !ok {
		msgDropped(msg.Type, reason).Inc()
		return
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		msgDropped(msg.Type, "loss").Inc()
		return
	}
	delay := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	// Block-bearing messages get a bounded number of inbox retries: a
	// briefly-saturated recipient should miss a block only under real
	// pressure, because every miss costs a sync round later.
	retries := 0
	if msg.Type == MsgBlock || msg.Type == MsgBlocks {
		retries = n.cfg.QueueRetries
	}
	retryDelay := n.cfg.RetryDelay
	n.pending.Add(1)
	go func() {
		defer n.pending.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		// Failpoints evaluate per delivery, scoped by the recipient: an
		// armed p2p/drop blackholes traffic toward one node, an armed
		// p2p/stall delays it (a slow peer).
		if fail.Drop(fail.P2PDrop, to.id) {
			msgDropped(msg.Type, "failpoint").Inc()
			return
		}
		_ = fail.HitTag(fail.P2PStall, to.id)
		// Non-blocking: a full inbox drops the message, like a saturated
		// socket buffer — after the bounded retries above, for blocks.
		for attempt := 0; ; attempt++ {
			select {
			case to.inbox <- msg:
				msgDelivered(msg.Type).Inc()
				return
			default:
				if attempt >= retries {
					msgDropped(msg.Type, "queue_full").Inc()
					return
				}
				time.Sleep(retryDelay)
			}
		}
	}()
}
