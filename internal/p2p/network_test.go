package p2p

import (
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

func TestJoinAndDuplicate(t *testing.T) {
	n := NewNetwork(Config{})
	if _, err := n.Join("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("a"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := n.Join("b"); err != nil {
		t.Fatal(err)
	}
	if len(n.Peers()) != 2 {
		t.Fatalf("peers = %v", n.Peers())
	}
	n.Close()
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	n := NewNetwork(Config{QueueLen: 16})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	c, _ := n.Join("c")

	blk := &types.Block{Header: types.BlockHeader{Nonce: 7}}
	a.Broadcast(Message{Type: MsgBlock, Block: blk})

	for _, peer := range []*Endpoint{b, c} {
		select {
		case msg := <-peer.Inbox():
			if msg.From != "a" || msg.Type != MsgBlock || msg.Block.Hash() != blk.Hash() {
				t.Fatalf("%s received %+v", peer.ID(), msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s never received the broadcast", peer.ID())
		}
	}
	select {
	case msg := <-a.Inbox():
		t.Fatalf("sender received own broadcast: %+v", msg)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSendTargeted(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	c, _ := n.Join("c")

	a.Send("b", Message{Type: MsgTxs, Txs: []*types.Transaction{{Nonce: 1}}})
	select {
	case msg := <-b.Inbox():
		if len(msg.Txs) != 1 || msg.Txs[0].Nonce != 1 {
			t.Fatalf("b received %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("b never received the message")
	}
	select {
	case <-c.Inbox():
		t.Fatal("c received a targeted message")
	case <-time.After(50 * time.Millisecond):
	}
	// Unknown peer: silently dropped.
	a.Send("nobody", Message{Type: MsgTxs})
}

func TestLatencyIsApplied(t *testing.T) {
	n := NewNetwork(Config{Latency: 50 * time.Millisecond})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	start := time.Now()
	a.Send("b", Message{Type: MsgTxs})
	<-b.Inbox()
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("delivered in %v despite 50ms latency", elapsed)
	}
}

func TestLossRate(t *testing.T) {
	n := NewNetwork(Config{LossRate: 1.0})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	a.Send("b", Message{Type: MsgTxs})
	select {
	case <-b.Inbox():
		t.Fatal("message survived 100% loss")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	n := NewNetwork(Config{})
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	n.Close()
	a.Send("b", Message{Type: MsgTxs})
	select {
	case <-b.Inbox():
		t.Fatal("delivery after close")
	case <-time.After(50 * time.Millisecond):
	}
}
