package p2p

import (
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

func TestJoinAndDuplicate(t *testing.T) {
	n := NewNetwork(Config{})
	if _, err := n.Join("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join("a"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := n.Join("b"); err != nil {
		t.Fatal(err)
	}
	if len(n.Peers()) != 2 {
		t.Fatalf("peers = %v", n.Peers())
	}
	n.Close()
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	n := NewNetwork(Config{QueueLen: 16})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	c, _ := n.Join("c")

	blk := &types.Block{Header: types.BlockHeader{Nonce: 7}}
	a.Broadcast(Message{Type: MsgBlock, Block: blk})

	for _, peer := range []*Endpoint{b, c} {
		select {
		case msg := <-peer.Inbox():
			if msg.From != "a" || msg.Type != MsgBlock || msg.Block.Hash() != blk.Hash() {
				t.Fatalf("%s received %+v", peer.ID(), msg)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s never received the broadcast", peer.ID())
		}
	}
	select {
	case msg := <-a.Inbox():
		t.Fatalf("sender received own broadcast: %+v", msg)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSendTargeted(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	c, _ := n.Join("c")

	a.Send("b", Message{Type: MsgTxs, Txs: []*types.Transaction{{Nonce: 1}}})
	select {
	case msg := <-b.Inbox():
		if len(msg.Txs) != 1 || msg.Txs[0].Nonce != 1 {
			t.Fatalf("b received %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("b never received the message")
	}
	select {
	case <-c.Inbox():
		t.Fatal("c received a targeted message")
	case <-time.After(50 * time.Millisecond):
	}
	// Unknown peer: silently dropped.
	a.Send("nobody", Message{Type: MsgTxs})
}

func TestLatencyIsApplied(t *testing.T) {
	n := NewNetwork(Config{Latency: 50 * time.Millisecond})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	start := time.Now()
	a.Send("b", Message{Type: MsgTxs})
	<-b.Inbox()
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("delivered in %v despite 50ms latency", elapsed)
	}
}

func TestLossRate(t *testing.T) {
	n := NewNetwork(Config{LossRate: 1.0})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	a.Send("b", Message{Type: MsgTxs})
	select {
	case <-b.Inbox():
		t.Fatal("message survived 100% loss")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	n := NewNetwork(Config{})
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	n.Close()
	a.Send("b", Message{Type: MsgTxs})
	select {
	case <-b.Inbox():
		t.Fatal("delivery after close")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPartitionBlocksCrossGroupTraffic(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")
	c, _ := n.Join("c")

	// Isolate c: a and b stay connected via the implicit group.
	n.Partition([]string{"c"})
	a.Send("c", Message{Type: MsgTxs})
	select {
	case <-c.Inbox():
		t.Fatal("message crossed the partition")
	case <-time.After(50 * time.Millisecond):
	}
	a.Send("b", Message{Type: MsgTxs})
	select {
	case <-b.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("same-group delivery blocked")
	}
	c.Send("a", Message{Type: MsgTxs})
	select {
	case <-a.Inbox():
		t.Fatal("isolated node reached the majority")
	case <-time.After(50 * time.Millisecond):
	}

	// Heal: traffic flows again.
	n.Heal()
	a.Send("c", Message{Type: MsgTxs})
	select {
	case <-c.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("healed partition still blocking")
	}
}

func TestSetDownSilencesEndpoint(t *testing.T) {
	n := NewNetwork(Config{})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")

	n.SetDown("b", true)
	a.Send("b", Message{Type: MsgTxs})
	b.Send("a", Message{Type: MsgTxs})
	select {
	case <-b.Inbox():
		t.Fatal("down endpoint received")
	case <-a.Inbox():
		t.Fatal("down endpoint sent")
	case <-time.After(50 * time.Millisecond):
	}

	// Restart: drain the stale inbox, then deliver normally.
	n.SetDown("b", false)
	b.Drain()
	a.Send("b", Message{Type: MsgTxs})
	select {
	case <-b.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("restarted endpoint unreachable")
	}
}

// TestQueueFullRetryForBlocks: with a 1-slot inbox, a second MsgBlock must
// survive a briefly-full queue via the bounded retry once the receiver
// drains, while a non-block message in the same situation drops.
func TestQueueFullRetryForBlocks(t *testing.T) {
	n := NewNetwork(Config{QueueLen: 1, QueueRetries: 20, RetryDelay: 5 * time.Millisecond})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")

	blk := &types.Block{Header: types.BlockHeader{Nonce: 1}}
	a.Send("b", Message{Type: MsgBlock, Block: blk})
	a.Send("b", Message{Type: MsgBlock, Block: blk})

	// Drain slowly: both blocks must arrive — the second one via retries.
	got := 0
	deadline := time.After(2 * time.Second)
	for got < 2 {
		time.Sleep(20 * time.Millisecond)
		select {
		case <-b.Inbox():
			got++
		case <-deadline:
			t.Fatalf("only %d of 2 blocks arrived; retry did not save the second", got)
		}
	}
}

// TestQueueFullDropsNonBlocksImmediately: transactions do not retry — with
// a stuffed 1-slot inbox they drop rather than block the delivery pool.
func TestQueueFullDropsNonBlocksImmediately(t *testing.T) {
	n := NewNetwork(Config{QueueLen: 1, QueueRetries: -1})
	defer n.Close()
	a, _ := n.Join("a")
	b, _ := n.Join("b")

	a.Send("b", Message{Type: MsgTxs})
	// Wait for the first delivery to occupy the only slot.
	time.Sleep(20 * time.Millisecond)
	a.Send("b", Message{Type: MsgTxs})
	time.Sleep(20 * time.Millisecond)
	if len(b.Inbox()) != 1 {
		t.Fatalf("inbox holds %d messages, want 1 (second dropped)", len(b.Inbox()))
	}
}
