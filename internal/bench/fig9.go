package bench

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/statedb"
	"github.com/nezha-dag/nezha/internal/types"
)

// schemeRun measures one scheduler over one prepared epoch: concurrency-
// control latency, commit latency (group-concurrent apply + trie flush),
// sub-phase breakdown, and abort statistics. failed is true when the CG
// baseline exceeded its cycle budget (the paper's OOM).
type schemeRun struct {
	control   time.Duration
	commit    time.Duration
	breakdown types.PhaseBreakdown
	committed int
	aborted   int
	failed    bool
}

// runScheme executes scheduling + commitment against an MPT-backed state
// seeded with the epoch snapshot.
func runScheme(o Options, sched types.Scheduler, snapshot map[types.Key][]byte, sims []*types.SimResult) (schemeRun, error) {
	var out schemeRun

	db := statedb.Open(kvstore.NewMemory(), mpt.EmptyRoot)
	seed := make([]types.WriteEntry, 0, len(snapshot))
	for k, v := range snapshot {
		seed = append(seed, types.WriteEntry{Key: k, Value: v})
	}
	// Seed order reaches the state trie; keep the run byte-reproducible.
	sort.Slice(seed, func(i, j int) bool { return seed[i].Key.Less(seed[j].Key) })
	if _, err := db.Commit(seed); err != nil {
		return out, err
	}

	start := time.Now()
	schedule, breakdown, err := sched.Schedule(sims)
	out.control = time.Since(start)
	if errors.Is(err, cg.ErrCycleExplosion) {
		out.failed = true
		return out, nil
	}
	if err != nil {
		return out, err
	}
	out.breakdown = breakdown
	out.committed = schedule.CommittedCount()
	out.aborted = schedule.AbortedCount()

	start = time.Now()
	if _, err := node.CommitSchedule(db, sims, schedule, o.Workers); err != nil {
		return out, err
	}
	out.commit = time.Since(start)
	return out, nil
}

// averageScheme repeats runScheme over o.Reps epochs (fresh workloads) and
// averages. A single failed rep marks the whole cell failed, as one OOM
// killed the paper's CG process.
func averageScheme(o Options, mk func() types.Scheduler, omega int, skew float64) (schemeRun, error) {
	var sum schemeRun
	for rep := 0; rep < o.Reps; rep++ {
		snapshot, sims, err := buildSims(o, omega, skew, int64(rep+1))
		if err != nil {
			return sum, err
		}
		r, err := runScheme(o, mk(), snapshot, sims)
		if err != nil {
			return sum, err
		}
		if r.failed {
			return schemeRun{failed: true}, nil
		}
		sum.control += r.control
		sum.commit += r.commit
		sum.breakdown.Add(r.breakdown)
		sum.committed += r.committed
		sum.aborted += r.aborted
	}
	sum.control /= time.Duration(o.Reps)
	sum.commit /= time.Duration(o.Reps)
	sum.breakdown.Graph /= time.Duration(o.Reps)
	sum.breakdown.Cycle /= time.Duration(o.Reps)
	sum.breakdown.Sort /= time.Duration(o.Reps)
	sum.committed /= o.Reps
	sum.aborted /= o.Reps
	return sum, nil
}

// Fig9 reproduces Fig. 9: concurrency-control + commitment latency of
// Nezha vs the CG baseline across block concurrency 2–12, one sub-table
// row set per skew in {0.2, 0.4, 0.6, 0.8}. Cells where CG exceeds its
// cycle budget print as "OOM", matching the paper's reported failure at
// skew 0.8 beyond concurrency 4.
func Fig9(o Options) (*Table, error) {
	t := &Table{
		Title:  "Fig 9 — concurrency control + commitment latency (ms)",
		Header: []string{"skew", "block_concurrency", "txs", "nezha_ms", "cg_ms", "cg_over_nezha"},
		Notes: []string{
			fmt.Sprintf("block size %d; %d reps; CG cycle budget %d (OOM emulation)", o.BlockSize, o.Reps, o.MaxCycles),
			"paper shape: nezha < 100 ms and flat; CG superlinear, >10 s at skew 0.6 ω=12, OOM at skew 0.8 ω>4",
		},
	}
	for _, skew := range []float64{0.2, 0.4, 0.6, 0.8} {
		for _, omega := range []int{2, 4, 6, 8, 10, 12} {
			nz, err := averageScheme(o, func() types.Scheduler { return nezhaScheduler(o) }, omega, skew)
			if err != nil {
				return nil, err
			}
			cgRun, err := averageScheme(o, func() types.Scheduler { return cgScheduler(o) }, omega, skew)
			if err != nil {
				return nil, err
			}
			nzMs := float64((nz.control + nz.commit).Microseconds()) / 1000
			row := []string{
				fmt.Sprintf("%.1f", skew),
				itoa(omega),
				itoa(omega * o.BlockSize),
				ms(nzMs),
			}
			if cgRun.failed {
				row = append(row, "OOM", "-")
			} else {
				cgMs := float64((cgRun.control + cgRun.commit).Microseconds()) / 1000
				row = append(row, ms(cgMs), ftoa(cgMs/nzMs))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
