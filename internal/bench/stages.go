package bench

import (
	"fmt"
)

// StagePipeline (extension) profiles the staged epoch pipeline: per-stage
// wall-clock share, queue depth, pool occupancy, and the cross-epoch
// overlap won by prevalidating the next epoch's signatures under the
// current commit. It also reports the parallel scheduler core's fan-out
// shape (ACG build shards, conflict clusters) from the control-phase
// breakdown.
func StagePipeline(o Options) (*Table, error) {
	t := &Table{
		Title:  "Extension — staged pipeline: per-stage latency, occupancy, and overlap",
		Header: []string{"skew", "stage", "total_ms", "tasks", "workers", "occupancy_pct", "overlap_ms"},
		Notes: []string{
			"occupancy = busy / (duration × workers); only fan-out stages keep busy spans",
			"overlap_ms: validation cost already paid in the background under the previous epoch's commit",
		},
	}
	const omega = 4
	for _, skew := range []float64{0.2, 0.6} {
		sum, err := runPipeline(o, omega, skew, nezhaScheduler(o), int64(skew*100)+3)
		if err != nil {
			return nil, err
		}
		for _, st := range sum.Stages {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", skew),
				st.Name,
				ms(float64(st.Duration.Microseconds()) / 1000),
				itoa(st.Tasks),
				itoa(st.Workers),
				pct(st.Occupancy()),
				ms(float64(st.Overlap.Microseconds()) / 1000),
			})
		}
		bd := sum.ControlBreakdown
		t.Notes = append(t.Notes, fmt.Sprintf(
			"skew %.1f scheduler core: %d ACG shards, %d conflict clusters (largest %d addrs) over %d epochs",
			skew, bd.Shards, bd.SortClusters, bd.MaxClusterAddrs, sum.Epochs))
	}
	return t, nil
}
