package bench

import (
	"fmt"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// runPipeline drives the full node pipeline (VM execution, scheduling, MPT
// commitment) over `reps` epochs of omega blocks each and returns the
// aggregated metrics. sched == nil selects the serial baseline.
func runPipeline(o Options, omega int, skew float64, sched types.Scheduler, seedSalt int64) (metrics.Summary, error) {
	cfg := workload.Config{
		Seed:           o.Seed + seedSalt*104_729,
		Accounts:       o.Accounts,
		Skew:           skew,
		InitialBalance: 10_000,
	}
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		return metrics.Summary{}, err
	}
	perEpoch := omega * o.BlockSize
	txs := gen.Txs(perEpoch * o.Reps)
	snap, err := gen.Snapshot(txs)
	if err != nil {
		return metrics.Summary{}, err
	}
	genesis := make([]types.WriteEntry, 0, len(snap))
	for k, v := range snap {
		genesis = append(genesis, types.WriteEntry{Key: k, Value: v})
	}

	n, err := node.New("bench", kvstore.NewMemory(), node.Config{
		Consensus:     consensus.Params{Chains: omega, DifficultyBits: 0},
		Scheduler:     sched,
		Workers:       o.Workers,
		Parallelism:   o.Parallelism,
		Contracts:     map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
		GenesisWrites: genesis,
	})
	if err != nil {
		return metrics.Summary{}, err
	}

	for rep := 0; rep < o.Reps; rep++ {
		epochTxs := txs[rep*perEpoch : (rep+1)*perEpoch]
		blocks := assembleBlocks(n, epochTxs, omega, o.BlockSize)
		if _, err := n.ProcessAssembledEpoch(blocks); err != nil {
			return metrics.Summary{}, fmt.Errorf("bench: epoch %d: %w", rep+1, err)
		}
	}
	return n.Metrics().Summarize(), nil
}

// assembleBlocks packs transactions into omega synthetic blocks carrying
// the node's current state root — the benchmark's stand-in for mined
// blocks, giving exact control over block concurrency.
func assembleBlocks(n *node.Node, txs []*types.Transaction, omega, blockSize int) []*types.Block {
	epoch := n.NextEpoch()
	blocks := make([]*types.Block, 0, omega)
	for c := 0; c < omega; c++ {
		start := c * blockSize
		end := start + blockSize
		if end > len(txs) {
			end = len(txs)
		}
		blockTxs := txs[start:end]
		blocks = append(blocks, &types.Block{
			Header: types.BlockHeader{
				TxRoot:    types.ComputeTxRoot(blockTxs),
				StateRoot: n.StateRoot(),
				Time:      epoch,
				Miner:     types.AddressFromUint64(uint64(c)),
				ChainID:   uint32(c),
				Height:    epoch,
				Rank:      epoch,
				NextRank:  epoch + 1,
			},
			Txs: blockTxs,
		})
	}
	return blocks
}
