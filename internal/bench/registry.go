package bench

import "fmt"

// Experiment couples a name with its runner.
type Experiment struct {
	Name string
	Desc string
	Run  func(Options) (*Table, error)
}

// Experiments lists every regenerable table and figure, in presentation
// order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I: theoretical conflicts vs block concurrency", Table1},
		{"table4", "Table IV: serial vs Nezha processing latency (skew 0)", Table4},
		{"fig9", "Fig 9: CC+commit latency, Nezha vs CG, skew 0.2-0.8", Fig9},
		{"fig10", "Fig 10: CC sub-phase latency breakdown", Fig10},
		{"fig11", "Fig 11: abort rate vs skew, concurrency 1", Fig11},
		{"fig12", "Fig 12: effective throughput, Serial/CG/Nezha", Fig12},
		{"ablation-reorder", "A1: reordering on/off", AblationReordering},
		{"ablation-rank", "A2: rank-division heuristic", AblationRankHeuristic},
		{"ablation-commit", "A3: commit concurrency", AblationCommitConcurrency},
		{"ablation-graph", "A4: ACG vs CG construction", AblationGraphConstruction},
		{"ablation-writemix", "A5 (extension): read-only mix sensitivity", AblationWriteMix},
		{"occ-abort", "Extension: plain OCC vs CG vs Nezha abort rates", OCCAbortComparison},
		{"scheduler-comparison", "Extension: occ/occda/cg/nezha abort + phase breakdown", SchedulerComparison},
		{"exec-alloc", "Extension: MVCC view vs snapshot-copy execution allocations", ExecAllocComparison},
		{"stages", "Extension: staged pipeline occupancy and cross-epoch overlap", StagePipeline},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}
