// Package bench regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablations called out in DESIGN.md. Each
// experiment returns a Table that prints as text or CSV; cmd/nezha-bench is
// the CLI front end and the repository-root bench_test.go wraps each
// experiment in a testing.B benchmark.
//
// Absolute numbers will differ from the paper (the substrate here is a
// simulator on one machine, not a 14-node cluster with EVM and LevelDB);
// EXPERIMENTS.md records the shape comparisons that are expected to hold.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// Options parameterize every experiment. DefaultOptions matches §VI-A.
type Options struct {
	// Seed makes all workloads reproducible.
	Seed int64
	// BlockSize is transactions per block (paper: 200).
	BlockSize int
	// Accounts is the SmallBank population (paper: 10k).
	Accounts uint64
	// Reps is how many epochs each data point averages over (paper: ≥4).
	Reps int
	// Workers sizes execution/commit pools; 0 = GOMAXPROCS.
	Workers int
	// Parallelism is the scheduler-core fan-out (sharded ACG build,
	// cluster-parallel sorting) and the node pipeline's background pool:
	// 0 = GOMAXPROCS, 1 = the sequential reference core.
	Parallelism int
	// MaxCycles bounds how many circuits the CG baseline may hold for
	// exact greedy cover before falling back to streaming removal.
	MaxCycles int
	// CGTimeBudgetSec caps each CG scheduling call; exceeding it marks
	// the cell the way the paper reports its OOM failures.
	CGTimeBudgetSec float64
	// BlockIntervalSec is the expected block generation latency the
	// throughput experiment assumes (paper: 1 s).
	BlockIntervalSec float64
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		Seed:             1,
		BlockSize:        200,
		Accounts:         10_000,
		Reps:             4,
		MaxCycles:        200_000,
		CGTimeBudgetSec:  30,
		BlockIntervalSec: 1,
	}
}

// Quick shrinks an option set for smoke tests and CI: smaller blocks,
// single rep, tight cycle cap.
func (o Options) Quick() Options {
	o.BlockSize = 50
	o.Reps = 1
	o.MaxCycles = 50_000
	o.CGTimeBudgetSec = 5
	return o
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (quotes are unnecessary: cells are
// numbers and plain identifiers by construction).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// buildSims generates one epoch's worth of SmallBank simulation results via
// the fast path: omega blocks of BlockSize transactions at the given skew.
// seedSalt decorrelates repetitions.
func buildSims(o Options, omega int, skew float64, seedSalt int64) (map[types.Key][]byte, []*types.SimResult, error) {
	cfg := workload.Config{
		Seed:           o.Seed + seedSalt*7919,
		Accounts:       o.Accounts,
		Skew:           skew,
		InitialBalance: 10_000,
	}
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		return nil, nil, err
	}
	txs := gen.Txs(omega * o.BlockSize)
	for i, tx := range txs {
		tx.ID = types.TxID(i)
	}
	snapshot, err := gen.Snapshot(txs)
	if err != nil {
		return nil, nil, err
	}
	sims, err := workload.Simulate(txs, snapshot)
	if err != nil {
		return nil, nil, err
	}
	return snapshot, sims, nil
}

// nezhaScheduler returns the paper's full Nezha configuration with the
// option set's core parallelism.
func nezhaScheduler(o Options) types.Scheduler {
	cfg := core.DefaultConfig()
	cfg.Parallelism = o.Parallelism
	return core.MustNewScheduler(cfg)
}

// cgScheduler returns the strawman baseline with the configured caps.
func cgScheduler(o Options) types.Scheduler {
	return cg.NewScheduler(cg.Config{
		MaxCycles:  o.MaxCycles,
		TimeBudget: time.Duration(o.CGTimeBudgetSec * float64(time.Second)),
	})
}

func ms(d float64) string   { return fmt.Sprintf("%.2f", d) }
func pct(f float64) string  { return fmt.Sprintf("%.2f", 100*f) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(f float64) string { return fmt.Sprintf("%.1f", f) }
