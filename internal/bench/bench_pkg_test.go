package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// quickOpts returns heavily-shrunk options so the whole suite smoke-runs in
// seconds.
func quickOpts() Options {
	o := DefaultOptions().Quick()
	o.BlockSize = 20
	o.Accounts = 1000
	o.MaxCycles = 50_000
	return o
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var text, csv bytes.Buffer
	if err := tbl.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "## demo") || !strings.Contains(text.String(), "333") {
		t.Fatalf("text output wrong:\n%s", text.String())
	}
	if !strings.HasPrefix(csv.String(), "a,bb\n1,2\n") {
		t.Fatalf("csv output wrong:\n%s", csv.String())
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Experiments()) < 10 {
		t.Fatalf("registry lists %d experiments", len(Experiments()))
	}
}

// TestAllExperimentsSmoke runs every experiment at drastically reduced
// scale: each must produce a table with the right header arity and at
// least one row.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow even when shrunk")
	}
	o := quickOpts()
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tbl, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", e.Name)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s: row arity %d != header %d", e.Name, len(row), len(tbl.Header))
				}
			}
			var buf bytes.Buffer
			if err := tbl.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTable1MatchesPaperClosedForm: the total-conflicts column is exact.
func TestTable1MatchesPaperClosedForm(t *testing.T) {
	tbl, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"2": "780", "4": "3160", "6": "7140", "8": "12720"}
	for _, row := range tbl.Rows {
		if row[1] != want[row[0]] {
			t.Fatalf("concurrency %s: total %s, want %s", row[0], row[1], want[row[0]])
		}
	}
}

// TestFig11ShapeHolds: the abort-rate curves must rise with skew and Nezha
// must not abort more than CG at the top end (the reordering advantage).
func TestFig11ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := quickOpts()
	o.BlockSize = 200 // abort rates need realistic block fill
	o.Reps = 2
	tbl, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	first := tbl.Rows[0]
	last := tbl.Rows[len(tbl.Rows)-1]
	if atof(t, last[1]) < atof(t, first[1]) {
		t.Fatalf("nezha abort rate fell with skew: %s -> %s", first[1], last[1])
	}
	if last[2] != "OOM" && atof(t, last[1]) > atof(t, last[2])+0.5 {
		t.Fatalf("nezha aborts (%s%%) materially exceed CG (%s%%) at skew 1.0", last[1], last[2])
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	var f float64
	if _, err := fmt.Sscanf(s, "%f", &f); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}
