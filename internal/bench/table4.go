package bench

import "fmt"

// Table4 reproduces the paper's Table IV: overall transaction processing
// latency under the uniform workload (skew = 0), Serial vs Nezha, with
// Nezha's latency split into execution ("e") and concurrency control +
// commitment ("c") — the same split the paper prints.
func Table4(o Options) (*Table, error) {
	t := &Table{
		Title: "Table IV — processing latency (ms), uniform workload (skew 0)",
		Header: []string{
			"block_concurrency", "txs_per_epoch",
			"serial_ms", "nezha_execute_ms(e)", "nezha_control_commit_ms(c)", "speedup",
		},
		Notes: []string{
			fmt.Sprintf("block size %d txs; averaged over %d epochs", o.BlockSize, o.Reps),
			"paper (cluster, EVM+LevelDB): serial 4.7s..36.6s, nezha e 123..743ms, c 22..87ms; shapes (linear growth, order-of-magnitude gap) are the comparison target",
		},
	}
	for _, omega := range []int{2, 4, 6, 8, 10, 12} {
		serial, err := runPipeline(o, omega, 0, nil, int64(omega))
		if err != nil {
			return nil, err
		}
		nezha, err := runPipeline(o, omega, 0, nezhaScheduler(o), int64(omega))
		if err != nil {
			return nil, err
		}
		reps := float64(o.Reps)
		serialMs := float64(serial.Total().Microseconds()) / 1000 / reps
		execMs := float64(nezha.Execute.Microseconds()) / 1000 / reps
		ccMs := float64((nezha.Control + nezha.Commit).Microseconds()) / 1000 / reps
		speedup := serialMs / (execMs + ccMs)
		t.Rows = append(t.Rows, []string{
			itoa(omega),
			itoa(omega * o.BlockSize),
			ms(serialMs),
			ms(execMs),
			ms(ccMs),
			ftoa(speedup),
		})
	}
	return t, nil
}
