package bench

import (
	"fmt"
	"math/rand"

	"github.com/nezha-dag/nezha/internal/workload"
)

// Table1 reproduces the paper's Table I: the theoretical number of
// conflicts in a DAG-based blockchain as block concurrency grows, with
// block size 20 and a fixed Zipfian access over 10k accounts. Results are
// in units of p (the pairwise conflict probability).
//
// Total conflicts is the closed form C = N(N-1)/2 (Equation 1 with p
// factored out). Average conflicts per address divides by the expected
// number of distinct accessed addresses, estimated by Monte Carlo over the
// Zipfian distribution — the paper's construction, reproduced with its
// parameters (the exact Zipf coefficient is
// unstated; 1.0 reproduces the column's ~6x growth trend, within ~1.3x of
// each printed cell).
func Table1(o Options) (*Table, error) {
	const (
		blockSize = 20
		zipfSkew  = 1.0
		trials    = 2000
	)
	t := &Table{
		Title:  "Table I — theoretical conflicts vs block concurrency (units of p)",
		Header: []string{"block_concurrency", "total_conflicts", "avg_conflicts_per_address", "paper_total", "paper_per_address"},
		Notes: []string{
			"block size 20 txs, 10k accounts, Zipfian account access (coefficient 1.0; the paper leaves its 'fixed Zipfian' coefficient unstated)",
			"per-address = total / E[#distinct addresses], E by Monte Carlo",
		},
	}
	paperTotals := map[int]int{2: 780, 4: 3160, 6: 7140, 8: 12720}
	paperPerAddr := map[int]int{2: 26, 4: 56, 6: 106, 8: 150}

	rng := rand.New(rand.NewSource(o.Seed))
	for _, omega := range []int{2, 4, 6, 8} {
		n := omega * blockSize
		total := n * (n - 1) / 2

		// E[#distinct addresses] when n transactions each access one
		// Zipfian-drawn account. One generator serves all trials (the
		// zeta precomputation over 10k items dominates construction).
		z, err := workload.NewZipfian(rng.Int63(), 10_000, zipfSkew)
		if err != nil {
			return nil, err
		}
		var sumDistinct float64
		for trial := 0; trial < trials; trial++ {
			seen := make(map[uint64]struct{}, n)
			for i := 0; i < n; i++ {
				seen[z.Next()] = struct{}{}
			}
			sumDistinct += float64(len(seen))
		}
		distinct := sumDistinct / trials
		perAddr := float64(total) / distinct

		t.Rows = append(t.Rows, []string{
			itoa(omega),
			itoa(total),
			fmt.Sprintf("%.0f", perAddr),
			itoa(paperTotals[omega]),
			itoa(paperPerAddr[omega]),
		})
	}
	return t, nil
}
