package bench

import (
	"errors"
	"fmt"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/types"
)

// Fig12 reproduces Fig. 12: effective system throughput (committed
// transactions per second) of Serial, CG, and Nezha across block
// concurrency 2–12 at skew 0.2 and 0.6. The paper sets the expected block
// generation latency to 1 second, so an epoch is produced every
// max(1 s, processing latency): schemes faster than the block interval are
// consensus-bound (throughput grows with concurrency), slower schemes are
// processing-bound (throughput stalls or collapses).
func Fig12(o Options) (*Table, error) {
	t := &Table{
		Title:  "Fig 12 — effective throughput (tps)",
		Header: []string{"skew", "block_concurrency", "serial_tps", "cg_tps", "nezha_tps"},
		Notes: []string{
			fmt.Sprintf("block interval %.1f s; full pipeline (MiniVM execution + scheduling + MPT commit); %d epochs per point", o.BlockIntervalSec, o.Reps),
			"paper shape: serial flat (~60 tps); CG grows then collapses at skew 0.6 ω=12; nezha near-linear in concurrency",
		},
	}
	for _, skew := range []float64{0.2, 0.6} {
		for _, omega := range []int{2, 4, 6, 8, 10, 12} {
			row := []string{fmt.Sprintf("%.1f", skew), itoa(omega)}
			for _, mk := range []func() types.Scheduler{
				func() types.Scheduler { return nil }, // serial
				func() types.Scheduler { return cgScheduler(o) },
				func() types.Scheduler { return nezhaScheduler(o) },
			} {
				sum, err := runPipeline(o, omega, skew, mk(), int64(omega*100)+int64(skew*10))
				if errors.Is(err, cg.ErrCycleExplosion) {
					// The CG baseline legitimately dies under high
					// contention, as the paper's did of OOM.
					row = append(row, "OOM")
					continue
				}
				if err != nil {
					return nil, err
				}
				perEpochSec := sum.Total().Seconds() / float64(sum.Epochs)
				if perEpochSec < o.BlockIntervalSec {
					perEpochSec = o.BlockIntervalSec
				}
				tps := float64(sum.Committed) / float64(sum.Epochs) / perEpochSec
				row = append(row, fmt.Sprintf("%.0f", tps))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
