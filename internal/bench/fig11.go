package bench

import (
	"fmt"

	"github.com/nezha-dag/nezha/internal/types"
)

// Fig11 reproduces Fig. 11: the transaction abort rate of Nezha vs the CG
// baseline under high data contention (skew 0.6–1.0) at block concurrency 1
// — the paper pins concurrency to 1 because CG tends to die of memory
// exhaustion at larger concurrency under these skews.
func Fig11(o Options) (*Table, error) {
	t := &Table{
		Title:  "Fig 11 — transaction abort rate (%), block concurrency 1",
		Header: []string{"skew", "nezha_abort_pct", "cg_abort_pct", "nezha_advantage_pp"},
		Notes: []string{
			fmt.Sprintf("block size %d; %d reps per point", o.BlockSize, o.Reps),
			"paper shape: both low at 0.6-0.7, both rise steeply after; nezha below CG by ~3.5 pp at skew 1.0 (reordering, §IV-D)",
		},
	}
	const omega = 1
	for _, skew := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		nz, err := averageScheme(o, func() types.Scheduler { return nezhaScheduler(o) }, omega, skew)
		if err != nil {
			return nil, err
		}
		cgRun, err := averageScheme(o, func() types.Scheduler { return cgScheduler(o) }, omega, skew)
		if err != nil {
			return nil, err
		}
		nzRate := rate(nz)
		row := []string{fmt.Sprintf("%.1f", skew), pct(nzRate)}
		if cgRun.failed {
			row = append(row, "OOM", "-")
		} else {
			cgRate := rate(cgRun)
			row = append(row, pct(cgRate), fmt.Sprintf("%.2f", 100*(cgRate-nzRate)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func rate(r schemeRun) float64 {
	total := r.committed + r.aborted
	if total == 0 {
		return 0
	}
	return float64(r.aborted) / float64(total)
}
