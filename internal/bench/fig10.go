package bench

import (
	"fmt"

	"github.com/nezha-dag/nezha/internal/types"
)

// Fig10 reproduces Fig. 10: the latency of each concurrency-control
// sub-phase at block concurrency 4 under skew 0.5 and 0.6. The phases line
// up as the paper draws them — graph construction; cycle detection &
// removal (CG) vs sorting-rank division (Nezha); topological sorting (CG)
// vs transaction sorting (Nezha) — plus the commitment latency.
func Fig10(o Options) (*Table, error) {
	t := &Table{
		Title: "Fig 10 — concurrency-control sub-phase latency (ms), block concurrency 4",
		Header: []string{
			"skew", "scheme", "graph_construction_ms",
			"cycle_or_rank_ms", "sorting_ms", "commit_ms", "total_ms",
		},
		Notes: []string{
			"cycle_or_rank: CG = cycle detection+removal (Johnson), Nezha = sorting-rank division",
			"paper shape: CG dominated by graph construction at skew 0.5 and by cycle handling at 0.6; Nezha's graph construction negligible, sorting stable",
		},
	}
	const omega = 4
	for _, skew := range []float64{0.5, 0.6} {
		for _, scheme := range []struct {
			name string
			mk   func() types.Scheduler
		}{
			{"nezha", func() types.Scheduler { return nezhaScheduler(o) }},
			{"cg", func() types.Scheduler { return cgScheduler(o) }},
		} {
			run, err := averageScheme(o, scheme.mk, omega, skew)
			if err != nil {
				return nil, err
			}
			if run.failed {
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%.1f", skew), scheme.name, "OOM", "OOM", "OOM", "-", "-",
				})
				continue
			}
			graphMs := float64(run.breakdown.Graph.Microseconds()) / 1000
			cycleMs := float64(run.breakdown.Cycle.Microseconds()) / 1000
			sortMs := float64(run.breakdown.Sort.Microseconds()) / 1000
			commitMs := float64(run.commit.Microseconds()) / 1000
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", skew),
				scheme.name,
				ms(graphMs),
				ms(cycleMs),
				ms(sortMs),
				ms(commitMs),
				ms(graphMs + cycleMs + sortMs + commitMs),
			})
		}
	}
	return t, nil
}
