package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/nezha-dag/nezha/internal/consensus"
	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// ExecAllocComparison (extension) prices the PR's headline claim: per-epoch
// execution through the MVCC view allocates no full-state copy, where the
// legacy path pays a fresh Snapshot (sharded cache maps plus memoized
// values) every epoch. Both modes process identical assembled epochs; the
// allocation columns are Mallocs/TotalAlloc deltas around the processing
// loop with the collector quiesced.
func ExecAllocComparison(o Options) (*Table, error) {
	t := &Table{
		Title:  "Extension — execution allocation: MVCC view vs per-epoch snapshot copy",
		Header: []string{"mode", "txs_epoch", "epochs", "allocs_per_epoch", "kb_per_epoch", "epoch_ms"},
		Notes: []string{
			"identical assembled epochs; deltas of runtime.MemStats around the processing loop",
			"the snapshot row re-copies per epoch; the mvcc row shares one version cache across epochs",
		},
	}
	const omega, skew = 4, 0.2
	type modeRun struct {
		name      string
		snapshots bool
	}
	var perEpochAllocs [2]float64
	for i, mode := range []modeRun{{"mvcc", false}, {"snapshot", true}} {
		allocs, bytes, dur, err := runExecAlloc(o, omega, skew, mode.snapshots)
		if err != nil {
			return nil, err
		}
		perEpochAllocs[i] = allocs
		t.Rows = append(t.Rows, []string{
			mode.name,
			itoa(omega * o.BlockSize),
			itoa(o.Reps),
			ftoa(allocs),
			ftoa(bytes / 1024),
			ms(float64(dur.Microseconds()) / 1000),
		})
	}
	t.Rows = append(t.Rows, []string{
		"snapshot-mvcc", "-", "-", ftoa(perEpochAllocs[1] - perEpochAllocs[0]), "-", "-",
	})
	return t, nil
}

// runExecAlloc processes o.Reps assembled epochs in one execution mode and
// returns mean allocations, allocated bytes, and wall time per epoch.
func runExecAlloc(o Options, omega int, skew float64, snapshots bool) (allocs, bytes float64, perEpoch time.Duration, err error) {
	cfg := workload.Config{
		Seed:           o.Seed + 7919,
		Accounts:       o.Accounts,
		Skew:           skew,
		InitialBalance: 10_000,
	}
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	perEpochTxs := omega * o.BlockSize
	txs := gen.Txs(perEpochTxs * o.Reps)
	snap, err := gen.Snapshot(txs)
	if err != nil {
		return 0, 0, 0, err
	}
	genesis := make([]types.WriteEntry, 0, len(snap))
	for k, v := range snap {
		genesis = append(genesis, types.WriteEntry{Key: k, Value: v})
	}
	n, err := node.New("bench-alloc", kvstore.NewMemory(), node.Config{
		Consensus:         consensus.Params{Chains: omega, DifficultyBits: 0},
		Scheduler:         nezhaScheduler(o),
		Workers:           o.Workers,
		Parallelism:       o.Parallelism,
		Contracts:         map[types.Address][]byte{smallbank.ContractAddress: smallbank.Program()},
		GenesisWrites:     genesis,
		SnapshotExecution: snapshots,
		PredictReads:      func(tx *types.Transaction) []types.Key { return smallbank.PredictCall(tx.Payload) },
	})
	if err != nil {
		return 0, 0, 0, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for rep := 0; rep < o.Reps; rep++ {
		epochTxs := txs[rep*perEpochTxs : (rep+1)*perEpochTxs]
		blocks := assembleBlocks(n, epochTxs, omega, o.BlockSize)
		if _, err := n.ProcessAssembledEpoch(blocks); err != nil {
			return 0, 0, 0, fmt.Errorf("bench: exec-alloc epoch %d: %w", rep+1, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	reps := float64(o.Reps)
	return float64(after.Mallocs-before.Mallocs) / reps,
		float64(after.TotalAlloc-before.TotalAlloc) / reps,
		elapsed / time.Duration(o.Reps), nil
}
