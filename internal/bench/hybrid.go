package bench

import (
	"fmt"

	"github.com/nezha-dag/nezha/internal/occ"
	"github.com/nezha-dag/nezha/internal/occda"
	"github.com/nezha-dag/nezha/internal/types"
)

// SchedulerComparison (extension) lines up the three registered schemes —
// Nezha, the CG baseline, and the OCC-DA hybrid — plus plain OCC as the
// floor, on identical epochs: abort rate, rescues, and the per-phase cost
// split. OCC-DA's interesting cell is the gap between its abort rate and
// plain OCC's (what per-victim dependency analysis recovers) versus the
// gap to Nezha (what batched sorting additionally recovers), priced by
// the cycle/rescue phase column.
func SchedulerComparison(o Options) (*Table, error) {
	t := &Table{
		Title:  "Extension — scheduler comparison: occ / occda / cg / nezha (concurrency 4)",
		Header: []string{"skew", "scheme", "abort_pct", "rescued", "graph_ms", "cycle_ms", "sort_ms", "cc_commit_ms"},
		Notes: []string{
			"rescued = OCC victims recovered by occda's dependency-aware second pass (avg/epoch)",
			"phase columns: graph = OCC pass / ACG build, cycle = rescue / cycle break, sort = renumber / rank division",
		},
	}
	schemes := []struct {
		name string
		mk   func() types.Scheduler
	}{
		{"occ", func() types.Scheduler { return occ.NewScheduler() }},
		{"occda", func() types.Scheduler { return occda.NewScheduler() }},
		{"cg", func() types.Scheduler { return cgScheduler(o) }},
		{"nezha", func() types.Scheduler { return nezhaScheduler(o) }},
	}
	for _, skew := range []float64{0.4, 0.6, 0.8, 1.0} {
		for _, scheme := range schemes {
			run, err := averageScheme(o, scheme.mk, 4, skew)
			if err != nil {
				return nil, err
			}
			if run.failed {
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%.1f", skew), scheme.name, "OOM", "-", "-", "-", "-", "-",
				})
				continue
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", skew),
				scheme.name,
				pct(rate(run)),
				itoa(run.breakdown.Rescued / o.Reps),
				ms(float64(run.breakdown.Graph.Microseconds()) / 1000),
				ms(float64(run.breakdown.Cycle.Microseconds()) / 1000),
				ms(float64(run.breakdown.Sort.Microseconds()) / 1000),
				ms(float64((run.control + run.commit).Microseconds()) / 1000),
			})
		}
	}
	return t, nil
}
