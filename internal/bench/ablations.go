package bench

import (
	"fmt"
	"time"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/occ"
	"github.com/nezha-dag/nezha/internal/statedb"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// AblationReordering (A1) isolates the §IV-D enhancement: abort rates with
// and without reordering across high skews at block concurrency 1.
func AblationReordering(o Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A1 — reordering (§IV-D) on/off: abort rate (%), concurrency 1",
		Header: []string{"skew", "nezha_full_pct", "nezha_no_reorder_pct", "rescued_pp"},
	}
	plain := func() types.Scheduler {
		return core.MustNewScheduler(core.Config{Reorder: false, Heuristic: core.RankMaxOutDegree})
	}
	for _, skew := range []float64{0.6, 0.8, 0.9, 1.0} {
		full, err := averageScheme(o, func() types.Scheduler { return nezhaScheduler(o) }, 1, skew)
		if err != nil {
			return nil, err
		}
		off, err := averageScheme(o, plain, 1, skew)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", skew),
			pct(rate(full)),
			pct(rate(off)),
			fmt.Sprintf("%.2f", 100*(rate(off)-rate(full))),
		})
	}
	return t, nil
}

// AblationRankHeuristic (A2) compares Algorithm 1's max-out-degree cycle
// break against the naive min-subscript pick: abort rate and rank-division
// latency under contention.
func AblationRankHeuristic(o Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A2 — rank-division cycle heuristic: max-out-degree vs min-subscript",
		Header: []string{"skew", "heuristic", "abort_pct", "rank_division_ms"},
	}
	heuristics := []struct {
		name string
		h    core.RankHeuristic
	}{
		{"max-out-degree", core.RankMaxOutDegree},
		{"min-subscript", core.RankMinSubscript},
	}
	for _, skew := range []float64{0.8, 1.0} {
		for _, h := range heuristics {
			mk := func() types.Scheduler {
				return core.MustNewScheduler(core.Config{Reorder: true, Heuristic: h.h})
			}
			run, err := averageScheme(o, mk, 4, skew)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", skew),
				h.name,
				pct(rate(run)),
				ms(float64(run.breakdown.Cycle.Microseconds()) / 1000),
			})
		}
	}
	return t, nil
}

// AblationCommitConcurrency (A3) measures what the group-concurrent commit
// buys: the same Nezha schedule committed with group concurrency vs one
// transaction at a time (the CG baseline's commit discipline).
func AblationCommitConcurrency(o Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A3 — commit concurrency: group-concurrent vs serial apply of the same schedule",
		Header: []string{"block_concurrency", "txs", "group_commit_ms", "serial_commit_ms", "speedup"},
	}
	for _, omega := range []int{4, 8, 12} {
		snapshot, sims, err := buildSims(o, omega, 0, int64(omega))
		if err != nil {
			return nil, err
		}
		sched, _, err := nezhaScheduler(o).Schedule(sims)
		if err != nil {
			return nil, err
		}
		seed := make([]types.WriteEntry, 0, len(snapshot))
		for k, v := range snapshot {
			seed = append(seed, types.WriteEntry{Key: k, Value: v})
		}
		timeCommit := func(serial bool) (time.Duration, error) {
			db := statedb.Open(kvstore.NewMemory(), mpt.EmptyRoot)
			if _, err := db.Commit(seed); err != nil {
				return 0, err
			}
			start := time.Now()
			if serial {
				byID := make(map[types.TxID]*types.SimResult, len(sims))
				for _, sim := range sims {
					byID[sim.Tx.ID] = sim
				}
				for _, id := range sched.SerialOrder() {
					if _, err := db.Commit(byID[id].Writes); err != nil {
						return 0, err
					}
				}
			} else {
				if _, err := node.CommitSchedule(db, sims, sched, o.Workers); err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}
		group, err := timeCommit(false)
		if err != nil {
			return nil, err
		}
		serial, err := timeCommit(true)
		if err != nil {
			return nil, err
		}
		gMs := float64(group.Microseconds()) / 1000
		sMs := float64(serial.Microseconds()) / 1000
		t.Rows = append(t.Rows, []string{
			itoa(omega), itoa(omega * o.BlockSize), ms(gMs), ms(sMs), ftoa(sMs / gMs),
		})
	}
	return t, nil
}

// AblationGraphConstruction (A4) isolates graph construction: ACG vs
// pairwise CG build cost as the transaction count grows (complements
// Fig. 10).
func AblationGraphConstruction(o Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A4 — graph construction only: ACG (O(u·N)) vs CG (pairwise)",
		Header: []string{"skew", "txs", "acg_build_ms", "cg_build_ms", "cg_over_acg"},
	}
	for _, skew := range []float64{0.2, 0.6} {
		for _, omega := range []int{4, 8, 12} {
			nz, err := averageScheme(o, func() types.Scheduler { return nezhaScheduler(o) }, omega, skew)
			if err != nil {
				return nil, err
			}
			cgRun, err := averageScheme(o, func() types.Scheduler { return cgScheduler(o) }, omega, skew)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%.1f", skew), itoa(omega * o.BlockSize),
				ms(float64(nz.breakdown.Graph.Microseconds()) / 1000)}
			if cgRun.failed {
				row = append(row, "OOM", "-")
			} else {
				a := float64(nz.breakdown.Graph.Microseconds()) / 1000
				c := float64(cgRun.breakdown.Graph.Microseconds()) / 1000
				row = append(row, ms(c), ftoa(c/a))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// AblationWriteMix (A5, an extension beyond the paper) varies the fraction
// of read-only operations in the SmallBank mix at fixed skew: read-heavy
// epochs shrink conflict surfaces (reads never conflict with reads, §IV-C
// rule 3), so abort rates and CG's cycle pressure should fall as the mix
// gets more read-only.
func AblationWriteMix(o Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A5 — read-only mix sensitivity (skew 0.8, concurrency 4)",
		Header: []string{"readonly_pct", "nezha_abort_pct", "nezha_ms", "cg_ms_or_oom"},
		Notes:  []string{"extension beyond the paper's fixed uniform op mix"},
	}
	const (
		omega = 4
		skew  = 0.8
	)
	for _, ratio := range []float64{0.0, 0.25, 0.5, 0.75, 0.9} {
		var (
			nzControl time.Duration
			committed int
			aborted   int
		)
		cgFailed := false
		var cgControl time.Duration
		for rep := 0; rep < o.Reps; rep++ {
			cfg := workload.Config{
				Seed:           o.Seed + int64(rep+1)*6151,
				Accounts:       o.Accounts,
				Skew:           skew,
				InitialBalance: 10_000,
				ReadOnlyRatio:  ratio,
			}
			gen, err := workload.NewGenerator(cfg)
			if err != nil {
				return nil, err
			}
			txs := gen.Txs(omega * o.BlockSize)
			for i, tx := range txs {
				tx.ID = types.TxID(i)
			}
			snapshot, err := gen.Snapshot(txs)
			if err != nil {
				return nil, err
			}
			sims, err := workload.Simulate(txs, snapshot)
			if err != nil {
				return nil, err
			}
			run, err := runScheme(o, nezhaScheduler(o), snapshot, sims)
			if err != nil {
				return nil, err
			}
			nzControl += run.control + run.commit
			committed += run.committed
			aborted += run.aborted
			cgOut, err := runScheme(o, cgScheduler(o), snapshot, sims)
			if err != nil {
				return nil, err
			}
			if cgOut.failed {
				cgFailed = true
			} else {
				cgControl += cgOut.control + cgOut.commit
			}
		}
		rate := 0.0
		if committed+aborted > 0 {
			rate = float64(aborted) / float64(committed+aborted)
		}
		row := []string{
			fmt.Sprintf("%.0f", 100*ratio),
			pct(rate),
			ms(float64(nzControl.Microseconds()) / 1000 / float64(o.Reps)),
		}
		if cgFailed {
			row = append(row, "OOM")
		} else {
			row = append(row, ms(float64(cgControl.Microseconds())/1000/float64(o.Reps)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// OCCAbortComparison (extension) measures the motivating claim of §I: plain
// OCC (Fabric-style, Table II) pays for its zero ordering cost with abort
// rates that the paper cites as exceeding 40% under contention, while Nezha
// orders conflicting transactions instead of discarding them.
func OCCAbortComparison(o Options) (*Table, error) {
	t := &Table{
		Title:  "Extension — plain OCC vs CG vs Nezha abort rate (%), concurrency 4",
		Header: []string{"skew", "occ_abort_pct", "cg_abort_pct", "nezha_abort_pct"},
		Notes:  []string{"paper §I cites >40% OCC abort rates under contention [Chacko et al.]"},
	}
	for _, skew := range []float64{0.4, 0.6, 0.8, 1.0} {
		occRun, err := averageScheme(o, func() types.Scheduler { return occ.NewScheduler() }, 4, skew)
		if err != nil {
			return nil, err
		}
		cgRun, err := averageScheme(o, func() types.Scheduler { return cgScheduler(o) }, 4, skew)
		if err != nil {
			return nil, err
		}
		nz, err := averageScheme(o, func() types.Scheduler { return nezhaScheduler(o) }, 4, skew)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.1f", skew), pct(rate(occRun))}
		if cgRun.failed {
			row = append(row, "OOM")
		} else {
			row = append(row, pct(rate(cgRun)))
		}
		row = append(row, pct(rate(nz)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
