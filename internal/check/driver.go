package check

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
)

// FailureKind classifies what a differential trial caught.
type FailureKind string

// The divergences the driver checks for, roughly in detection order.
const (
	// FailSchedulerError: a scheduler returned an unexpected error.
	FailSchedulerError FailureKind = "scheduler-error"
	// FailParallelism: the Nezha scheduler produced different schedules at
	// different parallelism levels — the determinism contract of PR 1.
	FailParallelism FailureKind = "parallelism-divergence"
	// FailOracle: the Nezha schedule failed the serial-replay oracle.
	FailOracle FailureKind = "oracle-violation"
	// FailCGOracle: the CG baseline's schedule failed the oracle.
	FailCGOracle FailureKind = "cg-oracle-violation"
	// FailFeasibility: Nezha aborted a transaction that a trivial argument
	// proves committable (conflict-free or stateless) — fewer commits than
	// the known-feasible bound.
	FailFeasibility FailureKind = "feasibility-bound"
)

// Failure is one divergence, carrying everything needed to reproduce it:
// the generator config (seed included) regenerates the epoch bit-for-bit,
// and Minimized names a 1-minimal failing subset of its transaction ids.
type Failure struct {
	Kind   FailureKind
	Detail string
	Gen    GenConfig
	// Profile is the sweep profile name when the failure came from a
	// check.Run sweep ("" for direct RunTrial calls); `nezha-check replay
	// -profile` accepts it verbatim.
	Profile string
	// Minimized holds the original transaction ids of a minimal failing
	// subset (empty when minimization was skipped).
	Minimized []types.TxID
}

// Error implements error.
func (f *Failure) Error() string {
	min := ""
	if len(f.Minimized) > 0 {
		min = fmt.Sprintf(" minimized=%v", f.Minimized)
	}
	return fmt.Sprintf("check: %s on shape=%s seed=%d txs=%d keys=%d: %s%s",
		f.Kind, f.Gen.Shape, f.Gen.Seed, f.Gen.Txs, f.Gen.Keys, f.Detail, min)
}

// TrialConfig configures one differential trial.
type TrialConfig struct {
	// Gen parameterizes the epoch under test.
	Gen GenConfig
	// Parallelisms are the scheduler fan-outs compared for identity.
	// Defaults to 1, 2, 4, 8.
	Parallelisms []int
	// Core overrides the base scheduler config (Parallelism is set per
	// level); nil means core.DefaultConfig().
	Core *core.Config
	// CG overrides the baseline config; nil means cg.DefaultConfig().
	CG *cg.Config
	// SkipCG drops the baseline run (the minimizer uses this: CG's cycle
	// enumeration is too slow to probe thousands of candidate subsets).
	SkipCG bool
	// SkipMinimize reports failures without shrinking them.
	SkipMinimize bool
	// Mutate, when set, post-processes every Nezha schedule before
	// checking — the fault-injection port the meta-tests use to prove the
	// oracle catches a deliberately broken scheduler. Never set outside
	// tests.
	Mutate func(sched *types.Schedule, sims []*types.SimResult)
}

func (c TrialConfig) withDefaults() TrialConfig {
	c.Gen = c.Gen.withDefaults()
	if len(c.Parallelisms) == 0 {
		c.Parallelisms = []int{1, 2, 4, 8}
	}
	if c.Core == nil {
		cc := core.DefaultConfig()
		c.Core = &cc
	}
	if c.CG == nil {
		cc := cg.DefaultConfig()
		c.CG = &cc
	}
	return c
}

// TrialResult summarizes one trial.
type TrialResult struct {
	Gen         GenConfig
	Txs         int
	Committed   int
	Aborted     int
	Rescued     int
	CGCommitted int
	// CGSkipped is set when the baseline hit its cycle-explosion budget —
	// the paper's documented CG failure mode, not a harness failure.
	CGSkipped bool
	// Failure is non-nil when the trial diverged.
	Failure *Failure
}

// RunTrial generates one epoch from cfg.Gen and runs the full differential
// battery over it. On divergence the failing epoch is ddmin-minimized (via
// repeated regeneration-free re-checks on transaction subsets) and the
// failure reports the minimal subset's original transaction ids.
func RunTrial(cfg TrialConfig) *TrialResult {
	cfg = cfg.withDefaults()
	snapshot, sims := Generate(cfg.Gen)
	res := &TrialResult{Gen: cfg.Gen, Txs: len(sims)}

	fail := diffCheck(cfg, snapshot, sims, res)
	if fail == nil {
		return res
	}
	fail.Gen = cfg.Gen
	if !cfg.SkipMinimize {
		subCfg := cfg
		subCfg.SkipCG = fail.Kind != FailCGOracle // keep CG only when CG is the bug
		idx := Minimize(len(sims), func(keep []int) bool {
			return diffCheck(subCfg, snapshot, renumber(sims, keep), nil) != nil
		})
		for _, i := range idx {
			fail.Minimized = append(fail.Minimized, sims[i].Tx.ID)
		}
	}
	res.Failure = fail
	return res
}

// renumber clones the selected simulation results with fresh dense
// epoch-local ids (the schedulers index transactions densely), leaving the
// originals untouched so minimization probes never corrupt the epoch.
func renumber(sims []*types.SimResult, keep []int) []*types.SimResult {
	out := make([]*types.SimResult, len(keep))
	for j, i := range keep {
		tx := *sims[i].Tx
		tx.ID = types.TxID(j)
		cp := *sims[i]
		cp.Tx = &tx
		out[j] = &cp
	}
	return out
}

// diffCheck runs the differential battery on one epoch and returns the
// first divergence found (nil if clean). res, when non-nil, receives the
// trial statistics.
func diffCheck(cfg TrialConfig, snapshot map[types.Key][]byte, sims []*types.SimResult, res *TrialResult) *Failure {
	// (a) Nezha at every parallelism level: schedules must be identical.
	var ref *types.Schedule
	for _, par := range cfg.Parallelisms {
		cc := *cfg.Core
		cc.Parallelism = par
		sch, err := core.NewScheduler(cc)
		if err != nil {
			return &Failure{Kind: FailSchedulerError, Detail: fmt.Sprintf("nezha config (par=%d): %v", par, err)}
		}
		out, pb, err := sch.Schedule(sims)
		if err != nil {
			return &Failure{Kind: FailSchedulerError, Detail: fmt.Sprintf("nezha (par=%d): %v", par, err)}
		}
		if cfg.Mutate != nil {
			cfg.Mutate(out, sims)
		}
		if ref == nil {
			ref = out
			if res != nil {
				res.Rescued = pb.Rescued
			}
		} else if !ref.Equal(out) {
			return &Failure{Kind: FailParallelism,
				Detail: fmt.Sprintf("parallelism %d vs %d: %s", cfg.Parallelisms[0], par, diffSchedules(ref, out))}
		}
	}
	if res != nil {
		res.Committed = ref.CommittedCount()
		res.Aborted = ref.AbortedCount()
	}

	// (b) The independent oracle: serial-replay equivalence.
	if err := core.VerifySchedule(snapshot, sims, ref); err != nil {
		return &Failure{Kind: FailOracle, Detail: err.Error()}
	}

	// (c) Known-feasible bound: a transaction none of whose keys is
	// touched by any other transaction conflicts with nothing, and a
	// stateless transaction conflicts with nothing; aborting either is a
	// scheduler bug, whatever the abort reason says.
	touch := make(map[types.Key]int)
	for _, sim := range sims {
		for _, k := range simKeys(sim) {
			touch[k]++
		}
	}
	for _, sim := range sims {
		keys := simKeys(sim)
		free := true
		for _, k := range keys {
			if touch[k] > 1 {
				free = false
				break
			}
		}
		if free && !ref.IsCommitted(sim.Tx.ID) {
			kind := "conflict-free"
			if len(keys) == 0 {
				kind = "stateless"
			}
			return &Failure{Kind: FailFeasibility,
				Detail: fmt.Sprintf("%s tx %d aborted", kind, sim.Tx.ID)}
		}
	}

	// (d) CG baseline under the same oracle. A cycle-explosion timeout is
	// the baseline's documented failure mode, not a divergence.
	if !cfg.SkipCG {
		out, _, err := cg.NewScheduler(*cfg.CG).Schedule(sims)
		switch {
		case errors.Is(err, cg.ErrCycleExplosion):
			if res != nil {
				res.CGSkipped = true
			}
		case err != nil:
			return &Failure{Kind: FailSchedulerError, Detail: fmt.Sprintf("cg: %v", err)}
		default:
			if err := core.VerifySchedule(snapshot, sims, out); err != nil {
				return &Failure{Kind: FailCGOracle, Detail: err.Error()}
			}
			if res != nil {
				res.CGCommitted = out.CommittedCount()
			}
		}
	}
	return nil
}

// simKeys returns the distinct keys a simulation touches: the read∪write
// union, deduplicated (a key both read and written by one transaction must
// count as a single toucher in the feasibility bound).
func simKeys(sim *types.SimResult) []types.Key {
	keys := make([]types.Key, 0, len(sim.Reads)+len(sim.Writes))
	for _, r := range sim.Reads {
		keys = append(keys, r.Key)
	}
	for _, w := range sim.Writes {
		dup := false
		for _, k := range keys {
			if k == w.Key {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, w.Key)
		}
	}
	return keys
}

// diffSchedules renders a compact description of how two schedules differ,
// for failure reports.
func diffSchedules(a, b *types.Schedule) string {
	var parts []string
	if a.CommittedCount() != b.CommittedCount() {
		parts = append(parts, fmt.Sprintf("committed %d vs %d", a.CommittedCount(), b.CommittedCount()))
	}
	if a.AbortedCount() != b.AbortedCount() {
		parts = append(parts, fmt.Sprintf("aborted %d vs %d", a.AbortedCount(), b.AbortedCount()))
	}
	n := 0
	// Sorted ids so the first five diffs reported are the same on every
	// run — failure messages must replay bit-exactly (found by nezha-vet).
	ids := make([]types.TxID, 0, len(a.Seqs))
	for id := range a.Seqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		seq := a.Seqs[id]
		if o, ok := b.Seqs[id]; !ok || o != seq {
			if n < 5 {
				parts = append(parts, fmt.Sprintf("tx %d: seq %d vs %d", id, seq, b.Seqs[id]))
			}
			n++
		}
	}
	if n > 5 {
		parts = append(parts, fmt.Sprintf("(%d more seq diffs)", n-5))
	}
	if len(parts) == 0 {
		return "abort sets differ"
	}
	return strings.Join(parts, "; ")
}
