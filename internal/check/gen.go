// Package check is the differential correctness harness: a deterministic,
// seed-driven adversarial workload generator plus a driver that runs every
// generated epoch through the Nezha scheduler at several parallelism
// levels, the CG baseline, and the core.VerifySchedule serial-replay
// oracle, failing with a minimized, seed-replayable reproduction on any
// divergence.
//
// The point is to exercise conflict structures the SmallBank-shaped
// workloads never produce — degenerate single-hot-key epochs, dense
// dependency cycles, pure multi-write transactions that stress the §IV-D
// reordering rescue — and to check the results against an oracle that is
// independent of the scheduler implementation. CI runs the harness on
// every push (see TESTING.md); a failing seed replays locally with
// `nezha-check replay -seed <s>`.
package check

import (
	"encoding/binary"
	"math/rand"
	"sort"

	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/workload"
)

// Shape selects the conflict structure of a generated epoch.
type Shape int

const (
	// ShapeMixed draws every transaction's behavior independently:
	// Zipf-skewed key choice, occasional stateless and pure multi-write
	// transactions. The broadest single profile.
	ShapeMixed Shape = iota + 1
	// ShapeUniform picks keys uniformly — low contention, wide graphs.
	ShapeUniform
	// ShapeZipf picks keys from a Zipfian distribution with GenConfig.Skew.
	ShapeZipf
	// ShapeSingleHotKey sends most units to one key — the degenerate
	// contention point where every transaction conflicts with every other.
	ShapeSingleHotKey
	// ShapeCycleHeavy lays transactions out in read→write rings so the
	// address dependency graph is dominated by cycles, forcing Algorithm 1
	// through its cycle-breaking heuristic and the CG baseline through
	// cycle removal.
	ShapeCycleHeavy
	// ShapeMultiWrite emits mostly read-free multi-write transactions, the
	// only inputs eligible for the §IV-D reordering rescue.
	ShapeMultiWrite
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeMixed:
		return "mixed"
	case ShapeUniform:
		return "uniform"
	case ShapeZipf:
		return "zipf"
	case ShapeSingleHotKey:
		return "single-hot-key"
	case ShapeCycleHeavy:
		return "cycle-heavy"
	case ShapeMultiWrite:
		return "multi-write"
	default:
		return "unknown-shape"
	}
}

// GenConfig parameterizes one adversarial epoch. Every field is part of the
// replay contract: the same config (seed included) always regenerates the
// identical epoch, which is what makes a CI failure reproducible locally.
type GenConfig struct {
	// Seed drives every random choice.
	Seed int64
	// Txs is the epoch size. Defaults to 256 — above the scheduler's
	// sequential-fallback threshold, so the parallel paths actually run.
	Txs int
	// Keys is the address-space size. Defaults to 64.
	Keys int
	// Shape selects the conflict structure. Defaults to ShapeMixed.
	Shape Shape
	// Skew is the Zipfian coefficient in [0, 1] used by ShapeZipf and
	// ShapeMixed.
	Skew float64
	// ReadRatio is the probability that a generated unit is a read rather
	// than a write.
	ReadRatio float64
	// MaxUnits bounds the units per transaction. Defaults to 4.
	MaxUnits int
	// StatelessProb is the probability of an empty read/write set.
	StatelessProb float64
	// MultiWriteProb is the probability of a pure multi-write transaction
	// (≥2 writes, no reads) — the §IV-D rescue path.
	MultiWriteProb float64
	// MissingProb is the probability that a key is absent from the epoch
	// snapshot, so reads of it observe nil.
	MissingProb float64
}

// withDefaults fills the zero-value fields.
func (c GenConfig) withDefaults() GenConfig {
	if c.Txs == 0 {
		c.Txs = 256
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.Shape == 0 {
		c.Shape = ShapeMixed
	}
	if c.MaxUnits == 0 {
		c.MaxUnits = 4
	}
	return c
}

// genValue derives a deterministic state value from (seed, tag, n); the
// snapshot uses tag 0 and transaction writes use tag id+1, so no write
// accidentally reproduces the snapshot value (replay-mismatch bugs must not
// cancel out).
func genValue(seed int64, tag, n int) []byte {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(tag))
	binary.BigEndian.PutUint64(buf[16:], uint64(n))
	h := types.HashBytes(buf[:])
	return h[:8]
}

// Generate deterministically builds one adversarial epoch: the snapshot the
// simulations observed and the per-transaction simulation results, with
// dense epoch-local ids, reads recording snapshot values, and read/write
// sets deduplicated and sorted by key exactly as the execution layer
// produces them.
func Generate(cfg GenConfig) (map[types.Key][]byte, []*types.SimResult) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	keys := make([]types.Key, cfg.Keys)
	snapshot := make(map[types.Key][]byte, cfg.Keys)
	for i := range keys {
		keys[i] = types.KeyFromUint64(uint64(i))
		if rng.Float64() >= cfg.MissingProb {
			snapshot[keys[i]] = genValue(cfg.Seed, 0, i)
		}
	}

	var zipf *workload.Zipfian
	if cfg.Shape == ShapeZipf || cfg.Shape == ShapeMixed {
		z, err := workload.NewZipfian(cfg.Seed+1, uint64(cfg.Keys), cfg.Skew)
		if err != nil {
			// Invalid skew only; clamp to uniform rather than fail — the
			// generator must be total for the CLI's flag plumbing.
			z, _ = workload.NewZipfian(cfg.Seed+1, uint64(cfg.Keys), 0)
		}
		zipf = z
	}
	pick := func() int {
		switch cfg.Shape {
		case ShapeZipf, ShapeMixed:
			return int(zipf.Next())
		case ShapeSingleHotKey:
			if rng.Float64() < 0.8 {
				return 0
			}
			return rng.Intn(cfg.Keys)
		default:
			return rng.Intn(cfg.Keys)
		}
	}

	sims := make([]*types.SimResult, cfg.Txs)
	// Cycle-heavy bookkeeping: the current ring's key indices and the
	// position of the next transaction inside it.
	var ring []int
	ringPos := 0

	for i := 0; i < cfg.Txs; i++ {
		sim := &types.SimResult{Tx: &types.Transaction{
			ID:    types.TxID(i),
			From:  types.AddressFromUint64(uint64(rng.Intn(cfg.Keys))),
			To:    types.AddressFromUint64(uint64(rng.Intn(cfg.Keys))),
			Nonce: uint64(i),
		}}
		sims[i] = sim

		var readIdx, writeIdx []int
		switch {
		case cfg.Shape == ShapeCycleHeavy:
			if ringPos >= len(ring) {
				// Start a new ring of 3–6 distinct keys.
				n := 3 + rng.Intn(4)
				if n > cfg.Keys {
					n = cfg.Keys
				}
				ring = rng.Perm(cfg.Keys)[:n]
				ringPos = 0
			}
			// Member j reads ring[j] and writes ring[j+1 mod n]: each
			// transaction's write-address depends on its read-address,
			// closing an address-dependency cycle around the ring.
			readIdx = []int{ring[ringPos]}
			writeIdx = []int{ring[(ringPos+1)%len(ring)]}
			ringPos++
			if rng.Float64() < 0.3 {
				writeIdx = append(writeIdx, rng.Intn(cfg.Keys))
			}
		case rng.Float64() < cfg.StatelessProb:
			// Stateless: no units at all.
		case cfg.Shape == ShapeMultiWrite && rng.Float64() < cfg.ReadRatio:
			// Pure readers: without read units no address ever has a read
			// ceiling and the §IV-D rescue this shape exists to stress
			// would be unreachable.
			n := 1 + rng.Intn(2)
			for u := 0; u < n; u++ {
				readIdx = append(readIdx, pick())
			}
		case cfg.Shape == ShapeMultiWrite || rng.Float64() < cfg.MultiWriteProb:
			n := 2 + rng.Intn(maxInt(cfg.MaxUnits-1, 1))
			for u := 0; u < n; u++ {
				writeIdx = append(writeIdx, pick())
			}
		default:
			n := 1 + rng.Intn(cfg.MaxUnits)
			for u := 0; u < n; u++ {
				k := pick()
				if rng.Float64() < cfg.ReadRatio {
					readIdx = append(readIdx, k)
				} else {
					writeIdx = append(writeIdx, k)
				}
			}
		}

		for _, k := range dedupByKey(keys, readIdx) {
			sim.Reads = append(sim.Reads, types.ReadEntry{Key: keys[k], Value: snapshot[keys[k]]})
		}
		for _, k := range dedupByKey(keys, writeIdx) {
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: keys[k], Value: genValue(cfg.Seed, i+1, k)})
		}
	}
	return snapshot, sims
}

// dedupByKey returns the distinct indices of idx ordered by the byte order
// of the keys they map to — the same per-key dedup + by-key sort contract
// the execution layer applies to SimResult read/write sets.
func dedupByKey(keys []types.Key, idx []int) []int {
	if len(idx) == 0 {
		return nil
	}
	seen := make(map[int]bool, len(idx))
	out := idx[:0]
	for _, v := range idx {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return keys[out[a]].Less(keys[out[b]]) })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
