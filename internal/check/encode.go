package check

import (
	"github.com/nezha-dag/nezha/internal/types"
)

// The byte-program epoch codec: FuzzSchedule and FuzzRankDivision decode an
// arbitrary fuzz input into a bounded, valid epoch through EpochFromBytes,
// and the corpus generator (`nezha-check corpus`) produces seed inputs with
// AppendTx. Keeping both halves here guarantees the corpus speaks exactly
// the dialect the fuzz targets parse.
//
// Layout: byte 0 picks the key-space size (1–16 keys; every key whose index
// ≡ 4 (mod 5) is absent from the snapshot, so its reads observe nil). Each
// transaction is then a header byte h — low two bits: read count, next two
// bits: write count — followed by one key-index byte per unit. Decoding is
// total: any byte string yields a valid epoch, truncated units are dropped,
// and epochs are capped at 512 transactions.

// epochMaxTxs bounds decoded epochs; fuzz inputs past the cap are truncated
// rather than rejected so big inputs still explore big-epoch behavior
// (above the scheduler's 128-tx parallel threshold) without unbounded cost.
const epochMaxTxs = 512

// EpochFromBytes deterministically decodes data into a snapshot and
// simulation results with dense epoch-local ids. Returns an empty epoch for
// empty input.
func EpochFromBytes(data []byte) (map[types.Key][]byte, []*types.SimResult) {
	if len(data) == 0 {
		return nil, nil
	}
	nKeys := 1 + int(data[0]%16)
	data = data[1:]

	keys := make([]types.Key, nKeys)
	snapshot := make(map[types.Key][]byte, nKeys)
	for i := range keys {
		keys[i] = types.KeyFromUint64(uint64(i))
		if i%5 != 4 {
			snapshot[keys[i]] = []byte{0xA0, byte(i)}
		}
	}

	var sims []*types.SimResult
	pos := 0
	for pos < len(data) && len(sims) < epochMaxTxs {
		h := data[pos]
		pos++
		nr := int(h & 3)
		nw := int((h >> 2) & 3)
		var readIdx, writeIdx []int
		for u := 0; u < nr && pos < len(data); u++ {
			readIdx = append(readIdx, int(data[pos])%nKeys)
			pos++
		}
		for u := 0; u < nw && pos < len(data); u++ {
			writeIdx = append(writeIdx, int(data[pos])%nKeys)
			pos++
		}
		id := types.TxID(len(sims))
		sim := &types.SimResult{Tx: &types.Transaction{ID: id, Nonce: uint64(id)}}
		for _, k := range dedupByKey(keys, readIdx) {
			sim.Reads = append(sim.Reads, types.ReadEntry{Key: keys[k], Value: snapshot[keys[k]]})
		}
		for _, k := range dedupByKey(keys, writeIdx) {
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: keys[k], Value: []byte{h, byte(k), byte(id)}})
		}
		sims = append(sims, sim)
	}
	return snapshot, sims
}

// AppendTx appends one transaction's encoding to dst. At most three reads
// and three writes survive (the header holds two bits per count); excess
// keys are dropped, matching what the decoder would do.
func AppendTx(dst []byte, readKeys, writeKeys []byte) []byte {
	if len(readKeys) > 3 {
		readKeys = readKeys[:3]
	}
	if len(writeKeys) > 3 {
		writeKeys = writeKeys[:3]
	}
	h := byte(len(readKeys)) | byte(len(writeKeys))<<2
	dst = append(dst, h)
	dst = append(dst, readKeys...)
	dst = append(dst, writeKeys...)
	return dst
}
