package check

// maxMinimizeProbes bounds the predicate invocations one minimization may
// spend: each probe schedules the candidate epoch at every parallelism
// level, so an unbounded ddmin on a large epoch could dominate a CI run.
const maxMinimizeProbes = 2000

// Minimize shrinks a failing index set with the ddmin algorithm [Zeller &
// Hildebrandt 2002]: starting from all of [0, n), it repeatedly tries to
// drop chunks of the current set, keeping any reduction on which failing
// still reports true, and refining the chunk granularity when no chunk can
// be dropped. The result is 1-minimal up to the probe budget: a (locally)
// smallest subset that still fails.
//
// failing must be deterministic and must report true for the full set;
// callers hand it candidate subsets of the original epoch's transaction
// indices, always in ascending order.
func Minimize(n int, failing func([]int) bool) []int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	if n <= 1 {
		return cur
	}

	probes := 0
	probe := func(idx []int) bool {
		if probes >= maxMinimizeProbes {
			return false
		}
		probes++
		return failing(idx)
	}

	gran := 2
	for len(cur) > 1 && probes < maxMinimizeProbes {
		size := (len(cur) + gran - 1) / gran
		reduced := false
		for start := 0; start < len(cur); start += size {
			end := start + size
			if end > len(cur) {
				end = len(cur)
			}
			// Complement of one chunk.
			cand := make([]int, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && probe(cand) {
				cur = cand
				if gran > 2 {
					gran--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if gran >= len(cur) {
				break
			}
			gran *= 2
			if gran > len(cur) {
				gran = len(cur)
			}
		}
	}
	return cur
}
